(* ccomp — command-line driver for the code-compression toolkit.

   Subcommands:
     generate    build a synthetic SPEC95-profile benchmark image
     compress    compress a raw code image into a SECF container
     decompress  expand a SECF container back to raw code
     info        describe a SECF container
     ratios      compare all algorithms on one image
     simulate    run the compressed-memory-system model on a profile
                 (optionally with refill faults: --fault-rate/--fault-response)
     fuzz        fault-injection campaign over every decoder
     verify      differential testing of every redundant-implementation
                 pair, plus golden-corpus format-drift checks
     stats       render a --metrics JSON snapshot as a report
                 (--diff BASELINE: per-metric deltas between snapshots)
     asm         assemble MIPS text into a raw code image
     disasm      disassemble a raw code image
     serve       compression daemon: binary job protocol + HTTP
                 /metrics (OpenMetrics), /healthz, /events, /snapshot
     submit      send one compress/decompress job to a daemon
     scrape      GET an HTTP path from a daemon (e.g. /metrics)
     top         live terminal dashboard over a daemon's /snapshot
     chaos       seeded socket-level chaos campaign against a daemon:
                 slowloris, truncation, resets, overload floods —
                 asserts liveness, typed sheds, byte-identical jobs
     loadgen     seeded open-loop traffic generator: CO-safe latency
                 percentiles, shed/deadline rates, server-side
                 queue/service/network split, gated --slo-* bounds

   compress, decompress, simulate and fuzz accept --metrics FILE (write
   the lib/obs metrics snapshot as JSON), --trace FILE (write a Chrome
   trace_event array of spans, viewable in Perfetto) and --events FILE
   (stream the structured event log as JSON lines); all three are
   flushed on abnormal exits too (Ctrl-C, faults, decode errors).
   Argument errors are uniform across subcommands: a bad flag or flag
   value names the offender and prints the subcommand's usage line. *)

open Cmdliner
module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events
module Serve = Ccomp_serve.Serve
module Top = Ccomp_serve.Top
module Latency = Ccomp_serve.Latency
module Loadgen = Ccomp_serve.Loadgen
module Slow = Ccomp_serve.Slow

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

(* --- shared arguments ------------------------------------------------ *)

type isa = Mips | X86

let isa_conv =
  let parse = function
    | "mips" -> Ok Mips
    | "x86" -> Ok X86
    | s -> Error (`Msg (Printf.sprintf "unknown ISA %S (expected mips or x86)" s))
  in
  let print fmt isa = Format.pp_print_string fmt (match isa with Mips -> "mips" | X86 -> "x86") in
  Arg.conv (parse, print)

let isa_arg =
  Arg.(value & opt isa_conv Mips & info [ "isa" ] ~docv:"ISA" ~doc:"Target ISA: mips or x86.")

(* Profiles are validated at parse time, so `--profile bogus` fails
   before any work starts, names the flag and prints usage — the same
   contract every other flag has. *)
let profile_conv =
  let parse s =
    match Ccomp_progen.Profile.find s with
    | p -> Ok p
    | exception Not_found ->
      Error
        (`Msg
          (Printf.sprintf "unknown profile %S; available: %s" s
             (String.concat ", " (Ccomp_progen.Profile.names ()))))
  in
  let print fmt p = Format.pp_print_string fmt p.Ccomp_progen.Profile.name in
  Arg.conv (parse, print)

let profile_arg =
  let doc = "SPEC95 benchmark profile name (e.g. gcc, go, swim)." in
  Arg.(
    value
    & opt profile_conv (Ccomp_progen.Profile.find "gcc")
    & info [ "profile" ] ~docv:"NAME" ~doc)

let seed_arg =
  Arg.(value & opt int 7 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")

let scale_arg =
  Arg.(value & opt float 1.0 & info [ "scale" ] ~docv:"S" ~doc:"Program size scale factor.")

let block_size_arg =
  Arg.(value & opt int 32 & info [ "block-size" ] ~docv:"BYTES" ~doc:"Cache block size in bytes.")

let output_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domains for per-block parallel work (1 = serial, 0 = one per core). Output is \
           byte-identical for every value.")

let resolve_jobs n = if n <= 0 then Ccomp_par.Pool.default_jobs () else n

let verbose_arg =
  Arg.(value & flag & info [ "verbose" ] ~doc:"Print per-phase wall-clock time and throughput.")

(* Per-phase timing for --verbose: wall-clock plus MB/s over the phase's
   input bytes. The clock is an obs span, so under --trace each phase
   also shows up as a slice in the trace viewer. *)
(* [bytes] maps the phase's result to the byte count its throughput is
   quoted over (input size, output size, ... — whichever the phase is
   conventionally measured in). *)
let phase ~verbose ~bytes name f =
  Events.debug ~fields:[ ("phase", name); ("transition", "begin") ] "ccomp.phase";
  let result, dt = Obs.timed ~cat:"phase" name f in
  Events.info
    ~fields:[ ("phase", name); ("transition", "end"); ("seconds", Printf.sprintf "%.6f" dt) ]
    "ccomp.phase";
  if verbose then begin
    let n = bytes result in
    let mbs = if dt > 0.0 then float_of_int n /. 1e6 /. dt else Float.infinity in
    Printf.printf "  %-12s %8.3fs  %8.1f MB/s  (%d bytes)\n%!" name dt mbs n
  end;
  result

(* --metrics/--trace plumbing shared by the workload subcommands:
   switch the requested observation on before the body runs and write
   the outputs afterwards even if the body fails — a failing run's
   partial telemetry is often the interesting part. *)
let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE" ~doc:"Write a metrics snapshot (JSON) to $(docv).")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write recorded spans to $(docv) as a Chrome trace_event JSON array (load in \
           chrome://tracing or Perfetto).")

let events_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "events" ] ~docv:"FILE"
        ~doc:
          "Stream the structured event log (faults, CRC failures, phase transitions) to $(docv) \
           as JSON lines, flushed per event.")

(* The finally-block runs on every exit path: clean completion, a typed
   decode error, a fault-abort exception, and — because main installs
   Sys.catch_break plus a SIGTERM handler that raises — an interrupt.
   A crashed run still leaves its telemetry behind. *)
let with_obs ?(events = None) ~metrics ~trace f =
  Obs.reset ();
  Events.clear ();
  Obs.set_metrics (metrics <> None);
  Obs.set_tracing (trace <> None);
  (match events with
  | Some path ->
    Events.set_enabled true;
    Events.set_sink (Some path)
  | None -> ());
  let finish () =
    (match metrics with
    | Some path ->
      Obs.write_metrics path;
      Printf.printf "wrote %s: metrics snapshot\n%!" path
    | None -> ());
    (match trace with
    | Some path ->
      Obs.write_trace path;
      Printf.printf "wrote %s: %d trace events\n%!" path (Obs.event_count ())
    | None -> ());
    (match events with
    | Some path ->
      Events.set_sink None;
      Printf.printf "wrote %s: %d events\n%!" path (Events.total ());
      Events.set_enabled false
    | None -> ());
    Obs.set_metrics false;
    Obs.set_tracing false
  in
  Fun.protect ~finally:finish f

let lower isa prog =
  match isa with
  | Mips -> (snd (Ccomp_progen.Mips_backend.lower prog)).Ccomp_progen.Layout.code
  | X86 -> (snd (Ccomp_progen.X86_backend.lower prog)).Ccomp_progen.Layout.code

(* --- generate --------------------------------------------------------- *)

let generate_cmd =
  let run profile isa seed scale output =
    let prog = Ccomp_progen.Generator.generate ~scale ~seed:(Int64.of_int seed) profile in
    let code = lower isa prog in
    let path =
      match output with
      | Some p -> p
      | None ->
        Printf.sprintf "%s.%s.bin" profile.Ccomp_progen.Profile.name
          (match isa with Mips -> "mips" | X86 -> "x86")
    in
    write_file path code;
    Printf.printf "wrote %s: %d bytes of %s code\n" path (String.length code)
      (match isa with Mips -> "MIPS" | X86 -> "x86");
    `Ok ()
  in
  let term = Term.(ret (const run $ profile_arg $ isa_arg $ seed_arg $ scale_arg $ output_arg)) in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a synthetic benchmark code image.") term

(* --- compress ---------------------------------------------------------- *)

type algo = Samc | Sadc

let algo_arg =
  let doc = "Compression algorithm: $(docv) is samc or sadc." in
  Arg.(
    value
    & opt (enum [ ("samc", Samc); ("sadc", Sadc) ]) Samc
    & info [ "algo" ] ~docv:"ALGO" ~doc)

let quantize_arg =
  Arg.(value & flag & info [ "quantize" ] ~doc:"SAMC: power-of-two probabilities (shift-only).")

let prune_arg =
  Arg.(value & opt int 0 & info [ "prune" ] ~docv:"N"
         ~doc:"SAMC: prune Markov nodes seen fewer than N times.")

let context_arg =
  Arg.(value & opt int 2 & info [ "context-bits" ] ~docv:"N" ~doc:"SAMC connected-tree context bits.")

let compress_cmd =
  let run algo isa block_size context_bits quantize prune_below jobs verbose metrics trace events
      input output =
    let jobs = resolve_jobs jobs in
    with_obs ~events ~metrics ~trace @@ fun () ->
    let code = phase ~verbose ~bytes:String.length "read" (fun () -> read_file input) in
    let bytes = String.length code in
    let compress_phase = phase ~verbose ~bytes:(fun _ -> bytes) "compress" in
    let image =
      match (algo, isa) with
      | Samc, Mips ->
        let cfg = Ccomp_core.Samc.mips_config ~block_size ~context_bits ~quantize ~prune_below () in
        compress_phase (fun () ->
            Ccomp_image.Image.of_samc ~isa:Ccomp_image.Image.Mips
              (Ccomp_core.Samc.compress ~jobs cfg code))
      | Samc, X86 ->
        let cfg = Ccomp_core.Samc.byte_config ~block_size ~context_bits ~quantize ~prune_below () in
        compress_phase (fun () ->
            Ccomp_image.Image.of_samc ~isa:Ccomp_image.Image.X86
              (Ccomp_core.Samc.compress ~jobs cfg code))
      | Sadc, Mips ->
        let cfg = Ccomp_core.Sadc.default_config ~block_size () in
        compress_phase (fun () ->
            Ccomp_image.Image.of_sadc_mips (Ccomp_core.Sadc.Mips.compress_image ~jobs cfg code))
      | Sadc, X86 ->
        let cfg = Ccomp_core.Sadc.default_config ~block_size () in
        compress_phase (fun () ->
            Ccomp_image.Image.of_sadc_x86 (Ccomp_core.Sadc.X86.compress_image ~jobs cfg code))
    in
    let path = match output with Some p -> p | None -> input ^ ".secf" in
    let written = Ccomp_image.Image.write image in
    phase ~verbose ~bytes:(fun () -> String.length written) "write" (fun () ->
        write_file path written);
    Printf.printf "%s\n" (Ccomp_image.Image.describe image);
    Printf.printf "wrote %s: %d bytes total (original %d)\n" path
      (Ccomp_image.Image.total_bytes image) (String.length code);
    `Ok ()
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let term =
    Term.(
      ret
        (const run $ algo_arg $ isa_arg $ block_size_arg $ context_arg $ quantize_arg $ prune_arg
       $ jobs_arg $ verbose_arg $ metrics_arg $ trace_out_arg $ events_arg $ input $ output_arg))
  in
  Cmd.v (Cmd.info "compress" ~doc:"Compress a raw code image into a SECF container.") term

(* --- decompress -------------------------------------------------------- *)

let decompress_cmd =
  let run jobs verbose metrics trace events input output =
    let jobs = resolve_jobs jobs in
    with_obs ~events ~metrics ~trace @@ fun () ->
    let data = phase ~verbose ~bytes:String.length "read" (fun () -> read_file input) in
    match
      phase ~verbose ~bytes:(fun _ -> String.length data) "parse" (fun () ->
          Ccomp_image.Image.read data)
    with
    | Error e -> `Error (false, "cannot read image: " ^ e)
    | Ok image ->
      (* decompress throughput is conventionally over output bytes *)
      let code =
        phase ~verbose ~bytes:String.length "decompress" (fun () ->
            Ccomp_image.Image.decompress ~jobs image)
      in
      let path = match output with Some p -> p | None -> input ^ ".out" in
      phase ~verbose ~bytes:(fun () -> String.length code) "write" (fun () -> write_file path code);
      Printf.printf "wrote %s: %d bytes\n" path (String.length code);
      `Ok ()
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let term =
    Term.(
      ret
        (const run $ jobs_arg $ verbose_arg $ metrics_arg $ trace_out_arg $ events_arg $ input
       $ output_arg))
  in
  Cmd.v (Cmd.info "decompress" ~doc:"Expand a SECF container back to raw code.") term

(* --- info ---------------------------------------------------------------- *)

let info_cmd =
  let run input =
    match Ccomp_image.Image.read (read_file input) with
    | Error e -> `Error (false, "cannot read image: " ^ e)
    | Ok image ->
      print_endline (Ccomp_image.Image.describe image);
      (match image.Ccomp_image.Image.payload with
      | Ccomp_image.Image.Sadc_mips z ->
        let st = Ccomp_core.Sadc.Mips.stats z in
        Printf.printf
          "dictionary: %d entries (%d base, %d groups, %d specialised), longest group %d, %d rounds\n"
          st.entries st.base_entries st.group_entries st.specialized_entries st.longest_group
          st.rounds
      | Ccomp_image.Image.Sadc_x86 z ->
        let st = Ccomp_core.Sadc.X86.stats z in
        Printf.printf
          "dictionary: %d entries (%d base, %d groups, %d specialised), longest group %d, %d rounds\n"
          st.entries st.base_entries st.group_entries st.specialized_entries st.longest_group
          st.rounds
      | Ccomp_image.Image.Samc z ->
        let m = z.Ccomp_core.Samc.model in
        Printf.printf "markov model: %d probabilities, %d context(s), %d bytes\n"
          (Ccomp_core.Markov_model.probability_count m)
          (Ccomp_core.Markov_model.contexts m)
          (Ccomp_core.Markov_model.storage_bytes m));
      Printf.printf "LAT: %d entries, %d bytes\n"
        (Ccomp_memsys.Lat.entries image.Ccomp_image.Image.lat)
        (Ccomp_memsys.Lat.storage_bytes image.Ccomp_image.Image.lat);
      `Ok ()
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  Cmd.v (Cmd.info "info" ~doc:"Describe a SECF container.") Term.(ret (const run $ input))

(* --- ratios ----------------------------------------------------------- *)

let ratios_cmd =
  let run isa block_size input =
    let code = read_file input in
    let lzw = Ccomp_baselines.Lzw.ratio code in
    let gzip = Ccomp_baselines.Lzss.ratio code in
    let huff = Ccomp_baselines.Byte_huffman.(ratio (compress ~block_size code)) in
    let samc_cfg =
      match isa with
      | Mips -> Ccomp_core.Samc.mips_config ~block_size ()
      | X86 -> Ccomp_core.Samc.byte_config ~block_size ()
    in
    let samc = Ccomp_core.Samc.(ratio (compress samc_cfg code)) in
    let sadc =
      let cfg = Ccomp_core.Sadc.default_config ~block_size () in
      match isa with
      | Mips -> Ccomp_core.Sadc.Mips.(ratio (compress_image cfg code))
      | X86 -> Ccomp_core.Sadc.X86.(ratio (compress_image cfg code))
    in
    Printf.printf "%-10s %8s %8s %8s %8s %8s\n" "file" "compress" "gzip" "huffman" "samc" "sadc";
    Printf.printf "%-10s %8.3f %8.3f %8.3f %8.3f %8.3f\n" (Filename.basename input) lzw gzip huff
      samc sadc;
    `Ok ()
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let term = Term.(ret (const run $ isa_arg $ block_size_arg $ input)) in
  Cmd.v (Cmd.info "ratios" ~doc:"Compare compression ratios of all algorithms on one image.") term

(* --- fuzz -------------------------------------------------------------- *)

(* Fault kinds are validated at parse time like every other flag value:
   `--kinds flip,bogus` names the bad kind and prints usage before any
   codec is built. *)
let kind_names =
  [
    ("flip", Ccomp_fault.Injector.Flip);
    ("byte", Ccomp_fault.Injector.Byte);
    ("trunc", Ccomp_fault.Injector.Trunc);
    ("dup", Ccomp_fault.Injector.Dup);
  ]

let kinds_conv =
  let parse s =
    let parts =
      String.split_on_char ',' s |> List.map String.trim |> List.filter (fun k -> k <> "")
    in
    let rec go acc = function
      | [] ->
        let kinds = Array.of_list (List.rev acc) in
        Ok (if Array.length kinds = 0 then [| Ccomp_fault.Injector.Flip |] else kinds)
      | k :: rest -> (
        match List.assoc_opt k kind_names with
        | Some v -> go (v :: acc) rest
        | None ->
          Error
            (`Msg (Printf.sprintf "unknown fault kind %S (expected flip|byte|trunc|dup)" k)))
    in
    go [] parts
  in
  let print fmt kinds =
    let name v = fst (List.find (fun (_, v') -> v' = v) kind_names) in
    Format.pp_print_string fmt (String.concat "," (List.map name (Array.to_list kinds)))
  in
  Arg.conv (parse, print)

let fuzz_cmd =
  let run profile seed trials faults kinds scale jobs metrics trace events =
    let jobs = resolve_jobs jobs in
    with_obs ~events ~metrics ~trace @@ fun () ->
    let prog = Ccomp_progen.Generator.generate ~scale ~seed:(Int64.of_int seed) profile in
    let mips = lower Mips prog in
    let x86 =
      let c = lower X86 prog in
      let r = String.length c mod 4 in
      if r = 0 then c else c ^ String.make (4 - r) '\x90'
    in
    let image_codec name img reference =
      let img = Ccomp_image.Image.with_block_crcs Ccomp_image.Image.Crc8_tags img in
      {
        Ccomp_fault.Campaign.name;
        encoded = Ccomp_image.Image.write img;
        reference;
        decode =
          (fun s ->
            Result.bind (Ccomp_image.Image.read_checked s) Ccomp_image.Image.decompress_checked);
        integrity_checked = true;
      }
    in
    let codecs =
      [
        image_codec "samc-mips"
          (Ccomp_image.Image.of_samc ~isa:Ccomp_image.Image.Mips
             (Ccomp_core.Samc.compress (Ccomp_core.Samc.mips_config ()) mips))
          mips;
        image_codec "samc-x86"
          (Ccomp_image.Image.of_samc ~isa:Ccomp_image.Image.X86
             (Ccomp_core.Samc.compress (Ccomp_core.Samc.byte_config ()) x86))
          x86;
        image_codec "sadc-mips"
          (Ccomp_image.Image.of_sadc_mips
             (Ccomp_core.Sadc.Mips.compress_image (Ccomp_core.Sadc.default_config ()) mips))
          mips;
        image_codec "sadc-x86"
          (Ccomp_image.Image.of_sadc_x86
             (Ccomp_core.Sadc.X86.compress_image (Ccomp_core.Sadc.default_config ()) x86))
          x86;
        {
          Ccomp_fault.Campaign.name = "byte-huffman";
          encoded = Ccomp_baselines.Byte_huffman.(serialize (compress mips));
          reference = mips;
          decode =
            (fun s ->
              Result.bind
                (Ccomp_baselines.Byte_huffman.deserialize_checked s ~pos:0)
                (fun (c, _) ->
                  Ccomp_baselines.Byte_huffman.decompress_checked
                    ~max_output:(String.length mips) c));
          integrity_checked = false;
        };
        {
          Ccomp_fault.Campaign.name = "lzw";
          encoded = Ccomp_baselines.Lzw.compress mips;
          reference = mips;
          decode =
            Ccomp_baselines.Lzw.decompress_checked ~max_output:(String.length mips);
          integrity_checked = false;
        };
        {
          Ccomp_fault.Campaign.name = "lzss";
          encoded = Ccomp_baselines.Lzss.compress mips;
          reference = mips;
          decode =
            Ccomp_baselines.Lzss.decompress_checked ~max_output:(String.length mips);
          integrity_checked = false;
        };
      ]
    in
    print_endline Ccomp_fault.Campaign.report_header;
    let reports =
      List.map
        (fun codec ->
          let r =
            Ccomp_fault.Campaign.run ~faults_per_trial:faults ~kinds ~jobs ~seed ~trials codec
          in
          print_endline (Ccomp_fault.Campaign.report_row r);
          r)
        codecs
    in
    let bad =
      List.filter
        (fun r ->
          r.Ccomp_fault.Campaign.integrity_checked && r.Ccomp_fault.Campaign.miscompared > 0)
        reports
    in
    if bad = [] then `Ok ()
    else
      `Error
        ( false,
          Printf.sprintf "silent miscompares on integrity-checked codecs: %s"
            (String.concat ", " (List.map (fun r -> r.Ccomp_fault.Campaign.codec_name) bad)) )
  in
  let trials_arg =
    Arg.(value & opt int 200 & info [ "trials" ] ~docv:"N" ~doc:"Fault-injection trials per codec.")
  in
  let faults_arg =
    Arg.(value & opt int 1 & info [ "faults" ] ~docv:"N" ~doc:"Faults injected per trial.")
  in
  let kinds_arg =
    Arg.(
      value
      & opt kinds_conv [| Ccomp_fault.Injector.Flip |]
      & info [ "kinds" ] ~docv:"LIST" ~doc:"Comma-separated fault kinds: flip,byte,trunc,dup.")
  in
  let fuzz_scale_arg =
    Arg.(value & opt float 0.25 & info [ "scale" ] ~docv:"S" ~doc:"Program size scale factor.")
  in
  let term =
    Term.(
      ret
        (const run $ profile_arg $ seed_arg $ trials_arg $ faults_arg $ kinds_arg $ fuzz_scale_arg
       $ jobs_arg $ metrics_arg $ trace_out_arg $ events_arg))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Inject storage faults into compressed images and check every decoder fails closed \
          (exit 1 on any silent miscompare of an integrity-checked codec).")
    term

(* --- simulate ---------------------------------------------------------- *)

let simulate_cmd =
  let run profile isa seed cache_bytes trace_length decode_cache fault_rate response trap_cycles
      flip_back fault_seed metrics trace_out events =
    with_obs ~events ~metrics ~trace:trace_out @@ fun () ->
      let prog = Ccomp_progen.Generator.generate ~seed:(Int64.of_int seed) profile in
      let layout =
        match isa with
        | Mips -> snd (Ccomp_progen.Mips_backend.lower prog)
        | X86 -> snd (Ccomp_progen.X86_backend.lower prog)
      in
      let code = layout.Ccomp_progen.Layout.code in
      let trace =
        Ccomp_progen.Trace.generate prog layout ~seed:(Int64.of_int (seed + 1)) ~length:trace_length
      in
      let pad =
        (* SAMC needs whole words; pad the x86 image to a word multiple. *)
        let r = String.length code mod 4 in
        if r = 0 then code else code ^ String.make (4 - r) '\x90'
      in
      let samc =
        match isa with
        | Mips -> Ccomp_core.Samc.compress (Ccomp_core.Samc.mips_config ()) pad
        | X86 -> Ccomp_core.Samc.compress (Ccomp_core.Samc.byte_config ()) pad
      in
      let lat = Ccomp_memsys.Lat.of_blocks samc.Ccomp_core.Samc.blocks in
      let base =
        Ccomp_memsys.System.run (Ccomp_memsys.System.default_config ~cache_bytes ()) ~trace ()
      in
      let comp =
        Ccomp_memsys.System.run
          (Ccomp_memsys.System.default_config ~cache_bytes
             ~decompressor:Ccomp_memsys.System.samc_decompressor
             ~decode_cache_entries:decode_cache ())
          ~lat ~trace ()
      in
      Printf.printf "profile %s on %s: %d fetches, cache %d bytes\n"
        profile.Ccomp_progen.Profile.name
        (match isa with Mips -> "mips" | X86 -> "x86")
        (Array.length trace) cache_bytes;
      Printf.printf "  uncompressed: CPI %.3f, hit ratio %.4f\n" base.Ccomp_memsys.System.cpi
        base.Ccomp_memsys.System.hit_ratio;
      Printf.printf "  samc:         CPI %.3f, CLB misses %d, slowdown %.3f\n"
        comp.Ccomp_memsys.System.cpi comp.Ccomp_memsys.System.clb_misses
        (Ccomp_memsys.System.slowdown ~compressed:comp ~uncompressed:base);
      if decode_cache > 0 then
        Printf.printf "  decode cache: %d entries, %d hits / %d misses (%.1f%% of refills decode-free)\n"
          decode_cache comp.Ccomp_memsys.System.decode_cache_hits
          comp.Ccomp_memsys.System.decode_cache_misses
          (let h = comp.Ccomp_memsys.System.decode_cache_hits
           and m = comp.Ccomp_memsys.System.decode_cache_misses in
           if h + m = 0 then 0.0 else 100.0 *. float_of_int h /. float_of_int (h + m));
      if fault_rate > 0.0 then begin
        let fault =
          {
            Ccomp_memsys.System.default_fault_config with
            fault_rate;
            response;
            trap_cycles;
            flip_back;
            fault_seed;
          }
        in
        let faulty =
          Ccomp_memsys.System.run
            (Ccomp_memsys.System.default_config ~cache_bytes
               ~decompressor:Ccomp_memsys.System.samc_decompressor ~fault ())
            ~lat ~trace ()
        in
        Printf.printf
          "  samc+faults:  CPI %.3f, slowdown %.3f (rate %g, %s)\n"
          faulty.Ccomp_memsys.System.cpi
          (Ccomp_memsys.System.slowdown ~compressed:faulty ~uncompressed:base)
          fault_rate
          (match response with
          | Ccomp_memsys.System.Retry n -> Printf.sprintf "retry:%d" n
          | Ccomp_memsys.System.Trap -> "trap"
          | Ccomp_memsys.System.Stale -> "stale");
        Printf.printf
          "                faults %d, retries %d, traps %d, stale lines %d, undetected %d\n"
          faulty.Ccomp_memsys.System.faults_injected faulty.Ccomp_memsys.System.fault_retries
          faulty.Ccomp_memsys.System.fault_traps faulty.Ccomp_memsys.System.stale_lines
          faulty.Ccomp_memsys.System.undetected_faults
      end;
      `Ok ()
  in
  let cache_arg =
    Arg.(value & opt int 8192 & info [ "cache" ] ~docv:"BYTES" ~doc:"I-cache size in bytes.")
  in
  let trace_arg =
    Arg.(value & opt int 500000 & info [ "trace-length" ] ~docv:"N" ~doc:"Fetches to simulate.")
  in
  let decode_cache_arg =
    Arg.(
      value & opt int 0
      & info [ "decode-cache" ] ~docv:"N"
          ~doc:
            "Decoded-block LRU entries in the refill engine (0 = off): repeated misses to a \
             recently decoded block skip re-decompression.")
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"P" ~doc:"Probability a refill's decode is faulty (0 = off).")
  in
  let fault_response_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ "trap" ] -> Ok Ccomp_memsys.System.Trap
      | [ "stale" ] -> Ok Ccomp_memsys.System.Stale
      | [ "retry"; n ] -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> Ok (Ccomp_memsys.System.Retry n)
        | _ -> Error (`Msg (Printf.sprintf "bad retry budget %S" n)))
      | _ -> Error (`Msg (Printf.sprintf "unknown fault response %S (retry:N|trap|stale)" s))
    in
    let print fmt r =
      Format.pp_print_string fmt
        (match r with
        | Ccomp_memsys.System.Retry n -> Printf.sprintf "retry:%d" n
        | Ccomp_memsys.System.Trap -> "trap"
        | Ccomp_memsys.System.Stale -> "stale")
    in
    Arg.conv (parse, print)
  in
  let fault_response_arg =
    Arg.(
      value
      & opt fault_response_conv (Ccomp_memsys.System.Retry 3)
      & info [ "fault-response" ] ~docv:"R" ~doc:"Refill fault response: retry:N, trap or stale.")
  in
  let trap_cycles_arg =
    Arg.(value & opt int 200 & info [ "trap-cycles" ] ~docv:"N" ~doc:"Trap handler cost in cycles.")
  in
  let flip_back_arg =
    Arg.(
      value & opt float 0.5
      & info [ "flip-back" ] ~docv:"P" ~doc:"Probability one retry of a transient fault succeeds.")
  in
  let fault_seed_arg =
    Arg.(value & opt int 1 & info [ "fault-seed" ] ~docv:"SEED" ~doc:"Fault-injection PRNG seed.")
  in
  let term =
    Term.(
      ret
        (const run $ profile_arg $ isa_arg $ seed_arg $ cache_arg $ trace_arg $ decode_cache_arg
       $ fault_rate_arg $ fault_response_arg $ trap_cycles_arg $ flip_back_arg $ fault_seed_arg
       $ metrics_arg $ trace_out_arg $ events_arg))
  in
  Cmd.v (Cmd.info "simulate" ~doc:"Run the compressed-memory-system model on a profile.") term

(* --- stats -------------------------------------------------------------- *)

(* Per-metric deltas between two snapshot files: `stats --diff A.json
   B.json` prints B relative to A (before/after runs). Union of names;
   metrics present on only one side show up with a one-sided value. *)
let render_diff (a : Obs.snapshot) (b : Obs.snapshot) =
  let buf = Buffer.create 1024 in
  let union names_a names_b =
    List.sort_uniq compare (List.map fst names_a @ List.map fst names_b)
  in
  let counters = union a.Obs.counters b.Obs.counters in
  if counters <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "counters:\n  %-44s %14s %14s %14s\n" "" "before" "after" "delta");
    List.iter
      (fun name ->
        let va = Option.value ~default:0 (List.assoc_opt name a.Obs.counters) in
        let vb = Option.value ~default:0 (List.assoc_opt name b.Obs.counters) in
        if va <> 0 || vb <> 0 then
          Buffer.add_string buf (Printf.sprintf "  %-44s %14d %14d %+14d\n" name va vb (vb - va)))
      counters
  end;
  let gauges = union a.Obs.gauges b.Obs.gauges in
  if gauges <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "gauges:\n  %-44s %14s %14s %14s\n" "" "before" "after" "delta");
    List.iter
      (fun name ->
        let va = Option.value ~default:0.0 (List.assoc_opt name a.Obs.gauges) in
        let vb = Option.value ~default:0.0 (List.assoc_opt name b.Obs.gauges) in
        Buffer.add_string buf
          (Printf.sprintf "  %-44s %14.4g %14.4g %+14.4g\n" name va vb (vb -. va)))
      gauges
  end;
  let hist_names =
    List.sort_uniq compare
      (List.map (fun (h : Obs.histogram_stats) -> h.Obs.hs_name) a.Obs.histograms
      @ List.map (fun (h : Obs.histogram_stats) -> h.Obs.hs_name) b.Obs.histograms)
  in
  if hist_names <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "histograms:\n  %-34s %14s %14s %10s %10s\n" "" "Δcount" "Δsum" "p95 before"
         "p95 after");
    List.iter
      (fun name ->
        let find (s : Obs.snapshot) =
          List.find_opt (fun (h : Obs.histogram_stats) -> h.Obs.hs_name = name) s.Obs.histograms
        in
        let ca, sa, pa =
          match find a with Some h -> (h.Obs.hs_count, h.Obs.hs_sum, h.Obs.hs_p95) | None -> (0, 0.0, 0.0)
        in
        let cb, sb, pb =
          match find b with Some h -> (h.Obs.hs_count, h.Obs.hs_sum, h.Obs.hs_p95) | None -> (0, 0.0, 0.0)
        in
        Buffer.add_string buf
          (Printf.sprintf "  %-34s %+14d %+14.4g %10.4g %10.4g\n" name (cb - ca) (sb -. sa) pa pb))
      hist_names
  end;
  if Buffer.length buf = 0 then Buffer.add_string buf "no metrics in either snapshot\n";
  Buffer.contents buf

let host_arg =
  Arg.(
    value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind/connect.")

let port_arg ~default =
  Arg.(value & opt int default & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (serve: 0 = ephemeral).")

let timeout_arg =
  Arg.(
    value & opt float 10.0
    & info [ "timeout" ] ~docv:"SECS"
        ~doc:"Connect/read/write budget — a dead or wedged daemon errors instead of hanging.")

let stats_cmd =
  let run json diff slow host port timeout n input =
    let load path =
      match Obs.snapshot_of_json (read_file path) with
      | Error e -> Error (Printf.sprintf "cannot read %s: %s" path e)
      | Ok snap -> Ok snap
    in
    if slow then begin
      (* live mode: pull the daemon's tail-sampled slow-request ring *)
      match
        Serve.http_get ~timeout_s:timeout ~host ~port (Printf.sprintf "/slow?n=%d" (max 1 n))
      with
      | Error e -> `Error (false, "stats --slow: " ^ e)
      | Ok (status, _) when status <> 200 ->
        `Error (false, Printf.sprintf "stats --slow: daemon answered HTTP %d" status)
      | Ok (_, body) -> (
        let lines = List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' body) in
        let parsed = List.map Slow.of_json_line lines in
        match List.find_opt Result.is_error parsed with
        | Some (Error e) -> `Error (false, "stats --slow: bad record from daemon: " ^ e)
        | _ ->
          let records = List.filter_map Result.to_option parsed in
          if json then List.iter (fun r -> print_endline (Slow.to_json_line r)) records
          else print_string (Slow.render_table records);
          `Ok ())
    end
    else
      match input with
      | None ->
        `Error (true, "a METRICS.json argument is required (or use --slow against a daemon)")
      | Some input -> (
        match diff with
        | Some before_path -> (
          match (load before_path, load input) with
          | Error e, _ | _, Error e -> `Error (false, e)
          | Ok before, Ok after ->
            print_string (render_diff before after);
            `Ok ())
        | None -> (
          match load input with
          | Error e -> `Error (false, e)
          | Ok snap ->
            if json then print_string (Obs.snapshot_to_json snap)
            else begin
              print_string (Obs.render_table snap);
              (* "what dominates p99": stage attribution, when the snapshot
                 came from a daemon that recorded serve.stage.* *)
              match Latency.attribution snap with
              | None -> ()
              | Some report ->
                print_newline ();
                print_string (Latency.render report)
            end;
            `Ok ()))
  in
  let input = Arg.(value & pos 0 (some file) None & info [] ~docv:"METRICS.json") in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Re-emit the snapshot as canonical JSON (with --slow: raw JSON lines).")
  in
  let diff_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "diff" ] ~docv:"BASELINE.json"
          ~doc:
            "Print per-metric deltas of METRICS.json relative to $(docv) (before/after runs) \
             instead of a report.")
  in
  let slow_arg =
    Arg.(
      value & flag
      & info [ "slow" ]
          ~doc:
            "Fetch a running daemon's tail-sampled slow-request ring (GET /slow) and render the \
             per-stage split, GC deltas and queue depth of each sampled request.")
  in
  let slow_n_arg =
    Arg.(
      value & opt int 50 & info [ "n" ] ~docv:"N" ~doc:"With --slow: fetch at most $(docv) records.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Render a --metrics JSON snapshot as a human-readable report, diff two snapshots, or \
          (--slow) fetch a daemon's slow-request samples.")
    Term.(
      ret
        (const run $ json_arg $ diff_arg $ slow_arg $ host_arg $ port_arg ~default:7070
       $ timeout_arg $ slow_n_arg $ input))

(* --- serve / submit / scrape / top -------------------------------------- *)

let serve_cmd =
  (* The daemon's codec jobs allocate megabytes of short-lived scratch
     per request; with the stock 256k-word nursery that churn is
     promoted into major-GC pauses that land straight in the latency
     tail. OCaml 5.1 fixes each domain's minor-heap size at process
     startup — [Gc.set] cannot grow it later — so the only way to serve
     with a bigger nursery is to enter the runtime with one: re-exec
     once with a tuned OCAMLRUNPARAM. An operator who set their own
     OCAMLRUNPARAM keeps it untouched. *)
  let retune_runtime () =
    match Sys.getenv_opt "OCAMLRUNPARAM" with
    | Some _ -> ()
    | None -> (
      try
        Unix.putenv "OCAMLRUNPARAM" "s=4M,o=300";
        Unix.execv Sys.executable_name Sys.argv
      with Unix.Unix_error _ -> ())
  in
  let run host port jobs workers acceptors queue_cap max_requests idle_timeout io_timeout drain
      allow_crash slow_threshold slow_ring metrics trace events =
    retune_runtime ();
    let jobs = resolve_jobs jobs in
    with_obs ~events ~metrics ~trace @@ fun () ->
    (* the daemon IS the observability surface: metrics and the event
       ring are always live while it runs *)
    Obs.set_metrics true;
    Events.set_enabled true;
    let cfg =
      {
        Serve.host;
        port;
        jobs;
        workers = max 1 workers;
        acceptors = max 1 acceptors;
        queue_cap = max 1 queue_cap;
        max_requests_per_conn = max 0 max_requests;
        idle_timeout_s = idle_timeout;
        io_timeout_s = io_timeout;
        drain_s = drain;
        allow_crash_op = allow_crash;
        slow_threshold_ms = slow_threshold;
        slow_capacity = max 1 slow_ring;
      }
    in
    match
      Serve.run cfg ~on_ready:(fun p ->
          Printf.printf "ccomp serve: listening on %s:%d\n%!" host p)
    with
    | () -> `Ok ()
    | exception Unix.Unix_error (e, fn, _) ->
      `Error (false, Printf.sprintf "serve: %s: %s" fn (Unix.error_message e))
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains, each with its own bounded connection queue (each job still fans out \
             over --jobs).")
  in
  let acceptors_arg =
    Arg.(
      value & opt int 1
      & info [ "acceptors" ] ~docv:"N"
          ~doc:
            "Acceptor domains, each on its own SO_REUSEPORT listener (falling back to one shared \
             non-blocking listener where the option is unavailable).")
  in
  let queue_cap_arg =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"Per-worker queue bound; connections beyond it are shed with a typed overload reply.")
  in
  let max_requests_arg =
    Arg.(
      value & opt int 0
      & info [ "max-requests-per-conn" ] ~docv:"N"
          ~doc:
            "Recycle a keep-alive connection after $(docv) frames (clients reconnect and resend; \
             0 = unbounded).")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt float 10.0
      & info [ "idle-timeout" ] ~docv:"SECS"
          ~doc:"Close a connection that sends nothing for this long.")
  in
  let io_timeout_arg =
    Arg.(
      value & opt float 30.0
      & info [ "io-timeout" ] ~docv:"SECS"
          ~doc:"Budget for reading one request frame / writing one response (bounds slowloris peers).")
  in
  let drain_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain" ] ~docv:"SECS"
          ~doc:"On SIGTERM: finish queued jobs for up to this long, then shed the rest and exit.")
  in
  let crash_op_arg =
    Arg.(
      value & flag
      & info [ "unsafe-crash-op" ]
          ~doc:
            "Honour the crash-worker opcode (chaos testing: kills a worker domain to exercise \
             supervision). Never enable in production.")
  in
  let slow_threshold_arg =
    Arg.(
      value & opt float 100.0
      & info [ "slow-threshold-ms" ] ~docv:"MS"
          ~doc:
            "Tail-sample any request whose total latency reaches $(docv) into the /slow ring (0 = \
             sample every request); shed and deadline-expired outcomes are always sampled.")
  in
  let slow_ring_arg =
    Arg.(
      value & opt int 64
      & info [ "slow-ring" ] ~docv:"N"
          ~doc:"Capacity of the slow-request ring; overflow keeps the most recent records.")
  in
  let term =
    Term.(
      ret
        (const run $ host_arg $ port_arg ~default:7070 $ jobs_arg $ workers_arg $ acceptors_arg
       $ queue_cap_arg $ max_requests_arg $ idle_timeout_arg $ io_timeout_arg $ drain_arg
       $ crash_op_arg $ slow_threshold_arg $ slow_ring_arg $ metrics_arg $ trace_out_arg
       $ events_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the compression daemon: length-prefixed compress/decompress jobs (keep-alive: a \
          connection carries a sequence of frames) plus /metrics (OpenMetrics), /healthz, \
          /events, /snapshot and /slow over HTTP/1.0 on one port. Overload-safe: bounded queues \
          with typed shed replies, per-request deadlines, per-connection i/o budgets, graceful \
          drain on SIGTERM, supervised workers, sharded acceptors. With metrics on, per-domain \
          GC/runtime telemetry lands in runtime.* and the slowest requests are tail-sampled with \
          per-stage GC deltas.")
    term

let submit_cmd =
  let run host port timeout deadline_ms retries legacy op algo isa block_size input output =
    let data = read_file input in
    let req =
      match op with
      | "compress" ->
        Serve.Compress
          {
            algo = (match algo with Samc -> Serve.Samc | Sadc -> Serve.Sadc);
            isa = (match isa with Mips -> Serve.Mips | X86 -> Serve.X86);
            block_size;
            code = data;
          }
      | "decompress" -> Serve.Decompress data
      | _ -> Serve.Ping
    in
    let result =
      if legacy then
        match Serve.submit_legacy ~timeout_s:timeout ~deadline_ms ~host ~port req with
        | Ok (Serve.Payload p) -> Ok p
        | Ok (Serve.Failed m) -> Error m
        | Ok (Serve.Overloaded m) -> Error ("overloaded: " ^ m)
        | Ok (Serve.Deadline_expired m) -> Error ("deadline expired: " ^ m)
        | Error e -> Error e
      else Serve.request ~timeout_s:timeout ~deadline_ms ~retries ~host ~port req
    in
    match result with
    | Error e -> `Error (false, "submit: " ^ e)
    | Ok payload ->
      let path =
        match output with
        | Some p -> p
        | None -> input ^ (if op = "compress" then ".secf" else ".out")
      in
      write_file path payload;
      Printf.printf "wrote %s: %d bytes (%s via %s:%d)\n" path (String.length payload) op host
        port;
      `Ok ()
  in
  let op_arg =
    Arg.(
      value
      & opt (enum [ ("compress", "compress"); ("decompress", "decompress") ]) "compress"
      & info [ "op" ] ~docv:"OP" ~doc:"Job type: compress or decompress.")
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline carried in the frame header; the daemon answers `deadline \
             expired' instead of finishing late work (0 = none).")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retry transport errors and typed overload replies with jittered backoff.")
  in
  let legacy_arg =
    Arg.(
      value & flag
      & info [ "legacy-oneshot" ]
          ~doc:
            "Use the pre-v4 one-shot wire shape (write the frame, shut down the send side, read \
             the reply to EOF) instead of the framed keep-alive client — the compatibility probe \
             the serve gate asserts; --retries is ignored.")
  in
  let term =
    Term.(
      ret
        (const run $ host_arg $ port_arg ~default:7070 $ timeout_arg $ deadline_arg $ retries_arg
       $ legacy_arg $ op_arg $ algo_arg $ isa_arg $ block_size_arg $ input $ output_arg))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit one compress/decompress job to a running `ccomp serve` daemon.")
    term

let scrape_cmd =
  let run host port timeout target =
    match Serve.http_get ~timeout_s:timeout ~host ~port target with
    | Error e -> `Error (false, "scrape: " ^ e)
    | Ok (200, body) ->
      print_string body;
      `Ok ()
    | Ok (status, body) ->
      `Error (false, Printf.sprintf "scrape: HTTP %d from %s: %s" status target (String.trim body))
  in
  let target =
    Arg.(value & pos 0 string "/metrics" & info [] ~docv:"PATH" ~doc:"Endpoint path to fetch.")
  in
  Cmd.v
    (Cmd.info "scrape"
       ~doc:"Fetch one HTTP endpoint (/metrics, /healthz, /events, /snapshot) from a daemon.")
    Term.(ret (const run $ host_arg $ port_arg ~default:7070 $ timeout_arg $ target))

let top_cmd =
  let run host port interval frames window plain timeout =
    match
      Top.run
        {
          Top.host;
          port;
          interval_s = interval;
          frames;
          window_s = window;
          plain;
          timeout_s = timeout;
        }
    with
    | Ok () -> `Ok ()
    | Error e -> `Error (false, "top: " ^ e)
  in
  let interval_arg =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECS" ~doc:"Seconds between polls.")
  in
  let frames_arg =
    Arg.(
      value & opt int 0
      & info [ "frames" ] ~docv:"N" ~doc:"Render N frames then exit (0 = run until q/Ctrl-C).")
  in
  let window_arg =
    Arg.(
      value & opt float 30.0 & info [ "window" ] ~docv:"SECS" ~doc:"Rolling-window length for rates.")
  in
  let plain_arg =
    Arg.(value & flag & info [ "plain" ] ~doc:"No screen clearing — append frames to stdout.")
  in
  let term =
    Term.(
      ret
        (const run $ host_arg $ port_arg ~default:7070 $ interval_arg $ frames_arg $ window_arg
       $ plain_arg $ timeout_arg))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running daemon: windowed rates, histogram percentiles and the \
          event tail.")
    term

let chaos_cmd =
  let run host port seed rounds flood stall timeout crash metrics events =
    with_obs ~events ~metrics ~trace:None @@ fun () ->
    Obs.set_metrics true;
    Events.set_enabled true;
    let cfg =
      {
        Ccomp_fault.Net_chaos.host;
        port;
        seed;
        rounds;
        flood;
        stall_s = Float.max 0.0 stall;
        timeout_s = timeout;
        crash_workers = crash;
      }
    in
    match Ccomp_fault.Net_chaos.run cfg with
    | Error e -> `Error (false, "chaos: " ^ e)
    | Ok report -> (
      List.iter print_endline (Ccomp_fault.Net_chaos.report_lines report);
      match Ccomp_fault.Net_chaos.passed cfg report with
      | Ok () ->
        Printf.printf "chaos: PASS (replay with --seed %d)\n" seed;
        `Ok ()
      | Error why -> `Error (false, "chaos: FAIL: " ^ why))
  in
  let rounds_arg =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N" ~doc:"Repetitions of the attack mix.")
  in
  let flood_arg =
    Arg.(
      value & opt int 0
      & info [ "flood" ] ~docv:"N"
          ~doc:
            "Hold N silent connections open per round to force queue-full shedding (pick N > \
             workers * queue-cap; 0 = skip).")
  in
  let stall_arg =
    Arg.(
      value & opt float 0.0
      & info [ "stall" ] ~docv:"SECONDS"
          ~doc:
            "Once per round, answer one frame then go silent for SECONDS on the open \
             connection; the daemon must idle-close it. Pick a value above the daemon's \
             --idle-timeout (0 = skip).")
  in
  let crash_arg =
    Arg.(
      value & flag
      & info [ "crash-workers" ]
          ~doc:
            "Also send the crash-worker opcode (the daemon must be running with \
             --unsafe-crash-op) to exercise worker supervision.")
  in
  let term =
    Term.(
      ret
        (const run $ host_arg $ port_arg ~default:7070 $ seed_arg $ rounds_arg $ flood_arg
       $ stall_arg $ timeout_arg $ crash_arg $ metrics_arg $ events_arg))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run a seeded socket-level chaos campaign against a live daemon: slowloris, mid-frame \
          truncation, connection churn, RST aborts, oversized frames, overload floods, deadline \
          probes, and keep-alive abuse (pipelined bursts with reply-order checks, torn frames \
          mid-stream, inter-frame stalls via --stall), with byte-identity checks on every \
          completed job over both the keep-alive and legacy one-shot wire shapes. Exits \
          non-zero unless the daemon stays live and sheds with typed replies; any failure \
          replays from the printed seed.")
    term

let loadgen_cmd =
  let run host port rate duration arrivals seed senders conns no_reuse payload_bytes algo isa
      block_size deadline_ms timeout mix_compress mix_decompress mix_ping slo_p99 slo_shed
      slo_deadline ramp ramp_low ramp_high ramp_iters emit_json merge_json print_schedule metrics
      events =
    let arrivals =
      match Loadgen.arrivals_of_string arrivals with
      | Some a -> a
      | None -> Loadgen.Poisson (* unreachable: enum-checked by cmdliner *)
    in
    if print_schedule > 0 then begin
      (* schedule preview: deterministic, no daemon needed — what the
         shell smoke test uses to assert seeded replay *)
      let sched = Loadgen.schedule ~arrivals ~rate_rps:rate ~duration_s:duration ~seed in
      Array.iteri
        (fun i off -> if i < print_schedule then Printf.printf "%.6f\n" off)
        sched;
      `Ok ()
    end
    else begin
      with_obs ~events ~metrics ~trace:None @@ fun () ->
      Obs.set_metrics true;
      Events.set_enabled true;
      let cfg =
        {
          Loadgen.host;
          port;
          rate_rps = rate;
          duration_s = duration;
          arrivals;
          seed;
          senders;
          conns;
          conn_reuse = not no_reuse;
          payload_bytes;
          algo = (match algo with Samc -> Serve.Samc | Sadc -> Serve.Sadc);
          isa = (match isa with Mips -> Serve.Mips | X86 -> Serve.X86);
          block_size;
          deadline_ms;
          timeout_s = timeout;
          mix_compress;
          mix_decompress;
          mix_ping;
          slo_p99_ms = slo_p99;
          slo_shed_rate = slo_shed;
          slo_deadline_rate = slo_deadline;
        }
      in
      let result =
        if ramp then
          (* ramp mode: failing probes are the search mechanism, not a
             CLI failure — only "couldn't search at all" is an error *)
          Result.map
            (fun (report, capacity) -> (report, [ ("loadgen.capacity_rps", capacity) ]))
            (Loadgen.ramp ~low:ramp_low ~high:ramp_high ~iters:ramp_iters
               ~progress:print_endline cfg)
        else Result.map (fun report -> (report, [])) (Loadgen.run cfg)
      in
      match result with
      | Error e -> `Error (false, "loadgen: " ^ e)
      | Ok (report, extra) -> (
        print_string (Loadgen.render cfg report);
        List.iter (fun (k, v) -> Printf.printf "  %s = %.1f\n" k v) extra;
        (match emit_json with
        | Some path ->
          Loadgen.emit_json ~extra ~path report;
          Printf.printf "wrote %s\n" path
        | None -> ());
        match
          match merge_json with
          | Some path -> Result.map (fun () -> Printf.printf "merged into %s\n" path)
                           (Loadgen.merge_json ~extra ~path report)
          | None -> Ok ()
        with
        | Error e -> `Error (false, "loadgen: --merge-json: " ^ e)
        | Ok () ->
          if (not ramp) && report.Loadgen.r_slo_violations <> [] then
            `Error
              ( false,
                "loadgen: SLO violated: "
                ^ String.concat "; " report.Loadgen.r_slo_violations )
          else `Ok ())
    end
  in
  let rate_arg =
    Arg.(
      value & opt float 50.0
      & info [ "rate" ] ~docv:"RPS" ~doc:"Offered arrival rate, requests per second (open loop).")
  in
  let duration_arg =
    Arg.(value & opt float 5.0 & info [ "duration" ] ~docv:"SECS" ~doc:"Schedule horizon.")
  in
  let arrivals_arg =
    Arg.(
      value
      & opt (enum [ ("poisson", "poisson"); ("uniform", "uniform") ]) "poisson"
      & info [ "arrivals" ] ~docv:"KIND"
          ~doc:"Arrival process: seeded poisson (exponential inter-arrivals) or uniform.")
  in
  let senders_arg =
    Arg.(
      value & opt int 4
      & info [ "senders" ] ~docv:"N" ~doc:"Concurrent sender domains pulling from one schedule.")
  in
  let conns_arg =
    Arg.(
      value & opt int 0
      & info [ "conns" ] ~docv:"N"
          ~doc:
            "Persistent connection slots fleet-wide, spread over --senders (0 = one per sender); \
             each sender round-robins its share per request.")
  in
  let no_reuse_arg =
    Arg.(
      value & flag
      & info [ "no-reuse" ]
          ~doc:
            "Tear the connection down after every request (the pre-keep-alive behaviour) instead \
             of reusing it — for measuring what connection reuse buys.")
  in
  let payload_arg =
    Arg.(
      value & opt int 4096
      & info [ "payload-bytes" ] ~docv:"BYTES" ~doc:"Compress-job body size (seeded random code).")
  in
  let deadline_arg =
    Arg.(
      value & opt int 0
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request deadline in the frame header (0 = none).")
  in
  let mix_arg name ~default what =
    Arg.(
      value & opt int default
      & info [ "mix-" ^ name ] ~docv:"W" ~doc:(Printf.sprintf "Job-mix weight for %s." what))
  in
  let slo_arg name docv what =
    Arg.(
      value
      & opt (some float) None
      & info [ name ] ~docv
          ~doc:(Printf.sprintf "Declared SLO: fail (exit non-zero) when %s exceeds this." what))
  in
  let ramp_arg =
    Arg.(
      value & flag
      & info [ "ramp" ]
          ~doc:
            "Binary-search the offered rate for the daemon's SLO capacity instead of one run: \
             probe --ramp-low and --ramp-high, bisect --ramp-iters times, report the highest \
             passing rate as loadgen.capacity_rps. Requires a declared --slo-* bound; failing \
             probes are part of the search and do not fail the command.")
  in
  let ramp_low_arg =
    Arg.(
      value & opt float 25.0
      & info [ "ramp-low" ] ~docv:"RPS" ~doc:"Ramp lower bound (must pass the SLO).")
  in
  let ramp_high_arg =
    Arg.(
      value & opt float 2000.0
      & info [ "ramp-high" ] ~docv:"RPS" ~doc:"Ramp upper bound (expected to trip the SLO).")
  in
  let ramp_iters_arg =
    Arg.(
      value & opt int 5
      & info [ "ramp-iters" ] ~docv:"N" ~doc:"Bisection steps between the ramp bounds.")
  in
  let emit_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-json" ] ~docv:"FILE"
          ~doc:"Write the report as a standalone ccomp-bench-v1 JSON file.")
  in
  let merge_json_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "merge-json" ] ~docv:"BENCH.json"
          ~doc:"Append the loadgen.* section to an existing ccomp-bench-v1 file.")
  in
  let print_schedule_arg =
    Arg.(
      value & opt int 0
      & info [ "print-schedule" ] ~docv:"N"
          ~doc:
            "Print the first N arrival offsets (seconds) and exit without contacting a daemon — \
             the schedule is a pure function of --arrivals/--rate/--duration/--seed.")
  in
  let term =
    Term.(
      ret
        (const run $ host_arg $ port_arg ~default:7070 $ rate_arg $ duration_arg $ arrivals_arg
       $ seed_arg $ senders_arg $ conns_arg $ no_reuse_arg $ payload_arg $ algo_arg $ isa_arg
       $ block_size_arg $ deadline_arg $ timeout_arg
       $ mix_arg "compress" ~default:1 "compress jobs"
       $ mix_arg "decompress" ~default:1 "decompress jobs"
       $ mix_arg "ping" ~default:2 "ping jobs"
       $ slo_arg "slo-p99-ms" "MS" "the corrected p99 latency (ms)"
       $ slo_arg "slo-shed-rate" "RATE" "the shed fraction of sent requests"
       $ slo_arg "slo-deadline-rate" "RATE" "the deadline-expired fraction of sent requests"
       $ ramp_arg $ ramp_low_arg $ ramp_high_arg $ ramp_iters_arg $ emit_json_arg $ merge_json_arg
       $ print_schedule_arg $ metrics_arg $ events_arg))
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Generate seeded open-loop traffic against a running daemon and report \
          coordinated-omission-safe latency percentiles (p50/p95/p99/p99.9), throughput, shed and \
          deadline-expired rates, the server-side queue/service/network split from per-request \
          wire timing, and the daemon's runtime.* GC telemetry bracketing the run. Declared \
          --slo-* bounds turn violations into a non-zero exit; --ramp binary-searches the offered \
          rate for the SLO capacity instead.")
    term

(* --- asm / disasm ------------------------------------------------------- *)

let asm_cmd =
  let run input output =
    match Ccomp_isa.Mips_asm.parse_program (read_file input) with
    | Error e -> `Error (false, e)
    | Ok instrs ->
      let code = Ccomp_isa.Mips.encode_program instrs in
      let path = match output with Some p -> p | None -> input ^ ".bin" in
      write_file path code;
      Printf.printf "assembled %d instructions (%d bytes) into %s\n" (List.length instrs)
        (String.length code) path;
      `Ok ()
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT.S") in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble MIPS text into a raw code image.")
    Term.(ret (const run $ input $ output_arg))

let disasm_cmd =
  let run isa input =
    let code = read_file input in
    match isa with
    | Mips ->
      if String.length code mod 4 <> 0 then `Error (false, "image size not a multiple of 4")
      else begin
        let decoded = Ccomp_isa.Mips.decode_program code in
        Array.iteri
          (fun k d ->
            match d with
            | Some i ->
              Printf.printf "%08x:  %08x  %s\n" (4 * k) (Ccomp_isa.Mips.encode i)
                (Ccomp_isa.Mips.to_string i)
            | None -> Printf.printf "%08x:  <undecodable>\n" (4 * k))
          decoded;
        `Ok ()
      end
    | X86 -> (
      match Ccomp_isa.X86.decode_program code with
      | None -> `Error (false, "image does not decode as x86")
      | Some instrs ->
        let addr = ref 0 in
        List.iter
          (fun i ->
            Printf.printf "%08x:  %s\n" !addr (Ccomp_isa.X86.to_string i);
            addr := !addr + Ccomp_isa.X86.length i)
          instrs;
        `Ok ())
  in
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT") in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Disassemble a raw code image.")
    Term.(ret (const run $ isa_arg $ input))

(* --- verify ------------------------------------------------------------ *)

module Verify = Ccomp_verify.Verify

let verify_cmd =
  let run pairs_csv profiles_csv scale seed block_size jobs golden bless golden_only fast
      shrink_budget repro_dir metrics trace events =
    let jobs = resolve_jobs jobs in
    with_obs ~events ~metrics ~trace @@ fun () ->
    let parse_csv s =
      String.split_on_char ',' s |> List.map String.trim |> List.filter (fun x -> x <> "")
    in
    let parse_pairs s =
      if s = "all" then Ok Verify.all_pairs
      else
        List.fold_left
          (fun acc name ->
            match (acc, Verify.pair_of_name name) with
            | Error _, _ -> acc
            | Ok _, (None | Some Verify.Golden) -> Error name
            | Ok ps, Some p -> Ok (ps @ [ p ]))
          (Ok []) (parse_csv s)
    in
    match parse_pairs pairs_csv with
    | Error name ->
      `Error
        ( false,
          Printf.sprintf "unknown pair %S (expected kernel, parallel, checked, serve, roundtrip \
                          or all)" name )
    | Ok pairs -> (
      let profiles = if fast then [ "gcc" ] else parse_csv profiles_csv in
      let scale = if fast then 0.05 else scale in
      match
        List.find_opt
          (fun p -> match Ccomp_progen.Profile.find p with _ -> false | exception Not_found -> true)
          profiles
      with
      | Some bad ->
        `Error
          ( false,
            Printf.sprintf "unknown profile %S; available: %s" bad
              (String.concat ", " (Ccomp_progen.Profile.names ())) )
      | None -> (
        let log = print_endline in
        (* The golden corpus first: blessing rewrites it, checking is the
           format-drift tripwire, and its inputs then join the pair sweep. *)
        let golden_state =
          match golden with
          | None -> Ok (0, [], [])
          | Some dir -> (
            let entries =
              if bless then begin
                let es = Verify.bless_golden ~dir in
                Printf.printf "blessed %d golden entries into %s\n" (List.length es) dir;
                Ok es
              end
              else Verify.load_golden ~dir
            in
            match entries with
            | Error e -> Error e
            | Ok entries -> (
              let checks, divs = Verify.check_golden ~log ~dir entries in
              match Verify.golden_inputs ~dir entries with
              | inputs -> Ok (checks, divs, inputs)
              | exception Sys_error e -> Error e))
        in
        match golden_state with
        | Error e -> `Error (false, "golden corpus: " ^ e)
        | Ok (golden_checks, golden_divs, golden_inputs) ->
          let inputs =
            if golden_only then []
            else
              golden_inputs
              @ Verify.progen_inputs ~profiles ~scale ~seed
          in
          let options = { Verify.jobs; block_size; shrink_budget } in
          let report = Verify.run ~options ~log ~pairs inputs in
          let divergences = golden_divs @ report.Verify.divergences in
          List.iteri
            (fun i d ->
              match d.Verify.d_repro with
              | None -> ()
              | Some repro ->
                let path =
                  Filename.concat repro_dir (Printf.sprintf "verify-repro-%d.bin" (i + 1))
                in
                write_file path repro;
                Printf.printf "wrote %s: %d-byte reproducer for %s %s\n" path
                  (String.length repro)
                  (Verify.pair_name d.Verify.d_pair)
                  d.Verify.d_case)
            divergences;
          let checks = golden_checks + report.Verify.checks in
          if divergences = [] then begin
            Printf.printf "verify: %d checks, 0 divergences\n" checks;
            `Ok ()
          end
          else
            `Error
              ( false,
                Printf.sprintf "verify: %d checks, %d divergence(s)" checks
                  (List.length divergences) )))
  in
  let pairs_arg =
    Arg.(
      value & opt string "all"
      & info [ "pairs" ] ~docv:"CSV"
          ~doc:
            "Equivalence pairs to test: comma-separated subset of kernel, parallel, checked, \
             serve, roundtrip — or all.")
  in
  let profiles_arg =
    Arg.(
      value & opt string "gcc,swim"
      & info [ "profiles" ] ~docv:"CSV" ~doc:"Progen profiles to sweep (both ISAs each).")
  in
  let vscale_arg =
    Arg.(
      value & opt float 0.12
      & info [ "scale" ] ~docv:"S" ~doc:"Program size scale factor for generated inputs.")
  in
  let golden_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"DIR"
          ~doc:
            "Golden corpus directory: check its CRCs and format stability, and sweep its \
             inputs too.")
  in
  let bless_arg =
    Arg.(value & flag & info [ "bless" ] ~doc:"Regenerate the golden corpus before checking it.")
  in
  let golden_only_arg =
    Arg.(
      value & flag
      & info [ "golden-only" ]
          ~doc:"Only run the golden corpus integrity checks; skip the pair sweep.")
  in
  let fast_arg =
    Arg.(
      value & flag
      & info [ "fast" ]
          ~doc:"Smoke tier: one profile (gcc) at a small scale; overrides --profiles/--scale.")
  in
  let shrink_budget_arg =
    Arg.(
      value & opt int 60
      & info [ "shrink-budget" ] ~docv:"N"
          ~doc:"Predicate-call budget for shrinking each diverging input.")
  in
  let repro_dir_arg =
    Arg.(
      value & opt string "."
      & info [ "repro-dir" ] ~docv:"DIR" ~doc:"Where minimal reproducers are written.")
  in
  let term =
    Term.(
      ret
        (const run $ pairs_arg $ profiles_arg $ vscale_arg $ seed_arg $ block_size_arg $ jobs_arg
       $ golden_arg $ bless_arg $ golden_only_arg $ fast_arg $ shrink_budget_arg $ repro_dir_arg
       $ metrics_arg $ trace_out_arg $ events_arg))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Differential verification: test every redundant-implementation pair (fast vs \
          reference kernels, parallel vs serial, checked vs unchecked, served vs offline, \
          round-trips) over generated programs and the golden corpus; shrink and report any \
          divergence.")
    term

let () =
  (* SIGINT/SIGTERM raise Sys.Break, so every Fun.protect finaliser —
     in particular with_obs's metrics/trace/events flush — runs before
     the process dies: an interrupted run still leaves evidence. *)
  Sys.catch_break true;
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> raise Sys.Break))
   with Invalid_argument _ | Sys_error _ -> ());
  let doc = "code compression for embedded systems (Lekatsas & Wolf, DAC'98 reproduction)" in
  let info = Cmd.info "ccomp" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        generate_cmd; compress_cmd; decompress_cmd; info_cmd; ratios_cmd; simulate_cmd; fuzz_cmd;
        verify_cmd; stats_cmd; serve_cmd; submit_cmd; scrape_cmd; top_cmd; chaos_cmd; loadgen_cmd;
        asm_cmd;
        disasm_cmd;
      ]
  in
  exit
    (match Cmd.eval group with
    | code -> code
    | exception Sys.Break ->
      prerr_endline "ccomp: interrupted";
      130)
