(* Throughput suite behind `bench --emit-json`: per-codec compress and
   decompress MB/s, serial vs parallel, plus the pre-optimisation
   reference kernels (pointer-chasing SAMC decode, tree-walk Huffman) so
   every PR's BENCH_PR*.json records how far the word-batched/LUT paths
   are ahead of the path they replaced.

   The JSON is a flat one-key-per-line object so tools/bench_check.sh
   can compare entries with grep/awk alone. *)

module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Byte_huffman = Ccomp_baselines.Byte_huffman
module Huffman = Ccomp_huffman.Huffman
module Bit_reader = Ccomp_bitio.Bit_reader
module Obs = Ccomp_obs.Obs

type entry = { key : string; mbps : float }

(* Run [f] repeatedly for at least [min_time] seconds (after one warmup
   call) and return MB/s over [bytes] per call. Timed on the obs clock,
   so the suite and `--trace` spans agree on one timebase. *)
let window ~min_time ~bytes f =
  let t0 = Obs.now_us () in
  let iters = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    ignore (f ());
    incr iters;
    elapsed := (Obs.now_us () -. t0) /. 1e6
  done;
  float_of_int (bytes * !iters) /. 1e6 /. !elapsed

(* Best of three timing windows: on a shared host a single window can
   land on someone else's scheduling burst, and the fastest window is
   the least-disturbed estimate of the code's actual throughput. The
   [Gc.full_major] matters because all keys share one process — a
   measurement should not be taxed with collecting its predecessors'
   garbage. *)
let throughput ~min_time ~bytes f =
  ignore (f ());
  Gc.full_major ();
  let best = ref 0.0 in
  for _ = 1 to 3 do
    best := Float.max !best (window ~min_time ~bytes f)
  done;
  !best

(* Serial/parallel pairs are checked on their ratio, so the two sides
   must see the same machine weather: alternate their windows instead
   of finishing one side seconds before the other starts. *)
let throughput_pair ~min_time ~bytes f g =
  ignore (f ());
  ignore (g ());
  Gc.full_major ();
  let bf = ref 0.0 and bg = ref 0.0 in
  for _ = 1 to 3 do
    bf := Float.max !bf (window ~min_time ~bytes f);
    bg := Float.max !bg (window ~min_time ~bytes g)
  done;
  (!bf, !bg)

let run ~scale ~jobs ~min_time =
  let w = Workloads.prepare ~scale (Ccomp_progen.Profile.find "go") in
  let code = Workloads.mips_code w in
  let bytes = String.length code in
  let entries = ref [] in
  let note key mbps =
    Printf.printf "  %-44s %10.2f MB/s\n%!" key mbps;
    entries := { key; mbps } :: !entries
  in
  let measure key f =
    Obs.with_span ~cat:"bench" key (fun () -> note key (throughput ~min_time ~bytes f))
  in
  let measure_pair key_a key_b f g =
    Obs.with_span ~cat:"bench" key_a (fun () ->
        let a, b = throughput_pair ~min_time ~bytes f g in
        note key_a a;
        note key_b b)
  in

  (* --- SAMC ----------------------------------------------------------- *)
  let samc_cfg = Samc.mips_config () in
  let samc = Samc.compress samc_cfg code in
  measure_pair "samc-mips.compress_serial_mbps" "samc-mips.compress_parallel_mbps"
    (fun () -> Samc.compress samc_cfg code)
    (fun () -> Samc.compress ~jobs samc_cfg code);
  measure_pair "samc-mips.decompress_serial_mbps" "samc-mips.decompress_parallel_mbps"
    (fun () -> Samc.decompress samc)
    (fun () -> Samc.decompress ~jobs samc);
  (* the pre-PR pointer-chasing kernel, serial, block by block *)
  let wpb = samc_cfg.Samc.block_size / 4 in
  let words = bytes / 4 in
  measure "samc-mips.decompress_ref_mbps" (fun () ->
      Array.iteri
        (fun b data ->
          let n_words = min wpb (words - (b * wpb)) in
          ignore
            (Samc.decompress_block_ref samc_cfg samc.Samc.model ~original_bytes:(n_words * 4) data))
        samc.Samc.blocks);

  (* --- SADC ----------------------------------------------------------- *)
  let sadc_cfg = Sadc.default_config ~max_rounds:64 () in
  let sadc = Sadc.Mips.compress_image sadc_cfg code in
  measure_pair "sadc-mips.compress_serial_mbps" "sadc-mips.compress_parallel_mbps"
    (fun () -> Sadc.Mips.compress_image sadc_cfg code)
    (fun () -> Sadc.Mips.compress_image ~jobs sadc_cfg code);
  measure_pair "sadc-mips.decompress_serial_mbps" "sadc-mips.decompress_parallel_mbps"
    (fun () -> Sadc.Mips.decompress sadc)
    (fun () -> Sadc.Mips.decompress ~jobs sadc);

  (* --- byte-Huffman ---------------------------------------------------- *)
  let huff = Byte_huffman.compress code in
  measure_pair "byte-huffman.compress_serial_mbps" "byte-huffman.compress_parallel_mbps"
    (fun () -> Byte_huffman.compress code)
    (fun () -> Byte_huffman.compress ~jobs code);
  measure_pair "byte-huffman.decompress_mbps" "byte-huffman.decompress_parallel_mbps"
    (fun () -> Byte_huffman.decompress huff)
    (fun () -> Byte_huffman.decompress ~jobs huff);
  (* the pre-PR bit-serial tree walk over the same blocks (public API
     reconstruction: same code table, Bit_reader + decode_symbol_tree) *)
  let tree_decode () =
    Array.iteri
      (fun b blk ->
        let start = b * huff.Byte_huffman.block_size in
        let len = min huff.Byte_huffman.block_size (huff.Byte_huffman.original_size - start) in
        let r = Bit_reader.create blk in
        for _ = 1 to len do
          ignore (Huffman.decode_symbol_tree huff.Byte_huffman.code r)
        done)
      huff.Byte_huffman.blocks
  in
  measure "byte-huffman.decompress_tree_mbps" tree_decode;

  (* --- jobs sweep ------------------------------------------------------ *)
  (* Parallel decompress at fixed worker counts, independent of --jobs:
     the scaling table EXPERIMENTS.md E19 reads. On a 1-core host this
     measures pool dispatch overhead, not speedup — the invariant that
     matters is jobs=2 staying at least on par with serial. *)
  List.iter
    (fun j ->
      measure (Printf.sprintf "samc-mips.decompress_jobs%d_mbps" j) (fun () ->
          Samc.decompress ~jobs:j samc);
      measure (Printf.sprintf "sadc-mips.decompress_jobs%d_mbps" j) (fun () ->
          Sadc.Mips.decompress ~jobs:j sadc);
      measure (Printf.sprintf "byte-huffman.decompress_jobs%d_mbps" j) (fun () ->
          Byte_huffman.decompress ~jobs:j huff))
    [ 1; 2; 4; 8 ];

  (* --- pool metrics ---------------------------------------------------- *)
  (* One metrics-enabled pass per codec, outside the timed loops (the
     per-block histogram mutex would distort them). The counters land in
     the same flat JSON so bench_check can assert the pool really ran:
     tasks dispatched, a live queue-depth histogram, and the jobs
     gauge. *)
  let was_enabled = Obs.metrics_enabled () in
  Obs.set_metrics true;
  Obs.reset ();
  ignore (Samc.decompress ~jobs samc);
  ignore (Sadc.Mips.decompress ~jobs sadc);
  ignore (Byte_huffman.decompress ~jobs huff);
  Obs.set_metrics was_enabled;
  let metric key v =
    Printf.printf "  %-44s %10.0f\n%!" key v;
    entries := { key; mbps = v } :: !entries
  in
  metric "par.tasks" (float_of_int (Obs.Counter.value (Obs.Counter.make "par.tasks")));
  metric "par.epochs" (float_of_int (Obs.Counter.value (Obs.Counter.make "par.epochs")));
  metric "par.spawns" (float_of_int (Obs.Counter.value (Obs.Counter.make "par.spawns")));
  metric "par.jobs" (Obs.Gauge.value (Obs.Gauge.make "par.jobs"));
  metric "par.pool_domains" (Obs.Gauge.value (Obs.Gauge.make "par.pool_domains"));
  metric "par.queue_depth_count"
    (float_of_int (Obs.Histogram.count (Obs.Histogram.make "par.queue_depth")));
  metric "par.worker_busy_us_sum" (Obs.Histogram.sum (Obs.Histogram.make "par.worker_busy_us"));
  List.rev !entries

let emit_json ~path ~scale ~jobs entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"ccomp-bench-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"scale\": %g,\n" scale);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d" jobs);
  List.iter
    (fun { key; mbps } -> Buffer.add_string b (Printf.sprintf ",\n  \"%s\": %.3f" key mbps))
    entries;
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "wrote %s (%d measurements)\n" path (List.length entries)
