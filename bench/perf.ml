(* Throughput suite behind `bench --emit-json`: per-codec compress and
   decompress MB/s, serial vs parallel, plus the pre-optimisation
   reference kernels (pointer-chasing SAMC decode, tree-walk Huffman) so
   every PR's BENCH_PR*.json records how far the word-batched/LUT paths
   are ahead of the path they replaced.

   The JSON is a flat one-key-per-line object so tools/bench_check.sh
   can compare entries with grep/awk alone. *)

module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Byte_huffman = Ccomp_baselines.Byte_huffman
module Huffman = Ccomp_huffman.Huffman
module Bit_reader = Ccomp_bitio.Bit_reader
module Obs = Ccomp_obs.Obs

type entry = { key : string; mbps : float }

(* Run [f] repeatedly for at least [min_time] seconds (after one warmup
   call) and return MB/s over [bytes] per call. Timed on the obs clock,
   so the suite and `--trace` spans agree on one timebase. *)
let throughput ~min_time ~bytes f =
  ignore (f ());
  let t0 = Obs.now_us () in
  let iters = ref 0 in
  let elapsed = ref 0.0 in
  while !elapsed < min_time do
    ignore (f ());
    incr iters;
    elapsed := (Obs.now_us () -. t0) /. 1e6
  done;
  float_of_int (bytes * !iters) /. 1e6 /. !elapsed

let run ~scale ~jobs ~min_time =
  let w = Workloads.prepare ~scale (Ccomp_progen.Profile.find "go") in
  let code = Workloads.mips_code w in
  let bytes = String.length code in
  let entries = ref [] in
  let note key mbps =
    Printf.printf "  %-44s %10.2f MB/s\n%!" key mbps;
    entries := { key; mbps } :: !entries
  in
  let measure key f =
    Obs.with_span ~cat:"bench" key (fun () -> note key (throughput ~min_time ~bytes f))
  in

  (* --- SAMC ----------------------------------------------------------- *)
  let samc_cfg = Samc.mips_config () in
  let samc = Samc.compress samc_cfg code in
  measure "samc-mips.compress_serial_mbps" (fun () -> Samc.compress samc_cfg code);
  measure "samc-mips.compress_parallel_mbps" (fun () -> Samc.compress ~jobs samc_cfg code);
  measure "samc-mips.decompress_serial_mbps" (fun () -> Samc.decompress samc);
  measure "samc-mips.decompress_parallel_mbps" (fun () -> Samc.decompress ~jobs samc);
  (* the pre-PR pointer-chasing kernel, serial, block by block *)
  let wpb = samc_cfg.Samc.block_size / 4 in
  let words = bytes / 4 in
  measure "samc-mips.decompress_ref_mbps" (fun () ->
      Array.iteri
        (fun b data ->
          let n_words = min wpb (words - (b * wpb)) in
          ignore
            (Samc.decompress_block_ref samc_cfg samc.Samc.model ~original_bytes:(n_words * 4) data))
        samc.Samc.blocks);

  (* --- SADC ----------------------------------------------------------- *)
  let sadc_cfg = Sadc.default_config ~max_rounds:64 () in
  let sadc = Sadc.Mips.compress_image sadc_cfg code in
  measure "sadc-mips.compress_serial_mbps" (fun () -> Sadc.Mips.compress_image sadc_cfg code);
  measure "sadc-mips.compress_parallel_mbps" (fun () ->
      Sadc.Mips.compress_image ~jobs sadc_cfg code);
  measure "sadc-mips.decompress_serial_mbps" (fun () -> Sadc.Mips.decompress sadc);
  measure "sadc-mips.decompress_parallel_mbps" (fun () -> Sadc.Mips.decompress ~jobs sadc);

  (* --- byte-Huffman ---------------------------------------------------- *)
  let huff = Byte_huffman.compress code in
  measure "byte-huffman.compress_serial_mbps" (fun () -> Byte_huffman.compress code);
  measure "byte-huffman.compress_parallel_mbps" (fun () -> Byte_huffman.compress ~jobs code);
  measure "byte-huffman.decompress_mbps" (fun () -> Byte_huffman.decompress huff);
  (* the pre-PR bit-serial tree walk over the same blocks (public API
     reconstruction: same code table, Bit_reader + decode_symbol_tree) *)
  let tree_decode () =
    Array.iteri
      (fun b blk ->
        let start = b * huff.Byte_huffman.block_size in
        let len = min huff.Byte_huffman.block_size (huff.Byte_huffman.original_size - start) in
        let r = Bit_reader.create blk in
        for _ = 1 to len do
          ignore (Huffman.decode_symbol_tree huff.Byte_huffman.code r)
        done)
      huff.Byte_huffman.blocks
  in
  measure "byte-huffman.decompress_tree_mbps" tree_decode;
  List.rev !entries

let emit_json ~path ~scale ~jobs entries =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"ccomp-bench-v1\",\n";
  Buffer.add_string b (Printf.sprintf "  \"scale\": %g,\n" scale);
  Buffer.add_string b (Printf.sprintf "  \"jobs\": %d" jobs);
  List.iter
    (fun { key; mbps } -> Buffer.add_string b (Printf.sprintf ",\n  \"%s\": %.3f" key mbps))
    entries;
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "wrote %s (%d measurements)\n" path (List.length entries)
