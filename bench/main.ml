(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) plus the DESIGN.md ablations, then runs a Bechamel
   timing suite over the codecs.

   Usage: dune exec bench/main.exe -- [--scale S] [--tables LIST] [--no-timing]
                                      [--jobs N] [--emit-json FILE] [--min-time T]
                                      [--trace FILE]
     --scale S        workload size multiplier (default 1.0)
     --tables LIST    comma list of fig7,fig8,fig9,block,streams,quantize,
                      memsys,dict,ppm,dense,prune,x86fields,lat,codepack,
                      embedded (default: all)
     --no-timing      skip the Bechamel throughput measurements
     --jobs N         domains for the parallel measurements (default: all cores)
     --emit-json FILE run only the throughput suite (serial vs parallel,
                      optimised vs reference kernels) and write it as flat
                      JSON — the BENCH_PR2.json regression baseline
     --min-time T     seconds per throughput measurement (default 0.3)
     --trace FILE     write the harness's obs spans (workload generation,
                      each table, each measurement) as a Chrome trace_event
                      JSON array *)

module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Byte_huffman = Ccomp_baselines.Byte_huffman
module Obs = Ccomp_obs.Obs

let usage =
  "usage: bench [--scale S] [--tables LIST] [--no-timing] [--jobs N]\n\
  \             [--emit-json FILE] [--min-time T] [--trace FILE]\n\
  \  --scale S        workload size multiplier (default 1.0)\n\
  \  --tables LIST    comma list of fig7,fig8,fig9,block,streams,quantize,\n\
  \                   memsys,dict,ppm,dense,prune,x86fields,lat,codepack,embedded\n\
  \  --no-timing      skip the Bechamel throughput measurements\n\
  \  --jobs N         domains for the parallel measurements (default: all cores)\n\
  \  --emit-json FILE run only the throughput suite and write it as flat JSON\n\
  \  --min-time T     seconds per throughput measurement (default 0.3)\n\
  \  --trace FILE     write harness spans as Chrome trace_event JSON"

type args = {
  scale : float;
  tables : string list;
  timing : bool;
  jobs : int;
  emit_json : string option;
  min_time : float;
  trace : string option;
}

let parse_args () =
  let args =
    ref
      {
        scale = 1.0;
        tables = [ "fig7"; "fig8"; "fig9"; "block"; "streams"; "quantize"; "memsys"; "dict"; "ppm"; "dense"; "prune"; "x86fields"; "lat"; "codepack"; "embedded" ];
        timing = true;
        jobs = Ccomp_par.Pool.default_jobs ();
        emit_json = None;
        min_time = 0.3;
        trace = None;
      }
  in
  let die fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "bench: %s\n%s\n" msg usage;
        exit 2)
      fmt
  in
  let value flag v conv =
    match conv v with Some x -> x | None -> die "invalid value %S for %s" v flag
  in
  let rec go = function
    | [] -> ()
    | "--scale" :: v :: rest ->
      args := { !args with scale = value "--scale" v float_of_string_opt };
      go rest
    | "--tables" :: v :: rest ->
      args := { !args with tables = String.split_on_char ',' v };
      go rest
    | "--no-timing" :: rest ->
      args := { !args with timing = false };
      go rest
    | "--jobs" :: v :: rest ->
      args := { !args with jobs = value "--jobs" v int_of_string_opt };
      go rest
    | "--emit-json" :: v :: rest ->
      args := { !args with emit_json = Some v };
      go rest
    | "--min-time" :: v :: rest ->
      args := { !args with min_time = value "--min-time" v float_of_string_opt };
      go rest
    | "--trace" :: v :: rest ->
      args := { !args with trace = Some v };
      go rest
    | [ flag ]
      when List.mem flag
             [ "--scale"; "--tables"; "--jobs"; "--emit-json"; "--min-time"; "--trace" ] ->
      die "option %s expects a value" flag
    | flag :: _ -> die "unknown option %s" flag
  in
  go (List.tl (Array.to_list Sys.argv));
  !args

(* --- Bechamel timing suite (T1) ---------------------------------------- *)

let timing_tests () =
  let open Bechamel in
  (* One fixed workload, truncated so each run is a few milliseconds. *)
  let w = Workloads.prepare ~scale:0.3 (Ccomp_progen.Profile.find "go") in
  let code = Workloads.mips_code w in
  let code = String.sub code 0 (min (String.length code) 32768) in
  let samc_cfg = Samc.mips_config () in
  let samc = Samc.compress samc_cfg code in
  let sadc = Sadc.Mips.compress_image (Sadc.default_config ~max_rounds:64 ()) code in
  let huff = Byte_huffman.compress code in
  let blocks = Array.length samc.Samc.blocks in
  Test.make_grouped ~name:"codec" ~fmt:"%s/%s"
    [
      Test.make ~name:"samc-compress" (Staged.stage (fun () -> Samc.compress samc_cfg code));
      Test.make ~name:"samc-decompress-block"
        (Staged.stage (fun () ->
             Samc.decompress_block samc_cfg samc.Samc.model ~original_bytes:32
               samc.Samc.blocks.(blocks / 2)));
      Test.make ~name:"sadc-decompress-block"
        (Staged.stage (fun () -> Sadc.Mips.decompress_block sadc (Sadc.Mips.block_count sadc / 2)));
      Test.make ~name:"huffman-decompress-block"
        (Staged.stage (fun () -> Byte_huffman.decompress_block huff 3));
      Test.make ~name:"lzw-compress"
        (Staged.stage (fun () -> Ccomp_baselines.Lzw.compress code));
      Test.make ~name:"lzss-compress"
        (Staged.stage (fun () -> Ccomp_baselines.Lzss.compress code));
    ]

let run_timing () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let raw = Benchmark.all cfg instances (timing_tests ()) in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Printf.printf "\n=== T1: codec timing (monotonic clock, ns/run) ===\n";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-32s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-32s %14s\n" name "n/a")
    (List.sort compare rows)

let main { scale; tables; timing; jobs; emit_json; min_time; trace = _ } =
  match emit_json with
  | Some path ->
    Printf.printf "throughput suite (scale %.2f, %d jobs, >=%.2fs per measurement)\n%!" scale
      jobs min_time;
    let entries = Perf.run ~scale ~jobs ~min_time in
    Perf.emit_json ~path ~scale ~jobs entries
  | None ->
    let wants t = List.mem t tables in
    let table name f = if wants name then Obs.with_span ~cat:"bench" ("bench.table." ^ name) f in
    Printf.printf "code compression benchmark harness (scale %.2f)\n" scale;
    let t0 = Unix.gettimeofday () in
    let suite, gen_s =
      Obs.timed ~cat:"bench" "bench.workloads" (fun () -> Workloads.suite ~scale ())
    in
    Printf.printf "generated %d workloads in %.1fs\n%!" (Array.length suite) gen_s;
    let mips_rows =
      if wants "fig7" || wants "fig9" then
        Some (Obs.with_span ~cat:"bench" "bench.table.fig7" (fun () -> Tables.fig7 suite))
      else None
    in
    let x86_rows =
      if wants "fig8" || wants "fig9" then
        Some (Obs.with_span ~cat:"bench" "bench.table.fig8" (fun () -> Tables.fig8 suite))
      else None
    in
    (match (mips_rows, x86_rows) with
    | Some m, Some x when wants "fig9" -> Tables.fig9 ~mips_rows:m ~x86_rows:x
    | _ -> ());
    table "block" (fun () -> Tables.block_size_table suite);
    table "streams" (fun () -> Tables.stream_table suite);
    table "quantize" (fun () -> Tables.quantize_table suite);
    table "memsys" (fun () -> Tables.memsys_table suite);
    table "dict" (fun () -> Tables.dict_table suite);
    table "ppm" (fun () -> Tables.ppm_table suite);
    table "dense" (fun () -> Tables.dense_table suite);
    table "prune" (fun () -> Tables.prune_table suite);
    table "x86fields" (fun () -> Tables.x86_fields_table suite);
    table "lat" (fun () -> Tables.lat_table suite);
    table "codepack" (fun () -> Tables.codepack_table suite);
    table "embedded" (fun () -> Tables.embedded_table ());
    if timing then Obs.with_span ~cat:"bench" "bench.timing" run_timing;
    Printf.printf "\ntotal harness time: %.1fs\n" (Unix.gettimeofday () -. t0)

let () =
  let args = parse_args () in
  (match args.trace with Some _ -> Obs.set_tracing true | None -> ());
  Fun.protect
    ~finally:(fun () ->
      match args.trace with
      | Some path ->
        Obs.write_trace path;
        Printf.printf "wrote %s: %d trace events\n" path (Obs.event_count ())
      | None -> ())
    (fun () -> main args)
