(* Cross-library integration tests: the full pipelines a user of the
   toolkit runs, from program generation to compressed execution. *)

module P = Ccomp_progen
module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Image = Ccomp_image.Image
module System = Ccomp_memsys.System
module Lat = Ccomp_memsys.Lat

let profile =
  { (P.Profile.find "ijpeg") with P.Profile.name = "it"; target_ops = 1500; functions = 12 }

let test_full_samc_pipeline_mips () =
  (* generate -> lower -> compress -> container -> reload -> refill-decode
     every line touched by an execution trace *)
  let prog = P.Generator.generate ~seed:21L profile in
  let _, layout = P.Mips_backend.lower prog in
  let code = layout.P.Layout.code in
  let z = Samc.compress (Samc.mips_config ()) code in
  let rom = Image.write (Image.of_samc ~isa:Image.Mips z) in
  let img =
    match Image.read rom with Ok i -> i | Error e -> Alcotest.failf "image: %s" e
  in
  let z = match img.Image.payload with Image.Samc z -> z | _ -> Alcotest.fail "payload kind" in
  let trace = P.Trace.generate prog layout ~seed:22L ~length:50_000 in
  let seen = Hashtbl.create 128 in
  Array.iter
    (fun addr ->
      let b = addr / 32 in
      if not (Hashtbl.mem seen b) then begin
        Hashtbl.add seen b ();
        let original_bytes = min 32 (String.length code - (b * 32)) in
        let line = Samc.decompress_block z.Samc.config z.Samc.model ~original_bytes z.Samc.blocks.(b) in
        Alcotest.(check string) (Printf.sprintf "refill block %d" b)
          (String.sub code (b * 32) original_bytes)
          line
      end)
    trace;
  Alcotest.(check bool) "trace touched several lines" true (Hashtbl.length seen > 10)

let test_full_sadc_pipeline_x86 () =
  let prog = P.Generator.generate ~seed:23L profile in
  let _, layout = P.X86_backend.lower prog in
  let code = layout.P.Layout.code in
  let z = Sadc.X86.compress_image (Ccomp_core.Sadc.default_config ()) code in
  let rom = Image.write (Image.of_sadc_x86 z) in
  match Image.read rom with
  | Error e -> Alcotest.failf "image: %s" e
  | Ok img ->
    Alcotest.(check string) "rom decompresses to the program" code (Image.decompress img);
    (* decode a few blocks in isolation through the container's LAT *)
    let z = match img.Image.payload with Image.Sadc_x86 z -> z | _ -> Alcotest.fail "kind" in
    for b = 0 to min 10 (Sadc.X86.block_count z - 1) do
      Alcotest.(check int)
        (Printf.sprintf "lat agrees with payload %d" b)
        (Sadc.X86.block_payload_bytes z b)
        (Lat.length img.Image.lat b)
    done

let test_memsys_on_real_program_and_lat () =
  let prog = P.Generator.generate ~seed:25L profile in
  let _, layout = P.Mips_backend.lower prog in
  let code = layout.P.Layout.code in
  let trace = P.Trace.generate prog layout ~seed:26L ~length:100_000 in
  let z = Samc.compress (Samc.mips_config ()) code in
  let lat = Lat.of_blocks z.Samc.blocks in
  let base = System.run (System.default_config ~cache_bytes:1024 ()) ~trace () in
  let comp =
    System.run
      (System.default_config ~cache_bytes:1024 ~decompressor:System.samc_decompressor ())
      ~lat ~trace ()
  in
  Alcotest.(check int) "same fetch count" base.System.fetches comp.System.fetches;
  Alcotest.(check int) "same miss count (cache behaviour unchanged)" base.System.misses
    comp.System.misses;
  let slowdown = System.slowdown ~compressed:comp ~uncompressed:base in
  Alcotest.(check bool)
    (Printf.sprintf "slowdown %.3f in [1.0, 3.0]" slowdown)
    true
    (slowdown >= 1.0 && slowdown < 3.0)

let test_same_ir_both_backends_compress_consistently () =
  (* The same IR lowered to both ISAs: both images must round-trip through
     their respective SADC instances and show plausible ratios. *)
  let prog = P.Generator.generate ~seed:27L profile in
  let mips = (snd (P.Mips_backend.lower prog)).P.Layout.code in
  let x86 = (snd (P.X86_backend.lower prog)).P.Layout.code in
  let zm = Sadc.Mips.compress_image (Ccomp_core.Sadc.default_config ()) mips in
  let zx = Sadc.X86.compress_image (Ccomp_core.Sadc.default_config ()) x86 in
  Alcotest.(check string) "mips roundtrip" mips (Sadc.Mips.decompress zm);
  Alcotest.(check string) "x86 roundtrip" x86 (Sadc.X86.decompress zx);
  Alcotest.(check bool) "both compress" true (Sadc.Mips.ratio zm < 0.9 && Sadc.X86.ratio zx < 0.9)

let test_paper_ordering_holds_on_a_small_suite () =
  (* The qualitative Fig. 7 ordering on a reduced suite:
     huffman worst, SAMC well below huffman, SADC <= SAMC + margin. *)
  List.iter
    (fun name ->
      let p = { (P.Profile.find name) with P.Profile.target_ops = 2500; functions = 20 } in
      let prog = P.Generator.generate ~seed:31L p in
      let code = (snd (P.Mips_backend.lower prog)).P.Layout.code in
      let huff = Ccomp_baselines.Byte_huffman.(ratio (compress code)) in
      let samc = Samc.ratio (Samc.compress (Samc.mips_config ()) code) in
      let sadc = Sadc.Mips.ratio (Sadc.Mips.compress_image (Ccomp_core.Sadc.default_config ()) code) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: samc %.3f < huffman %.3f" name samc huff)
        true (samc < huff);
      Alcotest.(check bool)
        (Printf.sprintf "%s: sadc %.3f <= samc %.3f + 0.02" name sadc samc)
        true
        (sadc <= samc +. 0.02))
    [ "gcc"; "swim" ]

let suite =
  [
    Alcotest.test_case "samc pipeline on mips" `Quick test_full_samc_pipeline_mips;
    Alcotest.test_case "sadc pipeline on x86" `Quick test_full_sadc_pipeline_x86;
    Alcotest.test_case "memsys on compressed program" `Quick test_memsys_on_real_program_and_lat;
    Alcotest.test_case "both backends consistent" `Quick test_same_ir_both_backends_compress_consistently;
    Alcotest.test_case "paper ordering (reduced)" `Quick test_paper_ordering_holds_on_a_small_suite;
  ]
