module Crc32 = Ccomp_image.Crc32
module Image = Ccomp_image.Image
module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Lat = Ccomp_memsys.Lat
module P = Ccomp_progen

let test_crc32_known_vectors () =
  (* standard test vector *)
  Alcotest.(check int32) "crc(123456789)" 0xCBF43926l (Crc32.of_string "123456789");
  Alcotest.(check int32) "crc(empty)" 0l (Crc32.of_string "");
  Alcotest.(check int32) "crc(a)" 0xE8B7BE43l (Crc32.of_string "a")

let test_crc32_incremental () =
  let a = "hello " and b = "world" in
  Alcotest.(check int32) "incremental equals whole" (Crc32.of_string (a ^ b))
    (Crc32.update (Crc32.of_string a) b)

let test_crc32_detects_change () =
  Alcotest.(check bool) "different strings differ" true
    (Crc32.of_string "abcd" <> Crc32.of_string "abce")

let code_for seed =
  let profile =
    { (P.Profile.find "m88ksim") with P.Profile.name = "t"; target_ops = 700; functions = 8 }
  in
  (snd (P.Mips_backend.lower (P.Generator.generate ~seed profile))).P.Layout.code

let test_samc_image_roundtrip () =
  let code = code_for 1L in
  let z = Samc.compress (Samc.mips_config ()) code in
  let img = Image.of_samc ~isa:Image.Mips z in
  let bytes = Image.write img in
  match Image.read bytes with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok img' ->
    Alcotest.(check bool) "isa preserved" true (img'.Image.isa = Image.Mips);
    Alcotest.(check string) "decompress" code (Image.decompress img');
    Alcotest.(check int) "lat entries" (Array.length z.Samc.blocks) (Lat.entries img'.Image.lat)

let test_sadc_image_roundtrip () =
  let code = code_for 2L in
  let z = Sadc.Mips.compress_image (Sadc.default_config ()) code in
  let img = Image.of_sadc_mips z in
  match Image.read (Image.write img) with
  | Error e -> Alcotest.failf "read failed: %s" e
  | Ok img' -> Alcotest.(check string) "decompress" code (Image.decompress img')

let test_lat_matches_payload () =
  let code = code_for 3L in
  let z = Samc.compress (Samc.mips_config ()) code in
  let img = Image.of_samc ~isa:Image.Mips z in
  Array.iteri
    (fun b blk ->
      Alcotest.(check int) (Printf.sprintf "lat length %d" b) (String.length blk)
        (Lat.length img.Image.lat b))
    z.Samc.blocks

let test_corruption_detected () =
  let code = code_for 4L in
  let z = Samc.compress (Samc.mips_config ()) code in
  let bytes = Image.write (Image.of_samc ~isa:Image.Mips z) in
  for pos = 0 to 5 do
    let target = 11 + (pos * String.length bytes / 7) in
    let corrupted = Bytes.of_string bytes in
    Bytes.set corrupted target
      (Char.chr ((Char.code (Bytes.get corrupted target) + 1) land 0xff));
    match Image.read (Bytes.to_string corrupted) with
    | Ok _ -> Alcotest.failf "corruption at %d not detected" target
    | Error _ -> ()
  done

let test_bad_magic_rejected () =
  (match Image.read "XXXX\x01\x00\x00rest" with
  | Error e -> Alcotest.(check string) "magic" "bad magic" e
  | Ok _ -> Alcotest.fail "bad magic accepted");
  match Image.read "SE" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated accepted"

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_describe_mentions_algorithm () =
  let code = code_for 5L in
  let z = Samc.compress (Samc.mips_config ()) code in
  let d = Image.describe (Image.of_samc ~isa:Image.Mips z) in
  Alcotest.(check bool) "mentions samc" true (contains d "samc");
  Alcotest.(check bool) "mentions isa" true (contains d "mips")

let suite =
  [
    Alcotest.test_case "crc32 known vectors" `Quick test_crc32_known_vectors;
    Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "crc32 detects change" `Quick test_crc32_detects_change;
    Alcotest.test_case "samc image roundtrip" `Quick test_samc_image_roundtrip;
    Alcotest.test_case "sadc image roundtrip" `Quick test_sadc_image_roundtrip;
    Alcotest.test_case "lat matches payload" `Quick test_lat_matches_payload;
    Alcotest.test_case "corruption detected" `Quick test_corruption_detected;
    Alcotest.test_case "bad magic rejected" `Quick test_bad_magic_rejected;
    Alcotest.test_case "describe" `Quick test_describe_mentions_algorithm;
  ]

let test_exotic_samc_configs_survive_container () =
  (* quantised + pruned + custom streams + byte mode all reload correctly *)
  let code = code_for 6L in
  List.iter
    (fun z ->
      match Image.read (Image.write (Image.of_samc ~isa:Image.Mips z)) with
      | Ok img -> Alcotest.(check string) "reload decompresses" code (Image.decompress img)
      | Error e -> Alcotest.failf "reload: %s" e)
    [
      Samc.compress (Samc.mips_config ~quantize:true ()) code;
      Samc.compress (Samc.mips_config ~prune_below:16 ()) code;
      Samc.compress (Samc.mips_config ~context_bits:0 ~block_size:64 ()) code;
      Samc.compress
        (Samc.mips_config
           ~streams:(Ccomp_core.Stream_split.consecutive ~word_bits:32 ~streams:8)
           ())
        code;
      Samc.compress (Samc.byte_config ()) code;
    ]

let test_sadc_x86_container () =
  let profile =
    { (P.Profile.find "m88ksim") with P.Profile.name = "t"; target_ops = 700; functions = 8 }
  in
  let code = (snd (P.X86_backend.lower (P.Generator.generate ~seed:7L profile))).P.Layout.code in
  let z = Sadc.X86.compress_image (Sadc.default_config ()) code in
  match Image.read (Image.write (Image.of_sadc_x86 z)) with
  | Ok img ->
    Alcotest.(check bool) "isa tag" true (img.Image.isa = Image.X86);
    Alcotest.(check string) "x86 container roundtrip" code (Image.decompress img)
  | Error e -> Alcotest.failf "reload: %s" e

let extra_suite =
  [
    Alcotest.test_case "exotic samc configs in container" `Quick test_exotic_samc_configs_survive_container;
    Alcotest.test_case "sadc x86 container" `Quick test_sadc_x86_container;
  ]

let suite = suite @ extra_suite
