module Samc = Ccomp_core.Samc
module Stream_split = Ccomp_core.Stream_split
module Prng = Ccomp_util.Prng
module P = Ccomp_progen

let mips_code seed =
  let profile =
    { (P.Profile.find "compress") with P.Profile.name = "t"; target_ops = 600; functions = 8 }
  in
  let prog = P.Generator.generate ~seed profile in
  (snd (P.Mips_backend.lower prog)).P.Layout.code

let test_roundtrip_mips () =
  let code = mips_code 1L in
  let z = Samc.compress (Samc.mips_config ()) code in
  Alcotest.(check int) "size preserved" (String.length code) z.Samc.original_size;
  Alcotest.(check string) "roundtrip" code (Samc.decompress z)

let test_roundtrip_bytes () =
  let g = Prng.create 2L in
  (* byte-mode on arbitrary data, like the x86 evaluation *)
  let data = String.init 4096 (fun _ -> Char.chr (Prng.int g 64)) in
  let z = Samc.compress (Samc.byte_config ()) data in
  Alcotest.(check string) "byte-mode roundtrip" data (Samc.decompress z)

let test_compression_beats_random () =
  let code = mips_code 3L in
  let z = Samc.compress (Samc.mips_config ()) code in
  Alcotest.(check bool)
    (Printf.sprintf "code compresses well (%.3f)" (Samc.ratio z))
    true (Samc.ratio z < 0.75);
  let g = Prng.create 4L in
  let noise = String.init (String.length code) (fun _ -> Char.chr (Prng.int g 256)) in
  let zn = Samc.compress (Samc.mips_config ()) noise in
  (* Being semiadaptive, the model is fitted to the very bytes it codes,
     so small noise inputs show an overfitting gain in the code stream;
     once the shipped model is charged, noise must not compress. *)
  Alcotest.(check bool)
    (Printf.sprintf "noise does not compress once the model is charged (%.3f)"
       (Samc.ratio_with_model zn))
    true
    (Samc.ratio_with_model zn > 0.98)

let test_block_isolation () =
  (* Any block decodes from its own bytes alone: the refill-engine
     property. Decode out of order and compare against the source. *)
  let code = mips_code 5L in
  let cfg = Samc.mips_config () in
  let z = Samc.compress cfg code in
  let nblocks = Array.length z.Samc.blocks in
  let order = Array.init nblocks (fun i -> nblocks - 1 - i) in
  Array.iter
    (fun b ->
      let original_bytes = min 32 (String.length code - (b * 32)) in
      let line = Samc.decompress_block cfg z.Samc.model ~original_bytes z.Samc.blocks.(b) in
      Alcotest.(check string)
        (Printf.sprintf "block %d" b)
        (String.sub code (b * 32) original_bytes)
        line)
    order

let test_block_count () =
  let cfg = Samc.mips_config () in
  Alcotest.(check int) "exact blocks" 4 (Samc.block_count cfg ~code_bytes:128);
  Alcotest.(check int) "partial tail block" 5 (Samc.block_count cfg ~code_bytes:132);
  Alcotest.(check int) "single" 1 (Samc.block_count cfg ~code_bytes:4)

let test_partial_tail_block () =
  let code = mips_code 6L in
  let code = String.sub code 0 (String.length code - (String.length code mod 32) + 4) in
  (* length = k*32 + 4: the final block holds a single instruction *)
  let z = Samc.compress (Samc.mips_config ()) code in
  Alcotest.(check string) "tail block roundtrip" code (Samc.decompress z)

let test_block_size_variants () =
  let code = mips_code 7L in
  List.iter
    (fun block_size ->
      let z = Samc.compress (Samc.mips_config ~block_size ()) code in
      Alcotest.(check string) (Printf.sprintf "block size %d" block_size) code (Samc.decompress z))
    [ 8; 16; 32; 64; 128 ]

let test_larger_blocks_compress_no_worse () =
  (* block resets cost flush bytes; bigger blocks amortise them *)
  let code = mips_code 8L in
  let r16 = Samc.ratio (Samc.compress (Samc.mips_config ~block_size:16 ()) code) in
  let r128 = Samc.ratio (Samc.compress (Samc.mips_config ~block_size:128 ()) code) in
  Alcotest.(check bool) (Printf.sprintf "128B %.3f <= 16B %.3f" r128 r16) true (r128 <= r16)

let test_context_bits_effect () =
  let code = mips_code 9L in
  List.iter
    (fun context_bits ->
      let z = Samc.compress (Samc.mips_config ~context_bits ()) code in
      Alcotest.(check string)
        (Printf.sprintf "context %d roundtrip" context_bits)
        code (Samc.decompress z))
    [ 0; 1; 2; 4 ]

let test_quantized_roundtrip_and_penalty () =
  let code = mips_code 10L in
  let exact = Samc.compress (Samc.mips_config ()) code in
  let quant = Samc.compress (Samc.mips_config ~quantize:true ()) code in
  Alcotest.(check string) "quantized roundtrip" code (Samc.decompress quant);
  (* shift-only probabilities lose some efficiency but not much (§3: ~95%) *)
  Alcotest.(check bool)
    (Printf.sprintf "penalty bounded (%.3f vs %.3f)" (Samc.ratio quant) (Samc.ratio exact))
    true
    (Samc.ratio quant >= Samc.ratio exact && Samc.ratio quant < Samc.ratio exact *. 1.35)

let test_custom_streams () =
  let code = mips_code 11L in
  let streams = Stream_split.consecutive ~word_bits:32 ~streams:8 in
  let z = Samc.compress (Samc.mips_config ~streams ()) code in
  Alcotest.(check string) "8x4 roundtrip" code (Samc.decompress z)

let test_invalid_configs_rejected () =
  let bad_block = Samc.mips_config ~block_size:10 () in
  (* 10 bytes = 2.5 words *)
  Alcotest.(check bool) "block not multiple of word" true (Samc.validate_config bad_block <> Ok ());
  let bad_streams = { (Samc.mips_config ()) with Samc.streams = [| [| 0; 1 |] |] } in
  Alcotest.(check bool) "incomplete partition" true (Samc.validate_config bad_streams <> Ok ())

let test_misaligned_input_rejected () =
  Alcotest.check_raises "odd byte count"
    (Invalid_argument "Samc.compress: code size is not a multiple of the word size") (fun () ->
      ignore (Samc.compress (Samc.mips_config ()) "abc"))

let test_serialization_roundtrip () =
  let code = mips_code 12L in
  let z = Samc.compress (Samc.mips_config ~quantize:true ()) code in
  let s = Samc.serialize z in
  let z', pos = Samc.deserialize s ~pos:0 in
  Alcotest.(check int) "all consumed" (String.length s) pos;
  Alcotest.(check string) "deserialized decompresses" code (Samc.decompress z')

let test_ratio_accounting () =
  let code = mips_code 13L in
  let z = Samc.compress (Samc.mips_config ()) code in
  let sum = Array.fold_left (fun a b -> a + String.length b) 0 z.Samc.blocks in
  Alcotest.(check int) "code_bytes is the block sum" sum (Samc.code_bytes z);
  Alcotest.(check bool) "with model is larger" true (Samc.ratio_with_model z > Samc.ratio z)

let prop_roundtrip_random_words =
  QCheck.Test.make ~name:"samc round-trips arbitrary word streams" ~count:30
    QCheck.(pair small_int int)
    (fun (n, seed) ->
      let g = Prng.create (Int64.of_int seed) in
      let n = 4 * max 1 n in
      (* skewed bytes so the model has something to learn *)
      let data = String.init n (fun _ -> Char.chr (min 255 (Prng.geometric g 0.2 * 16))) in
      let z = Samc.compress (Samc.mips_config ()) data in
      String.equal (Samc.decompress z) data)

let suite =
  [
    Alcotest.test_case "mips roundtrip" `Quick test_roundtrip_mips;
    Alcotest.test_case "byte-mode roundtrip" `Quick test_roundtrip_bytes;
    Alcotest.test_case "compresses code, not noise" `Quick test_compression_beats_random;
    Alcotest.test_case "block isolation" `Quick test_block_isolation;
    Alcotest.test_case "block count" `Quick test_block_count;
    Alcotest.test_case "partial tail block" `Quick test_partial_tail_block;
    Alcotest.test_case "block size variants" `Quick test_block_size_variants;
    Alcotest.test_case "larger blocks amortise flush" `Quick test_larger_blocks_compress_no_worse;
    Alcotest.test_case "context bits variants" `Quick test_context_bits_effect;
    Alcotest.test_case "quantized mode" `Quick test_quantized_roundtrip_and_penalty;
    Alcotest.test_case "custom stream split" `Quick test_custom_streams;
    Alcotest.test_case "invalid configs rejected" `Quick test_invalid_configs_rejected;
    Alcotest.test_case "misaligned input rejected" `Quick test_misaligned_input_rejected;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "ratio accounting" `Quick test_ratio_accounting;
    QCheck_alcotest.to_alcotest prop_roundtrip_random_words;
  ]
