module Coder = Ccomp_arith.Binary_coder
module Prng = Ccomp_util.Prng

let roundtrip bits p0s =
  let e = Coder.Encoder.create () in
  Array.iteri (fun i b -> Coder.Encoder.encode e ~p0:p0s.(i) b) bits;
  let s = Coder.Encoder.finish e in
  let d = Coder.Decoder.create s in
  let ok = ref true in
  Array.iteri (fun i b -> if Coder.Decoder.decode d ~p0:p0s.(i) <> b then ok := false) bits;
  (!ok, s)

let test_empty () =
  let e = Coder.Encoder.create () in
  let s = Coder.Encoder.finish e in
  Alcotest.(check bool) "empty stream is tiny" true (String.length s <= 3)

let test_single_bits () =
  List.iter
    (fun bit ->
      let ok, _ = roundtrip [| bit |] [| Coder.scale / 2 |] in
      Alcotest.(check bool) (Printf.sprintf "single bit %d" bit) true ok)
    [ 0; 1 ]

let test_alternating () =
  let n = 1000 in
  let bits = Array.init n (fun i -> i land 1) in
  let p0s = Array.make n (Coder.scale / 2) in
  let ok, s = roundtrip bits p0s in
  Alcotest.(check bool) "alternating bits" true ok;
  (* unbiased model: about 1 bit per bit, so about n/8 bytes *)
  Alcotest.(check bool) "size near n/8" true (abs (String.length s - (n / 8)) < 16)

let test_all_zeros_high_p0 () =
  let n = 10000 in
  let bits = Array.make n 0 in
  let p0s = Array.make n (Coder.scale - 1) in
  let ok, s = roundtrip bits p0s in
  Alcotest.(check bool) "all zeros decode" true ok;
  (* -log2(4095/4096) * 10000 bits ~ 3.5 bits total: a few bytes *)
  Alcotest.(check bool)
    (Printf.sprintf "extreme skew compresses to almost nothing (%d bytes)" (String.length s))
    true
    (String.length s <= 6)

let test_mispredicted_bits_expand () =
  let n = 500 in
  let bits = Array.make n 1 in
  let p0s = Array.make n (Coder.scale - 1) in
  (* predicting 0 with p=4095/4096 while coding 1s costs 12 bits each *)
  let ok, s = roundtrip bits p0s in
  Alcotest.(check bool) "mispredictions still decode" true ok;
  Alcotest.(check bool) "stream expands" true (String.length s > n)

let test_probability_extremes_rejected_by_clamp () =
  Alcotest.(check int) "counts 0/0 -> 1/2" (Coder.scale / 2) (Coder.prob_of_counts ~zeros:0 ~ones:0);
  Alcotest.(check int) "all zeros clamps below scale" (Coder.scale - 1)
    (Coder.prob_of_counts ~zeros:1000 ~ones:0);
  Alcotest.(check int) "all ones clamps above 0" 1 (Coder.prob_of_counts ~zeros:0 ~ones:1000)

let test_prob_of_counts_ratio () =
  let p = Coder.prob_of_counts ~zeros:3 ~ones:1 in
  Alcotest.(check int) "3/4 of scale" (3 * Coder.scale / 4) p

let test_quantize_pow2 () =
  (* quantized LPS must be a power of two fraction of scale *)
  List.iter
    (fun p0 ->
      let q = Coder.quantize_pow2 p0 in
      let lps = min q (Coder.scale - q) in
      Alcotest.(check bool)
        (Printf.sprintf "lps of %d is power of two (%d)" p0 lps)
        true
        (lps land (lps - 1) = 0);
      (* side is preserved *)
      Alcotest.(check bool) "side preserved" true ((p0 <= Coder.scale / 2) = (q <= Coder.scale / 2)))
    [ 1; 7; 100; 1000; 2048; 3000; 4000; Coder.scale - 1 ]

let test_quantized_roundtrip () =
  let g = Prng.create 3L in
  let n = 2000 in
  let p0s = Array.init n (fun _ -> Coder.quantize_pow2 (1 + Prng.int g (Coder.scale - 1))) in
  let bits = Array.init n (fun i -> if Prng.int g Coder.scale < p0s.(i) then 0 else 1) in
  let ok, _ = roundtrip bits p0s in
  Alcotest.(check bool) "quantized probabilities round-trip" true ok

let test_efficiency_near_entropy () =
  (* code 100k bits with p(0)=0.9; measured size should be within 2% of
     the entropy bound H(0.9) = 0.469 bits/bit *)
  let g = Prng.create 5L in
  let n = 100_000 in
  let p0 = Coder.prob_of_counts ~zeros:9 ~ones:1 in
  let bits = Array.init n (fun _ -> if Prng.float g < 0.9 then 0 else 1) in
  let p0s = Array.make n p0 in
  let ok, s = roundtrip bits p0s in
  Alcotest.(check bool) "roundtrip" true ok;
  let bound = 0.469 *. float_of_int n /. 8.0 in
  let measured = float_of_int (String.length s) in
  Alcotest.(check bool)
    (Printf.sprintf "within 3%% of entropy (%f vs %f)" measured bound)
    true
    (measured < bound *. 1.03)

let test_trailing_zero_truncation () =
  (* the decoder must tolerate streams whose trailing zero bytes were
     dropped: decode relies on implicit zero refills *)
  let bits = Array.make 64 0 in
  let p0s = Array.make 64 (Coder.scale / 2) in
  let e = Coder.Encoder.create () in
  Array.iteri (fun i b -> Coder.Encoder.encode e ~p0:p0s.(i) b) bits;
  let s = Coder.Encoder.finish e in
  Alcotest.(check bool) "no trailing zero byte stored" true
    (String.length s = 0 || s.[String.length s - 1] <> '\x00')

let test_decoder_position () =
  let bits = Array.init 256 (fun i -> (i / 3) land 1) in
  let p0s = Array.make 256 2048 in
  let e = Coder.Encoder.create () in
  Array.iteri (fun i b -> Coder.Encoder.encode e ~p0:p0s.(i) b) bits;
  let s = Coder.Encoder.finish e in
  let d = Coder.Decoder.create s in
  Array.iteri (fun i _ -> ignore (Coder.Decoder.decode d ~p0:p0s.(i))) bits;
  Alcotest.(check bool) "consumed within stream bounds" true
    (Coder.Decoder.consumed_bytes d <= String.length s)

let prop_random_roundtrip =
  QCheck.Test.make ~name:"random bits/probabilities round-trip" ~count:200
    QCheck.(pair (int_bound 1000) int)
    (fun (n, seed) ->
      let g = Prng.create (Int64.of_int seed) in
      let p0s = Array.init n (fun _ -> 1 + Prng.int g (Coder.scale - 1)) in
      let bits = Array.init n (fun i -> if Prng.int g Coder.scale < p0s.(i) then 0 else 1) in
      fst (roundtrip bits p0s))

let prop_adversarial_roundtrip =
  QCheck.Test.make ~name:"bits independent of predictions round-trip" ~count:100
    QCheck.(pair (int_bound 500) int)
    (fun (n, seed) ->
      let g = Prng.create (Int64.of_int seed) in
      (* predictions uncorrelated with the data: worst case for carries *)
      let p0s = Array.init n (fun _ -> 1 + Prng.int g (Coder.scale - 1)) in
      let bits = Array.init n (fun _ -> Prng.int g 2) in
      fst (roundtrip bits p0s))

let suite =
  [
    Alcotest.test_case "empty stream" `Quick test_empty;
    Alcotest.test_case "single bits" `Quick test_single_bits;
    Alcotest.test_case "alternating bits" `Quick test_alternating;
    Alcotest.test_case "extreme skew compresses" `Quick test_all_zeros_high_p0;
    Alcotest.test_case "mispredictions expand" `Quick test_mispredicted_bits_expand;
    Alcotest.test_case "prob_of_counts clamps" `Quick test_probability_extremes_rejected_by_clamp;
    Alcotest.test_case "prob_of_counts ratio" `Quick test_prob_of_counts_ratio;
    Alcotest.test_case "quantize_pow2 invariants" `Quick test_quantize_pow2;
    Alcotest.test_case "quantized roundtrip" `Quick test_quantized_roundtrip;
    Alcotest.test_case "efficiency near entropy" `Quick test_efficiency_near_entropy;
    Alcotest.test_case "trailing zeros truncated" `Quick test_trailing_zero_truncation;
    Alcotest.test_case "decoder position bounded" `Quick test_decoder_position;
    QCheck_alcotest.to_alcotest prop_random_roundtrip;
    QCheck_alcotest.to_alcotest prop_adversarial_roundtrip;
  ]
