(* Property shared by every SADC ISA adapter: [read] pulls back exactly
   the items [items] produced, in order, and reconstructs the same
   instruction — the operand-length-unit contract of Fig. 6. *)

module Sadc_isa = Ccomp_core.Sadc_isa
module Mips = Ccomp_isa.Mips
module P = Ccomp_progen
module Prng = Ccomp_util.Prng

module Check (I : Sadc_isa.S) = struct
  let roundtrip instr =
    let items = I.items instr in
    Alcotest.(check int) (I.name ^ ": stream arrays") I.stream_count (Array.length items);
    (* feed items back through per-stream queues *)
    let queues = Array.map (fun l -> ref l) items in
    let next s =
      match !(queues.(s)) with
      | v :: rest ->
        queues.(s) := rest;
        v
      | [] -> Alcotest.failf "%s: stream %s over-pulled" I.name I.stream_names.(s)
    in
    let back = I.read ~symbol:(I.symbol instr) ~next in
    Array.iteri
      (fun s q ->
        Alcotest.(check int)
          (Printf.sprintf "%s: stream %s fully consumed" I.name I.stream_names.(s))
          0
          (List.length !q);
        ignore q)
      queues;
    Alcotest.(check string) (I.name ^ ": same instruction")
      (I.encode_list [ instr ]) (I.encode_list [ back ]);
    (* item values respect their declared widths *)
    Array.iteri
      (fun s l ->
        List.iter
          (fun v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s item in range" I.name I.stream_names.(s))
              true
              (v >= 0 && v < 1 lsl I.stream_bits.(s)))
          l)
      items

  let check_program code =
    match I.parse code with
    | None -> Alcotest.failf "%s: program does not parse" I.name
    | Some instrs ->
      List.iter roundtrip instrs;
      Alcotest.(check int) (I.name ^ ": byte_length sums to image")
        (String.length code)
        (List.fold_left (fun a i -> a + I.byte_length i) 0 instrs)
end

let program seed =
  P.Generator.generate ~seed
    { (P.Profile.find "ijpeg") with P.Profile.name = "t"; target_ops = 600; functions = 8 }

let test_mips_adapter () =
  let module C = Check (Sadc_isa.Mips_streams) in
  C.check_program (snd (P.Mips_backend.lower (program 41L))).P.Layout.code

let test_x86_adapter () =
  let module C = Check (Sadc_isa.X86_streams) in
  C.check_program (snd (P.X86_backend.lower (program 42L))).P.Layout.code

let test_x86_fields_adapter () =
  let module C = Check (Sadc_isa.X86_field_streams) in
  C.check_program (snd (P.X86_backend.lower (program 43L))).P.Layout.code

let test_mips_adapter_random_instrs () =
  let module C = Check (Sadc_isa.Mips_streams) in
  let g = Prng.create 44L in
  Array.iter
    (fun sp ->
      for _ = 1 to 20 do
        let regs = List.init (Mips.reg_arity sp) (fun _ -> Prng.int g 32) in
        let imm = if Mips.has_immediate sp then Some (Prng.int g 65536) else None in
        let limm = if Mips.has_long_immediate sp then Some (Prng.int g (1 lsl 26)) else None in
        C.roundtrip (Mips.reassemble sp ~regs ~imm ~limm)
      done)
    Mips.specs

let test_bad_symbol_rejected () =
  List.iter
    (fun symbol ->
      match Sadc_isa.Mips_streams.read ~symbol ~next:(fun _ -> 0) with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "symbol %d must be rejected" symbol)
    [ -1; Mips.opcode_count; 5000 ]

let suite =
  [
    Alcotest.test_case "mips adapter on a program" `Quick test_mips_adapter;
    Alcotest.test_case "x86 adapter on a program" `Quick test_x86_adapter;
    Alcotest.test_case "x86 field adapter on a program" `Quick test_x86_fields_adapter;
    Alcotest.test_case "mips adapter random instrs" `Quick test_mips_adapter_random_instrs;
    Alcotest.test_case "bad symbols rejected" `Quick test_bad_symbol_rejected;
  ]
