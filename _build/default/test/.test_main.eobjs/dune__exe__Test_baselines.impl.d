test/test_baselines.ml: Alcotest Array Buffer Ccomp_baselines Ccomp_progen Ccomp_util Char Gen List Printf QCheck QCheck_alcotest String
