test/test_mips_asm.ml: Alcotest Array Ccomp_isa Ccomp_util List Printf String
