test/test_samc.ml: Alcotest Array Ccomp_core Ccomp_progen Ccomp_util Char Int64 List Printf QCheck QCheck_alcotest String
