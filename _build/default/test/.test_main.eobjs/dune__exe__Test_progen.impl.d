test/test_progen.ml: Alcotest Array Ccomp_isa Ccomp_progen Hashtbl Int64 List Option Printf QCheck QCheck_alcotest String
