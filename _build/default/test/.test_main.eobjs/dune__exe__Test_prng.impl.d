test/test_prng.ml: Alcotest Array Ccomp_util Float Fun Printf
