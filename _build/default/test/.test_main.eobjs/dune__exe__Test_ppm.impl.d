test/test_ppm.ml: Alcotest Array Ccomp_arith Ccomp_baselines Ccomp_progen Ccomp_util Char Gen List Printf QCheck QCheck_alcotest String
