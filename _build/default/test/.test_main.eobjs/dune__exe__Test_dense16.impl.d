test/test_dense16.ml: Alcotest Ccomp_isa Ccomp_progen Int64 List Printf QCheck QCheck_alcotest String
