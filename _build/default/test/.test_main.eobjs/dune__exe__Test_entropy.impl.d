test/test_entropy.ml: Alcotest Ccomp_entropy Char Float Gen Int64 List Printf QCheck QCheck_alcotest
