test/test_markov.ml: Alcotest Array Ccomp_arith Ccomp_core Ccomp_progen Ccomp_util Fun List Printf String
