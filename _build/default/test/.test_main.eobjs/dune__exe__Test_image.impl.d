test/test_image.ml: Alcotest Array Bytes Ccomp_core Ccomp_image Ccomp_memsys Ccomp_progen Char List Printf String
