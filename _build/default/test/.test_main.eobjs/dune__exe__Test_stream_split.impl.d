test/test_stream_split.ml: Alcotest Array Ccomp_core Ccomp_entropy Ccomp_util Fun Int64 Printf
