test/test_heap.ml: Alcotest Ccomp_util List QCheck QCheck_alcotest
