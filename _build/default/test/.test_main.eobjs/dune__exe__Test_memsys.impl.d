test/test_memsys.ml: Alcotest Array Bytes Ccomp_memsys Ccomp_util Printf String
