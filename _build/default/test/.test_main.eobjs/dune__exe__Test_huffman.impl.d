test/test_huffman.ml: Alcotest Array Ccomp_bitio Ccomp_entropy Ccomp_huffman Float Fun Gen List Printf QCheck QCheck_alcotest String
