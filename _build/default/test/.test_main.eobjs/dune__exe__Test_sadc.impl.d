test/test_sadc.ml: Alcotest Array Ccomp_core Ccomp_isa Ccomp_progen Ccomp_util List Printf String
