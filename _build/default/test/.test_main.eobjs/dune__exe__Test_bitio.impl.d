test/test_bitio.ml: Alcotest Ccomp_bitio List QCheck QCheck_alcotest
