test/test_arith.ml: Alcotest Array Ccomp_arith Ccomp_util Int64 List Printf QCheck QCheck_alcotest String
