test/test_mips.ml: Alcotest Array Ccomp_isa Ccomp_util List Option Printf QCheck QCheck_alcotest String
