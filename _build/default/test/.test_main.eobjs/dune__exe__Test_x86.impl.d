test/test_x86.ml: Alcotest Ccomp_isa Ccomp_util Char Gen Int32 Int64 List Printf QCheck QCheck_alcotest String
