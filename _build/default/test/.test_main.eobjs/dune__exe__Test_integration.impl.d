test/test_integration.ml: Alcotest Array Ccomp_baselines Ccomp_core Ccomp_image Ccomp_memsys Ccomp_progen Hashtbl List Printf String
