test/test_nibble.ml: Alcotest Array Ccomp_arith Ccomp_core Ccomp_progen Ccomp_util Int64 List Printf String
