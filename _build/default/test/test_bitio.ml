module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

let test_single_bits () =
  let w = Bit_writer.create () in
  List.iter (Bit_writer.put_bit w) [ 1; 0; 1; 1; 0; 0; 1; 0 ];
  Alcotest.(check string) "msb-first packing" "\xb2" (Bit_writer.contents w)

let test_partial_byte_padding () =
  let w = Bit_writer.create () in
  List.iter (Bit_writer.put_bit w) [ 1; 1; 1 ];
  Alcotest.(check string) "zero padded" "\xe0" (Bit_writer.contents w);
  Alcotest.(check int) "bit length counts bits" 3 (Bit_writer.bit_length w);
  Alcotest.(check int) "byte length rounds up" 1 (Bit_writer.byte_length w)

let test_put_bits_width () =
  let w = Bit_writer.create () in
  Bit_writer.put_bits w ~value:0b101 ~width:3;
  Bit_writer.put_bits w ~value:0b11111 ~width:5;
  Alcotest.(check string) "two fields packed" "\xbf" (Bit_writer.contents w)

let test_put_byte_aligned_and_not () =
  let w = Bit_writer.create () in
  Bit_writer.put_byte w 0xAB;
  Bit_writer.put_bit w 1;
  Bit_writer.put_byte w 0xCD;
  let r = Bit_reader.create (Bit_writer.contents w) in
  Alcotest.(check int) "byte back" 0xAB (Bit_reader.get_byte r);
  Alcotest.(check int) "bit back" 1 (Bit_reader.get_bit r);
  Alcotest.(check int) "unaligned byte back" 0xCD (Bit_reader.get_byte r)

let test_align () =
  let w = Bit_writer.create () in
  Bit_writer.put_bit w 1;
  Bit_writer.align_byte w;
  Alcotest.(check int) "aligned to 8" 8 (Bit_writer.bit_length w);
  Bit_writer.align_byte w;
  Alcotest.(check int) "idempotent" 8 (Bit_writer.bit_length w);
  let r = Bit_reader.create (Bit_writer.contents w) in
  ignore (Bit_reader.get_bit r);
  Bit_reader.align_byte r;
  Alcotest.(check int) "reader aligned" 8 (Bit_reader.pos r)

let test_reader_past_end () =
  let r = Bit_reader.create "\xff" in
  Alcotest.(check int) "in-bounds byte" 0xff (Bit_reader.get_byte r);
  Alcotest.(check int) "no overrun yet" 0 (Bit_reader.overrun r);
  Alcotest.(check int) "past end reads zero" 0 (Bit_reader.get_byte r);
  Alcotest.(check int) "overrun counted" 8 (Bit_reader.overrun r);
  Alcotest.(check int) "remaining zero" 0 (Bit_reader.remaining_bits r)

let test_start_bit () =
  let r = Bit_reader.create ~start_bit:4 "\x0f" in
  Alcotest.(check int) "reads low nibble" 0xf (Bit_reader.get_bits r 4)

let test_reset () =
  let w = Bit_writer.create () in
  Bit_writer.put_byte w 1;
  Bit_writer.reset w;
  Alcotest.(check int) "empty after reset" 0 (Bit_writer.bit_length w);
  Bit_writer.put_byte w 2;
  Alcotest.(check string) "reusable" "\x02" (Bit_writer.contents w)

let prop_roundtrip =
  QCheck.Test.make ~name:"bit fields round-trip" ~count:300
    QCheck.(small_list (pair (int_bound 30) (int_bound 0x3fffffff)))
    (fun fields ->
      let fields = List.map (fun (w, v) -> (w, v land ((1 lsl w) - 1))) fields in
      let w = Bit_writer.create () in
      List.iter (fun (width, value) -> Bit_writer.put_bits w ~value ~width) fields;
      let r = Bit_reader.create (Bit_writer.contents w) in
      List.for_all (fun (width, value) -> Bit_reader.get_bits r width = value) fields)

let prop_bit_length =
  QCheck.Test.make ~name:"bit_length sums widths" ~count:200
    QCheck.(small_list (int_bound 30))
    (fun widths ->
      let w = Bit_writer.create () in
      List.iter (fun width -> Bit_writer.put_bits w ~value:0 ~width) widths;
      Bit_writer.bit_length w = List.fold_left ( + ) 0 widths)

let suite =
  [
    Alcotest.test_case "single bits msb first" `Quick test_single_bits;
    Alcotest.test_case "partial byte padding" `Quick test_partial_byte_padding;
    Alcotest.test_case "put_bits packing" `Quick test_put_bits_width;
    Alcotest.test_case "bytes across alignment" `Quick test_put_byte_aligned_and_not;
    Alcotest.test_case "align_byte" `Quick test_align;
    Alcotest.test_case "reads past end are zero" `Quick test_reader_past_end;
    Alcotest.test_case "start_bit offset" `Quick test_start_bit;
    Alcotest.test_case "writer reset" `Quick test_reset;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_bit_length;
  ]
