module Stream_split = Ccomp_core.Stream_split
module Bit_stats = Ccomp_entropy.Bit_stats
module Prng = Ccomp_util.Prng

let test_consecutive () =
  let s = Stream_split.consecutive ~word_bits:32 ~streams:4 in
  Alcotest.(check int) "4 streams" 4 (Array.length s);
  Alcotest.(check (array int)) "first stream bits 0..7" (Array.init 8 Fun.id) s.(0);
  Alcotest.(check (array int)) "last stream bits 24..31" (Array.init 8 (fun i -> 24 + i)) s.(3);
  Alcotest.(check (array int)) "widths" [| 8; 8; 8; 8 |] (Stream_split.widths s)

let test_consecutive_rejects_nondivisor () =
  Alcotest.check_raises "5 does not divide 32"
    (Invalid_argument "Stream_split.consecutive: streams must divide word_bits") (fun () ->
      ignore (Stream_split.consecutive ~word_bits:32 ~streams:5))

let test_validate () =
  let ok = Stream_split.consecutive ~word_bits:8 ~streams:2 in
  Alcotest.(check bool) "valid split accepted" true (Stream_split.validate ~word_bits:8 ok = Ok ());
  Alcotest.(check bool) "duplicate bit rejected" true
    (Stream_split.validate ~word_bits:4 [| [| 0; 1 |]; [| 1; 2 |] |] <> Ok ());
  Alcotest.(check bool) "missing bit rejected" true
    (Stream_split.validate ~word_bits:4 [| [| 0; 1 |]; [| 2 |] |] <> Ok ());
  Alcotest.(check bool) "out of range rejected" true
    (Stream_split.validate ~word_bits:4 [| [| 0; 1 |]; [| 2; 9 |] |] <> Ok ())

(* Words whose top half is highly structured: bit i of the top 8 equals
   bit 0 of the bottom, the rest random. *)
let structured_stats seed =
  let g = Prng.create seed in
  let stats = Bit_stats.create ~width:16 in
  for _ = 1 to 4000 do
    let low = Prng.bits g 8 in
    let b = low land 1 in
    (* top byte = repeated copy of low bit -> strongly correlated bits *)
    let top = if b = 1 then 0xff else 0x00 in
    Bit_stats.add_word stats (Int64.of_int ((top lsl 8) lor low))
  done;
  stats

let test_estimated_cost_prefers_correlated_grouping () =
  let stats = structured_stats 1L in
  (* grouping the 8 identical top bits together costs ~1 bit; splitting
     them across streams costs up to 8 *)
  let grouped = [| Array.init 8 Fun.id; Array.init 8 (fun i -> 8 + i) |] in
  let interleaved = [| Array.init 8 (fun i -> 2 * i); Array.init 8 (fun i -> (2 * i) + 1) |] in
  let cg = Stream_split.estimated_cost stats grouped in
  let ci = Stream_split.estimated_cost stats interleaved in
  Alcotest.(check bool) (Printf.sprintf "grouped %.2f < interleaved %.2f" cg ci) true (cg < ci)

let test_optimize_returns_valid_partition () =
  let stats = structured_stats 2L in
  let s = Stream_split.optimize ~seed:3L ~streams:4 stats in
  Alcotest.(check bool) "valid partition" true (Stream_split.validate ~word_bits:16 s = Ok ());
  Alcotest.(check (array int)) "equal widths" [| 4; 4; 4; 4 |] (Stream_split.widths s)

let test_optimize_not_worse_than_consecutive () =
  let stats = structured_stats 4L in
  let opt = Stream_split.optimize ~seed:5L ~streams:2 stats in
  let base = Stream_split.consecutive ~word_bits:16 ~streams:2 in
  Alcotest.(check bool) "optimize <= greedy-chain start <= arbitrary" true
    (Stream_split.estimated_cost stats opt
    <= Stream_split.estimated_cost stats base +. 1e-9)

let test_optimize_deterministic () =
  let stats = structured_stats 6L in
  let a = Stream_split.optimize ~seed:7L ~streams:4 stats in
  let b = Stream_split.optimize ~seed:7L ~streams:4 stats in
  Alcotest.(check bool) "same seed same split" true (a = b)

let test_cost_nonnegative_and_bounded () =
  let stats = structured_stats 8L in
  let s = Stream_split.consecutive ~word_bits:16 ~streams:4 in
  let c = Stream_split.estimated_cost stats s in
  Alcotest.(check bool) "cost in [0, word_bits]" true (c >= 0.0 && c <= 16.0 +. 1e-9)

let suite =
  [
    Alcotest.test_case "consecutive split" `Quick test_consecutive;
    Alcotest.test_case "consecutive rejects non-divisor" `Quick test_consecutive_rejects_nondivisor;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "cost prefers correlated grouping" `Quick
      test_estimated_cost_prefers_correlated_grouping;
    Alcotest.test_case "optimize returns valid partition" `Quick test_optimize_returns_valid_partition;
    Alcotest.test_case "optimize not worse than consecutive" `Quick
      test_optimize_not_worse_than_consecutive;
    Alcotest.test_case "optimize deterministic" `Quick test_optimize_deterministic;
    Alcotest.test_case "cost bounded" `Quick test_cost_nonnegative_and_bounded;
  ]
