module Dense16 = Ccomp_isa.Dense16
module Mips = Ccomp_isa.Mips
module P = Ccomp_progen

let spec = Mips.spec_of_mnemonic

let short_candidates =
  [
    Mips.make (spec "addu") ~rs:4 ~rt:2 ~rd:5 ();
    (* 3-address, hot regs *)
    Mips.make (spec "addiu") ~rs:8 ~rt:9 ~imm:4 ();
    Mips.make (spec "beq") ~rs:4 ~rt:2 ~imm:7 ();
    Mips.make (spec "addiu") ~rs:0 ~rt:2 ~imm:100 ();
    (* li *)
    Mips.make (spec "lw") ~rs:16 ~rt:9 ~imm:36 ();
    Mips.make (spec "sw") ~rs:16 ~rt:9 ~imm:252 ();
    Mips.make (spec "bltz") ~rs:5 ~imm:0xfffe ();
    Mips.make (spec "sll") ~rt:3 ~rd:3 ~shamt:7 ();
    Mips.make (spec "jr") ~rs:4 ();
    Mips.make (spec "jr") ~rs:31 ();
    (* return idiom *)
    Mips.make (spec "addiu") ~rs:29 ~rt:29 ~imm:0xffe0 ();
    (* frame adjust *)
    Mips.make (spec "sw") ~rs:29 ~rt:31 ~imm:28 ();
    (* save ra *)
    Mips.make (spec "lw") ~rs:29 ~rt:2 ~imm:16 ();
    Mips.make (spec "mult") ~rs:4 ~rt:2 ();
    Mips.make (spec "mflo") ~rd:3 ();
    Mips.make (spec "sll") ~rt:2 ~rd:4 ~shamt:7 ();
    (* distinct source and destination *)
    Mips.make (spec "sra") ~rt:2 ~rd:4 ~shamt:3 ();
  ]

(* 32-bit re-encoded forms: representable but not in 16 bits *)
let word_candidates =
  [
    Mips.make (spec "addu") ~rs:29 ~rt:2 ~rd:29 ();
    (* cold register *)
    Mips.make (spec "addiu") ~rs:11 ~rt:12 ~imm:1000 ();
    (* immediate too big for 6 bits, fits 11 *)
    Mips.make (spec "lw") ~rs:16 ~rt:9 ~imm:37 ();
    (* unaligned offset *)
    Mips.make (spec "lw") ~rs:16 ~rt:9 ~imm:256 ();
    (* offset too big for the short form *)
    Mips.make (spec "jal") ~imm:0x12345 ();
    Mips.make (spec "mult") ~rs:29 ~rt:30 ();
    Mips.make (spec "sll") ~rt:2 ~rd:4 ~shamt:31 ();
    (* shift amount beyond the short form's 4 bits *)
  ]

(* nothing fits: raw 48-bit escape *)
let escape_candidates =
  [
    Mips.make (spec "lui") ~rt:2 ~imm:0x1000 ();
    (* 16-bit immediate out of the I32 range *)
    Mips.make (spec "addiu") ~rs:29 ~rt:29 ~imm:(-4000 land 0xffff) ();
    Mips.make (spec "jal") ~imm:0x400000 ();
    (* jal target beyond the BL form's 22 bits *)
    Mips.make (spec "beq") ~rs:4 ~rt:2 ~imm:0x4000 ();
    (* far branch *)
  ]

let test_compressible_classification () =
  List.iter
    (fun i ->
      Alcotest.(check int) (Mips.to_string i ^ " is short") 2 (Dense16.encoded_bytes i))
    short_candidates;
  List.iter
    (fun i ->
      Alcotest.(check int) (Mips.to_string i ^ " re-encodes") 4 (Dense16.encoded_bytes i))
    word_candidates;
  List.iter
    (fun i ->
      Alcotest.(check int) (Mips.to_string i ^ " escapes") 6 (Dense16.encoded_bytes i))
    escape_candidates

let test_roundtrip_mixed () =
  let program = short_candidates @ word_candidates @ escape_candidates @ short_candidates in
  let dense = Dense16.encode_program program in
  match Dense16.decode_program dense with
  | None -> Alcotest.fail "dense image must decode"
  | Some back ->
    Alcotest.(check int) "same count" (List.length program) (List.length back);
    List.iter2
      (fun a b -> Alcotest.(check int) "same word" (Mips.encode a) (Mips.encode b))
      program back

let test_sizes () =
  let dense = Dense16.encode_program short_candidates in
  Alcotest.(check int) "2 bytes per short form" (2 * List.length short_candidates)
    (String.length dense);
  Alcotest.(check int) "4-byte BL form" 4
    (String.length (Dense16.encode_program [ Mips.make (spec "jal") ~imm:0x1234 () ]));
  let dense = Dense16.encode_program word_candidates in
  Alcotest.(check int) "4 bytes per word form" (4 * List.length word_candidates)
    (String.length dense);
  let dense = Dense16.encode_program escape_candidates in
  Alcotest.(check int) "6 bytes per escape" (6 * List.length escape_candidates)
    (String.length dense)

let test_ratio_on_program () =
  let profile =
    { (P.Profile.find "go") with P.Profile.name = "t"; target_ops = 1500; functions = 10 }
  in
  let instrs, _ = P.Mips_backend.lower (P.Generator.generate ~seed:4L profile) in
  let r = Dense16.ratio instrs in
  let st = Dense16.stats instrs in
  Alcotest.(check int) "stats partition" st.Dense16.instructions
    (st.Dense16.half_forms + st.Dense16.word_forms + st.Dense16.escaped);
  (* Static re-encoding of code compiled for the full register file only
     reaches modest density (a dense-ISA compiler would do better); the
     point of the comparison is that the paper's compression schemes beat
     it without touching the pipeline's register file. *)
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f in (0.6, 0.9)" r) true (r > 0.6 && r < 0.9);
  match Dense16.decode_program (Dense16.encode_program instrs) with
  | Some back -> Alcotest.(check int) "lossless on real program" (List.length instrs) (List.length back)
  | None -> Alcotest.fail "program dense image must decode"

let test_rejects_garbage () =
  Alcotest.(check bool) "odd length" true (Dense16.decode_program "abc" = None);
  (* escape prefix with nonzero payload *)
  Alcotest.(check bool) "bad escape" true (Dense16.decode_program "\xf1\x00\x00\x00\x00\x00" = None);
  (* truncated escape *)
  Alcotest.(check bool) "truncated escape" true (Dense16.decode_program "\xf0\x00\x00\x00" = None)

let suite =
  [
    Alcotest.test_case "classification" `Quick test_compressible_classification;
    Alcotest.test_case "mixed roundtrip" `Quick test_roundtrip_mixed;
    Alcotest.test_case "unit sizes" `Quick test_sizes;
    Alcotest.test_case "ratio on program" `Quick test_ratio_on_program;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
  ]

let prop_dense_roundtrip_random_programs =
  QCheck.Test.make ~name:"dense16 is lossless on generated programs" ~count:25
    QCheck.(int_bound 10000)
    (fun seed ->
      let profile =
        { (P.Profile.find "xlisp") with P.Profile.name = "t"; target_ops = 300; functions = 4 }
      in
      let instrs, _ = P.Mips_backend.lower (P.Generator.generate ~seed:(Int64.of_int seed) profile) in
      match Dense16.decode_program (Dense16.encode_program instrs) with
      | Some back ->
        List.length back = List.length instrs
        && List.for_all2 (fun a b -> Mips.encode a = Mips.encode b) instrs back
      | None -> false)

let prop_suite = [ QCheck_alcotest.to_alcotest prop_dense_roundtrip_random_programs ]

let suite = suite @ prop_suite
