module Mips = Ccomp_isa.Mips
module Prng = Ccomp_util.Prng

let spec = Mips.spec_of_mnemonic

let test_known_encodings () =
  (* addu $3, $1, $2 -> 0x00221821 *)
  let addu = Mips.make (spec "addu") ~rs:1 ~rt:2 ~rd:3 () in
  Alcotest.(check int) "addu" 0x00221821 (Mips.encode addu);
  (* addiu $29, $29, -32 -> 0x27bdffe0 *)
  let addiu = Mips.make (spec "addiu") ~rs:29 ~rt:29 ~imm:0xffe0 () in
  Alcotest.(check int) "addiu" 0x27bdffe0 (Mips.encode addiu);
  (* lw $31, 28($29) -> 0x8fbf001c *)
  let lw = Mips.make (spec "lw") ~rs:29 ~rt:31 ~imm:28 () in
  Alcotest.(check int) "lw" 0x8fbf001c (Mips.encode lw);
  (* jr $31 -> 0x03e00008 *)
  let jr = Mips.make (spec "jr") ~rs:31 () in
  Alcotest.(check int) "jr" 0x03e00008 (Mips.encode jr);
  (* sll $2, $3, 4 -> 0x00031100 *)
  let sll = Mips.make (spec "sll") ~rt:3 ~rd:2 ~shamt:4 () in
  Alcotest.(check int) "sll" 0x00031100 (Mips.encode sll);
  (* jal 0x100 (word target) -> 0x0c000100 *)
  let jal = Mips.make (spec "jal") ~imm:0x100 () in
  Alcotest.(check int) "jal" 0x0c000100 (Mips.encode jal);
  (* bgez $4, +8 -> REGIMM rt=1: 0x04810008 *)
  let bgez = Mips.make (spec "bgez") ~rs:4 ~imm:8 () in
  Alcotest.(check int) "bgez" 0x04810008 (Mips.encode bgez)

let test_decode_inverse () =
  List.iter
    (fun word ->
      match Mips.decode word with
      | Some i -> Alcotest.(check int) (Printf.sprintf "decode(0x%08x)" word) word (Mips.encode i)
      | None -> Alcotest.failf "0x%08x should decode" word)
    [ 0x00221821; 0x27bdffe0; 0x8fbf001c; 0x03e00008; 0x00031100; 0x0c000100; 0x04810008 ]

let test_decode_rejects_unknown () =
  (* opcode 0x3f is unused in this subset *)
  Alcotest.(check bool) "unknown opcode" true (Mips.decode 0xfc000000 = None);
  (* special funct 0x3f unused *)
  Alcotest.(check bool) "unknown funct" true (Mips.decode 0x0000003f = None);
  (* non-canonical: addu with nonzero shamt *)
  Alcotest.(check bool) "non-canonical fields" true (Mips.decode 0x00221861 = None)

let test_field_ranges_checked () =
  Alcotest.check_raises "rs out of range" (Invalid_argument "Mips.make: rs out of range: 32")
    (fun () -> ignore (Mips.make (spec "jr") ~rs:32 ()));
  Alcotest.check_raises "imm out of range" (Invalid_argument "Mips.make: imm out of range: 65536")
    (fun () -> ignore (Mips.make (spec "lw") ~imm:65536 ()));
  (* jump targets get 26 bits *)
  ignore (Mips.make (spec "j") ~imm:0x3ffffff ())

let test_all_specs_roundtrip () =
  let g = Prng.create 99L in
  Array.iter
    (fun sp ->
      for _ = 1 to 50 do
        let regs = List.init (Mips.reg_arity sp) (fun _ -> Prng.int g 32) in
        let imm = if Mips.has_immediate sp then Some (Prng.int g 65536) else None in
        let limm = if Mips.has_long_immediate sp then Some (Prng.int g (1 lsl 26)) else None in
        let i = Mips.reassemble sp ~regs ~imm ~limm in
        match Mips.decode (Mips.encode i) with
        | Some i' ->
          Alcotest.(check int) (sp.Mips.mnemonic ^ " reencodes") (Mips.encode i) (Mips.encode i')
        | None -> Alcotest.failf "%s does not decode" sp.Mips.mnemonic
      done)
    Mips.specs

let test_streams_reassemble () =
  let g = Prng.create 123L in
  Array.iter
    (fun sp ->
      let regs = List.init (Mips.reg_arity sp) (fun _ -> Prng.int g 32) in
      let imm = if Mips.has_immediate sp then Some (Prng.int g 65536) else None in
      let limm = if Mips.has_long_immediate sp then Some (Prng.int g (1 lsl 26)) else None in
      let i = Mips.reassemble sp ~regs ~imm ~limm in
      (* deconstruct into streams and rebuild: the Fig. 6 data path *)
      let i' =
        Mips.reassemble sp ~regs:(Mips.operand_regs i) ~imm:(Mips.immediate i)
          ~limm:(Mips.long_immediate i)
      in
      Alcotest.(check int) (sp.Mips.mnemonic ^ " via streams") (Mips.encode i) (Mips.encode i'))
    Mips.specs

let test_operand_counts_match_streams () =
  Array.iter
    (fun sp ->
      let regs = List.init (Mips.reg_arity sp) (fun _ -> 1) in
      let imm = if Mips.has_immediate sp then Some 5 else None in
      let limm = if Mips.has_long_immediate sp then Some 6 else None in
      let i = Mips.reassemble sp ~regs ~imm ~limm in
      Alcotest.(check int)
        (sp.Mips.mnemonic ^ " reg arity")
        (Mips.reg_arity sp)
        (List.length (Mips.operand_regs i)))
    Mips.specs

let test_signed_immediate () =
  let i = Mips.make (spec "addiu") ~rs:29 ~rt:29 ~imm:0xffe0 () in
  Alcotest.(check int) "negative immediate" (-32) (Mips.signed_immediate i);
  let j = Mips.make (spec "addiu") ~rs:4 ~rt:4 ~imm:100 () in
  Alcotest.(check int) "positive immediate" 100 (Mips.signed_immediate j)

let test_program_encoding () =
  let instrs =
    [ Mips.make (spec "addiu") ~rs:29 ~rt:29 ~imm:0xffe0 (); Mips.make (spec "jr") ~rs:31 () ]
  in
  let code = Mips.encode_program instrs in
  Alcotest.(check int) "4 bytes per instruction" 8 (String.length code);
  Alcotest.(check char) "big-endian first byte" '\x27' code.[0];
  let decoded = Mips.decode_program code in
  Alcotest.(check int) "two instructions" 2 (Array.length decoded);
  Array.iter (fun d -> Alcotest.(check bool) "decodes" true (Option.is_some d)) decoded

let test_classification () =
  Alcotest.(check bool) "beq is branch" true (Mips.is_branch (Mips.make (spec "beq") ()));
  Alcotest.(check bool) "j is branch" true (Mips.is_branch (Mips.make (spec "j") ()));
  Alcotest.(check bool) "addu not branch" false (Mips.is_branch (Mips.make (spec "addu") ()));
  Alcotest.(check bool) "jr indirect" true (Mips.is_indirect_jump (Mips.make (spec "jr") ()));
  Alcotest.(check bool) "jal not indirect" false (Mips.is_indirect_jump (Mips.make (spec "jal") ()))

let test_disassembly () =
  let i = Mips.make (spec "lw") ~rs:29 ~rt:31 ~imm:28 () in
  Alcotest.(check string) "lw text" "lw $31, 28($29)" (Mips.to_string i);
  let s = Mips.make (spec "sll") ~rt:3 ~rd:2 ~shamt:4 () in
  Alcotest.(check string) "sll text" "sll $2, $3, 4" (Mips.to_string s)

let prop_decode_encode_fixpoint =
  QCheck.Test.make ~name:"decode is a partial inverse of encode on random words" ~count:2000
    QCheck.(int_bound 0x3fffffff)
    (fun w ->
      let word = w lxor (w lsl 2) land 0xffffffff in
      match Mips.decode word with Some i -> Mips.encode i = word | None -> true)

let suite =
  [
    Alcotest.test_case "known encodings" `Quick test_known_encodings;
    Alcotest.test_case "decode inverse" `Quick test_decode_inverse;
    Alcotest.test_case "decode rejects unknown" `Quick test_decode_rejects_unknown;
    Alcotest.test_case "field range checks" `Quick test_field_ranges_checked;
    Alcotest.test_case "all specs roundtrip" `Quick test_all_specs_roundtrip;
    Alcotest.test_case "stream reassembly" `Quick test_streams_reassemble;
    Alcotest.test_case "operand counts" `Quick test_operand_counts_match_streams;
    Alcotest.test_case "signed immediate" `Quick test_signed_immediate;
    Alcotest.test_case "program encoding" `Quick test_program_encoding;
    Alcotest.test_case "branch classification" `Quick test_classification;
    Alcotest.test_case "disassembly" `Quick test_disassembly;
    QCheck_alcotest.to_alcotest prop_decode_encode_fixpoint;
  ]
