module Lru = Ccomp_memsys.Lru
module Cache = Ccomp_memsys.Cache
module Lat = Ccomp_memsys.Lat
module Clb = Ccomp_memsys.Clb
module System = Ccomp_memsys.System
module Prng = Ccomp_util.Prng

(* --- LRU -------------------------------------------------------------- *)

let test_lru_basic () =
  let l = Lru.create ~capacity:2 in
  Alcotest.(check bool) "first access misses" false (Lru.access l 1);
  Alcotest.(check bool) "second access hits" true (Lru.access l 1);
  Alcotest.(check bool) "insert 2" false (Lru.access l 2);
  Alcotest.(check bool) "both resident" true (Lru.mem l 1 && Lru.mem l 2)

let test_lru_eviction_order () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.access l 1);
  ignore (Lru.access l 2);
  ignore (Lru.access l 1);
  (* 2 is now LRU *)
  ignore (Lru.access l 3);
  Alcotest.(check bool) "LRU victim evicted" false (Lru.mem l 2);
  Alcotest.(check bool) "MRU survives" true (Lru.mem l 1);
  Alcotest.(check bool) "new resident" true (Lru.mem l 3)

let test_lru_clear () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.access l 1);
  Lru.clear l;
  Alcotest.(check bool) "cleared" false (Lru.mem l 1)

(* --- Cache ------------------------------------------------------------ *)

let cache_cfg = { Cache.size_bytes = 256; block_size = 32; associativity = 2 }

let test_cache_validation () =
  Alcotest.(check bool) "valid accepted" true (Cache.validate cache_cfg = Ok ());
  Alcotest.(check bool) "non-pow2 block rejected" true
    (Cache.validate { cache_cfg with Cache.block_size = 24 } <> Ok ());
  Alcotest.(check bool) "non-multiple size rejected" true
    (Cache.validate { cache_cfg with Cache.size_bytes = 250 } <> Ok ())

let test_cache_spatial_locality () =
  let c = Cache.create cache_cfg in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "same block hits" true (Cache.access c 4);
  Alcotest.(check bool) "same block hits" true (Cache.access c 31);
  Alcotest.(check bool) "next block misses" false (Cache.access c 32)

let test_cache_conflict_and_lru () =
  (* 256B/2-way/32B = 4 sets: blocks 0,4,8 map to set 0 *)
  let c = Cache.create cache_cfg in
  ignore (Cache.access c (0 * 32));
  ignore (Cache.access c (4 * 32));
  ignore (Cache.access c (0 * 32));
  (* block 4 is LRU in set 0; inserting block 8 evicts it *)
  ignore (Cache.access c (8 * 32));
  Alcotest.(check bool) "block 0 still resident" true (Cache.access c 0);
  Alcotest.(check bool) "block 4 evicted" false (Cache.access c (4 * 32))

let test_cache_stats () =
  let c = Cache.create cache_cfg in
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  ignore (Cache.access c 64);
  Alcotest.(check int) "accesses" 3 (Cache.accesses c);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Cache.reset_stats c;
  Alcotest.(check int) "stats reset" 0 (Cache.accesses c);
  Alcotest.(check bool) "content kept" true (Cache.access c 0)

let test_cache_bigger_is_no_worse () =
  let g = Prng.create 1L in
  let trace = Array.init 20000 (fun _ -> 32 * Prng.geometric g 0.02) in
  let misses size =
    let c = Cache.create { cache_cfg with Cache.size_bytes = size } in
    Array.iter (fun a -> ignore (Cache.access c a)) trace;
    Cache.misses c
  in
  Alcotest.(check bool) "1KiB <= 256B misses" true (misses 1024 <= misses 256)

(* --- LAT -------------------------------------------------------------- *)

let test_lat_offsets () =
  let lat = Lat.build [| 10; 20; 5 |] in
  Alcotest.(check int) "entries" 3 (Lat.entries lat);
  Alcotest.(check int) "offset 0" 0 (Lat.offset lat 0);
  Alcotest.(check int) "offset 1" 10 (Lat.offset lat 1);
  Alcotest.(check int) "offset 2" 30 (Lat.offset lat 2);
  Alcotest.(check int) "length" 20 (Lat.length lat 1);
  Alcotest.(check int) "total" 35 (Lat.total_compressed lat)

let test_lat_of_blocks () =
  let lat = Lat.of_blocks [| "abc"; "de"; "" |] in
  Alcotest.(check int) "lengths from blocks" 3 (Lat.length lat 0);
  Alcotest.(check int) "empty block" 0 (Lat.length lat 2);
  Alcotest.(check int) "total" 5 (Lat.total_compressed lat)

let test_lat_storage_model () =
  let lat = Lat.build (Array.make 64 20) in
  (* 8 groups x 4-byte base + 64 x 1-byte length *)
  Alcotest.(check int) "compact storage" ((8 * 4) + 64) (Lat.storage_bytes lat);
  let big = Lat.build (Array.make 64 300) in
  Alcotest.(check int) "wide lengths" ((8 * 4) + 128) (Lat.storage_bytes big)

let test_lat_serialization () =
  let g = Prng.create 2L in
  let lengths = Array.init 100 (fun _ -> Prng.int g 50) in
  let lat = Lat.build lengths in
  let s = Lat.serialize lat in
  let lat', pos = Lat.deserialize s ~pos:0 in
  Alcotest.(check int) "consumed" (String.length s) pos;
  Alcotest.(check int) "entries" (Lat.entries lat) (Lat.entries lat');
  for i = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "offset %d" i) (Lat.offset lat i) (Lat.offset lat' i)
  done

let test_lat_rejects_corruption () =
  let lat = Lat.build [| 1; 2; 3 |] in
  let s = Bytes.of_string (Lat.serialize lat) in
  (* corrupt a group base *)
  Bytes.set s 6 '\xff';
  match Lat.deserialize (Bytes.to_string s) ~pos:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "corrupted base must be rejected"

(* --- CLB -------------------------------------------------------------- *)

let test_clb_grouping () =
  let clb = Clb.create ~entries:4 in
  Alcotest.(check bool) "first miss" false (Clb.access clb 0);
  Alcotest.(check bool) "same LAT group hits" true (Clb.access clb 7);
  Alcotest.(check bool) "next group misses" false (Clb.access clb 8);
  Alcotest.(check int) "stats" 3 (Clb.accesses clb);
  Alcotest.(check int) "hits" 1 (Clb.hits clb);
  Alcotest.(check int) "misses" 2 (Clb.misses clb)

(* --- System ----------------------------------------------------------- *)

let loopy_trace n =
  (* walk three loops over a 4 KiB text segment *)
  let g = Prng.create 3L in
  let out = Array.make n 0 in
  let pc = ref 0 in
  for i = 0 to n - 1 do
    out.(i) <- !pc;
    if Prng.float g < 0.1 then pc := 4 * Prng.int g 1024 else pc := (!pc + 4) mod 4096
  done;
  out

let lat_for_text bytes = Lat.build (Array.make ((bytes + 31) / 32) 20)

let test_system_uncompressed_baseline () =
  let trace = loopy_trace 50000 in
  let r = System.run (System.default_config ()) ~trace () in
  Alcotest.(check int) "every fetch counted" 50000 r.System.fetches;
  Alcotest.(check int) "hits + misses" r.System.fetches (r.System.hits + r.System.misses);
  Alcotest.(check bool) "cpi >= 1" true (r.System.cpi >= 1.0)

let test_system_compressed_needs_lat () =
  let trace = loopy_trace 10 in
  Alcotest.check_raises "missing LAT" (Invalid_argument "System.run: compressed system needs a LAT")
    (fun () ->
      ignore
        (System.run (System.default_config ~decompressor:System.samc_decompressor ()) ~trace ()))

let test_system_compressed_slower () =
  let trace = loopy_trace 50000 in
  let lat = lat_for_text 4096 in
  let base = System.run (System.default_config ()) ~trace () in
  let comp =
    System.run (System.default_config ~decompressor:System.samc_decompressor ()) ~lat ~trace ()
  in
  Alcotest.(check bool) "decompression costs cycles" true (comp.System.cpi >= base.System.cpi);
  Alcotest.(check bool) "slowdown >= 1" true (System.slowdown ~compressed:comp ~uncompressed:base >= 1.0)

let test_system_faster_decompressor_cheaper () =
  let trace = loopy_trace 50000 in
  let lat = lat_for_text 4096 in
  let run d = System.run (System.default_config ~cache_bytes:512 ~decompressor:d ()) ~lat ~trace () in
  let samc = run System.samc_decompressor in
  let sadc = run System.sadc_decompressor in
  Alcotest.(check bool) "sadc engine faster than samc engine" true
    (sadc.System.cpi <= samc.System.cpi)

let test_system_smaller_cache_slower () =
  let trace = loopy_trace 50000 in
  let lat = lat_for_text 4096 in
  let run cache_bytes =
    System.run (System.default_config ~cache_bytes ~decompressor:System.samc_decompressor ()) ~lat
      ~trace ()
  in
  let small = run 256 and large = run 4096 in
  Alcotest.(check bool) "hit ratio grows with size" true
    (large.System.hit_ratio >= small.System.hit_ratio);
  Alcotest.(check bool) "cpi shrinks with size" true (large.System.cpi <= small.System.cpi)

let test_system_clb_reduces_penalty () =
  let trace = loopy_trace 50000 in
  let lat = lat_for_text 4096 in
  let with_clb =
    System.run
      { (System.default_config ~cache_bytes:512 ~decompressor:System.samc_decompressor ()) with System.clb_entries = 32 }
      ~lat ~trace ()
  in
  let without =
    System.run
      { (System.default_config ~cache_bytes:512 ~decompressor:System.samc_decompressor ()) with System.clb_entries = 0 }
      ~lat ~trace ()
  in
  Alcotest.(check bool) "CLB saves cycles" true (with_clb.System.total_cycles <= without.System.total_cycles);
  Alcotest.(check int) "no CLB: every miss pays" without.System.misses without.System.clb_misses

let test_system_trace_beyond_lat_rejected () =
  let trace = [| 100_000 |] in
  let lat = lat_for_text 4096 in
  Alcotest.check_raises "beyond LAT" (Invalid_argument "System.run: trace address beyond the LAT")
    (fun () ->
      ignore
        (System.run
           (System.default_config ~cache_bytes:256 ~decompressor:System.samc_decompressor ())
           ~lat ~trace ()))

let suite =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basic;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru clear" `Quick test_lru_clear;
    Alcotest.test_case "cache validation" `Quick test_cache_validation;
    Alcotest.test_case "cache spatial locality" `Quick test_cache_spatial_locality;
    Alcotest.test_case "cache conflicts + lru" `Quick test_cache_conflict_and_lru;
    Alcotest.test_case "cache stats" `Quick test_cache_stats;
    Alcotest.test_case "bigger cache no worse" `Quick test_cache_bigger_is_no_worse;
    Alcotest.test_case "lat offsets" `Quick test_lat_offsets;
    Alcotest.test_case "lat of blocks" `Quick test_lat_of_blocks;
    Alcotest.test_case "lat storage model" `Quick test_lat_storage_model;
    Alcotest.test_case "lat serialization" `Quick test_lat_serialization;
    Alcotest.test_case "lat rejects corruption" `Quick test_lat_rejects_corruption;
    Alcotest.test_case "clb grouping" `Quick test_clb_grouping;
    Alcotest.test_case "system baseline" `Quick test_system_uncompressed_baseline;
    Alcotest.test_case "system needs lat" `Quick test_system_compressed_needs_lat;
    Alcotest.test_case "system compressed slower" `Quick test_system_compressed_slower;
    Alcotest.test_case "system decompressor speed" `Quick test_system_faster_decompressor_cheaper;
    Alcotest.test_case "system cache size" `Quick test_system_smaller_cache_slower;
    Alcotest.test_case "system clb effect" `Quick test_system_clb_reduces_penalty;
    Alcotest.test_case "system lat bounds" `Quick test_system_trace_beyond_lat_rejected;
  ]

let test_lat_quantize () =
  let lat = Lat.build [| 10; 20; 5; 17 |] in
  let q = Lat.quantize ~quantum:8 lat in
  Alcotest.(check int) "length rounded up" 16 (Lat.length q 0);
  Alcotest.(check int) "already multiple stays" 24 (Lat.length q 1);
  Alcotest.(check int) "total grows" (16 + 24 + 8 + 24) (Lat.total_compressed q);
  Alcotest.(check bool) "padding monotone" true
    (Lat.total_compressed q >= Lat.total_compressed lat)

let test_lat_storage_bits_shrink_with_quantum () =
  let g = Prng.create 5L in
  let lat = Lat.build (Array.init 256 (fun _ -> 1 + Prng.int g 40)) in
  let bits q = Lat.storage_bits ~quantum:q (Lat.quantize ~quantum:q lat) in
  Alcotest.(check bool) "coarser quantum, smaller table" true (bits 16 < bits 1);
  Alcotest.check_raises "unquantized lengths rejected"
    (Invalid_argument "Lat.storage_bits: lengths not quantized") (fun () ->
      ignore (Lat.storage_bits ~quantum:16 lat))

let quantize_suite =
  [
    Alcotest.test_case "lat quantize" `Quick test_lat_quantize;
    Alcotest.test_case "lat storage bits" `Quick test_lat_storage_bits_shrink_with_quantum;
  ]

let suite = suite @ quantize_suite
