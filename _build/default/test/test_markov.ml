module Markov_model = Ccomp_core.Markov_model
module Coder = Ccomp_arith.Binary_coder

let train_simple ?(quantize = false) ~widths ~context_bits notes =
  let t = Markov_model.Trainer.create ~widths ~context_bits in
  List.iter (fun (stream, ctx, node, bit) -> Markov_model.Trainer.note t ~stream ~ctx ~node bit) notes;
  Markov_model.Trainer.finalize ~quantize t

let test_unseen_nodes_predict_half () =
  let m = train_simple ~widths:[| 2 |] ~context_bits:0 [] in
  Alcotest.(check int) "no data -> 1/2" (Coder.scale / 2) (Markov_model.p0 m ~stream:0 ~ctx:0 ~node:1)

let test_counting () =
  let m =
    train_simple ~widths:[| 2 |] ~context_bits:0
      [ (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 1) ]
  in
  Alcotest.(check int) "3/4 zeros" (3 * Coder.scale / 4) (Markov_model.p0 m ~stream:0 ~ctx:0 ~node:1)

let test_extreme_counts_clamped () =
  let notes = List.init 100 (fun _ -> (0, 0, 1, 0)) in
  let m = train_simple ~widths:[| 2 |] ~context_bits:0 notes in
  Alcotest.(check int) "clamped below certainty" (Coder.scale - 1)
    (Markov_model.p0 m ~stream:0 ~ctx:0 ~node:1)

let test_contexts_are_separate () =
  let m =
    train_simple ~widths:[| 2 |] ~context_bits:1
      [ (0, 0, 1, 0); (0, 0, 1, 0); (0, 1, 1, 1); (0, 1, 1, 1) ]
  in
  Alcotest.(check bool) "ctx 0 biased to 0" true (Markov_model.p0 m ~stream:0 ~ctx:0 ~node:1 > Coder.scale / 2);
  Alcotest.(check bool) "ctx 1 biased to 1" true (Markov_model.p0 m ~stream:0 ~ctx:1 ~node:1 < Coder.scale / 2)

let test_probability_count_formula () =
  let m = train_simple ~widths:[| 8; 8; 8; 8 |] ~context_bits:2 [] in
  (* 4 streams x (2^8 - 1) nodes x 4 contexts: the paper's storage bound *)
  Alcotest.(check int) "probability count" (4 * 255 * 4) (Markov_model.probability_count m);
  Alcotest.(check int) "contexts" 4 (Markov_model.contexts m)

let test_quantized_probabilities_are_pow2 () =
  let notes =
    List.concat_map (fun _ -> [ (0, 0, 1, 0); (0, 0, 1, 0); (0, 0, 1, 1) ]) (List.init 30 Fun.id)
  in
  let m = train_simple ~quantize:true ~widths:[| 2 |] ~context_bits:0 notes in
  let p = Markov_model.p0 m ~stream:0 ~ctx:0 ~node:1 in
  let lps = min p (Coder.scale - p) in
  Alcotest.(check bool) "LPS power of two" true (lps land (lps - 1) = 0);
  Alcotest.(check bool) "quantized flag" true (Markov_model.quantized m)

let test_serialization_roundtrip () =
  let notes =
    List.init 500 (fun i -> (i mod 2, i mod 4, 1 + (i mod 3), (i / 7) mod 2))
  in
  let m = train_simple ~widths:[| 2; 3 |] ~context_bits:2 notes in
  let s = Markov_model.serialize m in
  Alcotest.(check int) "storage_bytes matches" (String.length s) (Markov_model.storage_bytes m);
  let m', pos = Markov_model.deserialize s ~pos:0 in
  Alcotest.(check int) "consumed all" (String.length s) pos;
  Alcotest.(check (array int)) "widths" (Markov_model.widths m) (Markov_model.widths m');
  Alcotest.(check int) "context bits" (Markov_model.context_bits m) (Markov_model.context_bits m');
  for stream = 0 to 1 do
    for ctx = 0 to 3 do
      for node = 1 to (1 lsl (Markov_model.widths m).(stream)) - 1 do
        Alcotest.(check int)
          (Printf.sprintf "prob s=%d c=%d n=%d" stream ctx node)
          (Markov_model.p0 m ~stream ~ctx ~node)
          (Markov_model.p0 m' ~stream ~ctx ~node)
      done
    done
  done

let test_quantized_serialization_roundtrip () =
  let notes = List.init 200 (fun i -> (0, 0, 1 + (i mod 7), i mod 2)) in
  let m = train_simple ~quantize:true ~widths:[| 3 |] ~context_bits:0 notes in
  let m', _ = Markov_model.deserialize (Markov_model.serialize m) ~pos:0 in
  for node = 1 to 7 do
    Alcotest.(check int)
      (Printf.sprintf "quantized prob node %d" node)
      (Markov_model.p0 m ~stream:0 ~ctx:0 ~node)
      (Markov_model.p0 m' ~stream:0 ~ctx:0 ~node)
  done

let test_quantized_model_smaller () =
  let notes = List.init 100 (fun i -> (0, 0, 1 + (i mod 255), i mod 2)) in
  let exact = train_simple ~widths:[| 8 |] ~context_bits:0 notes in
  let quant = train_simple ~quantize:true ~widths:[| 8 |] ~context_bits:0 notes in
  Alcotest.(check bool) "4+1-bit codes smaller than 12-bit" true
    (Markov_model.storage_bytes quant < Markov_model.storage_bytes exact)

let test_invalid_params_rejected () =
  Alcotest.check_raises "width 0" (Invalid_argument "Markov_model: stream width out of [1,16]")
    (fun () -> ignore (Markov_model.Trainer.create ~widths:[| 0 |] ~context_bits:0));
  Alcotest.check_raises "width 17" (Invalid_argument "Markov_model: stream width out of [1,16]")
    (fun () -> ignore (Markov_model.Trainer.create ~widths:[| 17 |] ~context_bits:0));
  Alcotest.check_raises "context 9" (Invalid_argument "Markov_model: context_bits out of [0,8]")
    (fun () -> ignore (Markov_model.Trainer.create ~widths:[| 4 |] ~context_bits:9))

let suite =
  [
    Alcotest.test_case "unseen nodes predict 1/2" `Quick test_unseen_nodes_predict_half;
    Alcotest.test_case "counting" `Quick test_counting;
    Alcotest.test_case "extreme counts clamped" `Quick test_extreme_counts_clamped;
    Alcotest.test_case "contexts separate" `Quick test_contexts_are_separate;
    Alcotest.test_case "probability count formula" `Quick test_probability_count_formula;
    Alcotest.test_case "quantized probabilities pow2" `Quick test_quantized_probabilities_are_pow2;
    Alcotest.test_case "serialization roundtrip" `Quick test_serialization_roundtrip;
    Alcotest.test_case "quantized serialization" `Quick test_quantized_serialization_roundtrip;
    Alcotest.test_case "quantized model smaller" `Quick test_quantized_model_smaller;
    Alcotest.test_case "invalid params rejected" `Quick test_invalid_params_rejected;
  ]

let test_pruning_backoff () =
  (* deep node seen once inherits its parent's estimate *)
  let t = Markov_model.Trainer.create ~widths:[| 3 |] ~context_bits:0 in
  (* parent node 2 heavily biased to 0; child node 4 seen once with a 1 *)
  for _ = 1 to 20 do
    Markov_model.Trainer.note t ~stream:0 ~ctx:0 ~node:2 0
  done;
  Markov_model.Trainer.note t ~stream:0 ~ctx:0 ~node:4 1;
  let m = Markov_model.Trainer.finalize ~prune_below:4 t in
  Alcotest.(check bool) "model is pruned" true (Markov_model.pruned m);
  Alcotest.(check int) "pruned child backs off to parent"
    (Markov_model.p0 m ~stream:0 ~ctx:0 ~node:2)
    (Markov_model.p0 m ~stream:0 ~ctx:0 ~node:4);
  Alcotest.(check bool) "fewer retained than positions" true
    (Markov_model.retained_count m < Markov_model.probability_count m)

let test_pruning_serialization () =
  let t = Markov_model.Trainer.create ~widths:[| 4; 3 |] ~context_bits:1 in
  let g = Ccomp_util.Prng.create 9L in
  for _ = 1 to 2000 do
    let stream = Ccomp_util.Prng.int g 2 in
    let node = 1 + Ccomp_util.Prng.geometric g 0.4 in
    let node = min node ((1 lsl if stream = 0 then 4 else 3) - 1) in
    Markov_model.Trainer.note t ~stream ~ctx:(Ccomp_util.Prng.int g 2) ~node
      (Ccomp_util.Prng.int g 2)
  done;
  let m = Markov_model.Trainer.finalize ~prune_below:8 t in
  let m', _ = Markov_model.deserialize (Markov_model.serialize m) ~pos:0 in
  Alcotest.(check int) "retained preserved" (Markov_model.retained_count m)
    (Markov_model.retained_count m');
  for stream = 0 to 1 do
    for ctx = 0 to 1 do
      for node = 1 to (1 lsl (Markov_model.widths m).(stream)) - 1 do
        Alcotest.(check int)
          (Printf.sprintf "prob s=%d c=%d n=%d" stream ctx node)
          (Markov_model.p0 m ~stream ~ctx ~node)
          (Markov_model.p0 m' ~stream ~ctx ~node)
      done
    done
  done

let test_pruned_model_smaller_storage () =
  let t () =
    let t = Markov_model.Trainer.create ~widths:[| 8 |] ~context_bits:0 in
    let g = Ccomp_util.Prng.create 11L in
    for _ = 1 to 3000 do
      Markov_model.Trainer.note t ~stream:0 ~ctx:0 ~node:(1 + Ccomp_util.Prng.int g 255)
        (Ccomp_util.Prng.int g 2)
    done;
    t
  in
  let full = Markov_model.Trainer.finalize (t ()) in
  let pruned = Markov_model.Trainer.finalize ~prune_below:16 (t ()) in
  Alcotest.(check bool) "pruned storage smaller" true
    (Markov_model.storage_bytes pruned < Markov_model.storage_bytes full)

let test_samc_with_pruning_roundtrips () =
  let profile =
    { (Ccomp_progen.Profile.find "mgrid") with Ccomp_progen.Profile.name = "t"; target_ops = 600 }
  in
  let code =
    (snd (Ccomp_progen.Mips_backend.lower (Ccomp_progen.Generator.generate ~seed:12L profile)))
      .Ccomp_progen.Layout.code
  in
  let module Samc = Ccomp_core.Samc in
  List.iter
    (fun prune_below ->
      let z = Samc.compress (Samc.mips_config ~prune_below ()) code in
      Alcotest.(check string) (Printf.sprintf "prune %d roundtrip" prune_below) code
        (Samc.decompress z))
    [ 0; 2; 8; 64 ];
  let full = Samc.compress (Samc.mips_config ()) code in
  let hard = Samc.compress (Samc.mips_config ~prune_below:32 ()) code in
  Alcotest.(check bool) "pruned model smaller" true
    (Samc.model_bytes hard < Samc.model_bytes full);
  Alcotest.(check bool) "pruned code no better" true (Samc.ratio hard >= Samc.ratio full)

let pruning_suite =
  [
    Alcotest.test_case "pruning backoff" `Quick test_pruning_backoff;
    Alcotest.test_case "pruned serialization" `Quick test_pruning_serialization;
    Alcotest.test_case "pruned storage smaller" `Quick test_pruned_model_smaller_storage;
    Alcotest.test_case "samc with pruning" `Quick test_samc_with_pruning_roundtrips;
  ]

let suite = suite @ pruning_suite
