module Freq = Ccomp_entropy.Freq
module Bit_stats = Ccomp_entropy.Bit_stats

let feq ?(eps = 1e-9) name a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%f vs %f)" name a b) true (Float.abs (a -. b) < eps)

let test_freq_counting () =
  let f = Freq.create 4 in
  Freq.add f 0;
  Freq.add f 1;
  Freq.add f 1;
  Freq.add_many f 3 5;
  Alcotest.(check int) "count 0" 1 (Freq.count f 0);
  Alcotest.(check int) "count 1" 2 (Freq.count f 1);
  Alcotest.(check int) "count 2" 0 (Freq.count f 2);
  Alcotest.(check int) "count 3" 5 (Freq.count f 3);
  Alcotest.(check int) "total" 8 (Freq.total f);
  Alcotest.(check int) "nonzero" 3 (Freq.nonzero f);
  feq "probability" 0.25 (Freq.probability f 1)

let test_freq_entropy_uniform () =
  let f = Freq.create 8 in
  for sym = 0 to 7 do
    Freq.add_many f sym 10
  done;
  feq "uniform 8 symbols = 3 bits" 3.0 (Freq.entropy f)

let test_freq_entropy_deterministic () =
  let f = Freq.create 8 in
  Freq.add_many f 3 100;
  feq "single symbol = 0 bits" 0.0 (Freq.entropy f)

let test_freq_entropy_biased () =
  let f = Freq.create 2 in
  Freq.add_many f 0 3;
  Freq.add_many f 1 1;
  (* H(0.75) = 0.811278 *)
  feq ~eps:1e-6 "H(3/4)" 0.8112781244591328 (Freq.entropy f)

let test_freq_of_string () =
  let f = Freq.of_string "abca" in
  Alcotest.(check int) "a twice" 2 (Freq.count f (Char.code 'a'));
  Alcotest.(check int) "total 4" 4 (Freq.total f)

let test_bit_stats_probabilities () =
  let s = Bit_stats.create ~width:4 in
  (* words 0b0001 x3 and 0b1001 x1: bit0 always 1, bit3 1/4 of the time *)
  Bit_stats.add_word s 1L;
  Bit_stats.add_word s 1L;
  Bit_stats.add_word s 1L;
  Bit_stats.add_word s 9L;
  feq "bit 0 always set" 1.0 (Bit_stats.bit_probability s 0);
  feq "bit 3 quarter" 0.25 (Bit_stats.bit_probability s 3);
  feq "bit 1 never" 0.0 (Bit_stats.bit_probability s 1);
  feq "constant bit has zero entropy" 0.0 (Bit_stats.bit_entropy s 0)

let test_bit_stats_correlation () =
  let s = Bit_stats.create ~width:4 in
  (* bits 0 and 1 always equal; bit 2 independent-ish *)
  Bit_stats.add_word s 0b0011L;
  Bit_stats.add_word s 0b0000L;
  Bit_stats.add_word s 0b0111L;
  Bit_stats.add_word s 0b0100L;
  feq "identical bits fully correlated" 1.0 (Bit_stats.correlation s 0 1);
  feq "independent bits uncorrelated" 0.0 (Bit_stats.correlation s 0 2)

let test_bit_stats_anticorrelation () =
  let s = Bit_stats.create ~width:2 in
  Bit_stats.add_word s 0b01L;
  Bit_stats.add_word s 0b10L;
  Bit_stats.add_word s 0b01L;
  Bit_stats.add_word s 0b10L;
  feq "complementary bits = -1" (-1.0) (Bit_stats.correlation s 0 1)

let test_conditional_entropy () =
  let s = Bit_stats.create ~width:2 in
  (* bit1 = bit0: H(b1|b0) = 0; H(b0) = 1 *)
  Bit_stats.add_word s 0b00L;
  Bit_stats.add_word s 0b11L;
  feq "H(b0)" 1.0 (Bit_stats.bit_entropy s 0);
  feq "H(b1,b0)" 1.0 (Bit_stats.joint_entropy s 0 1);
  feq "H(b1|b0)=0 when equal" 0.0 (Bit_stats.conditional_entropy s 0 1)

let test_conditional_entropy_independent () =
  let s = Bit_stats.create ~width:2 in
  Bit_stats.add_word s 0b00L;
  Bit_stats.add_word s 0b01L;
  Bit_stats.add_word s 0b10L;
  Bit_stats.add_word s 0b11L;
  feq "independent: H(b1|b0)=H(b1)=1" 1.0 (Bit_stats.conditional_entropy s 0 1)

let test_binary_entropy_edges () =
  feq "h(0)" 0.0 (Bit_stats.binary_entropy 0.0);
  feq "h(1)" 0.0 (Bit_stats.binary_entropy 1.0);
  feq "h(1/2)" 1.0 (Bit_stats.binary_entropy 0.5)

let prop_entropy_bounds =
  QCheck.Test.make ~name:"0 <= entropy <= log2(alphabet)" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 200) (int_bound 15))
    (fun syms ->
      let f = Freq.create 16 in
      List.iter (Freq.add f) syms;
      let h = Freq.entropy f in
      h >= -1e-9 && h <= 4.0 +. 1e-9)

let prop_correlation_bounds =
  QCheck.Test.make ~name:"|correlation| <= 1" ~count:100
    QCheck.(list_of_size (Gen.int_range 2 100) (int_bound 255))
    (fun words ->
      let s = Bit_stats.create ~width:8 in
      List.iter (fun w -> Bit_stats.add_word s (Int64.of_int w)) words;
      let ok = ref true in
      for i = 0 to 7 do
        for j = 0 to 7 do
          let c = Bit_stats.correlation s i j in
          if Float.abs c > 1.0 +. 1e-9 then ok := false
        done
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "freq counting" `Quick test_freq_counting;
    Alcotest.test_case "uniform entropy" `Quick test_freq_entropy_uniform;
    Alcotest.test_case "deterministic entropy" `Quick test_freq_entropy_deterministic;
    Alcotest.test_case "biased entropy" `Quick test_freq_entropy_biased;
    Alcotest.test_case "of_string" `Quick test_freq_of_string;
    Alcotest.test_case "bit probabilities" `Quick test_bit_stats_probabilities;
    Alcotest.test_case "bit correlation" `Quick test_bit_stats_correlation;
    Alcotest.test_case "anticorrelation" `Quick test_bit_stats_anticorrelation;
    Alcotest.test_case "conditional entropy equal bits" `Quick test_conditional_entropy;
    Alcotest.test_case "conditional entropy independent" `Quick test_conditional_entropy_independent;
    Alcotest.test_case "binary entropy edges" `Quick test_binary_entropy_edges;
    QCheck_alcotest.to_alcotest prop_entropy_bounds;
    QCheck_alcotest.to_alcotest prop_correlation_bounds;
  ]
