module Lzw = Ccomp_baselines.Lzw
module Lzss = Ccomp_baselines.Lzss
module Byte_huffman = Ccomp_baselines.Byte_huffman
module Prng = Ccomp_util.Prng
module P = Ccomp_progen

let mips_code seed =
  let profile =
    { (P.Profile.find "go") with P.Profile.name = "t"; target_ops = 900; functions = 10 }
  in
  (snd (P.Mips_backend.lower (P.Generator.generate ~seed profile))).P.Layout.code

(* --- LZW ------------------------------------------------------------- *)

let test_lzw_empty () = Alcotest.(check string) "empty" "" (Lzw.decompress (Lzw.compress ""))

let test_lzw_single_byte () =
  Alcotest.(check string) "one byte" "A" (Lzw.decompress (Lzw.compress "A"))

let test_lzw_repetitive () =
  let s = String.concat "" (List.init 500 (fun _ -> "abcabcabd")) in
  let c = Lzw.compress s in
  Alcotest.(check string) "roundtrip" s (Lzw.decompress c);
  Alcotest.(check bool) "repetition compresses hard" true
    (String.length c * 5 < String.length s)

let test_lzw_kwkwk () =
  (* "aaaa..." exercises the code == next (KwKwK) special case *)
  let s = String.make 1000 'a' in
  Alcotest.(check string) "runs roundtrip" s (Lzw.decompress (Lzw.compress s))

let test_lzw_table_reset () =
  (* enough distinct material to fill the 16-bit table and force a clear *)
  let g = Prng.create 1L in
  let b = Buffer.create (1 lsl 20) in
  for _ = 1 to 400_000 do
    Buffer.add_char b (Char.chr (Prng.int g 256))
  done;
  let s = Buffer.contents b in
  Alcotest.(check string) "roundtrip across table clears" s (Lzw.decompress (Lzw.compress s))

let test_lzw_random_does_not_compress () =
  let g = Prng.create 2L in
  let s = String.init 20000 (fun _ -> Char.chr (Prng.int g 256)) in
  Alcotest.(check bool) "ratio > 1 on noise" true (Lzw.ratio s > 1.0)

let test_lzw_code_ratio_band () =
  let r = Lzw.ratio (mips_code 3L) in
  Alcotest.(check bool) (Printf.sprintf "mips code ratio %.3f in (0.4, 0.85)" r) true
    (r > 0.4 && r < 0.85)

let prop_lzw_roundtrip =
  QCheck.Test.make ~name:"lzw round-trips arbitrary strings" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 3000))
    (fun s -> String.equal (Lzw.decompress (Lzw.compress s)) s)

let prop_lzw_roundtrip_small_alphabet =
  QCheck.Test.make ~name:"lzw round-trips low-entropy strings" ~count:200
    QCheck.(string_gen_of_size (Gen.int_range 0 3000) (Gen.map (fun n -> Char.chr (97 + n)) (Gen.int_bound 2)))
    (fun s -> String.equal (Lzw.decompress (Lzw.compress s)) s)

(* --- LZSS ------------------------------------------------------------ *)

let test_lzss_empty () = Alcotest.(check string) "empty" "" (Lzss.decompress (Lzss.compress ""))

let test_lzss_literal_only () =
  let s = "abcdefgh" in
  Alcotest.(check string) "short literals" s (Lzss.decompress (Lzss.compress s))

let test_lzss_long_match () =
  let s = "0123456789" ^ String.concat "" (List.init 100 (fun _ -> "0123456789")) in
  let c = Lzss.compress s in
  Alcotest.(check string) "roundtrip" s (Lzss.decompress c);
  Alcotest.(check bool) "long repeats collapse" true (String.length c < String.length s / 4)

let test_lzss_overlapping_match () =
  (* run-length via distance < length *)
  let s = String.make 3000 'x' in
  let c = Lzss.compress s in
  Alcotest.(check string) "overlapping copy" s (Lzss.decompress c);
  Alcotest.(check bool) "runs collapse" true (String.length c < 200)

let test_lzss_window_limit () =
  (* repeat separated by more than 32k must NOT be matched, but still
     round-trips *)
  let g = Prng.create 4L in
  let chunk = String.init 200 (fun _ -> Char.chr (Prng.int g 256)) in
  let filler = String.init 40_000 (fun _ -> Char.chr (Prng.int g 256)) in
  let s = chunk ^ filler ^ chunk in
  Alcotest.(check string) "window-limited roundtrip" s (Lzss.decompress (Lzss.compress s))

let test_lzss_beats_lzw_on_code () =
  let code = mips_code 5L in
  Alcotest.(check bool) "gzip-like < compress-like on code" true (Lzss.ratio code < Lzw.ratio code)

let prop_lzss_roundtrip =
  QCheck.Test.make ~name:"lzss round-trips arbitrary strings" ~count:200
    QCheck.(string_of_size (Gen.int_range 0 3000))
    (fun s -> String.equal (Lzss.decompress (Lzss.compress s)) s)

let prop_lzss_roundtrip_structured =
  QCheck.Test.make ~name:"lzss round-trips structured strings" ~count:100
    QCheck.(list_of_size (Gen.int_range 0 60) (string_of_size (Gen.int_range 0 30)))
    (fun parts ->
      let s = String.concat "" (parts @ parts @ parts) in
      String.equal (Lzss.decompress (Lzss.compress s)) s)

(* --- byte Huffman ---------------------------------------------------- *)

let test_bh_roundtrip () =
  let code = mips_code 6L in
  let z = Byte_huffman.compress code in
  Alcotest.(check string) "roundtrip" code (Byte_huffman.decompress z)

let test_bh_block_isolation () =
  let code = mips_code 7L in
  let z = Byte_huffman.compress code in
  let b = Array.length z.Byte_huffman.blocks - 1 in
  let last = Byte_huffman.decompress_block z b in
  Alcotest.(check string) "last block alone"
    (String.sub code (b * 32) (String.length code - (b * 32)))
    last

let test_bh_ratio_band () =
  (* Kozuch & Wolfe report ~0.73 for byte Huffman on RISC code *)
  let r = Byte_huffman.ratio (Byte_huffman.compress (mips_code 8L)) in
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f in (0.6, 0.85)" r) true (r > 0.6 && r < 0.85)

let test_bh_block_size () =
  let code = mips_code 9L in
  let z = Byte_huffman.compress ~block_size:64 code in
  Alcotest.(check int) "block count" ((String.length code + 63) / 64)
    (Array.length z.Byte_huffman.blocks);
  Alcotest.(check string) "roundtrip" code (Byte_huffman.decompress z)

let test_bh_table_accounting () =
  let z = Byte_huffman.compress (mips_code 10L) in
  Alcotest.(check bool) "table bytes positive" true (Byte_huffman.table_bytes z > 0);
  Alcotest.(check bool) "code bytes positive" true (Byte_huffman.code_bytes z > 0)

let prop_bh_roundtrip =
  QCheck.Test.make ~name:"byte huffman round-trips" ~count:100
    QCheck.(string_of_size (Gen.int_range 1 2000))
    (fun s -> String.equal (Byte_huffman.decompress (Byte_huffman.compress s)) s)

let suite =
  [
    Alcotest.test_case "lzw empty" `Quick test_lzw_empty;
    Alcotest.test_case "lzw single byte" `Quick test_lzw_single_byte;
    Alcotest.test_case "lzw repetitive" `Quick test_lzw_repetitive;
    Alcotest.test_case "lzw KwKwK runs" `Quick test_lzw_kwkwk;
    Alcotest.test_case "lzw table reset" `Slow test_lzw_table_reset;
    Alcotest.test_case "lzw noise expands" `Quick test_lzw_random_does_not_compress;
    Alcotest.test_case "lzw code ratio band" `Quick test_lzw_code_ratio_band;
    QCheck_alcotest.to_alcotest prop_lzw_roundtrip;
    QCheck_alcotest.to_alcotest prop_lzw_roundtrip_small_alphabet;
    Alcotest.test_case "lzss empty" `Quick test_lzss_empty;
    Alcotest.test_case "lzss literals" `Quick test_lzss_literal_only;
    Alcotest.test_case "lzss long match" `Quick test_lzss_long_match;
    Alcotest.test_case "lzss overlapping match" `Quick test_lzss_overlapping_match;
    Alcotest.test_case "lzss window limit" `Quick test_lzss_window_limit;
    Alcotest.test_case "lzss beats lzw on code" `Quick test_lzss_beats_lzw_on_code;
    QCheck_alcotest.to_alcotest prop_lzss_roundtrip;
    QCheck_alcotest.to_alcotest prop_lzss_roundtrip_structured;
    Alcotest.test_case "byte huffman roundtrip" `Quick test_bh_roundtrip;
    Alcotest.test_case "byte huffman block isolation" `Quick test_bh_block_isolation;
    Alcotest.test_case "byte huffman ratio band" `Quick test_bh_ratio_band;
    Alcotest.test_case "byte huffman block size" `Quick test_bh_block_size;
    Alcotest.test_case "byte huffman accounting" `Quick test_bh_table_accounting;
    QCheck_alcotest.to_alcotest prop_bh_roundtrip;
  ]

(* --- CodePack ---------------------------------------------------------- *)

module Codepack = Ccomp_baselines.Codepack

let test_codepack_roundtrip () =
  let code = mips_code 11L in
  let z = Codepack.compress code in
  Alcotest.(check string) "roundtrip" code (Codepack.decompress z)

let test_codepack_block_isolation () =
  let code = mips_code 12L in
  let z = Codepack.compress code in
  for b = Codepack.block_count z - 1 downto 0 do
    let line = Codepack.decompress_block z b in
    Alcotest.(check string)
      (Printf.sprintf "block %d in isolation" b)
      (String.sub code (b * 32) (String.length line))
      line
  done

let test_codepack_ratio_band () =
  (* the real device reported ~0.6 on PowerPC code *)
  let z = Codepack.compress (mips_code 13L) in
  let r = Codepack.ratio z in
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f in (0.45, 0.8)" r) true (r > 0.45 && r < 0.8);
  Alcotest.(check bool) "tables small" true (Codepack.table_bytes z <= 484)

let test_codepack_zero_tag () =
  (* a program of nops: every half is zero, two 2-bit tags per word *)
  let code = String.make 128 '\x00' in
  let z = Codepack.compress code in
  Alcotest.(check string) "nops roundtrip" code (Codepack.decompress z);
  Alcotest.(check bool)
    (Printf.sprintf "nop block is tiny (%d bytes)" (Codepack.code_bytes z))
    true
    (Codepack.code_bytes z <= 4 * Codepack.block_count z)

let test_codepack_escape_path () =
  (* words drawn uniformly: almost everything escapes yet must round-trip *)
  let g = Prng.create 14L in
  let code = String.init 4096 (fun _ -> Char.chr (Prng.int g 256)) in
  let z = Codepack.compress code in
  Alcotest.(check string) "noise roundtrip" code (Codepack.decompress z);
  Alcotest.(check bool) "noise expands a little" true (Codepack.ratio z > 1.0)

let test_codepack_rejects_misaligned () =
  Alcotest.check_raises "odd size"
    (Invalid_argument "Codepack.compress: code size must be a multiple of 4") (fun () ->
      ignore (Codepack.compress "abcdef"))

let codepack_suite =
  [
    Alcotest.test_case "codepack roundtrip" `Quick test_codepack_roundtrip;
    Alcotest.test_case "codepack block isolation" `Quick test_codepack_block_isolation;
    Alcotest.test_case "codepack ratio band" `Quick test_codepack_ratio_band;
    Alcotest.test_case "codepack zero tag" `Quick test_codepack_zero_tag;
    Alcotest.test_case "codepack escape path" `Quick test_codepack_escape_path;
    Alcotest.test_case "codepack misaligned" `Quick test_codepack_rejects_misaligned;
  ]

let suite = suite @ codepack_suite
