(* The parallel (Fig. 5) decoder must be bit-for-bit identical to the
   serial one and must perform exactly 2^n - 1 midpoint evaluations per
   n-bit step. *)

module Coder = Ccomp_arith.Binary_coder
module Nibble = Ccomp_arith.Nibble_decoder
module Samc = Ccomp_core.Samc
module Prng = Ccomp_util.Prng
module P = Ccomp_progen

(* A fixed-probability oracle: prediction depends only on (prefix, width)
   so the encoder can replay the identical sequence. *)
let oracle ~seed ~prefix ~width =
  let h = Int64.of_int ((seed * 1009) + (prefix * 131) + width) in
  1 + (Int64.to_int (Int64.logand (Ccomp_util.Prng.next_int64 (Prng.create h)) 0xfffL) mod (Coder.scale - 1))

let encode_nibbles ~seed nibbles =
  let e = Coder.Encoder.create () in
  List.iter
    (fun nib ->
      for k = 3 downto 0 do
        let width = 3 - k in
        let prefix = nib lsr (k + 1) in
        let bit = (nib lsr k) land 1 in
        Coder.Encoder.encode e ~p0:(oracle ~seed ~prefix ~width) bit
      done)
    nibbles;
  Coder.Encoder.finish e

let test_matches_serial () =
  let g = Prng.create 5L in
  for seed = 1 to 50 do
    let n = 1 + Prng.int g 200 in
    let nibbles = List.init n (fun _ -> Prng.int g 16) in
    let data = encode_nibbles ~seed nibbles in
    (* serial decode *)
    let d = Coder.Decoder.create data in
    let serial =
      List.map
        (fun _ ->
          let v = ref 0 in
          for width = 0 to 3 do
            let bit = Coder.Decoder.decode d ~p0:(oracle ~seed ~prefix:!v ~width) in
            v := (!v lsl 1) lor bit
          done;
          !v)
        nibbles
    in
    Alcotest.(check (list int)) "serial decodes the input" nibbles serial;
    (* parallel decode *)
    let e = Nibble.create data in
    let parallel =
      List.map (fun _ -> Nibble.decode_nibble e ~p0:(fun ~prefix ~width -> oracle ~seed ~prefix ~width)) nibbles
    in
    Alcotest.(check (list int)) "parallel equals serial" serial parallel
  done

let test_midpoint_count () =
  let nibbles = [ 3; 9; 15; 0 ] in
  let data = encode_nibbles ~seed:7 nibbles in
  let e = Nibble.create data in
  List.iter (fun _ -> ignore (Nibble.decode_nibble e ~p0:(fun ~prefix ~width -> oracle ~seed:7 ~prefix ~width))) nibbles;
  (* 15 midpoints per nibble, as in Fig. 5 *)
  Alcotest.(check int) "15 midpoints per nibble" (15 * List.length nibbles)
    (Nibble.midpoint_evaluations e)

let test_partial_steps () =
  (* decode the same 4 bits as one step or as 1+3: same result *)
  let nibbles = [ 11; 6 ] in
  let data = encode_nibbles ~seed:3 nibbles in
  let ora = fun ~prefix ~width -> oracle ~seed:3 ~prefix ~width in
  let e1 = Nibble.create data in
  let whole = List.map (fun _ -> Nibble.decode_nibble e1 ~p0:ora) nibbles in
  let e2 = Nibble.create data in
  let split =
    List.map
      (fun _ ->
        let hi = Nibble.decode_bits e2 ~n:1 ~p0:ora in
        let lo = Nibble.decode_bits e2 ~n:3 ~p0:(fun ~prefix ~width -> ora ~prefix:((hi lsl width) lor prefix) ~width:(width + 1)) in
        (hi lsl 3) lor lo)
      nibbles
  in
  Alcotest.(check (list int)) "split steps agree" whole split;
  (* 1-bit step costs 1 midpoint, 3-bit step costs 7 *)
  Alcotest.(check int) "evaluation count for split" (2 * (1 + 7)) (Nibble.midpoint_evaluations e2)

let test_invalid_n () =
  let e = Nibble.create "" in
  Alcotest.check_raises "n=0" (Invalid_argument "Nibble_decoder.decode_bits: n must be in 1..4")
    (fun () -> ignore (Nibble.decode_bits e ~n:0 ~p0:(fun ~prefix:_ ~width:_ -> 1)));
  Alcotest.check_raises "n=5" (Invalid_argument "Nibble_decoder.decode_bits: n must be in 1..4")
    (fun () -> ignore (Nibble.decode_bits e ~n:5 ~p0:(fun ~prefix:_ ~width:_ -> 1)))

let test_samc_parallel_block_decode () =
  let profile =
    { (P.Profile.find "go") with P.Profile.name = "t"; target_ops = 800; functions = 8 }
  in
  let code = (snd (P.Mips_backend.lower (P.Generator.generate ~seed:9L profile))).P.Layout.code in
  let cfg = Samc.mips_config () in
  let z = Samc.compress cfg code in
  Array.iteri
    (fun b blk ->
      let original_bytes = min 32 (String.length code - (b * 32)) in
      let serial = Samc.decompress_block cfg z.Samc.model ~original_bytes blk in
      let parallel, evals = Samc.decompress_block_parallel cfg z.Samc.model ~original_bytes blk in
      Alcotest.(check string) (Printf.sprintf "block %d identical" b) serial parallel;
      (* 8 bits per stream = two 4-bit steps of 15 midpoints; 4 streams;
         8 words per full block *)
      if original_bytes = 32 then
        Alcotest.(check int) "hardware work per block" (8 * 4 * 2 * 15) evals)
    z.Samc.blocks

let test_samc_parallel_with_odd_streams () =
  (* 8 streams of 4 bits: one step per stream *)
  let profile =
    { (P.Profile.find "swim") with P.Profile.name = "t"; target_ops = 500; functions = 6 }
  in
  let code = (snd (P.Mips_backend.lower (P.Generator.generate ~seed:10L profile))).P.Layout.code in
  let streams = Ccomp_core.Stream_split.consecutive ~word_bits:32 ~streams:8 in
  let cfg = Samc.mips_config ~streams () in
  let z = Samc.compress cfg code in
  let b = 2 in
  let serial = Samc.decompress_block cfg z.Samc.model ~original_bytes:32 z.Samc.blocks.(b) in
  let parallel, _ = Samc.decompress_block_parallel cfg z.Samc.model ~original_bytes:32 z.Samc.blocks.(b) in
  Alcotest.(check string) "4-bit streams identical" serial parallel

let suite =
  [
    Alcotest.test_case "parallel equals serial" `Quick test_matches_serial;
    Alcotest.test_case "15 midpoints per nibble" `Quick test_midpoint_count;
    Alcotest.test_case "partial steps" `Quick test_partial_steps;
    Alcotest.test_case "invalid widths rejected" `Quick test_invalid_n;
    Alcotest.test_case "samc parallel block decode" `Quick test_samc_parallel_block_decode;
    Alcotest.test_case "samc parallel odd streams" `Quick test_samc_parallel_with_odd_streams;
  ]
