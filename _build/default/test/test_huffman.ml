module Huffman = Ccomp_huffman.Huffman
module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

let freq_of_counts counts =
  let f = Freq.create (Array.length counts) in
  Array.iteri (fun sym c -> if c > 0 then Freq.add_many f sym c) counts;
  f

let test_empty_rejected () =
  let f = Freq.create 4 in
  Alcotest.check_raises "no symbols" (Invalid_argument "Huffman.build: empty alphabet") (fun () ->
      ignore (Huffman.build f))

let test_single_symbol () =
  let code = Huffman.build (freq_of_counts [| 0; 7; 0 |]) in
  Alcotest.(check int) "single symbol gets 1 bit" 1 (Huffman.code_length code 1);
  Alcotest.(check int) "absent symbol has no code" 0 (Huffman.code_length code 0);
  let w = Bit_writer.create () in
  Huffman.encode_symbol code w 1;
  Huffman.encode_symbol code w 1;
  let r = Bit_reader.create (Bit_writer.contents w) in
  Alcotest.(check int) "decode 1st" 1 (Huffman.decode_symbol code r);
  Alcotest.(check int) "decode 2nd" 1 (Huffman.decode_symbol code r)

let test_two_symbols () =
  let code = Huffman.build (freq_of_counts [| 3; 1 |]) in
  Alcotest.(check int) "both 1 bit" 1 (Huffman.code_length code 0);
  Alcotest.(check int) "both 1 bit" 1 (Huffman.code_length code 1)

let test_skewed_lengths () =
  (* counts 1,1,2,4: optimal lengths 3,3,2,1 *)
  let code = Huffman.build (freq_of_counts [| 1; 1; 2; 4 |]) in
  Alcotest.(check int) "rare symbol long" 3 (Huffman.code_length code 0);
  Alcotest.(check int) "rare symbol long" 3 (Huffman.code_length code 1);
  Alcotest.(check int) "mid" 2 (Huffman.code_length code 2);
  Alcotest.(check int) "common short" 1 (Huffman.code_length code 3)

let test_optimality_against_entropy () =
  (* average length within [H, H+1) for a random-ish distribution *)
  let counts = [| 50; 20; 12; 8; 5; 3; 1; 1 |] in
  let f = freq_of_counts counts in
  let code = Huffman.build f in
  let avg = float_of_int (Huffman.encoded_bits code f) /. float_of_int (Freq.total f) in
  let h = Freq.entropy f in
  Alcotest.(check bool) "avg >= entropy" true (avg >= h -. 1e-9);
  Alcotest.(check bool) "avg < entropy + 1" true (avg < h +. 1.0)

let test_kraft_equality () =
  (* a complete Huffman code satisfies the Kraft sum exactly *)
  let code = Huffman.build (freq_of_counts [| 9; 5; 3; 2; 1; 1 |]) in
  let sum =
    Array.fold_left
      (fun acc l -> if l > 0 then acc +. (1.0 /. float_of_int (1 lsl l)) else acc)
      0.0 (Huffman.lengths code)
  in
  Alcotest.(check bool) "kraft sum = 1" true (Float.abs (sum -. 1.0) < 1e-9)

let test_prefix_freedom () =
  let code = Huffman.build (freq_of_counts [| 7; 5; 4; 3; 2; 1 |]) in
  let entries =
    List.filter_map
      (fun sym ->
        let l = Huffman.code_length code sym in
        if l = 0 then None else Some (Huffman.codeword code sym, l))
      (List.init 6 Fun.id)
  in
  List.iteri
    (fun i (c1, l1) ->
      List.iteri
        (fun j (c2, l2) ->
          if i <> j && l1 <= l2 then
            Alcotest.(check bool)
              (Printf.sprintf "code %d not a prefix of %d" i j)
              false
              (c2 lsr (l2 - l1) = c1))
        entries)
    entries

let test_max_length_bound () =
  (* fibonacci-like counts force long codes; max_length must cap them *)
  let counts = [| 1; 1; 2; 3; 5; 8; 13; 21; 34; 55; 89; 144; 233; 377; 610; 987 |] in
  let code = Huffman.build ~max_length:8 (freq_of_counts counts) in
  Array.iter
    (fun l -> Alcotest.(check bool) "length within bound" true (l <= 8))
    (Huffman.lengths code)

let test_of_lengths_roundtrip () =
  let code = Huffman.build (freq_of_counts [| 4; 3; 2; 1; 1 |]) in
  let rebuilt = Huffman.of_lengths (Huffman.lengths code) in
  Alcotest.(check (array int)) "same lengths" (Huffman.lengths code) (Huffman.lengths rebuilt);
  List.iter
    (fun sym ->
      Alcotest.(check int)
        (Printf.sprintf "same canonical codeword %d" sym)
        (Huffman.codeword code sym) (Huffman.codeword rebuilt sym))
    [ 0; 1; 2; 3; 4 ]

let test_of_lengths_rejects_overfull () =
  Alcotest.check_raises "kraft violation"
    (Invalid_argument "Huffman.of_lengths: not a prefix code") (fun () ->
      ignore (Huffman.of_lengths [| 1; 1; 1 |]))

let test_serialization () =
  let code = Huffman.build (freq_of_counts [| 10; 6; 3; 1 |]) in
  let s = Huffman.serialize_lengths code in
  let code', pos = Huffman.deserialize_lengths s ~pos:0 in
  Alcotest.(check int) "whole string consumed" (String.length s) pos;
  Alcotest.(check (array int)) "lengths preserved" (Huffman.lengths code) (Huffman.lengths code')

let prop_roundtrip =
  QCheck.Test.make ~name:"huffman round-trips any message" ~count:150
    QCheck.(list_of_size (Gen.int_range 1 500) (int_bound 40))
    (fun syms ->
      let f = Freq.create 41 in
      List.iter (Freq.add f) syms;
      let code = Huffman.build f in
      let w = Bit_writer.create () in
      List.iter (Huffman.encode_symbol code w) syms;
      let r = Bit_reader.create (Bit_writer.contents w) in
      List.for_all (fun sym -> Huffman.decode_symbol code r = sym) syms)

let prop_encoded_bits_matches =
  QCheck.Test.make ~name:"encoded_bits equals actual emitted bits" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 300) (int_bound 20))
    (fun syms ->
      let f = Freq.create 21 in
      List.iter (Freq.add f) syms;
      let code = Huffman.build f in
      let w = Bit_writer.create () in
      List.iter (Huffman.encode_symbol code w) syms;
      Bit_writer.bit_length w = Huffman.encoded_bits code f)

let suite =
  [
    Alcotest.test_case "empty alphabet rejected" `Quick test_empty_rejected;
    Alcotest.test_case "single symbol" `Quick test_single_symbol;
    Alcotest.test_case "two symbols" `Quick test_two_symbols;
    Alcotest.test_case "skewed lengths optimal" `Quick test_skewed_lengths;
    Alcotest.test_case "near-entropy average length" `Quick test_optimality_against_entropy;
    Alcotest.test_case "kraft equality" `Quick test_kraft_equality;
    Alcotest.test_case "prefix freedom" `Quick test_prefix_freedom;
    Alcotest.test_case "max_length bound" `Quick test_max_length_bound;
    Alcotest.test_case "of_lengths roundtrip" `Quick test_of_lengths_roundtrip;
    Alcotest.test_case "of_lengths rejects overfull" `Quick test_of_lengths_rejects_overfull;
    Alcotest.test_case "length-table serialization" `Quick test_serialization;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_encoded_bits_matches;
  ]

let test_sparse_alphabet_rle () =
  (* two used symbols separated by > 256 zero lengths exercises the RLE
     run cap in the length-table serialisation *)
  let f = Freq.create 1200 in
  Freq.add_many f 3 10;
  Freq.add_many f 900 5;
  let code = Huffman.build f in
  let s = Huffman.serialize_lengths code in
  Alcotest.(check bool)
    (Printf.sprintf "sparse table is tiny (%d bytes)" (String.length s))
    true
    (String.length s < 24);
  let code', pos = Huffman.deserialize_lengths s ~pos:0 in
  Alcotest.(check int) "consumed" (String.length s) pos;
  Alcotest.(check (array int)) "lengths preserved" (Huffman.lengths code) (Huffman.lengths code')

let test_deserialize_rejects_truncation () =
  let code = Huffman.build (freq_of_counts [| 3; 2; 1 |]) in
  let s = Huffman.serialize_lengths code in
  Alcotest.check_raises "truncated table"
    (Invalid_argument "Huffman.deserialize_lengths: truncated") (fun () ->
      ignore (Huffman.deserialize_lengths (String.sub s 0 (String.length s - 1)) ~pos:0))

let extra_suite =
  [
    Alcotest.test_case "sparse alphabet RLE" `Quick test_sparse_alphabet_rle;
    Alcotest.test_case "truncated table rejected" `Quick test_deserialize_rejects_truncation;
  ]

let suite = suite @ extra_suite
