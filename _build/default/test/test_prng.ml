module Prng = Ccomp_util.Prng

let test_determinism () =
  let a = Prng.create 42L and b = Prng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1L and b = Prng.create 2L in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.next_int64 a <> Prng.next_int64 b then differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_copy_independence () =
  let a = Prng.create 5L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b);
  ignore (Prng.next_int64 a);
  (* advancing one does not affect the other *)
  let a' = Prng.next_int64 a and b' = Prng.next_int64 b in
  Alcotest.(check bool) "streams diverge after unequal advances" true (a' <> b')

let test_int_bounds () =
  let g = Prng.create 7L in
  for _ = 1 to 10000 do
    let v = Prng.int g 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_int_uniformity () =
  let g = Prng.create 11L in
  let counts = Array.make 8 0 in
  let n = 80_000 in
  for _ = 1 to n do
    let v = Prng.int g 8 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 8 in
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d within 10%%" i)
        true
        (abs (c - expected) < expected / 10))
    counts

let test_float_range () =
  let g = Prng.create 13L in
  for _ = 1 to 10000 do
    let v = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_bits () =
  let g = Prng.create 17L in
  for w = 0 to 30 do
    let v = Prng.bits g w in
    Alcotest.(check bool) (Printf.sprintf "bits %d" w) true (v >= 0 && v < 1 lsl w)
  done

let test_weighted () =
  let g = Prng.create 19L in
  let zero = ref 0 and one = ref 0 in
  for _ = 1 to 10000 do
    match Prng.weighted g [| (9, `A); (1, `B) |] with `A -> incr zero | `B -> incr one
  done;
  Alcotest.(check bool) "9:1 split roughly honored" true (!zero > 8 * !one / 2)

let test_shuffle_permutation () =
  let g = Prng.create 23L in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

let test_geometric_mean () =
  let g = Prng.create 29L in
  let n = 50_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Prng.geometric g 0.5
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* mean of geometric(0.5) failures is 1.0 *)
  Alcotest.(check bool) "mean near 1.0" true (Float.abs (mean -. 1.0) < 0.05)

let test_split_independence () =
  let g = Prng.create 31L in
  let g1 = Prng.split g in
  let g2 = Prng.split g in
  Alcotest.(check bool) "split streams differ" true (Prng.next_int64 g1 <> Prng.next_int64 g2)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "copy independence" `Quick test_copy_independence;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "bits widths" `Quick test_bits;
    Alcotest.test_case "weighted choice" `Quick test_weighted;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
    Alcotest.test_case "split independence" `Quick test_split_independence;
  ]
