module P = Ccomp_progen
module Mips = Ccomp_isa.Mips
module X86 = Ccomp_isa.X86

let small_profile =
  {
    (P.Profile.find "compress") with
    P.Profile.name = "tiny";
    target_ops = 400;
    functions = 6;
  }

let test_validate_all_profiles () =
  Array.iter
    (fun profile ->
      let prog = P.Generator.generate ~scale:0.1 ~seed:1L profile in
      match P.Ir.validate prog with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" profile.P.Profile.name e)
    P.Profile.spec95

let test_determinism () =
  let a = P.Generator.generate ~seed:5L small_profile in
  let b = P.Generator.generate ~seed:5L small_profile in
  let code p = (snd (P.Mips_backend.lower p)).P.Layout.code in
  Alcotest.(check string) "same seed, same code" (code a) (code b)

let test_seed_changes_output () =
  let a = P.Generator.generate ~seed:5L small_profile in
  let b = P.Generator.generate ~seed:6L small_profile in
  let code p = (snd (P.Mips_backend.lower p)).P.Layout.code in
  Alcotest.(check bool) "different seeds differ" false (String.equal (code a) (code b))

let test_scale () =
  let small = P.Generator.generate ~scale:0.5 ~seed:2L (P.Profile.find "go") in
  let large = P.Generator.generate ~scale:2.0 ~seed:2L (P.Profile.find "go") in
  Alcotest.(check bool) "scale grows programs" true (P.Ir.op_count large > 2 * P.Ir.op_count small)

let test_op_count_near_target () =
  let profile = P.Profile.find "perl" in
  let prog = P.Generator.generate ~seed:3L profile in
  let n = P.Ir.op_count prog in
  let t = profile.P.Profile.target_ops in
  Alcotest.(check bool)
    (Printf.sprintf "op count %d within 2x of target %d" n t)
    true
    (n > t / 2 && n < t * 2)

let test_mips_lowering_decodes () =
  let prog = P.Generator.generate ~seed:4L small_profile in
  let instrs, layout = P.Mips_backend.lower prog in
  let code = layout.P.Layout.code in
  Alcotest.(check int) "4 bytes per instruction" (4 * List.length instrs) (String.length code);
  Array.iteri
    (fun i d ->
      if Option.is_none d then Alcotest.failf "mips word %d does not decode" i)
    (Mips.decode_program code)

let test_x86_lowering_decodes () =
  let prog = P.Generator.generate ~seed:4L small_profile in
  let instrs, layout = P.X86_backend.lower prog in
  match X86.decode_program layout.P.Layout.code with
  | Some decoded -> Alcotest.(check int) "instruction count" (List.length instrs) (List.length decoded)
  | None -> Alcotest.fail "x86 image does not decode"

let test_layout_addresses_monotonic () =
  let prog = P.Generator.generate ~seed:8L small_profile in
  let check (layout : P.Layout.t) =
    let last = ref (-1) in
    Array.iter
      (Array.iter
         (List.iter (function
           | P.Layout.Fetch addrs ->
             Array.iter
               (fun a ->
                 Alcotest.(check bool) "addresses strictly increase" true (a > !last);
                 last := a)
               addrs
           | P.Layout.Call _ -> ())))
      layout.P.Layout.blocks
  in
  check (snd (P.Mips_backend.lower prog));
  check (snd (P.X86_backend.lower prog))

let test_entry_addrs_within_code () =
  let prog = P.Generator.generate ~seed:8L small_profile in
  let layout = snd (P.X86_backend.lower prog) in
  Array.iter
    (fun a ->
      Alcotest.(check bool) "entry within image" true (a >= 0 && a < P.Layout.code_size layout))
    layout.P.Layout.func_entry_addr

let test_trace_properties () =
  let prog = P.Generator.generate ~seed:9L small_profile in
  let layout = snd (P.Mips_backend.lower prog) in
  let trace = P.Trace.generate prog layout ~seed:10L ~length:5000 in
  Alcotest.(check int) "requested length" 5000 (Array.length trace);
  Array.iter
    (fun a ->
      Alcotest.(check bool) "address in image" true (a >= 0 && a < P.Layout.code_size layout);
      Alcotest.(check int) "word aligned" 0 (a mod 4))
    trace;
  (* the trace must start at the entry function *)
  Alcotest.(check int) "starts at entry" layout.P.Layout.func_entry_addr.(prog.P.Ir.entry) trace.(0)

let test_trace_determinism () =
  let prog = P.Generator.generate ~seed:9L small_profile in
  let layout = snd (P.Mips_backend.lower prog) in
  let t1 = P.Trace.generate prog layout ~seed:10L ~length:1000 in
  let t2 = P.Trace.generate prog layout ~seed:10L ~length:1000 in
  Alcotest.(check bool) "deterministic" true (t1 = t2)

let test_trace_exhibits_locality () =
  (* loop-heavy profiles revisit addresses: distinct addresses must be far
     fewer than fetches *)
  let prog = P.Generator.generate ~seed:9L (P.Profile.find "swim") in
  let layout = snd (P.Mips_backend.lower prog) in
  let trace = P.Trace.generate prog layout ~seed:11L ~length:20000 in
  let distinct = Hashtbl.create 1024 in
  Array.iter (fun a -> Hashtbl.replace distinct a ()) trace;
  Alcotest.(check bool) "locality" true (Hashtbl.length distinct * 4 < Array.length trace)

let test_profiles_have_distinct_sizes () =
  let size name =
    let prog = P.Generator.generate ~seed:1L (P.Profile.find name) in
    P.Ir.op_count prog
  in
  Alcotest.(check bool) "gcc much larger than compress" true (size "gcc" > 5 * size "compress")

let test_validate_catches_bad_programs () =
  let bad =
    {
      P.Ir.funcs =
        [|
          {
            P.Ir.blocks = [| { P.Ir.body = []; term = P.Ir.Goto 5 } |];
            locals = 4;
            frame_slots = 1;
            saves = 0;
          };
        |];
      entry = 0;
    }
  in
  (match P.Ir.validate bad with
  | Ok () -> Alcotest.fail "goto out of range must be rejected"
  | Error _ -> ());
  let bad_entry = { bad with P.Ir.entry = 3 } in
  match P.Ir.validate bad_entry with
  | Ok () -> Alcotest.fail "bad entry must be rejected"
  | Error _ -> ()

let suite =
  [
    Alcotest.test_case "all profiles validate" `Quick test_validate_all_profiles;
    Alcotest.test_case "generation deterministic" `Quick test_determinism;
    Alcotest.test_case "seed changes output" `Quick test_seed_changes_output;
    Alcotest.test_case "scale parameter" `Quick test_scale;
    Alcotest.test_case "op count near target" `Quick test_op_count_near_target;
    Alcotest.test_case "mips lowering decodes" `Quick test_mips_lowering_decodes;
    Alcotest.test_case "x86 lowering decodes" `Quick test_x86_lowering_decodes;
    Alcotest.test_case "layout addresses monotonic" `Quick test_layout_addresses_monotonic;
    Alcotest.test_case "entry addresses in image" `Quick test_entry_addrs_within_code;
    Alcotest.test_case "trace properties" `Quick test_trace_properties;
    Alcotest.test_case "trace determinism" `Quick test_trace_determinism;
    Alcotest.test_case "trace locality" `Quick test_trace_exhibits_locality;
    Alcotest.test_case "profile size ordering" `Quick test_profiles_have_distinct_sizes;
    Alcotest.test_case "validate rejects bad IR" `Quick test_validate_catches_bad_programs;
  ]

let test_embedded_profiles () =
  Array.iter
    (fun (profile : P.Profile.t) ->
      let prog = P.Generator.generate ~seed:2L profile in
      (match P.Ir.validate prog with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" profile.P.Profile.name e);
      let code = (snd (P.Mips_backend.lower prog)).P.Layout.code in
      Alcotest.(check bool)
        (profile.P.Profile.name ^ " is firmware-sized")
        true
        (String.length code > 2000 && String.length code < 80_000))
    P.Profile.embedded;
  (* both suites reachable through find *)
  Alcotest.(check string) "find embedded" "rtos" (P.Profile.find "rtos").P.Profile.name;
  Alcotest.(check int) "names covers both suites" 24 (List.length (P.Profile.names ()))

let prop_all_seeds_valid =
  QCheck.Test.make ~name:"generator output always validates and lowers" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let prog = P.Generator.generate ~scale:0.2 ~seed:(Int64.of_int seed) (P.Profile.find "perl") in
      (match P.Ir.validate prog with Ok () -> () | Error e -> failwith e);
      let mcode = (snd (P.Mips_backend.lower prog)).P.Layout.code in
      let xcode = (snd (P.X86_backend.lower prog)).P.Layout.code in
      Array.for_all Option.is_some (Mips.decode_program mcode)
      && Option.is_some (X86.decode_program xcode))

let prop_suite =
  [
    Alcotest.test_case "embedded profiles" `Quick test_embedded_profiles;
    QCheck_alcotest.to_alcotest prop_all_seeds_valid;
  ]

let suite = suite @ prop_suite
