module Mips = Ccomp_isa.Mips
module Asm = Ccomp_isa.Mips_asm
module Prng = Ccomp_util.Prng

let spec = Mips.spec_of_mnemonic

let test_parse_examples () =
  let check text expected_word =
    match Asm.parse_instruction text with
    | Ok i -> Alcotest.(check int) text expected_word (Mips.encode i)
    | Error e -> Alcotest.failf "%s: %s" text e
  in
  check "addu $3, $1, $2" 0x00221821;
  check "addiu $29, $29, -32" 0x27bdffe0;
  check "lw $31, 28($29)" 0x8fbf001c;
  check "jr $31" 0x03e00008;
  check "sll $2, $3, 4" 0x00031100;
  check "jal 0x100" 0x0c000100;
  check "bgez $4, 8" 0x04810008;
  check "syscall" 0x0000000c;
  check "lui $2, 0x1234" 0x3c021234

let test_parse_rejects () =
  let bad text =
    match Asm.parse_instruction text with
    | Ok _ -> Alcotest.failf "%S should not parse" text
    | Error _ -> ()
  in
  bad "frobnicate $1, $2";
  bad "addu $3, $1";
  bad "addu $3, $1, 7";
  bad "lw $31, 28";
  bad "jr $32";
  bad "addiu $1, $2, fish";
  bad "lw $1, 4($2";
  bad ""

let test_roundtrip_all_specs () =
  let g = Prng.create 31L in
  Array.iter
    (fun sp ->
      for _ = 1 to 30 do
        let regs = List.init (Mips.reg_arity sp) (fun _ -> Prng.int g 32) in
        let imm = if Mips.has_immediate sp then Some (Prng.int g 65536) else None in
        let limm = if Mips.has_long_immediate sp then Some (Prng.int g (1 lsl 26)) else None in
        let i = Mips.reassemble sp ~regs ~imm ~limm in
        match Asm.parse_instruction (Mips.to_string i) with
        | Ok i' ->
          Alcotest.(check int)
            (Printf.sprintf "%s reparses" (Mips.to_string i))
            (Mips.encode i) (Mips.encode i')
        | Error e -> Alcotest.failf "%s: %s" (Mips.to_string i) e
      done)
    Mips.specs

let test_program_with_comments () =
  let text =
    "# function prologue\n\
     addiu $29, $29, -32   # grow the frame\n\
     sw $31, 28($29)\n\
     \n\
     jr $31 # return\n"
  in
  match Asm.parse_program text with
  | Error e -> Alcotest.fail e
  | Ok instrs ->
    Alcotest.(check int) "3 instructions" 3 (List.length instrs);
    Alcotest.(check string) "first" "addiu $29, $29, -32"
      (Mips.to_string (List.nth instrs 0))

let test_program_error_line () =
  match Asm.parse_program "addu $3, $1, $2\nbroken line here\n" with
  | Ok _ -> Alcotest.fail "must fail"
  | Error e ->
    Alcotest.(check bool) "mentions line 2" true
      (String.length e >= 7 && String.sub e 0 7 = "line 2:")

let test_print_program () =
  let instrs = [ Mips.make (spec "jr") ~rs:31 (); Mips.make (spec "addu") ~rs:1 ~rt:2 ~rd:3 () ] in
  let listing = Asm.print_program instrs in
  Alcotest.(check bool) "has addresses" true (String.sub listing 0 8 = "00000000");
  let bare = Asm.print_program ~addresses:false instrs in
  Alcotest.(check string) "bare listing" "jr $31\naddu $3, $1, $2\n" bare;
  (* a listing reparses to the same program *)
  match Asm.parse_program bare with
  | Ok back ->
    List.iter2
      (fun a b -> Alcotest.(check int) "same" (Mips.encode a) (Mips.encode b))
      instrs back
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "parse examples" `Quick test_parse_examples;
    Alcotest.test_case "parse rejects garbage" `Quick test_parse_rejects;
    Alcotest.test_case "roundtrip all specs" `Quick test_roundtrip_all_specs;
    Alcotest.test_case "program with comments" `Quick test_program_with_comments;
    Alcotest.test_case "program error line" `Quick test_program_error_line;
    Alcotest.test_case "print program" `Quick test_print_program;
  ]
