module Ppm = Ccomp_baselines.Ppm
module Rc = Ccomp_arith.Range_coder
module Prng = Ccomp_util.Prng
module P = Ccomp_progen

(* --- range coder ------------------------------------------------------ *)

let test_range_coder_roundtrip () =
  let g = Prng.create 1L in
  for _ = 1 to 100 do
    let n = 1 + Prng.int g 500 in
    (* random cumulative tables of 4 symbols *)
    let freqs = Array.init 4 (fun _ -> 1 + Prng.int g 40) in
    let total = Array.fold_left ( + ) 0 freqs in
    let cum sym = Array.fold_left ( + ) 0 (Array.sub freqs 0 sym) in
    let syms = Array.init n (fun _ -> Prng.int g 4) in
    let e = Rc.Encoder.create () in
    Array.iter (fun s -> Rc.Encoder.encode e ~cum_low:(cum s) ~freq:freqs.(s) ~total) syms;
    let data = Rc.Encoder.finish e in
    let d = Rc.Decoder.create data in
    Array.iter
      (fun s ->
        let target = Rc.Decoder.decode_target d ~total in
        let rec find sym = if target < cum sym + freqs.(sym) then sym else find (sym + 1) in
        let s' = find 0 in
        if s <> s' then Alcotest.failf "decoded %d, expected %d" s' s;
        Rc.Decoder.decode_update d ~cum_low:(cum s) ~freq:freqs.(s) ~total)
      syms
  done

let test_range_coder_skew_efficiency () =
  (* symbol with p=255/256 must cost about 0.0056 bits *)
  let e = Rc.Encoder.create () in
  for _ = 1 to 50_000 do
    Rc.Encoder.encode e ~cum_low:0 ~freq:255 ~total:256
  done;
  let data = Rc.Encoder.finish e in
  Alcotest.(check bool)
    (Printf.sprintf "skewed stream tiny (%d bytes)" (String.length data))
    true
    (String.length data < 80)

let test_range_coder_rejects_bad_freqs () =
  let e = Rc.Encoder.create () in
  Alcotest.check_raises "zero freq" (Invalid_argument "Range_coder.encode: bad frequencies")
    (fun () -> Rc.Encoder.encode e ~cum_low:0 ~freq:0 ~total:4);
  Alcotest.check_raises "overflowing cum" (Invalid_argument "Range_coder.encode: bad frequencies")
    (fun () -> Rc.Encoder.encode e ~cum_low:3 ~freq:2 ~total:4)

(* --- PPM ---------------------------------------------------------------- *)

let test_ppm_empty () = Alcotest.(check string) "empty" "" (Ppm.decompress (Ppm.compress ""))

let test_ppm_simple () =
  let s = "abracadabra abracadabra abracadabra" in
  Alcotest.(check string) "roundtrip" s (Ppm.decompress (Ppm.compress s))

let test_ppm_orders () =
  let s = String.concat "" (List.init 60 (fun i -> Printf.sprintf "line %d of text;" (i mod 7))) in
  List.iter
    (fun order ->
      Alcotest.(check string)
        (Printf.sprintf "order %d roundtrip" order)
        s
        (Ppm.decompress ~order (Ppm.compress ~order s)))
    [ 0; 1; 2; 3 ]

let test_ppm_higher_order_helps () =
  let s = String.concat "" (List.init 400 (fun i -> Printf.sprintf "token%d " (i mod 13))) in
  let r0 = Ppm.ratio ~order:0 s and r2 = Ppm.ratio ~order:2 s in
  Alcotest.(check bool) (Printf.sprintf "order2 %.3f < order0 %.3f" r2 r0) true (r2 < r0)

let mips_code seed =
  let profile =
    { (P.Profile.find "go") with P.Profile.name = "t"; target_ops = 900; functions = 10 }
  in
  (snd (P.Mips_backend.lower (P.Generator.generate ~seed profile))).P.Layout.code

let test_ppm_beats_gzip_on_code () =
  (* the paper's §1 premise: finite-context models compress best *)
  let code = mips_code 2L in
  let ppm = Ppm.ratio code in
  let gzip = Ccomp_baselines.Lzss.ratio code in
  Alcotest.(check bool) (Printf.sprintf "ppm %.3f < gzip %.3f" ppm gzip) true (ppm < gzip);
  Alcotest.(check string) "roundtrip on code" code (Ppm.decompress (Ppm.compress code))

let test_ppm_memory_report () =
  let code = mips_code 3L in
  let m = Ppm.model_memory code in
  Alcotest.(check bool) "contexts allocated" true (m.Ppm.contexts > 100);
  Alcotest.(check bool) "nodes counted" true (m.Ppm.nodes >= m.Ppm.contexts);
  (* §1's objection: model memory is large — here comparable to the input *)
  Alcotest.(check bool) "memory substantial" true (m.Ppm.approx_bytes > String.length code / 4)

let prop_ppm_roundtrip =
  QCheck.Test.make ~name:"ppm round-trips arbitrary strings" ~count:60
    QCheck.(string_of_size (Gen.int_range 0 1500))
    (fun s -> String.equal (Ppm.decompress (Ppm.compress s)) s)

let prop_ppm_roundtrip_low_entropy =
  QCheck.Test.make ~name:"ppm round-trips low-entropy strings" ~count:60
    QCheck.(string_gen_of_size (Gen.int_range 0 1500) (Gen.map (fun n -> Char.chr (97 + n)) (Gen.int_bound 3)))
    (fun s -> String.equal (Ppm.decompress (Ppm.compress s)) s)

let suite =
  [
    Alcotest.test_case "range coder roundtrip" `Quick test_range_coder_roundtrip;
    Alcotest.test_case "range coder skew" `Quick test_range_coder_skew_efficiency;
    Alcotest.test_case "range coder bad freqs" `Quick test_range_coder_rejects_bad_freqs;
    Alcotest.test_case "ppm empty" `Quick test_ppm_empty;
    Alcotest.test_case "ppm simple" `Quick test_ppm_simple;
    Alcotest.test_case "ppm all orders" `Quick test_ppm_orders;
    Alcotest.test_case "ppm higher order helps" `Quick test_ppm_higher_order_helps;
    Alcotest.test_case "ppm beats gzip on code" `Quick test_ppm_beats_gzip_on_code;
    Alcotest.test_case "ppm memory report" `Quick test_ppm_memory_report;
    QCheck_alcotest.to_alcotest prop_ppm_roundtrip;
    QCheck_alcotest.to_alcotest prop_ppm_roundtrip_low_entropy;
  ]

(* --- DMC --------------------------------------------------------------- *)

module Dmc = Ccomp_baselines.Dmc

let test_dmc_empty () = Alcotest.(check string) "empty" "" (Dmc.decompress (Dmc.compress ""))

let test_dmc_simple () =
  let s = "the quick brown fox jumps over the lazy dog, twice over; " in
  let s = s ^ s ^ s in
  Alcotest.(check string) "roundtrip" s (Dmc.decompress (Dmc.compress s))

let test_dmc_grows_states () =
  let code = mips_code 4L in
  let states = Dmc.model_states code in
  Alcotest.(check bool) (Printf.sprintf "machine grew (%d states)" states) true (states > 1000)

let test_dmc_state_budget () =
  let code = mips_code 5L in
  let states = Dmc.model_states ~max_states:4096 code in
  Alcotest.(check bool) "budget respected" true (states <= 4096);
  Alcotest.(check string) "bounded machine roundtrips" code
    (Dmc.decompress ~max_states:4096 (Dmc.compress ~max_states:4096 code))

let test_dmc_compresses_code () =
  let code = mips_code 6L in
  let r = Dmc.ratio code in
  Alcotest.(check bool) (Printf.sprintf "ratio %.3f well below 1" r) true (r < 0.75);
  Alcotest.(check string) "roundtrip on code" code (Dmc.decompress (Dmc.compress code))

let prop_dmc_roundtrip =
  QCheck.Test.make ~name:"dmc round-trips arbitrary strings" ~count:50
    QCheck.(string_of_size (Gen.int_range 0 1200))
    (fun s -> String.equal (Dmc.decompress (Dmc.compress s)) s)

let dmc_suite =
  [
    Alcotest.test_case "dmc empty" `Quick test_dmc_empty;
    Alcotest.test_case "dmc simple" `Quick test_dmc_simple;
    Alcotest.test_case "dmc grows states" `Quick test_dmc_grows_states;
    Alcotest.test_case "dmc state budget" `Quick test_dmc_state_budget;
    Alcotest.test_case "dmc compresses code" `Quick test_dmc_compresses_code;
    QCheck_alcotest.to_alcotest prop_dmc_roundtrip;
  ]

let suite = suite @ dmc_suite
