module Heap = Ccomp_util.Heap

let int_heap () = Heap.create ~cmp:compare

let test_empty () =
  let h = int_heap () in
  Alcotest.(check bool) "fresh heap empty" true (Heap.is_empty h);
  Alcotest.(check int) "length 0" 0 (Heap.length h);
  Alcotest.check_raises "pop empty" Not_found (fun () -> ignore (Heap.pop h));
  Alcotest.check_raises "peek empty" Not_found (fun () -> ignore (Heap.peek h))

let test_ordering () =
  let h = Heap.of_list ~cmp:compare [ 5; 3; 8; 1; 9; 2; 7 ] in
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 5; 7; 8; 9 ] (Heap.to_sorted_list h)

let test_duplicates () =
  let h = Heap.of_list ~cmp:compare [ 2; 2; 1; 1; 3 ] in
  Alcotest.(check (list int)) "duplicates kept" [ 1; 1; 2; 2; 3 ] (Heap.to_sorted_list h)

let test_peek_does_not_remove () =
  let h = Heap.of_list ~cmp:compare [ 4; 2 ] in
  Alcotest.(check int) "peek min" 2 (Heap.peek h);
  Alcotest.(check int) "length unchanged" 2 (Heap.length h);
  Alcotest.(check int) "pop same" 2 (Heap.pop h)

let test_interleaved () =
  let h = int_heap () in
  Heap.push h 10;
  Heap.push h 5;
  Alcotest.(check int) "min so far" 5 (Heap.pop h);
  Heap.push h 1;
  Heap.push h 7;
  Alcotest.(check int) "new min" 1 (Heap.pop h);
  Alcotest.(check int) "then" 7 (Heap.pop h);
  Alcotest.(check int) "then" 10 (Heap.pop h);
  Alcotest.(check bool) "empty again" true (Heap.is_empty h)

let test_custom_order () =
  let h = Heap.of_list ~cmp:(fun a b -> compare b a) [ 1; 5; 3 ] in
  Alcotest.(check (list int)) "max-heap drain" [ 5; 3; 1 ] (Heap.to_sorted_list h)

let prop_sorted_drain =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      Heap.to_sorted_list h = List.sort compare xs)

let suite =
  [
    Alcotest.test_case "empty heap" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "duplicates" `Quick test_duplicates;
    Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
    Alcotest.test_case "interleaved push/pop" `Quick test_interleaved;
    Alcotest.test_case "custom comparator" `Quick test_custom_order;
    QCheck_alcotest.to_alcotest prop_sorted_drain;
  ]
