module X86 = Ccomp_isa.X86
module Prng = Ccomp_util.Prng

let hex s = String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (String.length s) (String.get s))))

let check_bytes name expected instr = Alcotest.(check string) name expected (hex (X86.encode instr))

let test_extended_encodings () =
  check_bytes "movzx eax, byte [ebx]" "0fb603" (X86.movx_load ~signed:false ~wide:false ~dst:0 ~base:3 ~disp:0);
  check_bytes "movsx ecx, word [esi+4]" "0fbf4e04" (X86.movx_load ~signed:true ~wide:true ~dst:1 ~base:6 ~disp:4);
  check_bytes "mov [ebx+2], al" "884302" (X86.mov8_store ~base:3 ~disp:2 ~src:0);
  check_bytes "neg edx" "f7da" (X86.group_f7 `Neg ~rm:2);
  check_bytes "setl al" "0f9cc0" (X86.setcc X86.L ~dst:0);
  check_bytes "add eax, ebx (load form)" "03c3" (X86.alu_rr_load X86.Add ~dst:0 ~src:3);
  check_bytes "push 5" "6a05" (X86.push_imm 5l);
  check_bytes "push 0x12345" "6845230100" (X86.push_imm 0x12345l);
  check_bytes "cdq" "99" X86.cdq;
  check_bytes "xchg eax, ebx" "87c3" (X86.xchg_rr 0 3);
  check_bytes "mov eax, [ebx+esi*4]" "8b04b3" (X86.mov_load_indexed ~dst:0 ~base:3 ~index:6 ~scale:2 ~disp:0)

let test_known_encodings () =
  check_bytes "nop" "90" X86.nop;
  check_bytes "ret" "c3" X86.ret;
  check_bytes "leave" "c9" X86.leave;
  check_bytes "push ebp" "55" (X86.push_r 5);
  check_bytes "pop ebx" "5b" (X86.pop_r 3);
  check_bytes "inc eax" "40" (X86.inc_r 0);
  check_bytes "dec edi" "4f" (X86.dec_r 7);
  check_bytes "mov ebp, esp" "89e5" (X86.mov_rr ~dst:5 ~src:4);
  check_bytes "mov eax, 1" "b801000000" (X86.mov_ri ~dst:0 1l);
  check_bytes "add eax, ebx" "01d8" (X86.alu_rr Add ~dst:0 ~src:3);
  check_bytes "sub esp, 8 (imm8)" "83ec08" (X86.alu_ri Sub ~dst:4 8l);
  check_bytes "cmp eax, 1000 (imm32)" "81f8e8030000" (X86.alu_ri Cmp ~dst:0 1000l);
  check_bytes "xor ecx, ecx" "31c9" (X86.alu_rr Xor ~dst:1 ~src:1);
  check_bytes "test eax, eax" "85c0" (X86.test_rr 0 0);
  check_bytes "imul eax, ebx" "0fafc3" (X86.imul_rr ~dst:0 ~src:3);
  check_bytes "shl eax, 2" "c1e002" (X86.shift_ri Shl ~dst:0 2);
  check_bytes "call rel32" "e810000000" (X86.call_rel 16l);
  check_bytes "jmp rel8" "eb05" (X86.jmp_rel8 5);
  check_bytes "jz rel8" "7402" (X86.jcc_rel8 X86.E 2);
  check_bytes "jnz rel32" "0f85f6ffffff" (X86.jcc_rel32 X86.Ne (-10l))

let test_memory_forms () =
  (* mov eax, [ebx] : no disp *)
  check_bytes "load [ebx]" "8b03" (X86.mov_load ~dst:0 ~base:3 ~disp:0);
  (* mov eax, [ebx+8] : disp8 *)
  check_bytes "load [ebx+8]" "8b4308" (X86.mov_load ~dst:0 ~base:3 ~disp:8);
  (* mov eax, [ebx+0x200] : disp32 *)
  check_bytes "load [ebx+0x200]" "8b8300020000" (X86.mov_load ~dst:0 ~base:3 ~disp:0x200);
  (* EBP base forces disp8 form even for 0 *)
  check_bytes "load [ebp]" "8b4500" (X86.mov_load ~dst:0 ~base:5 ~disp:0);
  (* ESP base requires SIB *)
  check_bytes "load [esp+4]" "8b442404" (X86.mov_load ~dst:0 ~base:4 ~disp:4);
  check_bytes "store [ebx+8] <- ecx" "894b08" (X86.mov_store ~base:3 ~disp:8 ~src:1);
  check_bytes "lea eax, [ebx+12]" "8d430c" (X86.lea ~dst:0 ~base:3 ~disp:12)

let sample_instrs g =
  let reg () = Prng.int g 8 in
  let disp () = Prng.choose g [| 0; 4; 8; -4; 100; 0x200; -0x200 |] in
  List.init 200 (fun _ ->
      match Prng.int g 16 with
      | 0 -> X86.nop
      | 1 -> X86.push_r (reg ())
      | 2 -> X86.pop_r (reg ())
      | 3 -> X86.mov_rr ~dst:(reg ()) ~src:(reg ())
      | 4 -> X86.mov_ri ~dst:(reg ()) (Int64.to_int32 (Ccomp_util.Prng.next_int64 g))
      | 5 -> X86.mov_load ~dst:(reg ()) ~base:(reg ()) ~disp:(disp ())
      | 6 -> X86.mov_store ~base:(reg ()) ~disp:(disp ()) ~src:(reg ())
      | 7 -> X86.alu_rr (Prng.choose g [| X86.Add; Sub; And; Or; Xor; Cmp |]) ~dst:(reg ()) ~src:(reg ())
      | 8 -> X86.alu_ri (Prng.choose g [| X86.Add; Sub; And; Or; Xor; Cmp |]) ~dst:(reg ())
               (Int32.of_int (Prng.int g 4096 - 2048))
      | 9 -> X86.imul_rr ~dst:(reg ()) ~src:(reg ())
      | 10 -> X86.shift_ri (Prng.choose g [| X86.Shl; Shr; Sar |]) ~dst:(reg ()) (Prng.int g 32)
      | 11 -> X86.call_rel (Int32.of_int (Prng.int g 100000 - 50000))
      | 12 -> X86.jmp_rel32 (Int32.of_int (Prng.int g 100000 - 50000))
      | 13 -> X86.jcc_rel8 (Prng.choose g [| X86.E; Ne; L; Ge; G; Le |]) (Prng.int g 256 - 128)
      | 14 -> X86.jcc_rel32 (Prng.choose g [| X86.E; Ne; L; Ge |]) (Int32.of_int (Prng.int g 100000 - 50000))
      | _ -> X86.test_rr (reg ()) (reg ()))

(* the extended (Thumb of x86: movzx/setcc/F7/...) constructors *)
let extended_instrs g =
  let reg () = Prng.int g 8 in
  let idx () = let r = reg () in if r = 4 then 6 else r in
  List.init 120 (fun _ ->
      match Prng.int g 12 with
      | 0 -> X86.mov8_load ~dst:(reg ()) ~base:(reg ()) ~disp:(Prng.int g 64)
      | 1 -> X86.mov8_store ~base:(reg ()) ~disp:(Prng.int g 64) ~src:(reg ())
      | 2 -> X86.movx_load ~signed:(Prng.bool g) ~wide:(Prng.bool g) ~dst:(reg ()) ~base:(reg ())
               ~disp:(Prng.int g 200)
      | 3 -> X86.xchg_rr (reg ()) (reg ())
      | 4 -> X86.cdq
      | 5 -> X86.push_imm (Int32.of_int (Prng.int g 100000 - 50000))
      | 6 -> X86.push_imm (Int32.of_int (Prng.int g 200 - 100))
      | 7 -> X86.group_f7 (Prng.choose g [| `Not; `Neg; `Mul; `Imul; `Div; `Idiv |]) ~rm:(reg ())
      | 8 -> X86.setcc (Prng.choose g [| X86.E; Ne; L; Ge; G; Le |]) ~dst:(reg ())
      | 9 -> X86.alu_rr_load (Prng.choose g [| X86.Add; Or; And; Xor |]) ~dst:(reg ()) ~src:(reg ())
      | 10 -> X86.mov_load_indexed ~dst:(reg ()) ~base:(reg ()) ~index:(idx ()) ~scale:(Prng.int g 4)
                ~disp:(Prng.choose g [| 0; 8; 300 |])
      | _ -> X86.mov_rr ~dst:(reg ()) ~src:(reg ()))

let test_program_roundtrip () =
  let g = Prng.create 77L in
  let instrs = sample_instrs g @ extended_instrs g in
  let code = X86.encode_program instrs in
  match X86.decode_program code with
  | None -> Alcotest.fail "program should decode"
  | Some decoded ->
    Alcotest.(check int) "same count" (List.length instrs) (List.length decoded);
    List.iter2
      (fun a b -> Alcotest.(check string) "same bytes" (hex (X86.encode a)) (hex (X86.encode b)))
      instrs decoded

let test_length_matches_encoding () =
  let g = Prng.create 78L in
  List.iter
    (fun i -> Alcotest.(check int) "length agrees" (String.length (X86.encode i)) (X86.length i))
    (sample_instrs g)

let test_streams_partition_bytes () =
  let g = Prng.create 79L in
  List.iter
    (fun i ->
      let opcode, ms, id = X86.streams i in
      Alcotest.(check int) "streams partition the encoding"
        (String.length (X86.encode i))
        (String.length opcode + String.length ms + String.length id))
    (sample_instrs g @ extended_instrs g)

let test_rebuild_from_streams () =
  let g = Prng.create 80L in
  List.iter
    (fun i ->
      let opcode, modrm_sib, imm_disp = X86.streams i in
      match X86.rebuild ~opcode ~modrm_sib ~imm_disp with
      | Some i' -> Alcotest.(check string) "rebuild" (hex (X86.encode i)) (hex (X86.encode i'))
      | None -> Alcotest.failf "rebuild failed for %s" (X86.to_string i))
    (sample_instrs g @ extended_instrs g)

let test_rebuild_rejects_mismatch () =
  (* push eax takes no operands: extra modrm byte must be rejected *)
  Alcotest.(check bool) "extra modrm rejected" true
    (X86.rebuild ~opcode:"\x50" ~modrm_sib:"\xc0" ~imm_disp:"" = None);
  (* mov r,imm32 with short immediate must be rejected *)
  Alcotest.(check bool) "short imm rejected" true
    (X86.rebuild ~opcode:"\xb8" ~modrm_sib:"" ~imm_disp:"\x01" = None);
  Alcotest.(check bool) "unknown opcode rejected" true
    (X86.rebuild ~opcode:"\xf4" ~modrm_sib:"" ~imm_disp:"" = None)

let test_read_streams_pull_order () =
  (* mov eax, [esp+4]: pulls modrm, then sib, then disp *)
  let i = X86.mov_load ~dst:0 ~base:4 ~disp:4 in
  let _, ms, id = X86.streams i in
  let ms_pos = ref 0 and id_pos = ref 0 in
  let next_ms () =
    let v = Char.code ms.[!ms_pos] in
    incr ms_pos;
    v
  in
  let next_id () =
    let v = Char.code id.[!id_pos] in
    incr id_pos;
    v
  in
  (match X86.read_streams ~opcode:"\x8b" ~next_modrm_sib:next_ms ~next_imm_disp:next_id with
  | Some i' -> Alcotest.(check string) "reconstructed" (hex (X86.encode i)) (hex (X86.encode i'))
  | None -> Alcotest.fail "read_streams failed");
  Alcotest.(check int) "all modrm/sib consumed" (String.length ms) !ms_pos;
  Alcotest.(check int) "all imm/disp consumed" (String.length id) !id_pos

let test_decode_rejects_garbage () =
  (* 0xf4 (hlt) is outside the subset *)
  Alcotest.(check bool) "hlt rejected" true (X86.decode "\xf4" ~pos:0 = None);
  (* truncated mov imm32 *)
  Alcotest.(check bool) "truncated rejected" true (X86.decode "\xb8\x01\x02" ~pos:0 = None);
  Alcotest.(check bool) "empty rejected" true (X86.decode "" ~pos:0 = None)

let test_is_branch () =
  Alcotest.(check bool) "call" true (X86.is_branch (X86.call_rel 0l));
  Alcotest.(check bool) "jcc8" true (X86.is_branch (X86.jcc_rel8 X86.E 0));
  Alcotest.(check bool) "jcc32" true (X86.is_branch (X86.jcc_rel32 X86.E 0l));
  Alcotest.(check bool) "mov not branch" false (X86.is_branch (X86.mov_rr ~dst:0 ~src:1))

let test_opcode_symbols () =
  Alcotest.(check int) "one-byte symbol" 0x90 (X86.opcode_symbol X86.nop);
  let imul = X86.imul_rr ~dst:0 ~src:1 in
  Alcotest.(check int) "prefix byte" 0x0f (X86.opcode_symbol imul);
  Alcotest.(check (option int)) "second byte" (Some 0xaf) (X86.second_opcode imul);
  Alcotest.(check (option int)) "no second byte" None (X86.second_opcode X86.nop)

let suite =
  [
    Alcotest.test_case "known encodings" `Quick test_known_encodings;
    Alcotest.test_case "extended encodings" `Quick test_extended_encodings;
    Alcotest.test_case "memory forms" `Quick test_memory_forms;
    Alcotest.test_case "program roundtrip" `Quick test_program_roundtrip;
    Alcotest.test_case "length function" `Quick test_length_matches_encoding;
    Alcotest.test_case "streams partition bytes" `Quick test_streams_partition_bytes;
    Alcotest.test_case "rebuild from streams" `Quick test_rebuild_from_streams;
    Alcotest.test_case "rebuild rejects mismatch" `Quick test_rebuild_rejects_mismatch;
    Alcotest.test_case "read_streams pull order" `Quick test_read_streams_pull_order;
    Alcotest.test_case "decode rejects garbage" `Quick test_decode_rejects_garbage;
    Alcotest.test_case "branch classification" `Quick test_is_branch;
    Alcotest.test_case "opcode symbols" `Quick test_opcode_symbols;
  ]

let prop_decode_total =
  (* the decoder must be total: any byte string either parses or yields
     None, and a successful parse re-encodes to a prefix of the input *)
  QCheck.Test.make ~name:"x86 decode is total and consistent" ~count:500
    QCheck.(string_of_size (Gen.int_range 0 40))
    (fun s ->
      match X86.decode s ~pos:0 with
      | None -> true
      | Some (i, next) ->
        next <= String.length s
        && String.sub s 0 next = X86.encode i)

let prop_program_roundtrip_random =
  QCheck.Test.make ~name:"x86 random generated programs roundtrip" ~count:40
    QCheck.(int_bound 10000)
    (fun seed ->
      let g = Prng.create (Int64.of_int seed) in
      let instrs = sample_instrs g @ extended_instrs g in
      match X86.decode_program (X86.encode_program instrs) with
      | Some back -> List.length back = List.length instrs
      | None -> false)

let fuzz_suite =
  [ QCheck_alcotest.to_alcotest prop_decode_total;
    QCheck_alcotest.to_alcotest prop_program_roundtrip_random ]

let suite = suite @ fuzz_suite
