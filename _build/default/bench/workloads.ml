(* Benchmark workloads: the 18 SPEC95-profile programs of Figs. 7/8,
   generated once and lowered to both ISAs. *)

module P = Ccomp_progen

type prepared = {
  name : string;
  program : P.Ir.program;
  mips_layout : P.Layout.t;
  x86_layout : P.Layout.t;
}

let mips_code p = p.mips_layout.P.Layout.code

let x86_code p = p.x86_layout.P.Layout.code

let prepare ?(scale = 1.0) (profile : P.Profile.t) =
  let program = P.Generator.generate ~scale ~seed:7L profile in
  let _, mips_layout = P.Mips_backend.lower program in
  let _, x86_layout = P.X86_backend.lower program in
  { name = profile.P.Profile.name; program; mips_layout; x86_layout }

let suite ?(scale = 1.0) () = Array.map (prepare ~scale) P.Profile.spec95

let find suite name =
  match Array.find_opt (fun p -> p.name = name) suite with
  | Some p -> p
  | None -> invalid_arg ("unknown workload " ^ name)
