(* Reproduction of every table/figure in the paper's evaluation (§5) plus
   the ablation experiments indexed in DESIGN.md. Each function prints one
   artifact in the same rows/series as the paper. *)

module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Stream_split = Ccomp_core.Stream_split
module Bit_stats = Ccomp_entropy.Bit_stats
module Lzw = Ccomp_baselines.Lzw
module Lzss = Ccomp_baselines.Lzss
module Byte_huffman = Ccomp_baselines.Byte_huffman
module System = Ccomp_memsys.System
module Lat = Ccomp_memsys.Lat
module P = Ccomp_progen

type ratios = { lzw : float; gzip : float; huffman : float; samc : float; sadc : float }

let header () = Printf.printf "%-10s %9s %9s %9s %9s %9s\n" "benchmark" "compress" "gzip" "huffman" "samc" "sadc"

let row name r =
  Printf.printf "%-10s %9.3f %9.3f %9.3f %9.3f %9.3f\n%!" name r.lzw r.gzip r.huffman r.samc r.sadc

let average rs =
  let n = float_of_int (List.length rs) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rs /. n in
  {
    lzw = sum (fun r -> r.lzw);
    gzip = sum (fun r -> r.gzip);
    huffman = sum (fun r -> r.huffman);
    samc = sum (fun r -> r.samc);
    sadc = sum (fun r -> r.sadc);
  }

let verify tag ok = if not ok then failwith ("round-trip failed: " ^ tag)

(* SADC dictionary construction dominates the harness run time and the
   same image is needed by several tables; memoise per code image. *)
let sadc_mips_cache : (string, Sadc.Mips.compressed) Hashtbl.t = Hashtbl.create 32

let sadc_mips code =
  match Hashtbl.find_opt sadc_mips_cache code with
  | Some z -> z
  | None ->
    let z = Sadc.Mips.compress_image (Sadc.default_config ()) code in
    Hashtbl.add sadc_mips_cache code z;
    z

let measure_mips (w : Workloads.prepared) =
  let code = Workloads.mips_code w in
  let samc = Samc.compress (Samc.mips_config ()) code in
  verify (w.Workloads.name ^ "/samc") (String.equal (Samc.decompress samc) code);
  let sadc = sadc_mips code in
  verify (w.Workloads.name ^ "/sadc") (String.equal (Sadc.Mips.decompress sadc) code);
  {
    lzw = Lzw.ratio code;
    gzip = Lzss.ratio code;
    huffman = Byte_huffman.(ratio (compress code));
    samc = Samc.ratio samc;
    sadc = Sadc.Mips.ratio sadc;
  }

let measure_x86 (w : Workloads.prepared) =
  let code = Workloads.x86_code w in
  (* SAMC needs whole words; pad the image with NOPs like a linker would. *)
  let padded =
    let r = String.length code mod 4 in
    if r = 0 then code else code ^ String.make (4 - r) '\x90'
  in
  let samc = Samc.compress (Samc.byte_config ()) padded in
  verify (w.Workloads.name ^ "/samc-x86") (String.equal (Samc.decompress samc) padded);
  let sadc = Sadc.X86.compress_image (Sadc.default_config ()) code in
  verify (w.Workloads.name ^ "/sadc-x86") (String.equal (Sadc.X86.decompress sadc) code);
  {
    lzw = Lzw.ratio code;
    gzip = Lzss.ratio code;
    huffman = Byte_huffman.(ratio (compress code));
    samc = Samc.ratio samc;
    sadc = Sadc.X86.ratio sadc;
  }

(* --- Figures 7 and 8: per-benchmark compression ratios ----------------- *)

let figure ~title ~measure suite =
  Printf.printf "\n=== %s ===\n" title;
  header ();
  let rows =
    Array.to_list (Array.map (fun w -> let r = measure w in row w.Workloads.name r; r) suite)
  in
  row "AVERAGE" (average rows);
  rows

let fig7 suite = figure ~title:"Figure 7: compression ratios, MIPS (SPEC95 profiles)" ~measure:measure_mips suite

let fig8 suite = figure ~title:"Figure 8: compression ratios, x86 (SPEC95 profiles)" ~measure:measure_x86 suite

(* --- Figure 9: instruction-compression algorithms, suite averages ------ *)

let fig9 ~mips_rows ~x86_rows =
  Printf.printf "\n=== Figure 9: instruction compression algorithms (suite averages) ===\n";
  Printf.printf "%-6s %9s %9s %9s\n" "isa" "huffman" "samc" "sadc";
  let p isa rows =
    let a = average rows in
    Printf.printf "%-6s %9.3f %9.3f %9.3f\n" isa a.huffman a.samc a.sadc
  in
  p "mips" mips_rows;
  p "x86" x86_rows

(* --- E1: cache block size sensitivity (§5 claim: minimal impact) ------- *)

let block_size_table suite =
  Printf.printf "\n=== E1: block size sensitivity (SAMC / SADC ratios, MIPS) ===\n";
  Printf.printf "%-10s" "benchmark";
  let sizes = [ 16; 32; 64; 128 ] in
  List.iter (fun s -> Printf.printf "   samc@%-3d sadc@%-3d" s s) sizes;
  print_newline ();
  List.iter
    (fun name ->
      let code = Workloads.mips_code (Workloads.find suite name) in
      Printf.printf "%-10s" name;
      List.iter
        (fun block_size ->
          let samc = Samc.ratio (Samc.compress (Samc.mips_config ~block_size ()) code) in
          let sadc =
            Sadc.Mips.ratio (Sadc.Mips.compress_image (Sadc.default_config ~block_size ()) code)
          in
          Printf.printf "   %8.3f %8.3f" samc sadc)
        sizes;
      print_newline ())
    [ "gcc"; "go"; "swim" ]

(* --- E2: stream subdivision (§3: 4x8 close to optimal) ----------------- *)

let word_stats code =
  let stats = Bit_stats.create ~width:32 in
  String.iteri
    (fun i _ ->
      if i mod 4 = 0 then
        Bit_stats.add_word stats
          (Int64.of_int
             ((Char.code code.[i] lsl 24) lor (Char.code code.[i + 1] lsl 16)
             lor (Char.code code.[i + 2] lsl 8) lor Char.code code.[i + 3])))
    code;
  stats

let stream_table suite =
  Printf.printf "\n=== E2: SAMC stream subdivision (MIPS) ===\n";
  Printf.printf "%-10s %10s %10s %10s %10s   %s\n" "benchmark" "2x16" "4x8" "8x4" "opt-4x8"
    "(model bytes: 786k / 6k / 0.7k / 6k)";
  List.iter
    (fun name ->
      let code = Workloads.mips_code (Workloads.find suite name) in
      let ratio_for streams = Samc.ratio (Samc.compress (Samc.mips_config ~streams ()) code) in
      let stats = word_stats code in
      Printf.printf "%-10s %10.3f %10.3f %10.3f %10.3f\n%!" name
        (ratio_for (Stream_split.consecutive ~word_bits:32 ~streams:2))
        (ratio_for (Stream_split.consecutive ~word_bits:32 ~streams:4))
        (ratio_for (Stream_split.consecutive ~word_bits:32 ~streams:8))
        (ratio_for (Stream_split.optimize ~seed:1L ~streams:4 stats)))
    [ "gcc"; "perl"; "swim" ]

(* --- E3: shift-only probability quantisation (§3: ~95% efficiency) ----- *)

let quantize_table suite =
  Printf.printf "\n=== E3: power-of-two probability quantisation (SAMC, MIPS) ===\n";
  Printf.printf "%-10s %10s %10s %12s\n" "benchmark" "exact" "shift-only" "efficiency";
  let effs =
    Array.to_list suite
    |> List.map (fun w ->
           let code = Workloads.mips_code w in
           let exact = Samc.ratio (Samc.compress (Samc.mips_config ()) code) in
           let quant = Samc.ratio (Samc.compress (Samc.mips_config ~quantize:true ()) code) in
           let eff = exact /. quant in
           Printf.printf "%-10s %10.3f %10.3f %11.1f%%\n%!" w.Workloads.name exact quant (100.0 *. eff);
           eff)
  in
  let avg = List.fold_left ( +. ) 0.0 effs /. float_of_int (List.length effs) in
  Printf.printf "%-10s %33.1f%%   (paper cites ~95%% worst case)\n" "AVERAGE" (100.0 *. avg)

(* --- E4: memory system performance vs cache size (§1/§2) -------------- *)

let memsys_table suite =
  Printf.printf "\n=== E4: compressed memory system (Wolfe-Chanin), CPI vs cache size ===\n";
  List.iter
    (fun name ->
      let w = Workloads.find suite name in
      let code = Workloads.mips_code w in
      let trace = P.Trace.generate w.Workloads.program w.Workloads.mips_layout ~seed:17L ~length:1_000_000 in
      let samc = Samc.compress (Samc.mips_config ()) code in
      let sadc = sadc_mips code in
      let huff = Byte_huffman.compress code in
      let samc_lat = Lat.of_blocks samc.Samc.blocks in
      let sadc_lat =
        Lat.build (Array.init (Sadc.Mips.block_count sadc) (Sadc.Mips.block_payload_bytes sadc))
      in
      let huff_lat = Lat.of_blocks huff.Byte_huffman.blocks in
      Printf.printf "\n%s (text %d bytes):\n" name (String.length code);
      Printf.printf "%8s %10s %8s | %8s %8s %8s | %9s %9s %9s\n" "cache" "hit ratio" "plain"
        "huffman" "samc" "sadc" "slow-huf" "slow-samc" "slow-sadc";
      List.iter
        (fun cache_bytes ->
          let base = System.run (System.default_config ~cache_bytes ()) ~trace () in
          let run d lat =
            System.run (System.default_config ~cache_bytes ~decompressor:d ()) ~lat ~trace ()
          in
          let h = run System.huffman_decompressor huff_lat in
          let s = run System.samc_decompressor samc_lat in
          let d = run System.sadc_decompressor sadc_lat in
          Printf.printf "%7dB %10.4f %8.3f | %8.3f %8.3f %8.3f | %8.3fx %8.3fx %8.3fx\n%!"
            cache_bytes base.System.hit_ratio base.System.cpi h.System.cpi s.System.cpi d.System.cpi
            (System.slowdown ~compressed:h ~uncompressed:base)
            (System.slowdown ~compressed:s ~uncompressed:base)
            (System.slowdown ~compressed:d ~uncompressed:base))
        [ 256; 512; 1024; 2048; 4096; 8192 ])
    [ "go"; "gcc" ]

(* --- E6: finite-context-model headroom (§1) ---------------------------- *)

let ppm_table suite =
  Printf.printf "\n=== E6: finite-context headroom and model memory (the paper's §1 objection) ===\n";
  Printf.printf "%-10s %8s %8s %8s %8s %13s %11s\n" "benchmark" "gzip" "samc" "ppm-o2" "dmc"
    "ppm model B" "dmc states";
  List.iter
    (fun name ->
      let code = Workloads.mips_code (Workloads.find suite name) in
      let gzip = Lzss.ratio code in
      let samc = Samc.ratio (Samc.compress (Samc.mips_config ()) code) in
      let ppm = Ccomp_baselines.Ppm.ratio code in
      let dmc = Ccomp_baselines.Dmc.ratio code in
      let mem = Ccomp_baselines.Ppm.model_memory code in
      let states = Ccomp_baselines.Dmc.model_states code in
      Printf.printf "%-10s %8.3f %8.3f %8.3f %8.3f %13d %11d\n%!" name gzip samc ppm dmc
        mem.Ccomp_baselines.Ppm.approx_bytes states)
    [ "compress"; "go"; "swim"; "vortex" ]

(* --- E7: dense re-encoding vs compression (§2's other road) ------------ *)

let dense_table suite =
  Printf.printf "\n=== E7: dense 16/32-bit re-encoding (Thumb-style) vs compression, MIPS ===\n";
  Printf.printf "%-10s %8s %8s %8s %8s %9s %9s\n" "benchmark" "dense" "samc" "sadc" "huffman"
    "16-bit %" "escaped %";
  Array.iter
    (fun w ->
      let code = Workloads.mips_code w in
      let instrs =
        Array.to_list (Array.map Option.get (Ccomp_isa.Mips.decode_program code))
      in
      let st = Ccomp_isa.Dense16.stats instrs in
      let pct x = 100.0 *. float_of_int x /. float_of_int st.Ccomp_isa.Dense16.instructions in
      Printf.printf "%-10s %8.3f %8.3f %8.3f %8.3f %8.1f%% %8.1f%%\n%!" w.Workloads.name
        (Ccomp_isa.Dense16.ratio instrs)
        (Samc.ratio (Samc.compress (Samc.mips_config ()) code))
        (Sadc.Mips.ratio (sadc_mips code))
        Byte_huffman.(ratio (compress code))
        (pct st.Ccomp_isa.Dense16.half_forms)
        (pct st.Ccomp_isa.Dense16.escaped))
    suite

(* --- E9: x86 field-level stream subdivision (§5 conjecture) ------------- *)

let x86_fields_table suite =
  Printf.printf
    "\n=== E9: SADC x86 stream subdivision: byte streams vs ModRM/SIB fields ===\n";
  Printf.printf "%-10s %12s %13s %10s\n" "benchmark" "byte-streams" "field-streams" "delta";
  List.iter
    (fun name ->
      let code = Workloads.x86_code (Workloads.find suite name) in
      let cfg = Sadc.default_config () in
      let bytes_z = Sadc.X86.compress_image cfg code in
      let fields_z = Sadc.X86_fields.compress_image cfg code in
      if not (String.equal (Sadc.X86_fields.decompress fields_z) code) then
        failwith "x86-fields round-trip failed";
      let rb = Sadc.X86.ratio bytes_z and rf = Sadc.X86_fields.ratio fields_z in
      Printf.printf "%-10s %12.3f %13.3f %9.3f%%\n%!" name rb rf (100.0 *. (rb -. rf) /. rb))
    [ "compress"; "gcc"; "go"; "swim"; "vortex" ]

(* --- E8: Markov model pruning (§6 future work) -------------------------- *)

let prune_table suite =
  Printf.printf "\n=== E8: Markov tree pruning, ratio vs model memory (SAMC, MIPS) ===\n";
  Printf.printf "%-10s" "benchmark";
  let thresholds = [ 0; 4; 16; 64 ] in
  List.iter (fun t -> Printf.printf "   r@%-3d modelB@%-4d" t t) thresholds;
  print_newline ();
  List.iter
    (fun name ->
      let code = Workloads.mips_code (Workloads.find suite name) in
      Printf.printf "%-10s" name;
      List.iter
        (fun prune_below ->
          let z = Samc.compress (Samc.mips_config ~prune_below ()) code in
          Printf.printf "   %5.3f %11d" (Samc.ratio z) (Samc.model_bytes z))
        thresholds;
      print_newline ())
    [ "gcc"; "swim"; "compress" ]

(* --- E12: embedded-class firmware (the paper's motivating domain) ------- *)

let embedded_table () =
  Printf.printf
    "\n=== E12: embedded firmware suite (the domain SS 1 motivates), MIPS ===\n";
  Printf.printf "%-12s %7s %9s %9s %9s %9s %9s %11s\n" "firmware" "bytes" "compress" "gzip"
    "huffman" "samc" "sadc" "sadc+tables";
  let rows =
    Array.to_list
      (Array.map
         (fun profile ->
           let w = Workloads.prepare profile in
           let code = Workloads.mips_code w in
           let samc = Samc.compress (Samc.mips_config ()) code in
           let sadc = Sadc.Mips.compress_image (Sadc.default_config ()) code in
           verify (profile.P.Profile.name ^ "/samc") (String.equal (Samc.decompress samc) code);
           verify (profile.P.Profile.name ^ "/sadc") (String.equal (Sadc.Mips.decompress sadc) code);
           let r =
             {
               lzw = Lzw.ratio code;
               gzip = Lzss.ratio code;
               huffman = Byte_huffman.(ratio (compress code));
               samc = Samc.ratio samc;
               sadc = Sadc.Mips.ratio sadc;
             }
           in
           Printf.printf "%-12s %7d %9.3f %9.3f %9.3f %9.3f %9.3f %11.3f\n%!"
             profile.P.Profile.name (String.length code) r.lzw r.gzip r.huffman r.samc r.sadc
             (Sadc.Mips.ratio_with_tables sadc);
           r)
         P.Profile.embedded)
  in
  row "AVERAGE" (average rows);
  Printf.printf
    "(small images pay proportionally more for shipped tables: the semiadaptive trade)\n"

(* --- E11: the industrial follow-on: CodePack-style coding --------------- *)

let codepack_table suite =
  Printf.printf "\n=== E11: CodePack-style half-word coding vs the paper's schemes (MIPS) ===\n";
  Printf.printf "%-10s %9s %9s %9s %9s %12s\n" "benchmark" "codepack" "huffman" "samc" "sadc"
    "cp tables";
  let rows =
    Array.to_list suite
    |> List.map (fun w ->
           let code = Workloads.mips_code w in
           let cp = Ccomp_baselines.Codepack.compress code in
           if not (String.equal (Ccomp_baselines.Codepack.decompress cp) code) then
             failwith "codepack round-trip failed";
           let r =
             ( Ccomp_baselines.Codepack.ratio cp,
               Byte_huffman.(ratio (compress code)),
               Samc.ratio (Samc.compress (Samc.mips_config ()) code),
               Sadc.Mips.ratio (sadc_mips code) )
           in
           let a, b, c, d = r in
           Printf.printf "%-10s %9.3f %9.3f %9.3f %9.3f %12d\n%!" w.Workloads.name a b c d
             (Ccomp_baselines.Codepack.table_bytes cp);
           r)
  in
  let n = float_of_int (List.length rows) in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. n in
  Printf.printf "%-10s %9.3f %9.3f %9.3f %9.3f\n" "AVERAGE"
    (avg (fun (a, _, _, _) -> a))
    (avg (fun (_, b, _, _) -> b))
    (avg (fun (_, _, c, _) -> c))
    (avg (fun (_, _, _, d) -> d))

(* --- E10: LAT size vs line padding (Wolfe-Chanin trade, §2) ------------- *)

let lat_table suite =
  Printf.printf "\n=== E10: LAT storage vs compressed-line padding (SAMC, MIPS) ===\n";
  Printf.printf "%-10s %8s" "benchmark" "quantum";
  List.iter (fun q -> Printf.printf " %14s" (Printf.sprintf "pad+LAT @%d" q)) [ 1; 2; 4; 8; 16 ];
  print_newline ();
  List.iter
    (fun name ->
      let code = Workloads.mips_code (Workloads.find suite name) in
      let z = Samc.compress (Samc.mips_config ()) code in
      let lat = Lat.of_blocks z.Samc.blocks in
      Printf.printf "%-10s %8s" name "";
      List.iter
        (fun quantum ->
          let q = Lat.quantize ~quantum lat in
          let padded_code = Lat.total_compressed q in
          let table = (Lat.storage_bits ~quantum q + 7) / 8 in
          Printf.printf " %8d +%4d" padded_code table)
        [ 1; 2; 4; 8; 16 ];
      Printf.printf "   (code %d)\n%!" (String.length code))
    [ "gcc"; "swim" ]

(* --- E5: dictionary contents (§4) -------------------------------------- *)

let dict_table suite =
  Printf.printf "\n=== E5: SADC dictionary statistics (MIPS) ===\n";
  Printf.printf "%-10s %8s %6s %7s %6s %8s %7s %10s %11s\n" "benchmark" "entries" "base" "groups"
    "spec" "longest" "rounds" "dict bytes" "tables bytes";
  Array.iter
    (fun w ->
      let code = Workloads.mips_code w in
      let z = sadc_mips code in
      let st = Sadc.Mips.stats z in
      Printf.printf "%-10s %8d %6d %7d %6d %8d %7d %10d %11d\n%!" w.Workloads.name
        st.Sadc.entries st.Sadc.base_entries st.Sadc.group_entries st.Sadc.specialized_entries
        st.Sadc.longest_group st.Sadc.rounds (Sadc.Mips.dict_bytes z) (Sadc.Mips.tables_bytes z))
    suite
