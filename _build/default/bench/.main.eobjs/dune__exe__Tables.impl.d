bench/tables.ml: Array Ccomp_baselines Ccomp_core Ccomp_entropy Ccomp_isa Ccomp_memsys Ccomp_progen Char Hashtbl Int64 List Option Printf String Workloads
