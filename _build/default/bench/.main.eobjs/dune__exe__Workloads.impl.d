bench/workloads.ml: Array Ccomp_progen
