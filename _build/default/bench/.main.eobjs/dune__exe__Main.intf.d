bench/main.mli:
