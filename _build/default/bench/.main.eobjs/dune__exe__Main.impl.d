bench/main.ml: Analyze Array Bechamel Benchmark Ccomp_baselines Ccomp_core Ccomp_progen Hashtbl List Measure Printf Staged String Sys Tables Test Time Toolkit Unix Workloads
