lib/util/heap.mli:
