lib/util/prng.mli:
