(** Imperative binary min-heap, used by the Huffman tree builder and the
    dictionary generator's candidate queue. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap ordered by [cmp] (smallest first). *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the minimum element.
    @raise Not_found if the heap is empty. *)

val peek : 'a t -> 'a
(** Returns the minimum element without removing it.
    @raise Not_found if the heap is empty. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains the heap, returning elements in ascending order. *)
