(** Deterministic pseudo-random number generation.

    All randomised components of the library (stream-subdivision search,
    synthetic program generation, test data) draw from this SplitMix64
    generator so that every experiment is reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Distinct seeds give independent
    streams for all practical purposes. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator seeded from it,
    suitable for giving sub-components their own streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int -> int
(** [bits g n] is a uniform integer in \[0, 2^n) for 0 <= n <= 30. *)

val int : t -> int -> int
(** [int g bound] is uniform in \[0, bound). [bound] must be positive. *)

val float : t -> float
(** Uniform float in \[0, 1). *)

val bool : t -> bool
(** Uniform boolean. *)

val choose : t -> 'a array -> 'a
(** [choose g arr] picks a uniform element. [arr] must be non-empty. *)

val weighted : t -> (int * 'a) array -> 'a
(** [weighted g arr] picks an element with probability proportional to its
    integer weight. Total weight must be positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val geometric : t -> float -> int
(** [geometric g p] counts failures before the first success of a Bernoulli
    trial with success probability [p] (0 < p <= 1); mean (1-p)/p. *)
