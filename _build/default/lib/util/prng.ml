type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy g = { state = g.state }

(* SplitMix64 finaliser (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 g =
  g.state <- Int64.add g.state golden_gamma;
  mix g.state

let split g = create (next_int64 g)

let bits g n =
  assert (n >= 0 && n <= 30);
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (next_int64 g) (64 - n))

let int g bound =
  assert (bound > 0);
  if bound = 1 then 0
  else
    (* Rejection sampling on 30-bit values keeps the distribution uniform. *)
    let rec draw () =
      let v = bits g 30 in
      let limit = (1 lsl 30) - ((1 lsl 30) mod bound) in
      if v < limit then v mod bound else draw ()
    in
    if bound <= 1 lsl 30 then draw ()
    else Int64.to_int (Int64.rem (Int64.logand (next_int64 g) Int64.max_int) (Int64.of_int bound))

let float g =
  let v = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float v *. (1.0 /. 9007199254740992.0)

let bool g = Int64.compare (next_int64 g) 0L < 0

let choose g arr =
  assert (Array.length arr > 0);
  arr.(int g (Array.length arr))

let weighted g arr =
  let total = Array.fold_left (fun acc (w, _) -> acc + w) 0 arr in
  assert (total > 0);
  let target = int g total in
  let rec pick i acc =
    let w, v = arr.(i) in
    if target < acc + w then v else pick (i + 1) (acc + w)
  in
  pick 0 0

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let geometric g p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else
    let u = float g in
    (* Inverse transform; clamp to avoid log 0. *)
    let u = if u <= 0.0 then 1e-18 else u in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1.0 -. p)))
