(** A 32-bit x86-style CISC subset with genuine encoding rules.

    Instructions follow the real IA-32 layout: one or two opcode bytes
    (0x0F-prefixed map for the second set), an optional ModRM byte, an
    optional SIB byte, a 0/1/4-byte displacement selected by ModRM, and a
    0/1/4-byte immediate selected by the opcode. This gives the paper's
    three Pentium streams (§5): opcode bytes, ModRM+SIB bytes, and
    immediate+displacement bytes, each a whole number of bytes. *)

type t = private {
  opcode : string;  (** 1 or 2 opcode bytes *)
  modrm : int option;
  sib : int option;
  disp : string;  (** 0, 1 or 4 bytes, little-endian *)
  imm : string;  (** 0, 1 or 4 bytes, little-endian *)
}

type alu = Add | Sub | And | Or | Xor | Cmp
type shift = Shl | Shr | Sar

type cond = O | No | B | Ae | E | Ne | Be | A | S | Ns | P | Np | L | Ge | Le | G
(** Condition codes, in IA-32 tttn order (0x0 .. 0xF). *)

(** {1 Constructors} — registers are 0..7 (eax..edi). *)

val nop : t
val ret : t
val leave : t
val push_r : int -> t
val pop_r : int -> t
val inc_r : int -> t
val dec_r : int -> t
val mov_rr : dst:int -> src:int -> t
val mov_ri : dst:int -> int32 -> t
val mov_load : dst:int -> base:int -> disp:int -> t

(** mov r32, \[base + index*2^scale + disp\] (SIB form; [index] must not be
    esp, [scale] in 0..3). *)
val mov_load_indexed : dst:int -> base:int -> index:int -> scale:int -> disp:int -> t
val mov_store : base:int -> disp:int -> src:int -> t
val mov8_load : dst:int -> base:int -> disp:int -> t
val mov8_store : base:int -> disp:int -> src:int -> t

val movx_load : signed:bool -> wide:bool -> dst:int -> base:int -> disp:int -> t
(** movzx/movsx r32, \[base+disp\] with an 8-bit ([wide]=false) or 16-bit
    source. *)

val xchg_rr : int -> int -> t
val cdq : t
val push_imm : int32 -> t
(** push imm8 when it fits a signed byte, else push imm32. *)

val group_f7 : [ `Not | `Neg | `Mul | `Imul | `Div | `Idiv ] -> rm:int -> t
(** The 0xF7 unary group on a register operand. *)

val setcc : cond -> dst:int -> t

(** The r, r/m direction form (0x03/0x0B/…): same effect as {!alu_rr} on
    registers but the other encoding, as compilers emit both. *)
val alu_rr_load : alu -> dst:int -> src:int -> t
val alu_rr : alu -> dst:int -> src:int -> t
val alu_ri : alu -> dst:int -> int32 -> t
val test_rr : int -> int -> t
val imul_rr : dst:int -> src:int -> t
val lea : dst:int -> base:int -> disp:int -> t
val shift_ri : shift -> dst:int -> int -> t
val call_rel : int32 -> t
val jmp_rel8 : int -> t
val jmp_rel32 : int32 -> t
val jcc_rel8 : cond -> int -> t
val jcc_rel32 : cond -> int32 -> t

(** {1 Encoding} *)

val length : t -> int
(** Encoded length in bytes. *)

val encode : t -> string

val encode_program : t list -> string

val decode : string -> pos:int -> (t * int) option
(** [decode bytes ~pos] parses one instruction starting at [pos], returning
    it and the position just past it; [None] when the bytes are not a valid
    instruction of the subset. *)

val decode_program : string -> t list option
(** Parses a whole byte image; [None] on any invalid instruction. *)

val to_string : t -> string
(** Best-effort disassembly (mnemonic and operand bytes). *)

(** {1 Stream views (§5)} *)

val streams : t -> string * string * string
(** [(opcode_bytes, modrm_sib_bytes, imm_disp_bytes)] of one instruction;
    displacement precedes immediate in the third stream, as in the
    encoding. *)

val rebuild : opcode:string -> modrm_sib:string -> imm_disp:string -> t option
(** Inverse of {!streams}: reassembles an instruction from exactly its
    stream bytes. [None] if the pieces are inconsistent. *)

val read_streams :
  opcode:string -> next_modrm_sib:(unit -> int) -> next_imm_disp:(unit -> int) -> t option
(** [read_streams ~opcode ~next_modrm_sib ~next_imm_disp] reconstructs an
    instruction by pulling operand bytes on demand — first the ModRM byte
    (when the opcode takes one), then SIB/displacement/immediate bytes as
    the already-pulled bytes dictate, exactly like a hardware sequencer fed
    by per-stream decoders (Fig. 6). [None] for an unknown opcode. *)

val opcode_symbol : t -> int
(** The first opcode byte — the dictionary symbol used by SADC's x86 mode.
    Two-byte opcodes are distinguished by {!second_opcode}. *)

val second_opcode : t -> int option
(** Second opcode byte for the 0x0F map. *)

val is_branch : t -> bool
(** Direct control transfers (call/jmp/jcc). *)
