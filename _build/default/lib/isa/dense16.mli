(** A Thumb-style dense re-encoding of the MIPS subset.

    §2 of the paper contrasts two roads to smaller code: redesign the
    ISA with a denser encoding, or keep the ISA and compress the memory
    image. This module implements the first road for comparison: common
    two-address instructions with small operands get 16-bit forms
    (registers restricted to a hot set of 8, immediates to a few bits),
    most other instructions get re-encoded 32-bit forms (Thumb-2 style),
    and the rare remainder escapes to the original word behind a 16-bit
    prefix. The re-encoding is static and lossless; it needs a new
    decoder in the pipeline but no decompression engine, no LAT and no
    tables — the trade the paper describes.

    Typical density on compiled code is 0.7–0.8 of the original size,
    which the benchmark harness compares against SAMC/SADC. *)

val compressible : Mips.t -> bool
(** Does the instruction have a 16-bit form? *)

val encoded_bytes : Mips.t -> int
(** Dense size of one instruction: 2 (16-bit form), 4 (re-encoded 32-bit
    form) or 6 (escaped raw word). *)

val encode_program : Mips.t list -> string
(** Dense image (a multiple of 2 bytes). *)

val decode_program : string -> Mips.t list option
(** Lossless inverse of {!encode_program}; [None] on malformed input. *)

val ratio : Mips.t list -> float
(** Dense size / original size. *)

type stats = { instructions : int; half_forms : int; word_forms : int; escaped : int }

val stats : Mips.t list -> stats
