(** Textual MIPS assembly, matching the {!Mips.to_string} syntax.

    A small assembler/disassembler pair so compressed images can be built
    from and inspected as text: registers are written [$n], immediates in
    decimal (or hex with [0x]), loads and stores as [off($base)]. Lines
    may carry [#] comments; blank lines are skipped. *)

val parse_instruction : string -> (Mips.t, string) result
(** Parse one instruction, e.g. ["addiu $29, $29, -32"]. *)

val parse_program : string -> (Mips.t list, string) result
(** Parse a whole listing; errors carry the offending line number. *)

val print_program : ?addresses:bool -> Mips.t list -> string
(** Disassemble, one instruction per line; [addresses] (default true)
    prefixes each line with its byte address and encoded word. *)
