lib/isa/dense16.mli: Mips
