lib/isa/mips.mli:
