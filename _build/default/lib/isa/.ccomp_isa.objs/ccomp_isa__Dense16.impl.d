lib/isa/dense16.ml: Array Buffer Char List Mips Option String
