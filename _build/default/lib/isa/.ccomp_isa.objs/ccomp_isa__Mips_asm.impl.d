lib/isa/mips_asm.ml: Buffer List Mips Printf Result String
