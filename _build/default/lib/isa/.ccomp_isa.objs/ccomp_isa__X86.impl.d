lib/isa/x86.ml: Buffer Bytes Char Int32 List Option Printf String
