lib/isa/mips_asm.mli: Mips
