lib/isa/mips.ml: Array Buffer Char Hashtbl List Printf String
