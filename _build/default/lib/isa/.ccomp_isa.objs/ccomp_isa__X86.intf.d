lib/isa/x86.mli:
