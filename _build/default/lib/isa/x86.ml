type t = { opcode : string; modrm : int option; sib : int option; disp : string; imm : string }

type alu = Add | Sub | And | Or | Xor | Cmp
type shift = Shl | Shr | Sar
type cond = O | No | B | Ae | E | Ne | Be | A | S | Ns | P | Np | L | Ge | Le | G

let cond_index = function
  | O -> 0 | No -> 1 | B -> 2 | Ae -> 3 | E -> 4 | Ne -> 5 | Be -> 6 | A -> 7
  | S -> 8 | Ns -> 9 | P -> 10 | Np -> 11 | L -> 12 | Ge -> 13 | Le -> 14 | G -> 15

(* Shape of an instruction given its opcode byte(s): whether a ModRM byte
   follows and how large the trailing immediate is. *)
type imm_kind = I0 | I8 | I32
type shape = Plain of imm_kind | With_modrm of imm_kind

let shape_of_first = function
  | 0x01 | 0x09 | 0x21 | 0x29 | 0x31 | 0x39 | 0x85 | 0x89 | 0x8b | 0x8d -> Some (With_modrm I0)
  | 0x03 | 0x0b | 0x23 | 0x2b | 0x33 | 0x3b -> Some (With_modrm I0) (* ALU r, r/m forms *)
  | 0x88 | 0x8a -> Some (With_modrm I0) (* 8-bit moves *)
  | 0x87 -> Some (With_modrm I0) (* xchg *)
  | 0xf7 -> Some (With_modrm I0) (* not/neg/mul/imul/div/idiv (digits 2-7) *)
  | 0x83 | 0xc1 -> Some (With_modrm I8)
  | 0x81 -> Some (With_modrm I32)
  | b when b >= 0x40 && b <= 0x5f -> Some (Plain I0) (* inc/dec/push/pop r *)
  | 0x90 | 0xc3 | 0xc9 | 0x99 -> Some (Plain I0) (* nop/ret/leave/cdq *)
  | b when b >= 0xb8 && b <= 0xbf -> Some (Plain I32) (* mov r, imm32 *)
  | 0x68 -> Some (Plain I32) (* push imm32 *)
  | 0x6a -> Some (Plain I8) (* push imm8 *)
  | 0xe8 | 0xe9 -> Some (Plain I32)
  | 0xeb -> Some (Plain I8)
  | b when b >= 0x70 && b <= 0x7f -> Some (Plain I8) (* jcc rel8 *)
  | _ -> None

let shape_of_second = function
  | b when b >= 0x80 && b <= 0x8f -> Some (Plain I32) (* jcc rel32 *)
  | b when b >= 0x90 && b <= 0x9f -> Some (With_modrm I0) (* setcc r/m8 *)
  | 0xaf -> Some (With_modrm I0) (* imul r, r/m *)
  | 0xb6 | 0xb7 | 0xbe | 0xbf -> Some (With_modrm I0) (* movzx/movsx *)
  | _ -> None

let shape_of_opcode opcode =
  if String.length opcode = 0 then None
  else
    let b0 = Char.code opcode.[0] in
    if b0 = 0x0f then
      if String.length opcode = 2 then shape_of_second (Char.code opcode.[1]) else None
    else if String.length opcode = 1 then shape_of_first b0
    else None

(* Displacement size implied by ModRM (and SIB base), in bytes; also
   whether a SIB byte is present. *)
let modrm_layout modrm sib_base =
  let md = modrm lsr 6 and rm = modrm land 7 in
  if md = 3 then (false, 0)
  else
    let has_sib = rm = 4 in
    let disp =
      match md with
      | 0 ->
        if rm = 5 then 4
        else if has_sib && sib_base = Some 5 then 4
        else 0
      | 1 -> 1
      | 2 -> 4
      | _ -> assert false
    in
    (has_sib, disp)

let imm_len = function I0 -> 0 | I8 -> 1 | I32 -> 4

let le32 v =
  let v = Int32.to_int v land 0xffffffff in
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (v land 0xff));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b 2 (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b 3 (Char.chr ((v lsr 24) land 0xff));
  Bytes.to_string b

let byte8 v =
  assert (v >= -128 && v < 128);
  String.make 1 (Char.chr (v land 0xff))

let check_reg r = if r < 0 || r > 7 then invalid_arg "X86: register out of range"

let plain b = { opcode = String.make 1 (Char.chr b); modrm = None; sib = None; disp = ""; imm = "" }

let nop = plain 0x90
let ret = plain 0xc3
let leave = plain 0xc9

let push_r r = check_reg r; plain (0x50 + r)
let pop_r r = check_reg r; plain (0x58 + r)
let inc_r r = check_reg r; plain (0x40 + r)
let dec_r r = check_reg r; plain (0x48 + r)

let modrm_byte ~md ~reg ~rm = (md lsl 6) lor (reg lsl 3) lor rm

let reg_reg op ~reg ~rm =
  check_reg reg;
  check_reg rm;
  { opcode = String.make 1 (Char.chr op);
    modrm = Some (modrm_byte ~md:3 ~reg ~rm);
    sib = None; disp = ""; imm = "" }

let mov_rr ~dst ~src = reg_reg 0x89 ~reg:src ~rm:dst

let mov_ri ~dst v =
  check_reg dst;
  { (plain (0xb8 + dst)) with imm = le32 v }

(* Memory operand [base + disp]; ESP as base requires a SIB byte and EBP
   with no displacement requires the disp8 form, per IA-32 rules. *)
let mem_operand op ~reg ~base ~disp =
  check_reg reg;
  check_reg base;
  let md, disp_bytes =
    if disp = 0 && base <> 5 then (0, "")
    else if disp >= -128 && disp < 128 then (1, byte8 disp)
    else (2, le32 (Int32.of_int disp))
  in
  let rm = if base = 4 then 4 else base in
  let sib = if base = 4 then Some ((4 lsl 3) lor 4) else None in
  { opcode = String.make 1 (Char.chr op);
    modrm = Some (modrm_byte ~md ~reg ~rm);
    sib; disp = disp_bytes; imm = "" }

(* Indexed memory operand [base + index*scale + disp] via a SIB byte.
   ESP cannot be an index; scale is the shift amount (0..3). *)
let mem_operand_indexed op ~reg ~base ~index ~scale ~disp =
  check_reg reg;
  check_reg base;
  check_reg index;
  if index = 4 then invalid_arg "X86: esp cannot index";
  if scale < 0 || scale > 3 then invalid_arg "X86: bad scale";
  let md, disp_bytes =
    if disp = 0 && base <> 5 then (0, "")
    else if disp >= -128 && disp < 128 then (1, byte8 disp)
    else (2, le32 (Int32.of_int disp))
  in
  { opcode = String.make 1 (Char.chr op);
    modrm = Some (modrm_byte ~md ~reg ~rm:4);
    sib = Some ((scale lsl 6) lor (index lsl 3) lor base);
    disp = disp_bytes; imm = "" }

let mov_load_indexed ~dst ~base ~index ~scale ~disp =
  mem_operand_indexed 0x8b ~reg:dst ~base ~index ~scale ~disp

let mov_load ~dst ~base ~disp = mem_operand 0x8b ~reg:dst ~base ~disp
let mov_store ~base ~disp ~src = mem_operand 0x89 ~reg:src ~base ~disp
let lea ~dst ~base ~disp = mem_operand 0x8d ~reg:dst ~base ~disp
let mov8_load ~dst ~base ~disp = mem_operand 0x8a ~reg:dst ~base ~disp
let mov8_store ~base ~disp ~src = mem_operand 0x88 ~reg:src ~base ~disp

(* movzx/movsx r32, r/m8 or r/m16 *)
let extend_opcode ~signed ~wide =
  match (signed, wide) with
  | false, false -> "\x0f\xb6"
  | false, true -> "\x0f\xb7"
  | true, false -> "\x0f\xbe"
  | true, true -> "\x0f\xbf"

let movx_load ~signed ~wide ~dst ~base ~disp =
  let m = mem_operand 0x8b ~reg:dst ~base ~disp in
  { m with opcode = extend_opcode ~signed ~wide }

let xchg_rr a b = reg_reg 0x87 ~reg:a ~rm:b

let cdq = plain 0x99

let push_imm v =
  if Int32.compare v (-128l) >= 0 && Int32.compare v 128l < 0 then
    { (plain 0x6a) with imm = byte8 (Int32.to_int v) }
  else { (plain 0x68) with imm = le32 v }

let group_f7_digit = function `Not -> 2 | `Neg -> 3 | `Mul -> 4 | `Imul -> 5 | `Div -> 6 | `Idiv -> 7

let group_f7 op ~rm =
  check_reg rm;
  { opcode = "\xf7";
    modrm = Some (modrm_byte ~md:3 ~reg:(group_f7_digit op) ~rm);
    sib = None; disp = ""; imm = "" }

let setcc c ~dst =
  check_reg dst;
  { opcode = Printf.sprintf "\x0f%c" (Char.chr (0x90 + cond_index c));
    modrm = Some (modrm_byte ~md:3 ~reg:0 ~rm:dst);
    sib = None; disp = ""; imm = "" }

(* ALU with the r, r/m direction bit: add dst, src as 0x03 /r etc. *)
let alu_opcode_load = function
  | Add -> 0x03 | Or -> 0x0b | And -> 0x23 | Sub -> 0x2b | Xor -> 0x33 | Cmp -> 0x3b

let alu_rr_load op ~dst ~src = reg_reg (alu_opcode_load op) ~reg:dst ~rm:src

let alu_opcode_rr = function
  | Add -> 0x01 | Or -> 0x09 | And -> 0x21 | Sub -> 0x29 | Xor -> 0x31 | Cmp -> 0x39

let alu_digit = function Add -> 0 | Or -> 1 | And -> 4 | Sub -> 5 | Xor -> 6 | Cmp -> 7

let alu_rr op ~dst ~src = reg_reg (alu_opcode_rr op) ~reg:src ~rm:dst

let alu_ri op ~dst v =
  check_reg dst;
  let digit = alu_digit op in
  let small = Int32.compare v (-128l) >= 0 && Int32.compare v 128l < 0 in
  let opbyte = if small then 0x83 else 0x81 in
  let imm = if small then byte8 (Int32.to_int v) else le32 v in
  { opcode = String.make 1 (Char.chr opbyte);
    modrm = Some (modrm_byte ~md:3 ~reg:digit ~rm:dst);
    sib = None; disp = ""; imm }

let test_rr a b = reg_reg 0x85 ~reg:b ~rm:a

let imul_rr ~dst ~src =
  check_reg dst;
  check_reg src;
  { opcode = "\x0f\xaf";
    modrm = Some (modrm_byte ~md:3 ~reg:dst ~rm:src);
    sib = None; disp = ""; imm = "" }

let shift_digit = function Shl -> 4 | Shr -> 5 | Sar -> 7

let shift_ri kind ~dst count =
  check_reg dst;
  assert (count >= 0 && count < 32);
  { opcode = "\xc1";
    modrm = Some (modrm_byte ~md:3 ~reg:(shift_digit kind) ~rm:dst);
    sib = None; disp = ""; imm = String.make 1 (Char.chr count) }

let call_rel v = { (plain 0xe8) with imm = le32 v }
let jmp_rel32 v = { (plain 0xe9) with imm = le32 v }
let jmp_rel8 v = { (plain 0xeb) with imm = byte8 v }
let jcc_rel8 c v = { (plain (0x70 + cond_index c)) with imm = byte8 v }

let jcc_rel32 c v =
  { opcode = Printf.sprintf "\x0f%c" (Char.chr (0x80 + cond_index c));
    modrm = None; sib = None; disp = ""; imm = le32 v }

let length i =
  String.length i.opcode
  + (match i.modrm with Some _ -> 1 | None -> 0)
  + (match i.sib with Some _ -> 1 | None -> 0)
  + String.length i.disp + String.length i.imm

let encode i =
  let b = Buffer.create (length i) in
  Buffer.add_string b i.opcode;
  (match i.modrm with Some m -> Buffer.add_char b (Char.chr m) | None -> ());
  (match i.sib with Some s -> Buffer.add_char b (Char.chr s) | None -> ());
  Buffer.add_string b i.disp;
  Buffer.add_string b i.imm;
  Buffer.contents b

let encode_program instrs =
  let b = Buffer.create 1024 in
  List.iter (fun i -> Buffer.add_string b (encode i)) instrs;
  Buffer.contents b

let decode bytes ~pos =
  let len = String.length bytes in
  let take n p = if p + n <= len then Some (String.sub bytes p n) else None in
  if pos >= len then None
  else
    let b0 = Char.code bytes.[pos] in
    let opcode_result =
      if b0 = 0x0f then
        if pos + 1 < len then
          let b1 = Char.code bytes.[pos + 1] in
          match shape_of_second b1 with
          | Some shape -> Some (String.sub bytes pos 2, shape)
          | None -> None
        else None
      else
        match shape_of_first b0 with
        | Some shape -> Some (String.sub bytes pos 1, shape)
        | None -> None
    in
    match opcode_result with
    | None -> None
    | Some (opcode, shape) -> (
      let p = pos + String.length opcode in
      match shape with
      | Plain ik -> (
        match take (imm_len ik) p with
        | Some imm ->
          Some ({ opcode; modrm = None; sib = None; disp = ""; imm }, p + imm_len ik)
        | None -> None)
      | With_modrm ik ->
        if p >= len then None
        else
          let modrm = Char.code bytes.[p] in
          let p = p + 1 in
          let has_sib, _ = modrm_layout modrm None in
          let sib, p =
            if has_sib then
              if p < len then (Some (Char.code bytes.[p]), p + 1) else (None, len + 1)
            else (None, p)
          in
          if p > len then None
          else
            let _, disp_n = modrm_layout modrm (Option.map (fun s -> s land 7) sib) in
            (match take disp_n p with
            | None -> None
            | Some disp -> (
              let p = p + disp_n in
              match take (imm_len ik) p with
              | None -> None
              | Some imm -> Some ({ opcode; modrm = Some modrm; sib; disp; imm }, p + imm_len ik))))

let decode_program bytes =
  let len = String.length bytes in
  let rec go acc pos =
    if pos = len then Some (List.rev acc)
    else
      match decode bytes ~pos with
      | Some (i, p) -> go (i :: acc) p
      | None -> None
  in
  go [] 0

let streams i =
  let ms =
    (match i.modrm with Some m -> String.make 1 (Char.chr m) | None -> "")
    ^ (match i.sib with Some s -> String.make 1 (Char.chr s) | None -> "")
  in
  (i.opcode, ms, i.disp ^ i.imm)

let rebuild ~opcode ~modrm_sib ~imm_disp =
  match shape_of_opcode opcode with
  | None -> None
  | Some (Plain ik) ->
    if String.length modrm_sib = 0 && String.length imm_disp = imm_len ik then
      Some { opcode; modrm = None; sib = None; disp = ""; imm = imm_disp }
    else None
  | Some (With_modrm ik) ->
    if String.length modrm_sib < 1 then None
    else
      let modrm = Char.code modrm_sib.[0] in
      let has_sib, _ = modrm_layout modrm None in
      let expected_ms = if has_sib then 2 else 1 in
      if String.length modrm_sib <> expected_ms then None
      else
        let sib = if has_sib then Some (Char.code modrm_sib.[1]) else None in
        let _, disp_n = modrm_layout modrm (Option.map (fun s -> s land 7) sib) in
        if String.length imm_disp <> disp_n + imm_len ik then None
        else
          Some
            { opcode; modrm = Some modrm; sib;
              disp = String.sub imm_disp 0 disp_n;
              imm = String.sub imm_disp disp_n (imm_len ik) }

(* Pull [n] bytes in order; explicit loop so the pull order is defined. *)
let pull n next =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (next ()))
  done;
  Bytes.to_string b

let read_streams ~opcode ~next_modrm_sib ~next_imm_disp =
  match shape_of_opcode opcode with
  | None -> None
  | Some (Plain ik) ->
    let imm = pull (imm_len ik) next_imm_disp in
    Some { opcode; modrm = None; sib = None; disp = ""; imm }
  | Some (With_modrm ik) ->
    let modrm = next_modrm_sib () in
    let has_sib, _ = modrm_layout modrm None in
    let sib = if has_sib then Some (next_modrm_sib ()) else None in
    let _, disp_n = modrm_layout modrm (Option.map (fun s -> s land 7) sib) in
    let disp = pull disp_n next_imm_disp in
    let imm = pull (imm_len ik) next_imm_disp in
    Some { opcode; modrm = Some modrm; sib; disp; imm }

let opcode_symbol i = Char.code i.opcode.[0]

let second_opcode i = if String.length i.opcode = 2 then Some (Char.code i.opcode.[1]) else None

let is_branch i =
  let b0 = opcode_symbol i in
  b0 = 0xe8 || b0 = 0xe9 || b0 = 0xeb
  || (b0 >= 0x70 && b0 <= 0x7f)
  || (b0 = 0x0f && match second_opcode i with Some b1 -> b1 >= 0x80 && b1 <= 0x8f | None -> false)

let hex s =
  String.concat "" (List.map (fun c -> Printf.sprintf "%02x" (Char.code c)) (List.init (String.length s) (String.get s)))

let mnemonic i =
  match opcode_symbol i with
  | 0x90 -> "nop" | 0xc3 -> "ret" | 0xc9 -> "leave"
  | b when b >= 0x40 && b <= 0x47 -> "inc"
  | b when b >= 0x48 && b <= 0x4f -> "dec"
  | b when b >= 0x50 && b <= 0x57 -> "push"
  | b when b >= 0x58 && b <= 0x5f -> "pop"
  | 0x89 | 0x8b -> "mov" | b when b >= 0xb8 && b <= 0xbf -> "mov"
  | 0x01 -> "add" | 0x09 -> "or" | 0x21 -> "and" | 0x29 -> "sub" | 0x31 -> "xor"
  | 0x39 -> "cmp" | 0x85 -> "test" | 0x8d -> "lea"
  | 0x81 | 0x83 -> "alu-imm" | 0xc1 -> "shift"
  | 0xe8 -> "call" | 0xe9 | 0xeb -> "jmp"
  | b when b >= 0x70 && b <= 0x7f -> "jcc"
  | 0x0f -> (match second_opcode i with Some 0xaf -> "imul" | Some _ -> "jcc" | None -> "?")
  | _ -> "?"

let to_string i = Printf.sprintf "%-6s [%s]" (mnemonic i) (hex (encode i))
