let ( let* ) = Result.bind

(* Operand grammar: reg = "$" digits; imm = [-]digits | 0x hex;
   mem = imm "(" reg ")". *)
type operand = Reg of int | Imm of int | Mem of int * int (* offset, base *)

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad integer %S" s)

let rec parse_operand s =
  let s = String.trim s in
  if s = "" then Error "empty operand"
  else if s.[0] = '$' then
    let* v = parse_int (String.sub s 1 (String.length s - 1)) in
    if v >= 0 && v < 32 then Ok (Reg v) else Error (Printf.sprintf "register %s out of range" s)
  else if String.contains s '(' then begin
    match String.index_opt s ')' with
    | Some close when close = String.length s - 1 ->
      let open_ = String.index s '(' in
      let* off = parse_int (String.sub s 0 open_) in
      let* base = parse_operand (String.sub s (open_ + 1) (close - open_ - 1)) in
      (match base with
      | Reg r -> Ok (Mem (off, r))
      | Imm _ | Mem _ -> Error (Printf.sprintf "bad base register in %S" s))
    | _ -> Error (Printf.sprintf "malformed memory operand %S" s)
  end
  else
    let* v = parse_int s in
    Ok (Imm v)

let split_operands s =
  if String.trim s = "" then []
  else List.map String.trim (String.split_on_char ',' s)

let u16 v = v land 0xffff

let build spec operands =
  let fail () =
    Error
      (Printf.sprintf "wrong operands for %s (%d given)" spec.Mips.mnemonic
         (List.length operands))
  in
  let ok i = Ok i in
  try
    match (spec.Mips.operands, operands) with
    | Mips.Op_none, [] -> ok (Mips.make spec ())
    | Mips.Op_rd_rs_rt, [ Reg rd; Reg rs; Reg rt ] -> ok (Mips.make spec ~rs ~rt ~rd ())
    | Mips.Op_rd_rt_shamt, [ Reg rd; Reg rt; Imm sh ] -> ok (Mips.make spec ~rt ~rd ~shamt:sh ())
    | Mips.Op_rd_rt_rs, [ Reg rd; Reg rt; Reg rs ] -> ok (Mips.make spec ~rs ~rt ~rd ())
    | Mips.Op_rs_rt, [ Reg rs; Reg rt ] -> ok (Mips.make spec ~rs ~rt ())
    | Mips.Op_rd, [ Reg rd ] -> ok (Mips.make spec ~rd ())
    | Mips.Op_rs, [ Reg rs ] -> ok (Mips.make spec ~rs ())
    | Mips.Op_rd_rs, [ Reg rd; Reg rs ] -> ok (Mips.make spec ~rs ~rd ())
    | Mips.Op_rt_rs_imm, [ Reg rt; Reg rs; Imm v ] -> ok (Mips.make spec ~rs ~rt ~imm:(u16 v) ())
    | Mips.Op_rt_imm, [ Reg rt; Imm v ] -> ok (Mips.make spec ~rt ~imm:(u16 v) ())
    | Mips.Op_rt_base_offset, [ Reg rt; Mem (off, rs) ] ->
      ok (Mips.make spec ~rs ~rt ~imm:(u16 off) ())
    | Mips.Op_rs_rt_branch, [ Reg rs; Reg rt; Imm v ] -> ok (Mips.make spec ~rs ~rt ~imm:(u16 v) ())
    | Mips.Op_rs_branch, [ Reg rs; Imm v ] -> ok (Mips.make spec ~rs ~imm:(u16 v) ())
    | Mips.Op_target, [ Imm v ] -> ok (Mips.make spec ~imm:(v land 0x3ffffff) ())
    | ( ( Mips.Op_none | Mips.Op_rd_rs_rt | Mips.Op_rd_rt_shamt | Mips.Op_rd_rt_rs | Mips.Op_rs_rt
        | Mips.Op_rd | Mips.Op_rs | Mips.Op_rd_rs | Mips.Op_rt_rs_imm | Mips.Op_rt_imm
        | Mips.Op_rt_base_offset | Mips.Op_rs_rt_branch | Mips.Op_rs_branch | Mips.Op_target ),
        _ ) ->
      fail ()
  with Invalid_argument e -> Error e

let parse_instruction line =
  let line = String.trim line in
  match String.index_opt line ' ' with
  | None -> (
    match Mips.spec_of_mnemonic line with
    | spec -> build spec []
    | exception Not_found -> Error (Printf.sprintf "unknown mnemonic %S" line))
  | Some sp -> (
    let mnemonic = String.sub line 0 sp in
    let rest = String.sub line sp (String.length line - sp) in
    match Mips.spec_of_mnemonic mnemonic with
    | exception Not_found -> Error (Printf.sprintf "unknown mnemonic %S" mnemonic)
    | spec ->
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | s :: rest ->
          let* op = parse_operand s in
          collect (op :: acc) rest
      in
      let* operands = collect [] (split_operands rest) in
      build spec operands)

let strip_comment line =
  match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line

let parse_program text =
  let lines = String.split_on_char '\n' text in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      let line = String.trim (strip_comment line) in
      if line = "" then go acc (lineno + 1) rest
      else
        match parse_instruction line with
        | Ok i -> go (i :: acc) (lineno + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
  in
  go [] 1 lines

let print_program ?(addresses = true) instrs =
  let b = Buffer.create (32 * List.length instrs) in
  List.iteri
    (fun k i ->
      if addresses then Buffer.add_string b (Printf.sprintf "%08x:  %08x  " (4 * k) (Mips.encode i));
      Buffer.add_string b (Mips.to_string i);
      Buffer.add_char b '\n')
    instrs;
  Buffer.contents b
