(* 16-bit unit layout: [op:4][a:3][b:3][c:6], most significant first.
   op 0xF is the escape prefix: the next two units carry the original
   32-bit instruction word (48 bits total for an escaped instruction).

   Short forms (registers must be in the hot set; offsets scaled by 4):
     0x0 ALU3   rd = rs op rt       a=rd b=rs c=(rt:3 | funct:3)
     0x1 ADDI   rt = rs + imm6      a=rt b=rs c=signed imm
     0x2 LW     rt = mem[rs+off]    a=rt b=rs c=off/4
     0x3 SW     mem[rs+off] = rt    a=rt b=rs c=off/4
     0x4 BZ     branch rs vs 0      a=rs b=cond c=signed offset6
     0x5 SHIFT  rd = rt shift sh    a=rd b=rt c=(kind:2 | shamt:4), shamt < 16
     0x6 JR     jump rs             a=rs
     0x7 LI     rt = imm9           a=rt (b,c)=signed imm9
     0x8 BEQ    a=rs b=rt c=signed offset6
     0x9 BNE    a=rs b=rt c=signed offset6
     0xA LWSP   rt = mem[sp+off]    a=rt (b=1: rt is $ra) c=off/4
     0xB SWSP   mem[sp+off] = rt    a=rt (b=1: rt is $ra) c=off/4
     0xC SPADJ  sp = sp + imm9*4    (b,c)=signed imm9
   JR (0x6) with b=1 encodes jr $ra, the return idiom.

   32-bit re-encoded forms (Thumb-2 style), avoiding the 48-bit wrap:
     0xE J32    [0xE|jal:1|pad:1|tgt<21:16>:6] [tgt<15:0>]   j/jal, 22-bit target
     0xD tag=0  [0xD|0|spec:6|rs:5] [rt:5|rd:5|shamt:5|0]    any R-format instruction
     0xD tag=1  [0xD|1|spec:6|rs:5] [rt:5|imm:11]            I-format, imm in [-1024,1024)
   Anything else escapes behind 0xF000 followed by the raw word. *)

(* The eight registers granted short encodings (allocation hot set). *)
let dense_regs = [| 4; 2; 3; 8; 9; 16; 10; 5 |]

let dense_index =
  let t = Array.make 32 (-1) in
  Array.iteri (fun i r -> t.(r) <- i) dense_regs;
  t

(* functs 0..5 are three-register ALU ops; 6 encodes mult (no rd) and 7
   encodes mflo (no sources). *)
let alu3_functs = [| "addu"; "subu"; "and"; "or"; "xor"; "slt" |]

let alu3_index m =
  let rec go i = if i = Array.length alu3_functs then -1 else if alu3_functs.(i) = m then i else go (i + 1) in
  go 0

let bz_conds = [| "blez"; "bgtz"; "bltz"; "bgez" |]

let bz_index m =
  let rec go i = if i = Array.length bz_conds then -1 else if bz_conds.(i) = m then i else go (i + 1) in
  go 0

let shift_kinds = [| "sll"; "srl"; "sra" |]

let shift_index m =
  let rec go i = if i = Array.length shift_kinds then -1 else if shift_kinds.(i) = m then i else go (i + 1) in
  go 0

let dreg r = if r < 32 && dense_index.(r) >= 0 then Some dense_index.(r) else None

let s6 v = if v >= 0x8000 then v - 0x10000 else v (* sign of 16-bit field *)

let fits_s6 v = v >= -32 && v < 32

let fits_s9 v = v >= -256 && v < 256

(* The 16-bit general form of an instruction, if it has one. *)
let general_form (i : Mips.t) =
  let m = i.Mips.spec.Mips.mnemonic in
  let alu = alu3_index m and bz = bz_index m and sh = shift_index m in
  if alu >= 0 then
    match (dreg i.Mips.rd, dreg i.Mips.rs, dreg i.Mips.rt) with
    | Some a, Some b, Some t -> Some (0x0, a, b, (t lsl 3) lor alu)
    | _ -> None
  else if m = "mult" then
    match (dreg i.Mips.rs, dreg i.Mips.rt) with
    | Some b, Some t -> Some (0x0, 0, b, (t lsl 3) lor 6)
    | _ -> None
  else if m = "mflo" then
    match dreg i.Mips.rd with Some a -> Some (0x0, a, 0, 7) | None -> None
  else if m = "addiu" && i.Mips.rs = 0 && fits_s9 (s6 i.Mips.imm) then
    (* li comes first: addiu rt, $0, imm *)
    match dreg i.Mips.rt with
    | Some a ->
      let v = s6 i.Mips.imm land 0x1ff in
      Some (0x7, a, (v lsr 6) land 7, v land 0x3f)
    | None -> None
  else if m = "addiu" && fits_s6 (s6 i.Mips.imm) then
    match (dreg i.Mips.rt, dreg i.Mips.rs) with
    | Some a, Some b -> Some (0x1, a, b, s6 i.Mips.imm land 0x3f)
    | _ -> None
  else if (m = "beq" || m = "bne") && fits_s6 (s6 i.Mips.imm) then
    match (dreg i.Mips.rs, dreg i.Mips.rt) with
    | Some a, Some b -> Some ((if m = "beq" then 0x8 else 0x9), a, b, s6 i.Mips.imm land 0x3f)
    | _ -> None
  else if (m = "lw" || m = "sw") && i.Mips.imm mod 4 = 0 && i.Mips.imm / 4 < 64 then
    match (dreg i.Mips.rt, dreg i.Mips.rs) with
    | Some a, Some b -> Some ((if m = "lw" then 0x2 else 0x3), a, b, i.Mips.imm / 4)
    | _ -> None
  else if bz >= 0 && fits_s6 (s6 i.Mips.imm) then
    match dreg i.Mips.rs with
    | Some a -> Some (0x4, a, bz, s6 i.Mips.imm land 0x3f)
    | None -> None
  else if sh >= 0 && i.Mips.shamt < 16 then
    match (dreg i.Mips.rd, dreg i.Mips.rt) with
    | Some a, Some b -> Some (0x5, a, b, (sh lsl 4) lor i.Mips.shamt)
    | _ -> None
  else if m = "jr" then begin
    if i.Mips.rs = 31 then Some (0x6, 0, 1, 0)
    else match dreg i.Mips.rs with Some a -> Some (0x6, a, 0, 0) | None -> None
  end
  else None

(* Stack-frame forms, tried before the generic ones. *)
let sp_form (i : Mips.t) =
  let m = i.Mips.spec.Mips.mnemonic in
  if (m = "lw" || m = "sw") && i.Mips.rs = 29 && i.Mips.imm mod 4 = 0 && i.Mips.imm / 4 < 64 then begin
    let op = if m = "lw" then 0xa else 0xb in
    if i.Mips.rt = 31 then Some (op, 0, 1, i.Mips.imm / 4)
    else
      match dreg i.Mips.rt with Some a -> Some (op, a, 0, i.Mips.imm / 4) | None -> None
  end
  else if m = "addiu" && i.Mips.rs = 29 && i.Mips.rt = 29 then begin
    let v = s6 i.Mips.imm in
    if v mod 4 = 0 && fits_s9 (v / 4) then
      let q = v / 4 land 0x1ff in
      Some (0xc, 0, (q lsr 6) land 7, q land 0x3f)
    else None
  end
  else None

(* A BL-style 32-bit jal form (prefix unit 0xE | target<15:12>, then a
   16-bit unit with target<15:0> — wait, targets up to 2^22 work: the
   prefix carries target<21:16>). *)
type form =
  | Unit of (int * int * int * int)
  | J32 of bool * int (* jal?, target *)
  | R32 of int * int * int * int * int (* spec id, rs, rt, rd, shamt *)
  | I32 of int * int * int * int (* spec id, rs, rt, signed imm *)

(* Is the instruction an R-format (registers/shamt only) one? *)
let is_r_format (i : Mips.t) =
  match i.Mips.spec.Mips.operands with
  | Mips.Op_none | Mips.Op_rd_rs_rt | Mips.Op_rd_rt_shamt | Mips.Op_rd_rt_rs | Mips.Op_rs_rt
  | Mips.Op_rd | Mips.Op_rs | Mips.Op_rd_rs ->
    true
  | Mips.Op_rt_rs_imm | Mips.Op_rt_imm | Mips.Op_rt_base_offset | Mips.Op_rs_rt_branch
  | Mips.Op_rs_branch | Mips.Op_target ->
    false

let is_i_format (i : Mips.t) = Option.is_some (Mips.immediate i)

let short_form (i : Mips.t) =
  match sp_form i with
  | Some f -> Some (Unit f)
  | None -> (
    match general_form i with
    | Some f -> Some (Unit f)
    | None ->
      let m = i.Mips.spec.Mips.mnemonic in
      if (m = "jal" || m = "j") && i.Mips.imm < 1 lsl 22 then Some (J32 (m = "jal", i.Mips.imm))
      else if is_r_format i then
        Some (R32 (i.Mips.spec.Mips.id, i.Mips.rs, i.Mips.rt, i.Mips.rd, i.Mips.shamt))
      else if is_i_format i then begin
        let v = s6 i.Mips.imm in
        if v >= -1024 && v < 1024 then Some (I32 (i.Mips.spec.Mips.id, i.Mips.rs, i.Mips.rt, v))
        else None
      end
      else None)

let encoded_bytes i =
  match short_form i with
  | Some (Unit _) -> 2
  | Some (J32 _ | R32 _ | I32 _) -> 4
  | None -> 6

let compressible i = encoded_bytes i = 2


let unit_of (op, a, b, c) = (op lsl 12) lor (a lsl 9) lor (b lsl 6) lor c

let encode_program instrs =
  let buf = Buffer.create (2 * List.length instrs) in
  let unit16 v =
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))
  in
  List.iter
    (fun i ->
      match short_form i with
      | Some (Unit form) -> unit16 (unit_of form)
      | Some (J32 (jal, target)) ->
        unit16 ((0xe lsl 12) lor ((if jal then 1 else 0) lsl 11) lor (target lsr 16));
        unit16 (target land 0xffff)
      | Some (R32 (id, rs, rt, rd, shamt)) ->
        unit16 ((0xd lsl 12) lor (id lsl 5) lor rs);
        unit16 ((rt lsl 11) lor (rd lsl 6) lor (shamt lsl 1))
      | Some (I32 (id, rs, rt, v)) ->
        unit16 ((0xd lsl 12) lor (1 lsl 11) lor (id lsl 5) lor rs);
        unit16 ((rt lsl 11) lor (v land 0x7ff))
      | None ->
        let w = Mips.encode i in
        unit16 (0xf lsl 12);
        unit16 ((w lsr 16) land 0xffff);
        unit16 (w land 0xffff))
    instrs;
  Buffer.contents buf

let spec = Mips.spec_of_mnemonic

let sign6 c = if c >= 32 then c - 64 else c

let expand (op, a, b, c) =
  let reg i = dense_regs.(i) in
  match op with
  | 0x0 ->
    let funct = c land 7 and t = c lsr 3 in
    if funct < Array.length alu3_functs then
      Some (Mips.make (spec alu3_functs.(funct)) ~rs:(reg b) ~rt:(reg t) ~rd:(reg a) ())
    else if funct = 6 && a = 0 then Some (Mips.make (spec "mult") ~rs:(reg b) ~rt:(reg t) ())
    else if funct = 7 && b = 0 && c lsr 3 = 0 then Some (Mips.make (spec "mflo") ~rd:(reg a) ())
    else None
  | 0x1 -> Some (Mips.make (spec "addiu") ~rs:(reg b) ~rt:(reg a) ~imm:(sign6 c land 0xffff) ())
  | 0x2 -> Some (Mips.make (spec "lw") ~rs:(reg b) ~rt:(reg a) ~imm:(4 * c) ())
  | 0x3 -> Some (Mips.make (spec "sw") ~rs:(reg b) ~rt:(reg a) ~imm:(4 * c) ())
  | 0x4 when b < Array.length bz_conds ->
    Some (Mips.make (spec bz_conds.(b)) ~rs:(reg a) ~imm:(sign6 c land 0xffff) ())
  | 0x5 ->
    let kind = c lsr 4 and shamt = c land 0xf in
    if kind < Array.length shift_kinds then
      Some (Mips.make (spec shift_kinds.(kind)) ~rt:(reg b) ~rd:(reg a) ~shamt ())
    else None
  | 0x6 when c = 0 && b <= 1 ->
    Some (Mips.make (spec "jr") ~rs:(if b = 1 then 31 else reg a) ())
  | 0x7 ->
    let v = (b lsl 6) lor c in
    let v = if v >= 256 then v - 512 else v in
    Some (Mips.make (spec "addiu") ~rs:0 ~rt:(reg a) ~imm:(v land 0xffff) ())
  | 0x8 -> Some (Mips.make (spec "beq") ~rs:(reg a) ~rt:(reg b) ~imm:(sign6 c land 0xffff) ())
  | 0x9 -> Some (Mips.make (spec "bne") ~rs:(reg a) ~rt:(reg b) ~imm:(sign6 c land 0xffff) ())
  | 0xa | 0xb when b <= 1 ->
    let rt = if b = 1 then 31 else reg a in
    Some (Mips.make (spec (if op = 0xa then "lw" else "sw")) ~rs:29 ~rt ~imm:(4 * c) ())
  | 0xc when a = 0 ->
    let q = (b lsl 6) lor c in
    let q = if q >= 256 then q - 512 else q in
    Some (Mips.make (spec "addiu") ~rs:29 ~rt:29 ~imm:(4 * q land 0xffff) ())
  | _ -> None

let decode_program data =
  let n = String.length data in
  if n mod 2 <> 0 then None
  else begin
    let unit_at k = (Char.code data.[2 * k] lsl 8) lor Char.code data.[(2 * k) + 1] in
    let units = n / 2 in
    let rec go acc k =
      if k = units then Some (List.rev acc)
      else
        let u = unit_at k in
        if u lsr 12 = 0xf then
          if u <> 0xf lsl 12 then None (* escape units carry no payload *)
          else if k + 2 >= units then None (* truncated escape *)
          else
            let w = (unit_at (k + 1) lsl 16) lor unit_at (k + 2) in
            (match Mips.decode w with
            | Some i -> go (i :: acc) (k + 3)
            | None -> None)
        else if u lsr 12 = 0xe then
          if k + 1 >= units then None
          else
            let target = ((u land 0x3f) lsl 16) lor unit_at (k + 1) in
            let m = if (u lsr 11) land 1 = 1 then "jal" else "j" in
            go (Mips.make (spec m) ~imm:target () :: acc) (k + 2)
        else if u lsr 12 = 0xd then begin
          if k + 1 >= units then None
          else
            let id = (u lsr 5) land 0x3f and rs = u land 0x1f in
            let u2 = unit_at (k + 1) in
            if id >= Mips.opcode_count then None
            else
              let sp_ = Mips.specs.(id) in
              let rebuild =
                if (u lsr 11) land 1 = 0 then begin
                  if u2 land 1 <> 0 then None
                  else
                    let rt = (u2 lsr 11) land 0x1f and rd = (u2 lsr 6) land 0x1f in
                    let shamt = (u2 lsr 1) land 0x1f in
                    try Some (Mips.make sp_ ~rs ~rt ~rd ~shamt ()) with Invalid_argument _ -> None
                end
                else begin
                  let rt = (u2 lsr 11) land 0x1f in
                  let v = u2 land 0x7ff in
                  let v = if v >= 1024 then v - 2048 else v in
                  try Some (Mips.make sp_ ~rs ~rt ~imm:(v land 0xffff) ())
                  with Invalid_argument _ -> None
                end
              in
              match rebuild with Some i -> go (i :: acc) (k + 2) | None -> None
        end
        else
          let form = (u lsr 12, (u lsr 9) land 7, (u lsr 6) land 7, u land 0x3f) in
          match expand form with Some i -> go (i :: acc) (k + 1) | None -> None
    in
    go [] 0
  end

let ratio instrs =
  let n = List.length instrs in
  if n = 0 then 1.0
  else float_of_int (String.length (encode_program instrs)) /. float_of_int (4 * n)

type stats = { instructions : int; half_forms : int; word_forms : int; escaped : int }

let stats instrs =
  let half = ref 0 and word = ref 0 and esc = ref 0 in
  List.iter
    (fun i ->
      match encoded_bytes i with
      | 2 -> incr half
      | 4 -> incr word
      | _ -> incr esc)
    instrs;
  { instructions = List.length instrs; half_forms = !half; word_forms = !word; escaped = !esc }
