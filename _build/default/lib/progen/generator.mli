(** Synthetic program generation.

    Builds an {!Ir.program} from a {!Profile.t} and a seed. Generation is
    idiom-based: functions are sequences of basic blocks whose bodies are
    drawn from a library of compiler-typical instruction idioms
    (load-modify-store, array indexing, accumulation, call sequences, …).
    Three profile-controlled mechanisms create the redundancy that real
    compiled code exhibits and that the paper's algorithms exploit:

    - {e regularity}: within a function, idiom instances are re-emitted
      (opcode n-gram repetition — SADC's dictionary channel);
    - {e cloning}: whole functions are mutated copies of earlier ones
      (long repeated byte runs — the gzip/LZ channel);
    - {e register locality}: a small register pool biased toward a few hot
      registers (field-level bias — SAMC's Markov channel). *)

val generate : ?scale:float -> seed:int64 -> Profile.t -> Ir.program
(** [generate ~seed profile] builds a program of roughly
    [profile.target_ops *. scale] IR operations (default [scale] 1.0).
    The result always passes {!Ir.validate}. *)
