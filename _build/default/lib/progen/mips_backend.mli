(** Lowering of the synthetic IR to the MIPS subset.

    Produces the instruction sequence a simple compiler would emit:
    prologue/epilogue idioms around each function body, two-instruction
    [lui]/[ori] pairs for 32-bit constants, [mult]/[mflo] pairs for
    multiplies, and PC-relative branch / absolute jump targets resolved in
    a second pass. *)

val lower : Ir.program -> Ccomp_isa.Mips.t list * Layout.t
(** [lower p] returns the program's instructions in layout order together
    with the layout/trace structure. The encoded image is
    [Ccomp_isa.Mips.encode_program] of the instruction list and equals
    [(fst (lower p) |> encode_program) = (snd (lower p)).code]. *)
