type vreg = int
type width = W8 | W16 | W32
type binop = Add | Sub | And | Or | Xor | Mul | Slt
type shift_kind = Lsl | Lsr | Asr
type cond = Eq | Ne | Lez | Gtz | Ltz | Gez

type op =
  | Loadi of vreg * int
  | Binop of binop * vreg * vreg * vreg
  | Binopi of binop * vreg * vreg * int
  | Shift of shift_kind * vreg * vreg * int
  | Load of width * bool * vreg * vreg * int
  | Load_indexed of width * vreg * vreg * vreg * int
  | Store of width * vreg * vreg * int
  | Call of int

type terminator = Fallthrough | Goto of int | Cond of cond * vreg * vreg * int * float | Ret

type block = { body : op list; term : terminator }

type func = { blocks : block array; locals : int; frame_slots : int; saves : int }

type program = { funcs : func array; entry : int }

let op_count p =
  Array.fold_left
    (fun acc f -> Array.fold_left (fun acc b -> acc + List.length b.body + 1) acc f.blocks)
    0 p.funcs

let validate p =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let nfuncs = Array.length p.funcs in
  if nfuncs = 0 then err "empty program"
  else if p.entry < 0 || p.entry >= nfuncs then err "entry out of range"
  else
    let check_func fi f =
      let nblocks = Array.length f.blocks in
      if nblocks = 0 then err "function %d has no blocks" fi
      else
        let check_vreg v = v >= 0 && v < f.locals in
        let check_op = function
          | Loadi (d, _) -> check_vreg d
          | Binop (_, d, a, b) -> check_vreg d && check_vreg a && check_vreg b
          | Binopi (_, d, a, _) -> check_vreg d && check_vreg a
          | Shift (_, d, a, s) -> check_vreg d && check_vreg a && s >= 0 && s < 32
          | Load (_, _, d, b, _) -> check_vreg d && check_vreg b
          | Load_indexed (_, d, b, i, sh) ->
            check_vreg d && check_vreg b && check_vreg i && sh >= 0 && sh <= 3
          | Store (_, s, b, _) -> check_vreg s && check_vreg b
          | Call c -> c >= 0 && c < nfuncs
        in
        let check_block bi b =
          if not (List.for_all check_op b.body) then
            err "function %d block %d: bad operand" fi bi
          else
            match b.term with
            | Fallthrough ->
              if bi + 1 >= nblocks then err "function %d block %d: falls off the end" fi bi
              else Ok ()
            | Goto t ->
              if t < 0 || t >= nblocks then err "function %d block %d: goto out of range" fi bi
              else Ok ()
            | Cond (_, a, c, t, prob) ->
              if not (check_vreg a && check_vreg c) then
                err "function %d block %d: bad branch operand" fi bi
              else if t < 0 || t >= nblocks then
                err "function %d block %d: branch target out of range" fi bi
              else if bi + 1 >= nblocks then
                err "function %d block %d: conditional branch falls off the end" fi bi
              else if prob < 0.0 || prob > 1.0 then
                err "function %d block %d: bad branch probability" fi bi
              else Ok ()
            | Ret -> Ok ()
        in
        let rec blocks bi =
          if bi = nblocks then Ok ()
          else
            match check_block bi f.blocks.(bi) with Ok () -> blocks (bi + 1) | Error e -> Error e
        in
        blocks 0
    in
    let rec funcs fi =
      if fi = nfuncs then Ok ()
      else match check_func fi p.funcs.(fi) with Ok () -> funcs (fi + 1) | Error e -> Error e
    in
    funcs 0
