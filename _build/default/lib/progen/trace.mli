(** Instruction-fetch address traces.

    Walks the program's control-flow graph — taking conditional branches
    with the probabilities recorded in the IR, following calls and returns
    through an explicit stack — and emits the addresses the CPU would fetch
    under the given layout. These traces drive the Wolfe–Chanin memory
    system simulation (experiment E4). *)

val generate : Ir.program -> Layout.t -> seed:int64 -> length:int -> int array
(** [generate p layout ~seed ~length] produces [length] fetch addresses,
    starting at the program entry and restarting there whenever the walk
    runs off the end (the embedded main loop). Call depth is capped; calls
    beyond the cap are skipped, as if inlined. *)
