lib/progen/mips_backend.mli: Ccomp_isa Ir Layout
