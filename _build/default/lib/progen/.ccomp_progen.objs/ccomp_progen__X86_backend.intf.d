lib/progen/x86_backend.mli: Ccomp_isa Ir Layout
