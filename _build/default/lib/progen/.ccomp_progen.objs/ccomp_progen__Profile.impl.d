lib/progen/profile.ml: Array
