lib/progen/ir.mli:
