lib/progen/mips_backend.ml: Array Ccomp_isa Ir Layout List
