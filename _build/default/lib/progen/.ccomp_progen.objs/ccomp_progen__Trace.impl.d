lib/progen/trace.ml: Array Ccomp_util Ir Layout List
