lib/progen/generator.mli: Ir Profile
