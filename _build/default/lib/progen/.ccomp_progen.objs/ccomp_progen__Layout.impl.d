lib/progen/layout.ml: String
