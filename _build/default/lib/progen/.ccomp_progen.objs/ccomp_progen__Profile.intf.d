lib/progen/profile.mli:
