lib/progen/generator.ml: Array Ccomp_util Ir List Profile
