lib/progen/x86_backend.ml: Array Ccomp_isa Int32 Ir Layout List
