lib/progen/ir.ml: Array List Printf
