lib/progen/layout.mli:
