lib/progen/trace.mli: Ir Layout
