type t = {
  name : string;
  target_ops : int;
  functions : int;
  reg_pool : int;
  loop_fraction : float;
  clone_rate : float;
  mutation_rate : float;
  regularity : float;
  imm_small_bias : float;
  large_const_rate : float;
  mem_weight : int;
  alu_weight : int;
  mul_weight : int;
  call_weight : int;
}

(* Two families:
   - floating-point kernels (applu, apsi, fpppp, hydro2d, mgrid, su2cor,
     swim, tomcatv, turb3d, wave5): regular unrolled loop nests, few
     functions, heavy memory traffic, much cloned code;
   - integer codes (compress, gcc, go, ijpeg, m88ksim, perl, vortex,
     xlisp): many small irregular functions, more control flow and calls.
   Sizes are SPEC95 text sizes scaled to keep the whole suite tractable;
   relative ordering (gcc/vortex large, compress/tomcatv small) is kept. *)

let fp ~name ~ops ~funcs ~regular ~clone =
  {
    name;
    target_ops = ops;
    functions = funcs;
    reg_pool = 14;
    loop_fraction = 0.55;
    clone_rate = clone;
    mutation_rate = 0.08;
    regularity = regular;
    imm_small_bias = 0.55;
    large_const_rate = 0.15;
    mem_weight = 5;
    alu_weight = 6;
    mul_weight = 3;
    call_weight = 1;
  }

let int_ ~name ~ops ~funcs ~regular ~clone ~pool =
  {
    name;
    target_ops = ops;
    functions = funcs;
    reg_pool = pool;
    loop_fraction = 0.30;
    clone_rate = clone;
    mutation_rate = 0.20;
    regularity = regular;
    imm_small_bias = 0.70;
    large_const_rate = 0.30;
    mem_weight = 4;
    alu_weight = 5;
    mul_weight = 1;
    call_weight = 3;
  }

let spec95 =
  [|
    fp ~name:"applu" ~ops:11000 ~funcs:16 ~regular:0.55 ~clone:0.45;
    fp ~name:"apsi" ~ops:14000 ~funcs:40 ~regular:0.50 ~clone:0.40;
    int_ ~name:"compress" ~ops:2600 ~funcs:16 ~regular:0.35 ~clone:0.15 ~pool:16;
    fp ~name:"fpppp" ~ops:17000 ~funcs:12 ~regular:0.60 ~clone:0.50;
    int_ ~name:"gcc" ~ops:52000 ~funcs:420 ~regular:0.30 ~clone:0.25 ~pool:18;
    int_ ~name:"go" ~ops:24000 ~funcs:130 ~regular:0.32 ~clone:0.20 ~pool:18;
    fp ~name:"hydro2d" ~ops:10500 ~funcs:32 ~regular:0.52 ~clone:0.42;
    int_ ~name:"ijpeg" ~ops:12500 ~funcs:90 ~regular:0.42 ~clone:0.30 ~pool:16;
    int_ ~name:"m88ksim" ~ops:9500 ~funcs:80 ~regular:0.38 ~clone:0.28 ~pool:16;
    fp ~name:"mgrid" ~ops:5200 ~funcs:10 ~regular:0.60 ~clone:0.50;
    int_ ~name:"perl" ~ops:19000 ~funcs:140 ~regular:0.33 ~clone:0.26 ~pool:18;
    fp ~name:"su2cor" ~ops:9500 ~funcs:26 ~regular:0.52 ~clone:0.42;
    fp ~name:"swim" ~ops:3800 ~funcs:8 ~regular:0.65 ~clone:0.55;
    fp ~name:"tomcatv" ~ops:3200 ~funcs:6 ~regular:0.65 ~clone:0.55;
    fp ~name:"turb3d" ~ops:10500 ~funcs:24 ~regular:0.52 ~clone:0.42;
    int_ ~name:"vortex" ~ops:30000 ~funcs:300 ~regular:0.40 ~clone:0.35 ~pool:16;
    fp ~name:"wave5" ~ops:13000 ~funcs:30 ~regular:0.50 ~clone:0.40;
    int_ ~name:"xlisp" ~ops:7200 ~funcs:110 ~regular:0.40 ~clone:0.32 ~pool:14;
  |]

(* Embedded firmware: small images, tight loops, handler tables, very
   little whole-function duplication (no template bloat, one author). *)
let emb ~name ~ops ~funcs ~loopy ~regular ~calls =
  {
    name;
    target_ops = ops;
    functions = funcs;
    reg_pool = 10;
    loop_fraction = loopy;
    clone_rate = 0.06;
    mutation_rate = 0.25;
    regularity = regular;
    imm_small_bias = 0.75;
    large_const_rate = 0.20; (* memory-mapped register addresses *)
    mem_weight = 5;
    alu_weight = 5;
    mul_weight = 1;
    call_weight = calls;
  }

let embedded =
  [|
    emb ~name:"rtos" ~ops:3600 ~funcs:60 ~loopy:0.22 ~regular:0.30 ~calls:4;
    emb ~name:"dsp-filter" ~ops:1800 ~funcs:10 ~loopy:0.60 ~regular:0.55 ~calls:1;
    emb ~name:"protocol" ~ops:4200 ~funcs:50 ~loopy:0.28 ~regular:0.35 ~calls:3;
    emb ~name:"motor-ctl" ~ops:1400 ~funcs:16 ~loopy:0.40 ~regular:0.40 ~calls:2;
    emb ~name:"cipher" ~ops:2200 ~funcs:8 ~loopy:0.50 ~regular:0.60 ~calls:1;
    emb ~name:"bootloader" ~ops:900 ~funcs:12 ~loopy:0.30 ~regular:0.35 ~calls:2;
  |]

let all () = Array.append spec95 embedded

let find name =
  match Array.find_opt (fun p -> p.name = name) (all ()) with
  | Some p -> p
  | None -> raise Not_found

let names () = Array.to_list (Array.map (fun p -> p.name) (all ()))
