module M = Ccomp_isa.Mips

(* Physical register order by allocation priority: return value, argument
   and temporary registers first, then callee-saved. *)
let reg_order = [| 4; 2; 3; 8; 9; 16; 10; 5; 17; 11; 12; 18; 6; 13; 19; 7; 14; 20; 15; 21; 22; 23 |]

let sp = 29
let ra = 31
let at = 1

let spec = M.spec_of_mnemonic

let s_addiu = spec "addiu"
let s_lui = spec "lui"
let s_ori = spec "ori"
let s_andi = spec "andi"
let s_xori = spec "xori"
let s_slti = spec "slti"
let s_addu = spec "addu"
let s_subu = spec "subu"
let s_and = spec "and"
let s_or = spec "or"
let s_xor = spec "xor"
let s_slt = spec "slt"
let s_mult = spec "mult"
let s_mflo = spec "mflo"
let s_sll = spec "sll"
let s_srl = spec "srl"
let s_sra = spec "sra"
let s_jr = spec "jr"
let s_j = spec "j"
let s_jal = spec "jal"
let s_beq = spec "beq"
let s_bne = spec "bne"
let s_blez = spec "blez"
let s_bgtz = spec "bgtz"
let s_bltz = spec "bltz"
let s_bgez = spec "bgez"
let s_lw = spec "lw"
let s_sw = spec "sw"

(* Instructions whose target fields are resolved once block addresses are
   known; block targets carry the owning function index. *)
type pending =
  | Ins of M.t
  | Branch_to of M.spec * int * int * int * int (* spec, rs, rt, func, target block *)
  | Jump_to of int * int (* func, target block (always via j) *)
  | Call_to of int (* jal, target function *)

let u16 v = v land 0xffff

let load_spec w signed =
  match (w, signed) with
  | Ir.W8, true -> spec "lb"
  | Ir.W8, false -> spec "lbu"
  | Ir.W16, true -> spec "lh"
  | Ir.W16, false -> spec "lhu"
  | Ir.W32, _ -> s_lw

let store_spec = function Ir.W8 -> spec "sb" | Ir.W16 -> spec "sh" | Ir.W32 -> s_sw

let li d c =
  if c >= -32768 && c < 32768 then [ Ins (M.make s_addiu ~rs:0 ~rt:d ~imm:(u16 c) ()) ]
  else
    let hi = u16 (c asr 16) and lo = u16 c in
    if lo = 0 then [ Ins (M.make s_lui ~rt:d ~imm:hi ()) ]
    else [ Ins (M.make s_lui ~rt:d ~imm:hi ()); Ins (M.make s_ori ~rs:d ~rt:d ~imm:lo ()) ]

let binop_spec = function
  | Ir.Add -> s_addu
  | Ir.Sub -> s_subu
  | Ir.And -> s_and
  | Ir.Or -> s_or
  | Ir.Xor -> s_xor
  | Ir.Slt -> s_slt
  | Ir.Mul -> assert false

let shift_spec = function Ir.Lsl -> s_sll | Ir.Lsr -> s_srl | Ir.Asr -> s_sra

let phys v = reg_order.(v)

let lower_op op =
  match op with
  | Ir.Loadi (d, c) -> li (phys d) c
  | Ir.Binop (Mul, d, a, b) ->
    [ Ins (M.make s_mult ~rs:(phys a) ~rt:(phys b) ()); Ins (M.make s_mflo ~rd:(phys d) ()) ]
  | Ir.Binop (k, d, a, b) ->
    [ Ins (M.make (binop_spec k) ~rs:(phys a) ~rt:(phys b) ~rd:(phys d) ()) ]
  | Ir.Binopi (Add, d, a, c) -> [ Ins (M.make s_addiu ~rs:(phys a) ~rt:(phys d) ~imm:(u16 c) ()) ]
  | Ir.Binopi (Sub, d, a, c) ->
    [ Ins (M.make s_addiu ~rs:(phys a) ~rt:(phys d) ~imm:(u16 (-c)) ()) ]
  | Ir.Binopi (And, d, a, c) -> [ Ins (M.make s_andi ~rs:(phys a) ~rt:(phys d) ~imm:(u16 c) ()) ]
  | Ir.Binopi (Or, d, a, c) -> [ Ins (M.make s_ori ~rs:(phys a) ~rt:(phys d) ~imm:(u16 c) ()) ]
  | Ir.Binopi (Xor, d, a, c) -> [ Ins (M.make s_xori ~rs:(phys a) ~rt:(phys d) ~imm:(u16 c) ()) ]
  | Ir.Binopi (Slt, d, a, c) -> [ Ins (M.make s_slti ~rs:(phys a) ~rt:(phys d) ~imm:(u16 c) ()) ]
  | Ir.Binopi (Mul, d, a, c) ->
    li at c
    @ [ Ins (M.make s_mult ~rs:(phys a) ~rt:at ()); Ins (M.make s_mflo ~rd:(phys d) ()) ]
  | Ir.Shift (k, d, a, s) ->
    [ Ins (M.make (shift_spec k) ~rt:(phys a) ~rd:(phys d) ~shamt:(s land 31) ()) ]
  | Ir.Load (w, signed, d, b, off) ->
    [ Ins (M.make (load_spec w signed) ~rs:(phys b) ~rt:(phys d) ~imm:(u16 off) ()) ]
  | Ir.Load_indexed (w, d, b, i, sh) ->
    (* no scaled addressing on MIPS: shift into $at, add the base, load *)
    [
      Ins (M.make s_sll ~rt:(phys i) ~rd:at ~shamt:sh ());
      Ins (M.make s_addu ~rs:at ~rt:(phys b) ~rd:at ());
      Ins (M.make (load_spec w false) ~rs:at ~rt:(phys d) ());
    ]
  | Ir.Store (w, s, b, off) ->
    [ Ins (M.make (store_spec w) ~rs:(phys b) ~rt:(phys s) ~imm:(u16 off) ()) ]
  | Ir.Call f -> [ Call_to f ]

let lower_term fi (term : Ir.terminator) ~frame ~saves =
  match term with
  | Ir.Fallthrough -> []
  | Ir.Goto t -> [ Jump_to (fi, t) ]
  | Ir.Cond (c, a, b, t, _) -> (
    match c with
    | Ir.Eq -> [ Branch_to (s_beq, phys a, phys b, fi, t) ]
    | Ir.Ne -> [ Branch_to (s_bne, phys a, phys b, fi, t) ]
    | Ir.Lez -> [ Branch_to (s_blez, phys a, 0, fi, t) ]
    | Ir.Gtz -> [ Branch_to (s_bgtz, phys a, 0, fi, t) ]
    | Ir.Ltz -> [ Branch_to (s_bltz, phys a, 0, fi, t) ]
    | Ir.Gez -> [ Branch_to (s_bgez, phys a, 0, fi, t) ])
  | Ir.Ret ->
    let restores =
      List.init saves (fun i ->
          Ins (M.make s_lw ~rs:sp ~rt:(16 + i) ~imm:(u16 (frame - 8 - (4 * i))) ()))
    in
    restores
    @ [
        Ins (M.make s_lw ~rs:sp ~rt:ra ~imm:(u16 (frame - 4)) ());
        Ins (M.make s_addiu ~rs:sp ~rt:sp ~imm:(u16 frame) ());
        Ins (M.make s_jr ~rs:ra ());
      ]

let prologue ~frame ~saves =
  let stores =
    List.init saves (fun i ->
        Ins (M.make s_sw ~rs:sp ~rt:(16 + i) ~imm:(u16 (frame - 8 - (4 * i))) ()))
  in
  Ins (M.make s_addiu ~rs:sp ~rt:sp ~imm:(u16 (-frame)) ())
  :: Ins (M.make s_sw ~rs:sp ~rt:ra ~imm:(u16 (frame - 4)) ())
  :: stores

type raw_seg = Run of int * int | Call_seg of int

let lower (p : Ir.program) =
  let nfuncs = Array.length p.funcs in
  let pendings = ref [] (* reversed *) in
  let count = ref 0 in
  let emit ps =
    List.iter
      (fun x ->
        pendings := x :: !pendings;
        incr count)
      ps
  in
  let block_start = Array.map (fun f -> Array.make (Array.length f.Ir.blocks) 0) p.funcs in
  let raw_segs = Array.map (fun f -> Array.make (Array.length f.Ir.blocks) []) p.funcs in
  for fi = 0 to nfuncs - 1 do
    let f = p.funcs.(fi) in
    let frame = (f.frame_slots + f.saves + 2) * 4 in
    Array.iteri
      (fun bi (b : Ir.block) ->
        block_start.(fi).(bi) <- !count;
        let segs = ref [] in
        let run_start = ref !count in
        let close_run () =
          if !count > !run_start then segs := Run (!run_start, !count - !run_start) :: !segs;
          run_start := !count
        in
        if bi = 0 then emit (prologue ~frame ~saves:f.saves);
        List.iter
          (fun op ->
            match op with
            | Ir.Call callee ->
              emit (lower_op op);
              close_run ();
              segs := Call_seg callee :: !segs
            | Ir.Loadi _ | Ir.Binop _ | Ir.Binopi _ | Ir.Shift _ | Ir.Load _ | Ir.Load_indexed _
            | Ir.Store _ ->
              emit (lower_op op))
          b.body;
        emit (lower_term fi b.term ~frame ~saves:f.saves);
        close_run ();
        raw_segs.(fi).(bi) <- List.rev !segs)
      f.blocks
  done;
  let addr_of_block fi bi = 4 * block_start.(fi).(bi) in
  let resolve idx pd =
    match pd with
    | Ins i -> i
    | Branch_to (sp_, rs, rt, fi, bi) ->
      (* PC-relative word offset from the delay-slot position. *)
      let offset = (addr_of_block fi bi - ((4 * idx) + 4)) asr 2 in
      M.make sp_ ~rs ~rt ~imm:(u16 offset) ()
    | Jump_to (fi, bi) -> M.make s_j ~imm:(addr_of_block fi bi asr 2 land 0x3ffffff) ()
    | Call_to fj -> M.make s_jal ~imm:(addr_of_block fj 0 asr 2 land 0x3ffffff) ()
  in
  let instrs = List.rev !pendings |> Array.of_list |> Array.mapi resolve in
  let instr_list = Array.to_list instrs in
  let code = M.encode_program instr_list in
  (* The jal target above points at block 0 of the callee, but a call
     lands on the prologue which precedes block 0's body; block_start is
     recorded before the prologue is emitted, so the address is right. *)
  let to_layout_seg = function
    | Run (start, len) -> Layout.Fetch (Array.init len (fun i -> 4 * (start + i)))
    | Call_seg fj -> Layout.Call fj
  in
  let blocks = Array.map (Array.map (List.map to_layout_seg)) raw_segs in
  let func_entry_addr = Array.init nfuncs (fun fi -> addr_of_block fi 0) in
  (instr_list, { Layout.code; func_entry_addr; blocks })
