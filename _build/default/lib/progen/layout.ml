type seg = Fetch of int array | Call of int

type block_exec = seg list

type t = {
  code : string;
  func_entry_addr : int array;
  blocks : block_exec array array;
}

let code_size t = String.length t.code
