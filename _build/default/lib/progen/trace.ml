module Prng = Ccomp_util.Prng

let max_call_depth = 48

let generate (p : Ir.program) (layout : Layout.t) ~seed ~length =
  let g = Prng.create seed in
  let out = Array.make length 0 in
  let n = ref 0 in
  (* Continuation stack: (function, block, remaining segments of block). *)
  let stack = ref [] in
  let emit addr =
    if !n < length then begin
      out.(!n) <- addr;
      incr n
    end
  in
  (* Execute from (fi, bi, segs); returns when the trace is full. The walk
     is iterative to bound OCaml stack use on long traces. *)
  let fi = ref p.entry in
  let bi = ref 0 in
  let segs = ref (layout.blocks.(!fi).(!bi)) in
  let enter f b =
    fi := f;
    bi := b;
    segs := layout.blocks.(f).(b)
  in
  let after_block () =
    let f = p.funcs.(!fi) in
    match f.blocks.(!bi).term with
    | Ir.Fallthrough -> enter !fi (!bi + 1)
    | Ir.Goto t -> enter !fi t
    | Ir.Cond (_, _, _, t, prob) ->
      if Prng.float g < prob then enter !fi t else enter !fi (!bi + 1)
    | Ir.Ret -> (
      match !stack with
      | (rf, rb, rsegs) :: rest ->
        stack := rest;
        fi := rf;
        bi := rb;
        segs := rsegs
      | [] -> enter p.entry 0)
  in
  while !n < length do
    match !segs with
    | [] -> after_block ()
    | Layout.Fetch addrs :: rest ->
      Array.iter emit addrs;
      segs := rest
    | Layout.Call callee :: rest ->
      if List.length !stack >= max_call_depth then segs := rest
      else begin
        stack := (!fi, !bi, rest) :: !stack;
        enter callee 0
      end
  done;
  out
