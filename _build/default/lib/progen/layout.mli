(** Code layout produced by a backend: the byte image plus the execution
    structure needed to drive the memory-system simulator with realistic
    instruction-fetch address traces. *)

type seg =
  | Fetch of int array
      (** addresses of consecutively fetched instructions *)
  | Call of int  (** transfer to a function (by index), then resume *)

type block_exec = seg list
(** What executing one basic block fetches, in order. *)

type t = {
  code : string;  (** raw instruction bytes, starting at address 0 *)
  func_entry_addr : int array;  (** entry address of each function *)
  blocks : block_exec array array;  (** [blocks.(f).(b)] per IR block *)
}

val code_size : t -> int
