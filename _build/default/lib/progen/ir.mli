(** Compiler-style intermediate representation for synthetic programs.

    The workload generator builds programs at this level; the MIPS and x86
    backends lower the same IR, so the two evaluation suites (Figs. 7/8)
    see the same abstract workloads, exactly as the paper compiles one
    SPEC95 source per architecture. *)

type vreg = int
(** Virtual register index (function-local). *)

type width = W8 | W16 | W32
(** Memory access width. *)

type binop = Add | Sub | And | Or | Xor | Mul | Slt

type shift_kind = Lsl | Lsr | Asr

type cond = Eq | Ne | Lez | Gtz | Ltz | Gez
(** Branch conditions; [Eq]/[Ne] compare two registers, the others compare
    one register against zero (the MIPS branch repertoire). *)

type op =
  | Loadi of vreg * int  (** materialise a constant *)
  | Binop of binop * vreg * vreg * vreg  (** dst, src1, src2 *)
  | Binopi of binop * vreg * vreg * int  (** dst, src, constant *)
  | Shift of shift_kind * vreg * vreg * int  (** dst, src, amount *)
  | Load of width * bool * vreg * vreg * int  (** signed?, dst, base, offset *)
  | Load_indexed of width * vreg * vreg * vreg * int
      (** dst, base, index, scale shift: dst <- mem\[base + (index << shift)\];
          one instruction on a CISC, a shift/add/load sequence on MIPS *)
  | Store of width * vreg * vreg * int  (** src, base, offset *)
  | Call of int  (** callee function index *)

type terminator =
  | Fallthrough  (** to the next block in layout order *)
  | Goto of int  (** unconditional jump to a block of this function *)
  | Cond of cond * vreg * vreg * int * float
      (** condition, regs (second ignored for zero-compares), target block,
          probability the branch is taken (used only by trace generation) *)
  | Ret

type block = { body : op list; term : terminator }

type func = {
  blocks : block array;
  locals : int;  (** number of virtual registers used *)
  frame_slots : int;  (** stack slots, sizes the prologue adjustment *)
  saves : int;  (** callee-saved registers touched *)
}

type program = { funcs : func array; entry : int }

val op_count : program -> int
(** Total number of IR operations (not lowered instructions). *)

val validate : program -> (unit, string) result
(** Checks structural invariants: branch targets in range, callee indices
    in range, vreg indices within [locals], entry in range. *)
