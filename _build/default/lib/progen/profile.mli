(** Workload profiles shaped after the SPEC95 suite used in §5.

    Real SPEC95 binaries are not redistributable and the paper's compiled
    images are unavailable; each profile instead parameterises the synthetic
    generator so that the statistical channels the compression algorithms
    exploit — opcode mix, register locality, immediate distributions, loop
    regularity and cross-function code cloning — resemble the corresponding
    program class (floating-point kernels are small, regular and highly
    repetitive; the integer codes are larger and more irregular). See
    DESIGN.md §2 for the substitution argument. *)

type t = {
  name : string;
  target_ops : int;  (** approximate IR operation count at scale 1.0 *)
  functions : int;  (** number of functions at scale 1.0 *)
  reg_pool : int;  (** distinct virtual registers per function (pressure) *)
  loop_fraction : float;  (** fraction of blocks that end loops *)
  clone_rate : float;  (** P(new function is a mutated clone of an earlier one) *)
  mutation_rate : float;  (** per-op mutation probability when cloning *)
  regularity : float;  (** P(next idiom repeats one already used in the function) *)
  imm_small_bias : float;  (** P(an immediate is in \[-16, 15\]) *)
  large_const_rate : float;  (** P(a constant needs 32 bits, e.g. addresses) *)
  mem_weight : int;  (** idiom mix weights *)
  alu_weight : int;
  mul_weight : int;
  call_weight : int;
}

val spec95 : t array
(** The 18 benchmark profiles of Figs. 7/8, in the paper's order:
    applu, apsi, compress, fpppp, gcc, go, hydro2d, ijpeg, m88ksim, mgrid,
    perl, su2cor, swim, tomcatv, turb3d, vortex, wave5, xlisp. *)

val embedded : t array
(** Embedded-class profiles — the programs the paper's introduction
    actually motivates (§1 used SPEC95 only because "embedded code is
    hardly portable among architectures"): an RTOS kernel, a DSP filter
    bank, a protocol stack, a motor controller, a block cipher and a
    bootloader. Smaller, loop-dominated, very little cloned code. *)

val find : string -> t
(** Look up a profile by name (both suites). @raise Not_found when
    unknown. *)

val names : unit -> string list
(** All profile names, both suites. *)
