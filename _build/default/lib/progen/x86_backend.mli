(** Lowering of the synthetic IR to the x86-like CISC subset.

    Emits the idioms of a 32-bit x86 compiler: [push ebp / mov ebp, esp]
    prologues, [xor r, r] for zeroing, two-address ALU forms with
    register-move fixups, [cmp]+[jcc] branch pairs with rel8 forms for
    nearby targets, and [leave]/[ret] epilogues. *)

val lower : Ir.program -> Ccomp_isa.X86.t list * Layout.t
(** [lower p] returns the instruction sequence in layout order and the
    layout/trace structure; [(snd (lower p)).code] is the encoded image. *)
