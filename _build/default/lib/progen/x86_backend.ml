module X = Ccomp_isa.X86

(* General-purpose registers available to the allocator (esp/ebp are
   reserved for the stack frame); virtual registers beyond the pool share
   physical registers, like spilled code would. *)
let reg_order = [| 0; 2; 1; 3; 6; 7 |]

let ebp = 5
let esp = 4

let phys v = reg_order.(v mod Array.length reg_order)

let binop_alu = function
  | Ir.Add -> X.Add
  | Ir.Sub -> X.Sub
  | Ir.And -> X.And
  | Ir.Or -> X.Or
  | Ir.Xor -> X.Xor
  | Ir.Slt -> X.Cmp
  | Ir.Mul -> assert false

let cond_cc = function
  | Ir.Eq -> X.E
  | Ir.Ne -> X.Ne
  | Ir.Lez -> X.Le
  | Ir.Gtz -> X.G
  | Ir.Ltz -> X.L
  | Ir.Gez -> X.Ge

let shift_kind = function Ir.Lsl -> X.Shl | Ir.Lsr -> X.Shr | Ir.Asr -> X.Sar

type pending =
  | Ins of X.t
  | Jcc8 of X.cond * int * int (* cond, func, block *)
  | Jcc32 of X.cond * int * int
  | Jmp32 of int * int
  | Call_to of int

let pending_length = function
  | Ins i -> X.length i
  | Jcc8 _ -> 2
  | Jcc32 _ -> 6
  | Jmp32 _ -> 5
  | Call_to _ -> 5

let lower_op op =
  match op with
  | Ir.Loadi (d, c) ->
    let d = phys d in
    if c = 0 then [ Ins (X.alu_rr Xor ~dst:d ~src:d) ] else [ Ins (X.mov_ri ~dst:d (Int32.of_int c)) ]
  | Ir.Binop (Mul, d, a, b) ->
    let d = phys d and a = phys a and b = phys b in
    if d = a && d = 0 then [ Ins (X.group_f7 `Imul ~rm:b) ] (* one-operand form on eax *)
    else if d = a then [ Ins (X.imul_rr ~dst:d ~src:b) ]
    else [ Ins (X.mov_rr ~dst:d ~src:a); Ins (X.imul_rr ~dst:d ~src:b) ]
  | Ir.Binop (Slt, d, a, b) ->
    [ Ins (X.alu_rr Cmp ~dst:(phys a) ~src:(phys b)); Ins (X.setcc X.L ~dst:(phys d)) ]
  | Ir.Binop (k, d, a, b) ->
    let d = phys d and a = phys a and b = phys b in
    let alu = binop_alu k in
    let commutative = match k with Ir.Add | Ir.And | Ir.Or | Ir.Xor -> true | _ -> false in
    if d = a then [ Ins (X.alu_rr alu ~dst:d ~src:b) ]
    else if commutative && d = b then [ Ins (X.alu_rr_load alu ~dst:d ~src:a) ]
    else [ Ins (X.mov_rr ~dst:d ~src:a); Ins (X.alu_rr alu ~dst:d ~src:b) ]
  | Ir.Binopi (Mul, d, a, c) ->
    [ Ins (X.mov_ri ~dst:(phys d) (Int32.of_int c)); Ins (X.imul_rr ~dst:(phys d) ~src:(phys a)) ]
  | Ir.Binopi (Slt, d, a, c) ->
    [ Ins (X.alu_ri Cmp ~dst:(phys a) (Int32.of_int c)); Ins (X.setcc X.L ~dst:(phys d)) ]
  | Ir.Binopi (Add, d, a, 1) when phys d = phys a -> [ Ins (X.inc_r (phys d)) ]
  | Ir.Binopi (Add, d, a, -1) when phys d = phys a -> [ Ins (X.dec_r (phys d)) ]
  | Ir.Binopi (k, d, a, c) ->
    let d = phys d and a = phys a in
    let alu = binop_alu k in
    if d = a then [ Ins (X.alu_ri alu ~dst:d (Int32.of_int c)) ]
    else [ Ins (X.mov_rr ~dst:d ~src:a); Ins (X.alu_ri alu ~dst:d (Int32.of_int c)) ]
  | Ir.Shift (k, d, a, s) ->
    let d = phys d and a = phys a in
    let sh = Ins (X.shift_ri (shift_kind k) ~dst:d (s land 31)) in
    if d = a then [ sh ] else [ Ins (X.mov_rr ~dst:d ~src:a); sh ]
  | Ir.Load (w, signed, d, b, off) -> (
    let dst = phys d and base = phys b in
    match w with
    | Ir.W32 -> [ Ins (X.mov_load ~dst ~base ~disp:off) ]
    | Ir.W8 -> [ Ins (X.movx_load ~signed ~wide:false ~dst ~base ~disp:off) ]
    | Ir.W16 -> [ Ins (X.movx_load ~signed ~wide:true ~dst ~base ~disp:off) ])
  | Ir.Load_indexed (_, d, b, i, sh) ->
    let index = let r = phys i in if r = 4 then 6 else r in
    [ Ins (X.mov_load_indexed ~dst:(phys d) ~base:(phys b) ~index ~scale:sh ~disp:0) ]
  | Ir.Store (w, s, b, off) -> (
    let src = phys s and base = phys b in
    match w with
    | Ir.W8 -> [ Ins (X.mov8_store ~base ~disp:off ~src) ]
    | Ir.W16 | Ir.W32 -> [ Ins (X.mov_store ~base ~disp:off ~src) ])
  | Ir.Call f -> [ Call_to f ]

let saved_regs = [| 3; 6; 7 |] (* ebx, esi, edi *)

let prologue ~frame ~saves =
  [ Ins (X.push_r ebp); Ins (X.mov_rr ~dst:ebp ~src:esp) ]
  @ (if frame > 0 then [ Ins (X.alu_ri Sub ~dst:esp (Int32.of_int frame)) ] else [])
  @ List.init saves (fun i -> Ins (X.push_r saved_regs.(i)))

let lower_term fi bi (term : Ir.terminator) ~saves =
  match term with
  | Ir.Fallthrough -> []
  | Ir.Goto t -> [ Jmp32 (fi, t) ]
  | Ir.Cond (c, a, b, t, _) ->
    let cmp =
      match c with
      | Ir.Eq | Ir.Ne -> Ins (X.alu_rr Cmp ~dst:(phys a) ~src:(phys b))
      | Ir.Lez | Ir.Gtz | Ir.Ltz | Ir.Gez -> Ins (X.test_rr (phys a) (phys a))
    in
    (* Nearby targets get the short jcc form, like relaxed compiler
       output; the choice is made structurally (block distance) so sizes
       are fixed before address resolution. *)
    let cc = cond_cc c in
    if abs (t - bi) <= 3 then [ cmp; Jcc8 (cc, fi, t) ] else [ cmp; Jcc32 (cc, fi, t) ]
  | Ir.Ret ->
    List.init saves (fun i -> Ins (X.pop_r saved_regs.(saves - 1 - i)))
    @ [ Ins X.leave; Ins X.ret ]

type raw_seg = Run of int * int | Call_seg of int (* indices into pending array *)

let lower (p : Ir.program) =
  let nfuncs = Array.length p.funcs in
  let pendings = ref [] in
  let count = ref 0 in
  let emit ps =
    List.iter
      (fun x ->
        pendings := x :: !pendings;
        incr count)
      ps
  in
  let block_start = Array.map (fun f -> Array.make (Array.length f.Ir.blocks) 0) p.funcs in
  let raw_segs = Array.map (fun f -> Array.make (Array.length f.Ir.blocks) []) p.funcs in
  for fi = 0 to nfuncs - 1 do
    let f = p.funcs.(fi) in
    let saves = min f.saves (Array.length saved_regs) in
    let frame = f.frame_slots * 4 in
    Array.iteri
      (fun bi (b : Ir.block) ->
        block_start.(fi).(bi) <- !count;
        let segs = ref [] in
        let run_start = ref !count in
        let close_run () =
          if !count > !run_start then segs := Run (!run_start, !count - !run_start) :: !segs;
          run_start := !count
        in
        if bi = 0 then emit (prologue ~frame ~saves);
        List.iter
          (fun op ->
            match op with
            | Ir.Call _ ->
              emit (lower_op op);
              close_run ();
              (match op with Ir.Call callee -> segs := Call_seg callee :: !segs | _ -> ())
            | Ir.Loadi _ | Ir.Binop _ | Ir.Binopi _ | Ir.Shift _ | Ir.Load _ | Ir.Load_indexed _
            | Ir.Store _ ->
              emit (lower_op op))
          b.body;
        emit (lower_term fi bi b.term ~saves);
        close_run ();
        raw_segs.(fi).(bi) <- List.rev !segs)
      f.blocks
  done;
  let pending = Array.of_list (List.rev !pendings) in
  (* Byte address of every instruction. *)
  let addrs = Array.make (Array.length pending + 1) 0 in
  Array.iteri (fun i pd -> addrs.(i + 1) <- addrs.(i) + pending_length pd) pending;
  let addr_of_block fi bi = addrs.(block_start.(fi).(bi)) in
  (* rel8 targets that ended up out of range wrap modulo 256; the image is
     only ever decoded, not executed, so only the byte statistics matter. *)
  let rel8 v = ((v + 128) land 0xff) - 128 in
  let resolve idx pd =
    let next = addrs.(idx + 1) in
    match pd with
    | Ins i -> i
    | Jcc8 (cc, fi, bi) -> X.jcc_rel8 cc (rel8 (addr_of_block fi bi - next))
    | Jcc32 (cc, fi, bi) -> X.jcc_rel32 cc (Int32.of_int (addr_of_block fi bi - next))
    | Jmp32 (fi, bi) -> X.jmp_rel32 (Int32.of_int (addr_of_block fi bi - next))
    | Call_to fj -> X.call_rel (Int32.of_int (addr_of_block fj 0 - next))
  in
  let instrs = Array.mapi resolve pending in
  let instr_list = Array.to_list instrs in
  let code = X.encode_program instr_list in
  let to_layout_seg = function
    | Run (start, len) -> Layout.Fetch (Array.init len (fun i -> addrs.(start + i)))
    | Call_seg fj -> Layout.Call fj
  in
  let blocks = Array.map (Array.map (List.map to_layout_seg)) raw_segs in
  let func_entry_addr = Array.init nfuncs (fun fi -> addr_of_block fi 0) in
  (instr_list, { Layout.code; func_entry_addr; blocks })
