module Prng = Ccomp_util.Prng

(* Mutable context for generating one function. *)
type ctx = {
  g : Prng.t;
  profile : Profile.t;
  nfuncs : int;
  pool : int;
  mutable emitted : Ir.op list list; (* idiom instances already used here *)
}

(* Registers are drawn geometrically so a few "hot" registers dominate,
   like allocator output. *)
let pick_reg ctx = min (Prng.geometric ctx.g 0.22) (ctx.pool - 1)

let small_imm ctx = Prng.int ctx.g 32 - 16

let imm16 ctx =
  if Prng.float ctx.g < ctx.profile.imm_small_bias then small_imm ctx
  else if Prng.bool ctx.g then Prng.int ctx.g 256
  else Prng.int ctx.g 16384 - 2048

let constant ctx =
  if Prng.float ctx.g < ctx.profile.large_const_rate then
    (* address-like constant: high half set, low half word-aligned *)
    (0x1000 + Prng.int ctx.g 0x400) * 65536 + (Prng.int ctx.g 4096 * 4)
  else imm16 ctx

(* Structure/stack offsets: mostly small word-aligned slots, a tail of
   large struct fields and the occasional byte-aligned access. *)
let mem_offset ctx =
  let r = Prng.float ctx.g in
  if r < 0.6 then 4 * Prng.int ctx.g 24
  else if r < 0.9 then 4 * Prng.int ctx.g 256
  else Prng.int ctx.g 128

let mem_width ctx =
  if Prng.float ctx.g < 0.8 then Ir.W32 else if Prng.bool ctx.g then Ir.W16 else Ir.W8

let pick_binop ctx =
  Prng.weighted ctx.g
    [| (8, Ir.Add); (3, Ir.Sub); (2, Ir.And); (3, Ir.Or); (2, Ir.Xor); (1, Ir.Slt) |]

let pick_shift ctx = Prng.weighted ctx.g [| (5, Ir.Lsl); (3, Ir.Lsr); (2, Ir.Asr) |]

(* Idiom library: each entry yields a short op sequence of the kind
   compilers emit. *)
let idiom_load_modify_store ctx =
  let t = pick_reg ctx and base = pick_reg ctx in
  let off = mem_offset ctx in
  let w = mem_width ctx in
  [ Ir.Load (w, false, t, base, off); Ir.Binopi (Add, t, t, small_imm ctx); Ir.Store (w, t, base, off) ]

let idiom_array_access ctx =
  let i = pick_reg ctx and base = pick_reg ctx and dst = pick_reg ctx in
  [ Ir.Load_indexed (W32, dst, base, i, 2) ]

let idiom_accumulate ctx =
  let acc = pick_reg ctx and t = pick_reg ctx in
  [ Ir.Binop (Add, acc, acc, t) ]

let idiom_constant ctx =
  let t = pick_reg ctx in
  [ Ir.Loadi (t, constant ctx) ]

let idiom_alu ctx =
  let d = pick_reg ctx and a = pick_reg ctx and b = pick_reg ctx in
  if Prng.float ctx.g < 0.5 then [ Ir.Binop (pick_binop ctx, d, a, b) ]
  else [ Ir.Binopi (pick_binop ctx, d, a, imm16 ctx) ]

let idiom_bitfield ctx =
  let d = pick_reg ctx and a = pick_reg ctx in
  let k = 1 + Prng.int ctx.g 15 in
  [ Ir.Binopi (And, d, a, (1 lsl k) - 1); Ir.Shift (pick_shift ctx, d, d, Prng.int ctx.g 16) ]

let idiom_muladd ctx =
  let t = pick_reg ctx and a = pick_reg ctx and b = pick_reg ctx and acc = pick_reg ctx in
  [ Ir.Binop (Mul, t, a, b); Ir.Binop (Add, acc, acc, t) ]

let idiom_call ctx =
  let a0 = 0 in
  let callee = Prng.int ctx.g ctx.nfuncs in
  [ Ir.Loadi (a0, imm16 ctx); Ir.Call callee ]

let idiom_spill ctx =
  let a = pick_reg ctx and b = pick_reg ctx and base = pick_reg ctx in
  let off = mem_offset ctx in
  [ Ir.Store (W32, a, base, off); Ir.Store (W32, b, base, off + 4) ]

let idiom_compare ctx =
  let d = pick_reg ctx and a = pick_reg ctx in
  [ Ir.Binopi (Slt, d, a, imm16 ctx) ]

let fresh_idiom ctx =
  let p = ctx.profile in
  let pick =
    Prng.weighted ctx.g
      [|
        (p.mem_weight, `Lms);
        (p.mem_weight, `Array);
        (p.mem_weight, `Spill);
        (p.alu_weight, `Alu);
        (p.alu_weight, `Acc);
        (2, `Const);
        (2, `Bitfield);
        (p.mul_weight, `Muladd);
        (p.call_weight, `Call);
        (2, `Compare);
      |]
  in
  match pick with
  | `Lms -> idiom_load_modify_store ctx
  | `Array -> idiom_array_access ctx
  | `Spill -> idiom_spill ctx
  | `Alu -> idiom_alu ctx
  | `Acc -> idiom_accumulate ctx
  | `Const -> idiom_constant ctx
  | `Bitfield -> idiom_bitfield ctx
  | `Muladd -> idiom_muladd ctx
  | `Call -> idiom_call ctx
  | `Compare -> idiom_compare ctx

(* Light mutation used both for idiom reuse and for function cloning:
   most ops are kept verbatim; immediates drift, registers swap. *)
let mutate_op ctx op =
  match op with
  | Ir.Loadi (d, _) -> Ir.Loadi (d, constant ctx)
  | Ir.Binopi (k, d, a, _) -> Ir.Binopi (k, d, a, imm16 ctx)
  | Ir.Binop (k, _, a, b) -> Ir.Binop (k, pick_reg ctx, a, b)
  | Ir.Shift (k, d, a, _) -> Ir.Shift (k, d, a, Prng.int ctx.g 32)
  | Ir.Load (w, s, _, b, off) -> Ir.Load (w, s, pick_reg ctx, b, off)
  | Ir.Load_indexed (w, _, b, i, sh) -> Ir.Load_indexed (w, pick_reg ctx, b, i, sh)
  | Ir.Store (w, s, b, _) -> Ir.Store (w, s, b, mem_offset ctx)
  | Ir.Call _ -> Ir.Call (Prng.int ctx.g ctx.nfuncs)

let next_idiom ctx =
  let n = List.length ctx.emitted in
  if n > 0 && Prng.float ctx.g < ctx.profile.regularity then begin
    let inst = List.nth ctx.emitted (Prng.int ctx.g n) in
    (* Re-emit a previous instance, occasionally perturbing one op. *)
    if Prng.float ctx.g < 0.3 then
      List.map (fun op -> if Prng.float ctx.g < 0.3 then mutate_op ctx op else op) inst
    else inst
  end
  else begin
    let inst = fresh_idiom ctx in
    ctx.emitted <- inst :: ctx.emitted;
    inst
  end

(* Build one function of roughly [size] IR ops. *)
let gen_function g profile nfuncs size =
  let ctx = { g; profile; nfuncs; pool = profile.reg_pool; emitted = [] } in
  let target_blocks = max 2 (size / 6) in
  let blocks = ref [] in
  let nblocks = ref 0 in
  let budget = ref size in
  while !nblocks < target_blocks - 1 do
    let body = ref [] in
    let body_len = 2 + Prng.int g 7 in
    for _ = 1 to body_len do
      if !budget > 0 then begin
        let ops = next_idiom ctx in
        body := !body @ ops;
        budget := !budget - List.length ops
      end
    done;
    let bi = !nblocks in
    let term =
      let r = Prng.float g in
      if bi > 0 && r < profile.loop_fraction then
        (* loop latch: branch back a short distance, usually taken *)
        let back = 1 + Prng.int g (min bi 4) in
        let cond = Prng.choose g [| Ir.Ne; Ir.Gtz; Ir.Ltz |] in
        Ir.Cond (cond, pick_reg ctx, pick_reg ctx, bi - back, 0.80 +. (0.15 *. Prng.float g))
      else if r < profile.loop_fraction +. 0.25 then
        (* forward conditional (if/else join); target at most a few blocks
           ahead, capped to the last block *)
        let fwd = 2 + Prng.int g 3 in
        let target = min (bi + fwd) (target_blocks - 1) in
        let cond = Prng.choose g [| Ir.Eq; Ir.Ne; Ir.Lez; Ir.Gez |] in
        Ir.Cond (cond, pick_reg ctx, pick_reg ctx, target, 0.25 +. (0.35 *. Prng.float g))
      else if r < profile.loop_fraction +. 0.30 then
        Ir.Goto (min (bi + 1 + Prng.int g 2) (target_blocks - 1))
      else Ir.Fallthrough
    in
    blocks := { Ir.body = !body; term } :: !blocks;
    incr nblocks
  done;
  (* Final block: small body, return. *)
  blocks := { Ir.body = next_idiom ctx; term = Ir.Ret } :: !blocks;
  {
    Ir.blocks = Array.of_list (List.rev !blocks);
    locals = profile.reg_pool;
    frame_slots = 2 + Prng.int g 14;
    saves = Prng.int g 5;
  }

(* Clone an earlier function, perturbing ops at the profile's mutation
   rate; this is the source of whole-function repeats in the image. *)
let clone_function g profile nfuncs (src : Ir.func) =
  let ctx = { g; profile; nfuncs; pool = profile.reg_pool; emitted = [] } in
  let mutate_block (b : Ir.block) =
    {
      b with
      Ir.body =
        List.map (fun op -> if Prng.float g < profile.mutation_rate then mutate_op ctx op else op) b.Ir.body;
    }
  in
  { src with Ir.blocks = Array.map mutate_block src.Ir.blocks }

let generate ?(scale = 1.0) ~seed (profile : Profile.t) =
  assert (scale > 0.0);
  let g = Prng.create seed in
  let budget = max 20 (int_of_float (float_of_int profile.target_ops *. scale)) in
  let nfuncs =
    max 1 (int_of_float (float_of_int profile.functions *. sqrt scale))
  in
  let avg = max 8 (budget / nfuncs) in
  let funcs = Array.make nfuncs None in
  for fi = 0 to nfuncs - 1 do
    let prev =
      if fi = 0 then None
      else if Prng.float g < profile.clone_rate then
        match funcs.(Prng.int g fi) with Some f -> Some f | None -> None
      else None
    in
    let f =
      match prev with
      | Some src -> clone_function g profile nfuncs src
      | None ->
        let size = max 8 (avg / 2 + Prng.int g avg) in
        gen_function g profile nfuncs size
    in
    funcs.(fi) <- Some f
  done;
  let funcs =
    Array.map (function Some f -> f | None -> assert false) funcs
  in
  let program = { Ir.funcs; entry = 0 } in
  (match Ir.validate program with
  | Ok () -> ()
  | Error e -> failwith ("Generator.generate: invalid program: " ^ e));
  program
