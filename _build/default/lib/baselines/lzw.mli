(** LZW with the parameters of UNIX [compress(1)]: codes grow from 9 to 16
    bits, the table is rebuilt when full and compression degrades, and the
    whole file is one stream — the paper's first file-oriented reference
    (§5). File-oriented means sequential decompression only: unusable in
    the cache-refill architecture, included purely as a yardstick. *)

val compress : string -> string

val decompress : string -> string
(** Inverse of {!compress}.
    @raise Failure on corrupted input. *)

val ratio : string -> float
(** [ratio data] = compressed size / original size (1.0 for empty input). *)
