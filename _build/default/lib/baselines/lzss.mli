(** LZ77 + canonical Huffman, a simplified DEFLATE — the paper's [gzip]
    reference (§5). A 32 KiB sliding window with hash-chain match search
    and lazy evaluation feeds a literal/length alphabet and a distance
    alphabet (the RFC 1951 code ranges), each canonical-Huffman coded over
    the whole file. File-oriented: the dictionary is the preceding text,
    so random block access is impossible — the very property that rules
    this family out for compressed-code execution (§1). *)

val compress : string -> string

val decompress : string -> string
(** Inverse of {!compress}.
    @raise Failure on corrupted input. *)

val ratio : string -> float
(** Compressed size / original size (1.0 for empty input). *)
