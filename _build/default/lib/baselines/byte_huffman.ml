module Huffman = Ccomp_huffman.Huffman
module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

type compressed = {
  code : Huffman.code;
  blocks : string array;
  block_size : int;
  original_size : int;
}

let compress ?(block_size = 32) input =
  if String.length input = 0 then invalid_arg "Byte_huffman.compress: empty input";
  let code = Huffman.build (Freq.of_string input) in
  let n = String.length input in
  let nblocks = (n + block_size - 1) / block_size in
  let blocks =
    Array.init nblocks (fun b ->
        let start = b * block_size in
        let len = min block_size (n - start) in
        let w = Bit_writer.create () in
        for i = start to start + len - 1 do
          Huffman.encode_symbol code w (Char.code input.[i])
        done;
        Bit_writer.contents w)
  in
  { code; blocks; block_size; original_size = n }

let block_length t b =
  let start = b * t.block_size in
  min t.block_size (t.original_size - start)

let decompress_block t b =
  let r = Bit_reader.create t.blocks.(b) in
  let len = block_length t b in
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (Huffman.decode_symbol t.code r))
  done;
  Bytes.to_string out

let decompress t =
  String.concat "" (Array.to_list (Array.mapi (fun b _ -> decompress_block t b) t.blocks))

let code_bytes t = Array.fold_left (fun acc b -> acc + String.length b) 0 t.blocks

let table_bytes t = String.length (Huffman.serialize_lengths t.code)

let ratio t = float_of_int (code_bytes t) /. float_of_int t.original_size
