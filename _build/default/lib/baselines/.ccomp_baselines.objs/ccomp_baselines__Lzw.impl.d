lib/baselines/lzw.ml: Array Buffer Ccomp_bitio Char Hashtbl String
