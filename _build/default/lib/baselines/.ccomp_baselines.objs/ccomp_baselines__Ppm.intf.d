lib/baselines/ppm.mli:
