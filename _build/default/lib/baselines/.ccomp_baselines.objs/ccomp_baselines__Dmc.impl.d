lib/baselines/dmc.ml: Array Bytes Ccomp_arith Char String
