lib/baselines/ppm.ml: Bytes Ccomp_arith Char Hashtbl List String
