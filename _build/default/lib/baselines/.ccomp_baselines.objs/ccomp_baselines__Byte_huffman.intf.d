lib/baselines/byte_huffman.mli: Ccomp_huffman
