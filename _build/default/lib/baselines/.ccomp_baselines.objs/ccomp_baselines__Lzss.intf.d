lib/baselines/lzss.mli:
