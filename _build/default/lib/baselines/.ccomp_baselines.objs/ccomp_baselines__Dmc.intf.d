lib/baselines/dmc.mli:
