lib/baselines/lzw.mli:
