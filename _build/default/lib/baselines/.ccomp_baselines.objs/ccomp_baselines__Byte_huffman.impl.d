lib/baselines/byte_huffman.ml: Array Bytes Ccomp_bitio Ccomp_entropy Ccomp_huffman Char String
