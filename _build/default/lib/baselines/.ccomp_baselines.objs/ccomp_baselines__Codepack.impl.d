lib/baselines/codepack.ml: Array Bytes Ccomp_bitio Ccomp_entropy Char Hashtbl List String
