lib/baselines/codepack.mli:
