lib/baselines/lzss.ml: Array Buffer Ccomp_bitio Ccomp_entropy Ccomp_huffman Char List String
