module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader
module Freq = Ccomp_entropy.Freq

(* Tag classes, per half-word:
     00                 -> the half 0x0000 (nop / zero-displacement forms)
     01  + 3-bit index  -> dictionary ranks 0..7
     100 + 4-bit index  -> ranks 8..23
     101 + 5-bit index  -> ranks 24..55
     110 + 6-bit index  -> ranks 56..119
     111 + 16 raw bits  -> escape *)
let class_table = [| (8, 3); (16, 4); (32, 5); (64, 6) |]

let dict_capacity = Array.fold_left (fun a (n, _) -> a + n) 0 class_table

type bank = { values : int array; rank_of : (int, int) Hashtbl.t }

type compressed = {
  high : bank;
  low : bank;
  blocks : string array;
  block_size : int;
  original_size : int;
}

let build_bank freq =
  let ranked = ref [] in
  Freq.iter_nonzero freq (fun half count -> if half <> 0 then ranked := (count, half) :: !ranked);
  let sorted = List.sort (fun (c1, h1) (c2, h2) -> compare (c2, h1) (c1, h2)) !ranked in
  let values =
    Array.of_list (List.filteri (fun i _ -> i < dict_capacity) (List.map snd sorted))
  in
  let rank_of = Hashtbl.create (Array.length values) in
  Array.iteri (fun rank v -> Hashtbl.replace rank_of v rank) values;
  { values; rank_of }

(* (class index, base rank) for a dictionary rank. *)
let class_of_rank rank =
  let rec go i base =
    let n, _ = class_table.(i) in
    if rank < base + n then (i, base) else go (i + 1) (base + n)
  in
  go 0 0

let encode_half bank w half =
  if half = 0 then Bit_writer.put_bits w ~value:0b00 ~width:2
  else
    match Hashtbl.find_opt bank.rank_of half with
    | Some rank ->
      let cls, base = class_of_rank rank in
      let _, index_bits = class_table.(cls) in
      if cls = 0 then Bit_writer.put_bits w ~value:0b01 ~width:2
      else Bit_writer.put_bits w ~value:(0b100 + cls - 1) ~width:3;
      Bit_writer.put_bits w ~value:(rank - base) ~width:index_bits
    | None ->
      Bit_writer.put_bits w ~value:0b111 ~width:3;
      Bit_writer.put_bits w ~value:half ~width:16

let decode_half bank r =
  if Bit_reader.get_bit r = 0 then
    if Bit_reader.get_bit r = 0 then 0 (* 00 *)
    else bank.values.(Bit_reader.get_bits r 3) (* 01 *)
  else begin
    let b1 = Bit_reader.get_bit r in
    let b2 = Bit_reader.get_bit r in
    let cls = (b1 lsl 1) lor b2 in
    (* 1cc: 00 -> class 1, 01 -> class 2, 10 -> class 3, 11 -> escape *)
    if cls = 0b11 then Bit_reader.get_bits r 16
    else begin
      let cls = cls + 1 in
      let n, index_bits = class_table.(cls) in
      ignore n;
      let base =
        let rec go i acc = if i = cls then acc else go (i + 1) (acc + fst class_table.(i)) in
        go 0 0
      in
      bank.values.(base + Bit_reader.get_bits r index_bits)
    end
  end

let halves code wi =
  let at j = Char.code code.[(4 * wi) + j] in
  ((at 0 lsl 8) lor at 1, (at 2 lsl 8) lor at 3)

let compress ?(block_size = 32) code =
  if String.length code mod 4 <> 0 then
    invalid_arg "Codepack.compress: code size must be a multiple of 4";
  if block_size mod 4 <> 0 || block_size <= 0 then
    invalid_arg "Codepack.compress: block size must be a positive multiple of 4";
  let words = String.length code / 4 in
  let high_freq = Freq.create 65536 and low_freq = Freq.create 65536 in
  for wi = 0 to words - 1 do
    let hi, lo = halves code wi in
    Freq.add high_freq hi;
    Freq.add low_freq lo
  done;
  let high = build_bank high_freq and low = build_bank low_freq in
  let wpb = block_size / 4 in
  let nblocks = (words + wpb - 1) / wpb in
  let blocks =
    Array.init nblocks (fun b ->
        let w = Bit_writer.create () in
        let first = b * wpb in
        for wi = first to min (first + wpb) words - 1 do
          let hi, lo = halves code wi in
          encode_half high w hi;
          encode_half low w lo
        done;
        Bit_writer.contents w)
  in
  { high; low; blocks; block_size; original_size = String.length code }

let block_count t = Array.length t.blocks

let block_words t b =
  let wpb = t.block_size / 4 in
  min wpb ((t.original_size / 4) - (b * wpb))

let decompress_block t b =
  let r = Bit_reader.create t.blocks.(b) in
  let n = block_words t b in
  let out = Bytes.create (4 * n) in
  for wi = 0 to n - 1 do
    let hi = decode_half t.high r in
    let lo = decode_half t.low r in
    Bytes.set out (4 * wi) (Char.chr (hi lsr 8));
    Bytes.set out ((4 * wi) + 1) (Char.chr (hi land 0xff));
    Bytes.set out ((4 * wi) + 2) (Char.chr (lo lsr 8));
    Bytes.set out ((4 * wi) + 3) (Char.chr (lo land 0xff))
  done;
  Bytes.to_string out

let decompress t =
  String.concat "" (Array.to_list (Array.init (block_count t) (decompress_block t)))

let code_bytes t = Array.fold_left (fun acc b -> acc + String.length b) 0 t.blocks

let table_bytes t = 2 * (Array.length t.high.values + Array.length t.low.values) + 4

let ratio t = float_of_int (code_bytes t) /. float_of_int t.original_size
