(** Byte-based Huffman coding of instruction memory, after Kozuch & Wolfe
    (cited as \[5\] in the paper; the Fig. 9 comparison baseline).

    A single semiadaptive Huffman code over the program's bytes; every
    cache block is encoded separately and byte-aligned, so blocks are
    independently decodable with one shared table — the same execution
    model as SAMC/SADC but with no instruction-field or inter-byte
    modelling, which is why the paper's methods beat it. *)

type compressed = {
  code : Ccomp_huffman.Huffman.code;
  blocks : string array;
  block_size : int;
  original_size : int;
}

val compress : ?block_size:int -> string -> compressed
(** [compress code] with 32-byte blocks by default. *)

val decompress_block : compressed -> int -> string

val decompress : compressed -> string

val code_bytes : compressed -> int

val table_bytes : compressed -> int

val ratio : compressed -> float
(** Compressed code bytes / original bytes. *)
