(** A CodePack-style compressor (IBM PowerPC 4xx, 1998–2000) — the
    industrial follow-on of this paper's line of work, included as a
    forward-looking comparator (experiment E11).

    Each 32-bit instruction is split into its high and low half-words;
    each half is coded against its own semiadaptive dictionary of common
    half values using short prefix tags (3-bit index for the 8 hottest
    values, then 4/5/6-bit classes), with an escape tag carrying the raw
    16 bits. An all-zero low half — extremely common in RISC code — has a
    dedicated 2-bit tag, as in the real device. Blocks are independently
    decodable and byte-aligned; the two dictionaries are shipped with the
    program. *)

type compressed

val compress : ?block_size:int -> string -> compressed
(** [compress code] with 32-byte blocks by default. [code] must be a
    multiple of 4 bytes (32-bit words).
    @raise Invalid_argument otherwise. *)

val decompress_block : compressed -> int -> string

val decompress : compressed -> string

val block_count : compressed -> int

val code_bytes : compressed -> int

val table_bytes : compressed -> int
(** Size of the two half-word dictionaries. *)

val ratio : compressed -> float
(** Compressed code bytes / original bytes. *)
