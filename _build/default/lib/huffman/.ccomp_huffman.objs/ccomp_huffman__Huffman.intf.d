lib/huffman/huffman.mli: Ccomp_bitio Ccomp_entropy
