lib/huffman/huffman.ml: Array Buffer Ccomp_bitio Ccomp_entropy Ccomp_util Char String
