module Bit_stats = Ccomp_entropy.Bit_stats
module Prng = Ccomp_util.Prng

type t = int array array

let consecutive ~word_bits ~streams =
  if streams <= 0 || word_bits mod streams <> 0 then
    invalid_arg "Stream_split.consecutive: streams must divide word_bits";
  let w = word_bits / streams in
  Array.init streams (fun s -> Array.init w (fun i -> (s * w) + i))

let validate ~word_bits t =
  let seen = Array.make word_bits false in
  let ok = ref (Ok ()) in
  Array.iter
    (Array.iter (fun b ->
         if b < 0 || b >= word_bits then ok := Error (Printf.sprintf "bit %d out of range" b)
         else if seen.(b) then ok := Error (Printf.sprintf "bit %d assigned twice" b)
         else seen.(b) <- true))
    t;
  (match !ok with
  | Ok () ->
    Array.iteri (fun b s -> if not s then ok := Error (Printf.sprintf "bit %d unassigned" b)) seen
  | Error _ -> ());
  !ok

let widths t = Array.map Array.length t

(* The word index convention is MSB-first (bit 0 = most significant), but
   Bit_stats counts LSB-first; convert on lookup. *)
let stats_index stats bit = Bit_stats.width stats - 1 - bit

let stream_cost stats stream =
  match Array.length stream with
  | 0 -> 0.0
  | _ ->
    let first = Bit_stats.bit_entropy stats (stats_index stats stream.(0)) in
    let rest = ref 0.0 in
    for k = 1 to Array.length stream - 1 do
      rest :=
        !rest
        +. Bit_stats.conditional_entropy stats
             (stats_index stats stream.(k - 1))
             (stats_index stats stream.(k))
    done;
    first +. !rest

let estimated_cost stats t = Array.fold_left (fun acc s -> acc +. stream_cost stats s) 0.0 t

(* Greedy chaining: start from the most biased bit, repeatedly append the
   unused bit with the highest |correlation| to the chain head. *)
let correlation_chain stats =
  let n = Bit_stats.width stats in
  let used = Array.make n false in
  let corr i j = Float.abs (Bit_stats.correlation stats (stats_index stats i) (stats_index stats j)) in
  let start =
    let best = ref 0 and best_h = ref infinity in
    for b = 0 to n - 1 do
      let h = Bit_stats.bit_entropy stats (stats_index stats b) in
      if h < !best_h then begin
        best := b;
        best_h := h
      end
    done;
    !best
  in
  used.(start) <- true;
  let chain = Array.make n start in
  for k = 1 to n - 1 do
    let prev = chain.(k - 1) in
    let best = ref (-1) and best_c = ref neg_infinity in
    for b = 0 to n - 1 do
      if not used.(b) then begin
        let c = corr prev b in
        if c > !best_c then begin
          best := b;
          best_c := c
        end
      end
    done;
    chain.(k) <- !best;
    used.(!best) <- true
  done;
  chain

let optimize ?(iterations = 2000) ~seed ~streams stats =
  let n = Bit_stats.width stats in
  if streams <= 0 || n mod streams <> 0 then
    invalid_arg "Stream_split.optimize: streams must divide word width";
  let w = n / streams in
  let chain = correlation_chain stats in
  let current = Array.init streams (fun s -> Array.sub chain (s * w) w) in
  let g = Prng.create seed in
  let cost = ref (estimated_cost stats current) in
  for _ = 1 to iterations do
    (* Swap two bit slots (possibly across streams) and keep the swap when
       the pairwise-entropy estimate improves. *)
    let s1 = Prng.int g streams and s2 = Prng.int g streams in
    let i1 = Prng.int g w and i2 = Prng.int g w in
    if not (s1 = s2 && i1 = i2) then begin
      let b1 = current.(s1).(i1) and b2 = current.(s2).(i2) in
      current.(s1).(i1) <- b2;
      current.(s2).(i2) <- b1;
      let cost' = estimated_cost stats current in
      if cost' < !cost then cost := cost'
      else begin
        current.(s1).(i1) <- b1;
        current.(s2).(i2) <- b2
      end
    end
  done;
  current
