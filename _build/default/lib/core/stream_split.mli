(** Stream subdivision of instruction words (§3).

    A subdivision assigns every bit position of the instruction word to one
    of k streams; each stream gets its own Markov tree. The paper groups
    strongly correlated bits into the same stream and then improves the
    grouping by random exchanges, accepting a swap when the estimated
    entropy drops. Bit position 0 is the most significant bit of the word
    (the first opcode bit). *)

type t = int array array
(** [t.(s)] lists the bit positions of stream [s], in coding order. *)

val consecutive : word_bits:int -> streams:int -> t
(** [consecutive ~word_bits ~streams] splits the word into equal runs of
    adjacent bits (the paper's 4×8 default for MIPS).
    @raise Invalid_argument if [streams] does not divide [word_bits]. *)

val validate : word_bits:int -> t -> (unit, string) result
(** Checks that the streams form a partition of \[0, word_bits). *)

val widths : t -> int array

val estimated_cost : Ccomp_entropy.Bit_stats.t -> t -> float
(** First-order cost estimate in bits/word: for each stream, the entropy
    of its first bit plus the conditional entropy of each bit given its
    predecessor in the stream — the quantity a depth-limited Markov chain
    can achieve, computable from pairwise statistics alone. *)

val optimize :
  ?iterations:int ->
  seed:int64 ->
  streams:int ->
  Ccomp_entropy.Bit_stats.t ->
  t
(** [optimize ~seed ~streams stats] searches for a low-cost subdivision:
    bits are greedily chained by correlation, split into [streams] equal
    groups, then improved by random exchanges between streams (default
    2000 [iterations]), keeping a swap only when {!estimated_cost} drops.
    Stream sizes stay equal, matching the paper's equal-width trees. *)
