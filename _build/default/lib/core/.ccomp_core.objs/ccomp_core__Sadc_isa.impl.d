lib/core/sadc_isa.ml: Array Ccomp_isa Char List Option Printf String
