lib/core/samc.mli: Markov_model Stream_split
