lib/core/sadc.mli: Sadc_isa
