lib/core/markov_model.ml: Array Ccomp_arith Ccomp_bitio String
