lib/core/sadc.ml: Array Buffer Ccomp_bitio Ccomp_entropy Ccomp_huffman Char Hashtbl List Sadc_isa String
