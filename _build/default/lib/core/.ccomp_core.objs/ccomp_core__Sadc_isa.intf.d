lib/core/sadc_isa.mli: Ccomp_isa
