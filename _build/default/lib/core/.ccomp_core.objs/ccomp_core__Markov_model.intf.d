lib/core/markov_model.mli:
