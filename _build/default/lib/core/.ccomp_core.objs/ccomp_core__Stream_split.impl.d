lib/core/stream_split.ml: Array Ccomp_entropy Ccomp_util Float Printf
