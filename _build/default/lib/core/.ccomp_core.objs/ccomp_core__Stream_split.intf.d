lib/core/stream_split.mli: Ccomp_entropy
