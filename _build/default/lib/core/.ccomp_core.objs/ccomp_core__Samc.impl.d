lib/core/samc.ml: Array Buffer Bytes Ccomp_arith Char Markov_model Stream_split String
