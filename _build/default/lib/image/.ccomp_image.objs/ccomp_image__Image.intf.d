lib/image/image.mli: Ccomp_core Ccomp_memsys
