lib/image/image.ml: Array Buffer Bytes Ccomp_core Ccomp_memsys Char Crc32 Int32 Printf String
