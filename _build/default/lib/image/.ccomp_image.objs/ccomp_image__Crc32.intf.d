lib/image/crc32.mli:
