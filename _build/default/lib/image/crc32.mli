(** CRC-32 (IEEE 802.3 polynomial, as used by gzip/zip), protecting the
    compressed-image container against corruption. *)

val of_string : string -> int32

val update : int32 -> string -> int32
(** Incremental form: [of_string (a ^ b) = update (of_string a) b]. *)
