(** SECF — a small container format for compressed executables.

    A ROM image in the Wolfe–Chanin organisation must ship, besides the
    compressed text, everything the refill engine needs: the algorithm
    identity, the decompression tables (Markov model or dictionary +
    Huffman lengths), and the LAT. SECF packages exactly that, with a
    CRC-32 over the contents.

    Layout: magic "SECF", version, ISA tag, algorithm tag, a LAT section,
    an algorithm payload section (the [Samc]/[Sadc] wire forms, which
    embed their own block payloads), and a trailing CRC. *)

type isa = Mips | X86

type payload =
  | Samc of Ccomp_core.Samc.compressed
  | Sadc_mips of Ccomp_core.Sadc.Mips.compressed
  | Sadc_x86 of Ccomp_core.Sadc.X86.compressed

type t = { isa : isa; payload : payload; lat : Ccomp_memsys.Lat.t }

val of_samc : isa:isa -> Ccomp_core.Samc.compressed -> t
(** Builds the image, deriving the LAT from the block sizes. *)

val of_sadc_mips : Ccomp_core.Sadc.Mips.compressed -> t

val of_sadc_x86 : Ccomp_core.Sadc.X86.compressed -> t

val write : t -> string

val read : string -> (t, string) result
(** Checks magic, version and CRC, then decodes the payload. *)

val decompress : t -> string
(** Reconstruct the original text section. *)

val total_bytes : t -> int
(** [String.length (write t)] — the full ROM footprint including tables
    and LAT. *)

val describe : t -> string
(** One-line human summary (ISA, algorithm, block counts, sizes). *)
