module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Lat = Ccomp_memsys.Lat

type isa = Mips | X86

type payload =
  | Samc of Samc.compressed
  | Sadc_mips of Sadc.Mips.compressed
  | Sadc_x86 of Sadc.X86.compressed

type t = { isa : isa; payload : payload; lat : Lat.t }

let magic = "SECF"
let version = 1

let of_samc ~isa z = { isa; payload = Samc z; lat = Lat.of_blocks z.Samc.blocks }

let of_sadc_mips z =
  let lengths = Array.init (Sadc.Mips.block_count z) (Sadc.Mips.block_payload_bytes z) in
  { isa = Mips; payload = Sadc_mips z; lat = Lat.build lengths }

let of_sadc_x86 z =
  let lengths = Array.init (Sadc.X86.block_count z) (Sadc.X86.block_payload_bytes z) in
  { isa = X86; payload = Sadc_x86 z; lat = Lat.build lengths }

let isa_tag = function Mips -> 0 | X86 -> 1

let isa_of_tag = function 0 -> Some Mips | 1 -> Some X86 | _ -> None

let payload_tag = function Samc _ -> 0 | Sadc_mips _ -> 1 | Sadc_x86 _ -> 2

let write t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr (isa_tag t.isa));
  Buffer.add_char b (Char.chr (payload_tag t.payload));
  Buffer.add_string b (Lat.serialize t.lat);
  (match t.payload with
  | Samc z -> Buffer.add_string b (Samc.serialize z)
  | Sadc_mips z -> Buffer.add_string b (Sadc.Mips.serialize z)
  | Sadc_x86 z -> Buffer.add_string b (Sadc.X86.serialize z));
  let body = Buffer.contents b in
  let crc = Crc32.of_string body in
  let tail = Bytes.create 4 in
  Bytes.set tail 0 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 24) land 0xff));
  Bytes.set tail 1 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 16) land 0xff));
  Bytes.set tail 2 (Char.chr (Int32.to_int (Int32.shift_right_logical crc 8) land 0xff));
  Bytes.set tail 3 (Char.chr (Int32.to_int crc land 0xff));
  body ^ Bytes.to_string tail

let read s =
  let len = String.length s in
  if len < 11 then Error "image too short"
  else if String.sub s 0 4 <> magic then Error "bad magic"
  else if Char.code s.[4] <> version then Error "unsupported version"
  else begin
    let body = String.sub s 0 (len - 4) in
    let crc = Crc32.of_string body in
    let stored =
      Int32.logor
        (Int32.shift_left (Int32.of_int (Char.code s.[len - 4])) 24)
        (Int32.of_int
           ((Char.code s.[len - 3] lsl 16) lor (Char.code s.[len - 2] lsl 8)
           lor Char.code s.[len - 1]))
    in
    if crc <> stored then Error "CRC mismatch"
    else
      match isa_of_tag (Char.code s.[5]) with
      | None -> Error "unknown ISA tag"
      | Some isa -> (
        try
          let lat, pos = Lat.deserialize body ~pos:7 in
          match Char.code s.[6] with
          | 0 ->
            let z, _ = Samc.deserialize body ~pos in
            Ok { isa; payload = Samc z; lat }
          | 1 ->
            let z, _ = Sadc.Mips.deserialize body ~pos in
            Ok { isa; payload = Sadc_mips z; lat }
          | 2 ->
            let z, _ = Sadc.X86.deserialize body ~pos in
            Ok { isa; payload = Sadc_x86 z; lat }
          | _ -> Error "unknown algorithm tag"
        with Invalid_argument e | Failure e -> Error e)
  end

let decompress t =
  match t.payload with
  | Samc z -> Samc.decompress z
  | Sadc_mips z -> Sadc.Mips.decompress z
  | Sadc_x86 z -> Sadc.X86.decompress z

let total_bytes t = String.length (write t)

let describe t =
  let isa = match t.isa with Mips -> "mips" | X86 -> "x86" in
  match t.payload with
  | Samc z ->
    Printf.sprintf "SECF %s samc: %d blocks, %d code bytes, %d model bytes, ratio %.3f" isa
      (Array.length z.Samc.blocks) (Samc.code_bytes z) (Samc.model_bytes z) (Samc.ratio z)
  | Sadc_mips z ->
    Printf.sprintf "SECF %s sadc: %d blocks, %d code bytes, %d dict bytes, ratio %.3f" isa
      (Sadc.Mips.block_count z) (Sadc.Mips.code_bytes z) (Sadc.Mips.dict_bytes z)
      (Sadc.Mips.ratio z)
  | Sadc_x86 z ->
    Printf.sprintf "SECF %s sadc: %d blocks, %d code bytes, %d dict bytes, ratio %.3f" isa
      (Sadc.X86.block_count z) (Sadc.X86.code_bytes z) (Sadc.X86.dict_bytes z)
      (Sadc.X86.ratio z)
