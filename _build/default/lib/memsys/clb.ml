(* A CLB entry covers one LAT group (8 consecutive blocks), like a TLB
   entry covering a page of lines. *)
let blocks_per_entry = 8

type t = { lru : Lru.t; mutable accesses : int; mutable hits : int }

let create ~entries = { lru = Lru.create ~capacity:entries; accesses = 0; hits = 0 }

let access t block =
  t.accesses <- t.accesses + 1;
  let hit = Lru.access t.lru (block / blocks_per_entry) in
  if hit then t.hits <- t.hits + 1;
  hit

let accesses t = t.accesses

let hits t = t.hits

let misses t = t.accesses - t.hits

let clear t =
  Lru.clear t.lru;
  t.accesses <- 0;
  t.hits <- 0
