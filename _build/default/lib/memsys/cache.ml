type config = { size_bytes : int; block_size : int; associativity : int }

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate c =
  if not (is_pow2 c.block_size) then Error "block_size must be a power of two"
  else if c.associativity <= 0 then Error "associativity must be positive"
  else if c.size_bytes mod (c.block_size * c.associativity) <> 0 then
    Error "size must be a multiple of block_size * associativity"
  else if c.size_bytes / (c.block_size * c.associativity) = 0 then Error "cache has no sets"
  else Ok ()

type t = {
  config : config;
  sets : Lru.t array;
  mutable accesses : int;
  mutable hits : int;
}

let create config =
  (match validate config with Ok () -> () | Error e -> invalid_arg ("Cache.create: " ^ e));
  let nsets = config.size_bytes / (config.block_size * config.associativity) in
  {
    config;
    sets = Array.init nsets (fun _ -> Lru.create ~capacity:config.associativity);
    accesses = 0;
    hits = 0;
  }

let block_of_address t addr = addr / t.config.block_size

let access t addr =
  let block = block_of_address t addr in
  let set = block mod Array.length t.sets in
  t.accesses <- t.accesses + 1;
  let hit = Lru.access t.sets.(set) block in
  if hit then t.hits <- t.hits + 1;
  hit

let accesses t = t.accesses

let hits t = t.hits

let misses t = t.accesses - t.hits

let hit_ratio t = if t.accesses = 0 then 1.0 else float_of_int t.hits /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0

let clear t =
  Array.iter Lru.clear t.sets;
  reset_stats t
