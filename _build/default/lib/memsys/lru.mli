(** Fixed-capacity LRU tag store, the building block of the instruction
    cache sets and of the CLB. *)

type t

val create : capacity:int -> t

val mem : t -> int -> bool
(** [mem t tag] — present, without touching recency. *)

val access : t -> int -> bool
(** [access t tag] returns [true] on hit. On miss the tag is inserted,
    evicting the least recently used entry when full; on hit the tag
    becomes most recently used. *)

val clear : t -> unit
