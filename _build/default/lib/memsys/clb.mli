(** CLB — Cache Line Address Lookaside Buffer (§2).

    A small fully-associative cache over LAT entries, "essentially
    identical to a TLB": it hides the extra memory access that looking up
    a compressed line's address would otherwise add to every refill. *)

type t

val create : entries:int -> t

val access : t -> int -> bool
(** [access t block] — [true] when the block's LAT entry is resident;
    on miss the entry (i.e. its 8-block LAT group) is brought in. *)

val accesses : t -> int

val hits : t -> int

val misses : t -> int

val clear : t -> unit
