type decompressor = { name : string; startup_cycles : int; cycles_per_byte : float }

let samc_decompressor = { name = "samc"; startup_cycles = 8; cycles_per_byte = 2.0 }

let sadc_decompressor = { name = "sadc"; startup_cycles = 4; cycles_per_byte = 0.5 }

let huffman_decompressor = { name = "huffman"; startup_cycles = 2; cycles_per_byte = 1.0 }

type config = {
  cache : Cache.config;
  clb_entries : int;
  memory_latency : int;
  bytes_per_cycle : float;
  decompressor : decompressor option;
}

let default_config ?(cache_bytes = 8192) ?decompressor () =
  {
    cache = { Cache.size_bytes = cache_bytes; block_size = 32; associativity = 2 };
    clb_entries = 16;
    memory_latency = 20;
    bytes_per_cycle = 4.0;
    decompressor;
  }

type result = {
  fetches : int;
  hits : int;
  misses : int;
  clb_misses : int;
  total_cycles : int;
  cpi : float;
  hit_ratio : float;
  avg_miss_penalty : float;
}

let run config ?lat ~trace () =
  let cache = Cache.create config.cache in
  let clb = if config.clb_entries > 0 then Some (Clb.create ~entries:config.clb_entries) else None in
  (match (config.decompressor, lat) with
  | Some _, None -> invalid_arg "System.run: compressed system needs a LAT"
  | Some _, Some _ | None, _ -> ());
  let cycles = ref 0 in
  let penalty_cycles = ref 0 in
  let clb_misses = ref 0 in
  let transfer bytes = int_of_float (ceil (float_of_int bytes /. config.bytes_per_cycle)) in
  Array.iter
    (fun addr ->
      if Cache.access cache addr then incr cycles
      else begin
        let block = addr / config.cache.Cache.block_size in
        let penalty =
          match config.decompressor with
          | None ->
            (* ordinary refill: latency + line transfer *)
            config.memory_latency + transfer config.cache.Cache.block_size
          | Some d ->
            let lat = Option.get lat in
            if block >= Lat.entries lat then
              invalid_arg "System.run: trace address beyond the LAT";
            let compressed = Lat.length lat block in
            (* LAT lookup: hidden by the CLB when it hits, otherwise one
               extra memory round-trip to read the table group. *)
            let lat_cost =
              match clb with
              | Some c -> if Clb.access c block then 0 else begin incr clb_misses; config.memory_latency end
              | None -> begin incr clb_misses; config.memory_latency end
            in
            let decompress =
              d.startup_cycles
              + int_of_float
                  (ceil (float_of_int config.cache.Cache.block_size *. d.cycles_per_byte))
            in
            lat_cost + config.memory_latency + transfer compressed + decompress
        in
        penalty_cycles := !penalty_cycles + penalty;
        cycles := !cycles + 1 + penalty
      end)
    trace;
  let fetches = Cache.accesses cache in
  let misses = Cache.misses cache in
  {
    fetches;
    hits = Cache.hits cache;
    misses;
    clb_misses = !clb_misses;
    total_cycles = !cycles;
    cpi = (if fetches = 0 then 0.0 else float_of_int !cycles /. float_of_int fetches);
    hit_ratio = Cache.hit_ratio cache;
    avg_miss_penalty =
      (if misses = 0 then 0.0 else float_of_int !penalty_cycles /. float_of_int misses);
  }

let slowdown ~compressed ~uncompressed = compressed.cpi /. uncompressed.cpi
