(** Cycle-approximate model of the compressed-code memory system (Fig. 1):
    CPU → I-cache → (CLB + LAT) → refill engine with decompressor → main
    memory. Drives an instruction-fetch address trace through the cache
    and charges miss penalties that depend on the compressed line size and
    the decompressor's speed. Experiment E4 uses this to reproduce the
    §1 claim that the performance loss tracks the I-cache hit ratio. *)

type decompressor = {
  name : string;
  startup_cycles : int;  (** per-line pipeline fill before bytes emerge *)
  cycles_per_byte : float;  (** per {e decompressed} output byte *)
}

val samc_decompressor : decompressor
(** The §3 engine decoding 4 bits per cycle (Fig. 5): 2 cycles per output
    byte. *)

val sadc_decompressor : decompressor
(** The §4 dictionary engine emitting one instruction per table access
    plus Huffman front-end: ~0.5 cycles per output byte. *)

val huffman_decompressor : decompressor
(** A byte-serial Huffman decoder: 1 cycle per output byte. *)

type config = {
  cache : Cache.config;
  clb_entries : int;  (** 0 disables the CLB (every refill pays a LAT access) *)
  memory_latency : int;  (** cycles to the first word of main memory *)
  bytes_per_cycle : float;  (** main-memory transfer bandwidth *)
  decompressor : decompressor option;  (** [None] = uncompressed system *)
}

val default_config : ?cache_bytes:int -> ?decompressor:decompressor -> unit -> config
(** 8 KiB 2-way cache with 32-byte lines, 16-entry CLB, 20-cycle memory
    latency, 4 bytes/cycle. *)

type result = {
  fetches : int;
  hits : int;
  misses : int;
  clb_misses : int;
  total_cycles : int;
  cpi : float;  (** cycles per fetched instruction-slot (1.0 = ideal) *)
  hit_ratio : float;
  avg_miss_penalty : float;
}

val run : config -> ?lat:Lat.t -> trace:int array -> unit -> result
(** [run config ~lat ~trace ()] simulates the fetch trace. [lat] gives the
    compressed size of each block and must be supplied when
    [config.decompressor] is set; uncompressed runs ignore it.
    @raise Invalid_argument when a compressed run lacks a LAT or the trace
    references blocks beyond it. *)

val slowdown : compressed:result -> uncompressed:result -> float
(** CPI ratio of the compressed system over the uncompressed one. *)
