(** LAT — Line Address Table (§2, Fig. 1).

    Compressed cache lines have varying sizes, so the refill engine needs a
    map from program block addresses to compressed block locations. The
    table is stored compactly as one base pointer per group of 8 blocks
    plus a length byte per block (lengths are bounded by the block size
    plus the coder's worst-case expansion). *)

type t

val build : int array -> t
(** [build lengths] lays the compressed blocks end to end, in order. *)

val of_blocks : string array -> t
(** Table for an array of compressed block payloads. *)

val entries : t -> int

val offset : t -> int -> int
(** Byte offset of a block in the compressed region. *)

val length : t -> int -> int

val total_compressed : t -> int

val storage_bytes : t -> int
(** Size of the compact on-chip/off-chip table (4-byte group bases + one
    length byte per block when lengths fit a byte, two otherwise). *)

val quantize : quantum:int -> t -> t
(** [quantize ~quantum t] pads every block length up to a multiple of
    [quantum] — Wolfe & Chanin's trade: wasted padding bytes in exchange
    for shorter length fields in the table. *)

val storage_bits : quantum:int -> t -> int
(** Exact table size in bits when lengths are stored as multiples of
    [quantum] (4-byte group bases plus ceil(log2(max/quantum + 1))-bit
    length fields). The lengths must already be multiples of [quantum]. *)

val serialize : t -> string

val deserialize : string -> pos:int -> t * int
