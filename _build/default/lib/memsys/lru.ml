type t = {
  capacity : int;
  tags : int array; (* -1 = empty *)
  stamps : int array;
  mutable clock : int;
}

let create ~capacity =
  assert (capacity > 0);
  { capacity; tags = Array.make capacity (-1); stamps = Array.make capacity 0; clock = 0 }

let find t tag =
  let rec go i = if i = t.capacity then -1 else if t.tags.(i) = tag then i else go (i + 1) in
  go 0

let mem t tag = find t tag >= 0

let access t tag =
  t.clock <- t.clock + 1;
  let i = find t tag in
  if i >= 0 then begin
    t.stamps.(i) <- t.clock;
    true
  end
  else begin
    (* evict: first empty slot, else oldest stamp *)
    let victim = ref 0 in
    (try
       for j = 0 to t.capacity - 1 do
         if t.tags.(j) = -1 then begin
           victim := j;
           raise Exit
         end;
         if t.stamps.(j) < t.stamps.(!victim) then victim := j
       done
     with Exit -> ());
    t.tags.(!victim) <- tag;
    t.stamps.(!victim) <- t.clock;
    false
  end

let clear t =
  Array.fill t.tags 0 t.capacity (-1);
  Array.fill t.stamps 0 t.capacity 0;
  t.clock <- 0
