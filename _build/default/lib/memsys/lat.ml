type t = { lengths : int array; offsets : int array (* prefix sums, entries + 1 *) }

let group = 8

let build lengths =
  let n = Array.length lengths in
  let offsets = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    if lengths.(i) < 0 then invalid_arg "Lat.build: negative length";
    offsets.(i + 1) <- offsets.(i) + lengths.(i)
  done;
  { lengths = Array.copy lengths; offsets }

let of_blocks blocks = build (Array.map String.length blocks)

let entries t = Array.length t.lengths

let offset t i = t.offsets.(i)

let length t i = t.lengths.(i)

let total_compressed t = t.offsets.(Array.length t.lengths)

let max_length t = Array.fold_left max 0 t.lengths

let length_bytes t = if max_length t < 256 then 1 else 2

let storage_bytes t =
  let n = entries t in
  let groups = (n + group - 1) / group in
  (4 * groups) + (length_bytes t * n)

let quantize ~quantum t =
  if quantum <= 0 then invalid_arg "Lat.quantize: quantum must be positive";
  build (Array.map (fun l -> (l + quantum - 1) / quantum * quantum) t.lengths)

let storage_bits ~quantum t =
  if quantum <= 0 then invalid_arg "Lat.storage_bits: quantum must be positive";
  let bits_for n =
    let rec go b = if n < 1 lsl b then b else go (b + 1) in
    go 1
  in
  Array.iter
    (fun l -> if l mod quantum <> 0 then invalid_arg "Lat.storage_bits: lengths not quantized")
    t.lengths;
  let n = entries t in
  let groups = (n + group - 1) / group in
  let len_bits = bits_for (max_length t / quantum) in
  (32 * groups) + (len_bits * n)

let serialize t =
  let n = entries t in
  let lb = length_bytes t in
  let b = Buffer.create (8 + storage_bytes t) in
  let u32 v =
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (v land 0xff))
  in
  u32 n;
  Buffer.add_char b (Char.chr lb);
  for i = 0 to n - 1 do
    if i mod group = 0 then u32 t.offsets.(i);
    if lb = 2 then Buffer.add_char b (Char.chr ((t.lengths.(i) lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (t.lengths.(i) land 0xff))
  done;
  Buffer.contents b

let deserialize s ~pos =
  let need n = if pos < 0 || n > String.length s then invalid_arg "Lat.deserialize: truncated" in
  let u32 p =
    need (p + 4);
    (Char.code s.[p] lsl 24) lor (Char.code s.[p + 1] lsl 16) lor (Char.code s.[p + 2] lsl 8)
    lor Char.code s.[p + 3]
  in
  let n = u32 pos in
  need (pos + 5);
  let lb = Char.code s.[pos + 4] in
  if lb <> 1 && lb <> 2 then invalid_arg "Lat.deserialize: bad length width";
  let p = ref (pos + 5) in
  let lengths = Array.make n 0 in
  let bases = Array.make ((n + group - 1) / group) 0 in
  for i = 0 to n - 1 do
    if i mod group = 0 then begin
      bases.(i / group) <- u32 !p;
      p := !p + 4
    end;
    need (!p + lb);
    let v =
      if lb = 2 then (Char.code s.[!p] lsl 8) lor Char.code s.[!p + 1] else Char.code s.[!p]
    in
    lengths.(i) <- v;
    p := !p + lb
  done;
  let t = build lengths in
  (* Consistency: stored group bases must equal the recomputed offsets. *)
  Array.iteri
    (fun gi base ->
      if t.offsets.(gi * group) <> base then invalid_arg "Lat.deserialize: inconsistent bases")
    bases;
  (t, !p)
