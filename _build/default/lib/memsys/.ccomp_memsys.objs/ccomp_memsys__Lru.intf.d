lib/memsys/lru.mli:
