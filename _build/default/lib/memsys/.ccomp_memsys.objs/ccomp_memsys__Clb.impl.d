lib/memsys/clb.ml: Lru
