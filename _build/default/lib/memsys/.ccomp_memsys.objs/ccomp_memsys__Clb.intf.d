lib/memsys/clb.mli:
