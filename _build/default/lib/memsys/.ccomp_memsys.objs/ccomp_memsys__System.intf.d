lib/memsys/system.mli: Cache Lat
