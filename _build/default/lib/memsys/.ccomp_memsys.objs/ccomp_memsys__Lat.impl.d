lib/memsys/lat.ml: Array Buffer Char String
