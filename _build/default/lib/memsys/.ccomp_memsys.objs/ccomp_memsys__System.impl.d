lib/memsys/system.ml: Array Cache Clb Lat Option
