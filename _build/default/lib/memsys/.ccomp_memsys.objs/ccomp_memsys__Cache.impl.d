lib/memsys/cache.ml: Array Lru
