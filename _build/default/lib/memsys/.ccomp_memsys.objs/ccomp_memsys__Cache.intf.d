lib/memsys/cache.mli:
