lib/memsys/lat.mli:
