lib/memsys/lru.ml: Array
