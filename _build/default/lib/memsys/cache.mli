(** Set-associative instruction cache with LRU replacement — the
    decompression buffer of the Wolfe–Chanin organisation (Fig. 1): the
    cache always holds {e uncompressed} code, so the CPU pipeline is
    untouched and decompression happens only on refill. *)

type config = {
  size_bytes : int;
  block_size : int;  (** line size; the decompression unit *)
  associativity : int;
}

val validate : config -> (unit, string) result

type t

val create : config -> t
(** @raise Invalid_argument if the configuration is not well-formed. *)

val block_of_address : t -> int -> int
(** Memory block index holding an address. *)

val access : t -> int -> bool
(** [access t address] — [true] on hit; on miss the containing block is
    filled (LRU victim evicted). *)

val accesses : t -> int

val hits : t -> int

val misses : t -> int

val hit_ratio : t -> float

val reset_stats : t -> unit

val clear : t -> unit
