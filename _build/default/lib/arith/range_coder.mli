(** Multi-symbol arithmetic (range) coder over cumulative frequencies.

    The binary coder of {!Binary_coder} is what the paper's hardware uses;
    this general coder supports the PPM reference model (§1 cites PPM as
    the best-compressing but memory-hungry family) where whole bytes and
    escape symbols are coded against adaptive frequency tables.

    A symbol with occupancy [\[cum_low, cum_low + freq)] out of [total]
    narrows the interval to that fraction. [total] must stay below
    {!max_total}. *)

val max_total : int

module Encoder : sig
  type t

  val create : unit -> t

  val encode : t -> cum_low:int -> freq:int -> total:int -> unit

  val finish : t -> string
end

module Decoder : sig
  type t

  val create : ?pos:int -> string -> t
  (** Bytes past the end of the input read as zero, as in
      {!Binary_coder.Decoder}. *)

  val decode_target : t -> total:int -> int
  (** Position of the coded point within [0, total): look up which symbol's
      cumulative interval contains it, then call {!decode_update}. *)

  val decode_update : t -> cum_low:int -> freq:int -> total:int -> unit
  (** Commit the symbol found from {!decode_target}; must use the same
      numbers the encoder used. *)
end
