(* Same 24-bit interval and carry-correct byte renormalisation as
   Binary_coder, generalised from a binary split to arbitrary cumulative
   frequency intervals. *)

let top_value = 1 lsl 24
let renorm_limit = 1 lsl 16

(* total must leave room for range/total to stay positive: range >= 2^16
   after renormalisation, so totals up to 2^16 are safe. *)
let max_total = 1 lsl 16

module Encoder = struct
  type t = {
    mutable low : int;
    mutable range : int;
    mutable cache : int;
    mutable started : bool;
    mutable pending : int;
    buf : Buffer.t;
  }

  let create () =
    { low = 0; range = top_value; cache = 0; started = false; pending = 0; buf = Buffer.create 64 }

  let shift_low e =
    let carry = e.low lsr 24 in
    if carry = 1 || e.low < 0xff0000 then begin
      assert (carry = 0 || e.started);
      if e.started then Buffer.add_char e.buf (Char.chr ((e.cache + carry) land 0xff));
      let filler = (0xff + carry) land 0xff in
      for _ = 1 to e.pending do
        Buffer.add_char e.buf (Char.chr filler)
      done;
      e.pending <- 0;
      e.cache <- (e.low lsr 16) land 0xff;
      e.started <- true
    end
    else e.pending <- e.pending + 1;
    e.low <- (e.low land 0xffff) lsl 8

  let encode e ~cum_low ~freq ~total =
    if freq <= 0 || cum_low < 0 || cum_low + freq > total || total > max_total then
      invalid_arg "Range_coder.encode: bad frequencies";
    let unit_ = e.range / total in
    e.low <- e.low + (unit_ * cum_low);
    e.range <- (if cum_low + freq = total then e.range - (unit_ * cum_low) else unit_ * freq);
    while e.range < renorm_limit do
      shift_low e;
      e.range <- e.range lsl 8
    done

  let finish e =
    let hi = e.low + e.range - 1 in
    let rec choose k =
      if k = 0 then e.low
      else
        let mask = (1 lsl k) - 1 in
        let v = (e.low + mask) land lnot mask in
        if v <= hi then v else choose (k - 1)
    in
    e.low <- choose 24;
    for _ = 1 to 3 do
      shift_low e
    done;
    if e.started then Buffer.add_char e.buf (Char.chr e.cache);
    for _ = 1 to e.pending do
      Buffer.add_char e.buf '\xff'
    done;
    let s = Buffer.contents e.buf in
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = '\x00' do
      decr n
    done;
    String.sub s 0 !n
end

module Decoder = struct
  type t = { data : string; mutable pos : int; mutable code : int; mutable range : int; mutable unit_ : int }

  let next_byte d =
    let b = if d.pos < String.length d.data then Char.code d.data.[d.pos] else 0 in
    d.pos <- d.pos + 1;
    b

  let create ?(pos = 0) data =
    let d = { data; pos; code = 0; range = top_value; unit_ = 0 } in
    for _ = 1 to 3 do
      d.code <- (d.code lsl 8) lor next_byte d
    done;
    d

  let decode_target d ~total =
    if total <= 0 || total > max_total then invalid_arg "Range_coder.decode_target: bad total";
    d.unit_ <- d.range / total;
    min (total - 1) (d.code / d.unit_)

  let decode_update d ~cum_low ~freq ~total =
    d.code <- d.code - (d.unit_ * cum_low);
    d.range <- (if cum_low + freq = total then d.range - (d.unit_ * cum_low) else d.unit_ * freq);
    while d.range < renorm_limit do
      d.code <- ((d.code lsl 8) lor next_byte d) land 0xffffff;
      d.range <- d.range lsl 8
    done
end
