(* The engine speculatively expands the full interval tree for the next n
   bits: every internal node's midpoint ("bound") is computed — 2^n - 1 of
   them, in parallel in hardware — and a comparator chain then selects the
   real path. Each speculative node carries the decoder state (code
   window, range, stream position) it would have under its prefix, so the
   selected path performs exactly the operations of the bit-serial
   decoder, making the two bit-for-bit identical. *)

let scale_bits = Binary_coder.scale_bits
let top_value = 1 lsl 24
let renorm_limit = 1 lsl 16

type state = { code : int; range : int; pos : int }

type t = { data : string; mutable state : state; mutable evaluations : int }

let byte_at data pos = if pos < String.length data then Char.code data.[pos] else 0

let rec renorm data s =
  if s.range < renorm_limit then
    renorm data
      {
        code = ((s.code lsl 8) lor byte_at data s.pos) land 0xffffff;
        range = s.range lsl 8;
        pos = s.pos + 1;
      }
  else s

let create ?(pos = 0) data =
  let code = (byte_at data pos lsl 16) lor (byte_at data (pos + 1) lsl 8) lor byte_at data (pos + 2) in
  { data; state = { code; range = top_value; pos = pos + 3 }; evaluations = 0 }

(* Speculative expansion tree: each internal node records its midpoint
   ("bound") and its own decoder state; the selection network compares
   state.code against bound to pick the child. *)
type node =
  | Leaf of state
  | Node of int * state * node * node (* bound, state, child for bit 0, child for bit 1 *)

let decode_bits t ~n ~p0 =
  if n < 1 || n > 4 then invalid_arg "Nibble_decoder.decode_bits: n must be in 1..4";
  let rec expand s ~prefix ~width =
    if width = n then Leaf s
    else begin
      t.evaluations <- t.evaluations + 1;
      let p = p0 ~prefix ~width in
      let bound = (s.range lsr scale_bits) * p in
      (* Child states under both speculative outcomes. A child whose
         prefix is inconsistent with the real code carries garbage (even a
         negative code window); it is never selected. *)
      let s0 = renorm t.data { s with range = bound } in
      let s1 = renorm t.data { s with code = s.code - bound; range = s.range - bound } in
      Node
        ( bound,
          s,
          expand s0 ~prefix:(prefix lsl 1) ~width:(width + 1),
          expand s1 ~prefix:((prefix lsl 1) lor 1) ~width:(width + 1) )
    end
  in
  let tree = expand t.state ~prefix:0 ~width:0 in
  (* Selection network (the comparator column of Fig. 5). *)
  let rec select acc = function
    | Leaf s ->
      t.state <- s;
      acc
    | Node (bound, s, zero, one) ->
      if s.code < bound then select (acc lsl 1) zero else select ((acc lsl 1) lor 1) one
  in
  select 0 tree

let decode_nibble t ~p0 = decode_bits t ~n:4 ~p0

let consumed_bytes t = min t.state.pos (String.length t.data)

let midpoint_evaluations t = t.evaluations
