(** Software model of the paper's parallel decompression engine (§3,
    Fig. 5).

    The bit-serial decoder computes one midpoint per output bit, but each
    midpoint depends on the previous one. The paper's hardware instead
    evaluates {e all} 2^k - 1 candidate midpoints of the next k bits in
    parallel (15 midpoints and 15 probabilities for k = 4), then selects
    the decoded nibble with comparators against the code value. This
    module models that engine: it decodes four bits per step by expanding
    the full depth-4 midpoint tree, and must produce bit-for-bit the same
    output as {!Binary_coder.Decoder} for the same model walk.

    The walk is expressed through a probability oracle so the engine can
    be driven by any model (the SAMC Markov trees in practice): the oracle
    receives the bits decoded so far in the current step and returns the
    prediction for the next bit, mirroring how the probability memory of
    Fig. 5 is addressed by previously decoded bits. *)

type t

val create : ?pos:int -> string -> t
(** Same stream format as {!Binary_coder.Decoder}: bytes past the end of
    the input read as zero. *)

val decode_nibble : t -> p0:(prefix:int -> width:int -> int) -> int
(** [decode_nibble d ~p0] decodes 4 bits (returned most significant
    first, i.e. first decoded bit in bit 3). [p0 ~prefix ~width] must
    return the model's prediction for the next bit after the [width] bits
    [prefix] (0 <= width < 4) of this nibble — exactly the 15 probability
    fetches of the parallel engine. *)

val decode_bits : t -> n:int -> p0:(prefix:int -> width:int -> int) -> int
(** Generalisation used for odd tails: decodes [n] bits (1 <= n <= 4) in
    one parallel step. *)

val consumed_bytes : t -> int

val midpoint_evaluations : t -> int
(** Number of midpoint computations performed so far — the quantity the
    hardware does in parallel; it must be (2^n - 1) per n-bit step. *)
