lib/arith/range_coder.mli:
