lib/arith/binary_coder.mli:
