lib/arith/nibble_decoder.mli:
