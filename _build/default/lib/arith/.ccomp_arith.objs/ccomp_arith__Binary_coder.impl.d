lib/arith/binary_coder.ml: Buffer Char String
