lib/arith/nibble_decoder.ml: Binary_coder Char String
