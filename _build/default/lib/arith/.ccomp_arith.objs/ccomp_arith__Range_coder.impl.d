lib/arith/range_coder.ml: Buffer Char String
