type t = { counts : int array; mutable total : int }

let create n =
  assert (n > 0);
  { counts = Array.make n 0; total = 0 }

let alphabet_size t = Array.length t.counts

let add_many t sym k =
  t.counts.(sym) <- t.counts.(sym) + k;
  t.total <- t.total + k

let add t sym = add_many t sym 1

let count t sym = t.counts.(sym)

let total t = t.total

let probability t sym =
  if t.total = 0 then 0.0 else float_of_int t.counts.(sym) /. float_of_int t.total

let counts t = Array.copy t.counts

let iter_nonzero t f =
  Array.iteri (fun sym c -> if c > 0 then f sym c) t.counts

let nonzero t =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.counts

let log2 x = log x /. log 2.0

let entropy t =
  if t.total = 0 then 0.0
  else
    let n = float_of_int t.total in
    Array.fold_left
      (fun acc c ->
        if c = 0 then acc
        else
          let p = float_of_int c /. n in
          acc -. (p *. log2 p))
      0.0 t.counts

let of_string s =
  let t = create 256 in
  String.iter (fun c -> add t (Char.code c)) s;
  t
