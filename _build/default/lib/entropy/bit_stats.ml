type t = {
  width : int;
  ones : int array; (* ones.(i) = #samples with bit i set *)
  pairs : int array; (* pairs.(i*width+j) = #samples with bits i and j both set *)
  mutable samples : int;
}

let create ~width =
  assert (width >= 1 && width <= 64);
  { width; ones = Array.make width 0; pairs = Array.make (width * width) 0; samples = 0 }

let width t = t.width

let add_word t word =
  t.samples <- t.samples + 1;
  (* Collect set-bit positions once, then update the upper-triangle pair
     counts; typical instruction words are sparse enough for this to be
     cheaper than the full width^2 sweep. *)
  let set = ref [] in
  for i = t.width - 1 downto 0 do
    if Int64.logand (Int64.shift_right_logical word i) 1L = 1L then begin
      t.ones.(i) <- t.ones.(i) + 1;
      set := i :: !set
    end
  done;
  let rec pairs = function
    | [] -> ()
    | i :: rest ->
      List.iter (fun j -> t.pairs.((i * t.width) + j) <- t.pairs.((i * t.width) + j) + 1) (i :: rest);
      pairs rest
  in
  pairs !set

let samples t = t.samples

let bit_probability t i =
  if t.samples = 0 then 0.0 else float_of_int t.ones.(i) /. float_of_int t.samples

let log2 x = log x /. log 2.0

let binary_entropy p =
  if p <= 0.0 || p >= 1.0 then 0.0 else (-.p *. log2 p) -. ((1.0 -. p) *. log2 (1.0 -. p))

let bit_entropy t i = binary_entropy (bit_probability t i)

let pair_count t i j =
  let i, j = if i <= j then (i, j) else (j, i) in
  t.pairs.((i * t.width) + j)

let correlation t i j =
  if t.samples = 0 then 0.0
  else
    let n = float_of_int t.samples in
    let pi = bit_probability t i and pj = bit_probability t j in
    let pij = float_of_int (pair_count t i j) /. n in
    let var_i = pi *. (1.0 -. pi) and var_j = pj *. (1.0 -. pj) in
    if var_i <= 0.0 || var_j <= 0.0 then 0.0
    else (pij -. (pi *. pj)) /. sqrt (var_i *. var_j)

let plogp p = if p <= 0.0 then 0.0 else -.p *. log2 p

let joint_entropy t i j =
  if t.samples = 0 then 0.0
  else
    let n = float_of_int t.samples in
    let p11 = float_of_int (pair_count t i j) /. n in
    let pi = bit_probability t i and pj = bit_probability t j in
    let p10 = pi -. p11 and p01 = pj -. p11 in
    let p00 = 1.0 -. p11 -. p10 -. p01 in
    plogp p00 +. plogp p01 +. plogp p10 +. plogp p11

let conditional_entropy t i j = joint_entropy t i j -. bit_entropy t i

let correlation_matrix t =
  Array.init t.width (fun i ->
      Array.init t.width (fun j -> if i = j then 1.0 else Float.abs (correlation t i j)))
