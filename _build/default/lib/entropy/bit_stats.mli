(** Per-bit statistics of fixed-width words — the measurements behind the
    paper's stream-subdivision heuristic (§3): per-bit biases and pairwise
    correlation between bit positions of the instruction word. *)

type t
(** Accumulated statistics for words of a fixed width. *)

val create : width:int -> t
(** [create ~width] accumulates statistics for [width]-bit words
    (1 <= width <= 64). *)

val width : t -> int

val add_word : t -> int64 -> unit
(** Account one instruction word; bit 0 is the least significant. *)

val samples : t -> int

val bit_probability : t -> int -> float
(** [bit_probability t i] is P(bit i = 1). *)

val bit_entropy : t -> int -> float
(** Binary entropy of bit position [i], in bits. *)

val correlation : t -> int -> int -> float
(** [correlation t i j] is the Pearson correlation coefficient between bit
    positions [i] and [j], in \[-1, 1\]. 0 when either bit is constant. *)

val correlation_matrix : t -> float array array
(** Full symmetric |corr| matrix (absolute values), diagonal = 1. *)

val joint_entropy : t -> int -> int -> float
(** [joint_entropy t i j] is H(b_i, b_j) in bits (from the empirical 2×2
    joint distribution). *)

val conditional_entropy : t -> int -> int -> float
(** [conditional_entropy t i j] is H(b_j | b_i) = H(b_i, b_j) - H(b_i);
    the cost in bits of coding bit [j] knowing bit [i]. *)

val binary_entropy : float -> float
(** [binary_entropy p] = -p log2 p - (1-p) log2 (1-p), 0 at p ∈ {0,1}. *)
