(** Symbol frequency counting over a fixed alphabet. *)

type t

val create : int -> t
(** [create n] counts symbols in \[0, n). *)

val alphabet_size : t -> int

val add : t -> int -> unit
(** Increment the count of one symbol. *)

val add_many : t -> int -> int -> unit
(** [add_many t sym k] increments by [k]. *)

val count : t -> int -> int

val total : t -> int

val probability : t -> int -> float
(** Empirical probability; 0 when no symbols have been counted. *)

val counts : t -> int array
(** Copy of the count table. *)

val iter_nonzero : t -> (int -> int -> unit) -> unit
(** [iter_nonzero t f] calls [f sym count] for each symbol with count > 0. *)

val nonzero : t -> int
(** Number of distinct symbols observed. *)

val entropy : t -> float
(** Order-0 Shannon entropy in bits/symbol (0 for empty). *)

val of_string : string -> t
(** Byte frequencies of a string (alphabet 256). *)
