lib/entropy/bit_stats.mli:
