lib/entropy/freq.ml: Array Char String
