lib/entropy/freq.mli:
