lib/entropy/bit_stats.ml: Array Float Int64 List
