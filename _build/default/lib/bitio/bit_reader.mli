(** MSB-first bit input over a string.

    Reading past the end of the data yields 0 bits; this mirrors the paper's
    decompressor, whose [get_byte] keeps supplying bytes after the encoded
    block ends (the encoder truncates trailing zero bytes). Use
    [overrun] to detect how far past the end a decoder has read. *)

type t

val create : ?start_bit:int -> string -> t
(** [create data] reads from the beginning of [data]; [start_bit] (default 0)
    skips that many leading bits. *)

val pos : t -> int
(** Bit position of the next bit to be read. *)

val overrun : t -> int
(** Number of bits read past the end of the data (0 when within bounds). *)

val get_bit : t -> int
(** Next bit, or 0 past end of data. *)

val get_bits : t -> int -> int
(** [get_bits r width] reads [width] bits MSB-first. [0 <= width <= 30]. *)

val get_byte : t -> int
(** Reads 8 bits. *)

val align_byte : t -> unit
(** Skips to the next byte boundary. *)

val remaining_bits : t -> int
(** Bits left before the end of data (0 when exhausted). *)
