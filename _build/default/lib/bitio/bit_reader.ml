type t = { data : string; len_bits : int; mutable pos : int }

let create ?(start_bit = 0) data =
  assert (start_bit >= 0);
  { data; len_bits = 8 * String.length data; pos = start_bit }

let pos r = r.pos

let overrun r = if r.pos > r.len_bits then r.pos - r.len_bits else 0

let get_bit r =
  let p = r.pos in
  r.pos <- p + 1;
  if p >= r.len_bits then 0
  else
    let byte = Char.code r.data.[p lsr 3] in
    (byte lsr (7 - (p land 7))) land 1

let get_bits r width =
  assert (width >= 0 && width <= 30);
  let rec go acc i = if i = width then acc else go ((acc lsl 1) lor get_bit r) (i + 1) in
  go 0 0

let get_byte r = get_bits r 8

let align_byte r =
  let rem = r.pos land 7 in
  if rem <> 0 then r.pos <- r.pos + (8 - rem)

let remaining_bits r = if r.pos >= r.len_bits then 0 else r.len_bits - r.pos
