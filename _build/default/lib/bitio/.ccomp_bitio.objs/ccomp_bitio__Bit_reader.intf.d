lib/bitio/bit_reader.mli:
