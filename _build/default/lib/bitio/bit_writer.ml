type t = { buf : Buffer.t; mutable acc : int; mutable nacc : int }

let create () = { buf = Buffer.create 256; acc = 0; nacc = 0 }

let bit_length w = (8 * Buffer.length w.buf) + w.nacc

let byte_length w = Buffer.length w.buf + if w.nacc > 0 then 1 else 0

let flush_acc w =
  if w.nacc = 8 then begin
    Buffer.add_char w.buf (Char.chr w.acc);
    w.acc <- 0;
    w.nacc <- 0
  end

let put_bit w b =
  assert (b = 0 || b = 1);
  w.acc <- (w.acc lsl 1) lor b;
  w.nacc <- w.nacc + 1;
  flush_acc w

let put_bits w ~value ~width =
  assert (width >= 0 && width <= 30);
  for i = width - 1 downto 0 do
    put_bit w ((value lsr i) land 1)
  done

let put_byte w byte =
  assert (byte >= 0 && byte < 256);
  if w.nacc = 0 then Buffer.add_char w.buf (Char.chr byte)
  else put_bits w ~value:byte ~width:8

let align_byte w =
  while w.nacc <> 0 do
    put_bit w 0
  done

let contents w =
  let body = Buffer.contents w.buf in
  if w.nacc = 0 then body
  else body ^ String.make 1 (Char.chr (w.acc lsl (8 - w.nacc)))

let reset w =
  Buffer.clear w.buf;
  w.acc <- 0;
  w.nacc <- 0
