(* Quickstart: generate a benchmark, compress it with every algorithm in
   the paper's comparison, verify the round trips, print the ratios.

   Run with: dune exec examples/quickstart.exe *)

module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc

let () =
  (* A synthetic stand-in for a SPEC95 binary (see DESIGN.md): the `go'
     profile, lowered to real MIPS machine code. *)
  let profile = Ccomp_progen.Profile.find "go" in
  let program = Ccomp_progen.Generator.generate ~seed:42L profile in
  let _, layout = Ccomp_progen.Mips_backend.lower program in
  let code = layout.Ccomp_progen.Layout.code in
  Printf.printf "program: %d bytes of MIPS code (%d instructions)\n\n" (String.length code)
    (String.length code / 4);

  (* File-oriented references (sequential decompression only). *)
  let lzw = Ccomp_baselines.Lzw.compress code in
  assert (String.equal (Ccomp_baselines.Lzw.decompress lzw) code);
  let lzss = Ccomp_baselines.Lzss.compress code in
  assert (String.equal (Ccomp_baselines.Lzss.decompress lzss) code);

  (* Block-oriented schemes (random access at cache-line granularity). *)
  let huff = Ccomp_baselines.Byte_huffman.compress code in
  assert (String.equal (Ccomp_baselines.Byte_huffman.decompress huff) code);
  let samc = Samc.compress (Samc.mips_config ()) code in
  assert (String.equal (Samc.decompress samc) code);
  let sadc = Sadc.Mips.compress_image (Sadc.default_config ()) code in
  assert (String.equal (Sadc.Mips.decompress sadc) code);

  let row name ratio note = Printf.printf "  %-22s %6.3f   %s\n" name ratio note in
  Printf.printf "compression ratios (compressed/original, smaller is better):\n";
  row "compress (LZW)" (float_of_int (String.length lzw) /. float_of_int (String.length code))
    "file-oriented";
  row "gzip (LZSS+Huffman)" (float_of_int (String.length lzss) /. float_of_int (String.length code))
    "file-oriented";
  row "byte Huffman [K&W]" (Ccomp_baselines.Byte_huffman.ratio huff) "block-decodable";
  row "SAMC" (Samc.ratio samc) "block-decodable";
  row "SADC" (Sadc.Mips.ratio sadc) "block-decodable";

  (* Random access: decompress one 32-byte cache block in isolation. *)
  let block = 11 in
  let original = String.sub code (block * 32) 32 in
  let from_samc =
    Samc.decompress_block samc.Samc.config samc.Samc.model ~original_bytes:32
      samc.Samc.blocks.(block)
  in
  assert (String.equal from_samc original);
  Printf.printf "\nblock %d decompressed in isolation: %d compressed bytes -> %d code bytes\n"
    block
    (String.length samc.Samc.blocks.(block))
    (String.length from_samc);
  print_endline "all round trips verified"
