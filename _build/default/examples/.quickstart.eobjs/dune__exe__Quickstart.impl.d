examples/quickstart.ml: Array Ccomp_baselines Ccomp_core Ccomp_progen Printf String
