examples/beyond_the_paper.ml: Array Ccomp_baselines Ccomp_core Ccomp_isa Ccomp_progen List Printf String
