examples/embedded_boot.mli:
