examples/stream_tuning.ml: Ccomp_core Ccomp_entropy Ccomp_progen Char Float Int64 List Printf String
