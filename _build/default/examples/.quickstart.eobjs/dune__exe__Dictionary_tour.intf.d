examples/dictionary_tour.mli:
