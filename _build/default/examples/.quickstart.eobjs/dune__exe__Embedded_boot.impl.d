examples/embedded_boot.ml: Array Ccomp_core Ccomp_image Ccomp_memsys Ccomp_progen Hashtbl List Printf String
