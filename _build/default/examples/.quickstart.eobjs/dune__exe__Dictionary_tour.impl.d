examples/dictionary_tour.ml: Array Ccomp_core Ccomp_isa Ccomp_progen List Printf String
