examples/quickstart.mli:
