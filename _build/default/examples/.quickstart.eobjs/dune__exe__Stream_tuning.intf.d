examples/stream_tuning.mli:
