(* Dictionary tour: watch SADC build its semiadaptive dictionary (§4).

   Compresses a small program and prints what the dictionary learned:
   which opcode groups were worth a dedicated entry, which opcodes were
   specialised to a register or immediate (the paper's `jr $31' example),
   and how one cache block parses into tokens.

   Run with: dune exec examples/dictionary_tour.exe *)

module Sadc = Ccomp_core.Sadc
module Mips = Ccomp_isa.Mips

let mnemonic sym = Mips.specs.(sym).Mips.mnemonic

let stream_name = Ccomp_core.Sadc_isa.Mips_streams.stream_names

let describe_prim (p : Sadc.Mips.primitive) =
  let fixes =
    List.map
      (fun (s, pos, v) -> Printf.sprintf "%s[%d]=%d" stream_name.(s) pos v)
      (List.sort compare p.Sadc.Mips.fixed)
  in
  match fixes with
  | [] -> mnemonic p.Sadc.Mips.sym
  | _ -> Printf.sprintf "%s{%s}" (mnemonic p.Sadc.Mips.sym) (String.concat "," fixes)

let describe_entry (e : Sadc.Mips.entry) =
  String.concat " ; " (Array.to_list (Array.map describe_prim e.Sadc.Mips.prims))

let () =
  let profile = Ccomp_progen.Profile.find "xlisp" in
  let program = Ccomp_progen.Generator.generate ~seed:3L profile in
  let _, layout = Ccomp_progen.Mips_backend.lower program in
  let code = layout.Ccomp_progen.Layout.code in
  let z = Sadc.Mips.compress_image (Sadc.default_config ()) code in
  assert (String.equal (Sadc.Mips.decompress z) code);

  let st = Sadc.Mips.stats z in
  Printf.printf "program: %d bytes; dictionary built in %d generate-and-reparse rounds\n"
    (String.length code) st.Ccomp_core.Sadc.rounds;
  Printf.printf
    "dictionary: %d entries = %d base opcodes + %d opcode groups + %d specialised opcodes\n\n"
    st.Ccomp_core.Sadc.entries st.Ccomp_core.Sadc.base_entries st.Ccomp_core.Sadc.group_entries
    st.Ccomp_core.Sadc.specialized_entries;

  let dict = Sadc.Mips.dictionary z in
  Printf.printf "longest opcode groups (the compiler idioms SADC found):\n";
  let groups =
    Array.to_list dict
    |> List.filter (fun e -> Array.length e.Sadc.Mips.prims > 1)
    |> List.sort (fun a b ->
           compare (Array.length b.Sadc.Mips.prims) (Array.length a.Sadc.Mips.prims))
  in
  List.iteri
    (fun i e -> if i < 8 then Printf.printf "  %d instrs: %s\n" (Array.length e.Sadc.Mips.prims) (describe_entry e))
    groups;

  Printf.printf "\nsample specialised opcodes (operands absorbed into the opcode):\n";
  let specials =
    Array.to_list dict
    |> List.filter (fun e ->
           Array.length e.Sadc.Mips.prims = 1 && e.Sadc.Mips.prims.(0).Sadc.Mips.fixed <> [])
  in
  List.iteri (fun i e -> if i < 8 then Printf.printf "  %s\n" (describe_entry e)) specials;

  (* Parse of one block: decode it token by token. *)
  let b = 5 in
  Printf.printf "\nblock %d (%d original bytes -> %d compressed) decodes to:\n" b
    (Sadc.Mips.block_original_bytes z b)
    (Sadc.Mips.block_payload_bytes z b);
  List.iter
    (fun instr -> Printf.printf "  %s\n" (Mips.to_string instr))
    (Sadc.Mips.decompress_block z b);

  Printf.printf "\nratio %.3f (code only), %.3f with dictionary and tables\n" (Sadc.Mips.ratio z)
    (Sadc.Mips.ratio_with_tables z)
