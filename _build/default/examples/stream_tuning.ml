(* Stream tuning: the SAMC stream-subdivision study of §3.

   Measures per-bit statistics of a MIPS program, shows which instruction
   bits correlate, and compares subdivision choices — including the
   correlation-driven randomized search the paper describes — by both the
   pairwise entropy estimate and the real compressed size.

   Run with: dune exec examples/stream_tuning.exe *)

module Samc = Ccomp_core.Samc
module Stream_split = Ccomp_core.Stream_split
module Bit_stats = Ccomp_entropy.Bit_stats

let () =
  let profile = Ccomp_progen.Profile.find "perl" in
  let program = Ccomp_progen.Generator.generate ~seed:11L profile in
  let _, layout = Ccomp_progen.Mips_backend.lower program in
  let code = layout.Ccomp_progen.Layout.code in

  (* Gather per-bit statistics over the instruction words. *)
  let stats = Bit_stats.create ~width:32 in
  String.iteri
    (fun i _ ->
      if i mod 4 = 0 then begin
        let w =
          (Char.code code.[i] lsl 24) lor (Char.code code.[i + 1] lsl 16)
          lor (Char.code code.[i + 2] lsl 8) lor Char.code code.[i + 3]
        in
        Bit_stats.add_word stats (Int64.of_int w)
      end)
    code;

  Printf.printf "per-bit 1-probabilities (bit 31 = first opcode bit):\n ";
  for bit = 31 downto 0 do
    Printf.printf " %4.2f" (Bit_stats.bit_probability stats bit);
    if bit = 16 then Printf.printf "\n "
  done;
  print_newline ();

  (* The opcode field (bits 31..26) is highly biased; immediate bits are
     nearly uniform. Show a few strong correlations. *)
  Printf.printf "\nstrongest bit correlations:\n";
  let pairs = ref [] in
  for i = 0 to 31 do
    for j = i + 1 to 31 do
      pairs := (Float.abs (Bit_stats.correlation stats i j), i, j) :: !pairs
    done
  done;
  List.iteri
    (fun k (c, i, j) -> if k < 6 then Printf.printf "  |corr(bit %2d, bit %2d)| = %.3f\n" i j c)
    (List.sort (fun (a, _, _) (b, _, _) -> compare b a) !pairs);

  (* Compare subdivisions: the estimate ranks them, compression confirms. *)
  let candidates =
    [
      ("1 x 32 (infeasible tree)", None);
      ("2 x 16", Some (Stream_split.consecutive ~word_bits:32 ~streams:2));
      ("4 x 8 (paper default)", Some (Stream_split.consecutive ~word_bits:32 ~streams:4));
      ("8 x 4", Some (Stream_split.consecutive ~word_bits:32 ~streams:8));
      ("optimized 4 x 8", Some (Stream_split.optimize ~seed:1L ~streams:4 stats));
    ]
  in
  Printf.printf "\n%-26s %14s %12s %12s\n" "subdivision" "est. bits/word" "ratio" "model bytes";
  List.iter
    (fun (name, split) ->
      match split with
      | None ->
        (* A single 32-bit stream needs 2^32 - 1 probabilities: report the
           estimate only (the paper's point about infeasibility). *)
        Printf.printf "%-26s %14s %12s %12s\n" name "-" "(2^32 tree)" "-"
      | Some split ->
        let est = Stream_split.estimated_cost stats split in
        let cfg = Samc.mips_config ~streams:split () in
        let z = Samc.compress cfg code in
        assert (String.equal (Samc.decompress z) code);
        Printf.printf "%-26s %14.2f %12.3f %12d\n" name est (Samc.ratio z) (Samc.model_bytes z))
    candidates;

  print_endline "\n(the optimized split groups correlated bits; compare its ratio to 4 x 8)"
