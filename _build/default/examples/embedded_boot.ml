(* Embedded boot: the full deployment path of the paper's architecture.

   A firmware image is compressed into a SECF container (the ROM), read
   back, integrity-checked, and then a CPU with an instruction cache runs
   from it: every cache miss looks up the LAT (through the CLB) and
   decompresses one block. The example verifies that execution through
   the compressed path fetches exactly the bytes of the original program
   and reports the performance cost.

   Run with: dune exec examples/embedded_boot.exe *)

module Samc = Ccomp_core.Samc
module Image = Ccomp_image.Image
module System = Ccomp_memsys.System
module Lat = Ccomp_memsys.Lat

let () =
  let profile = Ccomp_progen.Profile.find "m88ksim" in
  let program = Ccomp_progen.Generator.generate ~seed:9L profile in
  let _, layout = Ccomp_progen.Mips_backend.lower program in
  let code = layout.Ccomp_progen.Layout.code in

  (* Build the ROM. *)
  let compressed = Samc.compress (Samc.mips_config ()) code in
  let rom = Image.write (Image.of_samc ~isa:Image.Mips compressed) in
  Printf.printf "ROM image: %d bytes for %d bytes of code (%.1f%% of original, with tables)\n"
    (String.length rom) (String.length code)
    (100.0 *. float_of_int (String.length rom) /. float_of_int (String.length code));

  (* Boot: parse + CRC check, then reconstruct and compare. *)
  let image =
    match Image.read rom with
    | Ok image -> image
    | Error e -> failwith ("boot failure: " ^ e)
  in
  let recovered = Image.decompress image in
  assert (String.equal recovered code);
  print_endline "boot integrity check passed: decompressed text equals original";

  (* Run: fetch trace through the cache + refill engine. Every fetched
     cache line is also decompressed from its own bytes and compared. *)
  let trace = Ccomp_progen.Trace.generate program layout ~seed:10L ~length:200_000 in
  let lat = image.Image.lat in
  let z = match image.Image.payload with Image.Samc z -> z | _ -> assert false in
  let block_bytes = 32 in
  let verified = Hashtbl.create 64 in
  Array.iter
    (fun addr ->
      let b = addr / block_bytes in
      if not (Hashtbl.mem verified b) then begin
        Hashtbl.add verified b ();
        let original_bytes = min block_bytes (String.length code - (b * block_bytes)) in
        let line =
          Samc.decompress_block z.Samc.config z.Samc.model ~original_bytes z.Samc.blocks.(b)
        in
        assert (String.equal line (String.sub code (b * block_bytes) original_bytes))
      end)
    trace;
  Printf.printf "executed %d fetches touching %d distinct lines; every refill verified\n"
    (Array.length trace) (Hashtbl.length verified);

  (* Performance cost vs an uncompressed system, per cache size. *)
  Printf.printf "\n%8s %12s %12s %10s %10s\n" "cache" "hit ratio" "CPI (plain)" "CPI (samc)" "slowdown";
  List.iter
    (fun cache_bytes ->
      let base = System.run (System.default_config ~cache_bytes ()) ~trace () in
      let comp =
        System.run
          (System.default_config ~cache_bytes ~decompressor:System.samc_decompressor ())
          ~lat ~trace ()
      in
      Printf.printf "%7dB %12.4f %12.3f %10.3f %9.3fx\n" cache_bytes base.System.hit_ratio
        base.System.cpi comp.System.cpi
        (System.slowdown ~compressed:comp ~uncompressed:base))
    [ 512; 1024; 2048; 4096; 8192 ]
