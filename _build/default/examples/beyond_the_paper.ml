(* Beyond the paper: the extensions the paper points at but leaves open.

   §1 cites PPM/DMC as the best-compressing methods, rejected for their
   model memory; §2 contrasts compression with redesigning the ISA for
   density; §3 sketches a parallel nibble-at-a-time decoder (Fig. 5); §6
   asks "how to generate the best Markov model given a subject program".
   This example exercises all four on one benchmark.

   Run with: dune exec examples/beyond_the_paper.exe *)

module Samc = Ccomp_core.Samc
module Mips = Ccomp_isa.Mips
module Dense16 = Ccomp_isa.Dense16

let () =
  let profile = Ccomp_progen.Profile.find "vortex" in
  let program = Ccomp_progen.Generator.generate ~seed:5L profile in
  let instrs, layout = Ccomp_progen.Mips_backend.lower program in
  let code = layout.Ccomp_progen.Layout.code in
  Printf.printf "workload: %s profile, %d bytes of MIPS code\n\n" profile.Ccomp_progen.Profile.name
    (String.length code);

  (* 1. The compression headroom (and its price): PPM and DMC. *)
  let gzip = Ccomp_baselines.Lzss.ratio code in
  let ppm = Ccomp_baselines.Ppm.ratio code in
  let ppm_mem = Ccomp_baselines.Ppm.model_memory code in
  let dmc = Ccomp_baselines.Dmc.ratio code in
  let dmc_states = Ccomp_baselines.Dmc.model_states code in
  Printf.printf "finite-context headroom (SS 1):\n";
  Printf.printf "  gzip %.3f | PPM order-2 %.3f with ~%d KiB of model | DMC %.3f with %d states\n"
    gzip ppm
    (ppm_mem.Ccomp_baselines.Ppm.approx_bytes / 1024)
    dmc dmc_states;
  Printf.printf "  (adaptive models also decode strictly sequentially: no block access)\n\n";

  (* 2. The other road of SS 2: a denser instruction encoding. *)
  let st = Dense16.stats instrs in
  Printf.printf "dense 16/32-bit re-encoding (SS 2's alternative):\n";
  Printf.printf "  ratio %.3f  (%d%% half-word forms, %d%% word forms, %d%% escaped)\n"
    (Dense16.ratio instrs)
    (100 * st.Dense16.half_forms / st.Dense16.instructions)
    (100 * st.Dense16.word_forms / st.Dense16.instructions)
    (100 * st.Dense16.escaped / st.Dense16.instructions);
  let dense = Dense16.encode_program instrs in
  (match Dense16.decode_program dense with
  | Some back when List.length back = List.length instrs -> ()
  | _ -> failwith "dense re-encoding is not lossless");
  let samc = Samc.compress (Samc.mips_config ()) code in
  Printf.printf "  SAMC on the same program: %.3f - compression wins without a new pipeline\n\n"
    (Samc.ratio samc);

  (* 3. The Fig. 5 engine: decode a block four bits per step. *)
  let block = 3 in
  let serial = Samc.decompress_block samc.Samc.config samc.Samc.model ~original_bytes:32
      samc.Samc.blocks.(block) in
  let parallel, evals =
    Samc.decompress_block_parallel samc.Samc.config samc.Samc.model ~original_bytes:32
      samc.Samc.blocks.(block)
  in
  assert (String.equal serial parallel);
  Printf.printf "parallel decoder (Fig. 5): block %d, %d midpoint evaluations " block evals;
  Printf.printf "(15 per nibble), output identical to the bit-serial decoder\n\n";

  (* 4. SS 6 future work: fit the model to the program by pruning. *)
  Printf.printf "Markov model pruning (SS 6): threshold -> (ratio, model bytes)\n ";
  List.iter
    (fun prune_below ->
      let z = Samc.compress (Samc.mips_config ~prune_below ()) code in
      Printf.printf "  %3d -> (%.3f, %5dB)" prune_below (Samc.ratio z) (Samc.model_bytes z))
    [ 0; 4; 16; 64 ];
  print_newline ()
