(** [ccomp loadgen]: seeded, open-loop, coordinated-omission-safe
    traffic generation against a running daemon.

    Open loop: the arrival schedule (Poisson or uniform, from a seed)
    is fixed before the first request; a late slot is sent immediately,
    never rescheduled, so a slow server cannot throttle the offered
    load. Coordinated-omission safety: each latency is measured from
    the request's {e scheduled} send instant, so client-side queueing
    behind a stall is charged to the requests it delayed.

    Latency distributions aggregate into the {!Ccomp_obs.Obs} log-scale
    histograms ([loadgen.latency_us] and, from echoed {!Serve.timing}
    records, [loadgen.queue_us] / [loadgen.service_us] /
    [loadgen.network_us]), and the report carries
    p50/p95/p99/p99.9/max plus shed and deadline-expired rates checked
    against declared SLOs. *)

type arrivals = Poisson | Uniform

type config = {
  host : string;
  port : int;
  rate_rps : float;  (** offered arrival rate, requests/second *)
  duration_s : float;  (** schedule horizon *)
  arrivals : arrivals;
  seed : int;  (** drives the schedule, payload and job mix *)
  senders : int;  (** concurrent sender domains (min 1) *)
  conns : int;
      (** persistent-connection slots fleet-wide ([0] = one per
          sender); each sender round-robins its share per request *)
  conn_reuse : bool;
      (** keep connections open across requests (CCQ1v4 keep-alive,
          the default); [false] reconnects per request — the pre-v4
          behaviour, kept measurable for on/off comparisons *)
  payload_bytes : int;  (** compress-job body size (min 4) *)
  algo : Serve.algo;
  isa : Serve.isa;
  block_size : int;
  deadline_ms : int;  (** per-request budget; [0] = none *)
  timeout_s : float;  (** client transport timeout *)
  mix_compress : int;  (** job-mix weights (total must be positive) *)
  mix_decompress : int;
  mix_ping : int;
  slo_p99_ms : float option;  (** declared SLOs; [None] = unchecked *)
  slo_shed_rate : float option;
  slo_deadline_rate : float option;
}

val default_config : config
(** 50 rps Poisson for 5 s, seed 42, 4 senders, one reused connection
    per sender, 4 KiB samc/mips payloads, mix 1:1:2
    compress:decompress:ping, no deadline, no SLOs. *)

val schedule :
  arrivals:arrivals -> rate_rps:float -> duration_s:float -> seed:int -> float array
(** Arrival offsets in seconds from the run start, strictly within
    [[0, duration_s)]. Uniform: [i /. rate]. Poisson: cumulative
    seeded exponential inter-arrivals. Empty when rate or duration is
    non-positive. Deterministic in [(arrivals, rate, duration, seed)]. *)

type report = {
  r_offered_rps : float;
  r_achieved_rps : float;  (** ok replies per wall-clock second *)
  r_duration_s : float;
  r_elapsed_s : float;
  r_sent : int;
  r_ok : int;
  r_shed : int;
  r_deadline_expired : int;
  r_failed : int;
  r_transport : int;
  r_timed : int;  (** replies that carried a server timing record *)
  r_p50_ms : float;  (** corrected (scheduled-send) latency, ok replies *)
  r_p95_ms : float;
  r_p99_ms : float;
  r_p999_ms : float;
  r_max_ms : float;
  r_queue_p50_ms : float;  (** server-side split from echoed timing *)
  r_queue_p99_ms : float;
  r_service_p50_ms : float;
  r_service_p99_ms : float;
  r_network_p50_ms : float;  (** corrected latency minus server time *)
  r_network_p99_ms : float;
  r_shed_rate : float;  (** shed / sent *)
  r_deadline_rate : float;  (** deadline-expired / sent *)
  r_conn_reuse : bool;  (** echoed from the config *)
  r_conns : int;  (** client connection slots in play *)
  r_connects : int;  (** connect(2) calls paid, reconnects included *)
  r_reconnects : int;
      (** reopens after the server closed between frames (idle timeout
          or recycle) — each also counts in [r_connects] *)
  r_connect_p50_ms : float;  (** connect cost, resolution included *)
  r_connect_p99_ms : float;
  r_remainder_clamped : int;
      (** ok replies whose network remainder (corrected latency minus
          echoed [server_us]) went negative under clock skew and was
          clamped to 0 instead of skewing [r_network_*] *)
  r_slo_p99_ms : float option;  (** the declared bounds, echoed *)
  r_slo_shed_rate : float option;
  r_slo_deadline_rate : float option;
  r_slo_violations : string list;  (** empty = every declared SLO held *)
  r_runtime : (string * float) list;
      (** daemon-side ["runtime.*"] telemetry bracketing this run:
          [/snapshot] is scraped before and after and the GC counters
          differenced, yielding [runtime.minor_collections] /
          [.major_collections] / [.major_cycles] / [.alloc_mb] /
          [.alloc_kb_per_req] / [.minor_collections_per_req] /
          [.gc_pauses_per_mb] (major cycles per MB served) and, when
          the daemon observed any, [runtime.gc_major_pause_p99_us].
          Empty when the daemon was unreachable or predates the
          telemetry. *)
}

val run : config -> (report, string) result
(** Check [/healthz], build the schedule and payloads, fire the load
    from [senders] domains, aggregate. [Error] covers an unreachable
    or unhealthy daemon and degenerate configs (empty schedule,
    zero-weight mix) — transport failures {e during} the run are
    counted in [r_transport], not fatal. Each call resets the loadgen
    histograms first, so back-to-back runs (a {!ramp}) measure only
    their own traffic. *)

val ramp :
  ?low:float ->
  ?high:float ->
  ?iters:int ->
  ?progress:(string -> unit) ->
  config ->
  (report * float, string) result
(** Binary-search the daemon's SLO capacity: confirm [low] (default 25
    rps) passes and [high] (default 2000) fails, then bisect [iters]
    (default 5) times, each probe a full {!run} at [cfg.duration_s].
    Returns the last {e passing} report and its offered rate — the
    highest load the daemon carried within its declared SLOs
    ([loadgen.capacity_rps]); [(failing low report, 0.)] when even
    [low] violates, [(high report, high)] when [high] passes.
    [Error] when no SLO is declared, bounds are inverted, or a probe
    could not run at all. [progress] (default silent) receives one line
    per probe. *)

val render : config -> report -> string
(** Human-readable multi-line summary, SLO verdicts last. *)

val json_keys : report -> (string * float) list
(** The report flattened to ["loadgen.*"] keys (plus the [r_runtime]
    ["runtime.*"] keys) — the BENCH json section. Declared SLO bounds
    and runtime telemetry appear only when present, so
    [tools/bench_check.sh] can gate on them exactly when they were
    recorded. *)

val emit_json : ?extra:(string * float) list -> path:string -> report -> unit
(** Write a standalone [ccomp-bench-v1] file holding the loadgen
    section; [extra] appends additional keys (e.g.
    [loadgen.capacity_rps] from a {!ramp}). *)

val merge_json : ?extra:(string * float) list -> path:string -> report -> (unit, string) result
(** Append the loadgen section (plus [extra]) to an existing
    [ccomp-bench-v1] file (textually, before the closing brace). *)

val arrivals_to_string : arrivals -> string

val arrivals_of_string : string -> arrivals option

(** Pure single-sender simulation of the measurement model, exposed for
    property tests. *)
module For_tests : sig
  val replay : scheduled:float array -> service:float array -> (float * float) array
  (** [replay ~scheduled ~service] runs requests back-to-back through
      one simulated sender ([service.(i)] seconds each) and returns
      [(corrected, naive)] latency pairs: corrected is measured from
      the scheduled instant, naive from the actual send. Corrected is
      always >= naive; under a stall they diverge. *)
end
