(* Per-request latency stages for the serve layer.

   Every binary request moves through four server-side stages — queue
   (accepted but waiting for a worker), read (frame arriving and being
   decoded), work (the codec job itself) and write (reply leaving) —
   each recorded into its own log-scale histogram. The names live here,
   in one place, because three consumers must agree on them: the daemon
   observing them, `ccomp stats` attributing p99 from a snapshot, and
   `ccomp top` rendering the live breakdown panel. *)

module Obs = Ccomp_obs.Obs

type stage = Queue | Read | Work | Write

let stages = [ Queue; Read; Work; Write ]

let stage_name = function
  | Queue -> "queue"
  | Read -> "read"
  | Work -> "work"
  | Write -> "write"

let histogram_name st = Printf.sprintf "serve.stage.%s_us" (stage_name st)

let total_histogram_name = "serve.request_us"

let h_queue = Obs.Histogram.make (histogram_name Queue)

let h_read = Obs.Histogram.make (histogram_name Read)

let h_work = Obs.Histogram.make (histogram_name Work)

let h_write = Obs.Histogram.make (histogram_name Write)

let h_total = Obs.Histogram.make total_histogram_name

let histogram = function
  | Queue -> h_queue
  | Read -> h_read
  | Work -> h_work
  | Write -> h_write

let observe st us = if Obs.metrics_enabled () then Obs.Histogram.observe (histogram st) us

let observe_total us = if Obs.metrics_enabled () then Obs.Histogram.observe h_total us

(* --- "what dominates p99" attribution ----------------------------------- *)

type stage_stats = {
  st_stage : string;
  st_count : int;
  st_p50_us : float;
  st_p99_us : float;
  st_sum_us : float;
}

type report = {
  rp_stages : stage_stats list;  (** wire order: queue, read, work, write *)
  rp_total : Obs.histogram_stats option;
  rp_dominant : string;  (** stage with the largest p99 *)
  rp_dominant_share : float;  (** its fraction of the summed stage p99s *)
}

let attribution (snap : Obs.snapshot) =
  let find name =
    List.find_opt (fun (h : Obs.histogram_stats) -> h.Obs.hs_name = name) snap.Obs.histograms
  in
  let stats =
    List.filter_map
      (fun st ->
        match find (histogram_name st) with
        | Some h when h.Obs.hs_count > 0 ->
          Some
            {
              st_stage = stage_name st;
              st_count = h.Obs.hs_count;
              st_p50_us = h.Obs.hs_p50;
              st_p99_us = h.Obs.hs_p99;
              st_sum_us = h.Obs.hs_sum;
            }
        | _ -> None)
      stages
  in
  match stats with
  | [] -> None
  | _ ->
    let p99_mass = List.fold_left (fun acc s -> acc +. s.st_p99_us) 0.0 stats in
    let dominant =
      List.fold_left (fun best s -> if s.st_p99_us > best.st_p99_us then s else best)
        (List.hd stats) stats
    in
    Some
      {
        rp_stages = stats;
        rp_total = find total_histogram_name;
        rp_dominant = dominant.st_stage;
        rp_dominant_share =
          (if p99_mass > 0.0 then dominant.st_p99_us /. p99_mass else 0.0);
      }

let render r =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "request latency by stage (server side):";
  line "  %-8s %10s %12s %12s %9s" "stage" "count" "p50 us" "p99 us" "Σ share";
  let sum_mass = List.fold_left (fun acc s -> acc +. s.st_sum_us) 0.0 r.rp_stages in
  List.iter
    (fun s ->
      line "  %-8s %10d %12.0f %12.0f %8.1f%%" s.st_stage s.st_count s.st_p50_us s.st_p99_us
        (if sum_mass > 0.0 then 100.0 *. s.st_sum_us /. sum_mass else 0.0))
    r.rp_stages;
  (match r.rp_total with
  | Some t ->
    line "  p99 dominated by %s (%.1f%% of stage p99 mass); request p99 %.0f us over %d requests"
      r.rp_dominant
      (100.0 *. r.rp_dominant_share)
      t.Obs.hs_p99 t.Obs.hs_count
  | None ->
    line "  p99 dominated by %s (%.1f%% of stage p99 mass)" r.rp_dominant
      (100.0 *. r.rp_dominant_share));
  Buffer.contents b
