(** [ccomp top]: a terminal dashboard over a running [ccomp serve].

    Polls the daemon's [/snapshot], [/events] and [/slow] endpoints
    every [interval_s] seconds, feeds the samples into an
    {!Ccomp_obs.Window} and renders windowed per-second rates,
    histogram percentiles, the decode-cache hit ratio, the event tail
    and the slow-request/GC correlation panel (what share of the
    sampled tail overlapped a major collection). A daemon predating
    [/slow] just loses that panel.

    Keys (when stdin is a TTY): [q] quits, [r] resets the rolling
    window. With [frames > 0] the dashboard exits after that many
    frames — scripts use [--frames 1] for a one-shot render; [plain]
    suppresses the screen-clearing escape codes. *)

type options = {
  host : string;
  port : int;
  interval_s : float;
  frames : int;  (** 0 = run until [q]/Ctrl-C *)
  window_s : float;
  plain : bool;
  timeout_s : float;  (** connect/read budget per poll — a dead daemon errors, never hangs *)
}

val render_frame :
  ?slow:Slow.record list ->
  window:Ccomp_obs.Window.t ->
  snapshot:Ccomp_obs.Obs.snapshot ->
  events_tail:string list ->
  title:string ->
  unit ->
  string
(** Pure frame renderer, exposed for tests: windowed rates come from
    [window], instantaneous values from [snapshot], the tail/GC
    correlation panel from [slow] (default: no panel). *)

val run : options -> (unit, string) result
