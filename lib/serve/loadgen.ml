(* Open-loop, coordinated-omission-safe load generator for the daemon.

   Open loop: the arrival schedule is fixed up front (seeded Poisson or
   uniform), and a request whose slot has passed is sent immediately
   rather than waiting its turn — a slow server cannot slow the offered
   load down, which is exactly the failure closed-loop generators hide.

   Coordinated omission: every latency is measured from the request's
   *scheduled* send instant, not the actual one. When senders fall
   behind (server stall, scheduler hiccup), the queueing delay the
   client suffered is charged to the request instead of vanishing.

   The per-request ids let the daemon echo its server-side stage split
   (queue/service), so the report can attribute tail latency to the
   server or the network without guessing. *)

module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events
module Prng = Ccomp_util.Prng

type arrivals = Poisson | Uniform

type config = {
  host : string;
  port : int;
  rate_rps : float;
  duration_s : float;
  arrivals : arrivals;
  seed : int;
  senders : int;
  conns : int;
  conn_reuse : bool;
  payload_bytes : int;
  algo : Serve.algo;
  isa : Serve.isa;
  block_size : int;
  deadline_ms : int;
  timeout_s : float;
  mix_compress : int;
  mix_decompress : int;
  mix_ping : int;
  slo_p99_ms : float option;
  slo_shed_rate : float option;
  slo_deadline_rate : float option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7070;
    rate_rps = 50.0;
    duration_s = 5.0;
    arrivals = Poisson;
    seed = 42;
    senders = 4;
    conns = 0;
    conn_reuse = true;
    payload_bytes = 4096;
    algo = Serve.Samc;
    isa = Serve.Mips;
    block_size = 32;
    deadline_ms = 0;
    timeout_s = 10.0;
    mix_compress = 1;
    mix_decompress = 1;
    mix_ping = 2;
    slo_p99_ms = None;
    slo_shed_rate = None;
    slo_deadline_rate = None;
  }

(* The whole schedule as offsets (seconds) from the run's start instant.
   Seeded, so the same config replays the same arrival process. *)
let schedule ~arrivals ~rate_rps ~duration_s ~seed =
  if rate_rps <= 0.0 || duration_s <= 0.0 then [||]
  else
    match arrivals with
    | Uniform ->
      let n = int_of_float (rate_rps *. duration_s) in
      Array.init n (fun i -> float_of_int i /. rate_rps)
    | Poisson ->
      let g = Prng.create (Int64.of_int seed) in
      let acc = ref [] and t = ref 0.0 and stop = ref false in
      while not !stop do
        (* exponential inter-arrival; 1 - u > 0 because u is in [0,1) *)
        t := !t +. (-.log (1.0 -. Prng.float g) /. rate_rps);
        if !t < duration_s then acc := !t :: !acc else stop := true
      done;
      Array.of_list (List.rev !acc)

(* --- per-request accounting --------------------------------------------- *)

type outcome = Ok_reply | Shed | Deadline | Job_failed | Transport

type sample = {
  s_outcome : outcome;
  s_corrected_us : float;  (** completion - scheduled send (CO-safe) *)
  s_naive_us : float;  (** completion - actual send *)
  s_timing : Serve.timing option;
}

let h_latency = Obs.Histogram.make "loadgen.latency_us"

let h_queue = Obs.Histogram.make "loadgen.queue_us"

let h_service = Obs.Histogram.make "loadgen.service_us"

let h_network = Obs.Histogram.make "loadgen.network_us"

let h_connect = Obs.Histogram.make "loadgen.connect_us"

(* --- report -------------------------------------------------------------- *)

type report = {
  r_offered_rps : float;
  r_achieved_rps : float;  (** ok replies per wall-clock second *)
  r_duration_s : float;
  r_elapsed_s : float;
  r_sent : int;
  r_ok : int;
  r_shed : int;
  r_deadline_expired : int;
  r_failed : int;
  r_transport : int;
  r_timed : int;  (** replies that carried a server timing record *)
  r_p50_ms : float;
  r_p95_ms : float;
  r_p99_ms : float;
  r_p999_ms : float;
  r_max_ms : float;
  r_queue_p50_ms : float;
  r_queue_p99_ms : float;
  r_service_p50_ms : float;
  r_service_p99_ms : float;
  r_network_p50_ms : float;
  r_network_p99_ms : float;
  r_shed_rate : float;
  r_deadline_rate : float;
  r_conn_reuse : bool;
  r_conns : int;  (** client connection slots in play *)
  r_connects : int;  (** connect(2) calls paid, reconnects included *)
  r_reconnects : int;  (** reopens after a server close between frames *)
  r_connect_p50_ms : float;
  r_connect_p99_ms : float;
  r_remainder_clamped : int;
      (** ok replies whose network remainder went negative (u32-capped
          [server_us] exceeding the client-measured latency under clock
          skew) and was clamped to 0 instead of skewing percentiles *)
  r_slo_p99_ms : float option;
  r_slo_shed_rate : float option;
  r_slo_deadline_rate : float option;
  r_slo_violations : string list;
  r_runtime : (string * float) list;
      (** daemon-side [runtime.*] deltas over this run (empty when the
          daemon's /snapshot was unreachable or metrics were off) *)
}

let slo_check cfg ~p99_ms ~shed_rate ~deadline_rate =
  let v = ref [] in
  (match cfg.slo_p99_ms with
  | Some bound when p99_ms > bound ->
    v := Printf.sprintf "p99 %.2f ms exceeds the %.2f ms SLO" p99_ms bound :: !v
  | _ -> ());
  (match cfg.slo_shed_rate with
  | Some bound when shed_rate > bound ->
    v := Printf.sprintf "shed rate %.4f exceeds the %.4f SLO" shed_rate bound :: !v
  | _ -> ());
  (match cfg.slo_deadline_rate with
  | Some bound when deadline_rate > bound ->
    v := Printf.sprintf "deadline-expired rate %.4f exceeds the %.4f SLO" deadline_rate bound :: !v
  | _ -> ());
  List.rev !v

let aggregate ?(conns = 0) ?(connects = 0) ?(reconnects = 0) ?(remainder_clamped = 0) cfg ~n
    ~elapsed_s results =
  let count o = Array.fold_left (fun acc s ->
      match s with Some s when s.s_outcome = o -> acc + 1 | _ -> acc) 0 results
  in
  let ok = count Ok_reply in
  let shed = count Shed in
  let deadline = count Deadline in
  let failed = count Job_failed in
  let transport = count Transport in
  let timed =
    Array.fold_left (fun acc s ->
        match s with Some { s_timing = Some _; _ } -> acc + 1 | _ -> acc) 0 results
  in
  let sent = ok + shed + deadline + failed + transport in
  let rate k = if sent > 0 then float_of_int k /. float_of_int sent else 0.0 in
  let p h q = Obs.Histogram.percentile h q /. 1e3 in
  let p99_ms = p h_latency 99.0 in
  let shed_rate = rate shed and deadline_rate = rate deadline in
  {
    r_offered_rps = (if cfg.duration_s > 0.0 then float_of_int n /. cfg.duration_s else 0.0);
    r_achieved_rps = (if elapsed_s > 0.0 then float_of_int ok /. elapsed_s else 0.0);
    r_duration_s = cfg.duration_s;
    r_elapsed_s = elapsed_s;
    r_sent = sent;
    r_ok = ok;
    r_shed = shed;
    r_deadline_expired = deadline;
    r_failed = failed;
    r_transport = transport;
    r_timed = timed;
    r_p50_ms = p h_latency 50.0;
    r_p95_ms = p h_latency 95.0;
    r_p99_ms = p99_ms;
    r_p999_ms = p h_latency 99.9;
    r_max_ms = Obs.Histogram.max_value h_latency /. 1e3;
    r_queue_p50_ms = p h_queue 50.0;
    r_queue_p99_ms = p h_queue 99.0;
    r_service_p50_ms = p h_service 50.0;
    r_service_p99_ms = p h_service 99.0;
    r_network_p50_ms = p h_network 50.0;
    r_network_p99_ms = p h_network 99.0;
    r_shed_rate = shed_rate;
    r_deadline_rate = deadline_rate;
    r_conn_reuse = cfg.conn_reuse;
    r_conns = conns;
    r_connects = connects;
    r_reconnects = reconnects;
    r_connect_p50_ms = p h_connect 50.0;
    r_connect_p99_ms = p h_connect 99.0;
    r_remainder_clamped = remainder_clamped;
    r_slo_p99_ms = cfg.slo_p99_ms;
    r_slo_shed_rate = cfg.slo_shed_rate;
    r_slo_deadline_rate = cfg.slo_deadline_rate;
    r_slo_violations = slo_check cfg ~p99_ms ~shed_rate ~deadline_rate;
    r_runtime = [];
  }

(* --- daemon runtime telemetry, bracketing the run ------------------------- *)

(* Scrape /snapshot before and after the run and difference the
   runtime.* counters: what the daemon's GC did *during* this load, not
   since boot. Gauges and histogram percentiles are read from the after
   side (cumulative, but the pause histogram only ever grows under
   load). Everything degrades to an empty list — an old daemon or one
   with metrics off just yields no runtime keys. *)
let scrape_snapshot cfg =
  match Serve.http_get ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port "/snapshot" with
  | Ok (200, body) -> (
    match Obs.snapshot_of_json body with Ok snap -> Some snap | Error _ -> None)
  | Ok _ | Error _ -> None

let runtime_keys ~before ~after r =
  match (before, after) with
  | Some (b : Obs.snapshot), Some (a : Obs.snapshot) ->
    let counter (s : Obs.snapshot) name =
      match List.assoc_opt name s.Obs.counters with Some v -> float_of_int v | None -> 0.0
    in
    let dc name = Float.max 0.0 (counter a name -. counter b name) in
    let minor = dc "runtime.gc.minor_collections" in
    let major = dc "runtime.gc.major_collections" in
    let cycles = dc "runtime.gc.major_cycles" in
    let alloc_words = dc "runtime.gc.minor_words" +. dc "runtime.gc.major_words" in
    let alloc_mb = alloc_words *. float_of_int (Sys.word_size / 8) /. 1e6 in
    let served_mb = dc "serve.bytes_out" /. 1e6 in
    let per_req v = if r.r_ok > 0 then v /. float_of_int r.r_ok else 0.0 in
    let pause_p99 =
      match
        List.find_opt
          (fun (h : Obs.histogram_stats) -> h.Obs.hs_name = Ccomp_obs.Runtime.major_pause_histogram_name)
          a.Obs.histograms
      with
      | Some h -> [ ("runtime.gc_major_pause_p99_us", h.Obs.hs_p99) ]
      | None -> []
    in
    [
      ("runtime.minor_collections", minor);
      ("runtime.major_collections", major);
      ("runtime.major_cycles", cycles);
      ("runtime.alloc_mb", alloc_mb);
      ("runtime.alloc_kb_per_req", per_req (alloc_mb *. 1e3));
      ("runtime.minor_collections_per_req", per_req minor);
      ("runtime.gc_pauses_per_mb", (if served_mb > 0.0 then cycles /. served_mb else 0.0));
    ]
    @ pause_p99
  | _ -> []

(* --- the run ------------------------------------------------------------- *)

let arrivals_to_string = function Poisson -> "poisson" | Uniform -> "uniform"

let arrivals_of_string = function
  | "poisson" -> Some Poisson
  | "uniform" -> Some Uniform
  | _ -> None

let run cfg =
  match Serve.http_get ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port "/healthz" with
  | Error e -> Error (Printf.sprintf "daemon not reachable at %s:%d: %s" cfg.host cfg.port e)
  | Ok (st, _) when st <> 200 ->
    Error (Printf.sprintf "daemon unhealthy at %s:%d: /healthz returned %d" cfg.host cfg.port st)
  | Ok _ -> (
    (* module-global histograms would otherwise accumulate across runs —
       a ramp's probes must each measure only their own traffic *)
    Obs.Histogram.reset h_latency;
    Obs.Histogram.reset h_queue;
    Obs.Histogram.reset h_service;
    Obs.Histogram.reset h_network;
    Obs.Histogram.reset h_connect;
    let sched =
      schedule ~arrivals:cfg.arrivals ~rate_rps:cfg.rate_rps ~duration_s:cfg.duration_s
        ~seed:cfg.seed
    in
    let n = Array.length sched in
    if n = 0 then Error "empty schedule: rate * duration yields no requests"
    else if cfg.mix_compress + cfg.mix_decompress + cfg.mix_ping <= 0 then
      Error "job mix has zero total weight"
    else
      (* Fixed payloads, built once: a compress body of [payload_bytes]
         seeded random code, and its compressed image for decompress
         jobs (via the same dispatch the daemon uses, so the job is
         guaranteed well-formed). *)
      let g0 = Prng.create (Int64.of_int cfg.seed) in
      let code =
        String.init (max 4 cfg.payload_bytes) (fun _ -> Char.chr (Prng.int g0 256))
      in
      let compress_req =
        Serve.Compress { algo = cfg.algo; isa = cfg.isa; block_size = cfg.block_size; code }
      in
      match Serve.handle_request ~jobs:1 compress_req with
      | exception e -> Error ("cannot build decompress payload: " ^ Printexc.to_string e)
      | Serve.Failed e -> Error ("cannot build decompress payload: " ^ e)
      | Serve.Overloaded e | Serve.Deadline_expired e ->
        Error ("cannot build decompress payload: " ^ e)
      | Serve.Payload image ->
        let mix =
          [|
            (cfg.mix_compress, compress_req);
            (cfg.mix_decompress, Serve.Decompress image);
            (cfg.mix_ping, Serve.Ping);
          |]
        in
        let results = Array.make n None in
        let next = Atomic.make 0 in
        let connects = Atomic.make 0 in
        let reconnects = Atomic.make 0 in
        let senders = max 1 cfg.senders in
        (* connection slots per sender: [--conns] is the fleet-wide
           total, floored at one per sender; without reuse the slot is
           torn down after every request (the pre-v4 behaviour, kept
           measurable for the on/off comparison) *)
        let per_sender = if cfg.conns <= 0 then 1 else max 1 (cfg.conns / senders) in
        let rt_before = scrape_snapshot cfg in
        (* small lead so request 0 is not born late *)
        let start_us = Obs.now_us () +. 50_000.0 in
        let sender () =
          let slots = Array.make per_sender None in
          let drop j =
            (match slots.(j) with Some c -> Serve.Conn.close c | None -> ());
            slots.(j) <- None
          in
          let conn j =
            match slots.(j) with
            | Some c when Serve.Conn.is_alive c -> Ok c
            | _ ->
              drop j;
              (match
                 Serve.Conn.connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port ()
               with
              | Error e -> Error e
              | Ok c ->
                Atomic.incr connects;
                Obs.Histogram.observe h_connect (Serve.Conn.connect_us c);
                slots.(j) <- Some c;
                Ok c)
          in
          (* one transparent retry on [Stale]: the server closing
             between frames (idle or recycle) means the request was
             never read, so resending on a fresh connection is safe *)
          let submit_framed j ~request_id req =
            match conn j with
            | Error e -> Error e
            | Ok c -> (
              match Serve.Conn.submit_timed ~deadline_ms:cfg.deadline_ms ~request_id c req with
              | Ok v -> Ok v
              | Error (Serve.Conn.Stale _) -> (
                drop j;
                Atomic.incr reconnects;
                match conn j with
                | Error e -> Error e
                | Ok c2 -> (
                  match
                    Serve.Conn.submit_timed ~deadline_ms:cfg.deadline_ms ~request_id c2 req
                  with
                  | Ok v -> Ok v
                  | Error e ->
                    drop j;
                    Error (Serve.Conn.error_message e)))
              | Error e ->
                drop j;
                Error (Serve.Conn.error_message e))
          in
          let k = ref 0 in
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (* request identity is a function of (seed, i) alone, so
                 the traffic is identical however senders interleave *)
              let g = Prng.create (Int64.of_int ((cfg.seed * 1_000_003) + i + 1)) in
              let req = Prng.weighted g mix in
              let sched_us = start_us +. (sched.(i) *. 1e6) in
              let rec wait () =
                let now = Obs.now_us () in
                if now < sched_us then begin
                  Unix.sleepf (Float.min 0.05 ((sched_us -. now) /. 1e6));
                  wait ()
                end
              in
              wait ();
              let send_us = Obs.now_us () in
              let j = !k mod per_sender in
              incr k;
              let res = submit_framed j ~request_id:(Int64.of_int (i + 1)) req in
              if not cfg.conn_reuse then drop j;
              let done_us = Obs.now_us () in
              let outcome, timing =
                match res with
                | Ok (Serve.Payload _, t) -> (Ok_reply, t)
                | Ok (Serve.Overloaded _, t) -> (Shed, t)
                | Ok (Serve.Deadline_expired _, t) -> (Deadline, t)
                | Ok (Serve.Failed _, t) -> (Job_failed, t)
                | Error _ -> (Transport, None)
              in
              (* index-owned slot: no two senders share an i *)
              results.(i) <-
                Some
                  {
                    s_outcome = outcome;
                    s_corrected_us = done_us -. sched_us;
                    s_naive_us = done_us -. send_us;
                    s_timing = timing;
                  };
              loop ()
            end
          in
          loop ();
          Array.iteri (fun j _ -> drop j) slots
        in
        let domains = Array.init senders (fun _ -> Domain.spawn (fun () -> sender ())) in
        Array.iter Domain.join domains;
        let elapsed_s = (Obs.now_us () -. start_us) /. 1e6 in
        let remainder_clamped = ref 0 in
        Array.iter
          (fun s ->
            match s with
            | Some { s_outcome = Ok_reply; s_corrected_us; s_timing; _ } -> (
              Obs.Histogram.observe h_latency (Float.max 0.0 s_corrected_us);
              match s_timing with
              | None -> ()
              | Some t ->
                Obs.Histogram.observe h_queue (float_of_int t.Serve.t_queue_us);
                Obs.Histogram.observe h_service (float_of_int t.Serve.t_service_us);
                (* the server excludes its reply write from server_us, so
                   this floor under-counts the network by at most that;
                   clock skew can push it below zero — clamp and count
                   rather than let a negative poison the percentiles *)
                let remainder = s_corrected_us -. float_of_int t.Serve.t_server_us in
                if remainder < 0.0 then incr remainder_clamped;
                Obs.Histogram.observe h_network (Float.max 0.0 remainder))
            | _ -> ())
          results;
        let rt_after = scrape_snapshot cfg in
        let report =
          aggregate
            ~conns:(per_sender * senders)
            ~connects:(Atomic.get connects) ~reconnects:(Atomic.get reconnects)
            ~remainder_clamped:!remainder_clamped cfg ~n ~elapsed_s results
        in
        let report =
          { report with r_runtime = runtime_keys ~before:rt_before ~after:rt_after report }
        in
        Events.info
          ~fields:
            [
              ("sent", string_of_int report.r_sent);
              ("ok", string_of_int report.r_ok);
              ("p99_ms", Printf.sprintf "%.2f" report.r_p99_ms);
            ]
          "loadgen.done";
        Ok report)

(* --- ramp: binary-search the SLO knee ------------------------------------- *)

(* Find the highest offered rate the daemon can carry within its
   declared SLOs: confirm [low] passes and [high] fails, then bisect.
   Each probe is a full open-loop run at [cfg.duration_s]; the returned
   report is the last *passing* probe (the measurement at capacity) and
   [capacity_rps] is its offered rate — 0 with the failing low report
   when even [low] violates the SLO. *)
let ramp ?(low = 25.0) ?(high = 2000.0) ?(iters = 5) ?(progress = fun _ -> ()) cfg =
  if cfg.slo_p99_ms = None && cfg.slo_shed_rate = None && cfg.slo_deadline_rate = None then
    Error "ramp needs a declared SLO (--slo-p99-ms, --slo-shed-rate or --slo-deadline-rate)"
  else if not (low > 0.0 && high > low) then
    Error (Printf.sprintf "ramp bounds must satisfy 0 < low < high (got %g, %g)" low high)
  else
    let probe rate =
      match run { cfg with rate_rps = rate } with
      | Error e -> Error e
      | Ok r ->
        let pass = r.r_slo_violations = [] in
        progress
          (Printf.sprintf "ramp: %7.1f rps -> p99 %.2f ms, shed %.4f: %s" rate r.r_p99_ms
             r.r_shed_rate
             (if pass then "PASS" else "FAIL (" ^ String.concat "; " r.r_slo_violations ^ ")"));
        Ok (pass, r)
    in
    let ( let* ) = Result.bind in
    let* low_pass, low_r = probe low in
    if not low_pass then Ok (low_r, 0.0)
    else
      let* high_pass, high_r = probe high in
      if high_pass then Ok (high_r, high)
      else
        let rec bisect k lo lo_r hi =
          if k <= 0 then Ok (lo_r, lo)
          else
            let mid = (lo +. hi) /. 2.0 in
            let* pass, r = probe mid in
            if pass then bisect (k - 1) mid r hi else bisect (k - 1) lo lo_r mid
        in
        bisect iters low low_r high

(* --- rendering ----------------------------------------------------------- *)

let render cfg r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "loadgen: %s arrivals, %.1f rps offered for %.1fs (seed %d, %d senders)"
    (arrivals_to_string cfg.arrivals)
    r.r_offered_rps r.r_duration_s cfg.seed (max 1 cfg.senders);
  line "  sent %d: ok %d, shed %d, deadline-expired %d, failed %d, transport errors %d"
    r.r_sent r.r_ok r.r_shed r.r_deadline_expired r.r_failed r.r_transport;
  line "  achieved %.1f rps over %.1fs wall clock" r.r_achieved_rps r.r_elapsed_s;
  line "  latency (from scheduled send — coordinated-omission safe):";
  line "    p50 %8.2f ms   p95 %8.2f ms   p99 %8.2f ms   p99.9 %8.2f ms   max %8.2f ms"
    r.r_p50_ms r.r_p95_ms r.r_p99_ms r.r_p999_ms r.r_max_ms;
  if r.r_timed > 0 then begin
    line "  server-side split (%d replies carried timing):" r.r_timed;
    line "    queue   p50 %8.2f ms   p99 %8.2f ms" r.r_queue_p50_ms r.r_queue_p99_ms;
    line "    service p50 %8.2f ms   p99 %8.2f ms" r.r_service_p50_ms r.r_service_p99_ms;
    line "    network p50 %8.2f ms   p99 %8.2f ms" r.r_network_p50_ms r.r_network_p99_ms
  end;
  line "  shed rate %.4f, deadline-expired rate %.4f" r.r_shed_rate r.r_deadline_rate;
  line "  connections: reuse %s, %d slots, %d connects (%d reconnects), connect p50 %.2f ms p99 %.2f ms"
    (if r.r_conn_reuse then "on" else "off")
    r.r_conns r.r_connects r.r_reconnects r.r_connect_p50_ms r.r_connect_p99_ms;
  if r.r_remainder_clamped > 0 then
    line "  network remainder clamped to 0 on %d replies (clock skew vs echoed server_us)"
      r.r_remainder_clamped;
  (match r.r_runtime with
  | [] -> ()
  | keys ->
    let get k = List.assoc_opt k keys in
    (match (get "runtime.alloc_kb_per_req", get "runtime.minor_collections") with
    | Some kb, Some minor ->
      line "  daemon runtime: %.1f KB allocated/request, %.0f minor + %.0f major collections"
        kb minor
        (match get "runtime.major_collections" with Some v -> v | None -> 0.0)
    | _ -> ());
    match (get "runtime.gc_pauses_per_mb", get "runtime.gc_major_pause_p99_us") with
    | Some per_mb, Some p99 ->
      line "  daemon GC: %.3f major cycles/MB served, pause p99 %.0f us" per_mb p99
    | Some per_mb, None -> line "  daemon GC: %.3f major cycles/MB served" per_mb
    | _ -> ());
  (match (r.r_slo_p99_ms, r.r_slo_shed_rate, r.r_slo_deadline_rate) with
  | None, None, None -> ()
  | _ ->
    if r.r_slo_violations = [] then line "  SLOs: all within bounds"
    else List.iter (fun v -> line "  SLO VIOLATION: %s" v) r.r_slo_violations);
  Buffer.contents b

(* --- BENCH json ---------------------------------------------------------- *)

let json_keys r =
  let base =
    [
      ("loadgen.offered_rps", r.r_offered_rps);
      ("loadgen.achieved_rps", r.r_achieved_rps);
      ("loadgen.duration_s", r.r_duration_s);
      ("loadgen.elapsed_s", r.r_elapsed_s);
      ("loadgen.sent", float_of_int r.r_sent);
      ("loadgen.ok", float_of_int r.r_ok);
      ("loadgen.shed", float_of_int r.r_shed);
      ("loadgen.deadline_expired", float_of_int r.r_deadline_expired);
      ("loadgen.failed", float_of_int r.r_failed);
      ("loadgen.transport_errors", float_of_int r.r_transport);
      ("loadgen.timed", float_of_int r.r_timed);
      ("loadgen.p50_ms", r.r_p50_ms);
      ("loadgen.p95_ms", r.r_p95_ms);
      ("loadgen.p99_ms", r.r_p99_ms);
      ("loadgen.p999_ms", r.r_p999_ms);
      ("loadgen.max_ms", r.r_max_ms);
      ("loadgen.queue_p50_ms", r.r_queue_p50_ms);
      ("loadgen.queue_p99_ms", r.r_queue_p99_ms);
      ("loadgen.service_p50_ms", r.r_service_p50_ms);
      ("loadgen.service_p99_ms", r.r_service_p99_ms);
      ("loadgen.network_p50_ms", r.r_network_p50_ms);
      ("loadgen.network_p99_ms", r.r_network_p99_ms);
      ("loadgen.shed_rate", r.r_shed_rate);
      ("loadgen.deadline_rate", r.r_deadline_rate);
      ("loadgen.conn_reuse", if r.r_conn_reuse then 1.0 else 0.0);
      ("loadgen.conns", float_of_int r.r_conns);
      ("loadgen.connects", float_of_int r.r_connects);
      ("loadgen.reconnects", float_of_int r.r_reconnects);
      ("loadgen.connect_p50_ms", r.r_connect_p50_ms);
      ("loadgen.connect_p99_ms", r.r_connect_p99_ms);
      ("loadgen.remainder_clamped", float_of_int r.r_remainder_clamped);
      ("loadgen.slo_violations", float_of_int (List.length r.r_slo_violations));
    ]
  in
  let opt key v = match v with None -> [] | Some x -> [ (key, x) ] in
  base
  @ opt "loadgen.slo_p99_ms" r.r_slo_p99_ms
  @ opt "loadgen.slo_shed_rate" r.r_slo_shed_rate
  @ opt "loadgen.slo_deadline_rate" r.r_slo_deadline_rate
  @ r.r_runtime

let entry_lines ?(extra = []) r =
  String.concat ",\n"
    (List.map (fun (k, v) -> Printf.sprintf "  %S: %.3f" k v) (json_keys r @ extra))

(* Standalone ccomp-bench-v1 file: just the loadgen section. *)
let emit_json ?extra ~path r =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc "{\n  \"schema\": \"ccomp-bench-v1\",\n  \"scale\": 1,\n  \"jobs\": 1,\n";
      output_string oc (entry_lines ?extra r);
      output_string oc "\n}\n")

(* Append the loadgen section to an existing ccomp-bench-v1 file (what
   the BENCH_PR*.json workflow does after a perf run). Textual: drop
   the final '}', add our keys, close again. *)
let merge_json ?extra ~path r =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text ->
    let rstrip s =
      let n = ref (String.length s) in
      while !n > 0 && (match s.[!n - 1] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        decr n
      done;
      String.sub s 0 !n
    in
    let text = rstrip text in
    let len = String.length text in
    if len = 0 || text.[len - 1] <> '}' then
      Error (Printf.sprintf "%s does not end in '}' — not a bench JSON file" path)
    else begin
      let body = rstrip (String.sub text 0 (len - 1)) in
      let sep =
        if String.length body > 0 && body.[String.length body - 1] = '{' then "\n" else ",\n"
      in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc body;
          output_string oc sep;
          output_string oc (entry_lines ?extra r);
          output_string oc "\n}\n");
      Ok ()
    end

(* --- pure replay, for property tests ------------------------------------- *)

module For_tests = struct
  (* Single-sender simulation of the measurement model: requests go out
     in schedule order, the "server" takes service.(i) seconds each,
     back-to-back. Returns (corrected, naive) latency pairs — corrected
     charges queueing behind a stalled predecessor, naive hides it. *)
  let replay ~scheduled ~service =
    let t = ref 0.0 in
    Array.mapi
      (fun i sched ->
        let send = Float.max sched !t in
        let fin = send +. service.(i) in
        t := fin;
        (fin -. sched, fin -. send))
      scheduled
end
