(** Server-side request-latency stages and the "what dominates p99"
    attribution report.

    The daemon stamps every binary request through four stages — queue
    (accepted, waiting for a worker), read (frame arrival + decode),
    work (the codec job) and write (reply leaving) — into per-stage
    log-scale histograms, plus one end-to-end [serve.request_us]
    histogram. This module owns the stage names so the daemon,
    [ccomp stats] and [ccomp top] agree on them. *)

type stage = Queue | Read | Work | Write

val stages : stage list
(** Wire order: queue, read, work, write. *)

val stage_name : stage -> string

val histogram_name : stage -> string
(** Registry name, e.g. ["serve.stage.queue_us"]. *)

val total_histogram_name : string
(** ["serve.request_us"] — end-to-end time from accept to reply written. *)

val observe : stage -> float -> unit
(** Record a stage duration in microseconds. No-op while metrics are
    disabled. *)

val observe_total : float -> unit

(** {1 Attribution} *)

type stage_stats = {
  st_stage : string;
  st_count : int;
  st_p50_us : float;
  st_p99_us : float;
  st_sum_us : float;
}

type report = {
  rp_stages : stage_stats list;  (** stages with samples, wire order *)
  rp_total : Ccomp_obs.Obs.histogram_stats option;
  rp_dominant : string;  (** stage with the largest p99 *)
  rp_dominant_share : float;  (** its fraction of the summed stage p99s *)
}

val attribution : Ccomp_obs.Obs.snapshot -> report option
(** Build the attribution report from a snapshot (live or loaded from
    [--metrics] JSON). [None] when no stage histogram has samples. *)

val render : report -> string
(** Human-readable multi-line table ending in the dominance verdict. *)
