(* Terminal dashboard: poll /snapshot + /events, window the samples,
   render. Rendering is a pure function of (window, snapshot, events)
   so tests can drive it with a fake clock and no socket. *)

module Obs = Ccomp_obs.Obs
module Window = Ccomp_obs.Window

type options = {
  host : string;
  port : int;
  interval_s : float;
  frames : int;
  window_s : float;
  plain : bool;
  timeout_s : float;
}

let fmt_num v =
  if Float.abs v >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if Float.abs v >= 1e3 then Printf.sprintf "%.2fk" (v /. 1e3)
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

let render_frame ?(slow = []) ~window ~snapshot ~events_tail ~title () =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" title;
  line "%s" (String.make (String.length title) '-');
  (* counters: windowed rate + running total, busiest first *)
  let rated =
    List.filter_map
      (fun (name, total) ->
        match Window.rate window name with
        | Some r -> Some (name, total, r)
        | None -> Some (name, total, 0.0))
      snapshot.Obs.counters
  in
  let rated =
    List.sort (fun (n1, _, r1) (n2, _, r2) -> compare (-.r1, n1) (-.r2, n2)) rated
  in
  if rated <> [] then begin
    line "";
    line "  %-40s %12s %14s" "counter" "rate/s" "total";
    List.iteri
      (fun i (name, total, r) ->
        if i < 16 then line "  %-40s %12s %14d" name (fmt_num r) total)
      rated
  end;
  (* the operator-grade ratio the ISSUE calls out: decode-cache hits
     over the window, not since process start *)
  (match Window.ratio window "memsys.decode_cache.hits" "memsys.decode_cache.misses" with
  | Some ratio -> line "  %-40s %12.1f%%" "decode-cache hit ratio (window)" (100.0 *. ratio)
  | None -> ());
  if snapshot.Obs.gauges <> [] then begin
    line "";
    line "  %-40s %12s" "gauge" "value";
    List.iter (fun (name, v) -> line "  %-40s %12.4g" name v) snapshot.Obs.gauges
  end;
  if snapshot.Obs.histograms <> [] then begin
    line "";
    line "  %-32s %10s %9s %9s %9s %9s" "histogram" "obs/s" "p50" "p95" "p99" "max";
    List.iter
      (fun (h : Obs.histogram_stats) ->
        let obs_rate =
          match Window.rate window (h.Obs.hs_name ^ ".count") with
          | Some r -> fmt_num r
          | None -> "-"
        in
        line "  %-32s %10s %9.3g %9.3g %9.3g %9.3g" h.Obs.hs_name obs_rate h.Obs.hs_p50
          h.Obs.hs_p95 h.Obs.hs_p99 h.Obs.hs_max)
      snapshot.Obs.histograms
  end;
  (* live latency breakdown: which serve stage owns the tail right now *)
  (match Latency.attribution snapshot with
  | None -> ()
  | Some report ->
    line "";
    List.iter
      (fun l -> if l <> "" then line "  %s" l)
      (String.split_on_char '\n' (Latency.render report)));
  (* tail/GC correlation: of the tail-sampled slow requests, how many
     had a major collection finish mid-request — "is the GC the tail?" *)
  (match Slow.correlation_line slow with
  | None -> ()
  | Some corr ->
    line "";
    line "  slow-request ring (%d sampled):" (List.length slow);
    line "    %s" corr;
    let worst =
      List.filteri (fun i _ -> i >= List.length slow - 3) slow (* newest 3 *)
    in
    List.iter
      (fun (r : Slow.record) ->
        line "    %-10s %-16s total %8.2f ms  queue %6.0f us  work %8.0f us  depth %d%s" r.Slow.sr_kind
          r.Slow.sr_outcome (r.Slow.sr_total_us /. 1e3) r.Slow.sr_queue_us r.Slow.sr_work_us
          r.Slow.sr_queue_depth
          (if Slow.overlapped_major r then "  [major GC]" else ""))
      worst);
  if events_tail <> [] then begin
    line "";
    line "  recent events:";
    List.iter (fun e -> line "    %s" e) events_tail
  end;
  line "";
  line "  [q] quit   [r] reset window   (%.0fs rolling window)" (Window.window_seconds window);
  Buffer.contents b

(* --- terminal handling --------------------------------------------------- *)

let with_raw_stdin f =
  if Unix.isatty Unix.stdin then begin
    match Unix.tcgetattr Unix.stdin with
    | saved ->
      let raw = { saved with Unix.c_icanon = false; c_echo = false; c_vmin = 0; c_vtime = 0 } in
      Unix.tcsetattr Unix.stdin Unix.TCSANOW raw;
      Fun.protect ~finally:(fun () -> Unix.tcsetattr Unix.stdin Unix.TCSANOW saved) f
    | exception Unix.Unix_error _ -> f ()
  end
  else f ()

(* Wait up to [interval] seconds, returning the key pressed (if any).
   Off a TTY this is just a sleep. *)
let poll_key interval =
  if Unix.isatty Unix.stdin then begin
    match Unix.select [ Unix.stdin ] [] [] interval with
    | [ _ ], _, _ ->
      let buf = Bytes.create 1 in
      if Unix.read Unix.stdin buf 0 1 = 1 then Some (Bytes.get buf 0) else None
    | _ -> None
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> None
  end
  else begin
    Unix.sleepf interval;
    None
  end

let fetch opts =
  let ( let* ) = Result.bind in
  let get = Serve.http_get ~timeout_s:opts.timeout_s ~host:opts.host ~port:opts.port in
  let* _, snap_json = get "/snapshot" in
  let* snapshot =
    match Obs.snapshot_of_json snap_json with
    | Ok s -> Ok s
    | Error e -> Error ("bad /snapshot payload: " ^ e)
  in
  let* _, events_body = get "/events?n=8" in
  let events_tail =
    String.split_on_char '\n' events_body |> List.filter (fun l -> String.trim l <> "")
  in
  (* tolerant: a daemon predating /slow answers 404 — the panel is
     simply absent rather than the dashboard failing *)
  let slow =
    match get "/slow?n=50" with
    | Ok (200, body) ->
      String.split_on_char '\n' body
      |> List.filter (fun l -> String.trim l <> "")
      |> List.filter_map (fun l -> Result.to_option (Slow.of_json_line l))
    | Ok _ | Error _ -> []
  in
  Ok (snapshot, events_tail, slow)

let run opts =
  let window = ref (Window.make ~window_s:opts.window_s ()) in
  let clear = if opts.plain || not (Unix.isatty Unix.stdout) then "" else "\x1b[2J\x1b[H" in
  with_raw_stdin @@ fun () ->
  let rec loop frame =
    match fetch opts with
    | Error e -> Error e
    | Ok (snapshot, events_tail, slow) ->
      let now = Obs.now_us () /. 1e6 in
      Window.observe !window ~now (Window.of_snapshot snapshot);
      let title =
        Printf.sprintf "ccomp top — %s:%d — frame %d — %s" opts.host opts.port frame
          (let t = Unix.localtime (Unix.time ()) in
           Printf.sprintf "%02d:%02d:%02d" t.Unix.tm_hour t.Unix.tm_min t.Unix.tm_sec)
      in
      print_string (clear ^ render_frame ~slow ~window:!window ~snapshot ~events_tail ~title ());
      flush stdout;
      if opts.frames > 0 && frame >= opts.frames then Ok ()
      else begin
        match poll_key opts.interval_s with
        | Some 'q' -> Ok ()
        | Some 'r' ->
          window := Window.make ~window_s:opts.window_s ();
          loop (frame + 1)
        | _ -> loop (frame + 1)
      end
  in
  loop 1
