(* Tail-sampled slow-request capture.

   The stage histograms say *which* stage owns p99; they cannot say
   what any particular slow request experienced. This module keeps a
   bounded ring of full per-request records — stage split, per-stage GC
   deltas, queue depth at admission — for exactly the requests worth
   explaining: anything slower than the configured threshold, plus
   every shed and deadline-expired outcome regardless of latency.

   The ring is Domain-safe (one short mutex around push/tail, same
   contract as the event ring) and bounded, so sampling can stay on for
   the life of the daemon. /slow and `ccomp stats --slow` read it as
   JSON lines; `ccomp top` renders the GC-overlap correlation. *)

module Obs = Ccomp_obs.Obs
module Runtime = Ccomp_obs.Runtime

type record = {
  sr_ts_us : float;  (** completion instant *)
  sr_id : int64;  (** wire request id; [0L] = untraced request *)
  sr_kind : string;  (** compress | decompress | ping | protocol_error | shed | ... *)
  sr_outcome : string;  (** ok | failed | overloaded | deadline_expired | shed *)
  sr_total_us : float;  (** queue + read + work + write *)
  sr_queue_us : float;
  sr_read_us : float;
  sr_work_us : float;
  sr_write_us : float;
  sr_queue_depth : int;  (** shard queue length seen at admission *)
  sr_gc_read : Runtime.delta;  (** this domain's GC activity per stage *)
  sr_gc_work : Runtime.delta;
  sr_gc_write : Runtime.delta;
}

let m_sampled = Obs.Counter.make "serve.slow.sampled_total"

let m_forced = Obs.Counter.make "serve.slow.forced_total"

(* --- bounded ring -------------------------------------------------------- *)

let mutex = Mutex.create ()

let ring : record option array ref = ref (Array.make 64 None)

let head = ref 0

let len = ref 0

(* Plain ref reads off the lock are benign here: a stale threshold for
   one request means one record sampled or skipped a beat late, never a
   torn value (floats are word-sized) or a broken ring. *)
let threshold = ref 100_000.0 (* us *)

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let capacity () = locked (fun () -> Array.length !ring)

let threshold_us () = !threshold

let configure ?capacity ?threshold_us () =
  locked (fun () ->
      (match threshold_us with Some t -> threshold := Float.max 0.0 t | None -> ());
      match capacity with
      | None -> ()
      | Some n ->
        let n = max 1 n in
        if n <> Array.length !ring then begin
          ring := Array.make n None;
          head := 0;
          len := 0
        end)

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      len := 0)

let note r =
  locked (fun () ->
      let cap = Array.length !ring in
      !ring.(!head) <- Some r;
      head := (!head + 1) mod cap;
      if !len < cap then incr len)

(* Shed and deadline-expired outcomes are always evidence — an operator
   asking "why did we refuse work" must find them however fast the
   refusal was. Everything else earns its slot by latency. *)
let forced_outcome outcome =
  outcome = "overloaded" || outcome = "deadline_expired" || outcome = "shed"

let maybe_sample r =
  let forced = forced_outcome r.sr_outcome in
  if forced || r.sr_total_us >= !threshold then begin
    Obs.Counter.incr m_sampled;
    if forced then Obs.Counter.incr m_forced;
    note r;
    true
  end
  else false

let tail n =
  locked (fun () ->
      let cap = Array.length !ring in
      let n = min (max 0 n) !len in
      let first = (!head - n + cap) mod cap in
      List.init n (fun i ->
          match !ring.((first + i) mod cap) with Some r -> r | None -> assert false))

(* --- JSON ---------------------------------------------------------------- *)

let gc_json (d : Runtime.delta) =
  Printf.sprintf "{\"minor\":%d,\"major\":%d,\"alloc_w\":%.0f}" d.Runtime.d_minor_collections
    d.Runtime.d_major_collections
    (d.Runtime.d_minor_words +. d.Runtime.d_major_words)

let to_json_line r =
  Printf.sprintf
    "{\"ts_us\":%.1f,\"id\":\"%Ld\",\"kind\":\"%s\",\"outcome\":\"%s\",\"total_us\":%.0f,\"queue_us\":%.0f,\"read_us\":%.0f,\"work_us\":%.0f,\"write_us\":%.0f,\"queue_depth\":%d,\"gc\":{\"read\":%s,\"work\":%s,\"write\":%s}}"
    r.sr_ts_us r.sr_id (Obs.Json.escape r.sr_kind) (Obs.Json.escape r.sr_outcome) r.sr_total_us
    r.sr_queue_us r.sr_read_us r.sr_work_us r.sr_write_us r.sr_queue_depth (gc_json r.sr_gc_read)
    (gc_json r.sr_gc_work) (gc_json r.sr_gc_write)

let tail_json n =
  let b = Buffer.create 512 in
  List.iter
    (fun r ->
      Buffer.add_string b (to_json_line r);
      Buffer.add_char b '\n')
    (tail n);
  Buffer.contents b

let of_json_line line =
  let ( let* ) = Result.bind in
  let* json = Obs.Json.parse line in
  let num name j =
    match Obs.Json.member name j with
    | Some (Obs.Json.Num v) -> Ok v
    | _ -> Error (Printf.sprintf "slow record lacks numeric field %S" name)
  in
  let str name j =
    match Obs.Json.member name j with
    | Some (Obs.Json.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "slow record lacks string field %S" name)
  in
  let gc_of name =
    match Option.bind (Obs.Json.member "gc" json) (Obs.Json.member name) with
    | None -> Error (Printf.sprintf "slow record lacks gc.%s" name)
    | Some g ->
      let* minor = num "minor" g in
      let* major = num "major" g in
      let* alloc = num "alloc_w" g in
      Ok
        {
          Runtime.delta_zero with
          Runtime.d_minor_collections = int_of_float minor;
          d_major_collections = int_of_float major;
          d_minor_words = alloc;
        }
  in
  let* ts = num "ts_us" json in
  let* id = str "id" json in
  let* kind = str "kind" json in
  let* outcome = str "outcome" json in
  let* total = num "total_us" json in
  let* queue = num "queue_us" json in
  let* read = num "read_us" json in
  let* work = num "work_us" json in
  let* write = num "write_us" json in
  let* depth = num "queue_depth" json in
  let* gc_read = gc_of "read" in
  let* gc_work = gc_of "work" in
  let* gc_write = gc_of "write" in
  Ok
    {
      sr_ts_us = ts;
      sr_id = (match Int64.of_string_opt id with Some v -> v | None -> 0L);
      sr_kind = kind;
      sr_outcome = outcome;
      sr_total_us = total;
      sr_queue_us = queue;
      sr_read_us = read;
      sr_work_us = work;
      sr_write_us = write;
      sr_queue_depth = int_of_float depth;
      sr_gc_read = gc_read;
      sr_gc_work = gc_work;
      sr_gc_write = gc_write;
    }

(* --- correlation + rendering --------------------------------------------- *)

let overlapped_major r =
  r.sr_gc_read.Runtime.d_major_collections > 0
  || r.sr_gc_work.Runtime.d_major_collections > 0
  || r.sr_gc_write.Runtime.d_major_collections > 0

(* (sampled, of which overlapped a major collection) *)
let correlation records =
  List.fold_left
    (fun (n, hit) r -> (n + 1, if overlapped_major r then hit + 1 else hit))
    (0, 0) records

let correlation_line records =
  match correlation records with
  | 0, _ -> None
  | n, hit ->
    Some
      (Printf.sprintf "%d%% of %d sampled tail requests overlapped a major collection"
         (int_of_float (100.0 *. float_of_int hit /. float_of_int n))
         n)

let gc_cell (d : Runtime.delta) =
  if d.Runtime.d_major_collections > 0 then
    Printf.sprintf "%dM/%dm" d.Runtime.d_major_collections d.Runtime.d_minor_collections
  else if d.Runtime.d_minor_collections > 0 then Printf.sprintf "%dm" d.Runtime.d_minor_collections
  else "-"

let render_table records =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  (match records with
  | [] -> line "no slow-request samples (below threshold, or sampling just started)"
  | _ ->
    line "slow-request samples (newest last; gc cells are per-stage major/minor collections):";
    line "  %-20s %-10s %-16s %9s %8s %8s %8s %8s %5s %7s %7s %7s %9s" "id" "kind" "outcome"
      "total ms" "queue" "read" "work" "write" "depth" "gc:read" "gc:work" "gc:write" "alloc KB";
    List.iter
      (fun r ->
        let alloc_kb =
          Runtime.(alloc_mb r.sr_gc_read +. alloc_mb r.sr_gc_work +. alloc_mb r.sr_gc_write)
          *. 1e3
        in
        line "  %-20Ld %-10s %-16s %9.2f %8.0f %8.0f %8.0f %8.0f %5d %7s %7s %7s %9.1f" r.sr_id
          r.sr_kind r.sr_outcome (r.sr_total_us /. 1e3) r.sr_queue_us r.sr_read_us r.sr_work_us
          r.sr_write_us r.sr_queue_depth (gc_cell r.sr_gc_read) (gc_cell r.sr_gc_work)
          (gc_cell r.sr_gc_write) alloc_kb)
      records;
    (match correlation_line records with Some l -> line "  %s" l | None -> ()));
  Buffer.contents b
