(** [ccomp serve]: a dependency-free, overload-safe compression daemon.

    The TCP listener (plain [Unix] sockets — [acceptors] of them, on
    [SO_REUSEPORT] siblings where the platform allows) speaks two
    protocols, distinguished by the first four bytes of each
    connection:

    {ul
    {- a length-prefixed binary job protocol ({!section-protocol}) for
       compress/decompress/ping jobs — the service path; and}
    {- HTTP/1.0 [GET] for the observability surface: [/metrics]
       (OpenMetrics text, including the [serve] info metric,
       [serve.uptime_seconds] and the [runtime.*] GC/allocation
       telemetry), [/healthz], [/events] (JSON lines, newest last,
       [?n=] to bound, [?level=] to filter at-or-above a severity),
       [/snapshot] (the metrics snapshot as JSON — what [ccomp top]
       polls) and [/slow] (the tail-sampled slow-request ring as JSON
       lines, oldest first, [?n=] to bound — see {!Slow}).}}

    Jobs run through exactly the same codec paths as the offline CLI,
    so a served compression is byte-identical to [ccomp compress] with
    the same flags.

    {2 Overload safety}

    The daemon degrades predictably instead of stalling:

    - {b Admission}: the acceptor pushes each connection onto a bounded
      per-worker queue. When every queue is full the connection is
      {e shed} — a typed {!Overloaded} reply (or HTTP 503) written
      non-blockingly, then closed — so accepts never stall behind slow
      consumers ([serve.shed_total] counts the sheds, the
      [serve.queue.depth.N] gauges expose the queues).
    - {b Per-request deadlines}: the CCQ1 header carries a relative
      [deadline_ms] budget; the daemon answers {!Deadline_expired}
      (status 3, counted in [serve.deadline_expired_total]) when the
      budget is spent before, during or after decode rather than doing
      work nobody is waiting for.
    - {b Per-connection budgets}: an idle timeout on the first byte, an
      i/o deadline per frame (re-armed to the remaining budget before
      every read/write, so slowloris peers are bounded), counted in
      [serve.io_timeouts]. In-flight work is bounded by the worker
      count; queued work by [workers * queue_cap].
    - {b Graceful drain}: SIGTERM/SIGINT stop the accept loop, let
      workers finish queued jobs within [drain_s], shed the remainder
      with typed replies, force-shutdown any connection still in
      flight once the budget is spent (so a silent peer cannot hold
      the join past [drain_s]; counted in the [serve.drain.interrupt]
      event), join the workers and flush telemetry
      ([serve.drain.begin]/[serve.drain.end] events).
    - {b Supervision}: a worker whose loop dies is logged, counted in
      [serve.worker_restarts_total] and restarted in place — a crash
      (including the chaos harness's deliberate {!Crash_worker} op)
      never takes the daemon down.

    {2 Explaining the tail}

    With metrics on, every binary request additionally records what the
    OCaml runtime did to it: [Gc.quick_stat] probes at each stage
    boundary give per-stage GC deltas (collections and words allocated
    on the serving domain), folded into the global [runtime.*] counters
    by {!Ccomp_obs.Runtime.sample}; each worker domain installs a
    [Gc.create_alarm] hook that feeds the [runtime.gc.major_pause_us]
    estimator. Requests slower than [slow_threshold_ms] — and {e all}
    shed / deadline-expired outcomes — land in the bounded {!Slow} ring
    with their stage split, per-stage GC deltas and the shard queue
    depth observed at admission, retrievable via [GET /slow] and
    [ccomp stats --slow].

    {2 Keep-alive (CCQ1v4)}

    A binary connection carries a {e sequence} of frames: the daemon
    answers each in order and then waits for the next preamble, so a
    client can pipeline requests without paying connect(2) per job.
    Either side may close cleanly {e between} frames — a client by
    closing (or shutting down its send side: the old one-shot clients
    keep working unchanged, no version sniff needed), the server when
    the inter-frame gap exceeds [idle_timeout_s] (counted in
    [serve_keepalive_idle_closes_total]) or when a connection reaches
    [max_requests_per_conn] frames (a {e recycle}, counted in
    [serve_conn_recycles_total]; clients treat the close-between-frames
    as a signal to reconnect and resend). Io budgets are re-armed per
    frame. Between frames an idle connection does not pin a worker
    domain: it is handed to a parker domain that selects over all
    parked fds ([serve_parked] gauge) and re-admits a connection
    through the bounded queues when bytes arrive. [serve_frames_total]
    counts frames served, [serve_connections_total] connections — their
    ratio is the realised reuse factor.

    {2:protocol Wire format}

    Request (25-byte header): ["CCQ1"] · opcode(1) · algo(1) · isa(1)
    · block_size(2,BE) · deadline_ms(4,BE) · request_id(8,BE) ·
    payload_len(4,BE) · payload. Opcodes: [1] compress, [2] decompress,
    [3] ping, [4] crash-worker (chaos testing; refused unless the
    daemon allows it). Algo: [0] samc, [1] sadc. ISA: [0] mips, [1]
    x86. [deadline_ms = 0] means no deadline; otherwise it is the
    client's remaining budget, measured by the server from the moment
    the frame finished arriving. [request_id] is client-chosen and
    opaque; a nonzero id asks the daemon to echo a per-request timing
    record in the reply ([0] = no tracing).

    Response (10-byte header): ["CCR1"] · status(1) · timing_len(1) ·
    payload_len(4,BE) · timing record ([timing_len] bytes) · payload.
    Status: [0] ok (result bytes), [1] error, [2] overloaded (shed),
    [3] deadline expired — the payload of a non-ok status is a message.
    [timing_len] is [0] (no record) or [20]: request_id(8,BE) ·
    queue_us(4,BE) · service_us(4,BE) · server_us(4,BE), each duration
    capped at [0xffffffff]. [server_us] covers queue + frame read +
    job, {e excluding} the reply write (the record rides inside that
    write), so a client's network share is its end-to-end latency minus
    [server_us], pessimistic by the write cost. *)

type algo = Samc | Sadc

type isa = Mips | X86

type request =
  | Compress of { algo : algo; isa : isa; block_size : int; code : string }
  | Decompress of string
  | Ping
  | Crash_worker
      (** Chaos-harness op: makes the handling worker raise
          {!Worker_crashed}. The daemon refuses it unless started with
          [allow_crash_op]. *)

type response =
  | Payload of string  (** success — the job's result bytes *)
  | Failed of string  (** the job or the frame was bad; message inside *)
  | Overloaded of string  (** shed by admission control or drain *)
  | Deadline_expired of string  (** the request's [deadline_ms] ran out *)

exception Worker_crashed
(** Raised by {!handle_request} on {!Crash_worker}: deliberately
    escapes the per-connection guard so the supervised worker loop
    books a restart. *)

type protocol_error =
  | Frame_too_large of { limit : int; got : int }
      (** The frame declared a payload longer than the daemon will
          allocate ([limit] is {!max_payload}). *)
  | Truncated of string  (** The peer closed before the frame was complete. *)
  | Malformed of string  (** Bad magic, tags, lengths or opcode. *)
  | Timed_out of string  (** An i/o deadline fired mid-frame. *)

val protocol_error_to_string : protocol_error -> string

val max_payload : int
(** Largest request payload the daemon accepts (bytes); longer frames
    are refused with {!Frame_too_large} before any allocation. *)

type frame_meta = {
  deadline_ms : int;  (** [0] = no deadline *)
  request_id : int64;  (** [0L] = tracing not requested *)
}

type timing = {
  t_request_id : int64;  (** echo of the request's id *)
  t_queue_us : int;  (** accepted -> popped by a worker *)
  t_service_us : int;  (** the codec job itself *)
  t_server_us : int;  (** queue + frame read + job (write excluded) *)
}

val encode_request : ?deadline_ms:int -> ?request_id:int64 -> request -> string
(** [deadline_ms] (default [0] = none) is the client's remaining
    budget for the whole job; a nonzero [request_id] (default [0L])
    asks the server to echo a {!timing} record in the reply. *)

val decode_request : string -> (request * frame_meta, protocol_error) result
(** Inverse of {!encode_request} on a complete request frame. *)

val encode_response : ?timing:timing -> response -> string

val decode_response : string -> (response * timing option, string) result

val handle_request : ?deadline_us:float -> jobs:int -> request -> response
(** Run one job locally (no socket) — the daemon's dispatch, exposed
    for tests, the chaos harness's byte-identity oracle, and both
    protocols. [deadline_us] is an absolute {!Ccomp_obs.Obs.now_us}
    instant; when it passes before or during the job, the reply is
    {!Deadline_expired} (and the partial result is discarded). Raises
    {!Worker_crashed} on {!Crash_worker}. *)

val http_response : string -> (int * string * string) option
(** [http_response target] routes an HTTP request-target to
    [Some (status, content_type, body)], or [None] for an unknown
    path. *)

val handle_connection :
  ?idle_timeout_s:float ->
  ?io_timeout_s:float ->
  ?allow_crash_op:bool ->
  ?queue_us:float ->
  ?admit_depth:int ->
  ?max_requests:int ->
  jobs:int ->
  Unix.file_descr ->
  unit
(** Serve one connection to completion on an already-accepted
    descriptor: sniff the 4-byte preamble, then loop — a CCQ1 frame is
    answered and the loop waits for the next preamble (keep-alive); an
    HTTP request is answered one-shot. Reads and writes retry over
    [EINTR] and short transfers; [idle_timeout_s] bounds the wait for
    each frame's first byte (the inter-frame gap) and [io_timeout_s]
    bounds each frame and each response (both default to unbounded, for
    driving the framing path over a socketpair in tests).
    [max_requests] (default [0] = unbounded) closes the connection
    after that many frames — the recycle bound. [queue_us] (default
    [0.]) is how long the connection waited in the admission queue —
    the daemon passes its measured wait so the queue stage lands in
    {!Latency} and the echoed {!timing}. [admit_depth] (default [0]) is
    the shard queue length observed when the connection was admitted,
    recorded in any {!Slow} tail sample. The descriptor is not
    closed. *)

type config = {
  host : string;  (** address to bind (default ["127.0.0.1"]) *)
  port : int;  (** [0] picks an ephemeral port *)
  jobs : int;  (** block-codec domains per job *)
  workers : int;  (** worker domains, one bounded queue each *)
  acceptors : int;  (** acceptor domains ([SO_REUSEPORT] siblings) *)
  queue_cap : int;  (** per-worker queue bound; beyond it, shed *)
  max_requests_per_conn : int;  (** recycle bound; [0] = unbounded *)
  idle_timeout_s : float;  (** inter-frame gap budget per connection *)
  io_timeout_s : float;  (** per-frame read and per-response write budget *)
  drain_s : float;  (** SIGTERM drain budget before shedding the queue *)
  allow_crash_op : bool;  (** honour the {!Crash_worker} chaos op *)
  slow_threshold_ms : float;  (** tail-sample requests at/above this; [0.] = all *)
  slow_capacity : int;  (** bounded slow-request ring size *)
}

val default_config : config
(** [{host = "127.0.0.1"; port = 7070; jobs = 1; workers = 2;
    acceptors = 1; queue_cap = 64; max_requests_per_conn = 0;
    idle_timeout_s = 10.; io_timeout_s = 30.; drain_s = 5.;
    allow_crash_op = false; slow_threshold_ms = 100.;
    slow_capacity = 64}] *)

val run : ?on_ready:(int -> unit) -> config -> unit
(** Bind, call [on_ready] with the bound port, then serve until
    SIGTERM/SIGINT, which trigger the graceful drain described above.
    Acceptor 0 runs on the calling domain; [acceptors - 1] more
    domains accept on [SO_REUSEPORT] sibling sockets (or share one
    non-blocking listener where the option is unavailable), [workers]
    extra domains consume the shard queues, and one parker domain
    holds keep-alive connections between frames. SIGPIPE is ignored
    for the process (a peer closing mid-write must surface as [EPIPE],
    not kill the daemon). *)

(** {2 Clients}

    Minimal clients for the two protocols — what [ccomp submit],
    [ccomp scrape], [ccomp top], [ccomp loadgen] and the chaos harness
    use. All take [?timeout_s], covering connect (non-blocking +
    select, every [getaddrinfo] candidate tried in order) and each
    read/write (socket timeouts), so a dead or wedged daemon produces a
    clear error instead of a hang. *)

(** A persistent CCQ1v4 client connection: submit many requests over
    one socket, replies read by frame (not to EOF). Not thread-safe —
    one domain per connection. *)
module Conn : sig
  type t

  type error =
    | Stale of string
        (** the server closed between frames — idle timeout or
            [max_requests_per_conn] recycle. The request was never
            read: reconnect and resend. *)
    | Transport of string
        (** a transport or framing failure mid-frame; a blind resend
            may duplicate work *)

  val error_message : error -> string

  val connect : ?timeout_s:float -> host:string -> port:int -> unit -> (t, string) result
  (** Open a persistent connection. [timeout_s] bounds the connect and
      every subsequent per-request read/write. *)

  val submit_timed :
    ?deadline_ms:int ->
    ?request_id:int64 ->
    t ->
    request ->
    (response * timing option, error) result
  (** One request/reply exchange on the open connection. After any
      [Error] the connection is dead ({!is_alive} [= false]); {!Stale}
      means a fresh connection should retry the same request. *)

  val submit : ?deadline_ms:int -> t -> request -> (response, error) result

  val connect_us : t -> float
  (** Connect cost paid to open this connection (resolution included),
      in microseconds — what [ccomp loadgen]'s connect-cost columns
      aggregate. *)

  val served : t -> int
  (** Frames successfully exchanged so far. *)

  val is_alive : t -> bool

  val close : t -> unit
  (** Idempotent. *)
end

val submit :
  ?timeout_s:float ->
  ?deadline_ms:int ->
  host:string ->
  port:int ->
  request ->
  (response, string) result
(** One binary-protocol round-trip, returning the daemon's typed reply
    ([Error] is a transport or framing failure). *)

val submit_timed :
  ?timeout_s:float ->
  ?deadline_ms:int ->
  ?request_id:int64 ->
  host:string ->
  port:int ->
  request ->
  (response * timing option, string) result
(** {!submit} with per-request tracing: a nonzero [request_id] makes
    the daemon echo its server-side {!timing} record alongside the
    reply (the second component; [None] when tracing was not requested
    or the server predates it). What [ccomp loadgen] uses to split
    queue wait / service time / network. *)

val submit_legacy :
  ?timeout_s:float ->
  ?deadline_ms:int ->
  host:string ->
  port:int ->
  request ->
  (response, string) result
(** {!submit} over the pre-v4 one-shot wire shape: write one frame,
    shut down the send side, read the reply to EOF. Kept as the
    compatibility probe — the serve/chaos gates assert a keep-alive
    daemon answers this client byte-for-byte. *)

val submit_timed_legacy :
  ?timeout_s:float ->
  ?deadline_ms:int ->
  ?request_id:int64 ->
  host:string ->
  port:int ->
  request ->
  (response * timing option, string) result
(** {!submit_timed} over the pre-v4 one-shot wire shape. *)

val request :
  ?timeout_s:float ->
  ?deadline_ms:int ->
  ?retries:int ->
  ?backoff_s:float ->
  ?seed:int ->
  host:string ->
  port:int ->
  request ->
  (string, string) result
(** {!submit} plus policy: [Ok payload] on success; {!Overloaded}
    replies and transport errors are retried up to [retries] times
    (default [0]) with seeded jittered exponential backoff
    ([backoff_s] base, default 50 ms); {!Failed} and
    {!Deadline_expired} are not retried. [timeout_s] defaults to
    30 s. *)

val http_get :
  ?timeout_s:float -> host:string -> port:int -> string -> (int * string, string) result
(** One HTTP/1.0 GET; [Ok (status, body)]. *)
