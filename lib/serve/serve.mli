(** [ccomp serve]: a dependency-free compression daemon.

    One TCP listener (plain [Unix] sockets) speaks two protocols,
    distinguished by the first four bytes of each connection:

    {ul
    {- a length-prefixed binary job protocol ({!section-protocol}) for
       compress/decompress/ping jobs — the service path; and}
    {- HTTP/1.0 [GET] for the observability surface: [/metrics]
       (OpenMetrics text), [/healthz], [/events] (JSON lines, newest
       last, [?n=] to bound) and [/snapshot] (the metrics snapshot as
       JSON — what [ccomp top] polls).}}

    Jobs run through exactly the same codec paths as the offline CLI,
    so a served compression is byte-identical to [ccomp compress] with
    the same flags. The daemon switches metrics and the event log on at
    startup; block-level work inside a job fans out over the lib/par
    pool ([jobs] domains).

    {2:protocol Wire format}

    Request: ["CCQ1"] · opcode(1) · algo(1) · isa(1) · block_size(2,BE)
    · payload_len(4,BE) · payload. Opcodes: [1] compress, [2]
    decompress, [3] ping. Algo: [0] samc, [1] sadc. ISA: [0] mips,
    [1] x86.

    Response: ["CCR1"] · status(1: [0] ok, [1] error) ·
    payload_len(4,BE) · payload (result bytes, or an error message). *)

type algo = Samc | Sadc

type isa = Mips | X86

type request =
  | Compress of { algo : algo; isa : isa; block_size : int; code : string }
  | Decompress of string
  | Ping

type response = Payload of string | Failed of string

type protocol_error =
  | Frame_too_large of { limit : int; got : int }
      (** The frame declared a payload longer than the daemon will
          allocate ([limit] is {!max_payload}). *)
  | Truncated of string  (** The peer closed before the frame was complete. *)
  | Malformed of string  (** Bad magic, tags, lengths or opcode. *)

val protocol_error_to_string : protocol_error -> string

val max_payload : int
(** Largest request payload the daemon accepts (bytes); longer frames
    are refused with {!Frame_too_large} before any allocation. *)

val encode_request : request -> string

val decode_request : string -> (request, protocol_error) result
(** Inverse of {!encode_request} on a complete request frame. *)

val encode_response : response -> string

val decode_response : string -> (response, string) result

val handle_request : jobs:int -> request -> response
(** Run one job locally (no socket) — the daemon's dispatch, exposed
    for tests and reused by both protocols. *)

val http_response : string -> (int * string * string) option
(** [http_response target] routes an HTTP request-target to
    [Some (status, content_type, body)], or [None] for an unknown
    path. *)

val handle_connection : jobs:int -> Unix.file_descr -> unit
(** Serve exactly one connection on an already-accepted descriptor:
    sniff the 4-byte preamble, dispatch to the binary or HTTP handler,
    write the response. Reads and writes retry over [EINTR] and short
    transfers. Exposed so tests can drive the full framing path over a
    socketpair without a live daemon. The descriptor is not closed. *)

val run :
  ?host:string ->
  port:int ->
  jobs:int ->
  workers:int ->
  ?on_ready:(int -> unit) ->
  unit ->
  unit
(** Bind [host] (default ["127.0.0.1"]) on [port] ([0] picks an
    ephemeral port), call [on_ready] with the bound port, then serve
    until interrupted ([Sys.Break], i.e. SIGINT/SIGTERM with the CLI's
    handlers installed). [workers - 1] extra domains accept on the same
    listener; each job additionally fans block work over [jobs]
    domains. *)

(** Minimal clients for the two protocols — what [ccomp submit],
    [ccomp scrape] and [ccomp top] use. *)

val request : host:string -> port:int -> request -> (string, string) result
(** Submit one binary-protocol job; [Ok payload] on success, the
    daemon's (or socket's) error otherwise. *)

val http_get : host:string -> port:int -> string -> (int * string, string) result
(** One HTTP/1.0 GET; [Ok (status, body)]. *)
