(* Compression daemon: one TCP listener, two protocols (binary jobs +
   HTTP observability), codecs shared verbatim with the offline CLI so
   served output is byte-identical.

   Concurrency model: [workers] domains each run the accept loop on the
   shared listening socket (accept(2) is safe to share); inside a job,
   block-level codec work fans out over the lib/par pool. The metrics
   registry and event ring are Domain-safe, so every handler publishes
   freely. *)

module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events
module Openmetrics = Ccomp_obs.Openmetrics
module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Image = Ccomp_image.Image

type algo = Samc | Sadc

type isa = Mips | X86

type request =
  | Compress of { algo : algo; isa : isa; block_size : int; code : string }
  | Decompress of string
  | Ping

type response = Payload of string | Failed of string

let req_magic = "CCQ1"

let resp_magic = "CCR1"

let req_header_len = 13

let resp_header_len = 9

(* --- service metrics ---------------------------------------------------- *)

let m_connections = Obs.Counter.make "serve.connections"

let m_jobs_compress = Obs.Counter.make "serve.jobs.compress"

let m_jobs_decompress = Obs.Counter.make "serve.jobs.decompress"

let m_jobs_failed = Obs.Counter.make "serve.jobs.failed"

let m_http = Obs.Counter.make "serve.http.requests"

let m_bytes_in = Obs.Counter.make "serve.bytes_in"

let m_bytes_out = Obs.Counter.make "serve.bytes_out"

let m_job_us = Obs.Histogram.make "serve.job_us"

(* --- framing ------------------------------------------------------------ *)

let be16 v = Printf.sprintf "%c%c" (Char.chr ((v lsr 8) land 0xff)) (Char.chr (v land 0xff))

let be32 v =
  Printf.sprintf "%c%c%c%c"
    (Char.chr ((v lsr 24) land 0xff))
    (Char.chr ((v lsr 16) land 0xff))
    (Char.chr ((v lsr 8) land 0xff))
    (Char.chr (v land 0xff))

let read_be16 s pos = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]

let read_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let max_payload = 1 lsl 28 (* 256 MB: refuse absurd frames instead of allocating them *)

type protocol_error =
  | Frame_too_large of { limit : int; got : int }
  | Truncated of string
  | Malformed of string

let protocol_error_to_string = function
  | Frame_too_large { limit; got } ->
    Printf.sprintf "frame too large: %d-byte payload exceeds the %d-byte limit" got limit
  | Truncated what -> "truncated " ^ what
  | Malformed what -> "malformed request: " ^ what

let algo_tag = function (Samc : algo) -> 0 | Sadc -> 1

let algo_of_tag = function 0 -> Some (Samc : algo) | 1 -> Some Sadc | _ -> None

let isa_tag = function Mips -> 0 | X86 -> 1

let isa_of_tag = function 0 -> Some Mips | 1 -> Some X86 | _ -> None

let encode_request = function
  | Compress { algo; isa; block_size; code } ->
    req_magic
    ^ Printf.sprintf "%c%c%c" (Char.chr 1) (Char.chr (algo_tag algo)) (Char.chr (isa_tag isa))
    ^ be16 block_size ^ be32 (String.length code) ^ code
  | Decompress data ->
    req_magic ^ "\x02\x00\x00" ^ be16 0 ^ be32 (String.length data) ^ data
  | Ping -> req_magic ^ "\x03\x00\x00" ^ be16 0 ^ be32 0

let decode_request s =
  if String.length s < req_header_len then Error (Truncated "request header")
  else if String.sub s 0 4 <> req_magic then Error (Malformed "bad request magic")
  else begin
    let payload_len = read_be32 s 9 in
    if payload_len > max_payload then
      Error (Frame_too_large { limit = max_payload; got = payload_len })
    else if String.length s < req_header_len + payload_len then
      Error (Truncated "request payload")
    else if String.length s > req_header_len + payload_len then
      Error (Malformed "trailing bytes after payload")
    else
      let payload = String.sub s req_header_len payload_len in
      match Char.code s.[4] with
      | 1 -> (
        match (algo_of_tag (Char.code s.[5]), isa_of_tag (Char.code s.[6])) with
        | Some algo, Some isa ->
          let block_size = read_be16 s 7 in
          if block_size = 0 then Error (Malformed "block size must be positive")
          else Ok (Compress { algo; isa; block_size; code = payload })
        | None, _ -> Error (Malformed "unknown algorithm tag")
        | _, None -> Error (Malformed "unknown ISA tag"))
      | 2 -> Ok (Decompress payload)
      | 3 -> Ok Ping
      | op -> Error (Malformed (Printf.sprintf "unknown opcode %d" op))
  end

let encode_response = function
  | Payload data -> resp_magic ^ "\x00" ^ be32 (String.length data) ^ data
  | Failed msg -> resp_magic ^ "\x01" ^ be32 (String.length msg) ^ msg

let decode_response s =
  if String.length s < resp_header_len then Error "truncated response header"
  else if String.sub s 0 4 <> resp_magic then Error "bad response magic"
  else begin
    let len = read_be32 s 5 in
    if String.length s <> resp_header_len + len then Error "response length mismatch"
    else
      let payload = String.sub s resp_header_len len in
      match Char.code s.[4] with
      | 0 -> Ok (Payload payload)
      | 1 -> Ok (Failed payload)
      | st -> Error (Printf.sprintf "unknown status %d" st)
  end

(* --- job dispatch ------------------------------------------------------- *)

(* Identical construction to `ccomp compress` with default flags, so a
   served job is byte-for-byte the offline output. *)
let compress_job ~jobs ~algo ~isa ~block_size code =
  match (algo, isa) with
  | (Samc : algo), Mips ->
    let cfg = Samc.mips_config ~block_size ~context_bits:2 ~quantize:false ~prune_below:0 () in
    Image.write (Image.of_samc ~isa:Image.Mips (Samc.compress ~jobs cfg code))
  | Samc, X86 ->
    let cfg = Samc.byte_config ~block_size ~context_bits:2 ~quantize:false ~prune_below:0 () in
    Image.write (Image.of_samc ~isa:Image.X86 (Samc.compress ~jobs cfg code))
  | Sadc, Mips ->
    let cfg = Sadc.default_config ~block_size () in
    Image.write (Image.of_sadc_mips (Sadc.Mips.compress_image ~jobs cfg code))
  | Sadc, X86 ->
    let cfg = Sadc.default_config ~block_size () in
    Image.write (Image.of_sadc_x86 (Sadc.X86.compress_image ~jobs cfg code))

let handle_request ~jobs req =
  let job kind f =
    let (resp : response), dt = Obs.timed ~cat:"serve" ("serve.job." ^ kind) f in
    if Obs.metrics_enabled () then Obs.Histogram.observe m_job_us (dt *. 1e6);
    (match resp with
    | Failed msg ->
      Obs.Counter.incr m_jobs_failed;
      Events.warn ~fields:[ ("kind", kind); ("error", msg) ] "serve.job.failed"
    | Payload p ->
      Events.debug
        ~fields:[ ("kind", kind); ("bytes", string_of_int (String.length p)) ]
        "serve.job.done");
    resp
  in
  match req with
  | Ping -> Payload "pong"
  | Compress { algo; isa; block_size; code } ->
    Obs.Counter.incr m_jobs_compress;
    job "compress" (fun () ->
        match compress_job ~jobs ~algo ~isa ~block_size code with
        | image -> Payload image
        | exception e -> Failed (Printexc.to_string e))
  | Decompress data ->
    Obs.Counter.incr m_jobs_decompress;
    job "decompress" (fun () ->
        match Image.read data with
        | Error e -> Failed ("cannot read image: " ^ e)
        | Ok image -> (
          match Image.decompress ~jobs image with
          | code -> Payload code
          | exception e -> Failed (Printexc.to_string e)))

(* --- HTTP --------------------------------------------------------------- *)

let query_int target key ~default =
  match String.index_opt target '?' with
  | None -> default
  | Some i ->
    let q = String.sub target (i + 1) (String.length target - i - 1) in
    List.fold_left
      (fun acc kv ->
        match String.split_on_char '=' kv with
        | [ k; v ] when k = key -> ( match int_of_string_opt v with Some n -> n | None -> acc)
        | _ -> acc)
      default (String.split_on_char '&' q)

let path_of_target target =
  match String.index_opt target '?' with
  | None -> target
  | Some i -> String.sub target 0 i

let http_response target =
  match path_of_target target with
  | "/metrics" ->
    Some (200, "application/openmetrics-text; version=1.0.0; charset=utf-8", Openmetrics.render ())
  | "/healthz" -> Some (200, "text/plain; charset=utf-8", "ok\n")
  | "/events" ->
    Some (200, "application/x-ndjson", Events.tail_json (query_int target "n" ~default:50))
  | "/snapshot" -> Some (200, "application/json", Obs.snapshot_to_json (Obs.snapshot ()))
  | _ -> None

(* --- socket plumbing ---------------------------------------------------- *)

(* Unix.read/write on a socket can return short OR raise EINTR at any
   point (a signal landing mid-syscall); both must restart, not abort
   the frame. *)
let rec retry_intr f =
  match f () with v -> v | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let rec write_all fd s pos len =
  if len > 0 then begin
    let n = retry_intr (fun () -> Unix.write_substring fd s pos len) in
    write_all fd s (pos + n) (len - n)
  end

let send fd s =
  write_all fd s 0 (String.length s);
  Obs.Counter.add m_bytes_out (String.length s)

let read_exact ~what fd n =
  let buf = Bytes.create n in
  let rec go pos =
    if pos >= n then Ok (Bytes.unsafe_to_string buf)
    else
      match retry_intr (fun () -> Unix.read fd buf pos (n - pos)) with
      | 0 -> Error (Truncated (Printf.sprintf "%s (peer closed after %d of %d bytes)" what pos n))
      | k -> go (pos + k)
  in
  go 0

let handle_binary ~jobs fd first4 =
  let ( let* ) = Result.bind in
  let result =
    let* rest = read_exact ~what:"request header" fd (req_header_len - 4) in
    let header = first4 ^ rest in
    let payload_len = read_be32 header 9 in
    if payload_len > max_payload then
      Error (Frame_too_large { limit = max_payload; got = payload_len })
    else
      let* payload = read_exact ~what:"request payload" fd payload_len in
      Obs.Counter.add m_bytes_in (req_header_len + payload_len);
      decode_request (header ^ payload)
  in
  let resp =
    match result with
    | Ok req -> handle_request ~jobs req
    | Error pe ->
      Events.warn ~fields:[ ("error", protocol_error_to_string pe) ] "serve.protocol_error";
      Failed (protocol_error_to_string pe)
  in
  send fd (encode_response resp)

let max_http_head = 8192

let has_head_terminator s =
  let n = String.length s in
  let rec find i = i + 4 <= n && (String.sub s i 4 = "\r\n\r\n" || find (i + 1)) in
  find 0

let handle_http fd first4 =
  (* Read the request head (we never need a body on GET). *)
  let b = Buffer.create 256 in
  Buffer.add_string b first4;
  let chunk = Bytes.create 512 in
  let rec fill () =
    if Buffer.length b >= max_http_head || has_head_terminator (Buffer.contents b) then ()
    else
      match retry_intr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes b chunk 0 n;
        fill ()
  in
  fill ();
  Obs.Counter.incr m_http;
  Obs.Counter.add m_bytes_in (Buffer.length b);
  let head = Buffer.contents b in
  let request_line = match String.index_opt head '\r' with
    | Some i -> String.sub head 0 i
    | None -> head
  in
  let status, ctype, body =
    if Buffer.length b >= max_http_head && not (has_head_terminator head) then
      (* the peer never finished its head within the limit; answer with
         413 instead of misparsing a truncated request line as a target *)
      (413, "text/plain; charset=utf-8", "request head too large\n")
    else
      match String.split_on_char ' ' request_line with
      | meth :: target :: _ when meth = "GET" || meth = "HEAD" -> (
        match http_response target with
        | Some r -> r
        | None -> (404, "text/plain; charset=utf-8", "not found\n"))
      | _ -> (400, "text/plain; charset=utf-8", "bad request\n")
  in
  let reason =
    match status with
    | 200 -> "OK"
    | 400 -> "Bad Request"
    | 413 -> "Content Too Large"
    | _ -> "Not Found"
  in
  Events.debug
    ~fields:[ ("request", request_line); ("status", string_of_int status) ]
    "serve.http";
  send fd
    (Printf.sprintf "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
       status reason ctype (String.length body) body)

let handle_connection ~jobs fd =
  Obs.Counter.incr m_connections;
  match read_exact ~what:"connection preamble" fd 4 with
  | Error _ -> ()
  | Ok first4 ->
    if first4 = req_magic then handle_binary ~jobs fd first4 else handle_http fd first4

(* --- accept loop -------------------------------------------------------- *)

let serve_loop ~jobs stop listen_fd =
  let continue_ = ref true in
  while !continue_ && not (Atomic.get stop) do
    match Unix.accept listen_fd with
    | conn, _ ->
      (try handle_connection ~jobs conn
       with
      | Sys.Break ->
        Atomic.set stop true;
        continue_ := false
      | e ->
        Events.error ~fields:[ ("error", Printexc.to_string e) ] "serve.connection_error");
      (try Unix.close conn with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      (* listener closed during shutdown *)
      continue_ := false
    | exception Sys.Break ->
      Atomic.set stop true;
      continue_ := false
  done

let run ?(host = "127.0.0.1") ~port ~jobs ~workers ?(on_ready = fun _ -> ()) () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 64;
  let bound_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  Events.info
    ~fields:[ ("host", host); ("port", string_of_int bound_port); ("jobs", string_of_int jobs) ]
    "serve.start";
  on_ready bound_port;
  let stop = Atomic.make false in
  let extra =
    Array.init (max 0 (workers - 1)) (fun _ -> Domain.spawn (fun () -> serve_loop ~jobs stop fd))
  in
  let finish () =
    Atomic.set stop true;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Array.iter Domain.join extra;
    Events.info "serve.stop"
  in
  Fun.protect ~finally:finish (fun () -> serve_loop ~jobs stop fd)

(* --- clients ------------------------------------------------------------- *)

let with_connection ~host ~port f =
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s" host)
  | ai :: _ -> (
    let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype ai.Unix.ai_protocol in
    match
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          Unix.connect fd ai.Unix.ai_addr;
          f fd)
    with
    | v -> v
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e)))

let read_until_eof fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match retry_intr (fun () -> Unix.read fd chunk 0 (Bytes.length chunk)) with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
  in
  go ()

let request ~host ~port req =
  with_connection ~host ~port (fun fd ->
      let frame = encode_request req in
      write_all fd frame 0 (String.length frame);
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      match decode_response (read_until_eof fd) with
      | Ok (Payload p) -> Ok p
      | Ok (Failed msg) -> Error msg
      | Error msg -> Error msg)

let http_get ~host ~port target =
  with_connection ~host ~port (fun fd ->
      let q = Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" target host in
      write_all fd q 0 (String.length q);
      let raw = read_until_eof fd in
      match String.index_opt raw ' ' with
      | None -> Error "malformed HTTP response"
      | Some i -> (
        let rest = String.sub raw (i + 1) (String.length raw - i - 1) in
        let status =
          match String.split_on_char ' ' rest with
          | code :: _ -> int_of_string_opt code
          | [] -> None
        in
        match status with
        | None -> Error "malformed HTTP status"
        | Some status ->
          let body =
            let rec find j =
              if j + 4 > String.length raw then String.length raw
              else if String.sub raw j 4 = "\r\n\r\n" then j + 4
              else find (j + 1)
            in
            let start = find 0 in
            String.sub raw start (String.length raw - start)
          in
          Ok (status, body)))
