(* Compression daemon: TCP listeners, two protocols (binary jobs +
   HTTP observability), codecs shared verbatim with the offline CLI so
   served output is byte-identical.

   Concurrency model (overload-safe by construction):

     acceptor domains (one listener each via SO_REUSEPORT, or one
     shared non-blocking listener when the kernel refuses the option)
       accept -> admission: bounded per-shard queue, or shed with a
       typed overload reply (CCR1 status 2 / HTTP 503). Accepts never
       stall on a slow client: the acceptor only ever does a
       non-blocking best-effort write when shedding.
     worker domains (one per shard)
       pop -> per-connection budgets (idle timeout on the preamble, an
       i/o deadline per frame) -> job dispatch with the request's
       deadline enforced before, during and after decode. CCQ1
       connections are persistent (CCQ1v4): a worker serves frames
       back-to-back while the client keeps them coming, then hands the
       quiet connection to the parker instead of pinning itself on the
       inter-frame gap. A worker that crashes is logged, counted in
       serve.worker_restarts_total and respawned in place; the daemon
       never dies with it.
     parker (one domain)
       selects over the parked keep-alive connections; a readable one
       re-enters admission like a fresh accept (so queue bounds apply
       per frame, not per connection), one idle past the inter-frame
       budget is closed quietly.

   SIGTERM/SIGINT switch the daemon into drain: stop accepting, close
   the parked (idle) connections, let workers finish the queued jobs
   within the drain budget, shed the rest with typed overload replies,
   then join and flush. The metrics registry and event ring are
   Domain-safe, so every handler publishes freely. *)

module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events
module Openmetrics = Ccomp_obs.Openmetrics
module Runtime = Ccomp_obs.Runtime
module Prng = Ccomp_util.Prng
module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Image = Ccomp_image.Image

type algo = Samc | Sadc

type isa = Mips | X86

type request =
  | Compress of { algo : algo; isa : isa; block_size : int; code : string }
  | Decompress of string
  | Ping
  | Crash_worker

type response =
  | Payload of string
  | Failed of string
  | Overloaded of string
  | Deadline_expired of string

exception Worker_crashed

let req_magic = "CCQ1"

let resp_magic = "CCR1"

(* Request header v2 (25 bytes): magic(4) op(1) algo(1) isa(1)
   block(2,BE) deadline_ms(4,BE) request_id(8,BE) payload_len(4,BE).
   The request id is client-chosen, opaque to the daemon, and echoed in
   the reply's timing record so a client can correlate its own send
   schedule with the server's per-stage clock. Zero means "no tracing
   requested" and suppresses the echo. *)
let req_header_len = 25

(* Response header v2 (10 bytes): magic(4) status(1) timing_len(1)
   payload_len(4,BE), then [timing_len] bytes of timing record, then
   the payload. timing_len is 0 (no record) or [timing_record_len]. *)
let resp_header_len = 10

let timing_record_len = 20

type frame_meta = { deadline_ms : int; request_id : int64 }

type timing = {
  t_request_id : int64;
  t_queue_us : int;  (** accepted -> popped by a worker *)
  t_service_us : int;  (** the codec job itself *)
  t_server_us : int;  (** queue + read + work: all server-side time *)
}

(* --- service metrics ---------------------------------------------------- *)

let m_connections = Obs.Counter.make "serve.connections"

let m_jobs_compress = Obs.Counter.make "serve.jobs.compress"

let m_jobs_decompress = Obs.Counter.make "serve.jobs.decompress"

let m_jobs_failed = Obs.Counter.make "serve.jobs.failed"

let m_http = Obs.Counter.make "serve.http.requests"

let m_bytes_in = Obs.Counter.make "serve.bytes_in"

let m_bytes_out = Obs.Counter.make "serve.bytes_out"

let m_job_us = Obs.Histogram.make "serve.job_us"

let m_shed = Obs.Counter.make "serve.shed_total"

let m_deadline_expired = Obs.Counter.make "serve.deadline_expired_total"

let m_worker_restarts = Obs.Counter.make "serve.worker_restarts_total"

let m_io_timeouts = Obs.Counter.make "serve.io_timeouts"

let m_queue_wait_us = Obs.Histogram.make "serve.queue_wait_us"

let m_inflight = Obs.Gauge.make "serve.inflight"

(* keep-alive bookkeeping: frames vs connections is the reuse ratio *)
let m_frames = Obs.Counter.make "serve.frames"

let m_recycles = Obs.Counter.make "serve.conn_recycles"

let m_keepalive_idle = Obs.Counter.make "serve.keepalive_idle_closes"

let m_parked = Obs.Gauge.make "serve.parked"

let inflight = Atomic.make 0

(* --- framing ------------------------------------------------------------ *)

let be16 v = Printf.sprintf "%c%c" (Char.chr ((v lsr 8) land 0xff)) (Char.chr (v land 0xff))

let be32 v =
  Printf.sprintf "%c%c%c%c"
    (Char.chr ((v lsr 24) land 0xff))
    (Char.chr ((v lsr 16) land 0xff))
    (Char.chr ((v lsr 8) land 0xff))
    (Char.chr (v land 0xff))

let be64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v ((7 - i) * 8)) 0xFFL)))

let read_be16 s pos = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1]

let read_be32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let read_be64 s pos =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !acc

let max_payload = 1 lsl 28 (* 256 MB: refuse absurd frames instead of allocating them *)

type protocol_error =
  | Frame_too_large of { limit : int; got : int }
  | Truncated of string
  | Malformed of string
  | Timed_out of string

let protocol_error_to_string = function
  | Frame_too_large { limit; got } ->
    Printf.sprintf "frame too large: %d-byte payload exceeds the %d-byte limit" got limit
  | Truncated what -> "truncated " ^ what
  | Malformed what -> "malformed request: " ^ what
  | Timed_out what -> "i/o timeout: " ^ what

let algo_tag = function (Samc : algo) -> 0 | Sadc -> 1

let algo_of_tag = function 0 -> Some (Samc : algo) | 1 -> Some Sadc | _ -> None

let isa_tag = function Mips -> 0 | X86 -> 1

let isa_of_tag = function 0 -> Some Mips | 1 -> Some X86 | _ -> None

let encode_request ?(deadline_ms = 0) ?(request_id = 0L) req =
  let frame ~op ~algo ~isa ~block payload =
    req_magic
    ^ Printf.sprintf "%c%c%c" (Char.chr op) (Char.chr algo) (Char.chr isa)
    ^ be16 block ^ be32 deadline_ms ^ be64 request_id
    ^ be32 (String.length payload)
    ^ payload
  in
  match req with
  | Compress { algo; isa; block_size; code } ->
    frame ~op:1 ~algo:(algo_tag algo) ~isa:(isa_tag isa) ~block:block_size code
  | Decompress data -> frame ~op:2 ~algo:0 ~isa:0 ~block:0 data
  | Ping -> frame ~op:3 ~algo:0 ~isa:0 ~block:0 ""
  | Crash_worker -> frame ~op:4 ~algo:0 ~isa:0 ~block:0 ""

let decode_request s =
  if String.length s < req_header_len then Error (Truncated "request header")
  else if String.sub s 0 4 <> req_magic then Error (Malformed "bad request magic")
  else begin
    let meta = { deadline_ms = read_be32 s 9; request_id = read_be64 s 13 } in
    let payload_len = read_be32 s 21 in
    if payload_len > max_payload then
      Error (Frame_too_large { limit = max_payload; got = payload_len })
    else if String.length s < req_header_len + payload_len then
      Error (Truncated "request payload")
    else if String.length s > req_header_len + payload_len then
      Error (Malformed "trailing bytes after payload")
    else
      let payload = String.sub s req_header_len payload_len in
      match Char.code s.[4] with
      | 1 -> (
        match (algo_of_tag (Char.code s.[5]), isa_of_tag (Char.code s.[6])) with
        | Some algo, Some isa ->
          let block_size = read_be16 s 7 in
          if block_size = 0 then Error (Malformed "block size must be positive")
          else Ok (Compress { algo; isa; block_size; code = payload }, meta)
        | None, _ -> Error (Malformed "unknown algorithm tag")
        | _, None -> Error (Malformed "unknown ISA tag"))
      | 2 -> Ok (Decompress payload, meta)
      | 3 -> Ok (Ping, meta)
      | 4 -> Ok (Crash_worker, meta)
      | op -> Error (Malformed (Printf.sprintf "unknown opcode %d" op))
  end

(* Stage durations ride the wire as 32-bit microsecond counts; cap
   rather than wrap so a pathological 71-minute stage still reads as
   "huge", not as a small number. *)
let cap_u32 v = if v < 0 then 0 else if v > 0xFFFF_FFFF then 0xFFFF_FFFF else v

let encode_timing t =
  be64 t.t_request_id ^ be32 (cap_u32 t.t_queue_us) ^ be32 (cap_u32 t.t_service_us)
  ^ be32 (cap_u32 t.t_server_us)

let decode_timing s pos =
  {
    t_request_id = read_be64 s pos;
    t_queue_us = read_be32 s (pos + 8);
    t_service_us = read_be32 s (pos + 12);
    t_server_us = read_be32 s (pos + 16);
  }

let encode_response ?timing resp =
  let trecord = match timing with None -> "" | Some t -> encode_timing t in
  let frame status payload =
    resp_magic
    ^ String.make 1 (Char.chr status)
    ^ String.make 1 (Char.chr (String.length trecord))
    ^ be32 (String.length payload)
    ^ trecord ^ payload
  in
  match resp with
  | Payload data -> frame 0 data
  | Failed msg -> frame 1 msg
  | Overloaded msg -> frame 2 msg
  | Deadline_expired msg -> frame 3 msg

let decode_response s =
  if String.length s < resp_header_len then Error "truncated response header"
  else if String.sub s 0 4 <> resp_magic then Error "bad response magic"
  else begin
    let timing_len = Char.code s.[5] in
    let len = read_be32 s 6 in
    if timing_len <> 0 && timing_len <> timing_record_len then
      Error (Printf.sprintf "unknown timing record length %d" timing_len)
    else if String.length s <> resp_header_len + timing_len + len then
      Error "response length mismatch"
    else
      let timing =
        if timing_len = 0 then None else Some (decode_timing s resp_header_len)
      in
      let payload = String.sub s (resp_header_len + timing_len) len in
      match Char.code s.[4] with
      | 0 -> Ok (Payload payload, timing)
      | 1 -> Ok (Failed payload, timing)
      | 2 -> Ok (Overloaded payload, timing)
      | 3 -> Ok (Deadline_expired payload, timing)
      | st -> Error (Printf.sprintf "unknown status %d" st)
  end

(* --- deadlines ---------------------------------------------------------- *)

(* Deadlines are absolute [Obs.now_us] instants; [None] never expires.
   The CCQ1 deadline_ms field is relative to the moment the daemon
   finished reading the frame — a propagation-friendly budget that
   needs no clock agreement between client and server. *)

let expired = function None -> false | Some d -> Obs.now_us () > d

let deadline_after_s = function
  | None -> None
  | Some seconds -> Some (Obs.now_us () +. (seconds *. 1e6))

let deadline_reply ~at =
  Obs.Counter.incr m_deadline_expired;
  Events.warn ~fields:[ ("at", at) ] "serve.deadline_expired";
  Deadline_expired (Printf.sprintf "deadline expired %s" at)

(* --- job dispatch ------------------------------------------------------- *)

(* Identical construction to `ccomp compress` with default flags, so a
   served job is byte-for-byte the offline output. *)
let compress_job ~jobs ~algo ~isa ~block_size code =
  match (algo, isa) with
  | (Samc : algo), Mips ->
    let cfg = Samc.mips_config ~block_size ~context_bits:2 ~quantize:false ~prune_below:0 () in
    Image.write (Image.of_samc ~isa:Image.Mips (Samc.compress ~jobs cfg code))
  | Samc, X86 ->
    let cfg = Samc.byte_config ~block_size ~context_bits:2 ~quantize:false ~prune_below:0 () in
    Image.write (Image.of_samc ~isa:Image.X86 (Samc.compress ~jobs cfg code))
  | Sadc, Mips ->
    let cfg = Sadc.default_config ~block_size () in
    Image.write (Image.of_sadc_mips (Sadc.Mips.compress_image ~jobs cfg code))
  | Sadc, X86 ->
    let cfg = Sadc.default_config ~block_size () in
    Image.write (Image.of_sadc_x86 (Sadc.X86.compress_image ~jobs cfg code))

let handle_request ?deadline_us ~jobs req =
  let job kind f =
    let (resp : response), dt = Obs.timed ~cat:"serve" ("serve.job." ^ kind) f in
    if Obs.metrics_enabled () then Obs.Histogram.observe m_job_us (dt *. 1e6);
    (match resp with
    | Failed msg ->
      Obs.Counter.incr m_jobs_failed;
      Events.warn ~fields:[ ("kind", kind); ("error", msg) ] "serve.job.failed"
    | Overloaded _ | Deadline_expired _ -> () (* counted at creation *)
    | Payload p ->
      Events.debug
        ~fields:[ ("kind", kind); ("bytes", string_of_int (String.length p)) ]
        "serve.job.done");
    resp
  in
  match req with
  | Ping -> Payload "pong"
  | Crash_worker ->
    (* deliberately escapes the per-connection handler: the supervised
       worker loop books a restart — this is the chaos harness's way of
       killing a worker domain from the outside *)
    raise Worker_crashed
  | Compress { algo; isa; block_size; code } ->
    Obs.Counter.incr m_jobs_compress;
    job "compress" (fun () ->
        if expired deadline_us then deadline_reply ~at:"before compress"
        else
          match compress_job ~jobs ~algo ~isa ~block_size code with
          | image ->
            if expired deadline_us then deadline_reply ~at:"during compress" else Payload image
          | exception e -> Failed (Printexc.to_string e))
  | Decompress data ->
    Obs.Counter.incr m_jobs_decompress;
    job "decompress" (fun () ->
        if expired deadline_us then deadline_reply ~at:"before decode"
        else
          match Image.read data with
          | Error e -> Failed ("cannot read image: " ^ e)
          | Ok image -> (
            if expired deadline_us then deadline_reply ~at:"before decompress"
            else
              match Image.decompress ~jobs image with
              | code ->
                if expired deadline_us then deadline_reply ~at:"during decompress"
                else Payload code
              | exception e -> Failed (Printexc.to_string e)))

(* --- HTTP --------------------------------------------------------------- *)

let query_str target key =
  match String.index_opt target '?' with
  | None -> None
  | Some i ->
    let q = String.sub target (i + 1) (String.length target - i - 1) in
    List.fold_left
      (fun acc kv ->
        match String.split_on_char '=' kv with
        | [ k; v ] when k = key -> Some v
        | _ -> acc)
      None (String.split_on_char '&' q)

let query_int target key ~default =
  match Option.bind (query_str target key) int_of_string_opt with
  | Some n -> n
  | None -> default

let path_of_target target =
  match String.index_opt target '?' with
  | None -> target
  | Some i -> String.sub target 0 i

(* serve.uptime_seconds counts from daemon start ([run] resets it); the
   module-load fallback keeps the gauge meaningful for in-process tests
   that call [http_response] without a daemon. *)
let started_at_us = ref (Obs.now_us ())

let m_uptime = Obs.Gauge.make "serve.uptime_seconds"

let refresh_uptime () = Obs.Gauge.set m_uptime ((Obs.now_us () -. !started_at_us) /. 1e6)

let version = "1.0.0"

let () = Openmetrics.set_info "serve" [ ("version", version) ]

let http_response target =
  match path_of_target target with
  | "/metrics" ->
    refresh_uptime ();
    Some (200, "application/openmetrics-text; version=1.0.0; charset=utf-8", Openmetrics.render ())
  | "/healthz" -> Some (200, "text/plain; charset=utf-8", "ok\n")
  | "/events" -> (
    let n = query_int target "n" ~default:50 in
    match query_str target "level" with
    | None -> Some (200, "application/x-ndjson", Events.tail_json n)
    | Some lvl -> (
      match Events.level_of_string lvl with
      | Some min_level -> Some (200, "application/x-ndjson", Events.tail_json ~min_level n)
      | None ->
        Some
          ( 400,
            "text/plain; charset=utf-8",
            Printf.sprintf "unknown level %S (want debug|info|warn|error)\n" lvl )))
  | "/snapshot" -> Some (200, "application/json", Obs.snapshot_to_json (Obs.snapshot ()))
  | "/slow" ->
    let n = query_int target "n" ~default:50 in
    Some (200, "application/x-ndjson", Slow.tail_json n)
  | _ -> None

(* --- socket plumbing ---------------------------------------------------- *)

(* Reads and writes carry an optional absolute deadline, enforced with
   SO_RCVTIMEO/SO_SNDTIMEO re-armed to the remaining budget before each
   syscall — so a slowloris peer trickling one byte per timeout window
   still hits the frame deadline. EINTR (a signal mid-syscall) restarts
   the transfer; EAGAIN/EWOULDBLOCK means the timeout fired. *)

let arm ~send fd deadline_us =
  match deadline_us with
  | None -> true
  | Some d ->
    let remaining = (d -. Obs.now_us ()) /. 1e6 in
    if remaining <= 0.0 then false
    else begin
      (try
         Unix.setsockopt_float fd
           (if send then Unix.SO_SNDTIMEO else Unix.SO_RCVTIMEO)
           (max remaining 0.001)
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      true
    end

let read_exact ?deadline_us ~what fd n =
  let buf = Bytes.create n in
  let rec go pos =
    if pos >= n then Ok (Bytes.unsafe_to_string buf)
    else if not (arm ~send:false fd deadline_us) then Error (Timed_out what)
    else
      match Unix.read fd buf pos (n - pos) with
      | 0 -> Error (Truncated (Printf.sprintf "%s (peer closed after %d of %d bytes)" what pos n))
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error (Timed_out what)
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
        Error (Truncated (Printf.sprintf "%s (connection reset)" what))
  in
  go 0

let write_all ?deadline_us ?(what = "write") fd s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then Ok ()
    else if not (arm ~send:true fd deadline_us) then Error (Timed_out what)
    else
      match Unix.write_substring fd s pos (n - pos) with
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Error (Timed_out what)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        Error (Truncated (Printf.sprintf "%s (peer closed)" what))
  in
  go 0

let send ?deadline_us fd s =
  let r = write_all ?deadline_us ~what:"response write" fd s in
  (match r with
  | Ok () -> Obs.Counter.add m_bytes_out (String.length s)
  | Error (Timed_out _) ->
    Obs.Counter.incr m_io_timeouts;
    Events.warn ~fields:[ ("what", "response write") ] "serve.io_timeout"
  | Error _ -> ());
  r

(* One CCQ1 frame: read it, run it, reply. Returns [true] when the
   stream is still in sync (frame parsed and the reply went out), so
   the keep-alive loop may read the next frame; any protocol or write
   failure returns [false] and the connection is closed — after a
   malformed or truncated frame the byte stream cannot be trusted. *)
let handle_binary ?io_timeout_s ?(allow_crash_op = false) ?(queue_us = 0.0) ?(admit_depth = 0)
    ~jobs fd first4 =
  let ( let* ) = Result.bind in
  (* Stage clock: [t0] accept-of-this-frame, [t_read] frame fully read
     and decoded, [t_work] job finished, [t_end] reply written. The
     queue stage (accept -> worker pop) happened before this call and
     arrives as [queue_us]. Each boundary also probes this domain's GC
     counters ([Runtime.probe] is a [Gc.quick_stat], cheap and exact
     for the calling domain) and stamps mutator liveness for the
     major-pause estimator. *)
  Runtime.tick ();
  let t0 = Obs.now_us () in
  let gc0 = Runtime.probe () in
  (* one i/o window for the whole request frame: a peer may be slow,
     but the header plus payload must arrive within the budget *)
  let read_deadline = deadline_after_s io_timeout_s in
  let result =
    Obs.with_span ~cat:"serve" "serve.read" (fun () ->
        let* rest =
          read_exact ?deadline_us:read_deadline ~what:"request header" fd (req_header_len - 4)
        in
        let header = first4 ^ rest in
        let payload_len = read_be32 header 21 in
        if payload_len > max_payload then
          Error (Frame_too_large { limit = max_payload; got = payload_len })
        else
          let* payload =
            read_exact ?deadline_us:read_deadline ~what:"request payload" fd payload_len
          in
          Obs.Counter.add m_bytes_in (req_header_len + payload_len);
          decode_request (header ^ payload))
  in
  let t_read = Obs.now_us () in
  let gc_read = Runtime.probe () in
  Runtime.tick ();
  let meta =
    match result with Ok (_, m) -> m | Error _ -> { deadline_ms = 0; request_id = 0L }
  in
  let resp =
    match result with
    | Ok (Crash_worker, _) when not allow_crash_op ->
      Events.warn "serve.crash_op_refused";
      Failed "crash op not enabled (start the daemon with --unsafe-crash-op)"
    | Ok (req, { deadline_ms; _ }) ->
      let deadline_us =
        if deadline_ms > 0 then Some (Obs.now_us () +. (float_of_int deadline_ms *. 1e3))
        else None
      in
      handle_request ?deadline_us ~jobs req
    | Error pe ->
      (match pe with
      | Timed_out _ ->
        Obs.Counter.incr m_io_timeouts;
        Events.warn ~fields:[ ("error", protocol_error_to_string pe) ] "serve.io_timeout"
      | _ -> Events.warn ~fields:[ ("error", protocol_error_to_string pe) ] "serve.protocol_error");
      Failed (protocol_error_to_string pe)
  in
  let t_work = Obs.now_us () in
  let gc_work = Runtime.probe () in
  Runtime.tick ();
  (* Echo the server-side split to a client that asked (nonzero id).
     server_us excludes the write stage — the timing record rides inside
     the very reply being written — so the client computes network time
     as (its corrected latency) - t_server_us, slightly pessimistic by
     the write cost, which is the conservative direction. *)
  let timing =
    if meta.request_id = 0L then None
    else
      Some
        {
          t_request_id = meta.request_id;
          t_queue_us = int_of_float queue_us;
          t_service_us = int_of_float (t_work -. t_read);
          t_server_us = int_of_float (queue_us +. (t_work -. t0));
        }
  in
  (* the response gets a fresh window — a large result legitimately
     takes longer to write than the request took to read *)
  let sent =
    Obs.with_span ~cat:"serve" "serve.write" (fun () ->
        send ?deadline_us:(deadline_after_s io_timeout_s) fd (encode_response ?timing resp))
  in
  let t_end = Obs.now_us () in
  let gc_end = Runtime.probe () in
  Latency.observe Latency.Queue queue_us;
  Latency.observe Latency.Read (t_read -. t0);
  Latency.observe Latency.Work (t_work -. t_read);
  Latency.observe Latency.Write (t_end -. t_work);
  Latency.observe_total (queue_us +. (t_end -. t0));
  if Obs.metrics_enabled () then begin
    (* Tail sampling: the full per-stage record, including what the GC
       did to this domain during each stage, for requests worth
       explaining. [sample] then folds this domain's cumulative growth
       into the runtime.* counters and re-arms the pause estimator. *)
    let kind =
      match result with
      | Ok (Compress _, _) -> "compress"
      | Ok (Decompress _, _) -> "decompress"
      | Ok (Ping, _) -> "ping"
      | Ok (Crash_worker, _) -> "crash"
      | Error _ -> "protocol_error"
    in
    let outcome =
      match resp with
      | Payload _ -> "ok"
      | Failed _ -> "failed"
      | Overloaded _ -> "overloaded"
      | Deadline_expired _ -> "deadline_expired"
    in
    ignore
      (Slow.maybe_sample
         {
           Slow.sr_ts_us = t_end;
           sr_id = meta.request_id;
           sr_kind = kind;
           sr_outcome = outcome;
           sr_total_us = queue_us +. (t_end -. t0);
           sr_queue_us = queue_us;
           sr_read_us = t_read -. t0;
           sr_work_us = t_work -. t_read;
           sr_write_us = t_end -. t_work;
           sr_queue_depth = admit_depth;
           sr_gc_read = Runtime.stage_delta gc0 gc_read;
           sr_gc_work = Runtime.stage_delta gc_read gc_work;
           sr_gc_write = Runtime.stage_delta gc_work gc_end;
         });
    ignore (Runtime.sample ())
  end;
  if meta.request_id <> 0L then
    Events.debug
      ~fields:
        [
          ("id", Int64.to_string meta.request_id);
          ("queue_us", Printf.sprintf "%.0f" queue_us);
          ("read_us", Printf.sprintf "%.0f" (t_read -. t0));
          ("work_us", Printf.sprintf "%.0f" (t_work -. t_read));
          ("write_us", Printf.sprintf "%.0f" (t_end -. t_work));
        ]
      "serve.request";
  (match result with Ok _ -> true | Error _ -> false) && sent = Ok ()

let max_http_head = 8192

let has_head_terminator s =
  let n = String.length s in
  let rec find i = i + 4 <= n && (String.sub s i 4 = "\r\n\r\n" || find (i + 1)) in
  find 0

let handle_http ?io_timeout_s fd first4 =
  (* Read the request head (we never need a body on GET). *)
  let read_deadline = deadline_after_s io_timeout_s in
  let b = Buffer.create 256 in
  Buffer.add_string b first4;
  let chunk = Bytes.create 512 in
  let rec fill () =
    if Buffer.length b >= max_http_head || has_head_terminator (Buffer.contents b) then Ok ()
    else if not (arm ~send:false fd read_deadline) then Error ()
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Ok ()
      | n ->
        Buffer.add_subbytes b chunk 0 n;
        fill ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> fill ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> Error ()
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Ok ()
  in
  match fill () with
  | Error () ->
    (* a slowloris HTTP head: give up without guessing at a target *)
    Obs.Counter.incr m_io_timeouts;
    Events.warn ~fields:[ ("what", "http head") ] "serve.io_timeout"
  | Ok () ->
    Obs.Counter.incr m_http;
    Obs.Counter.add m_bytes_in (Buffer.length b);
    let head = Buffer.contents b in
    let request_line =
      match String.index_opt head '\r' with Some i -> String.sub head 0 i | None -> head
    in
    let status, ctype, body =
      if Buffer.length b >= max_http_head && not (has_head_terminator head) then
        (* the peer never finished its head within the limit; answer with
           413 instead of misparsing a truncated request line as a target *)
        (413, "text/plain; charset=utf-8", "request head too large\n")
      else
        match String.split_on_char ' ' request_line with
        | meth :: target :: _ when meth = "GET" || meth = "HEAD" -> (
          match http_response target with
          | Some r -> r
          | None -> (404, "text/plain; charset=utf-8", "not found\n"))
        | _ -> (400, "text/plain; charset=utf-8", "bad request\n")
    in
    let reason =
      match status with
      | 200 -> "OK"
      | 400 -> "Bad Request"
      | 413 -> "Content Too Large"
      | 503 -> "Service Unavailable"
      | _ -> "Not Found"
    in
    Events.debug
      ~fields:[ ("request", request_line); ("status", string_of_int status) ]
      "serve.http";
    ignore
      (send ?deadline_us:(deadline_after_s io_timeout_s) fd
         (Printf.sprintf
            "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
            status reason ctype (String.length body) body))

(* --- keep-alive frame loop (CCQ1v4) ------------------------------------- *)

(* The preamble read is where keep-alive semantics live: a clean EOF at
   a frame boundary is the peer saying goodbye (not an error), a
   timeout is the inter-frame idle budget expiring, and bytes mean
   another frame. Old one-shot clients shut down their send side after
   one frame, so the next preamble read sees EOF and the connection
   closes exactly as it did pre-v4 — no version sniffing needed. *)
type preamble =
  | P_frame of string  (** 4 bytes arrived *)
  | P_eof  (** clean close before any byte of the next frame *)
  | P_partial  (** peer closed mid-preamble *)
  | P_timeout  (** idle budget expired *)

let read_preamble ?deadline_us fd =
  let buf = Bytes.create 4 in
  let rec go pos =
    if pos >= 4 then P_frame (Bytes.to_string buf)
    else if not (arm ~send:false fd deadline_us) then P_timeout
    else
      match Unix.read fd buf pos (4 - pos) with
      | 0 -> if pos = 0 then P_eof else P_partial
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> P_timeout
      | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> if pos = 0 then P_eof else P_partial
  in
  go 0

(* fds at or past FD_SETSIZE cannot go through select *)
let fd_int (fd : Unix.file_descr) : int = Obj.magic fd

let fd_setsize = 1024

let data_ready ?(timeout_s = 0.0) fd =
  if fd_int fd >= fd_setsize then true (* can't select: let the read decide *)
  else
    match Unix.select [ fd ] [] [] timeout_s with
    | [], _, _ -> false
    | _ -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    | exception Unix.Unix_error _ -> true

(* How long a worker with an empty queue waits on a served connection
   for its next frame before handing it to the parker. A synchronous
   request-response client sends its next frame one scheduling quantum
   after reading the reply — far too late for the zero-timeout
   [data_ready] probe, but comfortably inside this window — so lingering
   turns the common back-to-back case into zero park/re-admit hops.
   Bounded small enough that a genuinely idle connection costs at most
   one such wait before parking, and gated on the queue being empty so
   a worker never lingers while admitted work is waiting. *)
let keepalive_linger_s = 0.005

(* How serving a connection ended, from the worker's point of view. *)
type served = Closed | Parked of int  (** frames completed so far *)

(* Serve frames until the peer closes, a budget fires, the recycle
   bound hits, or — with [park] — the next frame is not already waiting
   (the caller hands the fd to the parker instead of blocking a worker
   domain on the inter-frame gap). [frames_done] carries the count
   across park/re-admit cycles so [max_requests] bounds the connection,
   not the worker visit. [queue_us]/[admit_depth] describe this
   admission and are charged to the first frame served here; frames
   served back-to-back afterwards never waited in a queue. *)
let serve_frames ?idle_timeout_s ?io_timeout_s ?allow_crash_op ?(queue_us = 0.0)
    ?(admit_depth = 0) ?(max_requests = 0) ?(park = false) ?(may_linger = fun () -> false)
    ?(frames_done = 0) ~jobs fd =
  let rec frame n ~queue_us ~admit_depth =
    match read_preamble ?deadline_us:(deadline_after_s idle_timeout_s) fd with
    | P_timeout ->
      if n = 0 then begin
        (* idle budget: the peer connected but never spoke *)
        Obs.Counter.incr m_io_timeouts;
        Events.warn ~fields:[ ("what", "connection preamble") ] "serve.idle_timeout"
      end
      else begin
        (* inter-frame gap: a quiet goodbye, not an error *)
        Obs.Counter.incr m_keepalive_idle;
        Events.debug ~fields:[ ("frames", string_of_int n) ] "serve.keepalive.idle_close"
      end;
      Closed
    | P_eof -> Closed
    | P_partial ->
      if n > 0 then
        Events.debug ~fields:[ ("frames", string_of_int n) ] "serve.keepalive.partial_preamble";
      Closed
    | P_frame first4 ->
      if first4 = req_magic then begin
        let ok =
          handle_binary ?io_timeout_s ?allow_crash_op ~queue_us ~admit_depth ~jobs fd first4
        in
        Obs.Counter.incr m_frames;
        let n = n + 1 in
        if not ok then Closed
        else if max_requests > 0 && n >= max_requests then begin
          Obs.Counter.incr m_recycles;
          Events.debug ~fields:[ ("frames", string_of_int n) ] "serve.conn_recycle";
          Closed
        end
        else if
          park
          && not
               (data_ready fd
               || (may_linger () && data_ready ~timeout_s:keepalive_linger_s fd))
        then Parked n
        else frame n ~queue_us:0.0 ~admit_depth:0
      end
      else if n = 0 then begin
        (* HTTP stays one-shot: Connection: close *)
        handle_http ?io_timeout_s fd first4;
        Closed
      end
      else begin
        Events.warn
          ~fields:[ ("frames", string_of_int n) ]
          "serve.protocol_error";
        Closed
      end
  in
  frame frames_done ~queue_us ~admit_depth

let handle_connection ?idle_timeout_s ?io_timeout_s ?allow_crash_op ?queue_us ?admit_depth
    ?max_requests ~jobs fd =
  Obs.Counter.incr m_connections;
  match
    serve_frames ?idle_timeout_s ?io_timeout_s ?allow_crash_op ?queue_us ?admit_depth
      ?max_requests ~park:false ~jobs fd
  with
  | Closed -> ()
  | Parked _ -> () (* unreachable: park is off *)

(* --- admission: bounded per-shard queues -------------------------------- *)

module Shard = struct
  type t = {
    id : int;
    mutex : Mutex.t;
    cond : Condition.t;
    items : (Unix.file_descr * float * int * int) Queue.t;
        (* (conn, enqueue instant us, queue depth seen at admission,
           frames already served on the conn — nonzero for a keep-alive
           connection re-admitted by the parker) *)
    cap : int;
    mutable draining : bool; (* no new pushes; pops run the queue dry then stop *)
    mutable killed : bool; (* pops stop immediately; leftovers are shed *)
    mutable current : Unix.file_descr option; (* connection the worker holds now *)
    depth : Obs.Gauge.t;
  }

  let make id cap =
    {
      id;
      mutex = Mutex.create ();
      cond = Condition.create ();
      items = Queue.create ();
      cap = max 1 cap;
      draining = false;
      killed = false;
      current = None;
      depth = Obs.Gauge.make (Printf.sprintf "serve.queue.depth.%d" id);
    }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let set_depth t = Obs.Gauge.set t.depth (float_of_int (Queue.length t.items))

  let try_push ?(frames = 0) t conn =
    locked t (fun () ->
        if t.draining || t.killed || Queue.length t.items >= t.cap then false
        else begin
          (* depth BEFORE this push: how much work was already ahead of
             the request when admission accepted it — the number a tail
             sample wants for "was the queue the problem?" *)
          Queue.add (conn, Obs.now_us (), Queue.length t.items, frames) t.items;
          set_depth t;
          Condition.signal t.cond;
          true
        end)

  let pop t =
    locked t (fun () ->
        let rec go () =
          if t.killed then None
          else if not (Queue.is_empty t.items) then begin
            let ((conn, _, _, _) as it) = Queue.take t.items in
            (* recorded under the same lock that [interrupt] takes, so a
               draining supervisor can always reach the in-flight fd *)
            t.current <- Some conn;
            set_depth t;
            Some it
          end
          else if t.draining then None
          else begin
            Condition.wait t.cond t.mutex;
            go ()
          end
        in
        go ())

  let drain t =
    locked t (fun () ->
        t.draining <- true;
        Condition.broadcast t.cond)

  let kill t =
    locked t (fun () ->
        t.killed <- true;
        t.draining <- true;
        Condition.broadcast t.cond)

  let is_killed t = locked t (fun () -> t.killed)

  (* The worker publishes "done with my connection" here BEFORE closing
     the fd; [interrupt] holds the same mutex across its shutdown call,
     so it can never race a close (no use-after-close, no fd reuse). *)
  let clear_current t = locked t (fun () -> t.current <- None)

  (* Force the worker's in-flight connection to fail fast: shutting the
     socket down makes its blocked read return EOF (and its writes
     EPIPE), so a drain is bounded by the budget, not by the peer's
     idle/io allowance. Returns true when there was something to cut. *)
  let interrupt t =
    locked t (fun () ->
        match t.current with
        | None -> false
        | Some fd ->
          (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
          true)

  let length t = locked t (fun () -> Queue.length t.items)

  let steal_all t =
    locked t (fun () ->
        let out = List.of_seq (Queue.to_seq t.items) in
        Queue.clear t.items;
        set_depth t;
        out)
end

(* --- parker: keep-alive connections between frames ----------------------- *)

(* A persistent connection with nothing to say must not pin a worker
   domain: after the last ready frame the worker hands the fd here. The
   parker selects over every parked fd plus a self-pipe (so a park
   lands in the very next select), re-admits a readable connection
   through the same bounded queues as a fresh accept, and closes one
   idle past the inter-frame budget. Ownership is strict: an fd is the
   worker's, the parker's, or a queue's — never two at once. *)
module Parker = struct
  type entry = { p_fd : Unix.file_descr; p_since_us : float; p_frames : int }

  type t = {
    mutex : Mutex.t;
    mutable entries : entry list;
    mutable stopped : bool;
    wake_r : Unix.file_descr;
    wake_w : Unix.file_descr;
  }

  let make () =
    let wake_r, wake_w = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock wake_r;
    Unix.set_nonblock wake_w;
    { mutex = Mutex.create (); entries = []; stopped = false; wake_r; wake_w }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let wake t = try ignore (Unix.write_substring t.wake_w "x" 0 1) with Unix.Unix_error _ -> ()

  let set_gauge n = Obs.Gauge.set m_parked (float_of_int n)

  let park t ~frames fd =
    if fd_int fd >= fd_setsize then begin
      (* select can't watch it; close instead of crashing the parker
         (the client treats the close as a recycle and reconnects) *)
      Events.warn ~fields:[ ("fd", string_of_int (fd_int fd)) ] "serve.park.fd_overflow";
      close_quiet fd
    end
    else begin
      let reject =
        locked t (fun () ->
            if t.stopped then true
            else begin
              t.entries <-
                { p_fd = fd; p_since_us = Obs.now_us (); p_frames = frames } :: t.entries;
              set_gauge (List.length t.entries);
              false
            end)
      in
      if reject then close_quiet fd else wake t
    end

  (* Drain the self-pipe (it only carries wake-ups, never data). *)
  let drain_pipe t =
    let junk = Bytes.create 64 in
    let rec go () =
      match Unix.read t.wake_r junk 0 (Bytes.length junk) with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()

  let loop t stop ~idle_timeout_s ~readmit =
    while not (Atomic.get stop) do
      (* steal the parked set: parks during the select go to t.entries
         and write the pipe, so the next iteration sees them *)
      let mine = locked t (fun () -> let e = t.entries in t.entries <- []; e) in
      let ready, keep =
        match Unix.select (t.wake_r :: List.map (fun e -> e.p_fd) mine) [] [] 0.1 with
        | readable, _, _ ->
          if List.memq t.wake_r readable then drain_pipe t;
          List.partition (fun e -> List.memq e.p_fd readable) mine
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], mine)
        | exception Unix.Unix_error _ ->
          (* a broken descriptor in the set: re-admit everything and let
             the per-connection reads surface the error individually *)
          (mine, [])
      in
      let now = Obs.now_us () in
      let expired e = now -. e.p_since_us > idle_timeout_s *. 1e6 in
      let dead, keep = List.partition expired keep in
      List.iter
        (fun e ->
          Obs.Counter.incr m_keepalive_idle;
          Events.debug
            ~fields:[ ("frames", string_of_int e.p_frames) ]
            "serve.keepalive.idle_close";
          close_quiet e.p_fd)
        dead;
      List.iter (fun e -> readmit ~frames:e.p_frames e.p_fd) ready;
      locked t (fun () ->
          t.entries <- keep @ t.entries;
          set_gauge (List.length t.entries))
    done;
    (* stop: close every parked connection — they are idle between
       frames, where either side may close cleanly *)
    let leftovers =
      locked t (fun () ->
          t.stopped <- true;
          let e = t.entries in
          t.entries <- [];
          set_gauge 0;
          e)
    in
    List.iter (fun e -> close_quiet e.p_fd) leftovers;
    close_quiet t.wake_r;
    close_quiet t.wake_w
end

(* --- shedding ----------------------------------------------------------- *)

let http_503 =
  let body = "overloaded\n" in
  Printf.sprintf
    "HTTP/1.0 503 Service Unavailable\r\nContent-Type: text/plain; charset=utf-8\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    (String.length body) body

(* Best-effort typed refusal, strictly non-blocking so the acceptor can
   never be stalled by the very overload it is shedding: peek at
   whatever the client has sent to pick the protocol (no bytes yet, or
   a CCQ1 prefix, means the binary reply), fire one write, close. *)
let shed_connection ?(queue_depth = 0) ~reason conn =
  Obs.Counter.incr m_shed;
  Events.warn ~fields:[ ("reason", reason) ] "serve.shed";
  if Obs.metrics_enabled () then
    (* a shed is always tail evidence, however fast the refusal: the
       record carries the depth that forced it and zeroed stages *)
    ignore
      (Slow.maybe_sample
         {
           Slow.sr_ts_us = Obs.now_us ();
           sr_id = 0L;
           sr_kind = "shed";
           sr_outcome = "shed";
           sr_total_us = 0.0;
           sr_queue_us = 0.0;
           sr_read_us = 0.0;
           sr_work_us = 0.0;
           sr_write_us = 0.0;
           sr_queue_depth = queue_depth;
           sr_gc_read = Runtime.delta_zero;
           sr_gc_work = Runtime.delta_zero;
           sr_gc_write = Runtime.delta_zero;
         });
  (try
     Unix.set_nonblock conn;
     let looks_http =
       let buf = Bytes.create 4 in
       match Unix.recv conn buf 0 4 [ Unix.MSG_PEEK ] with
       | 0 -> false
       | n ->
         let p = Bytes.sub_string buf 0 n in
         p <> String.sub req_magic 0 n
       | exception Unix.Unix_error _ -> false
     in
     let frame = if looks_http then http_503 else encode_response (Overloaded reason) in
     (* drain whatever request bytes already arrived: closing with
        unread input makes the kernel RST the connection, which would
        destroy the typed reply before the peer reads it *)
     let junk = Bytes.create 4096 in
     let rec drain budget =
       if budget > 0 then
         match Unix.read conn junk 0 (Bytes.length junk) with
         | 0 -> ()
         | n -> drain (budget - n)
         | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain budget
     in
     drain 65536;
     ignore (Unix.write_substring conn frame 0 (String.length frame));
     (try Unix.shutdown conn Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
     drain 65536
   with Unix.Unix_error _ -> ());
  try Unix.close conn with Unix.Unix_error _ -> ()

(* --- daemon ------------------------------------------------------------- *)

type config = {
  host : string;
  port : int;
  jobs : int;
  workers : int;
  acceptors : int;
  queue_cap : int;
  max_requests_per_conn : int;
  idle_timeout_s : float;
  io_timeout_s : float;
  drain_s : float;
  allow_crash_op : bool;
  slow_threshold_ms : float;
  slow_capacity : int;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7070;
    jobs = 1;
    workers = 2;
    acceptors = 1;
    queue_cap = 64;
    max_requests_per_conn = 0;
    idle_timeout_s = 10.0;
    io_timeout_s = 30.0;
    drain_s = 5.0;
    allow_crash_op = false;
    slow_threshold_ms = 100.0;
    slow_capacity = 64;
  }

let set_inflight delta =
  let v = Atomic.fetch_and_add inflight delta + delta in
  Obs.Gauge.set m_inflight (float_of_int v)

(* One worker's service loop; [Worker_crashed] (and anything else the
   per-connection guard does not absorb) escapes to the supervisor.
   A connection that finishes its visit with frames still possibly
   coming is handed to the parker instead of closed — [park] takes
   ownership of the fd. *)
let worker_loop cfg shard ~park =
  let rec next () =
    match Shard.pop shard with
    | None -> ()
    | Some (conn, enqueued_us, admit_depth, frames_done) ->
      let queue_us = Obs.now_us () -. enqueued_us in
      if Obs.metrics_enabled () then Obs.Histogram.observe m_queue_wait_us queue_us;
      set_inflight 1;
      if frames_done = 0 then Obs.Counter.incr m_connections;
      let disposition = ref Closed in
      Fun.protect
        ~finally:(fun () ->
          Shard.clear_current shard;
          (match !disposition with
          | Parked frames -> park ~frames conn
          | Closed -> ( try Unix.close conn with Unix.Unix_error _ -> ()));
          set_inflight (-1))
        (fun () ->
          try
            disposition :=
              serve_frames ~idle_timeout_s:cfg.idle_timeout_s ~io_timeout_s:cfg.io_timeout_s
                ~allow_crash_op:cfg.allow_crash_op ~queue_us ~admit_depth
                ~max_requests:cfg.max_requests_per_conn ~park:true
                ~may_linger:(fun () -> Shard.length shard = 0)
                ~frames_done ~jobs:cfg.jobs conn
          with
          | Worker_crashed -> raise Worker_crashed
          | Sys.Break -> raise Sys.Break
          | e -> Events.error ~fields:[ ("error", Printexc.to_string e) ] "serve.connection_error");
      next ()
  in
  next ()

(* Supervision: a worker whose loop dies is logged, counted and
   respawned in place — the domain (and the daemon) survive. Only a
   killed shard (shutdown) lets the domain return. *)
let supervised_worker cfg shard ~park =
  (* OCaml 5 GC alarms are domain-local: each worker domain installs its
     own end-of-major-cycle hook for the pause estimator *)
  Runtime.install_alarm ();
  let rec go () =
    match worker_loop cfg shard ~park with
    | () -> ()
    | exception e ->
      Obs.Counter.incr m_worker_restarts;
      Events.error
        ~fields:[ ("shard", string_of_int shard.Shard.id); ("error", Printexc.to_string e) ]
        "serve.worker.restart";
      if not (Shard.is_killed shard) then go ()
  in
  go ()

let install_stop_handlers stop =
  let set sg =
    try Some (sg, Sys.signal sg (Sys.Signal_handle (fun _ -> Atomic.set stop true)))
    with Invalid_argument _ | Sys_error _ -> None
  in
  List.filter_map set [ Sys.sigterm; Sys.sigint ]

let restore_handlers saved =
  List.iter
    (fun (sg, old) -> try Sys.set_signal sg old with Invalid_argument _ | Sys_error _ -> ())
    saved

let run ?(on_ready = fun _ -> ()) cfg =
  let workers = max 1 cfg.workers in
  let acceptors = max 1 cfg.acceptors in
  (* A daemon serving many small requests allocates far faster than it
     retains (codec scratch dies young): the stock GC settings promote
     enough of that churn to drive major cycles — and their pauses —
     straight into the latency tail. Trade heap headroom for pause
     time. The space overhead applies immediately; the nursery size is
     only a request on OCaml 5.1 (minor heaps are sized at runtime
     startup), which is why the CLI re-execs `ccomp serve` with a tuned
     OCAMLRUNPARAM — library embedders get whatever their runtime
     honours. *)
  Gc.set
    { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024; space_overhead = 300 };
  (* a peer closing mid-write must surface as EPIPE, not kill the daemon *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ | Sys_error _ -> ());
  let addr port = Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, port) in
  let mk_socket () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    fd
  in
  let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> () in
  (* listeners.(i) is acceptor i's socket. With several acceptors each
     gets its own SO_REUSEPORT-bound socket so the kernel spreads the
     accept load; where the platform refuses, all acceptors fall back
     to sharing one non-blocking listener ([shared] marks the array as
     N views of a single fd). *)
  let listeners, shared =
    if acceptors = 1 then begin
      let fd = mk_socket () in
      Unix.bind fd (addr cfg.port);
      Unix.listen fd 128;
      ([| fd |], false)
    end
    else begin
      let opened = ref [] in
      let bind_one port =
        let fd = mk_socket () in
        opened := fd :: !opened;
        Unix.setsockopt fd Unix.SO_REUSEPORT true;
        Unix.bind fd (addr port);
        Unix.listen fd 128;
        fd
      in
      match
        let first = bind_one cfg.port in
        (* cfg.port may be 0 (ephemeral): siblings must bind the
           concrete port the kernel picked, not another random one *)
        let port =
          match Unix.getsockname first with Unix.ADDR_INET (_, p) -> p | _ -> cfg.port
        in
        Array.append [| first |] (Array.init (acceptors - 1) (fun _ -> bind_one port))
      with
      | arr -> (arr, false)
      | exception Unix.Unix_error (e, _, _) ->
        List.iter close_quiet !opened;
        Events.warn
          ~fields:[ ("error", Unix.error_message e) ]
          "serve.reuseport_unavailable";
        let fd = mk_socket () in
        Unix.bind fd (addr cfg.port);
        Unix.listen fd 128;
        Unix.set_nonblock fd;
        (Array.make acceptors fd, true)
    end
  in
  let unique_listeners = if shared then [| listeners.(0) |] else listeners in
  let bound_port =
    match Unix.getsockname listeners.(0) with Unix.ADDR_INET (_, p) -> p | _ -> cfg.port
  in
  started_at_us := Obs.now_us ();
  refresh_uptime ();
  Slow.configure ~capacity:cfg.slow_capacity ~threshold_us:(cfg.slow_threshold_ms *. 1e3) ();
  Runtime.install_alarm ();
  Openmetrics.set_info "serve"
    [
      ("version", version);
      ("workers", string_of_int workers);
      ("acceptors", string_of_int acceptors);
      ("jobs", string_of_int cfg.jobs);
      ("queue_cap", string_of_int cfg.queue_cap);
      ("max_requests_per_conn", string_of_int cfg.max_requests_per_conn);
      ("host", cfg.host);
      ("port", string_of_int bound_port);
    ];
  Events.info
    ~fields:
      [
        ("host", cfg.host);
        ("port", string_of_int bound_port);
        ("jobs", string_of_int cfg.jobs);
        ("workers", string_of_int workers);
        ("acceptors", string_of_int acceptors);
        ("queue_cap", string_of_int cfg.queue_cap);
        ("max_requests_per_conn", string_of_int cfg.max_requests_per_conn);
      ]
    "serve.start";
  let stop = Atomic.make false in
  let saved = install_stop_handlers stop in
  let shards = Array.init workers (fun i -> Shard.make i cfg.queue_cap) in
  (* Admission never blocks — push to a shard (round-robin with
     overflow to siblings) or shed. Shared by acceptors and the
     parker's re-admit path, so the counter is atomic. *)
  let rr = Atomic.make 0 in
  let push_rr ~frames conn =
    let n = Array.length shards in
    let start = Atomic.fetch_and_add rr 1 land max_int mod n in
    let rec try_shard k =
      k < n && (Shard.try_push ~frames shards.((start + k) mod n) conn || try_shard (k + 1))
    in
    if try_shard 0 then None else Some (Shard.length shards.(start))
  in
  let admit ?(frames = 0) conn =
    match push_rr ~frames conn with
    | None -> ()
    | Some depth -> shed_connection ~queue_depth:depth ~reason:"job queue full" conn
  in
  let parker = Parker.make () in
  let parker_domain =
    Domain.spawn (fun () ->
        Parker.loop parker stop ~idle_timeout_s:cfg.idle_timeout_s
          ~readmit:(fun ~frames conn -> admit ~frames conn))
  in
  let park ~frames conn = Parker.park parker ~frames conn in
  let domains =
    Array.map (fun sh -> Domain.spawn (fun () -> supervised_worker cfg sh ~park)) shards
  in
  (* Accept loop: select with a short timeout keeps the loop responsive
     to the stop flag even when the signal lands on another domain's
     syscall. On the shared-listener fallback every acceptor selects on
     the same fd; accept is non-blocking there, so losing the race is
     just EAGAIN. *)
  let acceptor_loop lfd =
    try
      while not (Atomic.get stop) do
        match Unix.select [ lfd ] [] [] 0.2 with
        | [], _, _ -> ()
        | _ :: _, _, _ -> (
          match Unix.accept ~cloexec:true lfd with
          | conn, _ ->
            (* keep-alive replies must not wait out a delayed ACK
               before the next frame's response can leave the host *)
            (try Unix.setsockopt conn Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
            admit conn
          | exception
              Unix.Unix_error
                ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            ()
          | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> Atomic.set stop true)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done
    with Sys.Break -> Atomic.set stop true
  in
  let acceptor_domains =
    Array.init (acceptors - 1) (fun i -> Domain.spawn (fun () -> acceptor_loop listeners.(i + 1)))
  in
  on_ready bound_port;
  let finish () =
    restore_handlers saved;
    Array.iter close_quiet unique_listeners
  in
  Fun.protect ~finally:finish @@ fun () ->
  acceptor_loop listeners.(0);
  (* Drain: stop accepting, close parked keep-alive connections (idle
     between frames is a clean close point), give queued jobs the
     budget, shed the rest with typed replies, join the workers, leave
     evidence. *)
  let t0 = Obs.now_us () in
  Events.info ~fields:[ ("budget_s", Printf.sprintf "%g" cfg.drain_s) ] "serve.drain.begin";
  Array.iter Domain.join acceptor_domains;
  Array.iter close_quiet unique_listeners;
  (* the parker sees [stop] within its select tick, closes every parked
     fd and marks itself stopped, so workers parking after this point
     get a close instead of a leak *)
  Domain.join parker_domain;
  Array.iter Shard.drain shards;
  let deadline = t0 +. (cfg.drain_s *. 1e6) in
  let idle () =
    Array.for_all (fun sh -> Shard.length sh = 0) shards && Atomic.get inflight = 0
  in
  while Obs.now_us () < deadline && not (idle ()) do
    Unix.sleepf 0.02
  done;
  Array.iter Shard.kill shards;
  let leftovers = Array.to_list shards |> List.concat_map Shard.steal_all in
  List.iter
    (fun (conn, _, depth, _) -> shed_connection ~queue_depth:depth ~reason:"draining" conn)
    leftovers;
  (* budget spent: cut any connection still in flight so the join below
     is bounded by the budget, not by a slow peer's idle/io allowance *)
  let interrupted =
    Array.fold_left (fun n sh -> if Shard.interrupt sh then n + 1 else n) 0 shards
  in
  if interrupted > 0 then
    Events.warn ~fields:[ ("connections", string_of_int interrupted) ] "serve.drain.interrupt";
  Array.iter Domain.join domains;
  Events.info
    ~fields:
      [
        ("shed", string_of_int (List.length leftovers));
        ("interrupted", string_of_int interrupted);
        ("elapsed_s", Printf.sprintf "%.3f" ((Obs.now_us () -. t0) /. 1e6));
      ]
    "serve.drain.end";
  Events.info "serve.stop"

(* --- clients ------------------------------------------------------------- *)

let describe_timeout ~host ~port timeout_s what =
  Printf.sprintf "%s:%d: timed out%s during %s (daemon dead or overloaded?)" host port
    (match timeout_s with Some t -> Printf.sprintf " after %gs" t | None -> "")
    what

(* Resolve and connect, trying EVERY getaddrinfo candidate — the
   resolver may return IPv6 first while the daemon listens on IPv4 —
   and reporting the LAST error when none connects. Returns the
   connected fd and the connect cost in microseconds (resolution
   included: that is the price a reconnecting client actually pays). *)
let connect_fd ?timeout_s ~host ~port () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ | Sys_error _ -> ());
  let t0 = Obs.now_us () in
  match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "cannot resolve %s" host)
  | candidates ->
    let connect_one ai =
      let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype ai.Unix.ai_protocol in
      (* request-response over a persistent connection is exactly the
         write-read alternation Nagle penalises: without TCP_NODELAY
         every frame after the first can stall behind a delayed ACK *)
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      match
        match timeout_s with
        | None -> Unix.connect fd ai.Unix.ai_addr
        | Some t ->
          (* non-blocking connect + bounded wait so a dead host cannot
             hold the client in connect(2) past the timeout *)
          Unix.set_nonblock fd;
          (match Unix.connect fd ai.Unix.ai_addr with
          | () -> ()
          | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
            let deadline = Obs.now_us () +. (t *. 1e6) in
            if fd_int fd >= fd_setsize then begin
              (* select cannot watch this fd (FD_SETSIZE): poll
                 connect(2) itself until it reports a verdict *)
              let rec poll () =
                match Unix.connect fd ai.Unix.ai_addr with
                | () -> ()
                | exception Unix.Unix_error (Unix.EISCONN, _, _) -> ()
                | exception
                    Unix.Unix_error
                      ( (Unix.EALREADY | Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EINTR),
                        _,
                        _ ) ->
                  if Obs.now_us () >= deadline then
                    raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
                  else begin
                    Unix.sleepf 0.01;
                    poll ()
                  end
              in
              poll ()
            end
            else begin
              (* EINTR (or a spurious wake) retries with the REMAINING
                 budget — a signal mid-wait must not misreport as
                 ETIMEDOUT, and repeated signals must not extend it *)
              let rec wait () =
                let left = (deadline -. Obs.now_us ()) /. 1e6 in
                if left <= 0.0 then raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", ""))
                else
                  match Unix.select [] [ fd ] [] left with
                  | _, [], _ -> wait ()
                  | _ -> (
                    match Unix.getsockopt_error fd with
                    | None -> ()
                    | Some e -> raise (Unix.Unix_error (e, "connect", "")))
                  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
              in
              wait ()
            end);
          Unix.clear_nonblock fd;
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO t;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO t
           with Unix.Unix_error _ -> ())
      with
      | () -> Ok fd
      | exception Unix.Unix_error (e, fn, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (e, fn)
    in
    let rec try_all last = function
      | [] -> (
        let e, fn = last in
        match e with
        | Unix.ETIMEDOUT | Unix.EAGAIN | Unix.EWOULDBLOCK ->
          Error (describe_timeout ~host ~port timeout_s fn)
        | _ -> Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e)))
      | ai :: rest -> (
        match connect_one ai with
        | Ok fd -> Ok (fd, Obs.now_us () -. t0)
        | Error e -> try_all e rest)
    in
    try_all (Unix.ECONNREFUSED, "connect") candidates

let with_connection ?timeout_s ~host ~port f =
  match connect_fd ?timeout_s ~host ~port () with
  | Error msg -> Error msg
  | Ok (fd, _connect_us) -> (
    match
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f fd)
    with
    | v -> v
    | exception Unix.Unix_error ((Unix.ETIMEDOUT | Unix.EAGAIN | Unix.EWOULDBLOCK), fn, _) ->
      Error (describe_timeout ~host ~port timeout_s fn)
    | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s:%d: %s" host port (Unix.error_message e)))

let read_until_eof fd =
  let b = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents b
    | n ->
      Buffer.add_subbytes b chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

(* --- persistent client connections (CCQ1v4) ------------------------------ *)

module Conn = struct
  type t = {
    fd : Unix.file_descr;
    timeout_s : float option;
    connect_us : float;
    mutable served : int;
    mutable alive : bool;
  }

  type error =
    | Stale of string
        (** the server closed the connection between frames (idle
            timeout or [--max-requests-per-conn] recycle): open a fresh
            connection and resend — nothing was half-done *)
    | Transport of string  (** a real failure; blind resend may not be safe *)

  let error_message = function Stale m | Transport m -> m

  let connect ?timeout_s ~host ~port () =
    match connect_fd ?timeout_s ~host ~port () with
    | Error msg -> Error msg
    | Ok (fd, connect_us) -> Ok { fd; timeout_s; connect_us; served = 0; alive = true }

  let connect_us t = t.connect_us
  let served t = t.served
  let is_alive t = t.alive

  let close t =
    if t.alive then begin
      t.alive <- false;
      try Unix.close t.fd with Unix.Unix_error _ -> ()
    end

  let deadline t = deadline_after_s t.timeout_s

  (* Replies are read by frame, not to EOF — the connection stays open
     for the next request. EOF before the FIRST header byte on a reused
     connection is the recycle race: the server closed between our
     frames, and the request was never read — [Stale], safe to resend
     on a fresh connection. EOF anywhere later is mid-reply truncation. *)
  let read_reply t =
    let deadline_us = deadline t in
    let first =
      let buf = Bytes.create 1 in
      let rec go () =
        if not (arm ~send:false t.fd deadline_us) then Error (Timed_out "response header")
        else
          match Unix.read t.fd buf 0 1 with
          | 0 -> Ok None
          | _ -> Ok (Some (Bytes.get buf 0))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            Error (Timed_out "response header")
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> Ok None
      in
      go ()
    in
    match first with
    | Error pe -> Error (Transport (protocol_error_to_string pe))
    | Ok None ->
      if t.served > 0 then Error (Stale "server closed between frames")
      else Error (Transport "peer closed before any reply byte")
    | Ok (Some c) -> (
      match read_exact ?deadline_us ~what:"response header" t.fd (resp_header_len - 1) with
      | Error pe -> Error (Transport (protocol_error_to_string pe))
      | Ok rest ->
        let header = String.make 1 c ^ rest in
        if String.sub header 0 4 <> resp_magic then Error (Transport "bad response magic")
        else begin
          let timing_len = Char.code header.[5] in
          let len = read_be32 header 6 in
          match read_exact ?deadline_us ~what:"response body" t.fd (timing_len + len) with
          | Error pe -> Error (Transport (protocol_error_to_string pe))
          | Ok body -> (
            match decode_response (header ^ body) with
            | Ok v -> Ok v
            | Error msg -> Error (Transport msg))
        end)

  let submit_timed ?(deadline_ms = 0) ?(request_id = 0L) t req =
    if not t.alive then Error (Transport "connection closed")
    else begin
      let frame = encode_request ~deadline_ms ~request_id req in
      let reused = t.served > 0 in
      match write_all ?deadline_us:(deadline t) ~what:"request write" t.fd frame with
      | Error (Truncated msg) when reused ->
        t.alive <- false;
        Error (Stale msg)
      | Error pe ->
        t.alive <- false;
        Error (Transport (protocol_error_to_string pe))
      | Ok () -> (
        match read_reply t with
        | Ok v ->
          t.served <- t.served + 1;
          Ok v
        | Error e ->
          t.alive <- false;
          Error e)
    end

  let submit ?deadline_ms t req = Result.map fst (submit_timed ?deadline_ms t req)
end

let submit_timed ?timeout_s ?(deadline_ms = 0) ?(request_id = 0L) ~host ~port req =
  match Conn.connect ?timeout_s ~host ~port () with
  | Error msg -> Error msg
  | Ok c ->
    Fun.protect
      ~finally:(fun () -> Conn.close c)
      (fun () ->
        match Conn.submit_timed ~deadline_ms ~request_id c req with
        | Ok v -> Ok v
        | Error e -> Error (Conn.error_message e))

let submit ?timeout_s ?deadline_ms ~host ~port req =
  Result.map fst (submit_timed ?timeout_s ?deadline_ms ~host ~port req)

(* The pre-v4 one-shot wire shape: write one frame, shut down the send
   side, read the reply to EOF. Kept as the compatibility probe — the
   gates assert a v4 daemon answers this client byte-for-byte. *)
let submit_timed_legacy ?timeout_s ?(deadline_ms = 0) ?(request_id = 0L) ~host ~port req =
  with_connection ?timeout_s ~host ~port (fun fd ->
      let frame = encode_request ~deadline_ms ~request_id req in
      match write_all ~what:"request write" fd frame with
      | Error pe -> Error (protocol_error_to_string pe)
      | Ok () ->
        Unix.shutdown fd Unix.SHUTDOWN_SEND;
        decode_response (read_until_eof fd))

let submit_legacy ?timeout_s ?deadline_ms ~host ~port req =
  Result.map fst (submit_timed_legacy ?timeout_s ?deadline_ms ~host ~port req)

(* Jittered exponential backoff: attempt [k] sleeps in
   [0.5, 1.5) * base * 2^k — seeded, so a retry schedule replays. *)
let backoff_sleep g ~base attempt =
  let cap = base *. (2.0 ** float_of_int attempt) in
  Unix.sleepf (cap *. (0.5 +. Prng.float g))

let request ?(timeout_s = 30.0) ?(deadline_ms = 0) ?(retries = 0) ?(backoff_s = 0.05) ?(seed = 1)
    ~host ~port req =
  let g = Prng.create (Int64.of_int seed) in
  let rec attempt k =
    let retryable, result =
      match submit ~timeout_s ~deadline_ms ~host ~port req with
      | Ok (Payload p) -> (false, Ok p)
      | Ok (Failed msg) -> (false, Error msg)
      | Ok (Overloaded msg) -> (true, Error ("overloaded: " ^ msg))
      | Ok (Deadline_expired msg) -> (false, Error ("deadline expired: " ^ msg))
      | Error msg -> (true, Error msg)
    in
    if (not retryable) || k >= retries then result
    else begin
      backoff_sleep g ~base:backoff_s k;
      attempt (k + 1)
    end
  in
  attempt 0

let http_get ?timeout_s ~host ~port target =
  with_connection ?timeout_s ~host ~port (fun fd ->
      let q = Printf.sprintf "GET %s HTTP/1.0\r\nHost: %s\r\n\r\n" target host in
      match write_all ~what:"request write" fd q with
      | Error pe -> Error (protocol_error_to_string pe)
      | Ok () -> (
        let raw = read_until_eof fd in
        match String.index_opt raw ' ' with
        | None -> Error "malformed HTTP response"
        | Some i -> (
          let rest = String.sub raw (i + 1) (String.length raw - i - 1) in
          let status =
            match String.split_on_char ' ' rest with
            | code :: _ -> int_of_string_opt code
            | [] -> None
          in
          match status with
          | None -> Error "malformed HTTP status"
          | Some status ->
            let body =
              let rec find j =
                if j + 4 > String.length raw then String.length raw
                else if String.sub raw j 4 = "\r\n\r\n" then j + 4
                else find (j + 1)
              in
              let start = find 0 in
              String.sub raw start (String.length raw - start)
            in
            Ok (status, body))))
