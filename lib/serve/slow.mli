(** Tail-sampled slow-request capture: a bounded, Domain-safe ring of
    full per-request records for the requests worth explaining.

    The latency histograms say which stage owns p99 in aggregate; this
    ring says what specific tail requests experienced — stage split,
    per-stage GC deltas on the serving domain, and the shard queue depth
    seen at admission. A request is sampled when its total latency
    reaches the configured threshold, and {e always} when it was shed,
    refused as overloaded, or expired its deadline, however fast the
    refusal was.

    The ring is bounded (overflow keeps the most recent records) so
    sampling can stay on for the life of the daemon. The daemon serves
    it as JSON lines on [GET /slow]; [ccomp stats --slow] fetches and
    renders the same records; [ccomp top] shows the major-GC-overlap
    correlation. Sampling sites run only when {!Obs.metrics_enabled}. *)

type record = {
  sr_ts_us : float;  (** completion instant *)
  sr_id : int64;  (** wire request id; [0L] = untraced request *)
  sr_kind : string;  (** compress | decompress | ping | protocol_error | shed | ... *)
  sr_outcome : string;  (** ok | failed | overloaded | deadline_expired | shed *)
  sr_total_us : float;  (** queue + read + work + write *)
  sr_queue_us : float;
  sr_read_us : float;
  sr_work_us : float;
  sr_write_us : float;
  sr_queue_depth : int;  (** shard queue length seen at admission *)
  sr_gc_read : Ccomp_obs.Runtime.delta;  (** serving domain's GC activity per stage *)
  sr_gc_work : Ccomp_obs.Runtime.delta;
  sr_gc_write : Ccomp_obs.Runtime.delta;
}

val configure : ?capacity:int -> ?threshold_us:float -> unit -> unit
(** Set ring capacity (default 64, minimum 1; resizing drops retained
    records) and/or sampling threshold (default 100 ms, clamped at 0 —
    a zero threshold samples every request). *)

val capacity : unit -> int

val threshold_us : unit -> float

val maybe_sample : record -> bool
(** Record the request if it qualifies (total at/above threshold, or a
    forced outcome: [overloaded] / [deadline_expired] / [shed]).
    Returns whether it was sampled. Bumps [serve.slow.sampled_total]
    (and [serve.slow.forced_total] for forced outcomes). *)

val note : record -> unit
(** Unconditionally push a record (tests and replay tooling). *)

val tail : int -> record list
(** The most recent [min n len] records, oldest first. *)

val clear : unit -> unit

val to_json_line : record -> string
(** One-line JSON object; GC deltas nest under ["gc"."read"/"work"/
    "write"] as [{minor, major, alloc_w}]. No trailing newline. *)

val of_json_line : string -> (record, string) result
(** Parse a {!to_json_line} line (client side of [/slow]). Stage
    allocation comes back in [d_minor_words]; the minor/major split is
    not round-tripped. *)

val tail_json : int -> string
(** {!tail} as newline-terminated JSON lines — the [/slow] body. *)

val overlapped_major : record -> bool
(** Did any stage of this request see a major collection finish? *)

val correlation : record list -> int * int
(** [(sampled, of which overlapped a major collection)]. *)

val correlation_line : record list -> string option
(** Human sentence for the correlation, [None] when no samples. *)

val render_table : record list -> string
(** Operator-facing table (oldest first) plus the correlation line. *)
