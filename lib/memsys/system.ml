module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events

(* Observability for the refill engine — the paper's Fig. 1 cost model
   made measurable: per-miss penalty and decompression-overhead
   histograms (in model cycles), refill/CLB/decode-cache counters and
   the fault-response tallies. Guarded by [Obs.metrics_enabled]; the
   simulation itself is identical with metrics on or off. *)
let m_fetches = Obs.Counter.make "memsys.fetches"

let m_refills = Obs.Counter.make "memsys.refills"

let m_clb_misses = Obs.Counter.make "memsys.clb_misses"

let m_miss_penalty = Obs.Histogram.make "memsys.miss_penalty_cycles"

let m_decode_overhead = Obs.Histogram.make "memsys.decode_overhead_cycles"

let m_dc_hits = Obs.Counter.make "memsys.decode_cache.hits"

let m_dc_misses = Obs.Counter.make "memsys.decode_cache.misses"

let m_faults = Obs.Counter.make "memsys.faults.injected"

let m_fault_retries = Obs.Counter.make "memsys.faults.retries"

let m_fault_traps = Obs.Counter.make "memsys.faults.traps"

let m_fault_stale = Obs.Counter.make "memsys.faults.stale_lines"

let m_fault_undetected = Obs.Counter.make "memsys.faults.undetected"

type decompressor = { name : string; startup_cycles : int; cycles_per_byte : float }

let samc_decompressor = { name = "samc"; startup_cycles = 8; cycles_per_byte = 2.0 }

let sadc_decompressor = { name = "sadc"; startup_cycles = 4; cycles_per_byte = 0.5 }

let huffman_decompressor = { name = "huffman"; startup_cycles = 2; cycles_per_byte = 1.0 }

type fault_response = Retry of int | Trap | Stale

type fault_config = {
  fault_rate : float;
  response : fault_response;
  flip_back : float;
  trap_cycles : int;
  detection : float;
  fault_seed : int;
}

let default_fault_config =
  {
    fault_rate = 0.0;
    response = Retry 3;
    flip_back = 0.5;
    trap_cycles = 200;
    detection = 1.0;
    fault_seed = 1;
  }

type config = {
  cache : Cache.config;
  clb_entries : int;
  memory_latency : int;
  bytes_per_cycle : float;
  decompressor : decompressor option;
  fault : fault_config option;
  decode_cache_entries : int;
}

let default_config ?(cache_bytes = 8192) ?decompressor ?fault ?(decode_cache_entries = 0) () =
  {
    cache = { Cache.size_bytes = cache_bytes; block_size = 32; associativity = 2 };
    clb_entries = 16;
    memory_latency = 20;
    bytes_per_cycle = 4.0;
    decompressor;
    fault;
    decode_cache_entries;
  }

type result = {
  fetches : int;
  hits : int;
  misses : int;
  clb_misses : int;
  total_cycles : int;
  cpi : float;
  hit_ratio : float;
  avg_miss_penalty : float;
  faults_injected : int;
  fault_retries : int;
  fault_traps : int;
  stale_lines : int;
  undetected_faults : int;
  decode_cache_hits : int;
  decode_cache_misses : int;
}

let run config ?lat ~trace () =
  Obs.with_span ~cat:"memsys" "memsys.run" @@ fun () ->
  let instrument = Obs.metrics_enabled () in
  let cache = Cache.create config.cache in
  let clb = if config.clb_entries > 0 then Some (Clb.create ~entries:config.clb_entries) else None in
  (match (config.decompressor, lat) with
  | Some _, None -> invalid_arg "System.run: compressed system needs a LAT"
  | Some _, Some _ | None, _ -> ());
  (* Decoded-block cache in the refill engine: a small LRU of recently
     decompressed lines, so a miss whose block was decoded moments ago is
     refilled at uncompressed-memory cost (no LAT lookup, no decode). *)
  let decode_cache =
    if config.decode_cache_entries > 0 && config.decompressor <> None then
      Some (Lru.create ~capacity:config.decode_cache_entries)
    else None
  in
  let cycles = ref 0 in
  let penalty_cycles = ref 0 in
  let clb_misses = ref 0 in
  let decode_hits = ref 0 in
  let decode_misses = ref 0 in
  let faults_injected = ref 0 in
  let fault_retries = ref 0 in
  let fault_traps = ref 0 in
  let stale_lines = ref 0 in
  let undetected_faults = ref 0 in
  let rng =
    match config.fault with
    | Some f when f.fault_rate > 0.0 -> Some (Ccomp_util.Prng.create (Int64.of_int f.fault_seed))
    | _ -> None
  in
  (* Extra cycles the refill engine spends when this line's decode comes
     back faulty (bad per-block CRC or a decoder error). A detected fault
     is handled per the configured response: re-read and re-decode the
     line up to N times (transient "flip-back" faults may clear), fall
     through to a software trap, or serve the stale previous line from
     the victim buffer at no extra cost but with degraded correctness. *)
  let fault_cost f ~refill =
    incr faults_injected;
    if Ccomp_util.Prng.float (Option.get rng) >= f.detection then begin
      (* integrity checking off or tag collision: corrupt line enters the
         cache silently — the outcome the per-block CRCs exist to prevent *)
      incr undetected_faults;
      Events.error "memsys.fault.undetected";
      0
    end
    else
      match f.response with
      | Trap ->
        incr fault_traps;
        Events.warn ~fields:[ ("response", "trap") ] "memsys.fault";
        f.trap_cycles
      | Stale ->
        incr stale_lines;
        Events.warn ~fields:[ ("response", "stale") ] "memsys.fault";
        0
      | Retry budget ->
        let rec go tries acc =
          if tries >= budget then begin
            (* retries exhausted: escalate to the trap handler *)
            incr fault_traps;
            Events.warn
              ~fields:[ ("response", "retry"); ("outcome", "trap"); ("tries", string_of_int tries) ]
              "memsys.fault";
            acc + f.trap_cycles
          end
          else begin
            incr fault_retries;
            if Ccomp_util.Prng.float (Option.get rng) < f.flip_back then begin
              Events.warn
                ~fields:
                  [ ("response", "retry"); ("outcome", "recovered"); ("tries", string_of_int (tries + 1)) ]
                "memsys.fault";
              acc + refill
            end
            else go (tries + 1) (acc + refill)
          end
        in
        go 0 0
  in
  let transfer bytes = int_of_float (ceil (float_of_int bytes /. config.bytes_per_cycle)) in
  Array.iter
    (fun addr ->
      if Cache.access cache addr then incr cycles
      else begin
        let block = addr / config.cache.Cache.block_size in
        let served_decoded = ref false in
        let penalty =
          match config.decompressor with
          | None ->
            (* ordinary refill: latency + line transfer *)
            config.memory_latency + transfer config.cache.Cache.block_size
          | Some d ->
            let lat = Option.get lat in
            if block >= Lat.entries lat then
              invalid_arg "System.run: trace address beyond the LAT";
            let decode_cached =
              match decode_cache with
              | Some dc ->
                let hit = Lru.access dc block in
                if hit then incr decode_hits else incr decode_misses;
                hit
              | None -> false
            in
            if decode_cached then begin
              (* served from the refill engine's decoded-line store:
                 an ordinary uncompressed refill, no LAT or decode *)
              served_decoded := true;
              config.memory_latency + transfer config.cache.Cache.block_size
            end
            else begin
              let compressed = Lat.length lat block in
              (* LAT lookup: hidden by the CLB when it hits, otherwise one
                 extra memory round-trip to read the table group. *)
              let lat_cost =
                match clb with
                | Some c -> if Clb.access c block then 0 else begin incr clb_misses; config.memory_latency end
                | None -> begin incr clb_misses; config.memory_latency end
              in
              let decompress =
                d.startup_cycles
                + int_of_float
                    (ceil (float_of_int config.cache.Cache.block_size *. d.cycles_per_byte))
              in
              lat_cost + config.memory_latency + transfer compressed + decompress
            end
        in
        (* The decompression overhead this miss paid on top of what an
           uncompressed refill of the same line would cost — Fig. 1's
           per-miss price of running code compressed. *)
        if instrument && config.decompressor <> None && not !served_decoded then
          Obs.Histogram.observe m_decode_overhead
            (float_of_int
               (penalty - (config.memory_latency + transfer config.cache.Cache.block_size)));
        let penalty =
          (* decode-cached refills never run the decompressor, so they
             cannot take a decode fault *)
          match (config.fault, rng, config.decompressor) with
          | Some f, Some g, Some _
            when (not !served_decoded) && Ccomp_util.Prng.float g < f.fault_rate ->
            penalty + fault_cost f ~refill:penalty
          | _ -> penalty
        in
        if instrument then Obs.Histogram.observe m_miss_penalty (float_of_int penalty);
        penalty_cycles := !penalty_cycles + penalty;
        cycles := !cycles + 1 + penalty
      end)
    trace;
  let fetches = Cache.accesses cache in
  let misses = Cache.misses cache in
  if instrument then begin
    Obs.Counter.add m_fetches fetches;
    Obs.Counter.add m_refills misses;
    Obs.Counter.add m_clb_misses !clb_misses;
    Obs.Counter.add m_dc_hits !decode_hits;
    Obs.Counter.add m_dc_misses !decode_misses;
    Obs.Counter.add m_faults !faults_injected;
    Obs.Counter.add m_fault_retries !fault_retries;
    Obs.Counter.add m_fault_traps !fault_traps;
    Obs.Counter.add m_fault_stale !stale_lines;
    Obs.Counter.add m_fault_undetected !undetected_faults;
    let h = !decode_hits and m = !decode_misses in
    if h + m > 0 then
      Obs.Gauge.set
        (Obs.Gauge.make "memsys.decode_cache.hit_ratio")
        (float_of_int h /. float_of_int (h + m))
  end;
  {
    fetches;
    hits = Cache.hits cache;
    misses;
    clb_misses = !clb_misses;
    total_cycles = !cycles;
    cpi = (if fetches = 0 then 0.0 else float_of_int !cycles /. float_of_int fetches);
    hit_ratio = Cache.hit_ratio cache;
    avg_miss_penalty =
      (if misses = 0 then 0.0 else float_of_int !penalty_cycles /. float_of_int misses);
    faults_injected = !faults_injected;
    fault_retries = !fault_retries;
    fault_traps = !fault_traps;
    stale_lines = !stale_lines;
    undetected_faults = !undetected_faults;
    decode_cache_hits = !decode_hits;
    decode_cache_misses = !decode_misses;
  }

let slowdown ~compressed ~uncompressed = compressed.cpi /. uncompressed.cpi
