(** Cycle-approximate model of the compressed-code memory system (Fig. 1):
    CPU → I-cache → (CLB + LAT) → refill engine with decompressor → main
    memory. Drives an instruction-fetch address trace through the cache
    and charges miss penalties that depend on the compressed line size and
    the decompressor's speed. Experiment E4 uses this to reproduce the
    §1 claim that the performance loss tracks the I-cache hit ratio. *)

type decompressor = {
  name : string;
  startup_cycles : int;  (** per-line pipeline fill before bytes emerge *)
  cycles_per_byte : float;  (** per {e decompressed} output byte *)
}

val samc_decompressor : decompressor
(** The §3 engine decoding 4 bits per cycle (Fig. 5): 2 cycles per output
    byte. *)

val sadc_decompressor : decompressor
(** The §4 dictionary engine emitting one instruction per table access
    plus Huffman front-end: ~0.5 cycles per output byte. *)

val huffman_decompressor : decompressor
(** A byte-serial Huffman decoder: 1 cycle per output byte. *)

(** How the refill engine responds to a line whose decode comes back
    faulty (per-block CRC mismatch or decoder error). *)
type fault_response =
  | Retry of int
      (** re-read and re-decode the line up to N times (each retry re-pays
          the full refill penalty); exhausted retries escalate to a trap *)
  | Trap  (** raise to a software handler at a fixed cycle cost *)
  | Stale  (** serve the stale previous line: free, but degraded *)

type fault_config = {
  fault_rate : float;  (** probability a refill's decode is faulty *)
  response : fault_response;
  flip_back : float;
      (** probability that one retry of a transient fault succeeds *)
  trap_cycles : int;  (** cost of the software trap handler *)
  detection : float;
      (** probability a fault is detected (1.0 with per-block CRCs; lower
          models disabled or weaker integrity checking) *)
  fault_seed : int;  (** PRNG seed — runs are deterministic *)
}

val default_fault_config : fault_config
(** rate 0, [Retry 3], flip-back 0.5, 200-cycle trap, detection 1.0. *)

type config = {
  cache : Cache.config;
  clb_entries : int;  (** 0 disables the CLB (every refill pays a LAT access) *)
  memory_latency : int;  (** cycles to the first word of main memory *)
  bytes_per_cycle : float;  (** main-memory transfer bandwidth *)
  decompressor : decompressor option;  (** [None] = uncompressed system *)
  fault : fault_config option;  (** [None] = fault-free memory *)
  decode_cache_entries : int;
      (** capacity of the refill engine's decoded-block LRU: a miss to a
          block decoded recently skips the LAT lookup and re-decompression
          and refills at uncompressed cost. 0 disables it. *)
}

val default_config :
  ?cache_bytes:int -> ?decompressor:decompressor -> ?fault:fault_config ->
  ?decode_cache_entries:int -> unit -> config
(** 8 KiB 2-way cache with 32-byte lines, 16-entry CLB, 20-cycle memory
    latency, 4 bytes/cycle, no faults, no decoded-block cache. *)

type result = {
  fetches : int;
  hits : int;
  misses : int;
  clb_misses : int;
  total_cycles : int;
  cpi : float;  (** cycles per fetched instruction-slot (1.0 = ideal) *)
  hit_ratio : float;
  avg_miss_penalty : float;
  faults_injected : int;  (** refills whose decode came back faulty *)
  fault_retries : int;  (** individual re-decode attempts *)
  fault_traps : int;  (** traps taken (direct, or after retry exhaustion) *)
  stale_lines : int;  (** lines served stale under [Stale] *)
  undetected_faults : int;  (** corrupt lines that entered the cache silently *)
  decode_cache_hits : int;  (** refills served from the decoded-block LRU *)
  decode_cache_misses : int;  (** refills that had to decompress (LRU enabled) *)
}

val run : config -> ?lat:Lat.t -> trace:int array -> unit -> result
(** [run config ~lat ~trace ()] simulates the fetch trace. [lat] gives the
    compressed size of each block and must be supplied when
    [config.decompressor] is set; uncompressed runs ignore it.
    @raise Invalid_argument when a compressed run lacks a LAT or the trace
    references blocks beyond it. *)

val slowdown : compressed:result -> uncompressed:result -> float
(** CPI ratio of the compressed system over the uncompressed one. *)
