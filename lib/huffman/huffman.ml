module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

(* First-level decode LUT: at most this many leading bits index directly
   into a table of (symbol, length) pairs; longer codes fall back to the
   canonical tree walk. 2^11 entries bounds the table at 16 KiB per code
   while covering every codeword [build] emits at its default
   [max_length] of 15 minus the rare tail. *)
let lut_bits_limit = 11

type code = {
  lengths : int array; (* per-symbol code length, 0 = absent *)
  codewords : int array; (* canonical codeword, valid when lengths.(s) > 0 *)
  max_len : int;
  (* Canonical decode tables, indexed by code length 1..max_len. *)
  first_code : int array; (* first canonical codeword of that length *)
  first_index : int array; (* index into [ordered] of that length's first symbol *)
  count_len : int array; (* number of codewords of that length *)
  ordered : int array; (* symbols sorted by (length, symbol) *)
  lut_bits : int;
  (* lut.(prefix) = (sym lsl 5) lor len for codes of len <= lut_bits whose
     bits open [prefix]; 0 = no codeword that short here (fall back). *)
  lut : int array;
}

(* Build per-symbol code lengths with a standard Huffman tree over a
   min-heap. Single-symbol alphabets get length 1 so the symbol still
   occupies at least one bit (required for self-delimiting blocks). *)
let tree_lengths counts =
  let n = Array.length counts in
  let lengths = Array.make n 0 in
  (* Heap of (weight, tie, node); node is Leaf sym | Node (l, r). *)
  let module N = struct
    type node = Leaf of int | Node of node * node
  end in
  let open N in
  let cmp (w1, t1, _) (w2, t2, _) = if w1 <> w2 then compare w1 w2 else compare t1 t2 in
  let heap = Ccomp_util.Heap.create ~cmp in
  let tie = ref 0 in
  Array.iteri
    (fun sym c ->
      if c > 0 then begin
        Ccomp_util.Heap.push heap (c, !tie, Leaf sym);
        incr tie
      end)
    counts;
  match Ccomp_util.Heap.length heap with
  | 0 -> invalid_arg "Huffman.build: empty alphabet"
  | 1 ->
    let _, _, node = Ccomp_util.Heap.pop heap in
    (match node with Leaf sym -> lengths.(sym) <- 1 | Node _ -> assert false);
    lengths
  | _ ->
    while Ccomp_util.Heap.length heap > 1 do
      let w1, _, n1 = Ccomp_util.Heap.pop heap in
      let w2, _, n2 = Ccomp_util.Heap.pop heap in
      Ccomp_util.Heap.push heap (w1 + w2, !tie, Node (n1, n2));
      incr tie
    done;
    let _, _, root = Ccomp_util.Heap.pop heap in
    let rec assign depth = function
      | Leaf sym -> lengths.(sym) <- depth
      | Node (l, r) ->
        assign (depth + 1) l;
        assign (depth + 1) r
    in
    assign 0 root;
    lengths

let max_array a = Array.fold_left max 0 a

(* Canonical code and decode tables from a length table. *)
let canonicalize lengths =
  let n = Array.length lengths in
  let max_len = max_array lengths in
  if max_len = 0 then invalid_arg "Huffman.of_lengths: empty alphabet";
  if max_len > 30 then invalid_arg "Huffman.of_lengths: codeword too long";
  let count_len = Array.make (max_len + 1) 0 in
  Array.iter (fun l -> if l > 0 then count_len.(l) <- count_len.(l) + 1) lengths;
  (* Kraft inequality check: sum 2^(max_len - l) must not exceed 2^max_len. *)
  let kraft = ref 0 in
  for l = 1 to max_len do
    kraft := !kraft + (count_len.(l) lsl (max_len - l))
  done;
  if !kraft > 1 lsl max_len then invalid_arg "Huffman.of_lengths: not a prefix code";
  let first_code = Array.make (max_len + 1) 0 in
  let first_index = Array.make (max_len + 1) 0 in
  let code = ref 0 and index = ref 0 in
  for l = 1 to max_len do
    first_code.(l) <- !code;
    first_index.(l) <- !index;
    code := (!code + count_len.(l)) lsl 1;
    index := !index + count_len.(l)
  done;
  let ordered = Array.make (Array.fold_left (fun a l -> if l > 0 then a + 1 else a) 0 lengths) 0 in
  let next_index = Array.copy first_index in
  for sym = 0 to n - 1 do
    let l = lengths.(sym) in
    if l > 0 then begin
      ordered.(next_index.(l)) <- sym;
      next_index.(l) <- next_index.(l) + 1
    end
  done;
  let codewords = Array.make n 0 in
  let next_code = Array.copy first_code in
  for i = 0 to Array.length ordered - 1 do
    let sym = ordered.(i) in
    let l = lengths.(sym) in
    codewords.(sym) <- next_code.(l);
    next_code.(l) <- next_code.(l) + 1
  done;
  (* Every codeword of length l <= lut_bits owns the 2^(lut_bits - l)
     table slots its bits prefix. *)
  let lut_bits = min max_len lut_bits_limit in
  let lut = Array.make (1 lsl lut_bits) 0 in
  for sym = 0 to n - 1 do
    let l = lengths.(sym) in
    if l > 0 && l <= lut_bits then begin
      let first = codewords.(sym) lsl (lut_bits - l) in
      let packed = (sym lsl 5) lor l in
      Array.fill lut first (1 lsl (lut_bits - l)) packed
    end
  done;
  {
    lengths = Array.copy lengths;
    codewords;
    max_len;
    first_code;
    first_index;
    count_len;
    ordered;
    lut_bits;
    lut;
  }

let of_lengths lengths = canonicalize lengths

let build ?(max_length = 15) freq =
  let counts = ref (Freq.counts freq) in
  let lengths = ref (tree_lengths !counts) in
  (* Flatten frequencies until the longest codeword fits; each halving at
     least halves the depth spread, so this terminates quickly. *)
  while max_array !lengths > max_length do
    counts := Array.map (fun c -> if c = 0 then 0 else (c + 1) / 2) !counts;
    lengths := tree_lengths !counts
  done;
  canonicalize !lengths

let lengths c = Array.copy c.lengths

let code_length c sym = c.lengths.(sym)

let codeword c sym =
  if c.lengths.(sym) = 0 then invalid_arg "Huffman.codeword: absent symbol";
  c.codewords.(sym)

let alphabet_size c = Array.length c.lengths

let encode_symbol c w sym =
  let len = c.lengths.(sym) in
  if len = 0 then invalid_arg "Huffman.encode_symbol: absent symbol";
  Bit_writer.put_bits w ~value:c.codewords.(sym) ~width:len

let decode_symbol_tree c r =
  let rec go code len =
    if len > c.max_len then
      Ccomp_util.Decode_error.invalid_code "Huffman.decode_symbol: invalid bit stream"
    else
      let code = (code lsl 1) lor Bit_reader.get_bit r in
      let len = len + 1 in
      let offset = code - c.first_code.(len) in
      if offset >= 0 && offset < c.count_len.(len) then c.ordered.(c.first_index.(len) + offset)
      else go code len
  in
  go 0 0

let decode_symbol c r =
  let e = c.lut.(Bit_reader.peek_bits r c.lut_bits) in
  if e <> 0 then begin
    Bit_reader.skip_bits r (e land 31);
    e lsr 5
  end
  else decode_symbol_tree c r

let encoded_bits c freq =
  let bits = ref 0 in
  Freq.iter_nonzero freq (fun sym count ->
      if c.lengths.(sym) = 0 then invalid_arg "Huffman.encoded_bits: absent symbol";
      bits := !bits + (count * c.lengths.(sym)));
  !bits

(* Length tables are run-length coded — sparse alphabets (LZSS's 286
   literals, SADC's immediate bytes) are mostly zero, so (count, length)
   pairs cost a fraction of a flat table, much as DEFLATE compresses its
   own code lengths. *)
let serialize_lengths c =
  let n = Array.length c.lengths in
  assert (n < 65536);
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr (n lsr 8));
  Buffer.add_char b (Char.chr (n land 0xff));
  let emit_run count len =
    (* count is 1..256, stored as count-1 *)
    Buffer.add_char b (Char.chr (count - 1));
    Buffer.add_char b (Char.chr len)
  in
  let i = ref 0 in
  while !i < n do
    let len = c.lengths.(!i) in
    let j = ref !i in
    while !j < n && c.lengths.(!j) = len && !j - !i < 256 do
      incr j
    done;
    emit_run (!j - !i) len;
    i := !j
  done;
  Buffer.contents b

let deserialize_lengths s ~pos =
  if pos + 2 > String.length s then invalid_arg "Huffman.deserialize_lengths: truncated";
  let n = (Char.code s.[pos] lsl 8) lor Char.code s.[pos + 1] in
  let lengths = Array.make n 0 in
  let p = ref (pos + 2) in
  let filled = ref 0 in
  while !filled < n do
    if !p + 2 > String.length s then invalid_arg "Huffman.deserialize_lengths: truncated";
    let count = Char.code s.[!p] + 1 in
    let len = Char.code s.[!p + 1] in
    p := !p + 2;
    if !filled + count > n then invalid_arg "Huffman.deserialize_lengths: run overflows alphabet";
    Array.fill lengths !filled count len;
    filled := !filled + count
  done;
  let code = canonicalize lengths in
  (* Canonicalize rejects over-full tables (Kraft sum > 1); a stored table
     must additionally not be deficient (Kraft sum < 1), or some bit
     patterns decode to nothing and corruption can slip through as a late
     [Invalid_code]. The only legitimate deficient table is the degenerate
     single-symbol code of length 1, which [build] emits for one-symbol
     alphabets. *)
  let nonzero = Array.fold_left (fun a l -> if l > 0 then a + 1 else a) 0 lengths in
  if not (nonzero = 1 && code.max_len = 1) then begin
    let kraft = ref 0 in
    Array.iter (fun l -> if l > 0 then kraft := !kraft + (1 lsl (code.max_len - l))) lengths;
    if !kraft < 1 lsl code.max_len then
      invalid_arg "Huffman.deserialize_lengths: incomplete code"
  end;
  (code, !p)
