(** Canonical Huffman coding (Huffman 1952) over an integer alphabet.

    Used by the Kozuch–Wolfe byte-Huffman baseline, by the final entropy
    stage of SADC (§4), and by the literal/length/distance alphabets of the
    gzip-like baseline. Codes are canonical so a code is fully described by
    its length table, which is what gets stored next to a compressed
    program. *)

type code
(** A built code: per-symbol lengths plus canonical codewords. *)

val build : ?max_length:int -> Ccomp_entropy.Freq.t -> code
(** [build freq] computes an optimal prefix code for the observed counts.
    Symbols with zero count get no codeword. [max_length] (default 15)
    bounds codeword length; frequencies are flattened (halved) until the
    bound is met, which costs a provably small amount of optimality.
    @raise Invalid_argument if no symbol has a positive count. *)

val of_lengths : int array -> code
(** Rebuild a canonical code from its length table (0 = absent symbol), as a
    decoder does after reading the stored table.
    @raise Invalid_argument if the lengths do not form a prefix code
    (Kraft sum > 1) or describe an empty alphabet. *)

val lengths : code -> int array
(** Per-symbol code lengths; 0 for symbols without a codeword. *)

val code_length : code -> int -> int
(** Length of one symbol's codeword (0 when absent). *)

val codeword : code -> int -> int
(** Canonical codeword bits of a symbol (MSB-first within its length).
    @raise Invalid_argument if the symbol has no codeword. *)

val alphabet_size : code -> int

val encode_symbol : code -> Ccomp_bitio.Bit_writer.t -> int -> unit
(** Append one symbol's codeword.
    @raise Invalid_argument if the symbol has no codeword. *)

val decode_symbol : code -> Ccomp_bitio.Bit_reader.t -> int
(** Read one symbol. Codes up to 11 bits resolve through a first-level
    lookup table in one peek-and-skip; longer codes fall back to the
    canonical tree walk, so the result is identical to
    {!decode_symbol_tree} on any input.
    @raise Ccomp_util.Decode_error.Error ([Invalid_code]) if the bit
    stream does not decode (possible only on corrupted input or overrun
    past the end). *)

val decode_symbol_tree : code -> Ccomp_bitio.Bit_reader.t -> int
(** The bit-serial canonical tree walk {!decode_symbol} accelerates —
    kept as the reference kernel for equivalence tests and the
    pre-LUT baseline in the benchmark harness. *)

val encoded_bits : code -> Ccomp_entropy.Freq.t -> int
(** Total bits needed to code a message with the given symbol counts. *)

val serialize_lengths : code -> string
(** Compact table representation: alphabet size (2 bytes, big-endian)
    followed by run-length coded (count-1, length) byte pairs — sparse
    alphabets cost almost nothing. *)

val deserialize_lengths : string -> pos:int -> code * int
(** Inverse of {!serialize_lengths}; returns the code and the position just
    past the table.
    @raise Invalid_argument on a truncated table, an over-full code
    (Kraft sum > 1) or a deficient one (Kraft sum < 1, except the
    degenerate single-symbol code), so a stored table is accepted only
    when every bit pattern decodes. *)
