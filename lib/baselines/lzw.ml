module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

(* Codes 0..255 are literals, 256 clears the table, dynamic entries start
   at 257. Code width grows from 9 to 16 bits and the table is cleared
   when full, as in compress(1).

   Width synchronisation: the decoder lags the encoder by exactly one
   dictionary entry (it learns an entry only from the following code), and
   the largest code the encoder may emit is the decoder's next unassigned
   entry (the KwKwK case). Both sides therefore size each code for the
   decoder's next-entry counter: the decoder uses its own [next], the
   encoder uses [next - 1]. *)
let clear_code = 256
let first_dynamic = 257
let min_width = 9
let max_width = 16
let table_limit = 1 lsl max_width

(* Smallest width whose code space covers [0, n], clamped to [9, 16]. *)
let width_for n =
  let rec go w = if w >= max_width || n <= (1 lsl w) - 1 then w else go (w + 1) in
  go min_width

let compress input =
  let w = Bit_writer.create () in
  let dict : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  (* key = prefix_code * 256 + byte *)
  let next = ref first_dynamic in
  let reset () =
    Hashtbl.reset dict;
    next := first_dynamic
  in
  let emit code =
    let decoder_next = max first_dynamic (!next - 1) in
    Bit_writer.put_bits w ~value:code ~width:(width_for decoder_next)
  in
  let add prefix byte =
    if !next < table_limit then begin
      Hashtbl.add dict ((prefix * 256) + byte) !next;
      incr next;
      true
    end
    else false
  in
  let prefix = ref (-1) in
  String.iter
    (fun c ->
      let byte = Char.code c in
      if !prefix < 0 then prefix := byte
      else
        match Hashtbl.find_opt dict ((!prefix * 256) + byte) with
        | Some code -> prefix := code
        | None ->
          emit !prefix;
          if not (add !prefix byte) then begin
            (* Table full: clear, like compress(1) under pressure. *)
            emit clear_code;
            reset ()
          end;
          prefix := byte)
    input;
  if !prefix >= 0 then emit !prefix;
  Bit_writer.contents w

let decompress ?max_output data =
  let limit = match max_output with Some m -> m | None -> max_int in
  let r = Bit_reader.create data in
  let out = Buffer.create (min 65536 (4 * String.length data)) in
  let check_growth () =
    (* One 16-bit code can expand to a 64 KiB dictionary string, so a
       corrupt stream could legally blow the output up ~58000x; cap
       allocation at the caller's declared original size. *)
    if Buffer.length out > limit then
      Ccomp_util.Decode_error.fail
        (Length_overflow { section = "lzw"; declared = Buffer.length out; limit })
  in
  (* Entries as (prefix_code, last_byte); literals are implicit. *)
  let prefixes = Array.make table_limit 0 in
  let lasts = Array.make table_limit 0 in
  let next = ref first_dynamic in
  let scratch = Buffer.create 64 in
  let first_byte_of code =
    let rec go c = if c < 256 then c else go prefixes.(c) in
    go code
  in
  let emit_string code =
    Buffer.clear scratch;
    let rec go c =
      if c < 256 then Buffer.add_char scratch (Char.chr c)
      else begin
        go prefixes.(c);
        Buffer.add_char scratch (Char.chr lasts.(c))
      end
    in
    go code;
    Buffer.add_buffer out scratch
  in
  let add prefix byte =
    if !next < table_limit then begin
      prefixes.(!next) <- prefix;
      lasts.(!next) <- byte;
      incr next
    end
  in
  let prev = ref (-1) in
  let total_bits = 8 * String.length data in
  let continue_ = ref true in
  while !continue_ && Bit_reader.pos r + width_for !next <= total_bits do
    let code = Bit_reader.get_bits r (width_for !next) in
    if code = clear_code then begin
      next := first_dynamic;
      prev := -1
    end
    else if code > !next then failwith "Lzw.decompress: corrupt stream"
    else begin
      if !prev < 0 then begin
        if code > 255 then failwith "Lzw.decompress: corrupt stream";
        Buffer.add_char out (Char.chr code)
      end
      else if code = !next then begin
        (* KwKwK: the entry being defined right now. *)
        let fb = first_byte_of !prev in
        add !prev fb;
        emit_string code
      end
      else begin
        add !prev (first_byte_of code);
        emit_string code
      end;
      check_growth ();
      prev := code
    end
  done;
  Buffer.contents out

let decompress_checked ?max_output data =
  Ccomp_util.Decode_error.protect ~section:"lzw" (fun () -> decompress ?max_output data)

let ratio input =
  if String.length input = 0 then 1.0
  else float_of_int (String.length (compress input)) /. float_of_int (String.length input)
