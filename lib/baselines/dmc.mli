(** DMC — dynamic Markov compression (Cormack & Horspool 1987, the
    paper's citation \[3\]).

    A bit-level finite-state model that grows by cloning states as
    correlations appear, coded with the binary arithmetic coder. Like PPM
    it is cited in §1 among the best-compressing methods and rejected for
    the embedded setting: the model is adaptive (decoding is strictly
    sequential) and its state machine grows with the input — the memory
    objection this module makes measurable.

    The machine starts as the classic byte braid (8 bit-position states)
    and clones while below [max_states]. *)

val compress : ?max_states:int -> string -> string
(** [compress data] with a 2^18-state budget by default. *)

val decompress : ?max_states:int -> ?max_output:int -> string -> string
(** Inverse of {!compress} for the same [max_states]. [max_output] bounds
    the declared output size before allocation.
    @raise Ccomp_util.Decode_error.Error ([Length_overflow]) past the cap. *)

val decompress_checked :
  ?max_states:int -> ?max_output:int -> string -> (string, Ccomp_util.Decode_error.t) result
(** Total variant of {!decompress}: corrupted input yields [Error], never
    an exception or an allocation beyond [max_output]. *)

val ratio : ?max_states:int -> string -> float

val model_states : ?max_states:int -> string -> int
(** States allocated after modelling [data] — the model memory measure. *)
