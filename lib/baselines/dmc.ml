module Coder = Ccomp_arith.Binary_coder

(* States are rows in growable parallel arrays: per state, for each bit
   value, a transition count and a successor. Counts are floats as in the
   original formulation (cloning splits them proportionally). *)
type machine = {
  mutable counts0 : float array;
  mutable counts1 : float array;
  mutable next0 : int array;
  mutable next1 : int array;
  mutable n_states : int;
  max_states : int;
}

let grow m =
  let cap = Array.length m.counts0 in
  if m.n_states = cap then begin
    let ncap = max 64 (2 * cap) in
    let extend a init =
      let b = Array.make ncap init in
      Array.blit a 0 b 0 cap;
      b
    in
    m.counts0 <- extend m.counts0 0.0;
    m.counts1 <- extend m.counts1 0.0;
    m.next0 <- extend m.next0 0;
    m.next1 <- extend m.next1 0
  end

let add_state m =
  grow m;
  let id = m.n_states in
  m.n_states <- id + 1;
  id

(* Initial machine: the 8-state bit-position braid — state i handles bit
   position i of the current byte and both edges lead to position i+1. *)
let create ~max_states =
  let m =
    { counts0 = [||]; counts1 = [||]; next0 = [||]; next1 = [||]; n_states = 0; max_states }
  in
  for i = 0 to 7 do
    let id = add_state m in
    assert (id = i);
    m.counts0.(i) <- 0.2;
    m.counts1.(i) <- 0.2;
    m.next0.(i) <- (i + 1) mod 8;
    m.next1.(i) <- (i + 1) mod 8
  done;
  m

let clone_threshold = 2.0

(* Traverse edge (state, bit), possibly cloning the successor first; the
   standard DMC adaptation rule. *)
let step m state bit =
  let count = if bit = 0 then m.counts0.(state) else m.counts1.(state) in
  let succ = if bit = 0 then m.next0.(state) else m.next1.(state) in
  let succ_total = m.counts0.(succ) +. m.counts1.(succ) in
  let new_succ =
    if
      count > clone_threshold
      && succ_total -. count > clone_threshold
      && m.n_states < m.max_states
    then begin
      let c = add_state m in
      let fraction = count /. succ_total in
      m.counts0.(c) <- m.counts0.(succ) *. fraction;
      m.counts1.(c) <- m.counts1.(succ) *. fraction;
      m.counts0.(succ) <- m.counts0.(succ) -. m.counts0.(c);
      m.counts1.(succ) <- m.counts1.(succ) -. m.counts1.(c);
      m.next0.(c) <- m.next0.(succ);
      m.next1.(c) <- m.next1.(succ);
      if bit = 0 then m.next0.(state) <- c else m.next1.(state) <- c;
      c
    end
    else succ
  in
  if bit = 0 then m.counts0.(state) <- m.counts0.(state) +. 1.0
  else m.counts1.(state) <- m.counts1.(state) +. 1.0;
  new_succ

let prediction m state =
  let c0 = m.counts0.(state) and c1 = m.counts1.(state) in
  let p = (c0 +. 0.2) /. (c0 +. c1 +. 0.4) in
  max 1 (min (Coder.scale - 1) (int_of_float (p *. float_of_int Coder.scale)))

let header n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.to_string b

let compress ?(max_states = 1 lsl 18) data =
  let m = create ~max_states in
  let e = Coder.Encoder.create () in
  let state = ref 0 in
  String.iter
    (fun ch ->
      let byte = Char.code ch in
      for k = 7 downto 0 do
        let bit = (byte lsr k) land 1 in
        Coder.Encoder.encode e ~p0:(prediction m !state) bit;
        state := step m !state bit
      done)
    data;
  header (String.length data) ^ Coder.Encoder.finish e

let decompress ?(max_states = 1 lsl 18) ?max_output data =
  if String.length data < 4 then invalid_arg "Dmc.decompress: truncated";
  let b k = Char.code data.[k] in
  let size = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  (match max_output with
  | Some limit when size > limit ->
    Ccomp_util.Decode_error.fail (Length_overflow { section = "dmc"; declared = size; limit })
  | Some _ | None -> ());
  let m = create ~max_states in
  let d = Coder.Decoder.create ~pos:4 data in
  let out = Bytes.create size in
  let state = ref 0 in
  for i = 0 to size - 1 do
    let byte = ref 0 in
    for _ = 7 downto 0 do
      let bit = Coder.Decoder.decode d ~p0:(prediction m !state) in
      byte := (!byte lsl 1) lor bit;
      state := step m !state bit
    done;
    Bytes.set out i (Char.chr !byte)
  done;
  Bytes.to_string out

let decompress_checked ?max_states ?max_output data =
  Ccomp_util.Decode_error.protect ~section:"dmc" (fun () ->
      decompress ?max_states ?max_output data)

let ratio ?max_states data =
  if String.length data = 0 then 1.0
  else float_of_int (String.length (compress ?max_states data)) /. float_of_int (String.length data)

let model_states ?(max_states = 1 lsl 18) data =
  let m = create ~max_states in
  let state = ref 0 in
  String.iter
    (fun ch ->
      let byte = Char.code ch in
      for k = 7 downto 0 do
        state := step m !state ((byte lsr k) land 1)
      done)
    data;
  m.n_states
