(** Byte-based Huffman coding of instruction memory, after Kozuch & Wolfe
    (cited as \[5\] in the paper; the Fig. 9 comparison baseline).

    A single semiadaptive Huffman code over the program's bytes; every
    cache block is encoded separately and byte-aligned, so blocks are
    independently decodable with one shared table — the same execution
    model as SAMC/SADC but with no instruction-field or inter-byte
    modelling, which is why the paper's methods beat it. *)

type compressed = {
  code : Ccomp_huffman.Huffman.code;
  blocks : string array;
  block_size : int;
  original_size : int;
}

val compress : ?block_size:int -> ?jobs:int -> string -> compressed
(** [compress code] with 32-byte blocks by default. [jobs] (default 1)
    fans per-block encoding over that many domains with byte-identical
    output. *)

val decompress_block : compressed -> int -> string

val decompress : ?jobs:int -> compressed -> string
(** [decompress t] rebuilds the original bytes. [jobs] (default 1) fans
    per-block decoding over that many domains; blocks land in disjoint
    slices of one shared buffer, so output is byte-identical. *)

val decompress_checked :
  ?max_output:int -> compressed -> (string, Ccomp_util.Decode_error.t) result
(** Total variant of {!decompress}: corrupted payloads yield [Error],
    never an exception; [max_output] bounds the declared original size. *)

val serialize : compressed -> string
(** Self-contained wire form: block size, original size, the shared
    canonical-Huffman length table, then length-prefixed block payloads. *)

val deserialize : string -> pos:int -> compressed * int
(** Inverse of {!serialize}.
    @raise Invalid_argument on malformed input. *)

val deserialize_checked :
  string -> pos:int -> (compressed * int, Ccomp_util.Decode_error.t) result
(** Total variant of {!deserialize}. *)

val code_bytes : compressed -> int

val table_bytes : compressed -> int

val ratio : compressed -> float
(** Compressed code bytes / original bytes. *)
