(** LZ77 + canonical Huffman, a simplified DEFLATE — the paper's [gzip]
    reference (§5). A 32 KiB sliding window with hash-chain match search
    and lazy evaluation feeds a literal/length alphabet and a distance
    alphabet (the RFC 1951 code ranges), each canonical-Huffman coded over
    the whole file. File-oriented: the dictionary is the preceding text,
    so random block access is impossible — the very property that rules
    this family out for compressed-code execution (§1). *)

val compress : string -> string

val decompress : ?max_output:int -> string -> string
(** Inverse of {!compress}. [max_output] caps the produced bytes against
    corrupt streams of back-reference tokens; pass the declared original
    size when known.
    @raise Failure on corrupted input.
    @raise Ccomp_util.Decode_error.Error ([Length_overflow]) past the cap. *)

val decompress_checked :
  ?max_output:int -> string -> (string, Ccomp_util.Decode_error.t) result
(** Total variant of {!decompress}: arbitrary bytes yield [Error], never an
    exception, an unbounded loop, or allocation past [max_output]. *)

val ratio : string -> float
(** Compressed size / original size (1.0 for empty input). *)
