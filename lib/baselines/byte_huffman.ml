module Huffman = Ccomp_huffman.Huffman
module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader
module Obs = Ccomp_obs.Obs

(* Observability (guarded, never alters coded bits): per-block latency
   and size for the byte-Huffman baseline, plus the bit-I/O
   refill/flush counts of its coding loops. *)
let m_c_blocks = Obs.Counter.make "huffman.compress.blocks"

let m_c_bytes_in = Obs.Counter.make "huffman.compress.bytes_in"

let m_c_bytes_out = Obs.Counter.make "huffman.compress.bytes_out"

let m_c_block_us = Obs.Histogram.make "huffman.compress.block_us"

let m_d_blocks = Obs.Counter.make "huffman.decompress.blocks"

let m_d_bytes_out = Obs.Counter.make "huffman.decompress.bytes_out"

let m_d_block_us = Obs.Histogram.make "huffman.decompress.block_us"

let m_reader_refills = Obs.Counter.make "bitio.reader.refills"

let m_writer_flushes = Obs.Counter.make "bitio.writer.flushes"

type compressed = {
  code : Huffman.code;
  blocks : string array;
  block_size : int;
  original_size : int;
}

let compress ?(block_size = 32) ?(jobs = 1) input =
  Obs.with_span ~cat:"huffman" "huffman.compress" @@ fun () ->
  if String.length input = 0 then invalid_arg "Byte_huffman.compress: empty input";
  let code = Huffman.build (Freq.of_string input) in
  let n = String.length input in
  let nblocks = (n + block_size - 1) / block_size in
  let instrument = Obs.metrics_enabled () in
  (* The code table is global but fixed before any block encodes, so
     blocks fan out over the pool with byte-identical assembly. Each
     domain reuses one bit writer across all its blocks. *)
  let blocks =
    Ccomp_par.Pool.init_local ~jobs nblocks
      ~local:(fun () -> Bit_writer.create ())
      (fun w b ->
        let start = b * block_size in
        let len = min block_size (n - start) in
        let t0 = if instrument then Obs.now_us () else 0.0 in
        Bit_writer.reset w;
        for i = start to start + len - 1 do
          Huffman.encode_symbol code w (Char.code input.[i])
        done;
        let blk = Bit_writer.contents w in
        if instrument then begin
          Obs.Histogram.observe m_c_block_us (Obs.now_us () -. t0);
          Obs.Counter.incr m_c_blocks;
          Obs.Counter.add m_c_bytes_in len;
          Obs.Counter.add m_c_bytes_out (String.length blk);
          Obs.Counter.add m_writer_flushes (Bit_writer.flushes w)
        end;
        blk)
  in
  { code; blocks; block_size; original_size = n }

let block_length t b =
  let start = b * t.block_size in
  min t.block_size (t.original_size - start)

let decompress_block t b =
  let r = Bit_reader.create t.blocks.(b) in
  let len = block_length t b in
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    Bytes.set out i (Char.chr (Huffman.decode_symbol t.code r))
  done;
  if Obs.metrics_enabled () then Obs.Counter.add m_reader_refills (Bit_reader.refills r);
  Bytes.to_string out

let decompress ?(jobs = 1) t =
  Obs.with_span ~cat:"huffman" "huffman.decompress" @@ fun () ->
  let instrument = Obs.metrics_enabled () in
  (* Blocks decode straight into disjoint slices of one shared output
     buffer (block [b] covers [b * block_size ..)), so the parallel path
     does no per-block string allocation and no final concat. Each
     domain reuses one bit reader across its blocks. *)
  let out = Bytes.create t.original_size in
  Ccomp_par.Pool.iter_n ~jobs
    ~local:(fun () -> Bit_reader.create "")
    (Array.length t.blocks)
    (fun r b ->
      let start = b * t.block_size in
      let len = min t.block_size (t.original_size - start) in
      let t0 = if instrument then Obs.now_us () else 0.0 in
      let refills0 = Bit_reader.refills r in
      Bit_reader.reset r t.blocks.(b);
      for i = start to start + len - 1 do
        Bytes.set out i (Char.chr (Huffman.decode_symbol t.code r))
      done;
      if instrument then begin
        Obs.Histogram.observe m_d_block_us (Obs.now_us () -. t0);
        Obs.Counter.incr m_d_blocks;
        Obs.Counter.add m_d_bytes_out len;
        Obs.Counter.add m_reader_refills (Bit_reader.refills r - refills0)
      end);
  Bytes.unsafe_to_string out

let decompress_checked ?max_output t =
  Ccomp_util.Decode_error.protect ~section:"byte-huffman" (fun () ->
      (match max_output with
      | Some limit when t.original_size > limit ->
        Ccomp_util.Decode_error.fail
          (Length_overflow { section = "byte-huffman"; declared = t.original_size; limit })
      | Some _ | None -> ());
      decompress t)

(* Wire form (the ROM image of the Kozuch–Wolfe scheme): block size and
   original size, the shared length table, then length-prefixed block
   payloads. Gives the fault campaign a byte-level target like SECF. *)
let serialize t =
  let b = Buffer.create 4096 in
  let u16 v =
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (v land 0xff))
  in
  u16 t.block_size;
  u16 (t.original_size lsr 16);
  u16 (t.original_size land 0xffff);
  Buffer.add_string b (Huffman.serialize_lengths t.code);
  Array.iter
    (fun blk ->
      u16 (String.length blk);
      Buffer.add_string b blk)
    t.blocks;
  Buffer.contents b

let deserialize s ~pos =
  let p = ref pos in
  let fail () = invalid_arg "Byte_huffman.deserialize: truncated input" in
  let byte () =
    if !p >= String.length s then fail ();
    let v = Char.code s.[!p] in
    incr p;
    v
  in
  let u16 () =
    let hi = byte () in
    (hi lsl 8) lor byte ()
  in
  let block_size = u16 () in
  let original_size =
    let hi = u16 () in
    (hi lsl 16) lor u16 ()
  in
  if block_size <= 0 then invalid_arg "Byte_huffman.deserialize: bad block size";
  let code, next = Huffman.deserialize_lengths s ~pos:!p in
  p := next;
  if Huffman.alphabet_size code > 256 then
    invalid_arg "Byte_huffman.deserialize: alphabet beyond bytes";
  let nblocks = (original_size + block_size - 1) / block_size in
  if nblocks > (String.length s - !p) / 2 then fail ();
  let blocks =
    Array.init nblocks (fun _ ->
        let len = u16 () in
        if !p + len > String.length s then fail ();
        let blk = String.sub s !p len in
        p := !p + len;
        blk)
  in
  ({ code; blocks; block_size; original_size }, !p)

let deserialize_checked s ~pos =
  Ccomp_util.Decode_error.protect ~section:"byte-huffman.deserialize" (fun () ->
      deserialize s ~pos)

let code_bytes t = Array.fold_left (fun acc b -> acc + String.length b) 0 t.blocks

let table_bytes t = String.length (Huffman.serialize_lengths t.code)

let ratio t = float_of_int (code_bytes t) /. float_of_int t.original_size
