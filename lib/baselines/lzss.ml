module Huffman = Ccomp_huffman.Huffman
module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

let window_size = 32768
let min_match = 3
let max_match = 258
let max_chain = 128
let end_of_block = 256

(* RFC 1951 length codes: symbol 257 + index, base length and extra bits. *)
let length_base =
  [| 3; 4; 5; 6; 7; 8; 9; 10; 11; 13; 15; 17; 19; 23; 27; 31; 35; 43; 51; 59; 67; 83; 99; 115;
     131; 163; 195; 227; 258 |]

let length_extra =
  [| 0; 0; 0; 0; 0; 0; 0; 0; 1; 1; 1; 1; 2; 2; 2; 2; 3; 3; 3; 3; 4; 4; 4; 4; 5; 5; 5; 5; 0 |]

(* RFC 1951 distance codes: base distance and extra bits. *)
let dist_base =
  [| 1; 2; 3; 4; 5; 7; 9; 13; 17; 25; 33; 49; 65; 97; 129; 193; 257; 385; 513; 769; 1025; 1537;
     2049; 3073; 4097; 6145; 8193; 12289; 16385; 24577 |]

let dist_extra =
  [| 0; 0; 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7; 8; 8; 9; 9; 10; 10; 11; 11; 12; 12;
     13; 13 |]

let code_of_table base v =
  (* Largest index whose base is <= v. *)
  let rec go lo hi =
    if lo = hi then lo
    else
      let mid = (lo + hi + 1) / 2 in
      if base.(mid) <= v then go mid hi else go lo (mid - 1)
  in
  go 0 (Array.length base - 1)

let length_code l = code_of_table length_base l

let dist_code d = code_of_table dist_base d

type token = Literal of int | Match of int * int (* length, distance *)

(* Hash-chain LZ77 with one-step lazy matching, like gzip's deflate. *)
let tokenize input =
  let n = String.length input in
  let hash_bits = 15 in
  let hash_size = 1 lsl hash_bits in
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let hash_at i =
    if i + 2 >= n then -1
    else
      (Char.code input.[i] lsl 10) lxor (Char.code input.[i + 1] lsl 5) lxor Char.code input.[i + 2]
      land (hash_size - 1)
  in
  let insert i =
    let h = hash_at i in
    if h >= 0 then begin
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let match_length i j =
    (* longest common prefix of positions j (earlier) and i, capped *)
    let limit = min max_match (n - i) in
    let rec go k = if k < limit && input.[j + k] = input.[i + k] then go (k + 1) else k in
    go 0
  in
  let best_match i =
    let h = hash_at i in
    if h < 0 then (0, 0)
    else begin
      let best_len = ref 0 and best_dist = ref 0 in
      let rec walk j chain =
        if j >= 0 && chain > 0 && i - j <= window_size then begin
          let len = match_length i j in
          if len > !best_len then begin
            best_len := len;
            best_dist := i - j
          end;
          if len < max_match then walk prev.(j) (chain - 1)
        end
      in
      walk head.(h) max_chain;
      (!best_len, !best_dist)
    end
  in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let len, dist = best_match !i in
    if len >= min_match then begin
      (* lazy: prefer a longer match starting one byte later *)
      let next_len, _ = if !i + 1 < n then (insert !i; best_match (!i + 1)) else (0, 0) in
      if next_len > len then begin
        tokens := Literal (Char.code input.[!i]) :: !tokens;
        (* position !i already inserted above *)
        incr i
      end
      else begin
        tokens := Match (len, dist) :: !tokens;
        (* first position was inserted during the lazy probe *)
        for k = !i + 1 to min (!i + len - 1) (n - 1) do
          insert k
        done;
        i := !i + len
      end
    end
    else begin
      tokens := Literal (Char.code input.[!i]) :: !tokens;
      insert !i;
      incr i
    end
  done;
  List.rev !tokens

let compress input =
  if String.length input = 0 then ""
  else begin
    let tokens = tokenize input in
    let lit_freq = Freq.create 286 in
    let dist_freq = Freq.create 30 in
    List.iter
      (function
        | Literal b -> Freq.add lit_freq b
        | Match (l, d) ->
          Freq.add lit_freq (257 + length_code l);
          Freq.add dist_freq (dist_code d))
      tokens;
    Freq.add lit_freq end_of_block;
    let lit_code = Huffman.build lit_freq in
    let dist_code_tbl = if Freq.total dist_freq > 0 then Some (Huffman.build dist_freq) else None in
    let w = Bit_writer.create () in
    List.iter
      (function
        | Literal b -> Huffman.encode_symbol lit_code w b
        | Match (l, d) ->
          let lc = length_code l in
          Huffman.encode_symbol lit_code w (257 + lc);
          Bit_writer.put_bits w ~value:(l - length_base.(lc)) ~width:length_extra.(lc);
          let dc = dist_code d in
          (match dist_code_tbl with Some c -> Huffman.encode_symbol c w dc | None -> assert false);
          Bit_writer.put_bits w ~value:(d - dist_base.(dc)) ~width:dist_extra.(dc))
      tokens;
    Huffman.encode_symbol lit_code w end_of_block;
    let body = Bit_writer.contents w in
    (* Header: the two code-length tables (gzip stores these RLE+Huffman
       coded; the flat form is a slightly pessimistic stand-in). *)
    let header =
      Huffman.serialize_lengths lit_code
      ^ match dist_code_tbl with Some c -> Huffman.serialize_lengths c | None -> "\x00\x00"
    in
    header ^ body
  end

let decompress ?max_output data =
  let limit = match max_output with Some m -> m | None -> max_int in
  if String.length data = 0 then ""
  else begin
    let lit_code, pos = Huffman.deserialize_lengths data ~pos:0 in
    let dist_code_tbl, pos =
      if String.length data >= pos + 2 && data.[pos] = '\x00' && data.[pos + 1] = '\x00' then
        (None, pos + 2)
      else
        let c, pos = Huffman.deserialize_lengths data ~pos in
        (Some c, pos)
    in
    let r = Bit_reader.create ~start_bit:(8 * pos) data in
    let out = Buffer.create (4 * String.length data) in
    let finished = ref false in
    while not !finished do
      if Bit_reader.overrun r > 0 then failwith "Lzss.decompress: missing end-of-block";
      (* Each token appends at most [max_match] bytes, so checking the cap
         once per token bounds allocation at [limit + max_match]. *)
      if Buffer.length out > limit then
        Ccomp_util.Decode_error.fail
          (Length_overflow { section = "lzss"; declared = Buffer.length out; limit });
      let sym = Huffman.decode_symbol lit_code r in
      if sym = end_of_block then finished := true
      else if sym < 256 then Buffer.add_char out (Char.chr sym)
      else begin
        let lc = sym - 257 in
        if lc < 0 || lc >= Array.length length_base then failwith "Lzss.decompress: corrupt";
        let l = length_base.(lc) + Bit_reader.get_bits r length_extra.(lc) in
        let dc =
          match dist_code_tbl with
          | Some c -> Huffman.decode_symbol c r
          | None -> failwith "Lzss.decompress: match without distance table"
        in
        let d = dist_base.(dc) + Bit_reader.get_bits r dist_extra.(dc) in
        let start = Buffer.length out - d in
        if start < 0 then failwith "Lzss.decompress: distance before start";
        for k = 0 to l - 1 do
          Buffer.add_char out (Buffer.nth out (start + k))
        done
      end
    done;
    Buffer.contents out
  end

let decompress_checked ?max_output data =
  Ccomp_util.Decode_error.protect ~section:"lzss" (fun () -> decompress ?max_output data)

let ratio input =
  if String.length input = 0 then 1.0
  else float_of_int (String.length (compress input)) /. float_of_int (String.length input)
