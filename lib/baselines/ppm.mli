(** PPM — prediction by partial matching (order-2, PPMC escapes).

    The paper's §1 names the finite-context-model family (PPM, DMC, WORD)
    as the best-compressing algorithms available, rejected for the
    embedded setting because both compressor and decompressor need large
    adaptive model memories and sequential decoding. This reference
    implementation exists to measure that headroom and that memory cost on
    the same workloads: byte-oriented, adaptive contexts of order 2 → 1 →
    0 → uniform, escape frequency = distinct symbols seen (method C),
    without exclusions. *)

val compress : ?order:int -> string -> string
(** [compress data] with maximum context order 2 by default (0..2). *)

val decompress : ?order:int -> ?max_output:int -> string -> string
(** Inverse of {!compress} for the same [order]. [max_output] bounds the
    declared output size before allocation.
    @raise Ccomp_util.Decode_error.Error ([Length_overflow]) past the cap. *)

val decompress_checked :
  ?order:int -> ?max_output:int -> string -> (string, Ccomp_util.Decode_error.t) result
(** Total variant of {!decompress}: corrupted input yields [Error], never
    an exception or an allocation beyond [max_output]. *)

val ratio : ?order:int -> string -> float

type memory_report = {
  contexts : int;  (** distinct conditioning contexts allocated *)
  nodes : int;  (** total (context, symbol) count entries *)
  approx_bytes : int;  (** rough model footprint, the paper's objection *)
}

val model_memory : ?order:int -> string -> memory_report
(** Size of the adaptive model after compressing [data]. *)
