module Rc = Ccomp_arith.Range_coder

(* Per-context adaptive statistics: a sorted association list of (symbol,
   count) — code byte contexts are sparse, so lists beat dense tables on
   the memory the paper objects to. Escape frequency = number of distinct
   symbols (PPMC). *)
type stats = { mutable entries : (int * int) list; mutable total : int; mutable distinct : int }

let rescale_threshold = 8192

type model = { order : int; table : (int, stats) Hashtbl.t }

let create_model order =
  if order < 0 || order > 3 then invalid_arg "Ppm: order must be 0..3";
  { order; table = Hashtbl.create 4096 }

(* Context key for the [k] bytes preceding position [i]; [get] reads one
   byte of the text produced so far. *)
let context_key get i k =
  let v = ref k in
  for j = i - k to i - 1 do
    v := (!v lsl 8) lor get j
  done;
  (k lsl 40) lor !v

let stats_for model key =
  match Hashtbl.find_opt model.table key with
  | Some s -> s
  | None ->
    let s = { entries = []; total = 0; distinct = 0 } in
    Hashtbl.add model.table key s;
    s

let rescale s =
  let entries = List.filter_map (fun (sym, c) -> let c = c / 2 in if c > 0 then Some (sym, c) else None) s.entries in
  s.entries <- entries;
  s.total <- List.fold_left (fun a (_, c) -> a + c) 0 entries;
  s.distinct <- List.length entries

let bump s sym =
  let rec go = function
    | [] ->
      s.distinct <- s.distinct + 1;
      [ (sym, 1) ]
    | ((sym', c) as e) :: rest ->
      if sym' = sym then (sym', c + 1) :: rest
      else if sym' > sym then begin
        s.distinct <- s.distinct + 1;
        (sym, 1) :: e :: rest
      end
      else e :: go rest
  in
  s.entries <- go s.entries;
  s.total <- s.total + 1;
  if s.total + s.distinct >= rescale_threshold then rescale s

(* Cumulative frequency of [sym] within a context; None if absent. *)
let lookup s sym =
  let rec go cum = function
    | [] -> None
    | (sym', c) :: rest -> if sym' = sym then Some (cum, c) else if sym' > sym then None else go (cum + c) rest
  in
  go 0 s.entries

let find_by_target s target =
  let rec go cum = function
    | [] -> None
    | (sym, c) :: rest -> if target < cum + c then Some (sym, cum, c) else go (cum + c) rest
  in
  go 0 s.entries

let compress ?(order = 2) data =
  let model = create_model order in
  let enc = Rc.Encoder.create () in
  let get j = Char.code data.[j] in
  String.iteri
    (fun i ch ->
      let sym = Char.code ch in
      let rec code_at k =
        if k < 0 then Rc.Encoder.encode enc ~cum_low:sym ~freq:1 ~total:256
        else if k > i then code_at (k - 1)
        else begin
          let s = stats_for model (context_key get i k) in
          if s.total = 0 then code_at (k - 1) (* fresh context: certain escape, no bits *)
          else
            let grand = s.total + s.distinct in
            match lookup s sym with
            | Some (cum, freq) -> Rc.Encoder.encode enc ~cum_low:cum ~freq ~total:grand
            | None ->
              Rc.Encoder.encode enc ~cum_low:s.total ~freq:s.distinct ~total:grand;
              code_at (k - 1)
        end
      in
      code_at order;
      (* update every order's context with the symbol just coded *)
      for k = 0 to min order i do
        bump (stats_for model (context_key get i k)) sym
      done)
    data;
  Rc.Encoder.finish enc

(* Decompression drives the same model; the growing output buffer is the
   context source. *)
let decompress_sized ?(order = 2) ~size data =
  let model = create_model order in
  let dec = Rc.Decoder.create data in
  let out = Bytes.create size in
  let get j = Char.code (Bytes.get out j) in
  for i = 0 to size - 1 do
    let rec decode_at k =
      if k < 0 then begin
        let target = Rc.Decoder.decode_target dec ~total:256 in
        Rc.Decoder.decode_update dec ~cum_low:target ~freq:1 ~total:256;
        target
      end
      else if k > i then decode_at (k - 1)
      else begin
        let s = stats_for model (context_key get i k) in
        if s.total = 0 then decode_at (k - 1)
        else begin
          let grand = s.total + s.distinct in
          let target = Rc.Decoder.decode_target dec ~total:grand in
          if target >= s.total then begin
            Rc.Decoder.decode_update dec ~cum_low:s.total ~freq:s.distinct ~total:grand;
            decode_at (k - 1)
          end
          else
            match find_by_target s target with
            | Some (sym, cum, freq) ->
              Rc.Decoder.decode_update dec ~cum_low:cum ~freq ~total:grand;
              sym
            | None -> failwith "Ppm.decompress: corrupt stream"
        end
      end
    in
    let sym = decode_at order in
    Bytes.set out i (Char.chr sym);
    for k = 0 to min order i do
      bump (stats_for model (context_key get i k)) sym
    done
  done;
  Bytes.to_string out

(* The public stream carries the size header so decompress is standalone. *)
let compress ?(order = 2) data =
  let body = compress ~order data in
  let n = String.length data in
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  Bytes.to_string hdr ^ body

let decompress ?(order = 2) ?max_output data =
  if String.length data < 4 then invalid_arg "Ppm.decompress: truncated";
  let b k = Char.code data.[k] in
  let size = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
  (* The size header is attacker-controlled; check it before the output
     buffer is allocated. *)
  (match max_output with
  | Some limit when size > limit ->
    Ccomp_util.Decode_error.fail (Length_overflow { section = "ppm"; declared = size; limit })
  | Some _ | None -> ());
  decompress_sized ~order ~size (String.sub data 4 (String.length data - 4))

let decompress_checked ?(order = 2) ?max_output data =
  Ccomp_util.Decode_error.protect ~section:"ppm" (fun () -> decompress ~order ?max_output data)

let ratio ?(order = 2) data =
  if String.length data = 0 then 1.0
  else float_of_int (String.length (compress ~order data)) /. float_of_int (String.length data)

type memory_report = { contexts : int; nodes : int; approx_bytes : int }

let model_memory ?(order = 2) data =
  let model = create_model order in
  let get j = Char.code data.[j] in
  String.iteri
    (fun i ch ->
      let sym = Char.code ch in
      for k = 0 to min order i do
        bump (stats_for model (context_key get i k)) sym
      done)
    data;
  let contexts = Hashtbl.length model.table in
  let nodes = Hashtbl.fold (fun _ s acc -> acc + s.distinct) model.table 0 in
  (* each context: hash slot + record; each node: a list cell with two
     small ints *)
  { contexts; nodes; approx_bytes = (contexts * 32) + (nodes * 24) }
