(** LZW with the parameters of UNIX [compress(1)]: codes grow from 9 to 16
    bits, the table is rebuilt when full and compression degrades, and the
    whole file is one stream — the paper's first file-oriented reference
    (§5). File-oriented means sequential decompression only: unusable in
    the cache-refill architecture, included purely as a yardstick. *)

val compress : string -> string

val decompress : ?max_output:int -> string -> string
(** Inverse of {!compress}. [max_output] caps the produced bytes (a single
    16-bit code can expand to 64 KiB, so corruption could otherwise force
    huge allocations); pass the declared original size when known.
    @raise Failure on corrupted input.
    @raise Ccomp_util.Decode_error.Error ([Length_overflow]) past the cap. *)

val decompress_checked :
  ?max_output:int -> string -> (string, Ccomp_util.Decode_error.t) result
(** Total variant of {!decompress}: arbitrary bytes yield [Error], never an
    exception, an unbounded loop, or allocation past [max_output]. *)

val ratio : string -> float
(** [ratio data] = compressed size / original size (1.0 for empty input). *)
