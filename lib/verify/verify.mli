(** Differential verification harness behind [ccomp verify].

    The codebase carries deliberately redundant implementations: fast
    decode kernels next to reference kernels, [~jobs] paths next to
    serial ones, total [_checked] decoders next to raising ones, and a
    daemon that promises byte-identity with the offline CLI. Each
    redundancy is an equivalence claim; this module enumerates them as
    {!pair}s and tests every claim over generated programs and a
    committed golden corpus, shrinking any diverging input to a minimal
    reproducer. *)

type isa = Mips | X86

val isa_name : isa -> string

val isa_of_name : string -> isa option

(** One family of equivalence claims. [Golden] tags corpus findings in
    reports; it is not in {!all_pairs} because the corpus is a fixture
    set, not a selectable pair. *)
type pair = Kernel | Parallel | Checked | Serve_offline | Roundtrip | Golden

val pair_name : pair -> string

val pair_of_name : string -> pair option

val all_pairs : pair list

type divergence = {
  d_pair : pair;
  d_case : string;  (** input label + check name *)
  d_detail : string;
  d_block : int option;  (** cache block holding the first differing byte *)
  d_first_diff_bit : int option;  (** absolute bit offset of the first difference *)
  d_repro : string option;  (** shrunk input that still reproduces it *)
}

type input = { in_label : string; in_isa : isa; in_code : string }

type report = { checks : int; divergences : divergence list }

type options = { jobs : int; block_size : int; shrink_budget : int }

val default_options : options

val run :
  ?options:options -> ?log:(string -> unit) -> pairs:pair list -> input list -> report
(** Run every check of every requested pair over every input. Each
    divergence is counted in [verify.divergences], recorded as a
    [verify.divergence] event, shrunk (word-aligned greedy removal,
    bounded by [shrink_budget] predicate calls) and reported with the
    first differing block and bit. [log] receives one human line per
    (input, pair) plus one per divergence. Never raises on a divergence
    — only on harness-level failures (e.g. unknown progen profile). *)

val diff_location : block_size:int -> string -> string -> int option * int option
(** [(block, absolute bit)] of the first difference between two byte
    strings, or [(None, None)] when equal. The bit is exact (MSB-first
    within the byte) when both strings still have the differing byte,
    and the byte's first bit when one string simply ended. *)

val minimize :
  word:int -> budget:int -> predicate:(string -> bool) -> string -> string
(** Greedy ddmin-lite: repeatedly delete word-aligned chunks while
    [predicate] still holds, halving the chunk size down to one word.
    [budget] bounds total predicate calls; bytes past the last whole
    word are preserved. The result always satisfies [predicate] if the
    original input did. *)

val gen_code : isa:isa -> profile:string -> scale:float -> seed:int -> string
(** Lower one progen program to raw instruction bytes.
    @raise Not_found on an unknown profile name. *)

val progen_inputs : profiles:string list -> scale:float -> seed:int -> input list
(** Both ISAs of every profile, labelled ["<profile>.<isa>"]. *)

(** {2 Golden corpus}

    A committed directory of inputs + compressed artifacts + CRCs
    ([test/golden/]). Checking recompresses each input and compares
    against the blessed artifact bytes — the format-drift tripwire: a
    wire-format or default-configuration change shows up even while
    round-trips still pass. *)

type algo = Algo_samc | Algo_sadc

type golden_entry = {
  ge_name : string;
  ge_algo : algo;
  ge_isa : isa;
  ge_block_size : int;
  ge_input_crc : int32;
  ge_artifact_crc : int32;
}

val bless_golden : dir:string -> golden_entry list
(** Regenerate the corpus in [dir] (creating it if needed) and write
    MANIFEST, [<name>.bin] and [<name>.secf] for every spec. *)

val load_golden : dir:string -> (golden_entry list, string) result
(** Parse [dir]/MANIFEST. *)

val check_golden :
  ?log:(string -> unit) -> dir:string -> golden_entry list -> int * divergence list
(** File CRCs, recompression vs the blessed artifact, and artifact →
    input decode; returns (checks passed, divergences). *)

val golden_inputs : dir:string -> golden_entry list -> input list
(** The corpus inputs, ready to feed into {!run}.
    @raise Sys_error if a corpus file is missing. *)
