(* Differential verification harness.

   The pipeline carries several deliberately redundant implementations —
   fast kernels next to reference kernels, parallel paths next to serial
   ones, total `_checked` decoders next to raising ones, a daemon that
   promises byte-identity with the offline CLI. Every one of those is an
   equivalence claim, and this module is where the claims are enumerated
   and actually tested, pairwise, over real inputs:

     kernel     fast decode kernels vs their reference implementations
                (SAMC flat + nibble vs pointer-chasing ref, SADC
                per-block refill vs whole-image decode, Huffman LUT vs
                canonical tree walk)
     parallel   ~jobs:N decompression and compression vs serial,
                byte-for-byte, plus the SECF container's parallel path
     checked    `decompress_checked` on clean input vs the unchecked
                decoder's output
     serve      the daemon's job dispatch (CCQ1 protocol handlers) vs
                the offline CLI construction of the same image
     roundtrip  compress → (serialize → deserialize) → decompress
                returns the original bytes, for every codec and the
                SECF container

   On divergence the harness shrinks the input greedily (word-aligned
   chunk removal, bounded by a predicate budget) and reports a minimal
   reproducer with the first differing block and bit. *)

module Samc = Ccomp_core.Samc
module Sadc = Ccomp_core.Sadc
module Sadc_isa = Ccomp_core.Sadc_isa
module Byte_huffman = Ccomp_baselines.Byte_huffman
module Huffman = Ccomp_huffman.Huffman
module Bit_reader = Ccomp_bitio.Bit_reader
module Image = Ccomp_image.Image
module Crc32 = Ccomp_image.Crc32
module Serve = Ccomp_serve.Serve
module Decode_error = Ccomp_util.Decode_error
module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events
module P = Ccomp_progen

type isa = Mips | X86

let isa_name = function Mips -> "mips" | X86 -> "x86"

let isa_of_name = function "mips" -> Some Mips | "x86" -> Some X86 | _ -> None

type pair = Kernel | Parallel | Checked | Serve_offline | Roundtrip | Golden

let pair_name = function
  | Kernel -> "kernel"
  | Parallel -> "parallel"
  | Checked -> "checked"
  | Serve_offline -> "serve"
  | Roundtrip -> "roundtrip"
  | Golden -> "golden"

(* Golden is a corpus, not a selectable equivalence pair — it is
   reported under its own tag but always runs when a corpus directory is
   given. *)
let all_pairs = [ Kernel; Parallel; Checked; Serve_offline; Roundtrip ]

let pair_of_name = function
  | "kernel" -> Some Kernel
  | "parallel" -> Some Parallel
  | "checked" -> Some Checked
  | "serve" -> Some Serve_offline
  | "roundtrip" -> Some Roundtrip
  | _ -> None

type divergence = {
  d_pair : pair;
  d_case : string;  (** input label + check name, e.g. "gcc.mips samc/kernels" *)
  d_detail : string;
  d_block : int option;  (** cache block holding the first differing byte *)
  d_first_diff_bit : int option;  (** absolute bit offset of the first difference *)
  d_repro : string option;  (** shrunk input still reproducing the divergence *)
}

type input = { in_label : string; in_isa : isa; in_code : string }

type report = { checks : int; divergences : divergence list }

let c_checks = Obs.Counter.make "verify.checks"

let c_divergences = Obs.Counter.make "verify.divergences"

(* --- outcomes ----------------------------------------------------------- *)

type outcome =
  | Pass of int  (** elementary comparisons that held *)
  | Skip of string  (** the input itself was rejected (cannot even build) *)
  | Diverge of { detail : string; got : string; want : string }

(* Build failures (a shrink candidate the codec legitimately refuses,
   e.g. an x86 byte string that no longer parses) must not read as
   divergences — they are wrapped so [eval] can tell them apart from a
   decoder blowing up on input it accepted. *)
exception Invalid_input of exn

let guard_build f = try f () with e -> raise (Invalid_input e)

let cmp ~detail got want =
  if String.equal got want then Pass 1 else Diverge { detail; got; want }

let seq steps =
  List.fold_left
    (fun acc step ->
      match acc with
      | Skip _ | Diverge _ -> acc
      | Pass n -> ( match step () with Pass m -> Pass (n + m) | o -> o))
    (Pass 0) steps

let eval check code =
  match check code with
  | o -> o
  | exception Invalid_input e -> Skip (Printexc.to_string e)
  | exception e ->
    Diverge { detail = "exception escaped a decode path: " ^ Printexc.to_string e;
              got = ""; want = "" }

(* --- first-difference location ------------------------------------------ *)

let first_diff_byte a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i >= n then None else if a.[i] <> b.[i] then Some i else go (i + 1) in
  match go 0 with
  | Some _ as d -> d
  | None -> if String.length a = String.length b then None else Some n

(* (block, absolute first differing bit) between two byte strings; the
   bit is exact when both strings still have the byte, the byte's first
   bit when one string simply ended. *)
let diff_location ~block_size a b =
  match first_diff_byte a b with
  | None -> (None, None)
  | Some i ->
    let bit =
      if i < min (String.length a) (String.length b) then begin
        let x = Char.code a.[i] lxor Char.code b.[i] in
        let rec top k = if x land (1 lsl k) <> 0 then 7 - k else top (k - 1) in
        (8 * i) + top 7
      end
      else 8 * i
    in
    (Some (i / block_size), Some bit)

(* --- greedy input shrinking --------------------------------------------- *)

(* ddmin-lite: repeatedly remove word-aligned chunks, halving the chunk
   size whenever no removal reproduces, until single words survive. The
   predicate budget bounds total work; any bytes past the last whole
   word ride along untouched. *)
let minimize ~word ~budget ~predicate code =
  let calls = ref 0 in
  let pred c =
    if !calls >= budget then false
    else begin
      incr calls;
      predicate c
    end
  in
  let words s = String.length s / word in
  let remove s lo len =
    String.sub s 0 (lo * word)
    ^ String.sub s ((lo + len) * word) (String.length s - ((lo + len) * word))
  in
  let rec pass chunk cur =
    if chunk < 1 then cur
    else begin
      let cur = ref cur in
      let changed = ref true in
      while !changed do
        changed := false;
        let i = ref 0 in
        while !i * chunk < words !cur do
          let lo = !i * chunk in
          let len = min chunk (words !cur - lo) in
          if len > 0 && len < words !cur then begin
            let cand = remove !cur lo len in
            if pred cand then begin
              cur := cand;
              changed := true
            end
            else incr i
          end
          else incr i
        done
      done;
      pass (chunk / 2) !cur
    end
  in
  if words code <= 1 then code else pass (max 1 (words code / 2)) code

(* --- codec instances ----------------------------------------------------- *)

(* One compressed program viewed through every redundant implementation
   the codec carries. Checks below only consume this record, so each
   codec states its equivalences in one place. *)
type instance = {
  ci_serial : string Lazy.t;  (** decompress, jobs = 1 *)
  ci_parallel : (int -> string) option;  (** decompress ~jobs *)
  ci_checked : unit -> (string, Decode_error.t) result;
  ci_kernels : (string * (unit -> string)) list;  (** alternative decoders *)
  ci_serialize : string Lazy.t;  (** wire form of this compressed value *)
  ci_compress_parallel : (int -> string) option;  (** wire form of compress ~jobs *)
  ci_reserialized : unit -> string;  (** serialize → deserialize → decompress *)
}

(* The daemon and the CLI build SAMC with these exact settings; the
   serve pair is only meaningful if this module does too. *)
let samc_config ~isa ~block_size =
  match isa with
  | Mips -> Samc.mips_config ~block_size ~context_bits:2 ~quantize:false ~prune_below:0 ()
  | X86 -> Samc.byte_config ~block_size ~context_bits:2 ~quantize:false ~prune_below:0 ()

let make_samc ~isa ~block_size code =
  let cfg = samc_config ~isa ~block_size in
  let z = guard_build (fun () -> Samc.compress cfg code) in
  let block_bytes i = min block_size (z.Samc.original_size - (i * block_size)) in
  let reassemble decode_block =
    let b = Buffer.create (max 16 z.Samc.original_size) in
    Array.iteri (fun i payload -> Buffer.add_string b (decode_block i payload)) z.Samc.blocks;
    Buffer.contents b
  in
  let serialized = lazy (Samc.serialize z) in
  {
    ci_serial = lazy (Samc.decompress z);
    ci_parallel = Some (fun j -> Samc.decompress ~jobs:j z);
    ci_checked = (fun () -> Samc.decompress_checked z);
    ci_kernels =
      [
        ( "ref-kernel",
          fun () ->
            reassemble (fun i p ->
                Samc.decompress_block_ref cfg z.Samc.model ~original_bytes:(block_bytes i) p) );
        ( "flat-kernel",
          fun () ->
            reassemble (fun i p ->
                Samc.decompress_block cfg z.Samc.model ~original_bytes:(block_bytes i) p) );
        ( "nibble-kernel",
          fun () ->
            reassemble (fun i p ->
                fst
                  (Samc.decompress_block_parallel cfg z.Samc.model
                     ~original_bytes:(block_bytes i) p)) );
      ];
    ci_serialize = serialized;
    ci_compress_parallel = Some (fun j -> Samc.serialize (Samc.compress ~jobs:j cfg code));
    ci_reserialized =
      (fun () ->
        let z', _ = Samc.deserialize (Lazy.force serialized) ~pos:0 in
        Samc.decompress z');
  }

module Sadc_inst (I : Sadc_isa.S) = struct
  module M = Sadc.Make (I)

  let make ~block_size code =
    let cfg = Sadc.default_config ~block_size () in
    let z = guard_build (fun () -> M.compress_image cfg code) in
    let serialized = lazy (M.serialize z) in
    {
      ci_serial = lazy (M.decompress z);
      ci_parallel = Some (fun j -> M.decompress ~jobs:j z);
      ci_checked = (fun () -> M.decompress_checked z);
      ci_kernels =
        [
          (* the refill engine's operation: every block from only its own
             payload, instructions re-encoded and concatenated *)
          ( "block-refill",
            fun () ->
              let b = Buffer.create (max 16 (M.original_size z)) in
              for i = 0 to M.block_count z - 1 do
                Buffer.add_string b (I.encode_list (M.decompress_block z i))
              done;
              Buffer.contents b );
        ];
      ci_serialize = serialized;
      ci_compress_parallel =
        Some (fun j -> M.serialize (M.compress_image ~jobs:j cfg code));
      ci_reserialized =
        (fun () ->
          let z', _ = M.deserialize (Lazy.force serialized) ~pos:0 in
          M.decompress z');
    }
end

module Sadc_mips_inst = Sadc_inst (Sadc_isa.Mips_streams)
module Sadc_x86_inst = Sadc_inst (Sadc_isa.X86_streams)

let make_sadc ~isa ~block_size code =
  match isa with
  | Mips -> Sadc_mips_inst.make ~block_size code
  | X86 -> Sadc_x86_inst.make ~block_size code

let make_byte_huffman ~block_size code =
  let z = guard_build (fun () -> Byte_huffman.compress ~block_size code) in
  let serialized = lazy (Byte_huffman.serialize z) in
  {
    ci_serial = lazy (Byte_huffman.decompress z);
    ci_parallel = Some (fun j -> Byte_huffman.decompress ~jobs:j z);
    ci_checked = (fun () -> Byte_huffman.decompress_checked z);
    ci_kernels =
      [
        (* LUT-accelerated decode_symbol vs the canonical tree walk *)
        ( "tree-decode",
          fun () ->
            let b = Buffer.create (max 16 z.Byte_huffman.original_size) in
            Array.iteri
              (fun i payload ->
                let n =
                  min z.Byte_huffman.block_size
                    (z.Byte_huffman.original_size - (i * z.Byte_huffman.block_size))
                in
                let r = Bit_reader.create payload in
                for _ = 1 to n do
                  Buffer.add_char b (Char.chr (Huffman.decode_symbol_tree z.Byte_huffman.code r))
                done)
              z.Byte_huffman.blocks;
            Buffer.contents b );
      ];
    ci_serialize = serialized;
    ci_compress_parallel =
      Some (fun j -> Byte_huffman.serialize (Byte_huffman.compress ~block_size ~jobs:j code));
    ci_reserialized =
      (fun () ->
        let z', _ = Byte_huffman.deserialize (Lazy.force serialized) ~pos:0 in
        Byte_huffman.decompress z');
  }

(* Several pairs interrogate the same compressed program; memoize
   instances per (physical input, isa, block size) so one input is
   compressed once per codec, not once per check. Shrink candidates are
   fresh strings and correctly miss the cache. *)
let memo_instance build =
  let cache = ref [] in
  fun ~isa ~block_size code ->
    match
      List.find_opt (fun (c, i, b, _) -> c == code && i = isa && b = block_size) !cache
    with
    | Some (_, _, _, v) -> v
    | None ->
      let v = build ~isa ~block_size code in
      cache := (code, isa, block_size, v) :: List.filteri (fun i _ -> i < 7) !cache;
      v

let samc_instance = memo_instance make_samc

let sadc_instance = memo_instance make_sadc

let byte_huffman_instance = memo_instance (fun ~isa:_ ~block_size code -> make_byte_huffman ~block_size code)

type algo = Algo_samc | Algo_sadc

let algo_name = function Algo_samc -> "samc" | Algo_sadc -> "sadc"

let algo_of_name = function "samc" -> Some Algo_samc | "sadc" -> Some Algo_sadc | _ -> None

(* Identical construction to `ccomp compress` with default flags and to
   the daemon's compress_job. *)
let offline_image ~algo ~isa ~block_size code =
  match (algo, isa) with
  | Algo_samc, Mips ->
    Image.of_samc ~isa:Image.Mips (Samc.compress (samc_config ~isa:Mips ~block_size) code)
  | Algo_samc, X86 ->
    Image.of_samc ~isa:Image.X86 (Samc.compress (samc_config ~isa:X86 ~block_size) code)
  | Algo_sadc, Mips ->
    Image.of_sadc_mips (Sadc.Mips.compress_image (Sadc.default_config ~block_size ()) code)
  | Algo_sadc, X86 ->
    Image.of_sadc_x86 (Sadc.X86.compress_image (Sadc.default_config ~block_size ()) code)

let image_instance =
  memo_instance (fun ~isa ~block_size code ->
      let img = guard_build (fun () -> offline_image ~algo:Algo_samc ~isa ~block_size code) in
      let serialized = lazy (Image.write img) in
      {
        ci_serial = lazy (Image.decompress img);
        ci_parallel = Some (fun j -> Image.decompress ~jobs:j img);
        ci_checked =
          (fun () ->
            Image.decompress_checked (Image.with_block_crcs Image.Crc8_tags img));
        ci_kernels = [];
        ci_serialize = serialized;
        ci_compress_parallel = None;
        ci_reserialized =
          (fun () ->
            match Image.read (Lazy.force serialized) with
            | Ok img' -> Image.decompress img'
            | Error e -> failwith ("SECF image does not read back: " ^ e));
      })

let builders ~isa ~block_size =
  [
    ("samc", fun code -> samc_instance ~isa ~block_size code);
    ("sadc", fun code -> sadc_instance ~isa ~block_size code);
    ("byte-huffman", fun code -> byte_huffman_instance ~isa ~block_size code);
    ("secf", fun code -> image_instance ~isa ~block_size code);
  ]

(* --- the pair checks ----------------------------------------------------- *)

let kernel_check inst _code =
  let want = Lazy.force inst.ci_serial in
  let rec go n = function
    | [] -> Pass n
    | (kname, f) :: rest ->
      let got = f () in
      if String.equal got want then go (n + 1) rest
      else Diverge { detail = kname ^ " decode differs from serial decompress"; got; want }
  in
  go 0 inst.ci_kernels

let parallel_check ~jobs inst _code =
  seq
    [
      (fun () ->
        match inst.ci_parallel with
        | None -> Pass 0
        | Some p ->
          cmp
            ~detail:(Printf.sprintf "decompress ~jobs:%d differs from serial decompress" jobs)
            (p jobs) (Lazy.force inst.ci_serial));
      (fun () ->
        match inst.ci_compress_parallel with
        | None -> Pass 0
        | Some p ->
          cmp
            ~detail:
              (Printf.sprintf "compress ~jobs:%d wire form differs from serial compress" jobs)
            (p jobs) (Lazy.force inst.ci_serialize));
    ]

let checked_check inst _code =
  match inst.ci_checked () with
  | Ok got ->
    cmp ~detail:"checked decoder output differs from unchecked decoder" got
      (Lazy.force inst.ci_serial)
  | Error e ->
    Diverge
      {
        detail = "checked decoder rejected clean input: " ^ Decode_error.to_string e;
        got = "";
        want = Lazy.force inst.ci_serial;
      }

let roundtrip_check inst code =
  seq
    [
      (fun () -> cmp ~detail:"decompress does not return the original bytes"
          (Lazy.force inst.ci_serial) code);
      (fun () ->
        cmp ~detail:"serialize → deserialize → decompress differs from the original bytes"
          (inst.ci_reserialized ()) code);
    ]

let serve_isa = function Mips -> Serve.Mips | X86 -> Serve.X86

let serve_checks ~isa ~block_size =
  let serve_algo = function Algo_samc -> Serve.Samc | Algo_sadc -> Serve.Sadc in
  let submit req =
    match Serve.handle_request ~jobs:1 req with
    | Serve.Payload p -> Ok p
    | Serve.Failed e -> Error e
    | Serve.Overloaded e -> Error ("overloaded: " ^ e)
    | Serve.Deadline_expired e -> Error ("deadline expired: " ^ e)
  in
  List.concat_map
    (fun algo ->
      let name = algo_name algo in
      [
        ( name ^ "/served-compress",
          fun code ->
            let offline =
              Image.write (guard_build (fun () -> offline_image ~algo ~isa ~block_size code))
            in
            match
              submit
                (Serve.Compress { algo = serve_algo algo; isa = serve_isa isa; block_size; code })
            with
            | Error e ->
              Diverge
                { detail = "daemon refused a compress job the CLI accepts: " ^ e;
                  got = ""; want = offline }
            | Ok served ->
              cmp ~detail:"served image differs from the offline CLI construction" served
                offline );
        ( name ^ "/served-decompress",
          fun code ->
            let offline =
              Image.write (guard_build (fun () -> offline_image ~algo ~isa ~block_size code))
            in
            match submit (Serve.Decompress offline) with
            | Error e ->
              Diverge
                { detail = "daemon refused to decompress an offline CLI image: " ^ e;
                  got = ""; want = code }
            | Ok back -> cmp ~detail:"served decompress differs from the original bytes" back code
        );
      ])
    [ Algo_samc; Algo_sadc ]

let checks ~pair ~isa ~block_size ~jobs =
  let per_instance f =
    List.map
      (fun (iname, mk) -> (iname, fun code -> f (mk code) code))
      (builders ~isa ~block_size)
  in
  match pair with
  | Kernel -> per_instance kernel_check
  | Parallel -> per_instance (parallel_check ~jobs)
  | Checked -> per_instance checked_check
  | Roundtrip -> per_instance roundtrip_check
  | Serve_offline -> serve_checks ~isa ~block_size
  | Golden -> []

(* --- runner --------------------------------------------------------------- *)

type options = { jobs : int; block_size : int; shrink_budget : int }

let default_options = { jobs = 4; block_size = 32; shrink_budget = 60 }

let record_divergence ~log ~pair ~case ~block_size ~repro detail got want =
  let block, bit = diff_location ~block_size got want in
  Obs.Counter.incr c_divergences;
  Events.error
    ~fields:
      ([ ("pair", pair_name pair); ("case", case); ("detail", detail) ]
      @ (match block with Some b -> [ ("block", string_of_int b) ] | None -> [])
      @ (match bit with Some b -> [ ("first_diff_bit", string_of_int b) ] | None -> [])
      @ match repro with Some r -> [ ("repro_bytes", string_of_int (String.length r)) ] | None -> [])
    "verify.divergence";
  log
    (Printf.sprintf "DIVERGENCE %-9s %s: %s%s" (pair_name pair) case detail
       (match (block, bit) with
       | Some b, Some bit -> Printf.sprintf " (block %d, first differing bit %d)" b bit
       | _ -> ""));
  {
    d_pair = pair;
    d_case = case;
    d_detail = detail;
    d_block = block;
    d_first_diff_bit = bit;
    d_repro = repro;
  }

let run ?(options = default_options) ?(log = fun _ -> ()) ~pairs inputs =
  let jobs = max 2 options.jobs in
  let block_size = options.block_size in
  let checks_run = ref 0 in
  let divergences = ref [] in
  List.iter
    (fun { in_label; in_isa; in_code } ->
      List.iter
        (fun pair ->
          let cs = checks ~pair ~isa:in_isa ~block_size ~jobs in
          let passed = ref 0 in
          List.iter
            (fun (cname, check) ->
              let case = in_label ^ " " ^ cname in
              match eval check in_code with
              | Pass n ->
                passed := !passed + n;
                checks_run := !checks_run + n;
                Obs.Counter.add c_checks n
              | Skip why ->
                divergences :=
                  record_divergence ~log ~pair ~case ~block_size ~repro:None
                    ("codec rejected the input: " ^ why)
                    "" ""
                  :: !divergences
              | Diverge { detail; got; want } ->
                (* shrink while the same check still diverges *)
                let word = match in_isa with Mips -> 4 | X86 -> 1 in
                let predicate c =
                  match eval check c with Diverge _ -> true | Pass _ | Skip _ -> false
                in
                let shrunk =
                  minimize ~word ~budget:options.shrink_budget ~predicate in_code
                in
                let detail, got, want =
                  match eval check shrunk with
                  | Diverge d -> (d.detail, d.got, d.want)
                  | Pass _ | Skip _ -> (detail, got, want)
                in
                divergences :=
                  record_divergence ~log ~pair ~case ~block_size ~repro:(Some shrunk) detail
                    got want
                  :: !divergences)
            cs;
          log
            (Printf.sprintf "  %-14s %-9s %3d checks  %s" in_label (pair_name pair) !passed
               (if List.exists (fun d -> d.d_pair = pair) !divergences then "DIVERGED" else "ok")))
        pairs)
    inputs;
  { checks = !checks_run; divergences = List.rev !divergences }

(* --- program generation --------------------------------------------------- *)

let gen_code ~isa ~profile ~scale ~seed =
  let prog = P.Generator.generate ~scale ~seed:(Int64.of_int seed) (P.Profile.find profile) in
  match isa with
  | Mips -> (snd (P.Mips_backend.lower prog)).P.Layout.code
  | X86 -> (snd (P.X86_backend.lower prog)).P.Layout.code

let progen_inputs ~profiles ~scale ~seed =
  List.concat_map
    (fun profile ->
      List.map
        (fun isa ->
          {
            in_label = profile ^ "." ^ isa_name isa;
            in_isa = isa;
            in_code = gen_code ~isa ~profile ~scale ~seed;
          })
        [ Mips; X86 ])
    profiles

(* --- golden corpus -------------------------------------------------------- *)

(* Committed inputs + compressed artifacts + CRCs. The artifact compare
   is the format-drift tripwire: any byte-level change to a codec's wire
   form, container layout or default configuration shows up as a
   mismatch against the blessed bytes even while round-trips still
   pass. *)
type golden_entry = {
  ge_name : string;
  ge_algo : algo;
  ge_isa : isa;
  ge_block_size : int;
  ge_input_crc : int32;
  ge_artifact_crc : int32;
}

let golden_specs =
  [
    ("samc-mips-gcc", Algo_samc, Mips, "gcc", 101);
    ("samc-x86-go", Algo_samc, X86, "go", 102);
    ("sadc-mips-swim", Algo_sadc, Mips, "swim", 103);
    ("sadc-x86-compress", Algo_sadc, X86, "compress", 104);
  ]

let golden_scale = 0.05

let golden_block_size = 32

let manifest_file dir = Filename.concat dir "MANIFEST"

let input_file dir name = Filename.concat dir (name ^ ".bin")

let artifact_file dir name = Filename.concat dir (name ^ ".secf")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let bless_golden ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let entries =
    List.map
      (fun (name, algo, isa, profile, seed) ->
        let code = gen_code ~isa ~profile ~scale:golden_scale ~seed in
        let artifact =
          Image.write (offline_image ~algo ~isa ~block_size:golden_block_size code)
        in
        write_file (input_file dir name) code;
        write_file (artifact_file dir name) artifact;
        {
          ge_name = name;
          ge_algo = algo;
          ge_isa = isa;
          ge_block_size = golden_block_size;
          ge_input_crc = Crc32.of_string code;
          ge_artifact_crc = Crc32.of_string artifact;
        })
      golden_specs
  in
  let b = Buffer.create 256 in
  Buffer.add_string b "# name|algo|isa|block_size|input_crc32|artifact_crc32\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "%s|%s|%s|%d|%08lx|%08lx\n" e.ge_name (algo_name e.ge_algo)
           (isa_name e.ge_isa) e.ge_block_size e.ge_input_crc e.ge_artifact_crc))
    entries;
  write_file (manifest_file dir) (Buffer.contents b);
  entries

let load_golden ~dir =
  match read_file (manifest_file dir) with
  | exception Sys_error e -> Error ("cannot read golden manifest: " ^ e)
  | text ->
    let rec parse acc = function
      | [] -> Ok (List.rev acc)
      | line :: rest ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then parse acc rest
        else begin
          match String.split_on_char '|' line with
          | [ name; algo; isa; bs; icrc; acrc ] -> (
            match
              ( algo_of_name algo,
                isa_of_name isa,
                int_of_string_opt bs,
                Int32.of_string_opt ("0x" ^ icrc),
                Int32.of_string_opt ("0x" ^ acrc) )
            with
            | Some algo, Some isa, Some bs, Some icrc, Some acrc ->
              parse
                ({
                   ge_name = name;
                   ge_algo = algo;
                   ge_isa = isa;
                   ge_block_size = bs;
                   ge_input_crc = icrc;
                   ge_artifact_crc = acrc;
                 }
                :: acc)
                rest
            | _ -> Error (Printf.sprintf "golden manifest: unparseable line %S" line))
          | _ -> Error (Printf.sprintf "golden manifest: malformed line %S" line)
        end
    in
    parse [] (String.split_on_char '\n' text)

(* Corpus verification: file CRCs (the corpus itself is intact), fresh
   compression vs the blessed artifact bytes (format drift), and the
   blessed artifact decoding back to the blessed input. *)
let check_golden ?(log = fun _ -> ()) ~dir entries =
  let checks = ref 0 in
  let divergences = ref [] in
  let diverge e detail got want =
    divergences :=
      record_divergence ~log ~pair:Golden
        ~case:("golden/" ^ e.ge_name)
        ~block_size:e.ge_block_size ~repro:None detail got want
      :: !divergences
  in
  let ok n = checks := !checks + n; Obs.Counter.add c_checks n in
  List.iter
    (fun e ->
      match (read_file (input_file dir e.ge_name), read_file (artifact_file dir e.ge_name)) with
      | exception Sys_error err -> diverge e ("corpus file missing or unreadable: " ^ err) "" ""
      | code, artifact ->
        if Crc32.of_string code <> e.ge_input_crc then
          diverge e "golden input bytes do not match their manifest CRC-32" "" ""
        else if Crc32.of_string artifact <> e.ge_artifact_crc then
          diverge e "golden artifact bytes do not match their manifest CRC-32" "" ""
        else begin
          ok 2;
          (match
             Image.write
               (offline_image ~algo:e.ge_algo ~isa:e.ge_isa ~block_size:e.ge_block_size code)
           with
          | fresh ->
            if String.equal fresh artifact then ok 1
            else
              diverge e
                (Printf.sprintf
                   "format drift: fresh %s compression no longer matches the blessed artifact"
                   (algo_name e.ge_algo))
                fresh artifact
          | exception exn ->
            diverge e ("compressing the golden input raised: " ^ Printexc.to_string exn) "" "");
          match Image.read artifact with
          | Error err -> diverge e ("blessed artifact no longer reads: " ^ err) "" ""
          | Ok img ->
            let back = Image.decompress img in
            if String.equal back code then ok 1
            else diverge e "blessed artifact no longer decodes to the blessed input" back code
        end)
    entries;
  (!checks, List.rev !divergences)

let golden_inputs ~dir entries =
  List.map
    (fun e ->
      {
        in_label = "golden/" ^ e.ge_name;
        in_isa = e.ge_isa;
        in_code = read_file (input_file dir e.ge_name);
      })
    entries
