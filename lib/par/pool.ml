(* Domain-based work pool for the per-cache-block pipeline.

   The paper's central property — every cache block compresses and
   decompresses independently — makes block work embarrassingly
   parallel. [mapi] fans an index range over OCaml 5 domains pulling
   work items off a shared queue; results land in a per-index slot, so
   assembly is deterministic and order-preserving no matter which
   domain finished first: output is byte-identical to a serial run. *)

module Obs = Ccomp_obs.Obs

let default_jobs () = Domain.recommended_domain_count ()

(* Pool metrics: fan-out shape (tasks, chunked queue draws, queue depth
   seen at each draw) and per-worker busy time — how evenly the block
   work spread over the domains. All guarded per-dispatch, so the hot
   loop is untouched when metrics are off. *)
let m_tasks = Obs.Counter.make "par.tasks"

let m_draws = Obs.Counter.make "par.draws"

let m_queue_depth = Obs.Histogram.make "par.queue_depth"

let m_worker_busy_us = Obs.Histogram.make "par.worker_busy_us"

let g_jobs = Obs.Gauge.make "par.jobs"

(* A single-lock work queue: domains draw the next unclaimed index.
   Chunked draw (claim [chunk] indices at a time) keeps lock traffic
   negligible next to per-block codec work. *)
type queue = { mutex : Mutex.t; mutable next : int; limit : int }

let draw q chunk =
  Mutex.lock q.mutex;
  let i = q.next in
  let n = if i >= q.limit then 0 else min chunk (q.limit - i) in
  q.next <- i + n;
  Mutex.unlock q.mutex;
  (i, n)

let mapi ?jobs f a =
  let n = Array.length a in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.mapi f a
  else begin
    let jobs = min jobs n in
    let chunk = max 1 (n / (jobs * 8)) in
    let q = { mutex = Mutex.create (); next = 0; limit = n } in
    let results = Array.make n None in
    let failure = Atomic.make None in
    let instrument = Obs.metrics_enabled () in
    if instrument then begin
      Obs.Gauge.set g_jobs (float_of_int jobs);
      Obs.Counter.add m_tasks n
    end;
    let worker () =
      let busy = ref 0.0 in
      let continue_ = ref true in
      while !continue_ do
        let i, got = draw q chunk in
        if instrument && got > 0 then begin
          Obs.Counter.incr m_draws;
          (* items still unclaimed after this draw: how far from drained
             the shared queue was when this worker came back for work *)
          Obs.Histogram.observe m_queue_depth (float_of_int (q.limit - i - got))
        end;
        if got = 0 || Atomic.get failure <> None then continue_ := false
        else begin
          let t0 = if instrument then Obs.now_us () else 0.0 in
          for k = i to i + got - 1 do
            match f k a.(k) with
            | v -> results.(k) <- Some v
            | exception e ->
              (* first failure wins; the rest of the queue is drained
                 without running so [mapi] raises promptly *)
              ignore (Atomic.compare_and_set failure None (Some e))
          done;
          if instrument then busy := !busy +. (Obs.now_us () -. t0)
        end
      done;
      if instrument then Obs.Histogram.observe m_worker_busy_us !busy
    in
    let traced_worker () = Obs.with_span ~cat:"par" "par.worker" worker in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn traced_worker) in
    traced_worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some e ->
      (* a stalled dispatch: one item failed, the rest of the queue was
         drained without running — the event names the culprit *)
      Ccomp_obs.Events.error
        ~fields:[ ("tasks", string_of_int n); ("error", Printexc.to_string e) ]
        "par.abort";
      raise e
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f a = mapi ?jobs (fun _ x -> f x) a

let init ?jobs n f = mapi ?jobs (fun i () -> f i) (Array.make n ())
