(* Persistent domain pool for the per-cache-block pipeline.

   The paper's central property — every cache block compresses and
   decompresses independently — makes block work embarrassingly
   parallel. Worker domains are spawned once (lazily, sized by the
   largest [jobs] ever requested) and parked on a condition variable
   between dispatches; each [mapi]/[init] call is an *epoch* fanned over
   the shared index queue. Results land in a per-index slot, so assembly
   is deterministic and order-preserving no matter which domain finished
   first: output is byte-identical to a serial run.

   The previous pool paid [jobs - 1] Domain.spawn + join per dispatch,
   which is why small-block workloads lost to serial; an epoch here
   costs one condition broadcast and one counter handshake. *)

module Obs = Ccomp_obs.Obs

let default_jobs () = Domain.recommended_domain_count ()

(* Pool metrics: fan-out shape (tasks, epochs, chunked queue draws,
   queue depth seen at each draw), per-participant busy time, and the
   pool-reuse story (domains alive vs domains ever spawned — with a
   persistent pool, spawns stays flat while epochs grows). All guarded
   per-dispatch, so the hot loop is untouched when metrics are off. *)
let m_tasks = Obs.Counter.make "par.tasks"

let m_epochs = Obs.Counter.make "par.epochs"

let m_spawns = Obs.Counter.make "par.spawns"

let m_draws = Obs.Counter.make "par.draws"

let m_queue_depth = Obs.Histogram.make "par.queue_depth"

let m_worker_busy_us = Obs.Histogram.make "par.worker_busy_us"

let g_jobs = Obs.Gauge.make "par.jobs"

let g_pool_domains = Obs.Gauge.make "par.pool_domains"

(* A single-lock work queue: participants draw the next unclaimed index.
   Chunked draw (claim [chunk] indices at a time) keeps lock traffic
   negligible next to per-block codec work. *)
type queue = { qm : Mutex.t; mutable next : int; limit : int }

let draw q chunk =
  Mutex.lock q.qm;
  let i = q.next in
  let n = if i >= q.limit then 0 else min chunk (q.limit - i) in
  q.next <- i + n;
  Mutex.unlock q.qm;
  (i, n)

(* Claim every index still in the queue (the abort path: once a failure
   is recorded, remaining items are skipped, not run, but must still be
   accounted so the epoch terminates). *)
let drain q =
  Mutex.lock q.qm;
  let n = q.limit - q.next in
  q.next <- q.limit;
  Mutex.unlock q.qm;
  max 0 n

type epoch = {
  e_id : int;  (** unique per dispatch: a worker joins each epoch at most once *)
  e_cap : int Atomic.t;  (** worker-participation slots left, [jobs - 1] *)
  e_unfinished : int Atomic.t;  (** items not yet run or skipped *)
  e_participate : unit -> unit;
      (** the whole draw loop, with per-participant scratch and failure
          handling inside; must never raise *)
}

type pool = {
  lock : Mutex.t;
  work : Condition.t;  (** workers park here between epochs *)
  donec : Condition.t;  (** the dispatcher waits here for the epoch to finish *)
  mutable current : epoch option;
  mutable workers : unit Domain.t list;
  mutable n_workers : int;
  mutable stopping : bool;
}

let pool =
  {
    lock = Mutex.create ();
    work = Condition.create ();
    donec = Condition.create ();
    current = None;
    workers = [];
    n_workers = 0;
    stopping = false;
  }

(* Epochs are serialized: one dispatch owns the pool at a time; a second
   concurrent dispatcher (e.g. another serve worker) queues here. *)
let dispatch_lock = Mutex.create ()

(* A domain running an epoch item must not itself dispatch: it would
   block on [dispatch_lock] held by an epoch that cannot finish without
   it — detected and rejected instead of deadlocking. *)
let in_task = Domain.DLS.new_key (fun () -> ref false)

let rec try_claim cap =
  let v = Atomic.get cap in
  v > 0 && (Atomic.compare_and_set cap v (v - 1) || try_claim cap)

let worker_main () =
  let last = ref (-1) in
  Mutex.lock pool.lock;
  let rec loop () =
    if pool.stopping then Mutex.unlock pool.lock
    else
      match pool.current with
      | Some ep when ep.e_id <> !last && try_claim ep.e_cap ->
        last := ep.e_id;
        Mutex.unlock pool.lock;
        ep.e_participate ();
        Mutex.lock pool.lock;
        loop ()
      | _ ->
        Condition.wait pool.work pool.lock;
        loop ()
  in
  loop ()

(* Grow the resident worker set to [n] domains. Called under
   [dispatch_lock], so two dispatches never race to spawn. *)
let ensure_workers n =
  if pool.n_workers < n then begin
    Mutex.lock pool.lock;
    while pool.n_workers < n do
      pool.workers <- Domain.spawn worker_main :: pool.workers;
      pool.n_workers <- pool.n_workers + 1;
      Obs.Counter.incr m_spawns
    done;
    Obs.Gauge.set g_pool_domains (float_of_int pool.n_workers);
    Mutex.unlock pool.lock
  end

let pool_domains () =
  Mutex.lock pool.lock;
  let n = pool.n_workers in
  Mutex.unlock pool.lock;
  n

let shutdown () =
  if !(Domain.DLS.get in_task) then invalid_arg "Pool.shutdown: called from inside a dispatch";
  Mutex.lock dispatch_lock;
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.work;
  let ws = pool.workers in
  pool.workers <- [];
  pool.n_workers <- 0;
  Mutex.unlock pool.lock;
  List.iter Domain.join ws;
  Mutex.lock pool.lock;
  pool.stopping <- false;
  Mutex.unlock pool.lock;
  Obs.Gauge.set g_pool_domains 0.0;
  Mutex.unlock dispatch_lock

(* Parked domains must be joined before the process exits. *)
let () = at_exit shutdown

let epoch_counter = Atomic.make 0

(* Adaptive chunk sizing: each completed chunk re-estimates the per-item
   cost and retargets the draw size so one draw costs ~[target_draw_us]
   — big chunks amortize queue locking for cheap items, single-item
   draws keep heavy blocks balanced. Purely a scheduling hint; result
   placement is by index, so output bytes never depend on it. *)
let target_draw_us = 200.0

let adapt_chunk ~n ~jobs chunk ~elapsed_us ~got =
  let per_item = elapsed_us /. float_of_int (max 1 got) in
  let ideal =
    if per_item <= 0.0 then max 1 (n / (jobs * 8))
    else int_of_float (target_draw_us /. per_item)
  in
  let upper = max 1 (n / (2 * jobs)) in
  Atomic.set chunk (max 1 (min ideal upper))

(* The core: run [run scratch i] for every [i] in [0, n), fanned over
   [jobs] domains (the caller participates as one of them). [local] is
   called once per participating domain per epoch — per-domain reusable
   scratch (bit-writer buffers, coder state) threads through here. *)
let run_epoch ~jobs ~n ~local ~run =
  if !(Domain.DLS.get in_task) then
    invalid_arg "Pool: nested dispatch (a pool task called back into the pool)";
  if n > 0 then begin
    if jobs <= 1 || n = 1 then begin
      (* serial: no domains, no queue — but the same scratch discipline *)
      let flag = Domain.DLS.get in_task in
      flag := true;
      Fun.protect
        ~finally:(fun () -> flag := false)
        (fun () ->
          let scratch = local () in
          for i = 0 to n - 1 do
            run scratch i
          done)
    end
    else begin
      let jobs = min jobs n in
      let instrument = Obs.metrics_enabled () in
      if instrument then begin
        Obs.Gauge.set g_jobs (float_of_int jobs);
        Obs.Counter.add m_tasks n;
        Obs.Counter.incr m_epochs
      end;
      let q = { qm = Mutex.create (); next = 0; limit = n } in
      let chunk = Atomic.make (max 1 (n / (jobs * 8))) in
      let failure = Atomic.make None in
      let unfinished = Atomic.make n in
      (* Account [k] items as done/skipped; the participant that zeroes
         the counter wakes the dispatcher. *)
      let account k =
        if k > 0 && Atomic.fetch_and_add unfinished (-k) = k then begin
          Mutex.lock pool.lock;
          Condition.broadcast pool.donec;
          Mutex.unlock pool.lock
        end
      in
      let participate () =
        Obs.with_span ~cat:"par" "par.worker" @@ fun () ->
        let flag = Domain.DLS.get in_task in
        flag := true;
        let busy = ref 0.0 in
        (match local () with
        | exception e ->
          ignore (Atomic.compare_and_set failure None (Some e));
          account (drain q)
        | scratch ->
          let continue_ = ref true in
          while !continue_ do
            if Atomic.get failure <> None then begin
              account (drain q);
              continue_ := false
            end
            else begin
              let i, got = draw q (Atomic.get chunk) in
              if got = 0 then continue_ := false
              else begin
                if instrument then begin
                  Obs.Counter.incr m_draws;
                  (* items still unclaimed after this draw: how far from
                     drained the queue was when this participant came
                     back for work *)
                  Obs.Histogram.observe m_queue_depth (float_of_int (q.limit - i - got))
                end;
                let t0 = Obs.now_us () in
                let k = ref i in
                let stop = i + got in
                while !k < stop && Atomic.get failure = None do
                  (match run scratch !k with
                  | () -> ()
                  | exception e ->
                    (* first failure wins; the rest of the queue is
                       skipped so the dispatch raises promptly *)
                    ignore (Atomic.compare_and_set failure None (Some e)));
                  incr k
                done;
                let elapsed = Obs.now_us () -. t0 in
                busy := !busy +. elapsed;
                adapt_chunk ~n ~jobs chunk ~elapsed_us:elapsed ~got;
                account got
              end
            end
          done);
        flag := false;
        if instrument then Obs.Histogram.observe m_worker_busy_us !busy
      in
      Mutex.lock dispatch_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock dispatch_lock)
        (fun () ->
          ensure_workers (jobs - 1);
          let ep =
            {
              e_id = Atomic.fetch_and_add epoch_counter 1;
              e_cap = Atomic.make (jobs - 1);
              e_unfinished = unfinished;
              e_participate = participate;
            }
          in
          Mutex.lock pool.lock;
          pool.current <- Some ep;
          Condition.broadcast pool.work;
          Mutex.unlock pool.lock;
          (* the dispatcher is a participant too *)
          participate ();
          Mutex.lock pool.lock;
          while Atomic.get ep.e_unfinished > 0 do
            Condition.wait pool.donec pool.lock
          done;
          pool.current <- None;
          Mutex.unlock pool.lock;
          match Atomic.get failure with
          | Some e ->
            (* an aborted dispatch: one item failed, the rest of the
               queue was skipped — the event names the culprit *)
            Ccomp_obs.Events.error
              ~fields:[ ("tasks", string_of_int n); ("error", Printexc.to_string e) ]
              "par.abort";
            raise e
          | None -> ())
    end
  end

let no_scratch () = ()

let mapi_local ?jobs ~local f a =
  let n = Array.length a in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    run_epoch ~jobs ~n ~local ~run:(fun l i -> results.(i) <- Some (f l i a.(i)));
    Array.map (function Some v -> v | None -> assert false) results
  end

let mapi ?jobs f a = mapi_local ?jobs ~local:no_scratch (fun () i x -> f i x) a

let map ?jobs f a = mapi ?jobs (fun _ x -> f x) a

let init_local ?jobs ~local n f =
  if n < 0 then invalid_arg "Pool.init: negative length"
  else if n = 0 then [||]
  else begin
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    let results = Array.make n None in
    run_epoch ~jobs ~n ~local ~run:(fun l i -> results.(i) <- Some (f l i));
    Array.map (function Some v -> v | None -> assert false) results
  end

let init ?jobs n f = init_local ?jobs ~local:no_scratch n (fun () i -> f i)

let iteri_local ?jobs ~local f a =
  let n = Array.length a in
  if n > 0 then begin
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    run_epoch ~jobs ~n ~local ~run:(fun l i -> f l i a.(i))
  end

let iter_n ?jobs ~local n f =
  if n < 0 then invalid_arg "Pool.iter_n: negative length"
  else if n > 0 then begin
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    run_epoch ~jobs ~n ~local ~run:f
  end
