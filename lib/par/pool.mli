(** Domain-based work pool for per-cache-block parallelism.

    Work items are drawn from a shared queue by [jobs] OCaml 5 domains;
    each result is stored at its input index, so the assembled output is
    deterministic and order-preserving — byte-identical to a serial run
    regardless of scheduling. With [jobs <= 1] (or a single item) no
    domain is spawned and the computation runs serially in the caller.

    The functions must not be nested (a worker must not itself call into
    the pool) and [f] must be safe to run concurrently with itself —
    true of the block codecs, which share only immutable models. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to
    in the CLIs. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [mapi ~jobs f a] is [Array.mapi f a] computed on up to [jobs]
    domains (default {!default_jobs}). If any [f] raises, one of the
    raised exceptions is re-raised after all domains join; remaining
    queued items are skipped. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] with the calls distributed over
    the pool. *)
