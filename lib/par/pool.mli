(** Persistent domain pool for per-cache-block parallelism.

    Worker domains are spawned once — lazily, sized by the largest
    [jobs] ever requested — and parked on a condition variable between
    dispatches. Each [mapi]/[init]/[iteri] call is an {e epoch}: work
    items are drawn from a shared index queue by up to [jobs]
    participating domains (the caller is one of them); each result is
    stored at its input index, so the assembled output is deterministic
    and order-preserving — byte-identical to a serial run regardless of
    scheduling. With [jobs <= 1] (or a single item) no domain is
    involved and the computation runs serially in the caller.

    Epochs are serialized across domains (a second concurrent dispatcher
    queues); a pool task must not itself dispatch — nested dispatch is
    detected and rejected with [Invalid_argument] instead of
    deadlocking. [f] must be safe to run concurrently with itself — true
    of the block codecs, which share only immutable models.

    If a task raises, the first exception wins: remaining queued items
    are skipped and the dispatch re-raises after the epoch settles. The
    pool itself stays usable for the next dispatch. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves to
    in the CLIs. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** [mapi ~jobs f a] is [Array.mapi f a] computed on up to [jobs]
    domains (default {!default_jobs}). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [Array.init n f] with the calls distributed over
    the pool. *)

val mapi_local :
  ?jobs:int -> local:(unit -> 'l) -> ('l -> int -> 'a -> 'b) -> 'a array -> 'b array
(** [mapi_local ~local f a] is {!mapi} with per-domain reusable scratch:
    [local ()] runs once per participating domain per epoch, and its
    result threads through every [f] call that domain executes — the
    hook for reusable bit-writer buffers and coder state, so the per-
    block hot path allocates nothing. [local] must produce independent
    values (they are used concurrently). *)

val init_local : ?jobs:int -> local:(unit -> 'l) -> int -> ('l -> int -> 'b) -> 'b array
(** {!init} with per-domain scratch, as {!mapi_local}. *)

val iteri_local : ?jobs:int -> local:(unit -> 'l) -> ('l -> int -> 'a -> unit) -> 'a array -> unit
(** [iteri_local ~local f a] runs [f scratch i a.(i)] for every index,
    discarding results — the zero-copy path: tasks write directly into
    disjoint spans of one shared output buffer instead of returning
    per-block strings for reassembly. *)

val iter_n : ?jobs:int -> local:(unit -> 'l) -> int -> ('l -> int -> unit) -> unit
(** [iter_n ~local n f] is {!iteri_local} over the index range [0, n)
    with no backing array. *)

val shutdown : unit -> unit
(** Join every parked worker domain and empty the pool. Safe to call at
    any quiescent point (it waits for an in-flight epoch to finish); the
    pool respawns lazily on the next dispatch. Registered [at_exit], so
    a process never exits with parked domains.
    @raise Invalid_argument when called from inside a pool task. *)

val pool_domains : unit -> int
(** Number of resident (parked or working) worker domains. *)
