(** Binary arithmetic (range) coder with 24-bit interval precision.

    This mirrors the decompressor of §3 of the paper: a 24-bit interval,
    byte-wise renormalisation, and a midpoint computed from the model's
    prediction of the next bit. The implementation is a carry-correct range
    coder (the paper's [min]/[max] pair is tracked as [low]/[range]).

    Probabilities are 12-bit integers: a prediction [p0] in
    \[1, {!scale} - 1\] states that the next bit is 0 with probability
    [p0 / scale]. Each compressed block is coded by a fresh encoder and
    terminated with {!finish}, which chooses the interval value with the
    most trailing zero bytes and truncates them — the decoder reads zeros
    past the end of its input, exactly like [get_byte] in the paper's
    pseudo-code. *)

val scale_bits : int
(** Probability resolution in bits (12). *)

val scale : int
(** [1 lsl scale_bits]. *)

val prob_of_counts : zeros:int -> ones:int -> int
(** Maximum-likelihood prediction of a 0 bit, clamped to \[1, scale-1\] so
    both symbols always remain codable. With no observations, 1/2. *)

val quantize_pow2 : int -> int
(** Constrain a prediction so the less probable symbol's probability is an
    integral power of 1/2 (the paper's shift-only hardware simplification).
    The result stays in \[1, scale-1\]. *)

module Encoder : sig
  type t

  val create : unit -> t

  val reset : t -> unit
  (** Return the encoder to its initial state, retaining its internal
      buffer storage — lets per-domain scratch encode many blocks
      without reallocating (the parallel pipeline's hot path). *)

  val encode : t -> p0:int -> int -> unit
  (** [encode e ~p0 bit] codes [bit] (0 or 1) under prediction [p0]. *)

  val finish : t -> string
  (** Terminates the stream and returns the encoded bytes (trailing zero
      bytes removed). The encoder must not be reused afterwards. *)
end

module Decoder : sig
  type t

  val create : ?pos:int -> string -> t
  (** [create data] starts decoding at byte offset [pos] (default 0). Bytes
      past the end of [data] read as zero. *)

  val decode : t -> p0:int -> int
  (** Decodes the next bit under prediction [p0]; must be called with the
      same sequence of predictions the encoder used. *)

  val decode_tree : t -> int array -> tree:int -> width:int -> int
  (** [decode_tree d probs ~tree ~width] decodes [width] bits in one
      descent of an implicit-heap prediction tree: starting from node 1,
      each bit is decoded under [probs.(tree + node)] and the node moves
      to [2*node + bit]. Returns the final node, [2^width + value] where
      [value] is the decoded bits MSB-first. Exactly equivalent to
      [width] calls of {!decode}, but the interval state stays in
      registers for the whole descent — this is the hot kernel of the
      SAMC per-block decoder. [width] must be at least 0 and
      [probs.(tree + node)] must be a valid prediction for every visited
      node (indices are not bounds-checked). *)

  val consumed_bytes : t -> int
  (** Bytes of input consumed so far (including the 3-byte priming read,
      capped at the end of data). *)
end
