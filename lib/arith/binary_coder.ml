let scale_bits = 12
let scale = 1 lsl scale_bits

let prob_of_counts ~zeros ~ones =
  let total = zeros + ones in
  if total = 0 then scale / 2
  else
    let p = (zeros * scale) + (total / 2) in
    let p = p / total in
    max 1 (min (scale - 1) p)

let quantize_pow2 p0 =
  let p0 = max 1 (min (scale - 1) p0) in
  (* Quantise the less probable symbol's probability to the nearest power
     of 1/2 (in log space), then rebuild p0. *)
  let lps = min p0 (scale - p0) in
  let rec nearest k =
    (* probability 2^-k maps to scale lsr k *)
    if k >= scale_bits then scale_bits
    else
      let hi = scale lsr k and lo = scale lsr (k + 1) in
      if lps >= lo then if hi - lps <= lps - lo then k else k + 1 else nearest (k + 1)
  in
  let k = nearest 1 in
  let q = max 1 (scale lsr k) in
  if p0 <= scale / 2 then q else scale - q

(* Interval bookkeeping shared by encoder and decoder:
   range is kept in [2^16, 2^24]; bound = (range >> scale_bits) * p0 is the
   width of the 0 branch, always in [1, range). *)
let top_value = 1 lsl 24
let renorm_limit = 1 lsl 16

let bound_of ~range ~p0 =
  assert (p0 >= 1 && p0 < scale);
  (range lsr scale_bits) * p0

module Encoder = struct
  type t = {
    mutable low : int; (* < 2^25: 24-bit window plus carry bit *)
    mutable range : int;
    mutable cache : int; (* last byte withheld for possible carry *)
    mutable started : bool; (* cache holds a real byte *)
    mutable pending : int; (* 0xff bytes withheld behind the cache *)
    buf : Buffer.t;
  }

  let create () =
    { low = 0; range = top_value; cache = 0; started = false; pending = 0; buf = Buffer.create 64 }

  (* Return a finished encoder to its initial state, keeping the byte
     buffer's storage — per-domain scratch in the parallel block
     pipeline encodes thousands of blocks through one encoder. *)
  let reset e =
    e.low <- 0;
    e.range <- top_value;
    e.cache <- 0;
    e.started <- false;
    e.pending <- 0;
    Buffer.clear e.buf

  (* Emit the byte leaving the 24-bit window, resolving carries: a carry
     increments the cached byte and turns every pending 0xff into 0x00. *)
  let shift_low e =
    let carry = e.low lsr 24 in
    if carry = 1 || e.low < 0xff0000 then begin
      (* A carry with no byte yet emitted would mean the coded value
         reached 1.0, which the low+range <= 1 invariant forbids. *)
      assert (carry = 0 || e.started);
      if e.started then Buffer.add_char e.buf (Char.chr ((e.cache + carry) land 0xff));
      let filler = (0xff + carry) land 0xff in
      for _ = 1 to e.pending do
        Buffer.add_char e.buf (Char.chr filler)
      done;
      e.pending <- 0;
      e.cache <- (e.low lsr 16) land 0xff;
      e.started <- true
    end
    else e.pending <- e.pending + 1;
    e.low <- (e.low land 0xffff) lsl 8

  let encode e ~p0 bit =
    let bound = bound_of ~range:e.range ~p0 in
    (match bit with
    | 0 -> e.range <- bound
    | 1 ->
      e.low <- e.low + bound;
      e.range <- e.range - bound
    | _ -> invalid_arg "Binary_coder.encode: bit must be 0 or 1");
    while e.range < renorm_limit do
      shift_low e;
      e.range <- e.range lsl 8
    done

  let finish e =
    (* Choose the value in [low, low+range) with the most trailing zero
       bits; its trailing zero bytes need not be stored because the decoder
       reads zeros past end of input. *)
    let hi = e.low + e.range - 1 in
    let rec choose k =
      if k = 0 then e.low
      else
        let mask = (1 lsl k) - 1 in
        let v = (e.low + mask) land lnot mask in
        if v <= hi then v else choose (k - 1)
    in
    e.low <- choose 24;
    for _ = 1 to 3 do
      shift_low e
    done;
    (* Drain what renormalisation left behind; no more carries can occur. *)
    if e.started then Buffer.add_char e.buf (Char.chr e.cache);
    for _ = 1 to e.pending do
      Buffer.add_char e.buf '\xff'
    done;
    let s = Buffer.contents e.buf in
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = '\x00' do
      decr n
    done;
    String.sub s 0 !n
end

module Decoder = struct
  type t = {
    data : string;
    mutable pos : int;
    mutable code : int; (* 24-bit window of the encoded value *)
    mutable range : int;
  }

  let next_byte d =
    let b = if d.pos < String.length d.data then Char.code d.data.[d.pos] else 0 in
    d.pos <- d.pos + 1;
    b

  let create ?(pos = 0) data =
    let d = { data; pos; code = 0; range = top_value } in
    for _ = 1 to 3 do
      d.code <- (d.code lsl 8) lor next_byte d
    done;
    d

  let decode d ~p0 =
    let bound = bound_of ~range:d.range ~p0 in
    let bit =
      if d.code < bound then begin
        d.range <- bound;
        0
      end
      else begin
        d.code <- d.code - bound;
        d.range <- d.range - bound;
        1
      end
    in
    while d.range < renorm_limit do
      d.code <- ((d.code lsl 8) lor next_byte d) land 0xffffff;
      d.range <- d.range lsl 8
    done;
    bit

  (* Batched heap descent: decode [width] bits in one call, reading each
     bit's p0 from [probs.(tree + node)] as the node walks the implicit
     heap from 1. Keeping the interval registers in locals for the whole
     descent (instead of a field round-trip per bit, which a non-flambda
     build will not optimise away) is what makes the SAMC word loop
     decode-bound rather than call-bound. *)
  let decode_tree d probs ~tree ~width =
    let data = d.data in
    let len = String.length data in
    let code = ref d.code in
    let range = ref d.range in
    let pos = ref d.pos in
    let node = ref 1 in
    for _ = 1 to width do
      let p0 = Array.unsafe_get probs (tree + !node) in
      let bound = (!range lsr scale_bits) * p0 in
      let bit =
        if !code < bound then begin
          range := bound;
          0
        end
        else begin
          code := !code - bound;
          range := !range - bound;
          1
        end
      in
      while !range < renorm_limit do
        let b = if !pos < len then Char.code (String.unsafe_get data !pos) else 0 in
        incr pos;
        code := ((!code lsl 8) lor b) land 0xffffff;
        range := !range lsl 8
      done;
      node := (2 * !node) + bit
    done;
    d.code <- !code;
    d.range <- !range;
    d.pos <- !pos;
    !node

  let consumed_bytes d = min d.pos (String.length d.data)
end
