(* Word-batched bit input: up to 62 bits of the stream are staged in an
   int accumulator so [get_bits] is a shift-and-mask instead of a per-bit
   loop. The accumulator holds the bits [pos, pos + navail) of the
   logical stream, right-aligned ([navail] significant bits). *)

type t = {
  mutable data : string;
  mutable len_bits : int;
  mutable pos : int; (* logical bit position of the next bit *)
  mutable acc : int; (* buffered bits, right-aligned *)
  mutable navail : int; (* number of buffered bits, < Sys.int_size *)
  mutable next_byte : int; (* next byte of [data] to stage *)
  mutable refills : int; (* accumulator refills that staged data *)
}

(* Constant-folded guard on the refill accounting: flip to [false] to
   compile the counter out of the hot loop entirely. The observability
   layer reads the per-instance count once per decoded block, so the
   on-cost is a single in-cache increment per ~56 staged bits. *)
let count_refills = true

(* Width bounds are real argument checks, not asserts: a width of 63
   or 64 would feed [lsl]/[lsr] shift amounts at or past [Sys.int_size],
   where OCaml's behaviour is unspecified — the mask [(1 lsl width) - 1]
   silently wraps instead of overflowing loudly. Keeping the check in
   release builds (where [assert] may be compiled out) makes every
   out-of-range width a typed [Invalid_argument] instead of garbage
   bits. *)
let check_width ~op ~max width =
  if width < 0 || width > max then
    invalid_arg (Printf.sprintf "Bit_reader.%s: width %d out of range [0, %d]" op width max)

let create ?(start_bit = 0) data =
  if start_bit < 0 then invalid_arg "Bit_reader.create: negative start_bit";
  let r =
    {
      data;
      len_bits = 8 * String.length data;
      pos = start_bit;
      acc = 0;
      navail = 0;
      next_byte = (start_bit + 7) / 8;
      refills = 0;
    }
  in
  (* An unaligned start leaves a partial byte: its low bits are the
     stream bits from [start_bit] to the byte boundary (MSB-first). *)
  let rem = start_bit land 7 in
  if rem <> 0 && start_bit / 8 < String.length data then begin
    r.acc <- Char.code data.[start_bit / 8] land ((1 lsl (8 - rem)) - 1);
    r.navail <- 8 - rem
  end;
  r

(* Rebind an existing reader to new data from bit 0 — the per-domain
   scratch path of the parallel pipeline decodes one block after another
   through a single reader record instead of allocating one per block.
   The refill count deliberately carries across blocks: the reader's
   lifetime total is what the bitio.reader.refills metric reports. *)
let reset r data =
  r.data <- data;
  r.len_bits <- 8 * String.length data;
  r.pos <- 0;
  r.acc <- 0;
  r.navail <- 0;
  r.next_byte <- 0

let pos r = r.pos

let overrun r = if r.pos > r.len_bits then r.pos - r.len_bits else 0

(* Stage whole bytes while at least one more fits below the int width. *)
let refill r =
  let len = String.length r.data in
  if count_refills && r.navail <= Sys.int_size - 9 && r.next_byte < len then
    r.refills <- r.refills + 1;
  while r.navail <= Sys.int_size - 9 && r.next_byte < len do
    r.acc <- (r.acc lsl 8) lor Char.code (String.unsafe_get r.data r.next_byte);
    r.navail <- r.navail + 8;
    r.next_byte <- r.next_byte + 1
  done

let get_bit r =
  if r.navail = 0 then refill r;
  if r.navail = 0 then begin
    r.pos <- r.pos + 1;
    0
  end
  else begin
    r.navail <- r.navail - 1;
    r.pos <- r.pos + 1;
    (r.acc lsr r.navail) land 1
  end

let rec get_bits_unchecked r width =
  if width = 0 then 0
  else if width > 32 then
    (* Two staged extractions still cover the full 63-bit range. *)
    let hi = get_bits_unchecked r (width - 32) in
    (hi lsl 32) lor get_bits_unchecked r 32
  else begin
    if r.navail < width then refill r;
    if r.navail >= width then begin
      let v = (r.acc lsr (r.navail - width)) land ((1 lsl width) - 1) in
      r.navail <- r.navail - width;
      r.pos <- r.pos + width;
      v
    end
    else begin
      (* Past the end of data: whatever is buffered, zero-extended. *)
      let have = r.navail in
      let v = r.acc land ((1 lsl have) - 1) in
      r.acc <- 0;
      r.navail <- 0;
      r.pos <- r.pos + width;
      v lsl (width - have)
    end
  end

let get_bits r width =
  check_width ~op:"get_bits" ~max:63 width;
  get_bits_unchecked r width

let peek_bits r width =
  check_width ~op:"peek_bits" ~max:32 width;
  if r.navail < width then refill r;
  if r.navail >= width then (r.acc lsr (r.navail - width)) land ((1 lsl width) - 1)
  else (r.acc land ((1 lsl r.navail) - 1)) lsl (width - r.navail)

let skip_bits r width =
  check_width ~op:"skip_bits" ~max:63 width;
  if width <= r.navail then begin
    r.navail <- r.navail - width;
    r.pos <- r.pos + width
  end
  else ignore (get_bits_unchecked r width)

let get_byte r = get_bits_unchecked r 8

let align_byte r =
  let rem = r.pos land 7 in
  if rem <> 0 then skip_bits r (8 - rem)

let remaining_bits r = if r.pos >= r.len_bits then 0 else r.len_bits - r.pos

let refills r = r.refills
