(* Word-batched bit output: bits accumulate in an int and are flushed to
   the byte buffer eight at a time, so [put_bits] is O(1) per call
   instead of per bit. [acc] holds the pending [nacc] bits right-aligned
   (MSB-first stream order); [nacc] may exceed 8 between flushes. *)

type t = { buf : Buffer.t; mutable acc : int; mutable nacc : int; mutable flushes : int }

(* Constant-folded guard on flush accounting; see Bit_reader.count_refills. *)
let count_flushes = true

let create () = { buf = Buffer.create 256; acc = 0; nacc = 0; flushes = 0 }

let bit_length w = (8 * Buffer.length w.buf) + w.nacc

let byte_length w = Buffer.length w.buf + ((w.nacc + 7) / 8)

(* Move all whole bytes from the accumulator into the buffer. *)
let flush_bytes w =
  if count_flushes && w.nacc >= 8 then w.flushes <- w.flushes + 1;
  while w.nacc >= 8 do
    w.nacc <- w.nacc - 8;
    Buffer.add_char w.buf (Char.unsafe_chr ((w.acc lsr w.nacc) land 0xff))
  done;
  w.acc <- w.acc land ((1 lsl w.nacc) - 1)

let put_bit w b =
  if b <> 0 && b <> 1 then invalid_arg (Printf.sprintf "Bit_writer.put_bit: bad bit %d" b);
  w.acc <- (w.acc lsl 1) lor b;
  w.nacc <- w.nacc + 1;
  if w.nacc >= 8 then flush_bytes w

(* Like Bit_reader, the width bound is a real argument check rather than
   an assert: widths past 62 would reach shift amounts where OCaml's
   [lsl] is unspecified, so release builds must reject them too. *)
let rec put_bits w ~value ~width =
  if width < 0 || width > 63 then
    invalid_arg (Printf.sprintf "Bit_writer.put_bits: width %d out of range [0, 63]" width);
  if width > 32 then begin
    (* Split so each half fits the accumulator headroom. *)
    put_bits w ~value:(value lsr 32) ~width:(width - 32);
    put_bits w ~value:(value land 0xffffffff) ~width:32
  end
  else if width > 0 then begin
    if w.nacc + width > Sys.int_size - 1 then flush_bytes w;
    w.acc <- (w.acc lsl width) lor (value land ((1 lsl width) - 1));
    w.nacc <- w.nacc + width;
    if w.nacc >= 8 then flush_bytes w
  end

let put_byte w byte =
  if byte < 0 || byte > 255 then
    invalid_arg (Printf.sprintf "Bit_writer.put_byte: byte %d out of range" byte);
  if w.nacc = 0 then Buffer.add_char w.buf (Char.chr byte)
  else put_bits w ~value:byte ~width:8

let align_byte w =
  let rem = w.nacc land 7 in
  if rem <> 0 then put_bits w ~value:0 ~width:(8 - rem);
  flush_bytes w

let contents w =
  flush_bytes w;
  let body = Buffer.contents w.buf in
  if w.nacc = 0 then body
  else body ^ String.make 1 (Char.chr (w.acc lsl (8 - w.nacc)))

let reset w =
  Buffer.clear w.buf;
  w.acc <- 0;
  w.nacc <- 0;
  w.flushes <- 0

let flushes w = w.flushes
