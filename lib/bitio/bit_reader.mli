(** MSB-first bit input over a string, word-batched.

    Up to 62 stream bits are staged in an int accumulator, so
    [get_bits]/[peek_bits] cost one shift-and-mask rather than one loop
    iteration per bit.

    Reading past the end of the data yields 0 bits; this mirrors the paper's
    decompressor, whose [get_byte] keeps supplying bytes after the encoded
    block ends (the encoder truncates trailing zero bytes). Use
    [overrun] to detect how far past the end a decoder has read. *)

type t

val create : ?start_bit:int -> string -> t
(** [create data] reads from the beginning of [data]; [start_bit] (default 0)
    skips that many leading bits.
    @raise Invalid_argument on a negative [start_bit]. *)

val reset : t -> string -> unit
(** [reset r data] rebinds [r] to read [data] from bit 0, reusing the
    record — the per-domain scratch path of the parallel block pipeline.
    The cumulative {!refills} count is retained (it is a lifetime
    metric), everything else restarts. *)

val pos : t -> int
(** Bit position of the next bit to be read. *)

val overrun : t -> int
(** Number of bits read past the end of the data (0 when within bounds). *)

val get_bit : t -> int
(** Next bit, or 0 past end of data. *)

val get_bits : t -> int -> int
(** [get_bits r width] reads [width] bits MSB-first. [0 <= width <= 63].
    The result is the raw bit pattern in the low [width] bits of the int;
    at [width = 63] (the full native int width) the top bit lands in the
    sign position, so the value may print as negative — compare patterns,
    not magnitudes, at that width. Bits past the end of data read as 0.
    @raise Invalid_argument when [width] is outside [0, 63] — a real
    check, not an assert, because wider widths reach shift amounts where
    OCaml's [lsl]/[lsr] are unspecified and the extraction mask wraps. *)

val peek_bits : t -> int -> int
(** [peek_bits r width] returns the next [width] bits without consuming
    them. [0 <= width <= 32]. Positions past the end of data read as 0, so
    a peek near the end is still total — this is the lookahead primitive
    of the table-driven Huffman decoder.
    @raise Invalid_argument when [width] is outside [0, 32]. *)

val skip_bits : t -> int -> unit
(** [skip_bits r width] advances past [width] bits ([0 <= width <= 63]),
    the companion to {!peek_bits}.
    @raise Invalid_argument when [width] is outside [0, 63]. *)

val get_byte : t -> int
(** Reads 8 bits. *)

val align_byte : t -> unit
(** Skips to the next byte boundary. *)

val remaining_bits : t -> int
(** Bits left before the end of data (0 when exhausted). *)

val refills : t -> int
(** Number of accumulator refills that staged data so far — the reader's
    contribution to the [bitio.reader.refills] metric. Costs one
    in-cache increment per refill; compile-time-guardable via
    [count_refills] in the implementation. *)
