(** MSB-first bit output over a growing byte buffer, word-batched.

    Bits are packed into bytes most-significant-bit first, matching the
    order in which the arithmetic coder and Huffman codecs emit code bits.
    Pending bits accumulate in an int and spill to the buffer a byte at a
    time, so [put_bits] is O(1) per call rather than O(width). *)

type t

val create : unit -> t

val bit_length : t -> int
(** Number of bits written so far. *)

val byte_length : t -> int
(** Number of bytes the current contents occupy (bits rounded up). *)

val put_bit : t -> int -> unit
(** [put_bit w b] appends bit [b] (0 or 1).
    @raise Invalid_argument on any other value. *)

val put_bits : t -> value:int -> width:int -> unit
(** [put_bits w ~value ~width] appends the [width] low bits of [value],
    most significant first. [0 <= width <= 63]. [value] is treated as a
    raw bit pattern: bits of [value] above [width] are ignored, and at
    [width = 63] the pattern may correspond to a negative int — the
    round-trip through {!Bit_reader.get_bits} preserves the pattern
    exactly.
    @raise Invalid_argument when [width] is outside [0, 63] (a real
    check, kept in release builds — see {!Bit_reader.get_bits}). *)

val put_byte : t -> int -> unit
(** Appends 8 bits.
    @raise Invalid_argument when the value is outside [0, 255]. *)

val align_byte : t -> unit
(** Pads with 0 bits to the next byte boundary (no-op when aligned). *)

val contents : t -> string
(** Byte contents; the final partial byte, if any, is zero-padded. *)

val reset : t -> unit
(** Empties the writer for reuse (also zeroes the flush count). *)

val flushes : t -> int
(** Number of accumulator-to-buffer flushes that moved data so far — the
    writer's contribution to the [bitio.writer.flushes] metric.
    Compile-time-guardable via [count_flushes] in the implementation. *)
