type t =
  | Truncated of string
  | Bad_magic
  | Bad_version of int
  | Crc_mismatch of { section : string; expected : int; got : int }
  | Invalid_code of string
  | Length_overflow of { section : string; declared : int; limit : int }
  | Step_budget_exhausted of string
  | Malformed of string

exception Error of t

let fail t = raise (Error t)

let truncated section = fail (Truncated section)

let invalid_code msg = fail (Invalid_code msg)

let to_string = function
  | Truncated section -> Printf.sprintf "truncated input in %s" section
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported version %d" v
  | Crc_mismatch { section; expected; got } ->
    Printf.sprintf "CRC mismatch in %s: expected %08x, got %08x" section expected got
  | Invalid_code msg -> Printf.sprintf "invalid code: %s" msg
  | Length_overflow { section; declared; limit } ->
    Printf.sprintf "length overflow in %s: declared %d exceeds limit %d" section declared limit
  | Step_budget_exhausted section -> Printf.sprintf "decoder step budget exhausted in %s" section
  | Malformed msg -> Printf.sprintf "malformed input: %s" msg

(* Totality boundary: every exception a decoder can raise on hostile bytes
   is folded into the typed error. Catching [Assert_failure] and
   [Division_by_zero] here is deliberate — an arithmetic-coder invariant
   broken by corrupt state must surface as a decode error, never as a
   crash of the refill engine. *)
let protect ~section f =
  match f () with
  | v -> Ok v
  | exception Error t -> Result.Error t
  | exception Invalid_argument msg -> Result.Error (Malformed (section ^ ": " ^ msg))
  | exception Failure msg -> Result.Error (Malformed (section ^ ": " ^ msg))
  | exception Not_found -> Result.Error (Malformed (section ^ ": lookup failed"))
  | exception Division_by_zero -> Result.Error (Malformed (section ^ ": division by zero"))
  | exception Assert_failure (file, line, _) ->
    Result.Error (Malformed (Printf.sprintf "%s: invariant broken at %s:%d" section file line))
