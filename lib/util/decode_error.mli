(** Typed decode errors shared by every decompression path.

    The refill-engine premise of the paper — any 32-byte block is
    independently decodable from ROM — only holds in practice if a decoder
    handed corrupted bytes fails {e totally}: it must return an error,
    never raise an unexpected exception, loop forever, or allocate without
    bound. Each decoder exposes a [_checked] entry point returning
    [(_, t) result]; internally they raise {!Error} (or legacy
    [Failure]/[Invalid_argument]), and {!protect} is the boundary that
    folds every escape hatch into a typed value. *)

type t =
  | Truncated of string  (** input ended inside the named section *)
  | Bad_magic
  | Bad_version of int
  | Crc_mismatch of { section : string; expected : int; got : int }
  | Invalid_code of string  (** an entropy code that decodes to nothing *)
  | Length_overflow of { section : string; declared : int; limit : int }
      (** a declared size that would exceed the caller's allocation cap *)
  | Step_budget_exhausted of string
      (** a decode loop ran past its worst-case legitimate step count *)
  | Malformed of string  (** any other structural violation *)

exception Error of t

val fail : t -> 'a
(** [fail e] raises {!Error}. *)

val truncated : string -> 'a
(** [truncated section] = [fail (Truncated section)]. *)

val invalid_code : string -> 'a

val to_string : t -> string

val protect : section:string -> (unit -> 'a) -> ('a, t) result
(** [protect ~section f] runs [f] and converts any raised {!Error},
    [Invalid_argument], [Failure], [Not_found], [Division_by_zero] or
    assertion failure into [Error _]; [section] prefixes untyped
    messages. This is the totality boundary of every [_checked] decoder. *)
