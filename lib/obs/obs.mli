(** Unified observability: process-wide metrics registry + span tracing.

    Counters, gauges and log-scale histograms live in one global,
    Domain-safe registry keyed by name ([make] is get-or-create, so two
    modules declaring the same name share the metric). Span tracing
    collects Chrome [trace_event] slices viewable in chrome://tracing or
    Perfetto.

    Both layers are disabled by default and cost one atomic load per
    guarded site when off. Enabling them never changes any codec output:
    instrumentation only observes.

    Threading: all operations may be called concurrently from any domain
    of the par pool. Counters and gauges are lock-free; histogram
    observation and span recording take a short mutex each, which is
    negligible at block/phase granularity. *)

val metrics_enabled : unit -> bool

val tracing_enabled : unit -> bool

val set_metrics : bool -> unit

val set_tracing : bool -> unit

val reset : unit -> unit
(** Zero every registered metric and drop all recorded trace events.
    Registrations (and the enabled switches) are kept. *)

val now_us : unit -> float
(** Wall-clock microseconds — the clock spans and the bench harness
    share. *)

module Counter : sig
  type t

  val make : string -> t
  (** Get or create the counter registered under this name. *)

  val incr : t -> unit

  val add : t -> int -> unit
  (** Counters are monotonic: a negative increment raises
      [Invalid_argument]. *)

  val value : t -> int

  val name : t -> string
end

module Gauge : sig
  type t

  val make : string -> t

  val set : t -> float -> unit

  val value : t -> float

  val name : t -> string
end

module Histogram : sig
  type t

  val make : string -> t

  val observe : t -> float -> unit
  (** Record one observation. Binned into log-scale buckets (8 per
      octave), so percentile estimates carry at most ~9% relative
      error; count/sum/min/max are exact. *)

  val count : t -> int

  val sum : t -> float

  val min_value : t -> float

  val max_value : t -> float

  val percentile : t -> float -> float
  (** [percentile h q] for [q] in \[0, 100\]: nearest-rank estimate,
      clamped into \[min, max\] (0 for an empty histogram). *)

  val cumulative_buckets : t -> (float * int) list
  (** The non-empty log-scale buckets as [(upper_bound,
      cumulative_count)] pairs in increasing bound order, always ending
      with [(infinity, count)] — the shape an OpenMetrics histogram
      exposition needs. Cumulative counts are non-decreasing. *)

  type export = { ex_count : int; ex_sum : float; ex_buckets : (float * int) list }
  (** One histogram read under one lock acquisition: [ex_buckets] is
      {!cumulative_buckets} and its final [(infinity, n)] entry always
      equals [ex_count]. Exporters must use this rather than separate
      [count]/[sum]/[cumulative_buckets] calls — with other domains
      observing concurrently, three separate reads can disagree. *)

  val export : t -> export

  val reset : t -> unit
  (** Zero this one histogram (count, sum, min/max, buckets), keeping
      its registration. For multi-iteration harnesses that reuse a
      histogram between probes. *)

  val name : t -> string
end

type metric_kind = Counter_kind | Gauge_kind | Histogram_kind

val registered_metrics : unit -> (string * metric_kind) list
(** Every metric any linked module has declared, active or not, sorted
    by name. Exporters use this to expose zero-valued series too, so a
    scrape always carries the full schema. *)

val timed : ?cat:string -> string -> (unit -> 'a) -> 'a * float
(** [timed name f] runs [f], returning its result and the elapsed time
    in seconds; when tracing is enabled the interval is also recorded as
    a complete ("ph":"X") trace slice on the calling domain's track.
    The interval is recorded (and the duration returned) even if [f]
    raises. *)

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [timed] without the duration; when tracing is disabled this is just
    [f ()] — no clock reads. *)

(** Minimal JSON values: what {!snapshot_to_json} and the trace emit,
    and what [ccomp stats] parses back. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val parse : string -> (t, string) result

  val escape : string -> string

  val member : string -> t -> t option
end

type histogram_stats = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : histogram_stats list;
}
(** Every field sorted by name; only metrics that saw activity are
    included. *)

val snapshot : unit -> snapshot

val snapshot_to_json : snapshot -> string
(** Schema ["ccomp-obs-v1"]: one object with ["counters"], ["gauges"]
    and ["histograms"] members. *)

val snapshot_of_json : string -> (snapshot, string) result

val render_table : snapshot -> string
(** Human-readable report — what [ccomp stats] prints. *)

val trace_json : unit -> string
(** All recorded spans as a Chrome trace_event JSON array. *)

val event_count : unit -> int

val write_metrics : string -> unit
(** Write [snapshot_to_json (snapshot ())] to a file. *)

val write_trace : string -> unit
