(* OpenMetrics text exposition (the Prometheus scrape format).

   Rendering works either from a live registry (every registered
   metric, zeros included, so the scraped schema never flaps between
   scrapes) or from a snapshot (whatever was active). The small parser
   at the bottom exists for the conformance tests: whatever render
   emits must parse back sample-for-sample. *)

let is_name_char ~colon c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'
  || (colon && c = ':')

let sanitize ~colon s =
  let b = Buffer.create (String.length s + 1) in
  String.iter (fun c -> Buffer.add_char b (if is_name_char ~colon c then c else '_')) s;
  let out = Buffer.contents b in
  if out = "" then "_" else if out.[0] >= '0' && out.[0] <= '9' then "_" ^ out else out

let sanitize_metric_name = sanitize ~colon:true

let sanitize_label_name = sanitize ~colon:false

let escape_label_value s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let strip_total name =
  let suffix = "_total" in
  let n = String.length name and k = String.length suffix in
  if n > k && String.sub name (n - k) k = suffix then String.sub name 0 (n - k) else name

let counter_name name = strip_total (sanitize_metric_name name) ^ "_total"

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let fmt_le v = if v = infinity then "+Inf" else fmt_value v

(* One metric family: the TYPE line plus its samples. [emitted] guards
   against two registry names sanitising to the same family — the
   first wins and later ones are skipped rather than emitting an
   exposition with duplicate families. *)
let family emitted b name kind samples =
  if not (Hashtbl.mem emitted name) then begin
    Hashtbl.add emitted name ();
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name kind);
    List.iter
      (fun (sample_name, labels, v) ->
        let label_str =
          match labels with
          | [] -> ""
          | ls ->
            "{"
            ^ String.concat ","
                (List.map
                   (fun (k, value) ->
                     Printf.sprintf "%s=\"%s\"" (sanitize_label_name k) (escape_label_value value))
                   ls)
            ^ "}"
        in
        Buffer.add_string b (Printf.sprintf "%s%s %s\n" sample_name label_str v))
      samples
  end

(* --- info metrics -------------------------------------------------------- *)

(* OpenMetrics "info" metrics: immutable build/config facts exposed as
   labels on a constant-1 sample ([name_info{version="…"} 1]). They
   live outside the numeric registry — an info metric has no value to
   aggregate — in a small locked table keyed by family name. *)

let info_mutex = Mutex.create ()

let info_table : (string, (string * string) list) Hashtbl.t = Hashtbl.create 4

let set_info name labels =
  Mutex.lock info_mutex;
  Hashtbl.replace info_table name labels;
  Mutex.unlock info_mutex

let info_metrics () =
  Mutex.lock info_mutex;
  let out = Hashtbl.fold (fun k v acc -> (k, v) :: acc) info_table [] in
  Mutex.unlock info_mutex;
  List.sort compare out

let info_family emitted b name labels =
  let fam = sanitize_metric_name name in
  family emitted b fam "info"
    [
      ( fam ^ "_info",
        List.map (fun (k, v) -> (sanitize_label_name k, v)) labels,
        "1" );
    ]

let counter_family emitted b name v =
  let fam = strip_total (sanitize_metric_name name) in
  family emitted b fam "counter" [ (fam ^ "_total", [], fmt_value v) ]

let gauge_family emitted b name v =
  let fam = sanitize_metric_name name in
  family emitted b fam "gauge" [ (fam, [], fmt_value v) ]

let histogram_family emitted b name ~buckets ~sum ~count =
  let fam = sanitize_metric_name name in
  (* cumulative counts must be non-decreasing and end at the total *)
  let buckets =
    match List.rev buckets with
    | (bound, _) :: _ when bound = infinity -> buckets
    | _ -> buckets @ [ (infinity, count) ]
  in
  family emitted b fam "histogram"
    (List.map
       (fun (le, c) -> (fam ^ "_bucket", [ ("le", fmt_le le) ], string_of_int c))
       buckets
    @ [ (fam ^ "_sum", [], fmt_value sum); (fam ^ "_count", [], string_of_int count) ])

let render_snapshot ?buckets (snap : Obs.snapshot) =
  let b = Buffer.create 2048 in
  let emitted = Hashtbl.create 64 in
  List.iter (fun (name, v) -> counter_family emitted b name (float_of_int v)) snap.Obs.counters;
  List.iter (fun (name, v) -> gauge_family emitted b name v) snap.Obs.gauges;
  List.iter
    (fun (h : Obs.histogram_stats) ->
      let bs =
        match buckets with
        | Some f -> f h.Obs.hs_name
        | None -> [ (infinity, h.Obs.hs_count) ]
      in
      histogram_family emitted b h.Obs.hs_name ~buckets:bs ~sum:h.Obs.hs_sum ~count:h.Obs.hs_count)
    snap.Obs.histograms;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let render () =
  let b = Buffer.create 4096 in
  let emitted = Hashtbl.create 64 in
  List.iter (fun (name, labels) -> info_family emitted b name labels) (info_metrics ());
  List.iter
    (fun (name, kind) ->
      match kind with
      | Obs.Counter_kind ->
        counter_family emitted b name (float_of_int (Obs.Counter.value (Obs.Counter.make name)))
      | Obs.Gauge_kind -> gauge_family emitted b name (Obs.Gauge.value (Obs.Gauge.make name))
      | Obs.Histogram_kind ->
        (* one locked read: buckets, sum and count from the same critical
           section, so the +Inf bucket always equals _count even while
           other domains are observing *)
        let e = Obs.Histogram.export (Obs.Histogram.make name) in
        histogram_family emitted b name ~buckets:e.Obs.Histogram.ex_buckets
          ~sum:e.Obs.Histogram.ex_sum ~count:e.Obs.Histogram.ex_count)
    (Obs.registered_metrics ());
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* --- parse (for conformance tests) ------------------------------------- *)

type sample = { om_name : string; om_labels : (string * string) list; om_value : float }

let parse_value s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" -> Some infinity
  | "-inf" -> Some neg_infinity
  | "nan" -> Some nan
  | _ -> float_of_string_opt s

let parse_labels s =
  (* key="value",key="value" — values use the render escapes *)
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Error msg in
  let rec go acc =
    if !pos >= n then Ok (List.rev acc)
    else begin
      let start = !pos in
      while !pos < n && s.[!pos] <> '=' do
        incr pos
      done;
      if !pos >= n then fail "label without '='"
      else begin
        let key = String.sub s start (!pos - start) in
        incr pos;
        if !pos >= n || s.[!pos] <> '"' then fail "label value not quoted"
        else begin
          incr pos;
          let b = Buffer.create 16 in
          let rec scan () =
            if !pos >= n then fail "unterminated label value"
            else
              match s.[!pos] with
              | '"' ->
                incr pos;
                Ok (Buffer.contents b)
              | '\\' when !pos + 1 < n ->
                (match s.[!pos + 1] with
                | 'n' -> Buffer.add_char b '\n'
                | c -> Buffer.add_char b c);
                pos := !pos + 2;
                scan ()
              | c ->
                Buffer.add_char b c;
                incr pos;
                scan ()
          in
          match scan () with
          | Error _ as e -> e
          | Ok value ->
            if !pos < n && s.[!pos] = ',' then begin
              incr pos;
              go ((key, value) :: acc)
            end
            else if !pos = n then Ok (List.rev ((key, value) :: acc))
            else fail "garbage after label value"
        end
      end
    end
  in
  go []

let valid_name s =
  s <> ""
  && not (s.[0] >= '0' && s.[0] <= '9')
  && String.for_all (is_name_char ~colon:true) s

let parse text =
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' text in
  let rec go acc saw_eof = function
    | [] -> if saw_eof then Ok (List.rev acc) else Error "missing # EOF terminator"
    | "" :: rest -> go acc saw_eof rest
    | line :: rest when String.length line > 0 && line.[0] = '#' ->
      go acc (saw_eof || String.trim line = "# EOF") rest
    | _ :: _ when saw_eof -> Error "samples after # EOF"
    | line :: rest ->
      let* name_part, value_part =
        match String.index_opt line ' ' with
        | None -> Error (Printf.sprintf "no value on line %S" line)
        | Some i ->
          Ok (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
      in
      let* name, labels =
        match String.index_opt name_part '{' with
        | None -> Ok (name_part, [])
        | Some i ->
          if name_part.[String.length name_part - 1] <> '}' then
            Error (Printf.sprintf "unterminated labels on line %S" line)
          else
            let* labels =
              parse_labels
                (String.sub name_part (i + 1) (String.length name_part - i - 2))
            in
            Ok (String.sub name_part 0 i, labels)
      in
      let* () =
        if valid_name name then Ok () else Error (Printf.sprintf "invalid metric name %S" name)
      in
      let* v =
        match parse_value (String.trim value_part) with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "bad value %S for %s" value_part name)
      in
      go ({ om_name = name; om_labels = labels; om_value = v } :: acc) saw_eof rest
  in
  go [] false lines
