(** Leveled, structured event log: a bounded in-process ring of
    timestamped events plus an optional JSON-lines file sink.

    Like the metrics registry, the log is off by default and every
    emission site costs one atomic load when disabled. Enabling it never
    changes any codec output — events only observe.

    Producers call {!debug}/{!info}/{!warn}/{!error} with an event name
    and optional [(key, value)] fields. Events below the configured
    {!level} are dropped; the rest land in a bounded ring (oldest
    overwritten first) and, when a sink is set, are appended to the sink
    file as one JSON object per line.

    Threading: emission and tail reads are safe from any domain. *)

type level = Debug | Info | Warn | Error

type event = {
  ev_ts_us : float;  (** {!Obs.now_us} at emission *)
  ev_level : level;
  ev_name : string;
  ev_fields : (string * string) list;
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val level : unit -> level
(** Minimum level recorded; defaults to [Debug]. *)

val set_level : level -> unit

val level_to_string : level -> string

val level_of_string : string -> level option

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (default 1024, minimum 1), keeping the newest
    events that fit. *)

val emit : ?fields:(string * string) list -> level -> string -> unit

val debug : ?fields:(string * string) list -> string -> unit

val info : ?fields:(string * string) list -> string -> unit

val warn : ?fields:(string * string) list -> string -> unit

val error : ?fields:(string * string) list -> string -> unit

val tail : ?min_level:level -> int -> event list
(** [tail n]: the most recent [min n (capacity ())] retained events,
    oldest first. [min_level] keeps only events at or above that level
    {e before} taking the newest [n] — so [tail ~min_level:Warn 5] is
    the last five warnings/errors in the ring, however much debug
    chatter arrived in between. *)

val total : unit -> int
(** Events recorded since the last {!clear} — including those the ring
    has since overwritten. *)

val dropped : unit -> int
(** Of {!total}, how many have been overwritten (ring overflow). *)

val clear : unit -> unit
(** Empty the ring and reset the counters. Keeps the enabled switch,
    level, capacity and sink. *)

val set_sink : ?max_bytes:int -> string option -> unit
(** [set_sink (Some path)] opens [path] for append and streams every
    subsequent event to it as a JSON line (flushed per event, so a
    crashed process still leaves evidence). [set_sink None] closes the
    current sink.

    The sink is size-capped: when appending the next record would push
    the file past [max_bytes] (default 16 MiB, minimum 1), the file is
    rotated to [path ^ ".1"] — replacing any earlier rotation — and a
    fresh [path] is started, so a long-running daemon holds at most
    about [2 * max_bytes] of event log on disk. An existing file's size
    counts against the cap, so rotation also triggers across restarts.
    Both the live file and the rotation keep the whole-line flush
    discipline, so {!load_sink_file}'s torn-final-line tolerance applies
    to each. *)

val load_sink_file : string -> (string list, string) result
(** Read a sink file back as its complete JSON lines. Because the sink
    flushes per event, a process killed mid-write (SIGTERM, crash) can
    tear only the {e final} line — so exactly one unparseable trailing
    line is silently dropped, while an unparseable line with valid
    records after it is corruption and returns [Error]. *)

val to_json_line : event -> string
(** One-line JSON object: [{"ts_us":…,"level":"warn","event":"…",…}]
    with each field as a string member. No trailing newline. *)

val tail_json : ?min_level:level -> int -> string
(** {!tail} rendered as newline-terminated JSON lines. *)
