(* Domain-safe OCaml runtime telemetry: per-domain GC deltas, an
   end-of-major-cycle pause estimator, and allocation-rate gauges.

   OCaml 5's [Gc.quick_stat] is cheap (no heap walk, no stop-the-world)
   and its allocation/collection counters describe the *calling
   domain*, so a delta between two reads on the same domain is exact
   for that domain's mutator. Each domain keeps its previous reading in
   domain-local storage; [sample] folds the delta into the process-wide
   [Obs] registry, which is what /metrics renders.

   Pause observation: [Gc.create_alarm] runs its callback at the end of
   every major GC cycle, on the domain that finishes it, while that
   domain's mutator is stopped. OCaml gives no direct slice duration,
   so we estimate the way userland hiccup meters do: the serve pipeline
   calls [tick] at every request-stage boundary, stamping "the mutator
   was demonstrably running now"; the alarm observes
   now - last_tick as the stall bound. Under load, ticks are hundreds
   of microseconds apart, so the estimate is tight; a stale tick
   (> [stale_tick_us], i.e. an idle domain) is skipped rather than
   booked as a giant fake pause.

   Everything is behind the registry's one-atomic-load-when-off guard:
   with metrics disabled, [probe]/[sample]/[tick] and the alarm body
   return immediately. *)

module H = Obs.Histogram

(* --- registry surface --------------------------------------------------- *)

let c_minor_collections = Obs.Counter.make "runtime.gc.minor_collections"

let c_major_collections = Obs.Counter.make "runtime.gc.major_collections"

let c_compactions = Obs.Counter.make "runtime.gc.compactions"

let c_minor_words = Obs.Counter.make "runtime.gc.minor_words"

let c_promoted_words = Obs.Counter.make "runtime.gc.promoted_words"

let c_major_words = Obs.Counter.make "runtime.gc.major_words"

let c_major_cycles = Obs.Counter.make "runtime.gc.major_cycles"

let g_heap_words = Obs.Gauge.make "runtime.gc.heap_words"

let g_top_heap_words = Obs.Gauge.make "runtime.gc.top_heap_words"

let g_space_overhead = Obs.Gauge.make "runtime.gc.space_overhead"

let g_alloc_rate = Obs.Gauge.make "runtime.alloc_rate_mbps"

let g_domains = Obs.Gauge.make "runtime.domains"

let h_major_pause = H.make "runtime.gc.major_pause_us"

let major_pause_histogram_name = "runtime.gc.major_pause_us"

(* A pause estimate is only meaningful when the mutator ticked
   recently; an idle domain's first major cycle after a quiet second
   would otherwise book the whole quiet period as a "pause". *)
let stale_tick_us = 250_000.0

(* --- per-domain state ---------------------------------------------------- *)

type delta = {
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
  d_minor_words : float;  (** words allocated on the minor heap *)
  d_promoted_words : float;  (** words that survived into the major heap *)
  d_major_words : float;  (** words allocated directly on the major heap *)
}

let delta_zero =
  {
    d_minor_collections = 0;
    d_major_collections = 0;
    d_compactions = 0;
    d_minor_words = 0.0;
    d_promoted_words = 0.0;
    d_major_words = 0.0;
  }

(* [major_words] counts promoted words too; subtracting them leaves
   direct major allocation, so d_minor_words + d_major_words is total
   words the mutator allocated. Clamp at 0 against float jitter. *)
let delta_between (a : Gc.stat) (b : Gc.stat) =
  let pos v = if v < 0.0 then 0.0 else v in
  let posi v = if v < 0 then 0 else v in
  {
    d_minor_collections = posi (b.Gc.minor_collections - a.Gc.minor_collections);
    d_major_collections = posi (b.Gc.major_collections - a.Gc.major_collections);
    d_compactions = posi (b.Gc.compactions - a.Gc.compactions);
    d_minor_words = pos (b.Gc.minor_words -. a.Gc.minor_words);
    d_promoted_words = pos (b.Gc.promoted_words -. a.Gc.promoted_words);
    d_major_words =
      pos (b.Gc.major_words -. a.Gc.major_words -. (b.Gc.promoted_words -. a.Gc.promoted_words));
  }

let words_to_mb w = w *. float_of_int (Sys.word_size / 8) /. 1e6

let alloc_mb d = words_to_mb (d.d_minor_words +. d.d_major_words)

type dstate = {
  mutable ds_last : Gc.stat;
  mutable ds_last_us : float;
  mutable ds_tick_us : float;
  mutable ds_alarm_installed : bool;
  mutable ds_counted : bool;  (** this domain already bumped runtime.domains *)
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let now = Obs.now_us () in
      {
        ds_last = Gc.quick_stat ();
        ds_last_us = now;
        ds_tick_us = now;
        ds_alarm_installed = false;
        ds_counted = false;
      })

let domains_sampling = Atomic.make 0

(* --- API ----------------------------------------------------------------- *)

let probe () = if Obs.metrics_enabled () then Some (Gc.quick_stat ()) else None

let stage_delta a b =
  match (a, b) with Some a, Some b -> delta_between a b | _ -> delta_zero

let tick () =
  if Obs.metrics_enabled () then begin
    let st = Domain.DLS.get dls in
    st.ds_tick_us <- Obs.now_us ()
  end

(* Fold this domain's growth since its previous sample into the global
   counters, refresh the gauges, return the delta. The counters are the
   sum over all sampling domains; the heap gauges are last-writer-wins,
   which is fine — every domain shares one major heap in OCaml 5. *)
let sample () =
  if not (Obs.metrics_enabled ()) then delta_zero
  else begin
    let st = Domain.DLS.get dls in
    if not st.ds_counted then begin
      st.ds_counted <- true;
      Obs.Gauge.set g_domains (float_of_int (Atomic.fetch_and_add domains_sampling 1 + 1))
    end;
    let now = Obs.now_us () in
    let cur = Gc.quick_stat () in
    let d = delta_between st.ds_last cur in
    Obs.Counter.add c_minor_collections d.d_minor_collections;
    Obs.Counter.add c_major_collections d.d_major_collections;
    Obs.Counter.add c_compactions d.d_compactions;
    Obs.Counter.add c_minor_words (int_of_float d.d_minor_words);
    Obs.Counter.add c_promoted_words (int_of_float d.d_promoted_words);
    Obs.Counter.add c_major_words (int_of_float d.d_major_words);
    Obs.Gauge.set g_heap_words (float_of_int cur.Gc.heap_words);
    Obs.Gauge.set g_top_heap_words (float_of_int cur.Gc.top_heap_words);
    Obs.Gauge.set g_space_overhead (float_of_int (Gc.get ()).Gc.space_overhead);
    let dt_s = (now -. st.ds_last_us) /. 1e6 in
    if dt_s > 1e-6 then Obs.Gauge.set g_alloc_rate (alloc_mb d /. dt_s);
    st.ds_last <- cur;
    st.ds_last_us <- now;
    st.ds_tick_us <- now;
    d
  end

(* End-of-major-cycle hook for the calling domain. Idempotent per
   domain; the alarm object lives as long as the domain, which is what
   a daemon worker wants. *)
let install_alarm () =
  let st = Domain.DLS.get dls in
  if not st.ds_alarm_installed then begin
    st.ds_alarm_installed <- true;
    ignore
      (Gc.create_alarm (fun () ->
           if Obs.metrics_enabled () then begin
             Obs.Counter.incr c_major_cycles;
             let now = Obs.now_us () in
             let stall = now -. st.ds_tick_us in
             if stall >= 0.0 && stall <= stale_tick_us then H.observe h_major_pause stall;
             st.ds_tick_us <- now
           end))
  end
