(* Structured event log: bounded ring + optional JSON-lines file sink.

   The design mirrors the metrics registry's cost contract: when the
   log is disabled, an emission site is one atomic load and nothing
   else; emission itself (rare by construction — faults, CRC failures,
   phase transitions) takes a short mutex. *)

type level = Debug | Info | Warn | Error

type event = {
  ev_ts_us : float;
  ev_level : level;
  ev_name : string;
  ev_fields : (string * string) list;
}

let on = Atomic.make false

let enabled () = Atomic.get on

let set_enabled b = Atomic.set on b

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_of_rank = function 0 -> Debug | 1 -> Info | 2 -> Warn | _ -> Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let min_level = Atomic.make (level_rank Debug)

let level () = level_of_rank (Atomic.get min_level)

let set_level l = Atomic.set min_level (level_rank l)

(* Ring state: [ring] holds the newest [len] events ending at index
   [head - 1] (mod capacity). [recorded] counts every event that made
   it past the level filter since the last clear. *)
let mutex = Mutex.create ()

let ring = ref (Array.make 1024 None)

let head = ref 0

let len = ref 0

let recorded = ref 0

(* File sink with size-capped rotation: when appending the next record
   would push the current file past [sink_max_bytes], the file is
   renamed to [path ^ ".1"] (replacing any previous rotation) and a
   fresh file is started — so a long-running daemon holds at most
   ~2x the cap on disk, and the newest events are always in [path]. *)
let sink : (out_channel * string) option ref = ref None

let default_sink_max_bytes = 16 * 1024 * 1024

let sink_max_bytes = ref default_sink_max_bytes

let sink_bytes = ref 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let capacity () = locked (fun () -> Array.length !ring)

let tail_locked n =
  let cap = Array.length !ring in
  let n = min n !len in
  let first = (!head - n + cap) mod cap in
  List.init n (fun i ->
      match !ring.((first + i) mod cap) with Some e -> e | None -> assert false)

let set_capacity n =
  let n = max 1 n in
  locked (fun () ->
      let keep = tail_locked n in
      let fresh = Array.make n None in
      List.iteri (fun i e -> fresh.(i) <- Some e) keep;
      ring := fresh;
      len := List.length keep;
      head := !len mod n)

let json_escape = Obs.Json.escape

let to_json_line e =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "{\"ts_us\":%.1f,\"level\":\"%s\",\"event\":\"%s\"" e.ev_ts_us
       (level_to_string e.ev_level)
       (json_escape e.ev_name));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
    e.ev_fields;
  Buffer.add_char b '}';
  Buffer.contents b

let emit ?(fields = []) lvl name =
  if Atomic.get on && level_rank lvl >= Atomic.get min_level then begin
    let e = { ev_ts_us = Obs.now_us (); ev_level = lvl; ev_name = name; ev_fields = fields } in
    locked (fun () ->
        let cap = Array.length !ring in
        !ring.(!head) <- Some e;
        head := (!head + 1) mod cap;
        if !len < cap then incr len;
        incr recorded;
        match !sink with
        | Some (oc, path) ->
          let line = to_json_line e in
          let n = String.length line + 1 in
          let oc =
            (* rotate before the write that would breach the cap — but
               never rotate an empty file: one record larger than the
               cap still has to land somewhere *)
            if !sink_bytes > 0 && !sink_bytes + n > !sink_max_bytes then begin
              close_out_noerr oc;
              (try Sys.rename path (path ^ ".1") with Sys_error _ -> ());
              let fresh = open_out_gen [ Open_wronly; Open_creat; Open_trunc ] 0o644 path in
              sink := Some (fresh, path);
              sink_bytes := 0;
              fresh
            end
            else oc
          in
          output_string oc line;
          output_char oc '\n';
          sink_bytes := !sink_bytes + n;
          flush oc
        | None -> ())
  end

let debug ?fields name = emit ?fields Debug name

let info ?fields name = emit ?fields Info name

let warn ?fields name = emit ?fields Warn name

let error ?fields name = emit ?fields Error name

(* Level filtering scans the whole retained ring, then keeps the newest
   [n] matches — "the last n warnings" rather than "the warnings among
   the last n events", which is what an operator filtering a noisy
   debug stream actually wants. *)
let tail ?min_level n =
  let keep =
    match min_level with
    | None -> fun _ -> true
    | Some lvl ->
      let floor = level_rank lvl in
      fun e -> level_rank e.ev_level >= floor
  in
  locked (fun () ->
      let all = tail_locked (Array.length !ring) in
      let matching = List.filter keep all in
      let n = max 0 n in
      let excess = List.length matching - n in
      if excess <= 0 then matching else List.filteri (fun i _ -> i >= excess) matching)

let total () = locked (fun () -> !recorded)

let dropped () = locked (fun () -> !recorded - !len)

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      head := 0;
      len := 0;
      recorded := 0)

let set_sink ?(max_bytes = default_sink_max_bytes) path =
  locked (fun () ->
      (match !sink with Some (oc, _) -> close_out_noerr oc | None -> ());
      sink_max_bytes := max 1 max_bytes;
      sink_bytes := 0;
      sink :=
        Option.map
          (fun p ->
            let oc = open_out_gen [ Open_append; Open_creat ] 0o644 p in
            (* appending to an existing file: its current size counts
               against the cap, or rotation would never trigger across
               daemon restarts *)
            (sink_bytes := match Unix.stat p with s -> s.Unix.st_size | exception Unix.Unix_error _ -> 0);
            (oc, p))
          path)

(* A sink file from a process killed mid-write ends in a torn line:
   the per-event flush means every earlier line is complete, but the
   final one may stop anywhere. Read-back therefore accepts exactly
   one unparseable line, and only at the end — a bad line with valid
   JSON after it is real corruption and must be reported, not
   tolerated. *)
let load_sink_file path =
  match open_in_bin path with
  | exception Sys_error e -> Result.Error e
  | ic ->
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let acc = ref [] in
          (try
             while true do
               acc := input_line ic :: !acc
             done
           with End_of_file -> ());
          List.rev !acc)
    in
    let lines = List.filter (fun l -> String.trim l <> "") lines in
    let n = List.length lines in
    let ok = ref [] and err = ref None in
    List.iteri
      (fun i line ->
        if !err = None then
          match Obs.Json.parse line with
          | Result.Ok _ -> ok := line :: !ok
          | Result.Error e ->
            if i = n - 1 then () (* torn final line: expected crash evidence *)
            else err := Some (Printf.sprintf "corrupt record on line %d: %s" (i + 1) e))
      lines;
    (match !err with Some e -> Result.Error e | None -> Result.Ok (List.rev !ok))

let tail_json ?min_level n =
  let b = Buffer.create 512 in
  List.iter
    (fun e ->
      Buffer.add_string b (to_json_line e);
      Buffer.add_char b '\n')
    (tail ?min_level n);
  Buffer.contents b
