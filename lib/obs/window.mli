(** Rolling time-window aggregation over sampled metric values.

    A {!t} holds one bounded ring of [(timestamp, value)] pairs per
    series name. A poller feeds it absolute (cumulative) values —
    typically {!of_snapshot} applied to successive {!Obs.snapshot}s —
    and reads come back as operator-grade windowed views: per-second
    rates, deltas, moving percentiles and hit ratios over the last
    [window_s] seconds.

    The clock is entirely caller-supplied ([~now], in seconds): nothing
    here reads wall time, so tests drive it with a fake clock and the
    dashboard drives it with [Obs.now_us () /. 1e6]. "The window" below
    always means [\[newest - window_s, newest\]] — relative to the most
    recent sample, not to any hidden notion of the present. *)

type t

val make : ?capacity:int -> window_s:float -> unit -> t
(** [capacity] bounds each per-series ring (default 512 samples;
    minimum 2). [window_s] must be positive. *)

val window_seconds : t -> float

val observe : t -> now:float -> (string * float) list -> unit
(** Record one sample of each named series at time [now]. Samples whose
    [now] does not advance past a series' newest timestamp are ignored
    for that series (the poller restarted, or a duplicate scrape). *)

val of_snapshot : Obs.snapshot -> (string * float) list
(** Flatten a snapshot for {!observe}: counters keep their name,
    gauges keep theirs, and each histogram contributes
    ["<name>.count"] and ["<name>.sum"] series. *)

val names : t -> string list
(** Every series observed so far, sorted. *)

val last : t -> string -> float option
(** Newest sampled value of the series. *)

val span : t -> string -> float
(** Seconds between the oldest and newest in-window samples of the
    series (0 with fewer than two samples). *)

val delta : t -> string -> float option
(** Change of a cumulative series across the window: newest value minus
    the value at the oldest in-window sample. [None] with fewer than
    two in-window samples. Counter resets (a decrease) clamp to 0. *)

val rate : t -> string -> float option
(** {!delta} per second: the windowed rate of a cumulative series. *)

val percentile : t -> string -> q:float -> float option
(** Moving nearest-rank percentile of the sampled values in the window
    — the windowed p50/p95/p99 of a sampled gauge or level. *)

val ratio : t -> string -> string -> float option
(** [ratio w hits misses]: windowed [Δhits / (Δhits + Δmisses)] — e.g.
    the decode-cache hit ratio over the last N seconds. [None] when
    either delta is unavailable or both are 0. *)
