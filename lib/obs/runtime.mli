(** Domain-safe OCaml runtime telemetry: per-domain [Gc.quick_stat]
    delta sampling, a major-GC pause estimator fed by
    [Gc.create_alarm] end-of-cycle hooks, and allocation-rate gauges.

    Registry surface (all rendered on [/metrics] via {!Openmetrics}):

    - counters [runtime.gc.minor_collections] / [.major_collections] /
      [.compactions] / [.minor_words] / [.promoted_words] /
      [.major_words] / [.major_cycles] — summed over every domain that
      calls {!sample};
    - gauges [runtime.gc.heap_words] / [.top_heap_words] /
      [.space_overhead], [runtime.alloc_rate_mbps] (MB/s allocated by
      the most recently sampling domain over its sampling interval) and
      [runtime.domains] (domains that have sampled at least once);
    - histogram [runtime.gc.major_pause_us] — estimated mutator stall
      at the end of each major cycle.

    The pause estimate is a hiccup-meter bound, not a measured slice:
    the alarm fires while the finishing domain's mutator is stopped and
    observes [now - last tick], where {!tick} (called at serve
    request-stage boundaries) stamps "the mutator was running here".
    Estimates older than ~250 ms of tick silence are discarded as
    idle-domain artifacts rather than booked as pauses.

    Every entry point is behind the registry's one-atomic-load guard:
    with {!Obs.set_metrics} off, all of these return immediately and
    observe nothing. *)

type delta = {
  d_minor_collections : int;
  d_major_collections : int;
  d_compactions : int;
  d_minor_words : float;  (** words allocated on the minor heap *)
  d_promoted_words : float;  (** words that survived into the major heap *)
  d_major_words : float;  (** words allocated directly on the major heap *)
}

val delta_zero : delta

val delta_between : Gc.stat -> Gc.stat -> delta
(** Componentwise [b - a], clamped at zero. [d_major_words] excludes
    promoted words, so [d_minor_words + d_major_words] is the total the
    mutator allocated between the two readings. *)

val alloc_mb : delta -> float
(** Megabytes allocated: [(minor + major) words * word size]. *)

val probe : unit -> Gc.stat option
(** [Some (Gc.quick_stat ())] when metrics are enabled, else [None] —
    the cheap per-stage boundary reading. *)

val stage_delta : Gc.stat option -> Gc.stat option -> delta
(** {!delta_between} over two {!probe} results; {!delta_zero} when
    either side was taken with metrics off. *)

val tick : unit -> unit
(** Stamp "this domain's mutator is running now" — feeds the pause
    estimator. Call at request-stage boundaries; one atomic load plus a
    clock read when metrics are on, one atomic load when off. *)

val sample : unit -> delta
(** Fold this domain's GC growth since its previous [sample] into the
    global counters, refresh the heap/allocation gauges, and return the
    delta. Per-domain deltas are non-negative and the global counters
    are monotone however many domains sample concurrently. *)

val install_alarm : unit -> unit
(** Install this domain's end-of-major-cycle hook (counts
    [runtime.gc.major_cycles], observes [runtime.gc.major_pause_us]).
    Idempotent per domain; each worker domain must install its own —
    OCaml 5 alarms are domain-local. *)

val major_pause_histogram_name : string
(** ["runtime.gc.major_pause_us"] — shared with consumers that read it
    back out of snapshots. *)
