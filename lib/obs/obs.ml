(* Unified observability layer: a process-wide, Domain-safe metrics
   registry (counters, gauges, log-scale histograms) plus span tracing
   that emits Chrome trace_event JSON loadable in chrome://tracing and
   Perfetto.

   Everything is off by default. Instrumented hot paths guard their
   observations behind {!metrics_enabled} — one atomic load — so the
   layer costs nothing measurable when disabled, and observation never
   influences the data path: enabling metrics or tracing leaves
   compressed output byte-identical.

   Counters are [Atomic] ints; histograms take a per-histogram mutex.
   Observation sites are block- or phase-grained (never per bit), so
   lock traffic stays negligible next to codec work even with every
   domain of the par pool publishing. *)

(* --- switches ---------------------------------------------------------- *)

let metrics_on = Atomic.make false

let tracing_on = Atomic.make false

let metrics_enabled () = Atomic.get metrics_on

let tracing_enabled () = Atomic.get tracing_on

let set_metrics b = Atomic.set metrics_on b

let set_tracing b = Atomic.set tracing_on b

let now_us () = Unix.gettimeofday () *. 1e6

(* --- metric kinds ------------------------------------------------------ *)

type counter = { c_name : string; c_value : int Atomic.t }

type gauge = { g_name : string; g_value : float Atomic.t; g_touched : bool Atomic.t }

(* Log-scale histogram: [sub] buckets per octave, so any observation is
   binned with relative error at most 2^(1/sub) - 1 (~9% at sub = 8).
   Bucket [i] covers values with log2 v in [(i - zero) / sub,
   (i - zero + 1) / sub); non-positive values clamp to bucket 0. *)
let sub = 8

let zero_bucket = 33 * sub (* log2 v down to -33 before clamping *)

let n_buckets = (33 + 63) * sub

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

(* --- registry ---------------------------------------------------------- *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_mutex = Mutex.create ()

let register name build use =
  Mutex.lock registry_mutex;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
      let m = build () in
      Hashtbl.add registry name m;
      m
  in
  Mutex.unlock registry_mutex;
  use m

module Counter = struct
  type t = counter

  let make name =
    register name
      (fun () -> M_counter { c_name = name; c_value = Atomic.make 0 })
      (function
        | M_counter c -> c
        | _ -> invalid_arg (Printf.sprintf "Obs.Counter.make: %S is not a counter" name))

  let add c by =
    if by < 0 then invalid_arg "Obs.Counter.add: counters are monotonic (negative increment)";
    ignore (Atomic.fetch_and_add c.c_value by)

  let incr c = add c 1

  let value c = Atomic.get c.c_value

  let name c = c.c_name
end

module Gauge = struct
  type t = gauge

  let make name =
    register name
      (fun () ->
        M_gauge { g_name = name; g_value = Atomic.make 0.0; g_touched = Atomic.make false })
      (function
        | M_gauge g -> g
        | _ -> invalid_arg (Printf.sprintf "Obs.Gauge.make: %S is not a gauge" name))

  let set g v =
    Atomic.set g.g_value v;
    Atomic.set g.g_touched true

  let value g = Atomic.get g.g_value

  let name g = g.g_name
end

module Histogram = struct
  type t = histogram

  let make name =
    register name
      (fun () ->
        M_histogram
          {
            h_name = name;
            h_mutex = Mutex.create ();
            h_count = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Array.make n_buckets 0;
          })
      (function
        | M_histogram h -> h
        | _ -> invalid_arg (Printf.sprintf "Obs.Histogram.make: %S is not a histogram" name))

  let bucket_of v =
    if v <= 0.0 then 0
    else
      let i = zero_bucket + int_of_float (Float.floor (Float.log2 v *. float_of_int sub)) in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

  (* Geometric midpoint of a bucket — the value reported for every
     observation that landed in it. *)
  let bucket_mid i = Float.pow 2.0 ((float_of_int (i - zero_bucket) +. 0.5) /. float_of_int sub)

  let observe h v =
    Mutex.lock h.h_mutex;
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let b = h.h_buckets in
    let i = bucket_of v in
    b.(i) <- b.(i) + 1;
    Mutex.unlock h.h_mutex

  (* The mutable fields and bucket array are only coherent under
     [h_mutex]: `_unlocked` readers are for callers that already hold it
     (and for the single-domain fast paths below, each of which takes the
     lock itself). Reading count/sum/buckets in separate unlocked steps
     from another domain is a data race — it once let an OpenMetrics
     render pair a bucket table with a count from a later observation,
     breaking the "+Inf bucket equals _count" invariant mid-scrape. *)
  let with_lock h f =
    Mutex.lock h.h_mutex;
    match f () with
    | v ->
      Mutex.unlock h.h_mutex;
      v
    | exception e ->
      Mutex.unlock h.h_mutex;
      raise e

  let count h = with_lock h (fun () -> h.h_count)

  let sum h = with_lock h (fun () -> h.h_sum)

  let min_value h = with_lock h (fun () -> if h.h_count = 0 then 0.0 else h.h_min)

  let max_value h = with_lock h (fun () -> if h.h_count = 0 then 0.0 else h.h_max)

  (* Nearest-rank percentile over the buckets, reported as the bucket's
     geometric midpoint clamped into [min, max] — exact for single-value
     histograms and within one bucket's relative error otherwise. *)
  let percentile_unlocked h q =
    if h.h_count = 0 then 0.0
    else begin
      let rank =
        let r = int_of_float (Float.ceil (q /. 100.0 *. float_of_int h.h_count)) in
        if r < 1 then 1 else if r > h.h_count then h.h_count else r
      in
      let acc = ref 0 in
      let i = ref 0 in
      while !acc < rank && !i < n_buckets do
        acc := !acc + h.h_buckets.(!i);
        incr i
      done;
      let v = bucket_mid (!i - 1) in
      Float.min h.h_max (Float.max h.h_min v)
    end

  let percentile h q = with_lock h (fun () -> percentile_unlocked h q)

  (* Upper bound of bucket [i]: the smallest value that would land in
     bucket [i + 1]. *)
  let bucket_upper i = Float.pow 2.0 (float_of_int (i + 1 - zero_bucket) /. float_of_int sub)

  let cumulative_buckets_unlocked h =
    let acc = ref [] in
    let cum = ref 0 in
    for i = 0 to n_buckets - 1 do
      let c = h.h_buckets.(i) in
      if c > 0 then begin
        cum := !cum + c;
        acc := (bucket_upper i, !cum) :: !acc
      end
    done;
    List.rev ((infinity, h.h_count) :: !acc)

  let cumulative_buckets h = with_lock h (fun () -> cumulative_buckets_unlocked h)

  (* One consistent view for exporters: buckets, sum and count all come
     from the same critical section, so an exposition built from an
     [export] can never pair a stale count with fresher buckets. *)
  type export = { ex_count : int; ex_sum : float; ex_buckets : (float * int) list }

  let export h =
    with_lock h (fun () ->
        { ex_count = h.h_count; ex_sum = h.h_sum; ex_buckets = cumulative_buckets_unlocked h })

  (* Forget every observation but keep the registration — what a
     multi-iteration harness (loadgen --ramp) needs between probes so an
     earlier probe's tail cannot pollute a later probe's percentiles. *)
  let reset h =
    with_lock h (fun () ->
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity;
        Array.fill h.h_buckets 0 n_buckets 0)

  let name h = h.h_name
end

type metric_kind = Counter_kind | Gauge_kind | Histogram_kind

let registered_metrics () =
  Mutex.lock registry_mutex;
  let all =
    Hashtbl.fold
      (fun name m acc ->
        let kind =
          match m with
          | M_counter _ -> Counter_kind
          | M_gauge _ -> Gauge_kind
          | M_histogram _ -> Histogram_kind
        in
        (name, kind) :: acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort compare all

(* --- spans -------------------------------------------------------------- *)

type event = { e_name : string; e_cat : string; e_ts : float; e_dur : float; e_tid : int }

let events : event list ref = ref []

let events_mutex = Mutex.create ()

let trace_base_us = now_us ()

let record_event e =
  Mutex.lock events_mutex;
  events := e :: !events;
  Mutex.unlock events_mutex

let timed ?(cat = "ccomp") name f =
  let t0 = now_us () in
  let finally () =
    let dt = now_us () -. t0 in
    if tracing_enabled () then
      record_event
        {
          e_name = name;
          e_cat = cat;
          e_ts = t0 -. trace_base_us;
          e_dur = dt;
          e_tid = (Domain.self () :> int);
        };
    dt
  in
  match f () with
  | v -> (v, finally () /. 1e6)
  | exception e ->
    ignore (finally ());
    raise e

let with_span ?cat name f = if tracing_enabled () then fst (timed ?cat name f) else f ()

(* --- JSON --------------------------------------------------------------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let number v =
    if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
    else Printf.sprintf "%.6g" v

  (* Recursive-descent parser for the subset ccomp emits (full JSON minus
     \u surrogate pairs, which decode to '?'). Returns a readable error
     with the offset on malformed input. *)
  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal lit value =
      if !pos + String.length lit <= n && String.sub s !pos (String.length lit) = lit then begin
        pos := !pos + String.length lit;
        value
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          let c = s.[!pos] in
          advance ();
          match c with
          | '"' -> Buffer.contents b
          | '\\' ->
            (if !pos >= n then fail "unterminated escape"
             else
               let e = s.[!pos] in
               advance ();
               match e with
               | '"' -> Buffer.add_char b '"'
               | '\\' -> Buffer.add_char b '\\'
               | '/' -> Buffer.add_char b '/'
               | 'n' -> Buffer.add_char b '\n'
               | 't' -> Buffer.add_char b '\t'
               | 'r' -> Buffer.add_char b '\r'
               | 'b' -> Buffer.add_char b '\b'
               | 'f' -> Buffer.add_char b '\012'
               | 'u' ->
                 if !pos + 4 > n then fail "truncated \\u escape";
                 let hex = String.sub s !pos 4 in
                 pos := !pos + 4;
                 (match int_of_string_opt ("0x" ^ hex) with
                 | None -> fail "bad \\u escape"
                 | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
                 | Some _ -> Buffer.add_char b '?')
               | _ -> fail "unknown escape");
            go ()
          | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> Num v
      | None -> fail "malformed number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error e -> Error e

  let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

  let to_float = function Num v -> Some v | _ -> None
end

(* --- snapshot ----------------------------------------------------------- *)

type histogram_stats = {
  hs_name : string;
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : histogram_stats list;
}

let schema = "ccomp-obs-v1"

(* Only metrics that saw activity appear in the snapshot: the registry
   holds every metric any linked module declared, most of which are
   silent in any given run. *)
let snapshot () =
  Mutex.lock registry_mutex;
  let metrics = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock registry_mutex;
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (function
      | M_counter c ->
        let v = Counter.value c in
        if v > 0 then counters := (c.c_name, v) :: !counters
      | M_gauge g -> if Atomic.get g.g_touched then gauges := (g.g_name, Gauge.value g) :: !gauges
      | M_histogram h ->
        let stats =
          Histogram.with_lock h (fun () ->
              if h.h_count = 0 then None
              else
                Some
                  {
                    hs_name = h.h_name;
                    hs_count = h.h_count;
                    hs_sum = h.h_sum;
                    hs_min = h.h_min;
                    hs_max = h.h_max;
                    hs_p50 = Histogram.percentile_unlocked h 50.0;
                    hs_p95 = Histogram.percentile_unlocked h 95.0;
                    hs_p99 = Histogram.percentile_unlocked h 99.0;
                  })
        in
        (match stats with Some s -> histograms := s :: !histograms | None -> ()))
    metrics;
  {
    counters = List.sort compare !counters;
    gauges = List.sort compare !gauges;
    histograms = List.sort (fun a b -> compare a.hs_name b.hs_name) !histograms;
  }

let snapshot_to_json snap =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"schema\": \"%s\",\n" schema);
  Buffer.add_string b "  \"counters\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": %d" (if i = 0 then "" else ",") (Json.escape name) v))
    snap.counters;
  Buffer.add_string b (if snap.counters = [] then "},\n" else "\n  },\n");
  Buffer.add_string b "  \"gauges\": {";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string b
        (Printf.sprintf "%s\n    \"%s\": %s" (if i = 0 then "" else ",") (Json.escape name)
           (Json.number v)))
    snap.gauges;
  Buffer.add_string b (if snap.gauges = [] then "},\n" else "\n  },\n");
  Buffer.add_string b "  \"histograms\": {";
  List.iteri
    (fun i h ->
      Buffer.add_string b
        (Printf.sprintf
           "%s\n    \"%s\": { \"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": %s, \
            \"p95\": %s, \"p99\": %s }"
           (if i = 0 then "" else ",")
           (Json.escape h.hs_name) h.hs_count (Json.number h.hs_sum) (Json.number h.hs_min)
           (Json.number h.hs_max) (Json.number h.hs_p50) (Json.number h.hs_p95)
           (Json.number h.hs_p99)))
    snap.histograms;
  Buffer.add_string b (if snap.histograms = [] then "}\n" else "\n  }\n");
  Buffer.add_string b "}\n";
  Buffer.contents b

let snapshot_of_json s =
  let ( let* ) = Result.bind in
  let* json = Json.parse s in
  let* () =
    match Json.member "schema" json with
    | Some (Json.Str v) when v = schema -> Ok ()
    | Some (Json.Str v) -> Error (Printf.sprintf "unsupported schema %S (expected %S)" v schema)
    | _ -> Error "missing \"schema\" field"
  in
  let section name =
    match Json.member name json with
    | Some (Json.Obj fields) -> Ok fields
    | None -> Ok []
    | Some _ -> Error (Printf.sprintf "field %S is not an object" name)
  in
  let* counters = section "counters" in
  let* counters =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match Json.to_float v with
        | Some f -> Ok ((k, int_of_float f) :: acc)
        | None -> Error (Printf.sprintf "counter %S is not a number" k))
      (Ok []) counters
  in
  let* gauges = section "gauges" in
  let* gauges =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        match Json.to_float v with
        | Some f -> Ok ((k, f) :: acc)
        | None -> Error (Printf.sprintf "gauge %S is not a number" k))
      (Ok []) gauges
  in
  let* histograms = section "histograms" in
  let* histograms =
    List.fold_left
      (fun acc (k, v) ->
        let* acc = acc in
        let field name =
          match Json.member name v with
          | Some (Json.Num f) -> Ok f
          | _ -> Error (Printf.sprintf "histogram %S lacks numeric field %S" k name)
        in
        let* count = field "count" in
        let* sum = field "sum" in
        let* mn = field "min" in
        let* mx = field "max" in
        let* p50 = field "p50" in
        let* p95 = field "p95" in
        let* p99 = field "p99" in
        Ok
          ({
             hs_name = k;
             hs_count = int_of_float count;
             hs_sum = sum;
             hs_min = mn;
             hs_max = mx;
             hs_p50 = p50;
             hs_p95 = p95;
             hs_p99 = p99;
           }
          :: acc))
      (Ok []) histograms
  in
  Ok
    {
      counters = List.sort compare (List.rev counters);
      gauges = List.sort compare (List.rev gauges);
      histograms = List.sort (fun a b -> compare a.hs_name b.hs_name) (List.rev histograms);
    }

let render_table snap =
  let b = Buffer.create 1024 in
  if snap.counters <> [] then begin
    Buffer.add_string b "counters:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-44s %14d\n" name v))
      snap.counters
  end;
  if snap.gauges <> [] then begin
    Buffer.add_string b "gauges:\n";
    List.iter
      (fun (name, v) -> Buffer.add_string b (Printf.sprintf "  %-44s %14.4g\n" name v))
      snap.gauges
  end;
  if snap.histograms <> [] then begin
    Buffer.add_string b "histograms:\n";
    Buffer.add_string b
      (Printf.sprintf "  %-34s %9s %10s %10s %10s %10s %10s\n" "" "count" "mean" "p50" "p95" "p99"
         "max");
    List.iter
      (fun h ->
        Buffer.add_string b
          (Printf.sprintf "  %-34s %9d %10.4g %10.4g %10.4g %10.4g %10.4g\n" h.hs_name h.hs_count
             (h.hs_sum /. float_of_int (max 1 h.hs_count))
             h.hs_p50 h.hs_p95 h.hs_p99 h.hs_max))
      snap.histograms
  end;
  if Buffer.length b = 0 then Buffer.add_string b "no metrics recorded\n";
  Buffer.contents b

(* --- trace export ------------------------------------------------------- *)

let trace_json () =
  Mutex.lock events_mutex;
  let evs = List.rev !events in
  Mutex.unlock events_mutex;
  let pid = Unix.getpid () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  List.iteri
    (fun i e ->
      Buffer.add_string b
        (Printf.sprintf
           "%s\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d}"
           (if i = 0 then "" else ",")
           (Json.escape e.e_name) (Json.escape e.e_cat) e.e_ts e.e_dur pid e.e_tid))
    evs;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

let event_count () =
  Mutex.lock events_mutex;
  let n = List.length !events in
  Mutex.unlock events_mutex;
  n

(* --- lifecycle ---------------------------------------------------------- *)

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Atomic.set c.c_value 0
      | M_gauge g ->
        Atomic.set g.g_value 0.0;
        Atomic.set g.g_touched false
      | M_histogram h ->
        Mutex.lock h.h_mutex;
        h.h_count <- 0;
        h.h_sum <- 0.0;
        h.h_min <- infinity;
        h.h_max <- neg_infinity;
        Array.fill h.h_buckets 0 n_buckets 0;
        Mutex.unlock h.h_mutex)
    registry;
  Mutex.unlock registry_mutex;
  Mutex.lock events_mutex;
  events := [];
  Mutex.unlock events_mutex

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc data)

let write_metrics path = write_file path (snapshot_to_json (snapshot ()))

let write_trace path = write_file path (trace_json ())
