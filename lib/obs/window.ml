(* Rolling-window aggregation: one circular buffer of timestamped
   samples per series, windowed reads computed against the newest
   sample's timestamp. Pure data structure — the caller owns the clock,
   which is what makes the rate/percentile tests deterministic. *)

type series = {
  buf : (float * float) array; (* (ts, value), circular *)
  mutable start : int;
  mutable count : int;
}

type t = { window_s : float; capacity : int; series : (string, series) Hashtbl.t }

let make ?(capacity = 512) ~window_s () =
  if window_s <= 0.0 then invalid_arg "Window.make: window_s must be positive";
  { window_s; capacity = max 2 capacity; series = Hashtbl.create 32 }

let window_seconds w = w.window_s

let nth s i = s.buf.((s.start + i) mod Array.length s.buf)

let newest s = nth s (s.count - 1)

let push w name ~now v =
  let s =
    match Hashtbl.find_opt w.series name with
    | Some s -> s
    | None ->
      let s = { buf = Array.make w.capacity (0.0, 0.0); start = 0; count = 0 } in
      Hashtbl.add w.series name s;
      s
  in
  if s.count > 0 && now <= fst (newest s) then ()
  else begin
    let cap = Array.length s.buf in
    if s.count = cap then begin
      (* ring full: overwrite the oldest *)
      s.buf.(s.start) <- (now, v);
      s.start <- (s.start + 1) mod cap
    end
    else begin
      s.buf.((s.start + s.count) mod cap) <- (now, v);
      s.count <- s.count + 1
    end
  end

let observe w ~now samples = List.iter (fun (name, v) -> push w name ~now v) samples

let of_snapshot (snap : Obs.snapshot) =
  List.map (fun (n, v) -> (n, float_of_int v)) snap.Obs.counters
  @ snap.Obs.gauges
  @ List.concat_map
      (fun (h : Obs.histogram_stats) ->
        [ (h.Obs.hs_name ^ ".count", float_of_int h.Obs.hs_count); (h.Obs.hs_name ^ ".sum", h.Obs.hs_sum) ])
      snap.Obs.histograms

let names w =
  List.sort compare (Hashtbl.fold (fun name _ acc -> name :: acc) w.series [])

let find w name = Hashtbl.find_opt w.series name

(* Index of the oldest sample still inside [newest_ts - window_s,
   newest_ts]. *)
let oldest_in_window w s =
  let horizon = fst (newest s) -. w.window_s in
  let i = ref 0 in
  while !i < s.count - 1 && fst (nth s !i) < horizon do
    incr i
  done;
  !i

let last w name =
  match find w name with
  | Some s when s.count > 0 -> Some (snd (newest s))
  | _ -> None

let span w name =
  match find w name with
  | Some s when s.count >= 2 -> fst (newest s) -. fst (nth s (oldest_in_window w s))
  | _ -> 0.0

let windowed_ends w name =
  match find w name with
  | Some s when s.count >= 2 ->
    let first = oldest_in_window w s in
    if first >= s.count - 1 then None else Some (nth s first, newest s)
  | _ -> None

let delta w name =
  match windowed_ends w name with
  | Some ((_, v0), (_, v1)) -> Some (Float.max 0.0 (v1 -. v0))
  | None -> None

let rate w name =
  match windowed_ends w name with
  | Some ((t0, v0), (t1, v1)) when t1 > t0 -> Some (Float.max 0.0 (v1 -. v0) /. (t1 -. t0))
  | _ -> None

let percentile w name ~q =
  match find w name with
  | Some s when s.count > 0 ->
    let first = oldest_in_window w s in
    let n = s.count - first in
    let values = Array.init n (fun i -> snd (nth s (first + i))) in
    Array.sort compare values;
    let rank =
      let r = int_of_float (Float.ceil (q /. 100.0 *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    Some values.(rank - 1)
  | _ -> None

let ratio w hits misses =
  match (delta w hits, delta w misses) with
  | Some h, Some m when h +. m > 0.0 -> Some (h /. (h +. m))
  | _ -> None
