(** Prometheus/OpenMetrics text exposition of the metrics registry —
    what a scrape of [ccomp serve]'s [/metrics] endpoint returns.

    Dotted registry names are sanitised into the OpenMetrics alphabet
    ([a-zA-Z0-9_:], no leading digit), counters gain the [_total]
    suffix, and histograms are exposed as cumulative [_bucket{le="…"}]
    series plus [_sum]/[_count]. The exposition ends with [# EOF] as
    the OpenMetrics spec requires. *)

val sanitize_metric_name : string -> string
(** Map every character outside [[a-zA-Z0-9_:]] to ['_'] and prefix
    ['_'] if the result would start with a digit (["" ] becomes
    ["_"]). *)

val sanitize_label_name : string -> string
(** Like {!sanitize_metric_name} but [':'] is also mapped to ['_']
    (colons are invalid in label names). *)

val escape_label_value : string -> string
(** Escape ['\\'], ['"'] and newline for use inside
    [label="…"]. *)

val counter_name : string -> string
(** Sanitised name with exactly one [_total] suffix. *)

val render_snapshot :
  ?buckets:(string -> (float * int) list) -> Obs.snapshot -> string
(** Render a snapshot. [buckets name] supplies the cumulative bucket
    list for histogram [name] (as {!Obs.Histogram.cumulative_buckets});
    when absent, histograms carry only the [+Inf] bucket. *)

val set_info : string -> (string * string) list -> unit
(** [set_info name labels] declares (or replaces) an OpenMetrics info
    metric: build/config facts exposed as labels on a constant-1 sample.
    {!render} emits it as [# TYPE name info] followed by
    [name_info{label="value",…} 1]. Label names are sanitised and
    values escaped; safe from any domain. *)

val info_metrics : unit -> (string * (string * string) list) list
(** Every info metric declared with {!set_info}, sorted by name. *)

val render : unit -> string
(** Render the live registry — every registered metric, including ones
    still at zero, so the exposed schema is stable across scrapes. Info
    metrics declared with {!set_info} lead the exposition. *)

type sample = { om_name : string; om_labels : (string * string) list; om_value : float }

val parse : string -> (sample list, string) result
(** Parse an exposition back into its samples: comment lines are
    skipped (a missing [# EOF] terminator is an error), every other
    line must be [name[{labels}] value]. Supports the subset {!render}
    emits — enough for conformance round-trip tests. *)
