module Coder = Ccomp_arith.Binary_coder
module Obs = Ccomp_obs.Obs

(* Observability: per-block compress/decompress latency and size
   metrics, and the per-stream bits-in/bits-out split behind the paper's
   Tables 1-3 (each stream's share of the instruction word vs the
   arithmetic-coded bits it costs under the trained model). All
   observation is guarded by [Obs.metrics_enabled] and never touches the
   coded bits: output is byte-identical with metrics on or off. *)
let m_c_blocks = Obs.Counter.make "samc.compress.blocks"

let m_c_bytes_in = Obs.Counter.make "samc.compress.bytes_in"

let m_c_bytes_out = Obs.Counter.make "samc.compress.bytes_out"

let m_c_block_us = Obs.Histogram.make "samc.compress.block_us"

let m_c_block_ratio = Obs.Histogram.make "samc.compress.block_ratio"

let m_d_blocks = Obs.Counter.make "samc.decompress.blocks"

let m_d_bytes_in = Obs.Counter.make "samc.decompress.bytes_in"

let m_d_bytes_out = Obs.Counter.make "samc.decompress.bytes_out"

let m_d_block_us = Obs.Histogram.make "samc.decompress.block_us"

type config = {
  word_bits : int;
  streams : Stream_split.t;
  context_bits : int;
  quantize : bool;
  prune_below : int;
  block_size : int;
}

let mips_config ?(block_size = 32) ?(context_bits = 2) ?(quantize = false) ?(prune_below = 0)
    ?streams () =
  let streams =
    match streams with Some s -> s | None -> Stream_split.consecutive ~word_bits:32 ~streams:4
  in
  { word_bits = 32; streams; context_bits; quantize; prune_below; block_size }

let byte_config ?(block_size = 32) ?(context_bits = 2) ?(quantize = false) ?(prune_below = 0) () =
  {
    word_bits = 8;
    streams = Stream_split.consecutive ~word_bits:8 ~streams:1;
    context_bits;
    quantize;
    prune_below;
    block_size;
  }

let validate_config c =
  if c.word_bits mod 8 <> 0 || c.word_bits <= 0 || c.word_bits > 64 then
    Error "word_bits must be a positive multiple of 8, at most 64"
  else if c.block_size <= 0 || c.block_size * 8 mod c.word_bits <> 0 then
    Error "block_size must hold a whole number of words"
  else if c.prune_below < 0 then Error "prune_below must be non-negative"
  else if Array.exists (fun s -> Array.length s > 16) c.streams then
    Error "streams wider than 16 bits need oversized trees"
  else
    match Stream_split.validate ~word_bits:c.word_bits c.streams with
    | Ok () -> Ok ()
    | Error e -> Error e

type compressed = {
  config : config;
  model : Markov_model.t;
  blocks : string array;
  original_size : int;
}

let word_bytes c = c.word_bits / 8

let words_per_block c = c.block_size * 8 / c.word_bits

let block_count c ~code_bytes =
  let wb = word_bytes c in
  let words = code_bytes / wb in
  let wpb = words_per_block c in
  (words + wpb - 1) / wpb

let get_word c code word_index =
  let wb = word_bytes c in
  let base = word_index * wb in
  let rec go acc i = if i = wb then acc else go ((acc lsl 8) lor Char.code code.[base + i]) (i + 1) in
  go 0 0

(* Walk one word through the model, calling [visit stream ctx node bit]
   for every coded bit; returns the context for the next word. *)
let walk_word c word ~ctx visit =
  let ctx_mask = (1 lsl c.context_bits) - 1 in
  let current_ctx = ref ctx in
  Array.iteri
    (fun s positions ->
      let node = ref 1 in
      let value = ref 0 in
      Array.iter
        (fun pos ->
          let bit = (word lsr (c.word_bits - 1 - pos)) land 1 in
          visit s !current_ctx !node bit;
          node := (2 * !node) + bit;
          value := (!value lsl 1) lor bit)
        positions;
      current_ctx := !value land ctx_mask)
    c.streams;
  !current_ctx

let train c code =
  let trainer = Markov_model.Trainer.create ~widths:(Stream_split.widths c.streams) ~context_bits:c.context_bits in
  let words = String.length code / word_bytes c in
  let wpb = words_per_block c in
  let ctx = ref 0 in
  for wi = 0 to words - 1 do
    if wi mod wpb = 0 then ctx := 0;
    ctx :=
      walk_word c (get_word c code wi) ~ctx:!ctx (fun stream ctx node bit ->
          Markov_model.Trainer.note trainer ~stream ~ctx ~node bit)
  done;
  Markov_model.Trainer.finalize ~quantize:c.quantize ~prune_below:c.prune_below trainer

(* Per-stream cost accounting under the trained model (metrics-only
   pass, so the encode hot loop stays untouched): bits_in counts the
   stream's raw bits, bits_out the ideal arithmetic-code length
   [sum -log2 p(bit)] — the per-stream in/out split of Tables 1-3. The
   ideal length differs from the shipped size only by per-block coder
   flush rounding. *)
let note_stream_costs c model code =
  let words = String.length code / word_bytes c in
  let wpb = words_per_block c in
  let n_streams = Array.length c.streams in
  let bits_in = Array.make n_streams 0 in
  let bits_out = Array.make n_streams 0.0 in
  let fscale = float_of_int Coder.scale in
  let ctx = ref 0 in
  for wi = 0 to words - 1 do
    if wi mod wpb = 0 then ctx := 0;
    ctx :=
      walk_word c (get_word c code wi) ~ctx:!ctx (fun s ctx node bit ->
          let p0 = Markov_model.p0 model ~stream:s ~ctx ~node in
          let p = if bit = 0 then p0 else Coder.scale - p0 in
          bits_in.(s) <- bits_in.(s) + 1;
          bits_out.(s) <- bits_out.(s) -. Float.log2 (float_of_int p /. fscale))
  done;
  for s = 0 to n_streams - 1 do
    Obs.Counter.add (Obs.Counter.make (Printf.sprintf "samc.stream%d.bits_in" s)) bits_in.(s);
    Obs.Counter.add
      (Obs.Counter.make (Printf.sprintf "samc.stream%d.bits_out" s))
      (int_of_float (Float.round bits_out.(s)));
    if bits_in.(s) > 0 then
      Obs.Gauge.set
        (Obs.Gauge.make (Printf.sprintf "samc.stream%d.ratio" s))
        (bits_out.(s) /. float_of_int bits_in.(s))
  done

(* Encode one block through a caller-owned encoder with the per-image
   tables already hoisted — the parallel path reuses one encoder per
   domain and builds the tables once per image, not per 32-byte block. *)
let encode_block_with encoder c ~flat ~base ~widths code ~first_word ~n_words =
  Coder.Encoder.reset encoder;
  let n_streams = Array.length c.streams in
  let ctx_mask = (1 lsl c.context_bits) - 1 in
  let ctx = ref 0 in
  for wi = first_word to first_word + n_words - 1 do
    let word = get_word c code wi in
    for s = 0 to n_streams - 1 do
      let positions = Array.unsafe_get c.streams s in
      let w = Array.unsafe_get widths s in
      let tree = Array.unsafe_get base s + (!ctx lsl w) in
      let node = ref 1 in
      for k = 0 to w - 1 do
        let bit = (word lsr (c.word_bits - 1 - Array.unsafe_get positions k)) land 1 in
        Coder.Encoder.encode encoder ~p0:(Array.unsafe_get flat (tree + !node)) bit;
        node := (2 * !node) + bit
      done;
      (* After w steps the heap index is 2^w + value, so the decoded
         stream value needs no separate accumulator. *)
      ctx := (!node - (1 lsl w)) land ctx_mask
    done
  done;
  Coder.Encoder.finish encoder

let compress ?(jobs = 1) c code =
  Obs.with_span ~cat:"samc" "samc.compress" @@ fun () ->
  (match validate_config c with Ok () -> () | Error e -> invalid_arg ("Samc.compress: " ^ e));
  if String.length code mod word_bytes c <> 0 then
    invalid_arg "Samc.compress: code size is not a multiple of the word size";
  let model = Obs.with_span ~cat:"samc" "samc.train" (fun () -> train c code) in
  let instrument = Obs.metrics_enabled () in
  if instrument then note_stream_costs c model code;
  let words = String.length code / word_bytes c in
  let wpb = words_per_block c in
  let wb = word_bytes c in
  let nblocks = block_count c ~code_bytes:(String.length code) in
  (* Blocks restart the coder and context, so each encodes independently;
     the pool reassembles in block order, keeping the output
     byte-identical to a serial run. The per-image tables are hoisted
     out of the block loop and each domain reuses one encoder. *)
  let flat = Markov_model.flat_probs model in
  let base =
    Array.init (Array.length c.streams) (fun s -> Markov_model.tree_offset model ~stream:s ~ctx:0)
  in
  let widths = Array.map Array.length c.streams in
  let blocks =
    Obs.with_span ~cat:"samc" "samc.encode" @@ fun () ->
    Ccomp_par.Pool.init_local ~jobs nblocks
      ~local:(fun () -> Coder.Encoder.create ())
      (fun encoder b ->
        let first_word = b * wpb in
        let n_words = min wpb (words - first_word) in
        if not instrument then encode_block_with encoder c ~flat ~base ~widths code ~first_word ~n_words
        else begin
          let t0 = Obs.now_us () in
          let blk = encode_block_with encoder c ~flat ~base ~widths code ~first_word ~n_words in
          Obs.Histogram.observe m_c_block_us (Obs.now_us () -. t0);
          Obs.Counter.incr m_c_blocks;
          Obs.Counter.add m_c_bytes_in (n_words * wb);
          Obs.Counter.add m_c_bytes_out (String.length blk);
          Obs.Histogram.observe m_c_block_ratio
            (float_of_int (String.length blk) /. float_of_int (n_words * wb));
          blk
        end)
  in
  { config = c; model; blocks; original_size = String.length code }

(* Decode hot loop: the model is read through its flat probability array
   (one load per bit instead of three pointer chases), and each stream's
   bits are decoded by one {!Coder.Decoder.decode_tree} descent — the
   interval registers stay local for the whole stream instead of a call
   per bit, and the stream's value falls out of the final heap index.
   The per-image tables (tree offsets, shift translations) are hoisted
   into a plan so the full-image path builds them once, not per 32-byte
   block. *)
type decode_plan = {
  p_wb : int;
  p_ctx_mask : int;
  p_flat : int array;
  p_base : int array;
  p_widths : int array;
  p_shifts : int array array;
  p_low_shift : int array;  (** single-shift placement, -1 = scatter *)
}

let decode_plan c model =
  let n_streams = Array.length c.streams in
  let shifts = Array.map (Array.map (fun pos -> c.word_bits - 1 - pos)) c.streams in
  (* A stream whose positions are consecutive (every default config)
     lands in the word with a single shift of its value; [-1] marks the
     general scatter case. *)
  let low_shift =
    Array.map
      (fun shift_s ->
        let w = Array.length shift_s in
        let contiguous = ref (w > 0) in
        for k = 1 to w - 1 do
          if shift_s.(k) <> shift_s.(0) - k then contiguous := false
        done;
        if !contiguous then shift_s.(w - 1) else -1)
      shifts
  in
  {
    p_wb = word_bytes c;
    p_ctx_mask = (1 lsl c.context_bits) - 1;
    p_flat = Markov_model.flat_probs model;
    p_base = Array.init n_streams (fun s -> Markov_model.tree_offset model ~stream:s ~ctx:0);
    p_widths = Array.map Array.length c.streams;
    p_shifts = shifts;
    p_low_shift = low_shift;
  }

(* Decode one block's words into [out] starting at byte [pos] — the
   zero-copy kernel: the full-image path points every block at its slice
   of one shared buffer instead of allocating per-block strings and
   concatenating. [pos] must leave room for [n_words] words. *)
let decompress_block_planned_into p out ~pos ~n_words data =
  let wb = p.p_wb in
  let decoder = Coder.Decoder.create data in
  let flat = p.p_flat in
  let n_streams = Array.length p.p_widths in
  let ctx_mask = p.p_ctx_mask in
  let ctx = ref 0 in
  for wi = 0 to n_words - 1 do
    let word = ref 0 in
    for s = 0 to n_streams - 1 do
      let w = Array.unsafe_get p.p_widths s in
      let tree = Array.unsafe_get p.p_base s + (!ctx lsl w) in
      let node = Coder.Decoder.decode_tree decoder flat ~tree ~width:w in
      let value = node - (1 lsl w) in
      let lo = Array.unsafe_get p.p_low_shift s in
      if lo >= 0 then word := !word lor (value lsl lo)
      else begin
        let shift_s = Array.unsafe_get p.p_shifts s in
        for k = 0 to w - 1 do
          if (value lsr (w - 1 - k)) land 1 = 1 then
            word := !word lor (1 lsl Array.unsafe_get shift_s k)
        done
      end;
      ctx := value land ctx_mask
    done;
    let word = !word in
    for j = 0 to wb - 1 do
      Bytes.unsafe_set out (pos + (wi * wb) + j)
        (Char.unsafe_chr ((word lsr (8 * (wb - 1 - j))) land 0xff))
    done
  done

let decompress_block_planned p ~original_bytes data =
  let wb = p.p_wb in
  if original_bytes mod wb <> 0 then
    invalid_arg "Samc.decompress_block: size not a multiple of the word size";
  let out = Bytes.create original_bytes in
  decompress_block_planned_into p out ~pos:0 ~n_words:(original_bytes / wb) data;
  Bytes.unsafe_to_string out

let decompress_block c model ~original_bytes data =
  decompress_block_planned (decode_plan c model) ~original_bytes data

(* The original pointer-chasing kernel, kept as the reference
   implementation: equivalence tests pin the fast path to it, and the
   benchmark harness reports both so the LUT/flat speedup stays
   measured. *)
let decompress_block_ref c model ~original_bytes data =
  let wb = word_bytes c in
  if original_bytes mod wb <> 0 then
    invalid_arg "Samc.decompress_block_ref: size not a multiple of the word size";
  let n_words = original_bytes / wb in
  let decoder = Coder.Decoder.create data in
  let out = Bytes.create original_bytes in
  let ctx_mask = (1 lsl c.context_bits) - 1 in
  let ctx = ref 0 in
  for wi = 0 to n_words - 1 do
    let word = ref 0 in
    Array.iteri
      (fun s positions ->
        let node = ref 1 in
        let value = ref 0 in
        Array.iter
          (fun pos ->
            let p0 = Markov_model.p0 model ~stream:s ~ctx:!ctx ~node:!node in
            let bit = Coder.Decoder.decode decoder ~p0 in
            node := (2 * !node) + bit;
            value := (!value lsl 1) lor bit;
            if bit = 1 then word := !word lor (1 lsl (c.word_bits - 1 - pos)))
          positions;
        ctx := !value land ctx_mask)
      c.streams;
    for j = 0 to wb - 1 do
      Bytes.set out ((wi * wb) + j) (Char.chr ((!word lsr (8 * (wb - 1 - j))) land 0xff))
    done
  done;
  Bytes.to_string out

let decompress_block_parallel c model ~original_bytes data =
  let wb = word_bytes c in
  if original_bytes mod wb <> 0 then
    invalid_arg "Samc.decompress_block_parallel: size not a multiple of the word size";
  let n_words = original_bytes / wb in
  let engine = Ccomp_arith.Nibble_decoder.create data in
  let out = Bytes.create original_bytes in
  let ctx_mask = (1 lsl c.context_bits) - 1 in
  let ctx = ref 0 in
  for wi = 0 to n_words - 1 do
    let word = ref 0 in
    Array.iteri
      (fun s positions ->
        let width = Array.length positions in
        let node = ref 1 in
        let value = ref 0 in
        let done_ = ref 0 in
        (* Fig. 5 decodes 4 bits per step; stream boundaries reset the
           tree walk, so steps never straddle a stream. *)
        while !done_ < width do
          let step = min 4 (width - !done_) in
          let base_node = !node in
          let p0 ~prefix ~width:w =
            (* probability memory addressed by already-decoded bits *)
            let node_for_prefix = (base_node lsl w) lor prefix in
            Markov_model.p0 model ~stream:s ~ctx:!ctx ~node:node_for_prefix
          in
          let bits = Ccomp_arith.Nibble_decoder.decode_bits engine ~n:step ~p0 in
          for k = step - 1 downto 0 do
            let bit = (bits lsr k) land 1 in
            let pos = positions.(!done_) in
            if bit = 1 then word := !word lor (1 lsl (c.word_bits - 1 - pos));
            value := (!value lsl 1) lor bit;
            incr done_
          done;
          node := (base_node lsl step) lor bits
        done;
        ctx := !value land ctx_mask)
      c.streams;
    for j = 0 to wb - 1 do
      Bytes.set out ((wi * wb) + j) (Char.chr ((!word lsr (8 * (wb - 1 - j))) land 0xff))
    done
  done;
  (Bytes.to_string out, Ccomp_arith.Nibble_decoder.midpoint_evaluations engine)

let decompress ?(jobs = 1) t =
  Obs.with_span ~cat:"samc" "samc.decompress" @@ fun () ->
  let c = t.config in
  let wpb = words_per_block c in
  let wb = word_bytes c in
  if t.original_size mod wb <> 0 then
    invalid_arg "Samc.decompress: size not a multiple of the word size";
  let words = t.original_size / wb in
  let plan = decode_plan c t.model in
  let instrument = Obs.metrics_enabled () in
  (* Every block decodes into its disjoint slice of one shared output
     buffer — no per-block strings, no final concat. *)
  let out = Bytes.create t.original_size in
  Ccomp_par.Pool.iteri_local ~jobs
    ~local:(fun () -> ())
    (fun () b data ->
      let n_words = min wpb (words - (b * wpb)) in
      let pos = b * wpb * wb in
      if not instrument then decompress_block_planned_into plan out ~pos ~n_words data
      else begin
        let t0 = Obs.now_us () in
        decompress_block_planned_into plan out ~pos ~n_words data;
        Obs.Histogram.observe m_d_block_us (Obs.now_us () -. t0);
        Obs.Counter.incr m_d_blocks;
        Obs.Counter.add m_d_bytes_in (String.length data);
        Obs.Counter.add m_d_bytes_out (n_words * wb)
      end)
    t.blocks;
  Bytes.unsafe_to_string out

let decompress_checked ?max_output t =
  Ccomp_util.Decode_error.protect ~section:"samc" (fun () ->
      (match max_output with
      | Some limit when t.original_size > limit ->
        Ccomp_util.Decode_error.fail
          (Length_overflow { section = "samc"; declared = t.original_size; limit })
      | Some _ | None -> ());
      decompress t)

let code_bytes t = Array.fold_left (fun acc b -> acc + String.length b) 0 t.blocks

let model_bytes t = Markov_model.storage_bytes t.model

let ratio t = float_of_int (code_bytes t) /. float_of_int t.original_size

let ratio_with_model t =
  float_of_int (code_bytes t + model_bytes t) /. float_of_int t.original_size

(* --- serialization --------------------------------------------------- *)

let add_u16 b v =
  assert (v >= 0 && v < 65536);
  Buffer.add_char b (Char.chr (v lsr 8));
  Buffer.add_char b (Char.chr (v land 0xff))

let add_u32 b v =
  assert (v >= 0 && v < 1 lsl 32);
  add_u16 b (v lsr 16);
  add_u16 b (v land 0xffff)

let serialize t =
  let c = t.config in
  let b = Buffer.create (code_bytes t + model_bytes t + 64) in
  Buffer.add_char b (Char.chr c.word_bits);
  Buffer.add_char b (Char.chr (Array.length c.streams));
  Array.iter
    (fun stream ->
      Buffer.add_char b (Char.chr (Array.length stream));
      Array.iter (fun pos -> Buffer.add_char b (Char.chr pos)) stream)
    c.streams;
  Buffer.add_char b (Char.chr c.context_bits);
  Buffer.add_char b (Char.chr (if c.quantize then 1 else 0));
  add_u16 b c.prune_below;
  add_u16 b c.block_size;
  add_u32 b t.original_size;
  let model = Markov_model.serialize t.model in
  add_u32 b (String.length model);
  Buffer.add_string b model;
  add_u32 b (Array.length t.blocks);
  Array.iter
    (fun blk ->
      add_u16 b (String.length blk);
      Buffer.add_string b blk)
    t.blocks;
  Buffer.contents b

let deserialize s ~pos =
  let p = ref pos in
  let fail () = invalid_arg "Samc.deserialize: truncated input" in
  let byte () =
    if !p >= String.length s then fail ();
    let v = Char.code s.[!p] in
    incr p;
    v
  in
  let u16 () =
    let hi = byte () in
    (hi lsl 8) lor byte ()
  in
  let u32 () =
    let hi = u16 () in
    (hi lsl 16) lor u16 ()
  in
  let take n =
    if !p + n > String.length s then fail ();
    let sub = String.sub s !p n in
    p := !p + n;
    sub
  in
  let word_bits = byte () in
  let n_streams = byte () in
  let streams =
    Array.init n_streams (fun _ ->
        let w = byte () in
        Array.init w (fun _ -> byte ()))
  in
  let context_bits = byte () in
  let quantize = byte () = 1 in
  let prune_below = u16 () in
  let block_size = u16 () in
  let config = { word_bits; streams; context_bits; quantize; prune_below; block_size } in
  (match validate_config config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Samc.deserialize: " ^ e));
  let original_size = u32 () in
  let model_len = u32 () in
  let model, _ = Markov_model.deserialize (take model_len) ~pos:0 in
  let nblocks = u32 () in
  (* Validate the declared counts before allocating anything sized by
     them: each block costs at least its 2-byte length prefix, so a count
     the remaining bytes cannot hold is corruption, not a large image. *)
  if nblocks > (String.length s - !p) / 2 then fail ();
  if nblocks <> block_count config ~code_bytes:original_size then
    invalid_arg "Samc.deserialize: block count mismatch";
  let blocks =
    Array.init nblocks (fun _ ->
        let len = u16 () in
        take len)
  in
  ({ config; model; blocks; original_size }, !p)

let deserialize_checked s ~pos =
  Ccomp_util.Decode_error.protect ~section:"samc.deserialize" (fun () -> deserialize s ~pos)

(* Byte ranges inside [serialize t], for section-targeted fault injection
   and per-block integrity. Mirrors the layout [serialize] writes. *)
let model_span t =
  let c = t.config in
  let header =
    1 + 1
    + Array.fold_left (fun acc stream -> acc + 1 + Array.length stream) 0 c.streams
    + 1 + 1 + 2 + 2 + 4 + 4
  in
  (header, Markov_model.storage_bytes t.model)

let block_spans t =
  let model_off, model_len = model_span t in
  let off = ref (model_off + model_len + 4) in
  Array.map
    (fun blk ->
      off := !off + 2;
      let o = !off in
      off := o + String.length blk;
      (o, String.length blk))
    t.blocks
