(** SADC — Semiadaptive Dictionary Compression (§4).

    ISA-dependent: instructions are split into an opcode stream and
    ISA-specific operand streams. A per-program dictionary of at most 256
    entries is grown iteratively; each round counts three candidate kinds —
    adjacent token pairs, adjacent token triples, and opcodes specialised to
    a specific operand value (e.g. [jr $31]) — inserts the one with the
    largest gain, re-parses the program greedily and repeats (the paper's
    generate-and-reparse loop, §4.1). All streams are finally Huffman
    coded. Every cache block is parsed and coded independently so the
    refill engine can decompress blocks in isolation. *)

type config = {
  block_size : int;  (** cache block size in bytes *)
  max_entries : int;  (** dictionary size bound (paper: 256) *)
  max_rounds : int;  (** safety bound on generate-and-reparse rounds *)
}

val default_config : ?block_size:int -> ?max_entries:int -> ?max_rounds:int -> unit -> config

type dict_stats = {
  entries : int;  (** dictionary entries in use *)
  base_entries : int;  (** plain single opcodes *)
  group_entries : int;  (** multi-opcode groups *)
  specialized_entries : int;  (** opcodes with absorbed operands *)
  longest_group : int;  (** primitives in the longest group *)
  rounds : int;  (** generate-and-reparse rounds executed *)
}

module Make (I : Sadc_isa.S) : sig
  type primitive = {
    sym : int;  (** base opcode symbol *)
    fixed : (int * int * int) list;  (** (stream, pull position, value) absorbed operands *)
  }

  type entry = { prims : primitive array }

  type compressed

  val compress : ?jobs:int -> config -> I.instr list -> compressed
  (** Build the dictionary and encode the program. Dictionary and table
      construction are global and run serially; [jobs] (default 1) fans
      the per-block entropy coding over that many domains with
      byte-identical output. *)

  val compress_image : ?jobs:int -> config -> string -> compressed
  (** Parse a byte image with [I.parse] first.
      @raise Invalid_argument if the image does not decode. *)

  val block_count : compressed -> int

  val block_original_bytes : compressed -> int -> int

  val block_payload_bytes : compressed -> int -> int
  (** Compressed size of one block's payload (the LAT entry length). *)

  val decompress_block : compressed -> int -> I.instr list
  (** Decode one block from only its own payload (dictionary and Huffman
      tables are program-global, like the hardware's dictionary memory). *)

  val decompress : ?jobs:int -> compressed -> string
  (** Whole-image reconstruction; equals the original image. [jobs]
      (default 1) fans per-block decoding over that many domains. *)

  val dictionary : compressed -> entry array

  val stats : compressed -> dict_stats

  val code_bytes : compressed -> int
  (** Sum of per-block payload bytes. *)

  val dict_bytes : compressed -> int
  (** Serialized dictionary size. *)

  val tables_bytes : compressed -> int
  (** Serialized Huffman length-table size. *)

  val original_size : compressed -> int

  val ratio : compressed -> float
  (** code bytes / original bytes (figure metric; see DESIGN.md). *)

  val ratio_with_tables : compressed -> float
  (** (code + dictionary + tables) / original. *)

  val serialize : compressed -> string
  (** Self-contained wire form: dictionary, Huffman tables and per-block
      payloads. *)

  val deserialize : string -> pos:int -> compressed * int
  (** Inverse of {!serialize}.
      @raise Invalid_argument on malformed input. *)

  val decompress_checked :
    ?max_output:int -> compressed -> (string, Ccomp_util.Decode_error.t) result
  (** Total variant of {!decompress}: corrupted payloads yield [Error],
      never an exception or an unbounded decode loop (each block decode
      carries a step budget). [max_output] bounds the declared
      [original_size] with [Length_overflow]. *)

  val deserialize_checked :
    string -> pos:int -> (compressed * int, Ccomp_util.Decode_error.t) result
  (** Total variant of {!deserialize}. *)

  val block_payload : compressed -> int -> string
  (** One block's compressed payload bytes (what the per-block CRC of a
      SECF v2 image covers). *)

  val tables_span : compressed -> int * int
  (** [(offset, length)] of the dictionary + Huffman tables inside
      {!serialize}'s output — the fault injector's "tables" target. *)

  val block_spans : compressed -> (int * int) array
  (** Per-block [(offset, length)] of each payload inside {!serialize}'s
      output (excluding the 4-byte per-block prefixes). *)

  module For_tests : sig
    val build_naive : config -> I.instr list -> entry array * int
    (** Dictionary and round count from the full-rescan reference builder
        (canonical largest-gain / smallest-key selection). *)

    val build_incremental : ?check:bool -> config -> I.instr list -> entry array * int
    (** Dictionary and round count from the production incremental
        builder. [check] (default false) re-derives every candidate count
        by full rescan at the start of each round and raises on any
        disagreement with the incrementally maintained counts. *)
  end
end

module Mips : module type of Make (Sadc_isa.Mips_streams)
module X86 : module type of Make (Sadc_isa.X86_streams)

module X86_fields : module type of Make (Sadc_isa.X86_field_streams)
(** The §5 "more careful stream subdivision" variant (experiment E9). *)
