(** ISA adapters for SADC (§4).

    SADC is generic over how an instruction set splits into an opcode
    symbol plus operand streams. An adapter names the operand streams,
    gives each one an item bit-width, extracts items from instructions,
    and can reconstruct an instruction by pulling items back on demand
    (the operand-length unit + instruction generator of Fig. 6). *)

module type S = sig
  type instr

  val name : string

  val base_symbols : int
  (** Size of the base opcode alphabet (before dictionary augmentation). *)

  val symbol : instr -> int
  (** Base opcode symbol in \[0, base_symbols). *)

  val stream_count : int

  val stream_bits : int array
  (** Item width of each operand stream, in bits. *)

  val stream_names : string array

  val items : instr -> int list array
  (** Operand items per stream, in the order {!read} pulls them. *)

  val byte_length : instr -> int

  val read : symbol:int -> next:(int -> int) -> instr
  (** [read ~symbol ~next] rebuilds an instruction, calling [next s] to
      pull the next item of stream [s]; pulls exactly the items that
      {!items} lists for the result.
      @raise Invalid_argument on an unknown symbol or malformed pulls. *)

  val read_into : symbol:int -> next:(int -> int) -> Bytes.t -> int -> int
  (** [read_into ~symbol ~next buf pos] decodes one instruction with the
      same pulls as {!read} but writes its encoded bytes directly at
      [buf.(pos)], returning the byte length — the zero-copy decode
      path. Fixed-width ISAs implement it without constructing an
      [instr] at all, so a block decode allocates nothing per
      instruction.
      @raise Invalid_argument on an unknown symbol, out-of-range pulled
      items, or an out-of-bounds write. *)

  val encode_list : instr list -> string

  val parse : string -> instr list option
end

module Mips_streams : S with type instr = Ccomp_isa.Mips.t
(** MIPS (§5): register stream (5-bit items, including shift amounts),
    16-bit immediate stream, 26-bit long-immediate stream. *)

module X86_streams : S with type instr = Ccomp_isa.X86.t
(** x86 (§5): ModRM+SIB stream and immediate+displacement stream, both
    byte-wide. Two-byte (0x0F-map) opcodes are symbols 256..511. *)

module X86_field_streams : S with type instr = Ccomp_isa.X86.t
(** The finer subdivision §5 conjectures would "improve compression but
    complicate the decompressor": ModRM and SIB are split into their
    architectural fields — mod (2 bits), reg (3), rm (3), scale (2),
    index (3), base (3) — each with its own stream and Huffman code;
    displacement and immediate bytes share one byte stream. Experiment E9
    tests the conjecture. *)
