(** Binary Markov trees driving the SAMC arithmetic coder (§3, Fig. 3/4).

    One complete binary tree per (stream, context) pair. A tree for a
    [w]-bit stream has [2^w - 1] internal nodes, each holding the
    probability that the next bit is 0 — exactly the [(2^{w+1} - 2) / 2]
    stored probabilities of the paper. {e Connected} trees (Fig. 4) are
    modelled by the context: the tree used for a stream is selected by the
    last [context_bits] bits of the previously coded stream, giving the
    "limited memory between streams" of §3; [context_bits = 0] recovers
    fully independent trees.

    Nodes use heap indexing: the root is node 1 and bit [b] moves from
    node [n] to node [2n + b]; after [w] steps the walk restarts at the
    root for the next stream. *)

type t
(** A trained (immutable) model. *)

module Trainer : sig
  type model := t

  type t

  val create : widths:int array -> context_bits:int -> t
  (** Fresh zeroed counts for streams of the given widths. Widths must be
      in \[1, 16\] and [context_bits] in \[0, 8\]. *)

  val note : t -> stream:int -> ctx:int -> node:int -> int -> unit
  (** [note t ~stream ~ctx ~node bit] counts one observed bit at a tree
      position. *)

  val finalize : ?quantize:bool -> ?prune_below:int -> t -> model
  (** Convert counts to 12-bit probabilities. [quantize] (default false)
      constrains the less probable symbol to a power of 1/2 so the decoder
      needs only shifts (§3 end). [prune_below] (default 0) drops nodes
      observed fewer than that many times: a pruned node backs off to its
      parent's prediction and is not stored, shrinking the model memory —
      the §6 future-work direction of tuning the model to the program. *)
end

val widths : t -> int array

val context_bits : t -> int

val contexts : t -> int
(** [2 ^ context_bits]. *)

val quantized : t -> bool

val p0 : t -> stream:int -> ctx:int -> node:int -> int
(** Prediction (probability of 0 scaled by {!Ccomp_arith.Binary_coder.scale})
    at a tree position. *)

val flat_probs : t -> int array
(** The whole model as one flat probability array for the decode hot
    loop: the tree for a (stream, context) pair starts at
    {!tree_offset} and is heap-indexed within ([offset + node]), so
    [flat_probs t).(tree_offset t ~stream ~ctx + node)] equals
    [p0 t ~stream ~ctx ~node] with a single load. The returned array is
    the model's own storage — do not mutate it. *)

val tree_offset : t -> stream:int -> ctx:int -> int
(** Base index of one (stream, context) tree inside {!flat_probs}. *)

val probability_count : t -> int
(** Total number of tree positions,
    [contexts * sum_i (2^{w_i} - 1)]. *)

val retained_count : t -> int
(** Positions that actually store a probability (equals
    {!probability_count} for unpruned models). *)

val pruned : t -> bool

val serialize : t -> string
(** Compact wire form: header + probabilities packed at 12 bits each
    (5 bits each when quantized — a sign bit plus the shift amount).
    Pruned models store a retention bitmap plus only the retained
    probabilities. *)

val deserialize : string -> pos:int -> t * int

val storage_bytes : t -> int
(** [String.length (serialize t)] — the model storage a compressed image
    must ship. *)
