module type S = sig
  type instr

  val name : string
  val base_symbols : int
  val symbol : instr -> int
  val stream_count : int
  val stream_bits : int array
  val stream_names : string array
  val items : instr -> int list array
  val byte_length : instr -> int
  val read : symbol:int -> next:(int -> int) -> instr
  val read_into : symbol:int -> next:(int -> int) -> Bytes.t -> int -> int
  val encode_list : instr list -> string
  val parse : string -> instr list option
end

module Mips_streams = struct
  module M = Ccomp_isa.Mips

  type instr = M.t

  let name = "mips"
  let base_symbols = M.opcode_count
  let symbol = M.opcode_id
  let stream_count = 3
  let stream_bits = [| 5; 16; 26 |]
  let stream_names = [| "register"; "immediate"; "long-immediate" |]

  let items i =
    let opt = function Some v -> [ v ] | None -> [] in
    [| M.operand_regs i; opt (M.immediate i); opt (M.long_immediate i) |]

  let byte_length _ = 4

  let read ~symbol ~next =
    if symbol < 0 || symbol >= base_symbols then invalid_arg "Mips_streams.read: bad symbol";
    let spec = M.specs.(symbol) in
    let regs = List.init (M.reg_arity spec) (fun _ -> next 0) in
    let imm = if M.has_immediate spec then Some (next 1) else None in
    let limm = if M.has_long_immediate spec then Some (next 2) else None in
    M.reassemble spec ~regs ~imm ~limm

  (* Range guards for pulled items: stream chunk widths bound every
     Huffman-decoded value, but a hostile dictionary can absorb an
     out-of-range fixed operand — reject it like [M.make] would. *)
  let r5 v = if v lsr 5 = 0 then v else invalid_arg "Mips_streams.read_into: register out of range"

  let i16 v =
    if v lsr 16 = 0 then v else invalid_arg "Mips_streams.read_into: immediate out of range"

  let t26 v = if v lsr 26 = 0 then v else invalid_arg "Mips_streams.read_into: target out of range"

  (* Fused generator + encoder: pulls operands in exactly {!read}'s order
     but packs the 32-bit word directly — no [M.t], no operand lists, no
     options. This is what makes the SADC block decoder allocation-free
     per instruction. *)
  let read_into ~symbol ~next buf pos =
    if symbol < 0 || symbol >= base_symbols then invalid_arg "Mips_streams.read: bad symbol";
    let spec = M.specs.(symbol) in
    let fields =
      match spec.M.operands with
      | M.Op_none -> 0
      | M.Op_rd_rs_rt | M.Op_rd_rt_rs ->
        let rs = r5 (next 0) in
        let rt = r5 (next 0) in
        let rd = r5 (next 0) in
        (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11)
      | M.Op_rd_rt_shamt ->
        let rt = r5 (next 0) in
        let rd = r5 (next 0) in
        let shamt = r5 (next 0) in
        (rt lsl 16) lor (rd lsl 11) lor (shamt lsl 6)
      | M.Op_rs_rt ->
        let rs = r5 (next 0) in
        let rt = r5 (next 0) in
        (rs lsl 21) lor (rt lsl 16)
      | M.Op_rd -> r5 (next 0) lsl 11
      | M.Op_rs -> r5 (next 0) lsl 21
      | M.Op_rd_rs ->
        let rs = r5 (next 0) in
        let rd = r5 (next 0) in
        (rs lsl 21) lor (rd lsl 11)
      | M.Op_rt_rs_imm | M.Op_rt_base_offset | M.Op_rs_rt_branch ->
        let rs = r5 (next 0) in
        let rt = r5 (next 0) in
        let imm = i16 (next 1) in
        (rs lsl 21) lor (rt lsl 16) lor imm
      | M.Op_rt_imm ->
        let rt = r5 (next 0) in
        let imm = i16 (next 1) in
        (rt lsl 16) lor imm
      | M.Op_rs_branch ->
        let rs = r5 (next 0) in
        let imm = i16 (next 1) in
        (rs lsl 21) lor imm
      | M.Op_target -> t26 (next 2)
    in
    let w = M.skeleton spec lor fields in
    Bytes.set buf pos (Char.unsafe_chr ((w lsr 24) land 0xff));
    Bytes.set buf (pos + 1) (Char.unsafe_chr ((w lsr 16) land 0xff));
    Bytes.set buf (pos + 2) (Char.unsafe_chr ((w lsr 8) land 0xff));
    Bytes.set buf (pos + 3) (Char.unsafe_chr (w land 0xff));
    4

  let encode_list = M.encode_program

  let parse code =
    if String.length code mod 4 <> 0 then None
    else
      let decoded = M.decode_program code in
      let ok = Array.for_all Option.is_some decoded in
      if ok then Some (Array.to_list (Array.map Option.get decoded)) else None
end

module X86_streams = struct
  module X = Ccomp_isa.X86

  type instr = X.t

  let name = "x86"
  let base_symbols = 512
  let symbol i = match X.second_opcode i with None -> X.opcode_symbol i | Some b -> 256 + b
  let stream_count = 2
  let stream_bits = [| 8; 8 |]
  let stream_names = [| "modrm-sib"; "imm-disp" |]

  let bytes_to_items s = List.init (String.length s) (fun k -> Char.code s.[k])

  let items i =
    let _, ms, id = X.streams i in
    [| bytes_to_items ms; bytes_to_items id |]

  let byte_length = X.length

  let opcode_of_symbol symbol =
    if symbol < 256 then String.make 1 (Char.chr symbol)
    else Printf.sprintf "\x0f%c" (Char.chr (symbol - 256))

  let read ~symbol ~next =
    if symbol < 0 || symbol >= base_symbols then invalid_arg "X86_streams.read: bad symbol";
    match
      X.read_streams ~opcode:(opcode_of_symbol symbol)
        ~next_modrm_sib:(fun () -> next 0)
        ~next_imm_disp:(fun () -> next 1)
    with
    | Some i -> i
    | None -> invalid_arg "X86_streams.read: unknown opcode"

  (* Variable-width ISA: rebuild the instruction, then blit its encoding.
     (The allocation-free fast path only matters for the fixed-width
     MIPS decoder; x86 keeps the simple composition.) *)
  let read_into ~symbol ~next buf pos =
    let s = X.encode (read ~symbol ~next) in
    let n = String.length s in
    Bytes.blit_string s 0 buf pos n;
    n

  let encode_list = X.encode_program

  let parse = X.decode_program
end

module X86_field_streams = struct
  module X = Ccomp_isa.X86

  type instr = X.t

  let name = "x86-fields"
  let base_symbols = 512
  let symbol = X86_streams.symbol
  let stream_count = 7
  let stream_bits = [| 2; 3; 3; 2; 3; 3; 8 |]
  let stream_names = [| "mod"; "reg"; "rm"; "scale"; "index"; "base"; "disp-imm" |]

  let items i =
    let modrm_fields =
      match i.X.modrm with
      | Some m -> ([ m lsr 6 ], [ (m lsr 3) land 7 ], [ m land 7 ])
      | None -> ([], [], [])
    in
    let sib_fields =
      match i.X.sib with
      | Some s -> ([ s lsr 6 ], [ (s lsr 3) land 7 ], [ s land 7 ])
      | None -> ([], [], [])
    in
    let md, reg, rm = modrm_fields in
    let scale, index, base = sib_fields in
    let bytes s = List.init (String.length s) (fun k -> Char.code s.[k]) in
    [| md; reg; rm; scale; index; base; bytes i.X.disp @ bytes i.X.imm |]

  let byte_length = X.length

  (* Reassemble ModRM/SIB bytes from field pulls: the first modrm-sib byte
     the sequencer requests is the ModRM, the second (if any) the SIB. *)
  let read ~symbol ~next =
    if symbol < 0 || symbol >= base_symbols then invalid_arg "X86_field_streams.read: bad symbol";
    let ms_calls = ref 0 in
    let next_modrm_sib () =
      incr ms_calls;
      (* bind pulls explicitly: operand evaluation order is unspecified *)
      if !ms_calls = 1 then begin
        let md = next 0 in
        let reg = next 1 in
        let rm = next 2 in
        (md lsl 6) lor (reg lsl 3) lor rm
      end
      else begin
        let scale = next 3 in
        let index = next 4 in
        let base = next 5 in
        (scale lsl 6) lor (index lsl 3) lor base
      end
    in
    match
      X.read_streams
        ~opcode:(X86_streams.opcode_of_symbol symbol)
        ~next_modrm_sib
        ~next_imm_disp:(fun () -> next 6)
    with
    | Some i -> i
    | None -> invalid_arg "X86_field_streams.read: unknown opcode"

  let read_into ~symbol ~next buf pos =
    let s = X.encode (read ~symbol ~next) in
    let n = String.length s in
    Bytes.blit_string s 0 buf pos n;
    n

  let encode_list = X.encode_program

  let parse = X.decode_program
end
