module Coder = Ccomp_arith.Binary_coder
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader

type t = {
  widths : int array;
  context_bits : int;
  quantized : bool;
  (* probs.(stream).(ctx).(node), node in [1, 2^w - 1]; slot 0 unused.
     Pruned nodes hold their parent's (inherited) value. *)
  probs : int array array array;
  (* retained.(stream).(ctx).(node): the node stores its own probability;
     all-true for unpruned models. *)
  retained : bool array array array;
  (* Flattened copy of [probs] for the decode hot loop: the tree for
     (stream, ctx) occupies [flat] at offset
     [stream_base.(stream) + ctx lsl widths.(stream)], heap-indexed as
     usual, so the per-bit lookup is one array load instead of three. *)
  flat : int array;
  stream_base : int array;
}

let flatten ~widths ~context_bits probs =
  let contexts = 1 lsl context_bits in
  let stream_base = Array.make (Array.length widths) 0 in
  let total = ref 0 in
  Array.iteri
    (fun s w ->
      stream_base.(s) <- !total;
      total := !total + (contexts lsl w))
    widths;
  let flat = Array.make !total 0 in
  Array.iteri
    (fun s per_ctx ->
      Array.iteri
        (fun c nodes ->
          Array.blit nodes 0 flat (stream_base.(s) + (c lsl widths.(s))) (Array.length nodes))
        per_ctx)
    probs;
  (flat, stream_base)

let make ~widths ~context_bits ~quantized ~probs ~retained =
  let flat, stream_base = flatten ~widths ~context_bits probs in
  { widths; context_bits; quantized; probs; retained; flat; stream_base }

let check_params ~widths ~context_bits =
  if Array.length widths = 0 then invalid_arg "Markov_model: no streams";
  Array.iter
    (fun w -> if w < 1 || w > 16 then invalid_arg "Markov_model: stream width out of [1,16]")
    widths;
  if context_bits < 0 || context_bits > 8 then
    invalid_arg "Markov_model: context_bits out of [0,8]"

module Trainer = struct
  type t = {
    widths : int array;
    context_bits : int;
    zeros : int array array array;
    totals : int array array array;
  }

  let create ~widths ~context_bits =
    check_params ~widths ~context_bits;
    let contexts = 1 lsl context_bits in
    let alloc () =
      Array.map (fun w -> Array.init contexts (fun _ -> Array.make (1 lsl w) 0)) widths
    in
    { widths = Array.copy widths; context_bits; zeros = alloc (); totals = alloc () }

  let note t ~stream ~ctx ~node bit =
    let z = t.zeros.(stream).(ctx) and tot = t.totals.(stream).(ctx) in
    tot.(node) <- tot.(node) + 1;
    if bit = 0 then z.(node) <- z.(node) + 1

  let finalize ?(quantize = false) ?(prune_below = 0) t =
    let prob z tot =
      let p = Coder.prob_of_counts ~zeros:z ~ones:(tot - z) in
      if quantize then Coder.quantize_pow2 p else p
    in
    let probs =
      Array.mapi
        (fun s per_ctx ->
          Array.mapi
            (fun c zeros -> Array.mapi (fun node z -> prob z t.totals.(s).(c).(node)) zeros)
            per_ctx)
        t.zeros
    in
    let retained =
      Array.mapi
        (fun s per_ctx ->
          Array.mapi
            (fun c _ ->
              Array.init (Array.length t.totals.(s).(c)) (fun node ->
                  node = 1 || (node > 1 && t.totals.(s).(c).(node) >= prune_below)))
            per_ctx)
        t.zeros
    in
    (* back off: a pruned node inherits its parent's prediction *)
    Array.iteri
      (fun s per_ctx ->
        Array.iteri
          (fun c nodes ->
            for node = 2 to Array.length nodes - 1 do
              if not retained.(s).(c).(node) then nodes.(node) <- nodes.(node / 2)
            done)
          per_ctx)
      probs;
    make ~widths:(Array.copy t.widths) ~context_bits:t.context_bits ~quantized:quantize ~probs
      ~retained
end

let widths t = Array.copy t.widths

let context_bits t = t.context_bits

let contexts t = 1 lsl t.context_bits

let quantized t = t.quantized

let p0 t ~stream ~ctx ~node = t.probs.(stream).(ctx).(node)

let flat_probs t = t.flat

let tree_offset t ~stream ~ctx = t.stream_base.(stream) + (ctx lsl t.widths.(stream))

let probability_count t =
  let per_word = Array.fold_left (fun acc w -> acc + (1 lsl w) - 1) 0 t.widths in
  per_word * contexts t

let retained_count t =
  Array.fold_left
    (fun acc per_ctx ->
      Array.fold_left
        (fun acc nodes ->
          let n = ref acc in
          for node = 1 to Array.length nodes - 1 do
            if nodes.(node) then incr n
          done;
          !n)
        acc per_ctx)
    0 t.retained

let pruned t = retained_count t < probability_count t

(* Quantised probabilities are (side, shift): p_lps = scale >> shift with
   side saying whether the 0 symbol is the less probable one. *)
let quantized_code p0 =
  let side = if p0 <= Coder.scale / 2 then 0 else 1 in
  let lps = if side = 0 then p0 else Coder.scale - p0 in
  let rec shift_of k = if Coder.scale lsr k <= lps || k = 15 then k else shift_of (k + 1) in
  (side, shift_of 1)

let of_quantized_code (side, shift) =
  let lps = max 1 (Coder.scale lsr shift) in
  if side = 0 then lps else Coder.scale - lps

let serialize t =
  let w = Bit_writer.create () in
  let is_pruned = pruned t in
  Bit_writer.put_byte w (Array.length t.widths);
  Bit_writer.put_byte w t.context_bits;
  Bit_writer.put_byte w ((if t.quantized then 1 else 0) lor (if is_pruned then 2 else 0));
  Array.iter (fun width -> Bit_writer.put_byte w width) t.widths;
  let put_prob v =
    if t.quantized then begin
      let side, shift = quantized_code v in
      Bit_writer.put_bit w side;
      Bit_writer.put_bits w ~value:shift ~width:4
    end
    else Bit_writer.put_bits w ~value:v ~width:Coder.scale_bits
  in
  Array.iteri
    (fun s per_ctx ->
      Array.iteri
        (fun c nodes ->
          for node = 1 to Array.length nodes - 1 do
            (* the root (node 1) is always retained and carries no flag *)
            if is_pruned && node > 1 then
              Bit_writer.put_bit w (if t.retained.(s).(c).(node) then 1 else 0);
            if t.retained.(s).(c).(node) then put_prob nodes.(node)
          done)
        per_ctx)
    t.probs;
  Bit_writer.align_byte w;
  Bit_writer.contents w

let deserialize s ~pos =
  let r = Bit_reader.create ~start_bit:(8 * pos) s in
  let n_streams = Bit_reader.get_byte r in
  let context_bits = Bit_reader.get_byte r in
  let flags = Bit_reader.get_byte r in
  let quantized = flags land 1 = 1 in
  let is_pruned = flags land 2 = 2 in
  let widths = Array.init n_streams (fun _ -> Bit_reader.get_byte r) in
  check_params ~widths ~context_bits;
  let contexts = 1 lsl context_bits in
  let get_prob () =
    if quantized then begin
      let side = Bit_reader.get_bit r in
      let shift = Bit_reader.get_bits r 4 in
      of_quantized_code (side, shift)
    end
    else begin
      let v = Bit_reader.get_bits r Coder.scale_bits in
      (* p0 = 0 never leaves the trainer and would break the coder's
         bound >= 1 invariant mid-decode; reject it at the boundary. *)
      if v = 0 then invalid_arg "Markov_model.deserialize: zero probability";
      v
    end
  in
  let retained =
    Array.map (fun width -> Array.init contexts (fun _ -> Array.make (1 lsl width) true)) widths
  in
  let probs =
    Array.mapi
      (fun s width ->
        Array.init contexts (fun c ->
            let nodes = Array.make (1 lsl width) 0 in
            for node = 1 to (1 lsl width) - 1 do
              let keep = (not is_pruned) || node = 1 || Bit_reader.get_bit r = 1 in
              retained.(s).(c).(node) <- keep;
              if keep then nodes.(node) <- get_prob () else nodes.(node) <- nodes.(node / 2)
            done;
            nodes))
      widths
  in
  if Bit_reader.overrun r > 0 then invalid_arg "Markov_model.deserialize: truncated input";
  Bit_reader.align_byte r;
  (make ~widths ~context_bits ~quantized ~probs ~retained, Bit_reader.pos r / 8)

let storage_bytes t = String.length (serialize t)
