module Huffman = Ccomp_huffman.Huffman
module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader
module Obs = Ccomp_obs.Obs

(* Observability, shared by every ISA instantiation (the fuzz campaign
   runs several in one process): per-block compress/decompress latency
   and size, dictionary shape, and the bit-I/O refill/flush counts of
   the Huffman coding layer. Guarded by [Obs.metrics_enabled]; never
   alters coded bits. *)
let m_c_blocks = Obs.Counter.make "sadc.compress.blocks"

let m_c_bytes_in = Obs.Counter.make "sadc.compress.bytes_in"

let m_c_bytes_out = Obs.Counter.make "sadc.compress.bytes_out"

let m_c_block_us = Obs.Histogram.make "sadc.compress.block_us"

let m_c_block_ratio = Obs.Histogram.make "sadc.compress.block_ratio"

let m_d_blocks = Obs.Counter.make "sadc.decompress.blocks"

let m_d_bytes_in = Obs.Counter.make "sadc.decompress.bytes_in"

let m_d_bytes_out = Obs.Counter.make "sadc.decompress.bytes_out"

let m_d_block_us = Obs.Histogram.make "sadc.decompress.block_us"

let m_reader_refills = Obs.Counter.make "bitio.reader.refills"

let m_writer_flushes = Obs.Counter.make "bitio.writer.flushes"

let g_dict_entries = Obs.Gauge.make "sadc.dict.entries"

let g_dict_rounds = Obs.Gauge.make "sadc.dict.rounds"

type config = { block_size : int; max_entries : int; max_rounds : int }

let default_config ?(block_size = 32) ?(max_entries = 256) ?(max_rounds = 512) () =
  { block_size; max_entries; max_rounds }

type dict_stats = {
  entries : int;
  base_entries : int;
  group_entries : int;
  specialized_entries : int;
  longest_group : int;
  rounds : int;
}

module Make (I : Sadc_isa.S) = struct
  type primitive = { sym : int; fixed : (int * int * int) list }

  type entry = { prims : primitive array }

  type token = { t_entry : int; t_start : int; t_len : int }

  type compressed = {
    config : config;
    dict : entry array;
    token_code : Huffman.code;
    chunk_codes : Huffman.code option array array;
        (* per stream, per distinct chunk width (see [stream_widths]) *)
    blocks : (string * int) array;
    original_size : int;
    rounds : int;
  }

  (* Items wider than a byte are Huffman coded as chunks: a leading
     partial-byte chunk followed by whole bytes, each chunk position with
     its own code (16-bit immediates -> hi/lo byte alphabets, 26-bit jump
     targets -> 2+8+8+8). *)
  let chunk_widths bits =
    if bits <= 8 then [ bits ]
    else
      let r = bits mod 8 in
      (if r = 0 then [] else [ r ]) @ List.init (bits / 8) (fun _ -> 8)

  let stream_chunks = Array.map chunk_widths I.stream_bits

  (* One Huffman code per (stream, chunk width), as the paper Huffman-codes
     whole streams: all 8-bit chunks of a stream share one alphabet. *)
  let stream_widths = Array.map (List.sort_uniq compare) stream_chunks

  let width_index s w =
    let rec go i = function
      | [] -> invalid_arg "Sadc: unknown chunk width"
      | w' :: _ when w' = w -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 stream_widths.(s)

  (* Chunk values of one item, most significant chunk first. *)
  let chunks_of s value =
    let widths = stream_chunks.(s) in
    let total = List.fold_left ( + ) 0 widths in
    let rec go remaining = function
      | [] -> []
      | w :: ws ->
        let shift = remaining - w in
        ((value lsr shift) land ((1 lsl w) - 1)) :: go shift ws
    in
    go total widths

  (* --- segmentation ------------------------------------------------- *)

  (* Greedy instruction-aligned packing into cache blocks; fixed-width
     ISAs fill each block exactly, variable-length ones approximate the
     cache line without splitting an instruction (DESIGN.md §2). *)
  let segments instrs block_size =
    let n = Array.length instrs in
    let segs = ref [] in
    let start = ref 0 in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      let len = I.byte_length instrs.(i) in
      if !acc > 0 && !acc + len > block_size then begin
        segs := (!start, i - !start) :: !segs;
        start := i;
        acc := 0
      end;
      acc := !acc + len
    done;
    if !start < n then segs := (!start, n - !start) :: !segs;
    Array.of_list (List.rev !segs)

  (* --- dictionary construction --------------------------------------- *)

  type cand =
    | Pair of int * int
    | Triple of int * int * int
    | Spec of int * int * int * int (* entry, stream, pull position, value *)

  (* Candidates are hashed as packed integers: entry ids fit 20 bits,
     stream/position a few, operand values at most 26 bits. *)
  let key_pair a b = (1 lsl 60) lor (a lsl 20) lor b

  let key_triple a b c = (2 lsl 60) lor (a lsl 40) lor (b lsl 20) lor c

  let key_spec e s p v = (3 lsl 60) lor (e lsl 40) lor (s lsl 36) lor (p lsl 30) lor v

  let cand_of_key key =
    let field off width = (key lsr off) land ((1 lsl width) - 1) in
    match key lsr 60 with
    | 1 -> Pair (field 20 20, field 0 20)
    | 2 -> Triple (field 40 20, field 20 20, field 0 20)
    | 3 -> Spec (field 40 20, field 36 4, field 30 6, field 0 30)
    | _ -> assert false

  let entry_cost e = Array.length e.prims

  let is_fixed prim s p = List.exists (fun (s', p', _) -> s' = s && p' = p) prim.fixed

  let count_candidates dict_get blocks_items blocks_tokens =
    let counts : (int, int ref) Hashtbl.t = Hashtbl.create 4096 in
    let bump key =
      match Hashtbl.find_opt counts key with
      | Some r -> incr r
      | None -> Hashtbl.add counts key (ref 1)
    in
    (* Last counted end position per n-gram, to count non-overlapping
       occurrences of self-overlapping patterns like (a, a). *)
    let last_end : (int, int) Hashtbl.t = Hashtbl.create 4096 in
    let bump_ngram key gfirst glast =
      let fresh =
        match Hashtbl.find_opt last_end key with Some e -> e < gfirst | None -> true
      in
      if fresh then begin
        bump key;
        Hashtbl.replace last_end key glast
      end
    in
    let gpos = ref 0 in
    Array.iteri
      (fun b tokens ->
        let n = Array.length tokens in
        for i = 0 to n - 2 do
          bump_ngram (key_pair tokens.(i).t_entry tokens.(i + 1).t_entry) (!gpos + i) (!gpos + i + 1)
        done;
        for i = 0 to n - 3 do
          bump_ngram
            (key_triple tokens.(i).t_entry tokens.(i + 1).t_entry tokens.(i + 2).t_entry)
            (!gpos + i) (!gpos + i + 2)
        done;
        gpos := !gpos + n + 4;
        Array.iter
          (fun t ->
            let e : entry = dict_get t.t_entry in
            if Array.length e.prims = 1 then begin
              let items = blocks_items.(b).(t.t_start) in
              Array.iteri
                (fun s stream_items ->
                  List.iteri
                    (fun p v ->
                      if not (is_fixed e.prims.(0) s p) then bump (key_spec t.t_entry s p v))
                    stream_items)
                items
            end)
          tokens)
      blocks_tokens;
    counts

  (* Gains in bytes saved, following §4.1: a group of n opcodes replacing
     f occurrences saves f*(occupied tokens - 1) opcode bytes and costs n
     dictionary bytes; absorbing an operand of b bits saves f*b/8. *)
  let gain dict_get cand count =
    let f = float_of_int count in
    match cand with
    | Pair (a, b) -> f -. float_of_int (entry_cost (dict_get a) + entry_cost (dict_get b))
    | Triple (a, b, c) ->
      (2.0 *. f)
      -. float_of_int (entry_cost (dict_get a) + entry_cost (dict_get b) + entry_cost (dict_get c))
    | Spec (_, s, _, _) -> (f *. float_of_int I.stream_bits.(s) /. 8.0) -. 1.0

  let new_entry dict_get = function
    | Pair (a, b) -> { prims = Array.append (dict_get a).prims (dict_get b).prims }
    | Triple (a, b, c) ->
      { prims = Array.concat [ (dict_get a).prims; (dict_get b).prims; (dict_get c).prims ] }
    | Spec (e, s, p, v) ->
      let prim = (dict_get e).prims.(0) in
      { prims = [| { prim with fixed = (s, p, v) :: prim.fixed } |] }

  let replace block_items cand nid tokens =
    match cand with
    | Pair (a, b) ->
      let n = Array.length tokens in
      let out = ref [] in
      let i = ref 0 in
      while !i < n do
        if
          !i + 1 < n
          && tokens.(!i).t_entry = a
          && tokens.(!i + 1).t_entry = b
        then begin
          out :=
            { t_entry = nid; t_start = tokens.(!i).t_start; t_len = tokens.(!i).t_len + tokens.(!i + 1).t_len }
            :: !out;
          i := !i + 2
        end
        else begin
          out := tokens.(!i) :: !out;
          incr i
        end
      done;
      Array.of_list (List.rev !out)
    | Triple (a, b, c) ->
      let n = Array.length tokens in
      let out = ref [] in
      let i = ref 0 in
      while !i < n do
        if
          !i + 2 < n
          && tokens.(!i).t_entry = a
          && tokens.(!i + 1).t_entry = b
          && tokens.(!i + 2).t_entry = c
        then begin
          out :=
            {
              t_entry = nid;
              t_start = tokens.(!i).t_start;
              t_len = tokens.(!i).t_len + tokens.(!i + 1).t_len + tokens.(!i + 2).t_len;
            }
            :: !out;
          i := !i + 3
        end
        else begin
          out := tokens.(!i) :: !out;
          incr i
        end
      done;
      Array.of_list (List.rev !out)
    | Spec (e, s, p, v) ->
      (* Same-symbol instructions can differ in operand count (x86 ModRM
         forms), so the item at (s, p) may be absent. *)
      Array.map
        (fun t ->
          if t.t_entry = e then
            match List.nth_opt block_items.(t.t_start).(s) p with
            | Some v' when v' = v -> { t with t_entry = nid }
            | Some _ | None -> t
          else t)
        tokens

  let build_dictionary config blocks_instrs =
    (* Operand items are consulted every round; compute them once. *)
    let blocks_items = Array.map (Array.map I.items) blocks_instrs in
    (* Base dictionary: one entry per opcode symbol present (§4.1 step 2
       inserts all single opcodes). *)
    let dict : entry array ref = ref [||] in
    let dict_n = ref 0 in
    let push e =
      let id = !dict_n in
      let cap = Array.length !dict in
      if id = cap then begin
        let grown = Array.make (max 16 (2 * cap)) e in
        Array.blit !dict 0 grown 0 cap;
        dict := grown
      end;
      !dict.(id) <- e;
      incr dict_n;
      id
    in
    let dict_get i = !dict.(i) in
    let base_id = Hashtbl.create 64 in
    Array.iter
      (Array.iter (fun instr ->
           let sym = I.symbol instr in
           if not (Hashtbl.mem base_id sym) then
             Hashtbl.add base_id sym (push { prims = [| { sym; fixed = [] } |] })))
      blocks_instrs;
    let blocks_tokens =
      Array.map
        (fun instrs ->
          Array.mapi
            (fun i instr -> { t_entry = Hashtbl.find base_id (I.symbol instr); t_start = i; t_len = 1 })
            instrs)
        blocks_instrs
    in
    let blocks_tokens = ref blocks_tokens in
    let rounds = ref 0 in
    let continue_ = ref true in
    while !continue_ && !dict_n < config.max_entries && !rounds < config.max_rounds do
      incr rounds;
      let counts = count_candidates dict_get blocks_items !blocks_tokens in
      let best = ref None in
      Hashtbl.iter
        (fun key count ->
          let cand = cand_of_key key in
          let g = gain dict_get cand !count in
          match !best with
          | Some (_, g') when g' >= g -> ()
          | _ -> if g > 0.0 then best := Some (cand, g))
        counts;
      match !best with
      | None -> continue_ := false
      | Some (cand, _) ->
        let nid = push (new_entry dict_get cand) in
        blocks_tokens :=
          Array.mapi (fun b tokens -> replace blocks_items.(b) cand nid tokens) !blocks_tokens
    done;
    (Array.sub !dict 0 !dict_n, !blocks_tokens, !rounds)

  (* --- entropy coding ------------------------------------------------- *)

  (* Iterate every coded element of a block: [on_token] per token, then
     [on_chunk stream chunk_index value] for each unabsorbed operand
     chunk, in decode pull order. *)
  let iter_block dict instrs tokens ~on_token ~on_chunk =
    Array.iter
      (fun t ->
        on_token t.t_entry;
        let e = dict.(t.t_entry) in
        Array.iteri
          (fun j prim ->
            let items = I.items instrs.(t.t_start + j) in
            Array.iteri
              (fun s stream_items ->
                List.iteri
                  (fun p v ->
                    if not (is_fixed prim s p) then
                      List.iter2 (fun w cv -> on_chunk s w cv) stream_chunks.(s) (chunks_of s v))
                  stream_items)
              items)
          e.prims)
      tokens

  let build_codes dict blocks_instrs blocks_tokens =
    let token_freq = Freq.create (Array.length dict) in
    let chunk_freqs =
      Array.map (fun widths -> Array.of_list (List.map (fun w -> Freq.create (1 lsl w)) widths)) stream_widths
    in
    Array.iteri
      (fun b tokens ->
        iter_block dict blocks_instrs.(b) tokens
          ~on_token:(fun e -> Freq.add token_freq e)
          ~on_chunk:(fun s w cv -> Freq.add chunk_freqs.(s).(width_index s w) cv))
      blocks_tokens;
    let token_code = Huffman.build token_freq in
    let chunk_codes =
      Array.map
        (Array.map (fun freq -> if Freq.total freq > 0 then Some (Huffman.build freq) else None))
        chunk_freqs
    in
    (token_code, chunk_codes)

  let encode_block dict token_code chunk_codes instrs tokens =
    let w = Bit_writer.create () in
    iter_block dict instrs tokens
      ~on_token:(fun e -> Huffman.encode_symbol token_code w e)
      ~on_chunk:(fun s cw cv ->
        match chunk_codes.(s).(width_index s cw) with
        | Some code -> Huffman.encode_symbol code w cv
        | None -> assert false);
    let original =
      Array.fold_left (fun acc t ->
          let stop = t.t_start + t.t_len in
          let sum = ref 0 in
          for i = t.t_start to stop - 1 do
            sum := !sum + I.byte_length instrs.(i)
          done;
          acc + !sum)
        0 tokens
    in
    if Obs.metrics_enabled () then Obs.Counter.add m_writer_flushes (Bit_writer.flushes w);
    (Bit_writer.contents w, original)

  let compress ?(jobs = 1) config instr_list =
    Obs.with_span ~cat:"sadc" ("sadc." ^ I.name ^ ".compress") @@ fun () ->
    let instrs = Array.of_list instr_list in
    if Array.length instrs = 0 then invalid_arg "Sadc.compress: empty program";
    let segs = segments instrs config.block_size in
    let blocks_instrs =
      Array.map (fun (start, len) -> Array.sub instrs start len) segs
    in
    (* Dictionary construction and code building are global (they see
       every block), so they stay serial; the entropy-coding of each
       block against the finished tables is independent and fans out. *)
    let dict, blocks_tokens, rounds =
      Obs.with_span ~cat:"sadc" "sadc.dictionary" (fun () ->
          build_dictionary config blocks_instrs)
    in
    let token_code, chunk_codes = build_codes dict blocks_instrs blocks_tokens in
    let instrument = Obs.metrics_enabled () in
    if instrument then begin
      Obs.Gauge.set g_dict_entries (float_of_int (Array.length dict));
      Obs.Gauge.set g_dict_rounds (float_of_int rounds)
    end;
    let blocks =
      Obs.with_span ~cat:"sadc" "sadc.encode" @@ fun () ->
      Ccomp_par.Pool.mapi ~jobs
        (fun b tokens ->
          if not instrument then encode_block dict token_code chunk_codes blocks_instrs.(b) tokens
          else begin
            let t0 = Obs.now_us () in
            let ((payload, original) as blk) =
              encode_block dict token_code chunk_codes blocks_instrs.(b) tokens
            in
            Obs.Histogram.observe m_c_block_us (Obs.now_us () -. t0);
            Obs.Counter.incr m_c_blocks;
            Obs.Counter.add m_c_bytes_in original;
            Obs.Counter.add m_c_bytes_out (String.length payload);
            if original > 0 then
              Obs.Histogram.observe m_c_block_ratio
                (float_of_int (String.length payload) /. float_of_int original);
            blk
          end)
        blocks_tokens
    in
    let original_size = Array.fold_left (fun acc i -> acc + I.byte_length i) 0 instrs in
    { config; dict; token_code; chunk_codes; blocks; original_size; rounds }

  let compress_image ?jobs config image =
    match I.parse image with
    | Some instrs -> compress ?jobs config instrs
    | None -> invalid_arg "Sadc.compress_image: image does not decode"

  let block_count c = Array.length c.blocks

  let block_original_bytes c b = snd c.blocks.(b)

  let block_payload_bytes c b = String.length (fst c.blocks.(b))

  let decompress_block c b =
    let payload, original = c.blocks.(b) in
    let r = Bit_reader.create payload in
    let decode_chunks s =
      List.fold_left
        (fun acc w ->
          let code =
            match c.chunk_codes.(s).(width_index s w) with
            | Some code -> code
            | None -> failwith "Sadc.decompress_block: missing chunk code"
          in
          let v = Huffman.decode_symbol code r in
          (acc lsl w) lor v)
        0 stream_chunks.(s)
    in
    let out = ref [] in
    let produced = ref 0 in
    (* Step budget: every well-formed token yields at least one byte of
       output, so a stream needing more tokens than [original] bytes is
       corrupt — without this a zero-output cycle would spin forever. *)
    let steps = ref 0 in
    while !produced < original do
      incr steps;
      if !steps > original then
        Ccomp_util.Decode_error.fail
          (Step_budget_exhausted "Sadc.decompress_block");
      let tok = Huffman.decode_symbol c.token_code r in
      if tok >= Array.length c.dict then
        Ccomp_util.Decode_error.invalid_code "Sadc.decompress_block: token beyond dictionary";
      let e = c.dict.(tok) in
      Array.iter
        (fun prim ->
          let counters = Array.make I.stream_count 0 in
          let next s =
            let p = counters.(s) in
            counters.(s) <- p + 1;
            match List.find_opt (fun (s', p', _) -> s' = s && p' = p) prim.fixed with
            | Some (_, _, v) -> v
            | None -> decode_chunks s
          in
          let instr = I.read ~symbol:prim.sym ~next in
          produced := !produced + I.byte_length instr;
          out := instr :: !out)
        e.prims
    done;
    if !produced <> original then failwith "Sadc.decompress_block: length mismatch";
    if Obs.metrics_enabled () then Obs.Counter.add m_reader_refills (Bit_reader.refills r);
    List.rev !out

  let decompress ?(jobs = 1) c =
    Obs.with_span ~cat:"sadc" ("sadc." ^ I.name ^ ".decompress") @@ fun () ->
    let instrument = Obs.metrics_enabled () in
    let parts =
      Ccomp_par.Pool.mapi ~jobs
        (fun b _ ->
          if not instrument then I.encode_list (decompress_block c b)
          else begin
            let t0 = Obs.now_us () in
            let out = I.encode_list (decompress_block c b) in
            Obs.Histogram.observe m_d_block_us (Obs.now_us () -. t0);
            Obs.Counter.incr m_d_blocks;
            Obs.Counter.add m_d_bytes_in (String.length (fst c.blocks.(b)));
            Obs.Counter.add m_d_bytes_out (String.length out);
            out
          end)
        c.blocks
    in
    String.concat "" (Array.to_list parts)

  let decompress_checked ?max_output c =
    Ccomp_util.Decode_error.protect ~section:"sadc" (fun () ->
        (match max_output with
        | Some limit when c.original_size > limit ->
          Ccomp_util.Decode_error.fail
            (Length_overflow { section = "sadc"; declared = c.original_size; limit })
        | Some _ | None -> ());
        decompress c)

  let block_payload c b = fst c.blocks.(b)

  let dictionary c = Array.copy c.dict

  let stats c =
    let base = ref 0 and group = ref 0 and special = ref 0 and longest = ref 0 in
    Array.iter
      (fun e ->
        let n = Array.length e.prims in
        if n > !longest then longest := n;
        if n > 1 then incr group
        else if e.prims.(0).fixed = [] then incr base
        else incr special)
      c.dict;
    {
      entries = Array.length c.dict;
      base_entries = !base;
      group_entries = !group;
      specialized_entries = !special;
      longest_group = !longest;
      rounds = c.rounds;
    }

  let code_bytes c = Array.fold_left (fun acc (payload, _) -> acc + String.length payload) 0 c.blocks

  (* Dictionary wire format: count, then per entry the primitive list with
     absorbed operands (stream, position, 32-bit value). *)
  let dict_bytes c =
    let per_entry e =
      1 + Array.fold_left (fun acc p -> acc + 2 + 1 + (6 * List.length p.fixed)) 0 e.prims
    in
    2 + Array.fold_left (fun acc e -> acc + per_entry e) 0 c.dict

  let tables_bytes c =
    let code_len = function Some code -> String.length (Huffman.serialize_lengths code) | None -> 1 in
    String.length (Huffman.serialize_lengths c.token_code)
    + Array.fold_left
        (fun acc per_stream -> Array.fold_left (fun acc code -> acc + code_len code) acc per_stream)
        0 c.chunk_codes

  let original_size c = c.original_size

  let ratio c = float_of_int (code_bytes c) /. float_of_int c.original_size

  let ratio_with_tables c =
    float_of_int (code_bytes c + dict_bytes c + tables_bytes c) /. float_of_int c.original_size

  (* --- serialization ------------------------------------------------- *)

  let add_u16 b v =
    assert (v >= 0 && v < 65536);
    Buffer.add_char b (Char.chr (v lsr 8));
    Buffer.add_char b (Char.chr (v land 0xff))

  let add_u32 b v =
    add_u16 b ((v lsr 16) land 0xffff);
    add_u16 b (v land 0xffff)

  let serialize c =
    let b = Buffer.create (code_bytes c + 1024) in
    add_u16 b c.config.block_size;
    add_u16 b c.config.max_entries;
    add_u16 b c.config.max_rounds;
    add_u16 b c.rounds;
    add_u32 b c.original_size;
    add_u16 b (Array.length c.dict);
    Array.iter
      (fun e ->
        Buffer.add_char b (Char.chr (Array.length e.prims));
        Array.iter
          (fun prim ->
            add_u16 b prim.sym;
            Buffer.add_char b (Char.chr (List.length prim.fixed));
            List.iter
              (fun (s, p, v) ->
                Buffer.add_char b (Char.chr s);
                Buffer.add_char b (Char.chr p);
                add_u32 b v)
              prim.fixed)
          e.prims)
      c.dict;
    Buffer.add_string b (Huffman.serialize_lengths c.token_code);
    Array.iter
      (Array.iter (fun code ->
           match code with
           | Some code ->
             Buffer.add_char b '\x01';
             Buffer.add_string b (Huffman.serialize_lengths code)
           | None -> Buffer.add_char b '\x00'))
      c.chunk_codes;
    add_u32 b (Array.length c.blocks);
    Array.iter
      (fun (payload, original) ->
        add_u16 b (String.length payload);
        add_u16 b original;
        Buffer.add_string b payload)
      c.blocks;
    Buffer.contents b

  (* Byte ranges inside [serialize c], mirroring its layout: a 12-byte
     fixed header, the dictionary, the token and chunk tables, the block
     count, then per block a 4-byte prefix and the payload. *)
  let tables_span c =
    let token = String.length (Huffman.serialize_lengths c.token_code) in
    let chunks =
      Array.fold_left
        (fun acc per_stream ->
          Array.fold_left
            (fun acc code ->
              match code with
              | Some code -> acc + 1 + String.length (Huffman.serialize_lengths code)
              | None -> acc + 1)
            acc per_stream)
        0 c.chunk_codes
    in
    (12, dict_bytes c + token + chunks)

  let block_spans c =
    let tables_off, tables_len = tables_span c in
    let off = ref (tables_off + tables_len + 4) in
    Array.map
      (fun (payload, _) ->
        off := !off + 4;
        let o = !off in
        off := o + String.length payload;
        (o, String.length payload))
      c.blocks

  let deserialize s ~pos =
    let p = ref pos in
    let fail () = invalid_arg "Sadc.deserialize: truncated input" in
    let byte () =
      if !p >= String.length s then fail ();
      let v = Char.code s.[!p] in
      incr p;
      v
    in
    let u16 () =
      let hi = byte () in
      (hi lsl 8) lor byte ()
    in
    let u32 () =
      let hi = u16 () in
      (hi lsl 16) lor u16 ()
    in
    let take n =
      if !p + n > String.length s then fail ();
      let sub = String.sub s !p n in
      p := !p + n;
      sub
    in
    let block_size = u16 () in
    let max_entries = u16 () in
    let max_rounds = u16 () in
    let rounds = u16 () in
    let original_size = u32 () in
    let dict =
      Array.init (u16 ()) (fun _ ->
          let prims =
            Array.init (byte ()) (fun _ ->
                let sym = u16 () in
                let fixed =
                  List.init (byte ()) (fun _ ->
                      let s' = byte () in
                      let p' = byte () in
                      let v = u32 () in
                      (s', p', v))
                in
                { sym; fixed })
          in
          (* An entry without primitives decodes to zero bytes; the block
             decoder's step budget would catch the resulting spin, but a
             dictionary that cannot have been built is corruption. *)
          if Array.length prims = 0 then invalid_arg "Sadc.deserialize: empty dictionary entry";
          { prims })
    in
    let token_code, next = Huffman.deserialize_lengths s ~pos:!p in
    p := next;
    let chunk_codes =
      Array.map
        (fun widths ->
          Array.of_list
            (List.map
               (fun _ ->
                 match byte () with
                 | 0 -> None
                 | _ ->
                   let code, next = Huffman.deserialize_lengths s ~pos:!p in
                   p := next;
                   Some code)
               widths))
        stream_widths
    in
    let nblocks = u32 () in
    (* Each block costs at least its 4-byte prefix; a count the remaining
       bytes cannot hold must fail before sizing an array by it. *)
    if nblocks > (String.length s - !p) / 4 then fail ();
    let blocks =
      Array.init nblocks (fun _ ->
          let len = u16 () in
          let original = u16 () in
          (take len, original))
    in
    let config = { block_size; max_entries; max_rounds } in
    ({ config; dict; token_code; chunk_codes; blocks; original_size; rounds }, !p)

  let deserialize_checked s ~pos =
    Ccomp_util.Decode_error.protect ~section:"sadc.deserialize" (fun () -> deserialize s ~pos)
end

module Mips = Make (Sadc_isa.Mips_streams)
module X86 = Make (Sadc_isa.X86_streams)
module X86_fields = Make (Sadc_isa.X86_field_streams)
