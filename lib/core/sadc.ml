module Huffman = Ccomp_huffman.Huffman
module Freq = Ccomp_entropy.Freq
module Bit_writer = Ccomp_bitio.Bit_writer
module Bit_reader = Ccomp_bitio.Bit_reader
module Obs = Ccomp_obs.Obs

(* Observability, shared by every ISA instantiation (the fuzz campaign
   runs several in one process): per-block compress/decompress latency
   and size, dictionary shape, and the bit-I/O refill/flush counts of
   the Huffman coding layer. Guarded by [Obs.metrics_enabled]; never
   alters coded bits. *)
let m_c_blocks = Obs.Counter.make "sadc.compress.blocks"

let m_c_bytes_in = Obs.Counter.make "sadc.compress.bytes_in"

let m_c_bytes_out = Obs.Counter.make "sadc.compress.bytes_out"

let m_c_block_us = Obs.Histogram.make "sadc.compress.block_us"

let m_c_block_ratio = Obs.Histogram.make "sadc.compress.block_ratio"

let m_d_blocks = Obs.Counter.make "sadc.decompress.blocks"

let m_d_bytes_in = Obs.Counter.make "sadc.decompress.bytes_in"

let m_d_bytes_out = Obs.Counter.make "sadc.decompress.bytes_out"

let m_d_block_us = Obs.Histogram.make "sadc.decompress.block_us"

let m_reader_refills = Obs.Counter.make "bitio.reader.refills"

let m_writer_flushes = Obs.Counter.make "bitio.writer.flushes"

let g_dict_entries = Obs.Gauge.make "sadc.dict.entries"

let g_dict_rounds = Obs.Gauge.make "sadc.dict.rounds"

type config = { block_size : int; max_entries : int; max_rounds : int }

let default_config ?(block_size = 32) ?(max_entries = 256) ?(max_rounds = 512) () =
  { block_size; max_entries; max_rounds }

type dict_stats = {
  entries : int;
  base_entries : int;
  group_entries : int;
  specialized_entries : int;
  longest_group : int;
  rounds : int;
}

module Make (I : Sadc_isa.S) = struct
  type primitive = { sym : int; fixed : (int * int * int) list }

  type entry = { prims : primitive array }

  type token = { t_entry : int; t_start : int; t_len : int }

  type compressed = {
    config : config;
    dict : entry array;
    token_code : Huffman.code;
    chunk_codes : Huffman.code option array array;
        (* per stream, per distinct chunk width (see [stream_widths]) *)
    blocks : (string * int) array;
    original_size : int;
    rounds : int;
  }

  (* Items wider than a byte are Huffman coded as chunks: a leading
     partial-byte chunk followed by whole bytes, each chunk position with
     its own code (16-bit immediates -> hi/lo byte alphabets, 26-bit jump
     targets -> 2+8+8+8). *)
  let chunk_widths bits =
    if bits <= 8 then [ bits ]
    else
      let r = bits mod 8 in
      (if r = 0 then [] else [ r ]) @ List.init (bits / 8) (fun _ -> 8)

  let stream_chunks = Array.map chunk_widths I.stream_bits

  (* One Huffman code per (stream, chunk width), as the paper Huffman-codes
     whole streams: all 8-bit chunks of a stream share one alphabet. *)
  let stream_widths = Array.map (List.sort_uniq compare) stream_chunks

  let width_index s w =
    let rec go i = function
      | [] -> invalid_arg "Sadc: unknown chunk width"
      | w' :: _ when w' = w -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 stream_widths.(s)

  (* Chunk values of one item, most significant chunk first. *)
  let chunks_of s value =
    let widths = stream_chunks.(s) in
    let total = List.fold_left ( + ) 0 widths in
    let rec go remaining = function
      | [] -> []
      | w :: ws ->
        let shift = remaining - w in
        ((value lsr shift) land ((1 lsl w) - 1)) :: go shift ws
    in
    go total widths

  (* --- segmentation ------------------------------------------------- *)

  (* Greedy instruction-aligned packing into cache blocks; fixed-width
     ISAs fill each block exactly, variable-length ones approximate the
     cache line without splitting an instruction (DESIGN.md §2). *)
  let segments instrs block_size =
    let n = Array.length instrs in
    let segs = ref [] in
    let start = ref 0 in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      let len = I.byte_length instrs.(i) in
      if !acc > 0 && !acc + len > block_size then begin
        segs := (!start, i - !start) :: !segs;
        start := i;
        acc := 0
      end;
      acc := !acc + len
    done;
    if !start < n then segs := (!start, n - !start) :: !segs;
    Array.of_list (List.rev !segs)

  (* --- dictionary construction --------------------------------------- *)

  type cand =
    | Pair of int * int
    | Triple of int * int * int
    | Spec of int * int * int * int (* entry, stream, pull position, value *)

  (* Candidates are hashed as packed integers: entry ids fit 20 bits,
     stream/position a few, operand values at most 26 bits. *)
  let key_pair a b = (1 lsl 60) lor (a lsl 20) lor b

  let key_triple a b c = (2 lsl 60) lor (a lsl 40) lor (b lsl 20) lor c

  let key_spec e s p v = (3 lsl 60) lor (e lsl 40) lor (s lsl 36) lor (p lsl 30) lor v

  let cand_of_key key =
    let field off width = (key lsr off) land ((1 lsl width) - 1) in
    match key lsr 60 with
    | 1 -> Pair (field 20 20, field 0 20)
    | 2 -> Triple (field 40 20, field 20 20, field 0 20)
    | 3 -> Spec (field 40 20, field 36 4, field 30 6, field 0 30)
    | _ -> assert false

  let entry_cost e = Array.length e.prims

  let is_fixed prim s p = List.exists (fun (s', p', _) -> s' = s && p' = p) prim.fixed

  (* Count one block's candidate occurrences, calling [emit key] once per
     counted occurrence. Blocks count independently: the non-overlap
     bookkeeping for self-overlapping n-grams like (a, a) is block-local
     (a pattern never straddles two blocks), so the global count of every
     candidate is the sum of its per-block counts — the invariant the
     incremental builder rests on. Token [t_start] indexes the whole
     program's [all_items] directly; there are no per-block item copies. *)
  (* [last_end] is caller-provided scratch (last counted end index per
     n-gram key): a tiny generation-stamped open-addressing map, reset
     O(1) per block by bumping the generation — a block holds at most
     [block_size] tokens, so the per-window bookkeeping must not
     allocate. Slots from older generations read as empty. *)
  type last_end = {
    mutable le_key : int array;
    mutable le_end : int array;
    mutable le_gen : int array;
    mutable le_cap : int;
    mutable le_g : int;
  }

  let le_create () =
    {
      le_key = Array.make 256 0;
      le_end = Array.make 256 0;
      le_gen = Array.make 256 (-1);
      le_cap = 256;
      le_g = 0;
    }

  (* Closure-free walk of one token's operand items for specialisation
     candidates (one [key_spec] per non-absorbed item). *)
  let rec emit_specs emit entry_id prim s p items =
    match items with
    | [] -> ()
    | v :: tl ->
      if not (is_fixed prim s p) then emit (key_spec entry_id s p v);
      emit_specs emit entry_id prim s (p + 1) tl

  let count_block le dict_get all_items tokens emit =
    let n = Array.length tokens in
    if 4 * n > le.le_cap then begin
      let c = ref le.le_cap in
      while 4 * n > !c do
        c := !c * 2
      done;
      le.le_key <- Array.make !c 0;
      le.le_end <- Array.make !c 0;
      le.le_gen <- Array.make !c (-1);
      le.le_cap <- !c
    end;
    le.le_g <- le.le_g + 1;
    let g = le.le_g in
    let mask = le.le_cap - 1 in
    let emit_ngram key first last =
      let h = key * 0x9E3779B97F4A7C1 in
      let i = ref ((h lxor (h lsr 31)) land mask) in
      while le.le_gen.(!i) = g && le.le_key.(!i) <> key do
        i := (!i + 1) land mask
      done;
      if le.le_gen.(!i) <> g || le.le_end.(!i) < first then begin
        emit key;
        le.le_key.(!i) <- key;
        le.le_end.(!i) <- last;
        le.le_gen.(!i) <- g
      end
    in
    for i = 0 to n - 2 do
      emit_ngram (key_pair tokens.(i).t_entry tokens.(i + 1).t_entry) i (i + 1)
    done;
    for i = 0 to n - 3 do
      emit_ngram
        (key_triple tokens.(i).t_entry tokens.(i + 1).t_entry tokens.(i + 2).t_entry)
        i (i + 2)
    done;
    for ti = 0 to n - 1 do
      let t = tokens.(ti) in
      let e : entry = dict_get t.t_entry in
      if Array.length e.prims = 1 then begin
        let prim = e.prims.(0) in
        let streams = all_items.(t.t_start) in
        for s = 0 to Array.length streams - 1 do
          emit_specs emit t.t_entry prim s 0 streams.(s)
        done
      end
    done

  (* Full-rescan reference: global counts rebuilt from scratch. Kept as
     the specification the incremental builder is tested against. *)
  let count_candidates dict_get all_items blocks_tokens =
    let counts : (int, int ref) Hashtbl.t = Hashtbl.create 4096 in
    let last_end = le_create () in
    Array.iter
      (fun tokens ->
        count_block last_end dict_get all_items tokens (fun key ->
            match Hashtbl.find_opt counts key with
            | Some r -> incr r
            | None -> Hashtbl.add counts key (ref 1)))
      blocks_tokens;
    counts

  (* Gains in bytes saved, following §4.1: a group of n opcodes replacing
     f occurrences saves f*(occupied tokens - 1) opcode bytes and costs n
     dictionary bytes; absorbing an operand of b bits saves f*b/8. *)
  let gain dict_get cand count =
    let f = float_of_int count in
    match cand with
    | Pair (a, b) -> f -. float_of_int (entry_cost (dict_get a) + entry_cost (dict_get b))
    | Triple (a, b, c) ->
      (2.0 *. f)
      -. float_of_int (entry_cost (dict_get a) + entry_cost (dict_get b) + entry_cost (dict_get c))
    | Spec (_, s, _, _) -> (f *. float_of_int I.stream_bits.(s) /. 8.0) -. 1.0

  let new_entry dict_get = function
    | Pair (a, b) -> { prims = Array.append (dict_get a).prims (dict_get b).prims }
    | Triple (a, b, c) ->
      { prims = Array.concat [ (dict_get a).prims; (dict_get b).prims; (dict_get c).prims ] }
    | Spec (e, s, p, v) ->
      let prim = (dict_get e).prims.(0) in
      { prims = [| { prim with fixed = (s, p, v) :: prim.fixed } |] }

  (* Would [replace] change this block? Cheap pre-scan so the reparse
     pass skips (and never reallocates) untouched blocks — with the
     candidate index below, most rounds touch a handful of blocks. *)
  let matches all_items cand tokens =
    let n = Array.length tokens in
    match cand with
    | Pair (a, b) ->
      let rec go i =
        i + 1 < n && ((tokens.(i).t_entry = a && tokens.(i + 1).t_entry = b) || go (i + 1))
      in
      go 0
    | Triple (a, b, c) ->
      let rec go i =
        i + 2 < n
        && ((tokens.(i).t_entry = a && tokens.(i + 1).t_entry = b && tokens.(i + 2).t_entry = c)
           || go (i + 1))
      in
      go 0
    | Spec (e, s, p, v) ->
      Array.exists
        (fun t ->
          t.t_entry = e
          && (match List.nth_opt all_items.(t.t_start).(s) p with
             | Some v' -> v' = v
             | None -> false))
        tokens

  (* Greedy reparse of one block, also reporting the replacement sites:
     [old_sites] are start indices (in [tokens]) of each consumed
     occurrence, [new_sites] the indices of the inserted [nid] tokens in
     the result. The surgical count update needs both. *)
  let replace_sites all_items cand nid tokens =
    match cand with
    | Pair (a, b) ->
      let n = Array.length tokens in
      let out = ref [] in
      let nout = ref 0 in
      let old_sites = ref [] and new_sites = ref [] in
      let i = ref 0 in
      while !i < n do
        if !i + 1 < n && tokens.(!i).t_entry = a && tokens.(!i + 1).t_entry = b then begin
          out :=
            { t_entry = nid; t_start = tokens.(!i).t_start; t_len = tokens.(!i).t_len + tokens.(!i + 1).t_len }
            :: !out;
          old_sites := !i :: !old_sites;
          new_sites := !nout :: !new_sites;
          incr nout;
          i := !i + 2
        end
        else begin
          out := tokens.(!i) :: !out;
          incr nout;
          incr i
        end
      done;
      (Array.of_list (List.rev !out), !old_sites, !new_sites)
    | Triple (a, b, c) ->
      let n = Array.length tokens in
      let out = ref [] in
      let nout = ref 0 in
      let old_sites = ref [] and new_sites = ref [] in
      let i = ref 0 in
      while !i < n do
        if
          !i + 2 < n
          && tokens.(!i).t_entry = a
          && tokens.(!i + 1).t_entry = b
          && tokens.(!i + 2).t_entry = c
        then begin
          out :=
            {
              t_entry = nid;
              t_start = tokens.(!i).t_start;
              t_len = tokens.(!i).t_len + tokens.(!i + 1).t_len + tokens.(!i + 2).t_len;
            }
            :: !out;
          old_sites := !i :: !old_sites;
          new_sites := !nout :: !new_sites;
          incr nout;
          i := !i + 3
        end
        else begin
          out := tokens.(!i) :: !out;
          incr nout;
          incr i
        end
      done;
      (Array.of_list (List.rev !out), !old_sites, !new_sites)
    | Spec (e, s, p, v) ->
      (* Same-symbol instructions can differ in operand count (x86 ModRM
         forms), so the item at (s, p) may be absent. Positions are
         preserved, so old and new sites coincide. *)
      let sites = ref [] in
      let out =
        Array.mapi
          (fun i t ->
            if t.t_entry = e then
              match List.nth_opt all_items.(t.t_start).(s) p with
              | Some v' when v' = v ->
                sites := i :: !sites;
                { t with t_entry = nid }
              | Some _ | None -> t
            else t)
          tokens
      in
      (out, !sites, !sites)

  let replace all_items cand nid tokens =
    let out, _, _ = replace_sites all_items cand nid tokens in
    out

  (* Base dictionary (one entry per opcode symbol present, §4.1 step 2)
     plus the base tokenization, shared by both builders. Tokens index
     the whole program: block [b] covers [instrs] from [segs.(b)]. *)
  let dict_builder instrs segs =
    let dict : entry array ref = ref [||] in
    let dict_n = ref 0 in
    let push e =
      let id = !dict_n in
      let cap = Array.length !dict in
      if id = cap then begin
        let grown = Array.make (max 16 (2 * cap)) e in
        Array.blit !dict 0 grown 0 cap;
        dict := grown
      end;
      !dict.(id) <- e;
      incr dict_n;
      id
    in
    let dict_get i = !dict.(i) in
    let base_id = Hashtbl.create 64 in
    Array.iter
      (fun instr ->
        let sym = I.symbol instr in
        if not (Hashtbl.mem base_id sym) then
          Hashtbl.add base_id sym (push { prims = [| { sym; fixed = [] } |] }))
      instrs;
    let blocks_tokens =
      Array.map
        (fun (start, len) ->
          Array.init len (fun i ->
              {
                t_entry = Hashtbl.find base_id (I.symbol instrs.(start + i));
                t_start = start + i;
                t_len = 1;
              }))
        segs
    in
    (dict, dict_n, push, dict_get, blocks_tokens)

  (* Canonical selection: largest gain, ties broken toward the smallest
     packed key. (The seed's tie-break was Hashtbl iteration order, which
     an incremental builder cannot reproduce; both builders now share
     this deterministic rule.) *)
  let select_best dict_get counts =
    let best = ref None in
    Hashtbl.iter
      (fun key count ->
        let c = !count in
        if c > 0 then begin
          let g = gain dict_get (cand_of_key key) c in
          if g > 0.0 then
            match !best with
            | Some (g', k') when g' > g || (g' = g && k' < key) -> ()
            | _ -> best := Some (g, key)
        end)
      counts;
    !best

  (* Full-rescan builder: recounts every candidate in every block each
     round. Kept as the executable specification of the incremental
     builder (and for the parity tests); not used on the hot path. *)
  let build_dictionary_naive config instrs all_items segs =
    let dict, dict_n, push, dict_get, blocks_tokens = dict_builder instrs segs in
    let blocks_tokens = ref blocks_tokens in
    let rounds = ref 0 in
    let continue_ = ref true in
    while !continue_ && !dict_n < config.max_entries && !rounds < config.max_rounds do
      incr rounds;
      let counts = count_candidates dict_get all_items !blocks_tokens in
      match select_best dict_get counts with
      | None -> continue_ := false
      | Some (_, key) ->
        let cand = cand_of_key key in
        let nid = push (new_entry dict_get cand) in
        blocks_tokens :=
          Array.map
            (fun tokens ->
              if matches all_items cand tokens then replace all_items cand nid tokens else tokens)
            !blocks_tokens
    done;
    (Array.sub !dict 0 !dict_n, !blocks_tokens, !rounds)

  (* Incremental builder: global candidate counts are kept as the sum of
     per-block contributions. Each round pops the best candidate from a
     lazily-invalidated max-heap, reparses only the blocks listed in the
     candidate's occurrence index, and patches counts surgically: only
     token windows overlapping a replacement site can change, so the
     matched blocks get a handful of +/-1 bumps instead of a full
     recount. A heap element is [(gain, key)] frozen at push time; a pop
     is valid only if that gain still equals the gain recomputed from the
     live count. Gains depend only on the live count and on entry costs
     fixed at entry creation, so the staleness check is exact, and every
     key with positive gain always has its live entry somewhere in the
     heap. [check] recomputes all counts by full rescan each round and
     raises on any disagreement (the parity tests' hook). *)
  let build_dictionary_incremental ?(check = false) config instrs all_items segs =
    let dict, dict_n, push, dict_get, blocks_tokens = dict_builder instrs segs in
    let nblocks = Array.length blocks_tokens in
    (* One flat open-addressing table over packed candidate keys replaces
       a counts / occurrence-index / touched-set Hashtbl trio: a bump is
       a single probe. Slot [i] keeps its key and count adjacent
       ([kc.(2i)], [kc.(2i+1)]) so the hot path touches one cache line.
       Packed keys are nonzero (the kind tag sits in the high bits), so
       key 0 marks an empty slot. The occurrence index lists blocks that
       contributed to a key when last counted; it is append-only and
       allowed to go stale — entries are re-validated by the reparse
       scan before any count is changed. *)
    (* Initial capacity sized so the table never grows on realistic
       corpora: distinct keys stay under ~1.6 per token (pairs + triples
       + specialisations, measured on the generated suites), so four
       slots per token keeps the final load factor under the 75% grow
       threshold — growth would copy every array below into garbage on
       each build. [grow] still handles adversarial key densities. *)
    let total_tokens = Array.fold_left (fun a t -> a + Array.length t) 0 blocks_tokens in
    let initial_cap =
      let target = max 4096 (4 * total_tokens) in
      let c = ref 4096 in
      while !c < target do
        c := !c * 2
      done;
      !c
    in
    let cap = ref initial_cap in
    let mask = ref (!cap - 1) in
    let kc = ref (Array.make (2 * !cap) 0) in
    let occ_at = ref (Array.make !cap []) in
    (* The "count moved since last heap refresh" flag lives in bit 62 of
       the stored key (packed keys use bits 0-61), so marking a slot hot
       touches no extra cache line. *)
    let hot_bit = 1 lsl 62 in
    let key_mask = hot_bit - 1 in
    (* Gains are linear in the live count — [gain] is [m * count - k]
       with [m] and [k] fixed per key (entries are immutable once
       pushed, so their costs never change). Both coefficients are
       cached per slot on first use ([gm = 0.0] marks uncached), making
       the heap-refresh and staleness checks multiply-adds.
       [lastg] dedups heap pushes: the gain most recently pushed for
       this key and not yet popped, or [neg_infinity]. Keys often get
       net-zero count updates (touched but unchanged); without the
       dedup every such key is re-pushed each round. *)
    let gm_at = ref (Array.make !cap 0.0) in
    let gk_at = ref (Array.make !cap 0.0) in
    let lastg_at = ref (Array.make !cap neg_infinity) in
    let size = ref 0 in
    (* Keys whose count moved since the last heap refresh (their slot's
       hot flag is set, so each key is listed once). A reusable stack
       rather than a list: it fills and drains every round. *)
    let touched = ref (Array.make 1024 0) in
    let ntouched = ref 0 in
    let touch key =
      if !ntouched = Array.length !touched then begin
        let bigger = Array.make (2 * !ntouched) 0 in
        Array.blit !touched 0 bigger 0 !ntouched;
        touched := bigger
      end;
      Array.unsafe_set !touched !ntouched key;
      incr ntouched
    in
    (* Slots are provably in [0, cap): unsafe accesses avoid bounds
       checks on the single hottest loop of the build. *)
    let probe key =
      let h = key * 0x9E3779B97F4A7C1 in
      let a = !kc in
      let m = !mask in
      let i = ref ((h lxor (h lsr 31)) land m) in
      while
        let k = Array.unsafe_get a (!i * 2) land key_mask in
        k <> 0 && k <> key
      do
        i := (!i + 1) land m
      done;
      !i
    in
    let grow () =
      let okc = !kc and oocc = !occ_at in
      let ogm = !gm_at and ogk = !gk_at and olastg = !lastg_at in
      let ocap = !cap in
      cap := ocap * 2;
      mask := !cap - 1;
      kc := Array.make (2 * !cap) 0;
      occ_at := Array.make !cap [];
      gm_at := Array.make !cap 0.0;
      gk_at := Array.make !cap 0.0;
      lastg_at := Array.make !cap neg_infinity;
      for i = 0 to ocap - 1 do
        if okc.(i * 2) <> 0 then begin
          let j = probe (okc.(i * 2) land key_mask) in
          !kc.((j * 2) + 0) <- okc.(i * 2);
          !kc.((j * 2) + 1) <- okc.((i * 2) + 1);
          !occ_at.(j) <- oocc.(i);
          !gm_at.(j) <- ogm.(i);
          !gk_at.(j) <- ogk.(i);
          !lastg_at.(j) <- olastg.(i)
        end
      done
    in
    let count_of key = !kc.((probe key * 2) + 1) in
    let bump b key d =
      if !size * 4 >= !cap * 3 then grow ();
      let i = probe key in
      let a = !kc in
      let kv = Array.unsafe_get a (i * 2) in
      if kv land hot_bit = 0 then begin
        if kv = 0 then incr size;
        Array.unsafe_set a (i * 2) (key lor hot_bit);
        touch key
      end;
      Array.unsafe_set a ((i * 2) + 1) (Array.unsafe_get a ((i * 2) + 1) + d);
      if d > 0 then
        let occ = !occ_at in
        match Array.unsafe_get occ i with
        | b' :: _ when b' = b -> ()
        | _ -> Array.unsafe_set occ i (b :: Array.unsafe_get occ i)
    in
    let last_end = le_create () in
    let add_block b tokens =
      count_block last_end dict_get all_items tokens (fun key -> bump b key 1)
    in
    (* Non-overlap chain count of one n-gram key in one block — the
       per-key replay of [count_block]'s bookkeeping, for the few keys
       the windowed +/-1s cannot handle. *)
    let chain_count tokens key =
      let n = Array.length tokens in
      let count = ref 0 in
      let last = ref (-1) in
      (match cand_of_key key with
      | Pair (a, b) ->
        for i = 0 to n - 2 do
          if tokens.(i).t_entry = a && tokens.(i + 1).t_entry = b && !last < i then begin
            incr count;
            last := i + 1
          end
        done
      | Triple (a, b, c) ->
        for i = 0 to n - 3 do
          if
            tokens.(i).t_entry = a
            && tokens.(i + 1).t_entry = b
            && tokens.(i + 2).t_entry = c
            && !last < i
          then begin
            incr count;
            last := i + 2
          end
        done
      | Spec _ -> assert false);
      !count
    in
    let spec_delta b d t =
      let e = dict_get t.t_entry in
      if Array.length e.prims = 1 then begin
        let prim = e.prims.(0) in
        let streams = all_items.(t.t_start) in
        for s = 0 to Array.length streams - 1 do
          let items = ref streams.(s) in
          let p = ref 0 in
          while
            match !items with
            | [] -> false
            | v :: tl ->
              if not (is_fixed prim s !p) then bump b (key_spec t.t_entry s !p v) d;
              items := tl;
              incr p;
              true
          do
            ()
          done
        done
      end
    in
    let max_len = Array.fold_left (fun m t -> max m (Array.length t)) 1 blocks_tokens in
    (* Self-overlapping keys needing a full re-walk this block. Keys are
       immediate ints, so [memq] is an exact membership test; the list
       stays tiny (self-overlap needs repeated entries inside one
       window). *)
    let recount = ref [] in
    (* Apply the windowed +/-[d]s for one side of a reparse: every pair
       and triple window that overlaps a replacement site, visited once
       even when consecutive sites' windows overlap (sites ascend, so a
       per-kind cursor suffices). Only windows that overlap a site can
       change an n-gram count — unmarked windows map one-to-one between
       the old and new token arrays with their keys intact, so their
       contributions cancel; a marked window of a non-self-overlapping
       key contributes exactly one match. Self-overlapping keys (pair
       with equal halves, triple with first = third) are deferred to
       [recount]. *)
    let windows b tokens n sites nsites width d =
      let nextp = ref 0 and nextt = ref 0 in
      for si = 0 to nsites - 1 do
        let s = sites.(si) in
        let hi = s + width - 1 in
        for p = max !nextp (s - 1) to min (n - 2) hi do
          let a = (Array.unsafe_get tokens p).t_entry
          and b' = (Array.unsafe_get tokens (p + 1)).t_entry in
          let key = key_pair a b' in
          if a = b' then begin
            if not (List.memq key !recount) then recount := key :: !recount
          end
          else bump b key d
        done;
        nextp := hi + 1;
        for p = max !nextt (s - 2) to min (n - 3) hi do
          let a = (Array.unsafe_get tokens p).t_entry
          and c = (Array.unsafe_get tokens (p + 2)).t_entry in
          let key = key_triple a (Array.unsafe_get tokens (p + 1)).t_entry c in
          if a = c then begin
            if not (List.memq key !recount) then recount := key :: !recount
          end
          else bump b key d
        done;
        nextt := hi + 1
      done
    in
    (* Scratch for the fused reparse (reparsing only ever shortens a
       block's token count, so [max_len] bounds every block for the
       whole build). *)
    let scratch = Array.make max_len { t_entry = 0; t_start = 0; t_len = 0 } in
    let old_site_buf = Array.make max_len 0 in
    let new_site_buf = Array.make max_len 0 in
    (* Fused reparse + surgical count patch for one block. Returns false
       (leaving the block untouched) when the candidate no longer occurs
       — the reparse scan doubles as the stale-occurrence test. *)
    let update_block b cand nid =
      let old_tokens = blocks_tokens.(b) in
      let n = Array.length old_tokens in
      let nsites = ref 0 in
      let nout = ref 0 in
      (match cand with
      | Pair (a, b') ->
        let i = ref 0 in
        while !i < n do
          if
            !i + 1 < n
            && (Array.unsafe_get old_tokens !i).t_entry = a
            && (Array.unsafe_get old_tokens (!i + 1)).t_entry = b'
          then begin
            scratch.(!nout) <-
              {
                t_entry = nid;
                t_start = old_tokens.(!i).t_start;
                t_len = old_tokens.(!i).t_len + old_tokens.(!i + 1).t_len;
              };
            old_site_buf.(!nsites) <- !i;
            new_site_buf.(!nsites) <- !nout;
            incr nsites;
            incr nout;
            i := !i + 2
          end
          else begin
            scratch.(!nout) <- old_tokens.(!i);
            incr nout;
            incr i
          end
        done
      | Triple (a, b', c) ->
        let i = ref 0 in
        while !i < n do
          if
            !i + 2 < n
            && (Array.unsafe_get old_tokens !i).t_entry = a
            && (Array.unsafe_get old_tokens (!i + 1)).t_entry = b'
            && (Array.unsafe_get old_tokens (!i + 2)).t_entry = c
          then begin
            scratch.(!nout) <-
              {
                t_entry = nid;
                t_start = old_tokens.(!i).t_start;
                t_len =
                  old_tokens.(!i).t_len + old_tokens.(!i + 1).t_len + old_tokens.(!i + 2).t_len;
              };
            old_site_buf.(!nsites) <- !i;
            new_site_buf.(!nsites) <- !nout;
            incr nsites;
            incr nout;
            i := !i + 3
          end
          else begin
            scratch.(!nout) <- old_tokens.(!i);
            incr nout;
            incr i
          end
        done
      | Spec (e, s, p, v) ->
        for i = 0 to n - 1 do
          let t = old_tokens.(i) in
          if
            t.t_entry = e
            && (match List.nth_opt all_items.(t.t_start).(s) p with
               | Some v' -> v' = v
               | None -> false)
          then begin
            scratch.(i) <- { t with t_entry = nid };
            old_site_buf.(!nsites) <- i;
            new_site_buf.(!nsites) <- i;
            incr nsites
          end
          else scratch.(i) <- t
        done;
        nout := n);
      !nsites > 0
      && begin
           let new_tokens = Array.sub scratch 0 !nout in
           blocks_tokens.(b) <- new_tokens;
           let width = match cand with Pair _ -> 2 | Triple _ -> 3 | Spec _ -> 1 in
           recount := [];
           windows b old_tokens n old_site_buf !nsites width (-1);
           windows b new_tokens !nout new_site_buf !nsites 1 1;
           (* Self-overlapping keys surfaced from either side: replace the
              windowed +/-1s they never received with a full old/new diff. *)
           List.iter
             (fun key ->
               let d = chain_count new_tokens key - chain_count old_tokens key in
               if d <> 0 then bump b key d)
             !recount;
           for si = 0 to !nsites - 1 do
             let site = old_site_buf.(si) in
             for j = 0 to width - 1 do
               spec_delta b (-1) old_tokens.(site + j)
             done
           done;
           (* The inserted token's own spec keys: only a Spec candidate
              yields a single-primitive token (Pair/Triple groups carry
              no spec keys). *)
           (match cand with
           | Spec _ ->
             for si = 0 to !nsites - 1 do
               spec_delta b 1 new_tokens.(new_site_buf.(si))
             done
           | Pair _ | Triple _ -> ());
           true
         end
    in
    let heap =
      Ccomp_util.Heap.create ~cmp:(fun (g1, k1) (g2, k2) ->
          if g1 <> g2 then compare (g2 : float) g1 else compare (k1 : int) k2)
    in
    (* Same value as [gain dict_get (cand_of_key key)], via the slot
       cache. The Spec-case reassociation ([m *. f] with [m = bits / 8]
       versus [f *. bits /. 8.0]) is bit-exact: every sub-product is an
       integer-valued float well under 2^53 scaled by a power of two. *)
    let gain_slot i key c =
      if !gm_at.(i) = 0.0 then begin
        let m, k =
          match cand_of_key key with
          | Pair (a, b) -> (1.0, float_of_int (entry_cost (dict_get a) + entry_cost (dict_get b)))
          | Triple (a, b, c') ->
            ( 2.0,
              float_of_int
                (entry_cost (dict_get a) + entry_cost (dict_get b) + entry_cost (dict_get c')) )
          | Spec (_, s, _, _) -> (float_of_int I.stream_bits.(s) /. 8.0, 1.0)
        in
        !gm_at.(i) <- m;
        !gk_at.(i) <- k
      end;
      (!gm_at.(i) *. float_of_int c) -. !gk_at.(i)
    in
    let refresh_heap () =
      for t = 0 to !ntouched - 1 do
        let key = !touched.(t) in
        let i = probe key in
        !kc.(i * 2) <- key;
        let c = !kc.((i * 2) + 1) in
        if c > 0 then begin
          let g = gain_slot i key c in
          if g > 0.0 && g <> !lastg_at.(i) then begin
            Ccomp_util.Heap.push heap (g, key);
            !lastg_at.(i) <- g
          end
        end
      done;
      ntouched := 0
    in
    let rec pop_best () =
      if Ccomp_util.Heap.is_empty heap then None
      else begin
        let g, key = Ccomp_util.Heap.pop heap in
        let i = probe key in
        (* The pushed copy of [g] is leaving the heap; forget it so a
           later return to the same gain is pushed again. *)
        if !lastg_at.(i) = g then !lastg_at.(i) <- neg_infinity;
        let c = !kc.((i * 2) + 1) in
        if c > 0 && gain_slot i key c = g then Some key else pop_best ()
      end
    in
    let check_counts () =
      let reference = count_candidates dict_get all_items blocks_tokens in
      Hashtbl.iter
        (fun key r ->
          if count_of key <> !r then
            failwith
              (Printf.sprintf "Sadc incremental counts: key %d has %d, rescan says %d" key
                 (count_of key) !r))
        reference;
      for i = 0 to !cap - 1 do
        let key = !kc.(i * 2) land key_mask in
        if key <> 0 && !kc.((i * 2) + 1) <> 0 && not (Hashtbl.mem reference key) then
          failwith
            (Printf.sprintf "Sadc incremental counts: key %d has stale %d" key !kc.((i * 2) + 1))
      done
    in
    Array.iteri add_block blocks_tokens;
    refresh_heap ();
    (* Scratch "already reparsed this round" flags — an occurrence list
       may carry duplicates. *)
    let seen = Bytes.make (max nblocks 1) '\000' in
    let rounds = ref 0 in
    let continue_ = ref true in
    while !continue_ && !dict_n < config.max_entries && !rounds < config.max_rounds do
      incr rounds;
      if check then check_counts ();
      match pop_best () with
      | None -> continue_ := false
      | Some key ->
        let cand = cand_of_key key in
        let nid = push (new_entry dict_get cand) in
        let blocks = !occ_at.(probe key) in
        List.iter
          (fun b ->
            if Bytes.get seen b = '\000' then begin
              Bytes.set seen b '\001';
              ignore (update_block b cand nid : bool)
            end)
          blocks;
        List.iter (fun b -> Bytes.set seen b '\000') blocks;
        refresh_heap ()
    done;
    (Array.sub !dict 0 !dict_n, blocks_tokens, !rounds)

  (* --- entropy coding ------------------------------------------------- *)

  (* Iterate every coded element of a block: [on_token] per token, then
     [on_chunk stream chunk_index value] for each unabsorbed operand
     chunk, in decode pull order. *)
  let iter_block dict all_items tokens ~on_token ~on_chunk =
    Array.iter
      (fun t ->
        on_token t.t_entry;
        let e = dict.(t.t_entry) in
        Array.iteri
          (fun j prim ->
            let items = all_items.(t.t_start + j) in
            Array.iteri
              (fun s stream_items ->
                List.iteri
                  (fun p v ->
                    if not (is_fixed prim s p) then
                      List.iter2 (fun w cv -> on_chunk s w cv) stream_chunks.(s) (chunks_of s v))
                  stream_items)
              items)
          e.prims)
      tokens

  let build_codes dict all_items blocks_tokens =
    let token_freq = Freq.create (Array.length dict) in
    let chunk_freqs =
      Array.map (fun widths -> Array.of_list (List.map (fun w -> Freq.create (1 lsl w)) widths)) stream_widths
    in
    Array.iter
      (fun tokens ->
        iter_block dict all_items tokens
          ~on_token:(fun e -> Freq.add token_freq e)
          ~on_chunk:(fun s w cv -> Freq.add chunk_freqs.(s).(width_index s w) cv))
      blocks_tokens;
    let token_code = Huffman.build token_freq in
    let chunk_codes =
      Array.map
        (Array.map (fun freq -> if Freq.total freq > 0 then Some (Huffman.build freq) else None))
        chunk_freqs
    in
    (token_code, chunk_codes)

  let encode_block w dict token_code chunk_codes instrs all_items tokens =
    Bit_writer.reset w;
    iter_block dict all_items tokens
      ~on_token:(fun e -> Huffman.encode_symbol token_code w e)
      ~on_chunk:(fun s cw cv ->
        match chunk_codes.(s).(width_index s cw) with
        | Some code -> Huffman.encode_symbol code w cv
        | None -> assert false);
    let original =
      Array.fold_left (fun acc t ->
          let stop = t.t_start + t.t_len in
          let sum = ref 0 in
          for i = t.t_start to stop - 1 do
            sum := !sum + I.byte_length instrs.(i)
          done;
          acc + !sum)
        0 tokens
    in
    if Obs.metrics_enabled () then Obs.Counter.add m_writer_flushes (Bit_writer.flushes w);
    (Bit_writer.contents w, original)

  let compress ?(jobs = 1) config instr_list =
    Obs.with_span ~cat:"sadc" ("sadc." ^ I.name ^ ".compress") @@ fun () ->
    let instrs = Array.of_list instr_list in
    if Array.length instrs = 0 then invalid_arg "Sadc.compress: empty program";
    let segs = segments instrs config.block_size in
    (* Operand items feed every dictionary round and both coders; one
       array for the whole program, indexed by the tokens' absolute
       [t_start] — no per-block instruction or item copies anywhere. *)
    let all_items = Array.map I.items instrs in
    (* Dictionary construction and code building are global (they see
       every block), so they stay serial; the entropy-coding of each
       block against the finished tables is independent and fans out,
       each domain reusing one bit writer. *)
    let dict, blocks_tokens, rounds =
      Obs.with_span ~cat:"sadc" "sadc.dictionary" (fun () ->
          build_dictionary_incremental config instrs all_items segs)
    in
    let token_code, chunk_codes = build_codes dict all_items blocks_tokens in
    let instrument = Obs.metrics_enabled () in
    if instrument then begin
      Obs.Gauge.set g_dict_entries (float_of_int (Array.length dict));
      Obs.Gauge.set g_dict_rounds (float_of_int rounds)
    end;
    let blocks =
      Obs.with_span ~cat:"sadc" "sadc.encode" @@ fun () ->
      Ccomp_par.Pool.mapi_local ~jobs
        ~local:(fun () -> Bit_writer.create ())
        (fun w _ tokens ->
          if not instrument then encode_block w dict token_code chunk_codes instrs all_items tokens
          else begin
            let t0 = Obs.now_us () in
            let ((payload, original) as blk) =
              encode_block w dict token_code chunk_codes instrs all_items tokens
            in
            Obs.Histogram.observe m_c_block_us (Obs.now_us () -. t0);
            Obs.Counter.incr m_c_blocks;
            Obs.Counter.add m_c_bytes_in original;
            Obs.Counter.add m_c_bytes_out (String.length payload);
            if original > 0 then
              Obs.Histogram.observe m_c_block_ratio
                (float_of_int (String.length payload) /. float_of_int original);
            blk
          end)
        blocks_tokens
    in
    let original_size = Array.fold_left (fun acc i -> acc + I.byte_length i) 0 instrs in
    { config; dict; token_code; chunk_codes; blocks; original_size; rounds }

  let compress_image ?jobs config image =
    match I.parse image with
    | Some instrs -> compress ?jobs config instrs
    | None -> invalid_arg "Sadc.compress_image: image does not decode"

  let block_count c = Array.length c.blocks

  let block_original_bytes c b = snd c.blocks.(b)

  let block_payload_bytes c b = String.length (fst c.blocks.(b))

  (* Decode one block through a caller-owned reader — per-domain scratch
     of the parallel pipeline; [decompress_block] wraps it with a fresh
     reader for the public one-shot API. *)
  let decompress_block_with r c b =
    let payload, original = c.blocks.(b) in
    let refills0 = Bit_reader.refills r in
    Bit_reader.reset r payload;
    let decode_chunks s =
      List.fold_left
        (fun acc w ->
          let code =
            match c.chunk_codes.(s).(width_index s w) with
            | Some code -> code
            | None -> failwith "Sadc.decompress_block: missing chunk code"
          in
          let v = Huffman.decode_symbol code r in
          (acc lsl w) lor v)
        0 stream_chunks.(s)
    in
    let out = ref [] in
    let produced = ref 0 in
    (* Step budget: every well-formed token yields at least one byte of
       output, so a stream needing more tokens than [original] bytes is
       corrupt — without this a zero-output cycle would spin forever. *)
    let steps = ref 0 in
    while !produced < original do
      incr steps;
      if !steps > original then
        Ccomp_util.Decode_error.fail
          (Step_budget_exhausted "Sadc.decompress_block");
      let tok = Huffman.decode_symbol c.token_code r in
      if tok >= Array.length c.dict then
        Ccomp_util.Decode_error.invalid_code "Sadc.decompress_block: token beyond dictionary";
      let e = c.dict.(tok) in
      Array.iter
        (fun prim ->
          let counters = Array.make I.stream_count 0 in
          let next s =
            let p = counters.(s) in
            counters.(s) <- p + 1;
            match List.find_opt (fun (s', p', _) -> s' = s && p' = p) prim.fixed with
            | Some (_, _, v) -> v
            | None -> decode_chunks s
          in
          let instr = I.read ~symbol:prim.sym ~next in
          produced := !produced + I.byte_length instr;
          out := instr :: !out)
        e.prims
    done;
    if !produced <> original then failwith "Sadc.decompress_block: length mismatch";
    if Obs.metrics_enabled () then
      Obs.Counter.add m_reader_refills (Bit_reader.refills r - refills0);
    List.rev !out

  let decompress_block c b = decompress_block_with (Bit_reader.create "") c b

  (* Zero-copy block decoder: same token walk as
     [decompress_block_with], but every instruction's bytes land
     straight in the output buffer via [I.read_into] — no instruction
     list, no intermediate string and (for fixed-width ISAs) no
     per-instruction allocation at all. The reader, pull scratch and
     decode closures are built once per domain and reused for every
     block it draws, so a block decode allocates nothing — domains that
     do not touch the minor heap do not meet at GC synchronisation
     barriers, which is what makes jobs=2 pay on few-core hosts.
     The returned [decode b out pos] writes block [b]'s bytes at
     [out.(pos)] and returns the count, which the declared block size
     is enforced to equal. *)
  let make_block_decoder c =
    let r = Bit_reader.create "" in
    let rec chunks s acc = function
      | [] -> acc
      | w :: tl ->
        let code =
          match c.chunk_codes.(s).(width_index s w) with
          | Some code -> code
          | None -> failwith "Sadc.decompress_block: missing chunk code"
        in
        let v = Huffman.decode_symbol code r in
        chunks s ((acc lsl w) lor v) tl
    in
    (* Per-block scratch shared by every instruction: pull counters and
       the current primitive's absorbed operands. Item values are
       non-negative, so -1 can mark "not absorbed". *)
    let counters = Array.make I.stream_count 0 in
    let cur_fixed = ref [] in
    let rec fixed_at s p = function
      | [] -> -1
      | (s', p', v) :: tl -> if s' = s && p' = p then v else fixed_at s p tl
    in
    let next s =
      let p = counters.(s) in
      counters.(s) <- p + 1;
      let v = fixed_at s p !cur_fixed in
      if v >= 0 then v else chunks s 0 stream_chunks.(s)
    in
    fun b out pos ->
      let payload, original = c.blocks.(b) in
      let refills0 = Bit_reader.refills r in
      Bit_reader.reset r payload;
      let produced = ref 0 in
      let steps = ref 0 in
      while !produced < original do
        incr steps;
        if !steps > original then
          Ccomp_util.Decode_error.fail
            (Step_budget_exhausted "Sadc.decompress_block");
        let tok = Huffman.decode_symbol c.token_code r in
        if tok >= Array.length c.dict then
          Ccomp_util.Decode_error.invalid_code "Sadc.decompress_block: token beyond dictionary";
        let prims = c.dict.(tok).prims in
        for k = 0 to Array.length prims - 1 do
          let prim = Array.unsafe_get prims k in
          Array.fill counters 0 I.stream_count 0;
          cur_fixed := prim.fixed;
          produced := !produced + I.read_into ~symbol:prim.sym ~next out (pos + !produced)
        done
      done;
      if !produced <> original then failwith "Sadc.decompress_block: length mismatch";
      if Obs.metrics_enabled () then
        Obs.Counter.add m_reader_refills (Bit_reader.refills r - refills0);
      original

  let decompress ?(jobs = 1) c =
    Obs.with_span ~cat:"sadc" ("sadc." ^ I.name ^ ".decompress") @@ fun () ->
    let instrument = Obs.metrics_enabled () in
    let nblocks = Array.length c.blocks in
    (* Prefix-sum the declared block sizes so every block decodes
       directly into its own slice of one shared output buffer — no
       per-block result strings to concatenate. The decoder enforces
       decoded bytes = declared bytes, so slices cannot overlap in a
       returned result even on corrupt input (writes are bounds-checked
       and [decompress_checked] folds any failure into a typed
       error). *)
    let offs = Array.make (nblocks + 1) 0 in
    for b = 0 to nblocks - 1 do
      offs.(b + 1) <- offs.(b) + snd c.blocks.(b)
    done;
    let out = Bytes.create offs.(nblocks) in
    Ccomp_par.Pool.iter_n ~jobs
      ~local:(fun () -> make_block_decoder c)
      nblocks
      (fun decode b ->
        let t0 = if instrument then Obs.now_us () else 0.0 in
        let n = decode b out offs.(b) in
        if instrument then begin
          Obs.Histogram.observe m_d_block_us (Obs.now_us () -. t0);
          Obs.Counter.incr m_d_blocks;
          Obs.Counter.add m_d_bytes_in (String.length (fst c.blocks.(b)));
          Obs.Counter.add m_d_bytes_out n
        end);
    Bytes.unsafe_to_string out

  let decompress_checked ?max_output c =
    Ccomp_util.Decode_error.protect ~section:"sadc" (fun () ->
        (match max_output with
        | Some limit when c.original_size > limit ->
          Ccomp_util.Decode_error.fail
            (Length_overflow { section = "sadc"; declared = c.original_size; limit })
        | Some _ | None -> ());
        decompress c)

  let block_payload c b = fst c.blocks.(b)

  let dictionary c = Array.copy c.dict

  let stats c =
    let base = ref 0 and group = ref 0 and special = ref 0 and longest = ref 0 in
    Array.iter
      (fun e ->
        let n = Array.length e.prims in
        if n > !longest then longest := n;
        if n > 1 then incr group
        else if e.prims.(0).fixed = [] then incr base
        else incr special)
      c.dict;
    {
      entries = Array.length c.dict;
      base_entries = !base;
      group_entries = !group;
      specialized_entries = !special;
      longest_group = !longest;
      rounds = c.rounds;
    }

  let code_bytes c = Array.fold_left (fun acc (payload, _) -> acc + String.length payload) 0 c.blocks

  (* Dictionary wire format: count, then per entry the primitive list with
     absorbed operands (stream, position, 32-bit value). *)
  let dict_bytes c =
    let per_entry e =
      1 + Array.fold_left (fun acc p -> acc + 2 + 1 + (6 * List.length p.fixed)) 0 e.prims
    in
    2 + Array.fold_left (fun acc e -> acc + per_entry e) 0 c.dict

  let tables_bytes c =
    let code_len = function Some code -> String.length (Huffman.serialize_lengths code) | None -> 1 in
    String.length (Huffman.serialize_lengths c.token_code)
    + Array.fold_left
        (fun acc per_stream -> Array.fold_left (fun acc code -> acc + code_len code) acc per_stream)
        0 c.chunk_codes

  let original_size c = c.original_size

  let ratio c = float_of_int (code_bytes c) /. float_of_int c.original_size

  let ratio_with_tables c =
    float_of_int (code_bytes c + dict_bytes c + tables_bytes c) /. float_of_int c.original_size

  (* --- serialization ------------------------------------------------- *)

  let add_u16 b v =
    assert (v >= 0 && v < 65536);
    Buffer.add_char b (Char.chr (v lsr 8));
    Buffer.add_char b (Char.chr (v land 0xff))

  let add_u32 b v =
    add_u16 b ((v lsr 16) land 0xffff);
    add_u16 b (v land 0xffff)

  let serialize c =
    let b = Buffer.create (code_bytes c + 1024) in
    add_u16 b c.config.block_size;
    add_u16 b c.config.max_entries;
    add_u16 b c.config.max_rounds;
    add_u16 b c.rounds;
    add_u32 b c.original_size;
    add_u16 b (Array.length c.dict);
    Array.iter
      (fun e ->
        Buffer.add_char b (Char.chr (Array.length e.prims));
        Array.iter
          (fun prim ->
            add_u16 b prim.sym;
            Buffer.add_char b (Char.chr (List.length prim.fixed));
            List.iter
              (fun (s, p, v) ->
                Buffer.add_char b (Char.chr s);
                Buffer.add_char b (Char.chr p);
                add_u32 b v)
              prim.fixed)
          e.prims)
      c.dict;
    Buffer.add_string b (Huffman.serialize_lengths c.token_code);
    Array.iter
      (Array.iter (fun code ->
           match code with
           | Some code ->
             Buffer.add_char b '\x01';
             Buffer.add_string b (Huffman.serialize_lengths code)
           | None -> Buffer.add_char b '\x00'))
      c.chunk_codes;
    add_u32 b (Array.length c.blocks);
    Array.iter
      (fun (payload, original) ->
        add_u16 b (String.length payload);
        add_u16 b original;
        Buffer.add_string b payload)
      c.blocks;
    Buffer.contents b

  (* Byte ranges inside [serialize c], mirroring its layout: a 12-byte
     fixed header, the dictionary, the token and chunk tables, the block
     count, then per block a 4-byte prefix and the payload. *)
  let tables_span c =
    let token = String.length (Huffman.serialize_lengths c.token_code) in
    let chunks =
      Array.fold_left
        (fun acc per_stream ->
          Array.fold_left
            (fun acc code ->
              match code with
              | Some code -> acc + 1 + String.length (Huffman.serialize_lengths code)
              | None -> acc + 1)
            acc per_stream)
        0 c.chunk_codes
    in
    (12, dict_bytes c + token + chunks)

  let block_spans c =
    let tables_off, tables_len = tables_span c in
    let off = ref (tables_off + tables_len + 4) in
    Array.map
      (fun (payload, _) ->
        off := !off + 4;
        let o = !off in
        off := o + String.length payload;
        (o, String.length payload))
      c.blocks

  let deserialize s ~pos =
    let p = ref pos in
    let fail () = invalid_arg "Sadc.deserialize: truncated input" in
    let byte () =
      if !p >= String.length s then fail ();
      let v = Char.code s.[!p] in
      incr p;
      v
    in
    let u16 () =
      let hi = byte () in
      (hi lsl 8) lor byte ()
    in
    let u32 () =
      let hi = u16 () in
      (hi lsl 16) lor u16 ()
    in
    let take n =
      if !p + n > String.length s then fail ();
      let sub = String.sub s !p n in
      p := !p + n;
      sub
    in
    let block_size = u16 () in
    let max_entries = u16 () in
    let max_rounds = u16 () in
    let rounds = u16 () in
    let original_size = u32 () in
    let dict =
      Array.init (u16 ()) (fun _ ->
          let prims =
            Array.init (byte ()) (fun _ ->
                let sym = u16 () in
                let fixed =
                  List.init (byte ()) (fun _ ->
                      let s' = byte () in
                      let p' = byte () in
                      let v = u32 () in
                      (s', p', v))
                in
                { sym; fixed })
          in
          (* An entry without primitives decodes to zero bytes; the block
             decoder's step budget would catch the resulting spin, but a
             dictionary that cannot have been built is corruption. *)
          if Array.length prims = 0 then invalid_arg "Sadc.deserialize: empty dictionary entry";
          { prims })
    in
    let token_code, next = Huffman.deserialize_lengths s ~pos:!p in
    p := next;
    let chunk_codes =
      Array.map
        (fun widths ->
          Array.of_list
            (List.map
               (fun _ ->
                 match byte () with
                 | 0 -> None
                 | _ ->
                   let code, next = Huffman.deserialize_lengths s ~pos:!p in
                   p := next;
                   Some code)
               widths))
        stream_widths
    in
    let nblocks = u32 () in
    (* Each block costs at least its 4-byte prefix; a count the remaining
       bytes cannot hold must fail before sizing an array by it. *)
    if nblocks > (String.length s - !p) / 4 then fail ();
    let blocks =
      Array.init nblocks (fun _ ->
          let len = u16 () in
          let original = u16 () in
          (take len, original))
    in
    let config = { block_size; max_entries; max_rounds } in
    ({ config; dict; token_code; chunk_codes; blocks; original_size; rounds }, !p)

  let deserialize_checked s ~pos =
    Ccomp_util.Decode_error.protect ~section:"sadc.deserialize" (fun () -> deserialize s ~pos)

  (* --- test hooks ---------------------------------------------------- *)

  module For_tests = struct
    let prepare config instr_list =
      let instrs = Array.of_list instr_list in
      let segs = segments instrs config.block_size in
      (instrs, Array.map I.items instrs, segs)

    let build_naive config instr_list =
      let instrs, all_items, segs = prepare config instr_list in
      let dict, _, rounds = build_dictionary_naive config instrs all_items segs in
      (dict, rounds)

    let build_incremental ?check config instr_list =
      let instrs, all_items, segs = prepare config instr_list in
      let dict, _, rounds = build_dictionary_incremental ?check config instrs all_items segs in
      (dict, rounds)
  end
end

module Mips = Make (Sadc_isa.Mips_streams)
module X86 = Make (Sadc_isa.X86_streams)
module X86_fields = Make (Sadc_isa.X86_field_streams)
