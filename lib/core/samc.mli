(** SAMC — Semiadaptive Markov Compression (§3).

    ISA-independent: treats the program as fixed-width words, splits every
    word into bit streams, trains one set of connected binary Markov trees
    over the whole program (semiadaptive), and arithmetic-codes each cache
    block independently. Both the coder interval and the model context are
    reset at block boundaries, so any block can be decompressed knowing
    only its own bytes — the property the cache refill engine needs. *)

type config = {
  word_bits : int;  (** instruction width: 32 for MIPS, 8 for byte mode *)
  streams : Stream_split.t;  (** partition of \[0, word_bits), MSB first *)
  context_bits : int;  (** connected-tree context between streams *)
  quantize : bool;  (** power-of-two probabilities (shift-only hardware) *)
  prune_below : int;  (** drop tree nodes seen fewer times (0 = keep all) *)
  block_size : int;  (** cache block size in bytes *)
}

val mips_config :
  ?block_size:int -> ?context_bits:int -> ?quantize:bool -> ?prune_below:int ->
  ?streams:Stream_split.t -> unit -> config
(** The paper's MIPS setup: 32-bit words in 4 streams of 8 consecutive
    bits (overridable), context 2, exact probabilities, 32-byte blocks. *)

val byte_config :
  ?block_size:int -> ?context_bits:int -> ?quantize:bool -> ?prune_below:int -> unit -> config
(** The CISC setup: no stream subdivision is possible, so words are single
    bytes and the connected trees carry context from byte to byte. *)

val validate_config : config -> (unit, string) result

type compressed = {
  config : config;
  model : Markov_model.t;
  blocks : string array;  (** per cache block, independently decodable *)
  original_size : int;  (** bytes of the uncompressed program *)
}

val compress : ?jobs:int -> config -> string -> compressed
(** [compress config code] trains the model on [code] and encodes it
    block by block. [String.length code] must be a multiple of the word
    size in bytes. [jobs] (default 1) fans per-block encoding over that
    many domains ({!Ccomp_par.Pool}); the output is byte-identical for
    every [jobs] value because blocks are independent and reassembled in
    order.
    @raise Invalid_argument on a bad config or size. *)

val decompress_block : config -> Markov_model.t -> original_bytes:int -> string -> string
(** [decompress_block config model ~original_bytes data] decodes one
    block's payload back to [original_bytes] of code — this is the cache
    refill engine's operation and needs only the block's own bytes.
    The kernel reads the model through its flat probability array
    ({!Markov_model.flat_probs}); output is byte-identical to
    {!decompress_block_ref}. *)

val decompress_block_ref : config -> Markov_model.t -> original_bytes:int -> string -> string
(** The original pointer-chasing decode kernel, kept as the reference for
    equivalence tests and as the pre-optimisation baseline the benchmark
    harness reports against. *)

val decompress : ?jobs:int -> compressed -> string
(** Full image reconstruction (concatenation of block decodes), optionally
    fanned over [jobs] domains. *)

val decompress_block_parallel :
  config -> Markov_model.t -> original_bytes:int -> string -> string * int
(** Like {!decompress_block} but through the parallel nibble engine of
    Fig. 5 ({!Ccomp_arith.Nibble_decoder}): streams are decoded four bits
    per step with all 15 midpoints evaluated speculatively, exactly as the
    paper's hardware does. Returns the block and the total number of
    midpoint evaluations (the hardware's parallel work). The output is
    bit-for-bit identical to the serial decoder's. *)

val block_count : config -> code_bytes:int -> int

val code_bytes : compressed -> int
(** Total compressed code size: sum of block payloads. *)

val model_bytes : compressed -> int
(** Serialized Markov-model size (shipped with the program). *)

val ratio : compressed -> float
(** Compressed code bytes / original bytes (the paper's figure metric;
    excludes model and LAT — see DESIGN.md §2 accounting note). *)

val ratio_with_model : compressed -> float
(** (code + model) / original. *)

val serialize : compressed -> string
(** Self-contained wire form: configuration (including the stream
    assignment), Markov model, and per-block payloads. *)

val deserialize : string -> pos:int -> compressed * int
(** Inverse of {!serialize}; returns the value and the next position.
    @raise Invalid_argument on malformed input. *)

val decompress_checked :
  ?max_output:int -> compressed -> (string, Ccomp_util.Decode_error.t) result
(** Total variant of {!decompress}: arbitrary (corrupted) payload bytes
    yield [Error], never an exception or unbounded work. [max_output]
    rejects a declared [original_size] beyond the caller's allocation
    budget with [Length_overflow]. *)

val deserialize_checked :
  string -> pos:int -> (compressed * int, Ccomp_util.Decode_error.t) result
(** Total variant of {!deserialize}. *)

val model_span : compressed -> int * int
(** [(offset, length)] of the serialized Markov model inside
    {!serialize}'s output — the fault injector's "model table" target. *)

val block_spans : compressed -> (int * int) array
(** Per-block [(offset, length)] of each block payload inside
    {!serialize}'s output (excluding the 2-byte length prefixes). *)
