module Prng = Ccomp_util.Prng
module Decode_error = Ccomp_util.Decode_error
module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events

(* Campaign outcomes as metrics: one counter per disposition, summed
   across codecs, so a fuzz run's `--metrics` dump shows
   injections/detections/escapes next to the codec-level telemetry. *)
let m_trials = Obs.Counter.make "fault.trials"

let m_injected = Obs.Counter.make "fault.injected"

let m_detected = Obs.Counter.make "fault.detected"

let m_recovered = Obs.Counter.make "fault.recovered"

let m_miscompared = Obs.Counter.make "fault.miscompared"

type outcome = Detected | Miscompared | Recovered

let outcome_name = function
  | Detected -> "detected"
  | Miscompared -> "miscompared"
  | Recovered -> "recovered"

type codec = {
  name : string;
  encoded : string;
  reference : string;
  decode : string -> (string, Decode_error.t) result;
  integrity_checked : bool;
}

type report = {
  codec_name : string;
  seed : int;
  trials : int;
  faults_per_trial : int;
  detected : int;
  recovered : int;
  miscompared : int;
  integrity_checked : bool;
}

(* Deliberately no [try] here: a [decode] that raises instead of
   returning [Error _] is a totality bug, and the campaign must fail
   loudly rather than book it under any outcome. *)
let trial codec damaged =
  match codec.decode damaged with
  | Error _ -> Detected
  | Ok out -> if String.equal out codec.reference then Recovered else Miscompared

let run ?(faults_per_trial = 1) ?kinds ?(jobs = 1) ~seed ~trials codec =
  Obs.with_span ~cat:"fault" ("fault.campaign." ^ codec.name) @@ fun () ->
  (* Fault placement consumes the PRNG sequentially so the damaged
     inputs are identical for every [jobs] value; only the (pure)
     decode-and-compare of each trial fans out over the pool. *)
  let g = Prng.create (Int64.of_int seed) in
  let damaged =
    Array.init trials (fun _ -> fst (Injector.inject ?kinds ~count:faults_per_trial g codec.encoded))
  in
  let outcomes = Ccomp_par.Pool.map ~jobs (trial codec) damaged in
  let detected = ref 0 and recovered = ref 0 and miscompared = ref 0 in
  Array.iter
    (function
      | Detected -> incr detected
      | Recovered -> incr recovered
      | Miscompared -> incr miscompared)
    outcomes;
  if Obs.metrics_enabled () then begin
    Obs.Counter.add m_trials trials;
    Obs.Counter.add m_injected (trials * faults_per_trial);
    Obs.Counter.add m_detected !detected;
    Obs.Counter.add m_recovered !recovered;
    Obs.Counter.add m_miscompared !miscompared
  end;
  Events.info
    ~fields:
      [
        ("codec", codec.name);
        ("seed", string_of_int seed);
        ("trials", string_of_int trials);
        ("miscompared", string_of_int !miscompared);
      ]
    "fault.campaign";
  {
    codec_name = codec.name;
    seed;
    trials;
    faults_per_trial;
    detected = !detected;
    recovered = !recovered;
    miscompared = !miscompared;
    integrity_checked = codec.integrity_checked;
  }

let sweep ?kinds ~seed ~trials ~fault_counts codec =
  List.map
    (fun count -> run ~faults_per_trial:count ?kinds ~seed:(seed + count) ~trials codec)
    fault_counts

(* the seed rides in every row so any failure line alone is enough to
   replay the exact campaign that produced it *)
let report_row r =
  Printf.sprintf "%-14s %10d %7d %6d %9d %10d %12d%s" r.codec_name r.seed r.trials
    r.faults_per_trial r.detected r.recovered r.miscompared
    (if r.integrity_checked then "" else "  (integrity off)")

let report_header =
  Printf.sprintf "%-14s %10s %7s %6s %9s %10s %12s" "codec" "seed" "trials" "faults" "detected"
    "recovered" "miscompared"
