module Prng = Ccomp_util.Prng

type fault =
  | Bit_flip of int
  | Byte_set of int * int
  | Truncate of int
  | Duplicate of int * int

let describe_fault = function
  | Bit_flip bit -> Printf.sprintf "flip bit %d of byte %d" (bit land 7) (bit lsr 3)
  | Byte_set (off, v) -> Printf.sprintf "set byte %d to 0x%02x" off v
  | Truncate len -> Printf.sprintf "truncate to %d bytes" len
  | Duplicate (off, len) -> Printf.sprintf "duplicate %d bytes at offset %d" len off

let apply fault s =
  let n = String.length s in
  match fault with
  | Bit_flip bit ->
    let off = bit lsr 3 in
    if off >= n then s
    else begin
      let b = Bytes.of_string s in
      Bytes.set b off (Char.chr (Char.code s.[off] lxor (1 lsl (bit land 7))));
      Bytes.to_string b
    end
  | Byte_set (off, v) ->
    if off >= n then s
    else begin
      let b = Bytes.of_string s in
      Bytes.set b off (Char.chr (v land 0xff));
      Bytes.to_string b
    end
  | Truncate len -> if len >= n then s else String.sub s 0 (max 0 len)
  | Duplicate (off, len) ->
    if off >= n then s
    else begin
      let len = min len (n - off) in
      String.sub s 0 (off + len) ^ String.sub s off (n - off)
    end

(* Generators. [range] restricts the damage to [(offset, length)] — the
   hook {!Target} uses to aim at one SECF section. All draw only from the
   supplied generator, so a campaign is reproducible from its seed. *)

let clip_range n = function
  | None -> (0, n)
  | Some (off, len) ->
    let off = min (max 0 off) n in
    (off, max 0 (min len (n - off)))

let random_bit_flip ?range g s =
  let off, len = clip_range (String.length s) range in
  if len = 0 then Bit_flip 0 else Bit_flip (((off + Prng.int g len) lsl 3) lor Prng.bits g 3)

let random_byte_set ?range g s =
  let off, len = clip_range (String.length s) range in
  if len = 0 then Byte_set (0, 0) else Byte_set (off + Prng.int g len, Prng.bits g 8)

let random_truncate ?range g s =
  let off, len = clip_range (String.length s) range in
  if len = 0 then Truncate 0 else Truncate (off + Prng.int g len)

let random_duplicate ?range g s =
  let off, len = clip_range (String.length s) range in
  if len = 0 then Duplicate (0, 0)
  else
    let o = off + Prng.int g len in
    Duplicate (o, 1 + Prng.int g (max 1 (len - (o - off))))

type kind = Flip | Byte | Trunc | Dup

let random_fault ?range ?(kinds = [| Flip |]) g s =
  match Prng.choose g kinds with
  | Flip -> random_bit_flip ?range g s
  | Byte -> random_byte_set ?range g s
  | Trunc -> random_truncate ?range g s
  | Dup -> random_duplicate ?range g s

let inject ?range ?kinds ~count g s =
  let rec go k s faults =
    if k = 0 then (s, List.rev faults)
    else
      let f = random_fault ?range ?kinds g s in
      go (k - 1) (apply f s) (f :: faults)
  in
  go count s []
