(** Fault-injection campaigns over compressed codecs.

    Each trial damages a pristine encoding with the {!Injector}, runs the
    codec's total [_checked] decoder, and books one of three outcomes:

    - [Detected]: the decoder returned a typed error — the system can
      retry, trap, or serve a stale line ({!Ccomp_memsys.System});
    - [Recovered]: the decode round-tripped to the reference bytes (the
      fault hit dead wire space, or cancelled out);
    - [Miscompared]: the decode "succeeded" with wrong bytes — silent
      corruption, acceptable only when the codec carries no integrity
      metadata ([integrity_checked = false]).

    Escaped exceptions are deliberately not caught: a raising decoder is
    the bug this harness exists to find, and must abort the campaign. *)

type outcome = Detected | Miscompared | Recovered

val outcome_name : outcome -> string

type codec = {
  name : string;
  encoded : string;  (** pristine wire bytes to damage *)
  reference : string;  (** expected decode of the pristine bytes *)
  decode : string -> (string, Ccomp_util.Decode_error.t) result;
  integrity_checked : bool;
      (** true when [decode] verifies CRCs — then [Miscompared] is a
          harness failure, not a statistic *)
}

type report = {
  codec_name : string;
  seed : int;  (** the seed this campaign ran with — replays it exactly *)
  trials : int;
  faults_per_trial : int;
  detected : int;
  recovered : int;
  miscompared : int;
  integrity_checked : bool;
}

val trial : codec -> string -> outcome
(** Decode one damaged encoding and classify. *)

val run :
  ?faults_per_trial:int ->
  ?kinds:Injector.kind array ->
  ?jobs:int ->
  seed:int ->
  trials:int ->
  codec ->
  report
(** [run ~seed ~trials codec] — deterministic in [seed]. Default one
    single-bit flip per trial. [jobs] (default 1) fans the trial decodes
    over that many domains; fault placement stays sequential, so the
    report is identical for every [jobs] value. *)

val sweep :
  ?kinds:Injector.kind array ->
  seed:int ->
  trials:int ->
  fault_counts:int list ->
  codec ->
  report list
(** One {!run} per entry of [fault_counts] (seeds offset so the sweeps
    are independent). *)

val report_header : string

val report_row : report -> string
(** Fixed-width row matching {!report_header}. *)
