(** Deterministic storage-fault injection.

    Models the ways a compressed ROM image goes bad: single-bit rot (the
    dominant flash/mask-ROM failure mode), whole-byte corruption, a short
    read (truncation), and a controller-level re-read (duplication).
    Every generator draws only from the supplied {!Ccomp_util.Prng.t}, so
    a whole campaign replays exactly from one seed. *)

type fault =
  | Bit_flip of int  (** global bit index: byte [i lsr 3], bit [i land 7] *)
  | Byte_set of int * int  (** [(offset, value)] *)
  | Truncate of int  (** keep only the first [n] bytes *)
  | Duplicate of int * int
      (** [(offset, len)]: re-insert a copy of [len] bytes at [offset] *)

val describe_fault : fault -> string

val apply : fault -> string -> string
(** Total: out-of-range faults return the input unchanged. *)

type kind = Flip | Byte | Trunc | Dup

val random_bit_flip : ?range:int * int -> Ccomp_util.Prng.t -> string -> fault
(** [range = (offset, length)] restricts the damage to that span — used to
    aim at one SECF section. Default: the whole string. *)

val random_byte_set : ?range:int * int -> Ccomp_util.Prng.t -> string -> fault

val random_truncate : ?range:int * int -> Ccomp_util.Prng.t -> string -> fault

val random_duplicate : ?range:int * int -> Ccomp_util.Prng.t -> string -> fault

val random_fault :
  ?range:int * int -> ?kinds:kind array -> Ccomp_util.Prng.t -> string -> fault
(** Draw a fault of a uniformly chosen kind (default: bit flips only —
    the acceptance fault model). *)

val inject :
  ?range:int * int ->
  ?kinds:kind array ->
  count:int ->
  Ccomp_util.Prng.t ->
  string ->
  string * fault list
(** Apply [count] random faults in sequence (each drawn against the
    current, possibly already-damaged string); returns the damaged string
    and the faults in application order. *)
