module Image = Ccomp_image.Image

let span image section =
  List.assoc_opt section (Image.sections image)

let sections_of_name image name =
  List.filter_map
    (fun (sec, range) ->
      let n = Image.section_name sec in
      if n = name || (name = "blocks" && String.length n >= 5 && String.sub n 0 5 = "block")
      then Some (sec, range)
      else None)
    (Image.sections image)

let corrupt_section ?kinds ~count g image section encoded =
  match span image section with
  | None -> (encoded, [])
  | Some range -> Injector.inject ~range ?kinds ~count g encoded

let corrupt_random_block ?kinds ~count g image encoded =
  let n = Image.block_count image in
  if n = 0 then (encoded, [])
  else
    let b = Ccomp_util.Prng.int g n in
    corrupt_section ?kinds ~count g image (Image.Sec_block b) encoded
