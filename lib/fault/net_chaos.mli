(** Socket-level chaos against a live [ccomp serve] daemon.

    Where {!Campaign} damages stored images, this harness damages the
    {e transport}: it replays, deterministically from one seed, the
    ways a network peer goes bad — slowloris writers that drip one
    byte per 50–150 ms, frames truncated mid-payload, connect-and-hang-up
    churn, [SO_LINGER 0] resets mid-frame, frames declaring
    payloads past [max_payload], an overload flood that fills every
    worker queue, 1 ms-deadline probes, and (opt-in) the crash-worker
    opcode — with well-formed jobs interleaved throughout.

    The CCQ1v4 keep-alive path gets its own battery: oracle-checked
    job sequences down one persistent {!Ccomp_serve.Serve.Conn},
    pipelined bursts whose echoed request ids expose reordered or
    crossed replies, a complete frame followed by a torn successor
    (the first job must still be answered — and under
    [--max-requests-per-conn 1] this doubles as a recycle race), and
    (opt-in via [stall_s]) an inter-frame stall that the daemon must
    idle-close rather than hold forever. Well-formed jobs alternate
    between the keep-alive client and the pre-v4 one-shot shape, so
    every run also proves legacy clients still get identical bytes.

    The contract it checks is the ISSUE-6 acceptance criterion: the
    daemon {e never} deadlocks or dies; every job that completes is
    byte-identical to the local oracle ({!Ccomp_serve.Serve.handle_request},
    the daemon's own dispatch); overload produces {e typed}
    [Overloaded] replies rather than stalls; expired deadlines produce
    typed [Deadline_expired] replies.

    Everything random draws from one {!Ccomp_util.Prng.t} seeded by
    [config.seed], and the seed rides in the report and every emitted
    event, so any failure replays exactly. *)

type config = {
  host : string;
  port : int;
  seed : int;  (** drives the whole attack mix; logged everywhere *)
  rounds : int;  (** repetitions of the attack mix *)
  flood : int;
      (** silent connections held open per round to force queue-full
          shedding; [0] skips the flood (and its assertion) *)
  stall_s : float;
      (** inter-frame stall length, once per round; only proves
          anything when it exceeds the daemon's [--idle-timeout].
          [0.] (the default) skips the stall (and its assertion) *)
  timeout_s : float;  (** chaos-side budget per connect/read/write *)
  crash_workers : bool;
      (** send the crash-worker opcode — requires a daemon started
          with [--unsafe-crash-op] *)
}

val default_config : config
(** [127.0.0.1:7070], seed 1, 3 rounds, no flood, no stall, 5 s
    timeouts, no crash ops. *)

type report = {
  seed : int;
  valid_jobs : int;
  byte_identical : int;  (** served reply = local oracle, byte for byte *)
  mismatched : int;  (** corruption — any nonzero fails {!passed} *)
  shed_typed : int;  (** typed [Overloaded] replies received *)
  deadline_replies : int;  (** typed [Deadline_expired] replies received *)
  deadline_probes : int;
  transport_errors : int;  (** connects/reads the chaos side lost — expected *)
  slowloris : int;
  truncations : int;
  oversize : int;
  churn : int;
  resets : int;
  crash_ops : int;
  legacy_jobs : int;  (** valid jobs sent over the pre-v4 one-shot shape *)
  pipeline_bursts : int;  (** bursts that got at least one reply unshed *)
  pipelined_replies : int;
  order_violations : int;  (** echoed id <> expected — any nonzero fails *)
  midstream_truncations : int;
  midstream_intact : int;  (** first frames answered despite a torn successor *)
  stalls : int;
  stall_closes : int;  (** stalls the daemon idle-closed, as it must *)
  alive_after : bool;  (** [/healthz] answered 200 after the last round *)
}

val run : config -> (report, string) result
(** Execute the campaign against a live daemon. [Error] only when no
    daemon answers [/healthz] before the first attack — everything the
    daemon does {e during} the campaign is evidence, not an error. *)

val passed : config -> report -> (unit, string) result
(** The acceptance gate: alive after, zero mismatches, at least one
    byte-identical completion, a typed shed if [flood > 0], a typed
    deadline reply if any probe ran, zero order violations, multiple
    pipelined replies if any burst ran, at least one intact first
    frame if any mid-stream truncation ran, and at least one
    idle-close if any stall ran. *)

val report_lines : report -> string list
(** Human-readable summary, seed first. *)
