(** Section-targeted corruption of SECF images.

    Uses {!Ccomp_image.Image.sections} to aim the {!Injector} at one
    structural region of a written image — the magic, the header, the LAT,
    the model/dictionary tables, one block's payload, the per-block CRC
    table, or the trailing CRC-32 — so a campaign can ask questions like
    "does LAT damage ever decode silently?" rather than only spraying the
    whole image. *)

val span : Ccomp_image.Image.t -> Ccomp_image.Image.section -> (int * int) option
(** Byte range of a section within [Image.write image], if present. *)

val sections_of_name :
  Ccomp_image.Image.t -> string -> (Ccomp_image.Image.section * (int * int)) list
(** Sections matching a CLI-friendly name ("magic", "header", "lat",
    "tables", "block 3", "crc32", …); ["blocks"] matches every block. *)

val corrupt_section :
  ?kinds:Injector.kind array ->
  count:int ->
  Ccomp_util.Prng.t ->
  Ccomp_image.Image.t ->
  Ccomp_image.Image.section ->
  string ->
  string * Injector.fault list
(** Inject [count] faults confined to one section of the encoded image.
    Unknown sections leave the image unchanged. *)

val corrupt_random_block :
  ?kinds:Injector.kind array ->
  count:int ->
  Ccomp_util.Prng.t ->
  Ccomp_image.Image.t ->
  string ->
  string * Injector.fault list
(** Pick a uniform block and corrupt only its compressed payload. *)
