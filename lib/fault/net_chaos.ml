module Prng = Ccomp_util.Prng
module Obs = Ccomp_obs.Obs
module Events = Ccomp_obs.Events
module Serve = Ccomp_serve.Serve

(* Chaos-side telemetry: what the harness observed the daemon doing,
   so a chaos run's --metrics dump reads next to the daemon's own
   serve.* counters. *)
let m_attacks = Obs.Counter.make "chaos.attacks"

let m_mismatched = Obs.Counter.make "chaos.mismatched"

let m_shed_seen = Obs.Counter.make "chaos.shed_replies"

let m_deadline_seen = Obs.Counter.make "chaos.deadline_replies"

type config = {
  host : string;
  port : int;
  seed : int;
  rounds : int;
  flood : int;
  stall_s : float;
  timeout_s : float;
  crash_workers : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 7070;
    seed = 1;
    rounds = 3;
    flood = 0;
    stall_s = 0.0;
    timeout_s = 5.0;
    crash_workers = false;
  }

type report = {
  seed : int;
  valid_jobs : int;
  byte_identical : int;
  mismatched : int;
  shed_typed : int;
  deadline_replies : int;
  deadline_probes : int;
  transport_errors : int;
  slowloris : int;
  truncations : int;
  oversize : int;
  churn : int;
  resets : int;
  crash_ops : int;
  legacy_jobs : int;
  pipeline_bursts : int;
  pipelined_replies : int;
  order_violations : int;
  midstream_truncations : int;
  midstream_intact : int;
  stalls : int;
  stall_closes : int;
  alive_after : bool;
}

(* --- raw-socket attack plumbing ------------------------------------------ *)

(* Attacks talk Unix sockets directly: the point is to misbehave in
   ways the Serve clients are built not to. Every helper is total —
   the daemon closing on us, resetting us, or timing us out is the
   expected outcome, not an error. *)

let connect ~timeout_s ~host ~port =
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd addr with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
    (match Unix.select [] [ fd ] [] timeout_s with
    | _, [ _ ], _ when Unix.getsockopt_error fd = None -> ()
    | _ -> raise (Unix.Unix_error (Unix.ETIMEDOUT, "connect", "")));
    Unix.clear_nonblock fd;
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
  with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Write as much of [s] as the peer will take; stop quietly on EPIPE,
   reset, or send-timeout. Returns bytes written. *)
let write_best_effort fd s =
  let n = String.length s in
  let rec go pos =
    if pos >= n then pos
    else
      match Unix.write_substring fd s pos (n - pos) with
      | 0 -> pos
      | k -> go (pos + k)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
        -> pos
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
  in
  go 0

(* Read until EOF, error, or timeout — whatever the daemon sent back. *)
let read_reply fd =
  let b = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | k ->
      Buffer.add_subbytes b chunk 0 k;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ();
  Buffer.contents b

let be32 v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xff))

let rd32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

(* Read exactly [n] bytes; None on EOF, reset or timeout. *)
let read_exactly fd n =
  let buf = Bytes.create n in
  let rec go pos =
    if pos >= n then Some (Bytes.to_string buf)
    else
      match Unix.read fd buf pos (n - pos) with
      | 0 -> None
      | k -> go (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
      | exception Unix.Unix_error _ -> None
  in
  go 0

(* One framed CCR1 reply off a keep-alive connection:
   (status, echoed request id if a timing record rode along, payload).
   None on EOF at a frame boundary (the server closed: recycle or idle)
   or any mid-frame surprise. *)
let read_frame fd =
  match read_exactly fd 10 with
  | None -> None
  | Some h ->
    if String.sub h 0 4 <> "CCR1" then None
    else begin
      let status = Char.code h.[4] in
      let tlen = Char.code h.[5] in
      let plen = rd32 h 6 in
      match read_exactly fd (tlen + plen) with
      | None -> None
      | Some body ->
        (* timing record: request_id(8,BE) then three u32 stages; the
           harness's ids are small, so the low word is the id *)
        let id = if tlen >= 8 then Some (rd32 body 4) else None in
        Some (status, id, String.sub body tlen plen)
    end

(* --- the attack mix ------------------------------------------------------ *)

type counters = {
  mutable c_valid : int;
  mutable c_identical : int;
  mutable c_mismatched : int;
  mutable c_shed : int;
  mutable c_deadline : int;
  mutable c_deadline_probes : int;
  mutable c_transport : int;
  mutable c_slowloris : int;
  mutable c_trunc : int;
  mutable c_oversize : int;
  mutable c_churn : int;
  mutable c_resets : int;
  mutable c_crash : int;
  mutable c_legacy : int;
  mutable c_pipeline : int;
  mutable c_pipelined_replies : int;
  mutable c_order_violations : int;
  mutable c_midstream : int;
  mutable c_midstream_ok : int;
  mutable c_stalls : int;
  mutable c_stall_closed : int;
}

let random_code g len =
  (* multiple-of-4 so the MIPS path sees whole words *)
  let len = (len + 3) land lnot 3 in
  String.init len (fun _ -> Char.chr (Prng.int g 256))

(* A well-formed job, checked byte-for-byte against the local oracle:
   handle_request is the daemon's own dispatch, so the served reply
   must be identical unless the daemon legitimately shed it. Alternates
   between the keep-alive client and the pre-v4 one-shot wire shape so
   every chaos run proves old clients still get identical bytes. *)
let valid_job cfg g c =
  let algo = if Prng.bool g then Serve.Samc else Serve.Sadc in
  let code = random_code g (64 + Prng.int g 512) in
  let req = Serve.Compress { algo; isa = Serve.Mips; block_size = 32; code } in
  c.c_valid <- c.c_valid + 1;
  let submit =
    if Prng.bool g then begin
      c.c_legacy <- c.c_legacy + 1;
      Serve.submit_legacy
    end
    else Serve.submit
  in
  match submit ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port req with
  | Error _ -> c.c_transport <- c.c_transport + 1
  | Ok (Serve.Overloaded _) ->
    c.c_shed <- c.c_shed + 1;
    Obs.Counter.incr m_shed_seen
  | Ok (Serve.Deadline_expired _) ->
    c.c_deadline <- c.c_deadline + 1;
    Obs.Counter.incr m_deadline_seen
  | Ok served ->
    let oracle = Serve.handle_request ~jobs:1 req in
    if served = oracle then c.c_identical <- c.c_identical + 1
    else begin
      c.c_mismatched <- c.c_mismatched + 1;
      Obs.Counter.incr m_mismatched;
      Events.error
        ~fields:[ ("seed", string_of_int cfg.seed); ("algo", if algo = Serve.Samc then "samc" else "sadc") ]
        "chaos.mismatch"
    end

(* Drip a valid frame one byte at a time with long pauses: the
   daemon's per-frame i/o deadline must cut us off rather than pin a
   worker forever. *)
let slowloris cfg g c =
  match connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port with
  | None -> c.c_transport <- c.c_transport + 1
  | Some fd ->
    let frame = Serve.encode_request (Serve.Decompress (random_code g 64)) in
    let dripped = ref 0 in
    (try
       for i = 0 to String.length frame - 1 do
         if Unix.write_substring fd frame i 1 = 1 then incr dripped;
         Unix.sleepf (0.05 +. Prng.float g *. 0.1)
       done
     with Unix.Unix_error _ -> ());
    ignore (read_reply fd);
    close_quietly fd;
    c.c_slowloris <- c.c_slowloris + 1

(* Promise a payload, deliver part of it, hang up. *)
let truncation cfg g c =
  match connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port with
  | None -> c.c_transport <- c.c_transport + 1
  | Some fd ->
    let promised = 64 + Prng.int g 256 in
    let delivered = Prng.int g promised in
    (* header prefix up to payload_len: magic, op=decompress, algo/isa,
       block, deadline, request_id — all zero; declares [promised] bytes *)
    let raw = "CCQ1\x02" ^ String.make 16 '\x00' ^ be32 promised ^ random_code g delivered in
    let _ = write_best_effort fd raw in
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    ignore (read_reply fd);
    close_quietly fd;
    c.c_trunc <- c.c_trunc + 1

(* Declare a payload past max_payload; the daemon must refuse before
   allocating and answer with a typed Failed. *)
let oversize cfg g c =
  match connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port with
  | None -> c.c_transport <- c.c_transport + 1
  | Some fd ->
    let header =
      "CCQ1\x02\x00\x00\x00\x00"
      ^ be32 0 (* deadline *)
      ^ String.make 8 '\x00' (* request id *)
      ^ be32 (Serve.max_payload + 1 + Prng.int g 1024)
    in
    let _ = write_best_effort fd header in
    ignore (read_reply fd);
    close_quietly fd;
    c.c_oversize <- c.c_oversize + 1

(* Connect and vanish, repeatedly. *)
let churn cfg _g c =
  (match connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port with
  | None -> c.c_transport <- c.c_transport + 1
  | Some fd -> close_quietly fd);
  c.c_churn <- c.c_churn + 1

(* Abort the connection with a RST (SO_LINGER 0) mid-frame. *)
let reset cfg g c =
  match connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port with
  | None -> c.c_transport <- c.c_transport + 1
  | Some fd ->
    let junk = String.sub (Serve.encode_request Serve.Ping) 0 (1 + Prng.int g 10) in
    let _ = write_best_effort fd junk in
    (try Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0) with Unix.Unix_error _ -> ());
    close_quietly fd;
    c.c_resets <- c.c_resets + 1

(* A compress too big to finish inside 1 ms: the daemon must answer
   Deadline_expired, not burn the time and reply late. *)
let deadline_probe cfg g c =
  let code = random_code g (1 lsl 19) in
  let req = Serve.Compress { algo = Serve.Samc; isa = Serve.Mips; block_size = 32; code } in
  c.c_deadline_probes <- c.c_deadline_probes + 1;
  match
    Serve.submit ~timeout_s:cfg.timeout_s ~deadline_ms:1 ~host:cfg.host ~port:cfg.port req
  with
  | Error _ -> c.c_transport <- c.c_transport + 1
  | Ok (Serve.Deadline_expired _) ->
    c.c_deadline <- c.c_deadline + 1;
    Obs.Counter.incr m_deadline_seen
  | Ok (Serve.Overloaded _) ->
    c.c_shed <- c.c_shed + 1;
    Obs.Counter.incr m_shed_seen
  | Ok _ -> ()

(* Hold [flood] silent connections open (each pins a worker on its
   first-byte read or sits queued), then probe: the probe must get a
   typed Overloaded reply once every queue slot is full — the daemon
   sheds instead of stalling the accept loop. *)
let overload_flood cfg _g c =
  if cfg.flood > 0 then begin
    let held =
      List.filter_map
        (fun _ -> connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port)
        (List.init cfg.flood (fun i -> i))
    in
    let probes = max 2 (cfg.flood / 4) in
    for _ = 1 to probes do
      match Serve.submit ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port Serve.Ping with
      | Ok (Serve.Overloaded _) ->
        c.c_shed <- c.c_shed + 1;
        Obs.Counter.incr m_shed_seen
      | Ok _ -> ()
      | Error _ -> c.c_transport <- c.c_transport + 1
    done;
    List.iter close_quietly held
  end

(* Ask the daemon to kill the worker handling us: the connection dies
   replyless and supervision must respawn the worker (visible in
   serve_worker_restarts_total). *)
let crash_op cfg _g c =
  if cfg.crash_workers then begin
    (match Serve.submit ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port Serve.Crash_worker with
    | Ok _ | Error _ -> ());
    c.c_crash <- c.c_crash + 1
  end

(* Several oracle-checked jobs down ONE persistent connection: the
   keep-alive loop must serve them all without reconnects. A Stale
   error is legitimate (the daemon recycled or idled us out between
   frames) and just ends the burst early. *)
let keepalive_jobs cfg g c =
  match Serve.Conn.connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port () with
  | Error _ -> c.c_transport <- c.c_transport + 1
  | Ok conn ->
    let jobs = 2 + Prng.int g 2 in
    (try
       for _ = 1 to jobs do
         let algo = if Prng.bool g then Serve.Samc else Serve.Sadc in
         let code = random_code g (64 + Prng.int g 256) in
         let req = Serve.Compress { algo; isa = Serve.Mips; block_size = 32; code } in
         c.c_valid <- c.c_valid + 1;
         match Serve.Conn.submit conn req with
         | Error (Serve.Conn.Stale _) -> raise Exit
         | Error (Serve.Conn.Transport _) ->
           c.c_transport <- c.c_transport + 1;
           raise Exit
         | Ok (Serve.Overloaded _) ->
           c.c_shed <- c.c_shed + 1;
           Obs.Counter.incr m_shed_seen
         | Ok served ->
           if served = Serve.handle_request ~jobs:1 req then
             c.c_identical <- c.c_identical + 1
           else begin
             c.c_mismatched <- c.c_mismatched + 1;
             Obs.Counter.incr m_mismatched;
             Events.error
               ~fields:[ ("seed", string_of_int cfg.seed); ("conn", "keepalive") ]
               "chaos.mismatch"
           end
       done
     with Exit -> ());
    Serve.Conn.close conn

(* Write a burst of ping frames back-to-back before reading anything:
   the daemon must answer all of them, in order, on the one
   connection. Distinct request ids ask for timing echoes, and the
   echoed id is how we catch reordered or crossed replies. *)
let pipeline_burst cfg g c =
  match connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port with
  | None -> c.c_transport <- c.c_transport + 1
  | Some fd ->
    let k = 2 + Prng.int g 3 in
    let burst = Buffer.create 256 in
    for i = 0 to k - 1 do
      Buffer.add_string burst
        (Serve.encode_request ~request_id:(Int64.of_int (1000 + i)) Serve.Ping)
    done;
    let raw = Buffer.contents burst in
    if write_best_effort fd raw = String.length raw then begin
      let got = ref 0 and shed = ref false in
      (try
         for i = 0 to k - 1 do
           match read_frame fd with
           | None -> raise Exit (* recycle/close mid-burst: allowed *)
           | Some (2, _, _) ->
             (* overloaded: the daemon sheds the whole rest, fine *)
             shed := true;
             raise Exit
           | Some (0, Some id, _) ->
             incr got;
             if id <> 1000 + i then begin
               c.c_order_violations <- c.c_order_violations + 1;
               Events.error
                 ~fields:
                   [ ("expected", string_of_int (1000 + i)); ("got", string_of_int id) ]
                 "chaos.pipeline.order"
             end
           | Some _ -> incr got
         done
       with Exit -> ());
      if not (!shed && !got = 0) then begin
        c.c_pipeline <- c.c_pipeline + 1;
        c.c_pipelined_replies <- c.c_pipelined_replies + !got
      end
    end;
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    ignore (read_reply fd);
    close_quietly fd

(* One complete frame, then a partial second frame, then hang up: the
   first job was whole and must be answered before the daemon notices
   the torn successor. The recycle race lives here too — under
   --max-requests-per-conn 1 the daemon closes after the first reply
   and never sees the torn bytes at all. *)
let midstream_truncation cfg g c =
  match connect ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port with
  | None -> c.c_transport <- c.c_transport + 1
  | Some fd ->
    let whole = Serve.encode_request ~request_id:777L Serve.Ping in
    let second = Serve.encode_request (Serve.Decompress (random_code g 64)) in
    let cut = 1 + Prng.int g (String.length second - 1) in
    let raw = whole ^ String.sub second 0 cut in
    let _ = write_best_effort fd raw in
    (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
    c.c_midstream <- c.c_midstream + 1;
    (match read_frame fd with
    | Some (0, _, _) -> c.c_midstream_ok <- c.c_midstream_ok + 1
    | Some _ | None -> ());
    ignore (read_reply fd);
    close_quietly fd

(* Answer one frame, then go silent past the daemon's idle timeout:
   the daemon must close the parked connection (EOF on our next read)
   rather than hold the fd forever. Gated on --stall because the sleep
   costs real wall clock and only proves anything when the daemon runs
   with an idle timeout shorter than the stall. *)
let interframe_stall cfg _g c =
  if cfg.stall_s > 0.0 then begin
    match connect ~timeout_s:(cfg.stall_s +. cfg.timeout_s) ~host:cfg.host ~port:cfg.port with
    | None -> c.c_transport <- c.c_transport + 1
    | Some fd ->
      let frame = Serve.encode_request Serve.Ping in
      let _ = write_best_effort fd frame in
      c.c_stalls <- c.c_stalls + 1;
      (match read_frame fd with
      | None -> ()
      | Some _ ->
        Unix.sleepf cfg.stall_s;
        (match read_frame fd with
        | None -> c.c_stall_closed <- c.c_stall_closed + 1
        | Some _ -> ()));
      close_quietly fd
  end

let alive cfg =
  match Serve.http_get ~timeout_s:cfg.timeout_s ~host:cfg.host ~port:cfg.port "/healthz" with
  | Ok (200, _) -> true
  | Ok _ | Error _ -> false

(* --- driver -------------------------------------------------------------- *)

let run cfg =
  if not (alive cfg) then
    Error (Printf.sprintf "no live daemon at %s:%d (/healthz failed)" cfg.host cfg.port)
  else begin
    Events.info ~fields:[ ("seed", string_of_int cfg.seed) ] "chaos.begin";
    let g = Prng.create (Int64.of_int cfg.seed) in
    let c =
      {
        c_valid = 0;
        c_identical = 0;
        c_mismatched = 0;
        c_shed = 0;
        c_deadline = 0;
        c_deadline_probes = 0;
        c_transport = 0;
        c_slowloris = 0;
        c_trunc = 0;
        c_oversize = 0;
        c_churn = 0;
        c_resets = 0;
        c_crash = 0;
        c_legacy = 0;
        c_pipeline = 0;
        c_pipelined_replies = 0;
        c_order_violations = 0;
        c_midstream = 0;
        c_midstream_ok = 0;
        c_stalls = 0;
        c_stall_closed = 0;
      }
    in
    (* The weighted mix: hostile traffic drawn deterministically from
       the seed, valid jobs interleaved throughout so corruption under
       pressure (not just in isolation) would be caught. Slowloris is
       rare because each one deliberately costs an i/o-timeout's worth
       of wall clock. *)
    let attacks =
      [|
        (6, valid_job);
        (1, slowloris);
        (3, truncation);
        (2, oversize);
        (3, churn);
        (2, reset);
        (2, deadline_probe);
        (1, crash_op);
        (3, keepalive_jobs);
        (2, pipeline_burst);
        (2, midstream_truncation);
      |]
    in
    for _round = 1 to cfg.rounds do
      for _ = 1 to 8 do
        let attack = Prng.weighted g attacks in
        Obs.Counter.incr m_attacks;
        attack cfg g c
      done;
      overload_flood cfg g c;
      interframe_stall cfg g c;
      (* guaranteed once per round (not left to the weighted draw): the
         report's deadline and supervision verdicts need these to have
         run under every seed, same as the flood and the stall *)
      deadline_probe cfg g c;
      crash_op cfg g c;
      (* after each round of abuse the daemon must still answer
         cleanly: a fresh valid job through the full stack *)
      valid_job cfg g c
    done;
    let alive_after = alive cfg in
    Events.info
      ~fields:
        [
          ("seed", string_of_int cfg.seed);
          ("valid", string_of_int c.c_valid);
          ("mismatched", string_of_int c.c_mismatched);
          ("shed", string_of_int c.c_shed);
          ("alive", string_of_bool alive_after);
        ]
      "chaos.end";
    Ok
      {
        seed = cfg.seed;
        valid_jobs = c.c_valid;
        byte_identical = c.c_identical;
        mismatched = c.c_mismatched;
        shed_typed = c.c_shed;
        deadline_replies = c.c_deadline;
        deadline_probes = c.c_deadline_probes;
        transport_errors = c.c_transport;
        slowloris = c.c_slowloris;
        truncations = c.c_trunc;
        oversize = c.c_oversize;
        churn = c.c_churn;
        resets = c.c_resets;
        crash_ops = c.c_crash;
        legacy_jobs = c.c_legacy;
        pipeline_bursts = c.c_pipeline;
        pipelined_replies = c.c_pipelined_replies;
        order_violations = c.c_order_violations;
        midstream_truncations = c.c_midstream;
        midstream_intact = c.c_midstream_ok;
        stalls = c.c_stalls;
        stall_closes = c.c_stall_closed;
        alive_after;
      }
  end

let passed cfg r =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if not r.alive_after then fail "daemon dead after chaos (seed %d)" r.seed
  else if r.mismatched > 0 then
    fail "%d served jobs differed from the offline oracle (seed %d)" r.mismatched r.seed
  else if r.byte_identical = 0 then
    fail "no valid job completed — nothing was actually verified (seed %d)" r.seed
  else if cfg.flood > 0 && r.shed_typed = 0 then
    fail "flood of %d never produced a typed overload reply (seed %d)" cfg.flood r.seed
  else if r.deadline_probes > 0 && r.deadline_replies = 0 then
    fail "no deadline probe got a typed deadline-expired reply (seed %d)" r.seed
  else if r.order_violations > 0 then
    fail "%d pipelined replies arrived out of order (seed %d)" r.order_violations r.seed
  else if r.pipeline_bursts > 0 && r.pipelined_replies < 2 then
    fail "pipelining never yielded multiple replies on one connection (seed %d)" r.seed
  else if r.midstream_truncations > 0 && r.midstream_intact = 0 then
    fail
      "no complete frame survived a torn successor — mid-stream truncation poisons whole \
       connections (seed %d)"
      r.seed
  else if r.stalls > 0 && r.stall_closes = 0 then
    fail "no inter-frame stall was idle-closed by the daemon (seed %d)" r.seed
  else Ok ()

let report_lines r =
  [
    Printf.sprintf "chaos seed %d: %s" r.seed
      (if r.alive_after then "daemon alive" else "DAEMON DEAD");
    Printf.sprintf "  valid jobs        %6d  (%d byte-identical, %d MISMATCHED, %d legacy one-shot)"
      r.valid_jobs r.byte_identical r.mismatched r.legacy_jobs;
    Printf.sprintf "  typed sheds       %6d" r.shed_typed;
    Printf.sprintf "  deadline replies  %6d  (of %d probes)" r.deadline_replies r.deadline_probes;
    Printf.sprintf "  slowloris         %6d" r.slowloris;
    Printf.sprintf "  truncations       %6d" r.truncations;
    Printf.sprintf "  oversize frames   %6d" r.oversize;
    Printf.sprintf "  churn connects    %6d" r.churn;
    Printf.sprintf "  rst aborts        %6d" r.resets;
    Printf.sprintf "  crash ops         %6d" r.crash_ops;
    Printf.sprintf "  pipeline bursts   %6d  (%d replies, %d ORDER VIOLATIONS)" r.pipeline_bursts
      r.pipelined_replies r.order_violations;
    Printf.sprintf "  midstream cuts    %6d  (%d first-frame replies intact)"
      r.midstream_truncations r.midstream_intact;
    Printf.sprintf "  interframe stalls %6d  (%d idle-closed)" r.stalls r.stall_closes;
    Printf.sprintf "  transport errors  %6d" r.transport_errors;
  ]
